package repro_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// TestSetPartitionedMatchesSequential is the acceptance bar for the
// set-partitioned parallel simulator: every Table 2 kernel on all three
// commercial Table 1 machines evaluates under CheckFull — runtime
// invariants on, differential oracle comparing every cell — once on the
// classic sequential event loop and once per worker count on the
// partitioned engine, and the full SimResult must match field for field.
// Any divergence (total cycles, per-core cycles, per-level or per-cache
// hit/miss/writeback counts, barriers, off-chip accesses) fails the test.
//
// SchemeCombined exercises the most machinery upstream of the simulator;
// the engines themselves are scheme-blind, consuming only the final trace.
// Run under -race this is also the data-race certification of the worker
// pool (see verify.sh full and CI).
func TestSetPartitionedMatchesSequential(t *testing.T) {
	kernels := workloads.All()
	workerCounts := []int{2, 4, 8}
	if testing.Short() {
		kernels = kernels[:4]
		workerCounts = []int{4}
	}
	for _, m := range topology.Commercial() {
		for _, k := range kernels {
			t.Run(fmt.Sprintf("%s/%s", m.Name, k.Name), func(t *testing.T) {
				cfg := repro.DefaultConfig()
				cfg.Check = repro.CheckFull
				want, err := repro.Evaluate(k, m, repro.SchemeCombined, cfg)
				if err != nil {
					t.Fatalf("sequential: %v", err)
				}
				for _, workers := range workerCounts {
					pcfg := cfg
					pcfg.SimWorkers = workers
					got, err := repro.Evaluate(k, m, repro.SchemeCombined, pcfg)
					if err != nil {
						t.Fatalf("simworkers=%d: %v", workers, err)
					}
					if got.SimPhases == nil || !got.SimPhases.Partitioned {
						t.Fatalf("simworkers=%d: set-partitioned engine did not engage", workers)
					}
					if !reflect.DeepEqual(got.Sim, want.Sim) {
						t.Errorf("simworkers=%d: SimResult differs from sequential\ngot:  %+v\nwant: %+v",
							workers, got.Sim, want.Sim)
					}
				}
			})
		}
	}
}

// TestSetPartitionedCrossMapped covers the cross-evaluation leg: a mapping
// computed for one machine but executed on another must simulate
// identically on both engines (the mapping machine changes the trace, not
// the simulator).
func TestSetPartitionedCrossMapped(t *testing.T) {
	k := repro.KernelByNameMust("galgel")
	cfg := repro.DefaultConfig()
	cfg.Check = repro.CheckFull
	mapM, runM := topology.Harpertown(), topology.Dunnington()
	want, err := repro.CrossEvaluate(k, mapM, runM, repro.SchemeCombined, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SimWorkers = 4
	got, err := repro.CrossEvaluate(k, mapM, runM, repro.SchemeCombined, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Sim, want.Sim) {
		t.Errorf("cross-mapped partitioned SimResult differs from sequential\ngot:  %+v\nwant: %+v",
			got.Sim, want.Sim)
	}
}
