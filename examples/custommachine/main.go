// Custommachine: define your own cache topology in JSON and map a workload
// onto it — the "what if" workflow the paper motivates for future
// multicores. This example builds a hypothetical 8-core part with
// asymmetric cluster sizes, prints its tree, and shows how the mapper
// adapts the distribution to it.
//
// Run with:
//
//	go run ./examples/custommachine
package main

import (
	"fmt"
	"log"

	"repro"
)

const machineJSON = `{
  "name": "hypothetical-8",
  "clockGHz": 2.5,
  "memLatency": 160,
  "memOccupancy": 8,
  "root": {"children": [
    {"level": 3, "sizeBytes": 8388608, "assoc": 16, "lineBytes": 64, "latency": 30, "children": [
      {"level": 2, "sizeBytes": 2097152, "assoc": 8, "lineBytes": 64, "latency": 12, "children": [
        {"level": 1, "sizeBytes": 32768, "assoc": 8, "lineBytes": 64, "latency": 4, "children": [{}]},
        {"level": 1, "sizeBytes": 32768, "assoc": 8, "lineBytes": 64, "latency": 4, "children": [{}]},
        {"level": 1, "sizeBytes": 32768, "assoc": 8, "lineBytes": 64, "latency": 4, "children": [{}]},
        {"level": 1, "sizeBytes": 32768, "assoc": 8, "lineBytes": 64, "latency": 4, "children": [{}]}
      ]},
      {"level": 2, "sizeBytes": 2097152, "assoc": 8, "lineBytes": 64, "latency": 12, "children": [
        {"level": 1, "sizeBytes": 32768, "assoc": 8, "lineBytes": 64, "latency": 4, "children": [{}]},
        {"level": 1, "sizeBytes": 32768, "assoc": 8, "lineBytes": 64, "latency": 4, "children": [{}]}
      ]}
    ]},
    {"level": 3, "sizeBytes": 8388608, "assoc": 16, "lineBytes": 64, "latency": 30, "children": [
      {"level": 2, "sizeBytes": 2097152, "assoc": 8, "lineBytes": 64, "latency": 12, "children": [
        {"level": 1, "sizeBytes": 32768, "assoc": 8, "lineBytes": 64, "latency": 4, "children": [{}]},
        {"level": 1, "sizeBytes": 32768, "assoc": 8, "lineBytes": 64, "latency": 4, "children": [{}]}
      ]}
    ]}
  ]}
}`

func main() {
	machine, err := repro.LoadMachine([]byte(machineJSON))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(machine)

	kernel := repro.KernelByNameMust("galgel")
	cfg := repro.DefaultConfig()
	var base uint64
	for _, s := range []repro.Scheme{repro.SchemeBase, repro.SchemeTopologyAware, repro.SchemeCombined} {
		run, err := repro.Evaluate(kernel, machine, s, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if s == repro.SchemeBase {
			base = run.Sim.TotalCycles
		}
		fmt.Printf("%-14v %10d cycles (%.3f of Base)\n",
			s, run.Sim.TotalCycles, float64(run.Sim.TotalCycles)/float64(base))
	}

	// The per-core iteration counts adapt to the asymmetric clusters: the
	// 4-core L2 gets twice the iterations of the 2-core L2s.
	run, err := repro.Evaluate(kernel, machine, repro.SchemeTopologyAware, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-core iteration counts:")
	for c, gs := range run.Mapping.PerCore {
		n := 0
		for _, g := range gs {
			n += run.Mapping.Groups[g].Size()
		}
		fmt.Printf("  core %d: %d\n", c, n)
	}
}
