// Scaling: the paper's future-multicore studies (§4.2, Figures 17-18) —
// the topology-aware win grows with the core count and with the depth of
// the on-chip cache hierarchy.
//
// Run with:
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/topology"
)

func main() {
	kernels := []*repro.Kernel{
		repro.KernelByNameMust("galgel"),
		repro.KernelByNameMust("bodytrack"),
		repro.KernelByNameMust("namd"),
	}
	cfg := repro.DefaultConfig()

	fmt.Println("== core-count scaling (Dunnington topology grown by sockets, Fig 17) ==")
	for _, cores := range []int{8, 12, 18, 24} {
		m, err := topology.ScaleDunnington(cores)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2d cores:", cores)
		for _, k := range kernels {
			ratio, err := normalized(k, m, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s=%.3f", k.Name, ratio)
		}
		fmt.Println()
	}

	fmt.Println("\n== hierarchy depth (Dunnington vs Arch-I vs Arch-II, Fig 18) ==")
	for _, m := range []*repro.Machine{repro.Dunnington(), repro.ArchI(), repro.ArchII()} {
		fmt.Printf("%-11s (%d cores, %d cache levels):", m.Name, m.NumCores(), m.MaxLevel())
		for _, k := range kernels {
			ratio, err := normalized(k, m, cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s=%.3f", k.Name, ratio)
		}
		fmt.Println()
	}
	fmt.Println("\nLower is better (TopologyAware cycles / Base cycles). The win should")
	fmt.Println("grow with core count and hierarchy depth, the paper's closing claim.")
}

func normalized(k *repro.Kernel, m *repro.Machine, cfg repro.Config) (float64, error) {
	base, err := repro.Evaluate(k, m, repro.SchemeBase, cfg)
	if err != nil {
		return 0, err
	}
	ta, err := repro.Evaluate(k, m, repro.SchemeTopologyAware, cfg)
	if err != nil {
		return 0, err
	}
	return float64(ta.Sim.TotalCycles) / float64(base.Sim.TotalCycles), nil
}
