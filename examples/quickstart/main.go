// Quickstart: map the paper's running example (Figure 5) onto the
// Dunnington machine, inspect the iteration groups and the per-core
// assignment, and compare the simulated cache behaviour of every scheme.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Pick a workload and a machine. fig5 is the loop of the paper's
	// §3.5.4 example: B[j] + B[j+2k] + B[j-2k] over twelve data blocks.
	kernel := repro.KernelByNameMust("fig5")
	machine := repro.Dunnington()

	fmt.Println("== workload ==")
	fmt.Println(kernel)
	fmt.Println(kernel.Nest)

	fmt.Println("== machine ==")
	fmt.Println(machine)

	// 2. Run the full pipeline (tagging, distribution, scheduling,
	// simulation) with the paper's default configuration: 2 KB blocks,
	// 10% balance threshold, alpha = beta = 0.5.
	cfg := repro.DefaultConfig()
	run, err := repro.Evaluate(kernel, machine, repro.SchemeCombined, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== mapping ==\niteration groups: %d\n", run.Groups)
	for c, gs := range run.Mapping.PerCore {
		if len(gs) == 0 {
			continue
		}
		fmt.Printf("core %2d:", c)
		for _, g := range gs {
			grp := run.Mapping.Groups[g]
			fmt.Printf(" θ[%s]x%d", grp.Tag, grp.Size())
		}
		fmt.Println()
	}

	// 3. The round/barrier schedule (Figure 11's timeline) and the
	// generated per-core pseudo-code (the Omega codegen role, §3.4).
	fmt.Println("== schedule ==")
	fmt.Print(run.Schedule.Render(run.Mapping))
	fmt.Println("== generated code, core 0 ==")
	fmt.Print(repro.GeneratePerCoreCode(run)[0])

	// 4. Compare all schemes on simulated cycles.
	fmt.Println("== schemes ==")
	var base uint64
	for _, s := range repro.AllSchemes() {
		r, err := repro.Evaluate(kernel, machine, s, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if s == repro.SchemeBase {
			base = r.Sim.TotalCycles
		}
		fmt.Printf("%-14v %9d cycles (%.3f of Base)  L2 miss %.1f%%  L3 miss %.1f%%\n",
			s, r.Sim.TotalCycles, float64(r.Sim.TotalCycles)/float64(base),
			100*r.Sim.MissRate(2), 100*r.Sim.MissRate(3))
	}
}
