// Crossmachine: the paper's Figure 2 motivation — a version of galgel
// customized for one machine's cache topology loses performance when
// ported to another. Each version is built against one machine's hierarchy
// tree and executed on all three.
//
// Run with:
//
//	go run ./examples/crossmachine
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	kernel := repro.KernelByNameMust("galgel")
	machines := []*repro.Machine{repro.Harpertown(), repro.Nehalem(), repro.Dunnington()}
	cfg := repro.DefaultConfig()

	// cycles[run][ver] = cycles of the version built for machines[ver]
	// when executed on machines[run].
	cycles := make([][]uint64, len(machines))
	for i, runM := range machines {
		cycles[i] = make([]uint64, len(machines))
		for j, mapM := range machines {
			var run *repro.Run
			var err error
			if i == j {
				run, err = repro.Evaluate(kernel, runM, repro.SchemeCombined, cfg)
			} else {
				run, err = repro.CrossEvaluate(kernel, mapM, runM, repro.SchemeCombined, cfg)
			}
			if err != nil {
				log.Fatalf("%s version on %s: %v", mapM.Name, runM.Name, err)
			}
			cycles[i][j] = run.Sim.TotalCycles
		}
	}

	fmt.Println("galgel, normalized to the best version per execution machine:")
	fmt.Printf("%-16s %14s %14s %14s\n", "executing on", "Harpertown-ver", "Nehalem-ver", "Dunnington-ver")
	for i, runM := range machines {
		best := cycles[i][0]
		for _, c := range cycles[i] {
			if c < best {
				best = c
			}
		}
		fmt.Printf("%-16s", runM.Name)
		for j := range machines {
			fmt.Printf(" %14.3f", float64(cycles[i][j])/float64(best))
		}
		fmt.Println()
	}
	fmt.Println("\nThe diagonal (native version) wins on Nehalem and Dunnington, and foreign")
	fmt.Println("versions lose up to ~50% — the paper's Figure 2 claim. (On Harpertown the")
	fmt.Println("Nehalem version edges out the native one by a few percent, a greedy-")
	fmt.Println("clustering artifact of Harpertown's flat four-way clustering root;")
	fmt.Println("see EXPERIMENTS.md.)")
}
