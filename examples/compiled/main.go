// Compiled: drive the mapping pipeline from loop-nest *source* instead of
// a prebuilt kernel — the full compiler story of the paper: parse the
// Figure 4-style program in stencil.loop, tag and distribute its
// iterations for Dunnington's cache topology, and compare against the
// baselines.
//
// Run with:
//
//	go run ./examples/compiled
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	srcPath := filepath.Join("examples", "compiled", "stencil.loop")
	src, err := os.ReadFile(srcPath)
	if err != nil {
		// Allow running from the example directory too.
		src, err = os.ReadFile("stencil.loop")
		if err != nil {
			log.Fatalf("reading source: %v", err)
		}
	}

	kernel, err := repro.CompileKernel("stencil", string(src))
	if err != nil {
		log.Fatalf("compiling: %v", err)
	}
	fmt.Printf("compiled %s: %d iterations, %d references, %.0f KB data\n",
		kernel.Name, kernel.Iterations(), len(kernel.Refs), float64(kernel.DataBytes())/1024)
	fmt.Print(kernel.Nest)

	machine := repro.Dunnington()
	cfg := repro.DefaultConfig()
	cfg.BlockBytes = repro.AutoBlockBytes // §4.1 block-size heuristic

	var base uint64
	for _, s := range repro.AllSchemes() {
		run, err := repro.Evaluate(kernel, machine, s, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if s == repro.SchemeBase {
			base = run.Sim.TotalCycles
		}
		fmt.Printf("%-14v %10d cycles (%.3f of Base)  block=%dB\n",
			s, run.Sim.TotalCycles, float64(run.Sim.TotalCycles)/float64(base), run.Config.BlockBytes)
	}
}
