// Dependences: the §3.5.2 extensions. The wavefront kernel carries genuine
// loop-carried flow dependences (iteration j reads what j-256 wrote), so
// the mapper must either cluster dependent iteration groups onto one core
// (the conservative "infinite edge weight" mode — no synchronization, less
// parallelism) or distribute them freely and insert barrier rounds (the
// synchronization mode).
//
// Run with:
//
//	go run ./examples/dependences
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	kernel := repro.KernelByNameMust("wavefront")
	machine := repro.Dunnington()

	fmt.Println(kernel)
	base, err := repro.Evaluate(kernel, machine, repro.SchemeBase, repro.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %9d cycles (unsynchronized contiguous chunks — shown for scale;\n",
		"Base", base.Sim.TotalCycles)
	fmt.Println("                       a real compiler could not emit this without synchronization)")

	for _, mode := range []struct {
		name string
		deps repro.DepsMode
	}{
		{"synchronized", repro.DepsSync},
		{"conservative", repro.DepsConservative},
	} {
		cfg := repro.DefaultConfig()
		cfg.Deps = mode.deps
		run, err := repro.Evaluate(kernel, machine, repro.SchemeCombined, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %9d cycles (%.3f of Base)  %d barrier(s), %d rounds, deps=%v\n",
			"Combined/"+mode.name, run.Sim.TotalCycles,
			float64(run.Sim.TotalCycles)/float64(base.Sim.TotalCycles),
			run.Sim.Barriers, len(run.Schedule.Rounds), run.HasDeps)
	}

	fmt.Println("\nThe synchronized mode exploits parallelism across dependence-free rounds")
	fmt.Println("and pays barrier costs; the conservative mode needs no synchronization but")
	fmt.Println("serializes dependence-connected groups onto single cores (§3.5.2).")
}
