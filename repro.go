// Package repro is the public API of the reproduction of "Cache Topology
// Aware Computation Mapping for Multicores" (Kandemir et al., PLDI 2010).
//
// The pipeline mirrors the paper's compiler flow:
//
//  1. describe a parallel loop nest with affine array references (a
//     Kernel — twelve paper workloads ship in this package),
//  2. partition the data into equal-sized blocks and tag iterations by the
//     blocks they touch, clustering same-tag iterations into iteration
//     groups (§3.3),
//  3. distribute the groups over the cores of a target Machine by
//     hierarchically clustering down its cache hierarchy tree (Fig 6),
//  4. schedule each core's groups in dependence-legal, locality-maximizing
//     rounds (Fig 7, §3.5.3), and
//  5. evaluate the mapping on a trace-driven multi-level cache simulator
//     configured from the machine description (the hardware substitute —
//     see DESIGN.md).
//
// Quick start:
//
//	k := repro.KernelByNameMust("galgel")
//	m := repro.Dunnington()
//	run, err := repro.Evaluate(k, m, repro.SchemeCombined, repro.DefaultConfig())
//	// run.Sim.TotalCycles, run.Sim.MissRate(2), ...
package repro

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/affinity"
	"repro/internal/baseline"
	"repro/internal/cachesim"
	"repro/internal/chaos"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/lang"
	"repro/internal/oracle"
	"repro/internal/poly"
	"repro/internal/schedule"
	"repro/internal/tags"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Re-exported building blocks. Aliases keep the internal packages as the
// single source of truth while letting API users name every type.
type (
	// Kernel is a benchmark loop nest with its arrays and references.
	Kernel = workloads.Kernel
	// Machine is a multicore description: cache hierarchy tree + latencies.
	Machine = topology.Machine
	// SimResult is the simulator's output: cycles and per-level cache stats.
	SimResult = cachesim.Result
	// MapResult is the iteration distribution produced by the Fig 6 pass.
	MapResult = core.Result
	// Sched is the round/barrier execution plan produced by the Fig 7 pass.
	Sched = schedule.Schedule
	// CheckMode is the self-checking level of Config.Check (see
	// internal/check): CheckOff, CheckInvariants, CheckSampled, CheckFull.
	CheckMode = check.Mode
	// InvariantError reports a violated runtime invariant inside the
	// simulator (Config.Check >= CheckInvariants). Detect it with errors.As.
	InvariantError = check.InvariantError
	// DivergenceError reports a cell where the simulator and the
	// differential oracle disagree (Config.Check >= CheckSampled). Detect it
	// with errors.As.
	DivergenceError = oracle.DivergenceError
	// ChaosFault is a fault class of the chaos injector (see internal/chaos).
	ChaosFault = chaos.Fault
)

// Self-checking levels for Config.Check, ordered: each level includes the
// checks of the levels below it.
const (
	// CheckOff runs no self-checking (the default).
	CheckOff = check.Off
	// CheckInvariants enables the runtime invariants inside the simulator.
	CheckInvariants = check.Invariants
	// CheckSampled additionally recomputes a deterministic one-in-four
	// subset of cells on the differential oracle and field-compares.
	CheckSampled = check.Sampled
	// CheckFull recomputes every cell on the oracle.
	CheckFull = check.Full
)

// ParseCheckMode parses a -check flag value ("off", "invariants", "sampled",
// "full") into a CheckMode.
func ParseCheckMode(s string) (CheckMode, error) { return check.ParseMode(s) }

// Machine constructors (Table 1 and Figure 12).
var (
	Harpertown = topology.Harpertown
	Nehalem    = topology.Nehalem
	Dunnington = topology.Dunnington
	ArchI      = topology.ArchI
	ArchII     = topology.ArchII
)

// Kernels returns the twelve Table 2 workloads.
func Kernels() []*Kernel { return workloads.All() }

// KernelByName looks a kernel up by its Table 2 name ("galgel", ...).
func KernelByName(name string) (*Kernel, error) { return workloads.ByName(name) }

// KernelByNameMust is KernelByName for known-good literals; it panics on
// unknown names.
func KernelByNameMust(name string) *Kernel {
	k, err := workloads.ByName(name)
	if err != nil {
		panic(err)
	}
	return k
}

// MachineByName looks a machine up by name ("dunnington", "arch-i", ...).
func MachineByName(name string) (*Machine, error) { return topology.ByName(name) }

// LoadMachine parses a JSON machine description (see internal/topology for
// the format), letting users target custom cache topologies.
func LoadMachine(data []byte) (*Machine, error) { return topology.UnmarshalMachine(data) }

// SaveMachine renders a machine as JSON in the LoadMachine format.
func SaveMachine(m *Machine) ([]byte, error) { return topology.MarshalMachine(m) }

// CompileKernel parses loop-nest source in the paper's Figure 4/5 style
// into a Kernel (see internal/lang for the grammar):
//
//	array A[512][512]
//	array Anew[512][512]
//	for (i = 1; i <= 510) {
//	  for (j = 1; j <= 510) {
//	    Anew[i][j] = A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1];
//	  }
//	}
func CompileKernel(name, src string) (*Kernel, error) { return lang.Compile(name, src) }

// RenderKernel pretty-prints a kernel back into the loop-nest language —
// the inverse of CompileKernel up to statement grouping (rendering then
// recompiling preserves the iteration space and data-block behaviour).
func RenderKernel(k *Kernel) string { return lang.Render(k) }

// Scheme selects which mapping strategy Evaluate applies.
type Scheme int

const (
	// SchemeBase is the unmodified parallel code: contiguous chunks,
	// program order.
	SchemeBase Scheme = iota
	// SchemeBasePlus adds per-core loop permutation + tiling (the paper's
	// state-of-the-art intra-core locality baseline).
	SchemeBasePlus
	// SchemeLocal applies the Fig 7 local reorganization to the default
	// distribution (the "Local" bars of Fig 15).
	SchemeLocal
	// SchemeTopologyAware applies the Fig 6 cache-topology-aware
	// distribution; within a core, groups run in default order
	// ("considering only data dependencies", §4.1).
	SchemeTopologyAware
	// SchemeCombined applies the Fig 6 distribution followed by the Fig 7
	// local scheduling — the paper's best configuration (~37% on
	// Dunnington, Fig 15).
	SchemeCombined
)

// String names the scheme as the paper does.
func (s Scheme) String() string {
	switch s {
	case SchemeBase:
		return "Base"
	case SchemeBasePlus:
		return "Base+"
	case SchemeLocal:
		return "Local"
	case SchemeTopologyAware:
		return "TopologyAware"
	case SchemeCombined:
		return "Combined"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// AllSchemes lists every scheme in presentation order.
func AllSchemes() []Scheme {
	return []Scheme{SchemeBase, SchemeBasePlus, SchemeLocal, SchemeTopologyAware, SchemeCombined}
}

// DepsMode selects how loop-carried dependences are honored (§3.5.2).
type DepsMode int

const (
	// DepsSync distributes dependent groups freely and inserts barrier
	// synchronization (the paper's preferred extension).
	DepsSync DepsMode = iota
	// DepsConservative clusters dependence-connected groups onto one core
	// (the "infinite edge weight" extension): no synchronization needed.
	DepsConservative
)

// AutoBlockBytes selects the §4.1 block-size heuristic: the largest
// power-of-two block such that the most aggressive iteration group's data
// footprint (bounded by the loop body's reference count) fits in the
// target machine's L1.
const AutoBlockBytes int64 = -1

// Config carries the tunables of the scheme, with paper defaults.
type Config struct {
	// BlockBytes is the data block size (§3.3); the paper's default is
	// 2 KB. AutoBlockBytes selects the §4.1 heuristic.
	BlockBytes int64
	// BalanceThreshold is the Fig 6 load imbalance tolerance (paper: 10%).
	BalanceThreshold float64
	// Alpha and Beta weigh horizontal and vertical reuse in Fig 7
	// (paper: 0.5 each).
	Alpha, Beta float64
	// Deps selects the §3.5.2 dependence handling mode.
	Deps DepsMode
	// MaxGroups caps the iteration-group count fed to the hierarchical
	// clustering (groups beyond it are coarsened by merging neighbours,
	// the Fig 16 granularity/compile-time trade-off). Zero selects 64
	// groups per target core (at least 512), keeping per-core granularity
	// constant as machines scale.
	MaxGroups int
	// MapView, when non-nil, is the machine the *mapper* sees; simulation
	// still runs on the real machine (the Fig 20 partial-hierarchy study).
	MapView *Machine
	// NoMergeCap and NoPolish disable individual distribution heuristics
	// for the ablation studies (see core.Options).
	NoMergeCap bool
	NoPolish   bool
	// HammingSched switches the Fig 7 scheduler to the §3.5.3
	// Hamming-distance objective instead of tag dot products.
	HammingSched bool
	// Passes repeats the parallel loop's execution with warm caches
	// (0 or 1 = single pass). The paper's applications run their nests
	// many times per program; multi-pass simulation exposes the
	// steady-state capacity behaviour single cold passes hide.
	Passes int
	// Materialize is the debugging escape hatch for the streaming trace
	// path: when set, the access trace is fully expanded into memory
	// (O(accesses)) before simulation instead of being generated lazily
	// from per-core cursors (O(cores)). Results are bit-identical either
	// way — see TestStreamingMatchesMaterialized.
	Materialize bool
	// MaxSimCycles aborts the simulation with cachesim.ErrCycleBudget once
	// any core's simulated clock exceeds it (0 = unlimited). It is an
	// execution guard against pathological cells, not part of the
	// experiment's identity: a budget-exceeded evaluation returns an error
	// and no Run, so it never contaminates results.
	MaxSimCycles uint64
	// Check selects the self-checking level: CheckInvariants turns on the
	// runtime invariants inside the simulator, CheckSampled additionally
	// recomputes a deterministic one-in-four subset of cells on the
	// differential oracle (internal/oracle) and field-compares, CheckFull
	// checks every cell. A violation or divergence aborts the evaluation
	// with an *InvariantError or *DivergenceError and no Run — a cell that
	// cannot be trusted reports nothing rather than a wrong number.
	Check CheckMode
	// ChaosSeed, when nonzero, arms the fault injector (internal/chaos):
	// roughly one cell in three — chosen deterministically from the seed
	// and cell identity — has its input stream or replacement decisions
	// corrupted, and is automatically escalated to CheckFull so the
	// corruption is caught. This exists to prove the checking layers fire;
	// production sweeps leave it zero.
	ChaosSeed int64
	// SimWorkers bounds the simulator's intra-cell worker pool (see
	// internal/cachesim: set-partitioned mode). It is an execution knob,
	// not part of the experiment's identity: results are byte-identical at
	// every setting, so it is excluded from memo keys and checkpoint
	// identity. 0 or 1 runs the classic sequential event loop.
	SimWorkers int
}

// DefaultConfig returns the paper's experimental settings.
func DefaultConfig() Config {
	return Config{BlockBytes: 2048, BalanceThreshold: 0.10, Alpha: 0.5, Beta: 0.5}
}

// Run is the full outcome of evaluating one (kernel, machine, scheme)
// combination.
type Run struct {
	Kernel  *Kernel
	Machine *Machine
	Scheme  Scheme
	Config  Config

	// Sim holds cycles and cache statistics.
	Sim *SimResult
	// Mapping and Schedule are set for the tag-based schemes
	// (Local/TopologyAware/Combined); nil for Base and Base+.
	Mapping  *MapResult
	Schedule *Sched
	// Groups is the iteration-group count before distribution (0 for
	// Base/Base+).
	Groups int
	// HasDeps reports whether the kernel carries loop dependences.
	HasDeps bool
	// MapTime is the time the mapping passes took — the paper's
	// compilation-time overhead metric (§4.1, Fig 16 discussion).
	MapTime time.Duration
	// SimPhases carries the simulator's per-stage CPU/alloc attribution
	// (filled whether the set-partitioned engine ran or fell back to the
	// sequential loop). Observational only: never part of Sim, memo keys,
	// or any figure table.
	SimPhases *cachesim.PhaseStats
}

// Summary renders a one-line human-readable digest of the run.
func (r *Run) Summary() string {
	s := fmt.Sprintf("%s on %s [%v]: %d cycles, %d accesses, %d mem",
		r.Kernel.Name, r.Machine.Name, r.Scheme, r.Sim.TotalCycles, r.Sim.Accesses, r.Sim.MemAccesses)
	if r.Groups > 0 {
		s += fmt.Sprintf(", %d groups", r.Groups)
	}
	if r.Sim.Barriers > 0 {
		s += fmt.Sprintf(", %d barriers", r.Sim.Barriers)
	}
	return s
}

// ErrInvalidInput is wrapped by every up-front validation failure of
// Evaluate/CrossEvaluate: nil or structurally broken kernels and machines
// that would previously panic deep inside poly/tags/topology. Detect it
// with errors.Is.
var ErrInvalidInput = errors.New("repro: invalid input")

// PanicError reports a panic captured at the public API boundary. The
// pipeline's internal packages treat violated invariants as programmer
// errors and panic; Evaluate/CrossEvaluate convert any panic that slips
// past input validation into a PanicError so library callers — and the
// experiment grid above them — never see a crashing goroutine.
type PanicError struct {
	// Stage is the pipeline stage that panicked: "map", "trace",
	// "simulate" or "oracle" (the differential-oracle leg of a checked
	// evaluation).
	Stage string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

// Error renders the panic value and stage.
func (e *PanicError) Error() string {
	return fmt.Sprintf("repro: panic in %s stage: %v", e.Stage, e.Value)
}

// validateEval rejects inputs that would otherwise panic (or silently
// misbehave) deep inside the pipeline. Every returned error wraps
// ErrInvalidInput.
func validateEval(k *Kernel, m *Machine) error {
	switch {
	case k == nil:
		return fmt.Errorf("%w: nil kernel", ErrInvalidInput)
	case k.Nest == nil:
		return fmt.Errorf("%w: kernel %q has no loop nest", ErrInvalidInput, k.Name)
	case len(k.Refs) == 0:
		return fmt.Errorf("%w: kernel %q has no array references", ErrInvalidInput, k.Name)
	case m == nil:
		return fmt.Errorf("%w: nil machine", ErrInvalidInput)
	case m.NumCores() == 0:
		return fmt.Errorf("%w: machine %q has no cores", ErrInvalidInput, m.Name)
	}
	// Every reference must name a declared array (otherwise the layout
	// lookup panics mid-simulation), with one subscript per dimension.
	declared := make(map[*poly.Array]bool, len(k.Arrays))
	for _, a := range k.Arrays {
		declared[a] = true
	}
	for i, r := range k.Refs {
		switch {
		case r == nil || r.Array == nil:
			return fmt.Errorf("%w: kernel %q reference %d is nil", ErrInvalidInput, k.Name, i)
		case !declared[r.Array]:
			return fmt.Errorf("%w: kernel %q reference %d uses undeclared array %s", ErrInvalidInput, k.Name, i, r.Array.Name)
		case len(r.Subs) != len(r.Array.Dims):
			return fmt.Errorf("%w: kernel %q reference %d to %s has %d subscripts for %d dims",
				ErrInvalidInput, k.Name, i, r.Array.Name, len(r.Subs), len(r.Array.Dims))
		}
	}
	// The machine must expose at least one cache on the first core's path:
	// Base+ tile search and the block-size heuristic both assume it.
	path, err := m.PathToRoot(0)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidInput, err)
	}
	hasCache := false
	for _, n := range path {
		if n.Kind == topology.Cache {
			hasCache = true
			break
		}
	}
	if !hasCache {
		return fmt.Errorf("%w: machine %q has no caches", ErrInvalidInput, m.Name)
	}
	return nil
}

// capturePanic converts a recovered panic into a PanicError carrying the
// given stage and the captured stack. Install it with defer; stage is read
// at panic time, so the caller can advance it as the pipeline progresses.
func capturePanic(stage *string, runp **Run, errp *error) {
	if v := recover(); v != nil {
		*runp = nil
		*errp = &PanicError{Stage: *stage, Value: v, Stack: debug.Stack()}
	}
}

// Evaluate maps the kernel onto the machine with the given scheme and
// simulates the result.
func Evaluate(k *Kernel, m *Machine, scheme Scheme, cfg Config) (*Run, error) {
	return EvaluateContext(context.Background(), k, m, scheme, cfg)
}

// EvaluateContext is Evaluate with cooperative cancellation: the context is
// checked between pipeline stages and, inside the simulator, between
// simulation rounds and every few thousand accesses (see
// cachesim.RunContext). Inputs are validated up front (ErrInvalidInput) and
// any panic escaping the pipeline is returned as a *PanicError, so callers
// never crash on a malformed kernel or machine.
func EvaluateContext(ctx context.Context, k *Kernel, m *Machine, scheme Scheme, cfg Config) (run *Run, err error) {
	if err := validateEval(k, m); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	stage := "map"
	defer capturePanic(&stage, &run, &err)
	cfg.BlockBytes = resolveBlockBytes(cfg.BlockBytes, k, m)
	run = &Run{Kernel: k, Machine: m, Scheme: scheme, Config: cfg}
	layout := k.Layout(cfg.BlockBytes)

	// Every scheme yields a lazy trace.Source the simulator pulls from, so
	// trace memory stays O(cores) no matter how large the iteration space
	// is (Config.Materialize restores the expanded form for debugging).
	var prog trace.Source
	start := time.Now()
	switch scheme {
	case SchemeBase:
		prog = trace.StreamOrder(baseline.Base(k, m.NumCores()), k.Refs, layout)
	case SchemeBasePlus:
		order, err := baseline.BasePlus(k, m, cfg.BlockBytes)
		if err != nil {
			return nil, err
		}
		prog = trace.StreamOrder(order, k.Refs, layout)
	case SchemeLocal:
		res, sched, err := baseline.Local(k, m, cfg.BlockBytes, schedule.Options{Alpha: cfg.Alpha, Beta: cfg.Beta, Hamming: cfg.HammingSched})
		if err != nil {
			return nil, err
		}
		run.Mapping, run.Schedule, run.Groups = res, sched, len(res.Groups)
		prog = trace.StreamSchedule(sched, res, k.Refs, layout)
	case SchemeTopologyAware, SchemeCombined:
		res, sched, tg, dg, err := mapTopologyAware(k, m, scheme, cfg, layout)
		if err != nil {
			return nil, err
		}
		run.Mapping, run.Schedule, run.Groups = res, sched, len(tg.Groups)
		run.HasDeps = dg != nil && dg.NumEdges() > 0
		prog = trace.StreamSchedule(sched, res, k.Refs, layout)
	default:
		return nil, fmt.Errorf("repro: unknown scheme %v", scheme)
	}
	run.MapTime = time.Since(start)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sim, phases, err := simulateChecked(ctx, &stage, m, finishProgram(prog, cfg), evalID(k.Name, m.Name, scheme, ""), cfg)
	if err != nil {
		return nil, err
	}
	run.Sim, run.SimPhases = sim, phases
	return run, nil
}

// evalID is the cell identity string the self-checking layers key on: it
// decides chaos poisoning and oracle sampling, and tags DivergenceErrors.
// mapfor distinguishes cross-evaluated cells (Fig 2/14 porting runs).
func evalID(kernel, machine string, scheme Scheme, mapfor string) string {
	id := fmt.Sprintf("%s|%s|%v", kernel, machine, scheme)
	if mapfor != "" {
		id += "|mapfor=" + mapfor
	}
	return id
}

// simulateChecked is the shared simulation leg of Evaluate and
// CrossEvaluate with the self-checking plan applied: chaos poisoning (when
// Config.ChaosSeed arms it) wraps the simulator's input — never the
// oracle's — and poisoned cells escalate to CheckFull; the differential
// oracle then recomputes the cell from the clean source at CheckFull, or at
// CheckSampled when the deterministic sample selects this id. stage is the
// panic-capture stage pointer, advanced as the legs run.
func simulateChecked(ctx context.Context, stage *string, m *Machine, src trace.Source, id string, cfg Config) (*SimResult, *cachesim.PhaseStats, error) {
	*stage = "simulate"
	phases := new(cachesim.PhaseStats)
	lim := cachesim.Limits{MaxCycles: cfg.MaxSimCycles, Check: cfg.Check,
		SimWorkers: cfg.SimWorkers, Stats: phases}
	simSrc := src
	if cfg.ChaosSeed != 0 {
		if f, ok := chaos.Pick(cfg.ChaosSeed, id); ok {
			if lim.Check < check.Full {
				lim.Check = check.Full
			}
			simSrc = chaos.Source(src, f, cfg.ChaosSeed, id)
			if f == chaos.Replacement {
				lim.Replace = chaos.Hook(cfg.ChaosSeed, id)
			}
		}
	}
	sim, err := cachesim.SimulateContext(ctx, m, simSrc, lim)
	if err != nil {
		return nil, nil, err
	}
	if lim.Check >= check.Full || (lim.Check == check.Sampled && check.SampleSelected(id)) {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		*stage = "oracle"
		want, err := oracle.Simulate(m, src)
		if err != nil {
			return nil, nil, err
		}
		if d := oracle.Compare(id, sim, want); d != nil {
			return nil, nil, d
		}
	}
	return sim, phases, nil
}

// ChaosFaultFor reports which fault class (if any) the chaos injector
// assigns to the (kernel, machine, scheme) cell under seed — the
// introspection hook replay bundles and the chaos test suite use to know
// what a poisoned cell was poisoned with. mapfor is the mapping machine's
// name for cross-evaluated cells, empty otherwise.
func ChaosFaultFor(seed int64, kernel, machine, mapfor string, scheme Scheme) (ChaosFault, bool) {
	return chaos.Pick(seed, evalID(kernel, machine, scheme, mapfor))
}

// finishProgram applies the config's trace post-processing: Passes
// replicates the rounds back to back (warm-cache repeated executions of
// the parallel loop, an O(1) wrapper — the paper's applications run their
// nests many times per program, and multi-pass simulation exposes the
// steady-state capacity behaviour a single cold pass hides), and
// Materialize expands the stream into a fully materialized Program.
func finishProgram(prog trace.Source, cfg Config) trace.Source {
	// Materialize before repeating: Repeat re-reads the same rounds, so the
	// expanded pass is stored once however many passes run (the pre-
	// streaming repeatProgram shared its round slices the same way).
	if cfg.Materialize {
		prog = trace.Materialize(prog)
	}
	return trace.Repeat(prog, cfg.Passes)
}

// resolveBlockBytes applies the default (2 KB) or the §4.1 automatic
// heuristic (AutoBlockBytes) against the mapping machine's L1.
func resolveBlockBytes(req int64, k *Kernel, m *Machine) int64 {
	switch {
	case req > 0:
		return req
	case req == AutoBlockBytes:
		l1 := int64(32 << 10)
		// validateEval has already established the machine has cores, so
		// the path lookup cannot fail here.
		path, _ := m.PathToRoot(0)
		for _, n := range path {
			if n.Kind == topology.Cache {
				l1 = n.SizeBytes
				break
			}
		}
		return tags.SelectBlockSize(l1, len(k.Refs), 256, 8192)
	default:
		return 2048
	}
}

// mapTopologyAware runs the tagging → dependence analysis → distribution →
// scheduling pipeline.
func mapTopologyAware(k *Kernel, m *Machine, scheme Scheme, cfg Config, layout *poly.Layout) (*core.Result, *schedule.Schedule, *tags.Tagging, *affinity.Digraph, error) {
	iters := k.Nest.Points()
	tg := tags.Compute(iters, k.Refs, layout)
	maxGroups := cfg.MaxGroups
	if maxGroups <= 0 {
		maxGroups = 64 * m.NumCores()
		if maxGroups < 512 {
			maxGroups = 512
		}
	}
	tg = tags.Coarsen(tg, maxGroups)

	dg, selfDep := deps.Analyze(iters, tg)
	var groupDeps *affinity.Digraph
	groups := tg.Groups
	if dg.NumEdges() > 0 {
		groups, groupDeps, selfDep = deps.CollapseCycles(tg.Groups, dg, selfDep)
	}
	work := &tags.Tagging{Groups: groups, Layout: tg.Layout, Refs: tg.Refs, NumBlocks: tg.NumBlocks, TotalIters: tg.TotalIters}

	anySelf := false
	for _, s := range selfDep {
		if s {
			anySelf = true
			break
		}
	}
	if !anySelf {
		selfDep = nil
	}
	opt := core.Options{
		BalanceThreshold: cfg.BalanceThreshold,
		SelfDep:          selfDep,
		NoMergeCap:       cfg.NoMergeCap,
		NoPolish:         cfg.NoPolish,
	}
	if cfg.Deps == DepsConservative && groupDeps != nil {
		opt.ConservativeDeps = true
		opt.Deps = groupDeps
	}
	mapTarget := m
	if cfg.MapView != nil {
		if cfg.MapView.NumCores() != m.NumCores() {
			return nil, nil, nil, nil, fmt.Errorf("repro: MapView has %d cores, machine has %d", cfg.MapView.NumCores(), m.NumCores())
		}
		mapTarget = cfg.MapView
	}
	res, err := core.Distribute(work, mapTarget, opt)
	if err != nil {
		return nil, nil, nil, nil, err
	}

	var sched *schedule.Schedule
	if scheme == SchemeCombined {
		sched, err = schedule.Build(res, groupDeps, schedule.Options{Alpha: cfg.Alpha, Beta: cfg.Beta, Hamming: cfg.HammingSched})
	} else {
		sched, err = schedule.DefaultOrder(res, groupDeps)
	}
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return res, sched, work, groupDeps, nil
}

// CrossEvaluate maps the kernel for mapM's cache topology but executes the
// result on runM — the porting experiments of Figures 2 and 14 ("the first
// bar in the second group gives the execution time of the Harpertown
// version of the code when run on Nehalem"). When the mapping machine has
// more cores than the execution machine, the extra threads fold onto the
// execution cores round-robin; when it has fewer, the surplus execution
// cores idle — both match running a version built for another machine
// with its original thread count (the paper runs the 12-thread Dunnington
// version with one thread per core on the 8-core machines).
func CrossEvaluate(k *Kernel, mapM, runM *Machine, scheme Scheme, cfg Config) (*Run, error) {
	return CrossEvaluateContext(context.Background(), k, mapM, runM, scheme, cfg)
}

// CrossEvaluateContext is CrossEvaluate with cooperative cancellation, input
// validation and panic capture — the same fault-isolation contract as
// EvaluateContext.
func CrossEvaluateContext(ctx context.Context, k *Kernel, mapM, runM *Machine, scheme Scheme, cfg Config) (run *Run, err error) {
	if scheme != SchemeTopologyAware && scheme != SchemeCombined {
		return nil, fmt.Errorf("repro: CrossEvaluate supports the topology-aware schemes, got %v", scheme)
	}
	if err := validateEval(k, mapM); err != nil {
		return nil, err
	}
	if err := validateEval(k, runM); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	stage := "map"
	defer capturePanic(&stage, &run, &err)
	cfg.BlockBytes = resolveBlockBytes(cfg.BlockBytes, k, mapM)
	run = &Run{Kernel: k, Machine: runM, Scheme: scheme, Config: cfg}
	layout := k.Layout(cfg.BlockBytes)

	start := time.Now()
	res, _, tg, groupDeps, err := mapTopologyAware(k, mapM, scheme, cfg, layout)
	if err != nil {
		return nil, err
	}
	// Re-home the mapping onto the execution machine.
	folded := make([][]int, runM.NumCores())
	for c, gs := range res.PerCore {
		dst := c % runM.NumCores()
		folded[dst] = append(folded[dst], gs...)
	}
	res.PerCore = folded
	res.Machine = runM
	var sched *schedule.Schedule
	if scheme == SchemeCombined {
		sched, err = schedule.Build(res, groupDeps, schedule.Options{Alpha: cfg.Alpha, Beta: cfg.Beta, Hamming: cfg.HammingSched})
	} else {
		sched, err = schedule.DefaultOrder(res, groupDeps)
	}
	if err != nil {
		return nil, err
	}
	run.Mapping, run.Schedule, run.Groups = res, sched, len(tg.Groups)
	run.HasDeps = groupDeps != nil && groupDeps.NumEdges() > 0
	run.MapTime = time.Since(start)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prog := trace.StreamSchedule(sched, res, k.Refs, layout)
	sim, phases, err := simulateChecked(ctx, &stage, runM, finishProgram(prog, cfg), evalID(k.Name, runM.Name, scheme, mapM.Name), cfg)
	if err != nil {
		return nil, err
	}
	run.Sim, run.SimPhases = sim, phases
	return run, nil
}

// SearchContext packages everything the optimal-mapping search (the Fig 20
// ILP stand-in) needs: the tagged groups of a kernel, a seed assignment
// from the topology-aware mapper, and a cost oracle that simulates an
// arbitrary group-to-core assignment on the machine.
type SearchContext struct {
	Kernel  *Kernel
	Machine *Machine
	Result  *MapResult
	layout  *poly.Layout
	deps    *affinity.Digraph
}

// NewSearchContext tags the kernel, runs the topology-aware distribution
// as the seed, and returns a context whose Cost function evaluates any
// reassignment of the resulting groups.
func NewSearchContext(k *Kernel, m *Machine, cfg Config) (*SearchContext, error) {
	cfg.BlockBytes = resolveBlockBytes(cfg.BlockBytes, k, m)
	layout := k.Layout(cfg.BlockBytes)
	res, _, _, groupDeps, err := mapTopologyAware(k, m, SchemeTopologyAware, cfg, layout)
	if err != nil {
		return nil, err
	}
	return &SearchContext{Kernel: k, Machine: m, Result: res, layout: layout, deps: groupDeps}, nil
}

// NumGroups returns the number of assignable groups.
func (sc *SearchContext) NumGroups() int { return len(sc.Result.Groups) }

// Seed returns the topology-aware assignment as a starting point.
func (sc *SearchContext) Seed() [][]int { return sc.Result.PerCore }

// Cost simulates the assignment (default intra-core order) and returns
// total cycles.
func (sc *SearchContext) Cost(perCore [][]int) (uint64, error) {
	trial := &core.Result{
		Groups:    sc.Result.Groups,
		Origin:    sc.Result.Origin,
		PerCore:   perCore,
		SplitPrec: sc.Result.SplitPrec,
		SelfDep:   sc.Result.SelfDep,
		Machine:   sc.Machine,
	}
	sched, err := schedule.DefaultOrder(trial, sc.deps)
	if err != nil {
		return 0, err
	}
	prog := trace.StreamSchedule(sched, trial, sc.Kernel.Refs, sc.layout)
	sim, err := cachesim.SimulateOnce(sc.Machine, prog)
	if err != nil {
		return 0, err
	}
	return sim.TotalCycles, nil
}

// GeneratePerCoreCode renders the per-core loop pseudo-code of a mapping
// (the Omega codegen role, §3.4), one code block per core.
func GeneratePerCoreCode(run *Run) []string {
	if run.Mapping == nil || run.Schedule == nil {
		return nil
	}
	names := run.Kernel.Nest.Names()
	out := make([]string, len(run.Mapping.PerCore))
	perCore := run.Schedule.PerCore()
	for c, gs := range perCore {
		if len(gs) == 0 {
			out[c] = "/* idle */\n"
			continue
		}
		code := ""
		for _, g := range gs {
			grp := run.Mapping.Groups[g]
			code += fmt.Sprintf("/* group %d, tag %s, %d iterations */\n", g, grp.Tag, grp.Size())
			code += poly.Codegen(grp.Iters, names, "body")
		}
		out[c] = code
	}
	return out
}
