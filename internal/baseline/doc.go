// Package baseline implements the comparison schemes of §4.1:
//
//   - Base: the original parallel code — iterations are distributed across
//     cores in contiguous chunks (the default static distribution of
//     parallelizing compilers) and executed in program order.
//   - Base+: the state-of-the-art intra-core locality optimization — the
//     same iteration-to-core assignment as Base, but each core's iterations
//     are reordered by the best of a set of classic loop transformations
//     (loop permutation and iteration-space tiling with a swept tile size),
//     chosen per core by measuring misses on a private-cache model; this is
//     "conventional locality optimization applied to each core separately".
//   - Local: the §4.2/Fig 15 variant — the default (Base) distribution, but
//     each core's iterations are tag-grouped and locally reorganized with
//     the Fig 7 scheduling heuristic.
//
// All three use exactly the same set of iterations per core as each other;
// only ordering differs (Base vs Base+ vs Local), matching the paper's
// controlled comparison. TopologyAware (package core) changes the
// assignment itself.
package baseline
