package baseline

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/poly"
	"repro/internal/schedule"
	"repro/internal/tags"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Base splits the nest's iterations into ncores contiguous chunks in
// program order — the canonical static OpenMP-style distribution.
func Base(k *workloads.Kernel, ncores int) [][]poly.Point {
	return Chunks(k.Nest.Points(), ncores)
}

// Chunks splits an iteration list into n near-equal contiguous chunks.
func Chunks(iters []poly.Point, n int) [][]poly.Point {
	out := make([][]poly.Point, n)
	total := len(iters)
	start := 0
	for c := 0; c < n; c++ {
		size := total / n
		if c < total%n {
			size++
		}
		out[c] = iters[start : start+size]
		start += size
	}
	return out
}

// BasePlus reorders each Base chunk with the best candidate transformation
// (identity, loop permutation, tiling at several tile sizes, permuted
// tiling), selected by simulated misses on the core's private cache(s).
// The machine supplies the private L1 parameters the tile search targets.
// Loops with carried dependences are left in program order — the candidate
// reorderings are only legal for fully parallel chunks (a production
// compiler would run the xform legality check per candidate; our Table 2
// suite is fully parallel, so the conservative guard only fires for the
// dependence study kernels).
func BasePlus(k *workloads.Kernel, m *topology.Machine, blockBytes int64) ([][]poly.Point, error) {
	layout := k.Layout(blockBytes)
	chunks := Base(k, m.NumCores())
	if deps.HasLoopCarried(k.Nest.Points(), k.Refs, layout) {
		return chunks, nil
	}
	l1, err := privateL1(m)
	if err != nil {
		return nil, err
	}
	out := make([][]poly.Point, len(chunks))
	for c, chunk := range chunks {
		out[c] = bestOrder(chunk, k.Refs, layout, l1)
	}
	return out, nil
}

// privateL1 returns the first core's L1 cache node (all paper machines are
// homogeneous). A machine with no cores or no caches is an error, not a
// panic: custom JSON machine descriptions reach this path unvalidated.
func privateL1(m *topology.Machine) (*topology.Node, error) {
	path, err := m.PathToRoot(0)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	for _, n := range path {
		if n.Kind == topology.Cache {
			return n, nil
		}
	}
	return nil, fmt.Errorf("baseline: machine %s has no caches", m.Name)
}

// candidate is one loop transformation applied to an iteration list.
type candidate struct {
	name  string
	order []poly.Point
}

// bestOrder generates the candidate orders for a chunk and returns the one
// with the fewest private-cache misses.
func bestOrder(chunk []poly.Point, refs []*poly.Ref, layout *poly.Layout, l1 *topology.Node) []poly.Point {
	if len(chunk) == 0 {
		return chunk
	}
	cands := Candidates(chunk)
	best := cands[0].order
	bestMiss := privateMisses(cands[0].order, refs, layout, l1)
	for _, cand := range cands[1:] {
		if miss := privateMisses(cand.order, refs, layout, l1); miss < bestMiss {
			best, bestMiss = cand.order, miss
		}
	}
	return best
}

// Candidates enumerates the §4.1 transformation space: identity, loop
// permutation (interchange), and iteration-space tiling with tile sizes
// {16, 32, 64, 128} in both loop orders. One-dimensional chunks only admit
// identity and tiling (which is a no-op on a contiguous 1-D walk, so they
// reduce to identity).
func Candidates(chunk []poly.Point) []candidate {
	dims := len(chunk[0])
	cands := []candidate{{name: "identity", order: chunk}}
	if dims < 2 {
		return cands
	}
	cands = append(cands, candidate{name: "permute", order: reorder(chunk, func(p poly.Point) []int64 {
		return []int64{p[1], p[0]}
	})})
	for _, t := range []int64{16, 32, 64, 128} {
		t := t
		cands = append(cands,
			candidate{name: fmt.Sprintf("tile%d", t), order: reorder(chunk, func(p poly.Point) []int64 {
				return []int64{p[0] / t, p[1] / t, p[0], p[1]}
			})},
			candidate{name: fmt.Sprintf("tile%d-perm", t), order: reorder(chunk, func(p poly.Point) []int64 {
				return []int64{p[1] / t, p[0] / t, p[1], p[0]}
			})},
		)
	}
	return cands
}

// reorder stably sorts a copy of the points by the given key.
func reorder(chunk []poly.Point, key func(poly.Point) []int64) []poly.Point {
	out := append([]poly.Point(nil), chunk...)
	sort.SliceStable(out, func(i, j int) bool {
		ki, kj := key(out[i]), key(out[j])
		for x := range ki {
			if ki[x] != kj[x] {
				return ki[x] < kj[x]
			}
		}
		return false
	})
	return out
}

// privateMisses counts misses of the chunk's reference stream on a single
// set-associative LRU cache with the node's parameters — the per-core
// cost model the Base+ tile search minimizes. The stream is pulled from
// the same lazy trace generator the simulator consumes (one single-core
// cursor per candidate order), so the tile search never materializes a
// trace either.
func privateMisses(order []poly.Point, refs []*poly.Ref, layout *poly.Layout, l1 *topology.Node) int {
	lineBits := uint(0)
	for (int64(1) << lineBits) < l1.LineBytes {
		lineBits++
	}
	sets := int(l1.SizeBytes / (int64(l1.Assoc) * l1.LineBytes))
	if sets < 1 {
		sets = 1
	}
	assoc := l1.Assoc
	lines := make([]int64, sets*assoc)
	stamp := make([]uint64, sets*assoc)
	for i := range lines {
		lines[i] = -1
	}
	var tick uint64
	misses := 0
	cur := trace.StreamOrder([][]poly.Point{order}, refs, layout).Cursor(0, 0)
	for a, ok := cur.Next(); ok; a, ok = cur.Next() {
		tag := a.Addr >> lineBits
		set := int(tag % int64(sets))
		base := set * assoc
		tick++
		hit := false
		for w := 0; w < assoc; w++ {
			if lines[base+w] == tag {
				stamp[base+w] = tick
				hit = true
				break
			}
		}
		if hit {
			continue
		}
		misses++
		victim := base
		for w := 0; w < assoc; w++ {
			if lines[base+w] == -1 {
				victim = base + w
				break
			}
			if stamp[base+w] < stamp[victim] {
				victim = base + w
			}
		}
		lines[victim] = tag
		stamp[victim] = tick
	}
	return misses
}

// Local builds the Fig 15 "Local" scheme: Base distribution, per-core tag
// grouping, Fig 7 local reorganization. It returns the distribution result
// and schedule ready for tracing.
func Local(k *workloads.Kernel, m *topology.Machine, blockBytes int64, opt schedule.Options) (*core.Result, *schedule.Schedule, error) {
	layout := k.Layout(blockBytes)
	chunks := Base(k, m.NumCores())
	res := &core.Result{Machine: m, PerCore: make([][]int, m.NumCores())}
	for c, chunk := range chunks {
		if len(chunk) == 0 {
			continue
		}
		tg := tags.Compute(chunk, k.Refs, layout)
		for _, g := range tg.Groups {
			id := len(res.Groups)
			res.Groups = append(res.Groups, &tags.Group{ID: id, Tag: g.Tag, Iters: g.Iters})
			res.Origin = append(res.Origin, id)
			res.PerCore[c] = append(res.PerCore[c], id)
		}
	}
	sched, err := schedule.Build(res, nil, opt)
	if err != nil {
		return nil, nil, fmt.Errorf("baseline: local scheduling: %w", err)
	}
	return res, sched, nil
}
