package baseline

import (
	"testing"

	"repro/internal/poly"
	"repro/internal/schedule"
	"repro/internal/topology"
	"repro/internal/workloads"
)

func TestChunksEven(t *testing.T) {
	pts := make([]poly.Point, 10)
	for i := range pts {
		pts[i] = poly.Pt(int64(i))
	}
	chunks := Chunks(pts, 3)
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d", len(chunks))
	}
	sizes := []int{len(chunks[0]), len(chunks[1]), len(chunks[2])}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
	// Contiguous, ordered, complete.
	idx := 0
	for _, c := range chunks {
		for _, p := range c {
			if p[0] != int64(idx) {
				t.Fatalf("chunking reordered points: %v at %d", p, idx)
			}
			idx++
		}
	}
}

func TestChunksMoreCoresThanIters(t *testing.T) {
	pts := []poly.Point{poly.Pt(0), poly.Pt(1)}
	chunks := Chunks(pts, 5)
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	if total != 2 {
		t.Fatalf("chunking lost iterations: %d", total)
	}
}

func TestBaseCoversKernel(t *testing.T) {
	k, err := workloads.ByName("sp")
	if err != nil {
		t.Fatal(err)
	}
	chunks := Base(k, 12)
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	if total != k.Iterations() {
		t.Fatalf("Base covers %d of %d iterations", total, k.Iterations())
	}
}

func TestCandidates1D(t *testing.T) {
	chunk := []poly.Point{poly.Pt(0), poly.Pt(1)}
	cands := Candidates(chunk)
	if len(cands) != 1 || cands[0].name != "identity" {
		t.Fatalf("1-D candidates = %d", len(cands))
	}
}

func TestCandidates2D(t *testing.T) {
	var chunk []poly.Point
	for i := int64(0); i < 4; i++ {
		for j := int64(0); j < 4; j++ {
			chunk = append(chunk, poly.Pt(i, j))
		}
	}
	cands := Candidates(chunk)
	// identity + permute + 4 tile sizes x 2 orders = 10.
	if len(cands) != 10 {
		t.Fatalf("2-D candidates = %d, want 10", len(cands))
	}
	for _, c := range cands {
		if len(c.order) != len(chunk) {
			t.Fatalf("candidate %s changed size", c.name)
		}
	}
	// The permuted candidate walks j-major.
	var perm []poly.Point
	for _, c := range cands {
		if c.name == "permute" {
			perm = c.order
		}
	}
	if perm[0][1] != 0 || perm[1][1] != 0 || perm[1][0] != 1 {
		t.Fatalf("permute order wrong: %v %v", perm[0], perm[1])
	}
}

func TestBasePlusImprovesTransposedWalk(t *testing.T) {
	// applu walks a Fortran-layout grid in C order; per-core permutation
	// must reduce private-cache misses, so Base+ must pick a non-identity
	// order and its miss count must be at most the identity's.
	k, err := workloads.ByName("applu")
	if err != nil {
		t.Fatal(err)
	}
	m := topology.Dunnington()
	layout := k.Layout(2048)
	chunks := Base(k, m.NumCores())
	l1, err := privateL1(m)
	if err != nil {
		t.Fatal(err)
	}
	identity := privateMisses(chunks[0], k.Refs, layout, l1)
	best := bestOrder(chunks[0], k.Refs, layout, l1)
	bestMisses := privateMisses(best, k.Refs, layout, l1)
	if bestMisses > identity {
		t.Fatalf("Base+ search made things worse: %d > %d", bestMisses, identity)
	}
	if bestMisses == identity {
		t.Fatalf("Base+ found no improvement on the layout-mismatch kernel (identity=%d)", identity)
	}
}

func TestBasePlusPreservesIterations(t *testing.T) {
	k, err := workloads.ByName("povray")
	if err != nil {
		t.Fatal(err)
	}
	m := topology.Dunnington()
	out, err := BasePlus(k, m, 2048)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	total := 0
	for _, chunk := range out {
		for _, p := range chunk {
			if seen[p.String()] {
				t.Fatalf("iteration %v duplicated", p)
			}
			seen[p.String()] = true
			total++
		}
	}
	if total != k.Iterations() {
		t.Fatalf("Base+ covers %d of %d", total, k.Iterations())
	}
}

func TestLocalValidSchedule(t *testing.T) {
	k, err := workloads.ByName("fig5")
	if err != nil {
		t.Fatal(err)
	}
	m := topology.Dunnington()
	res, sched, err := Local(k, m, 2048, schedule.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.Validate(sched, res, nil); err != nil {
		t.Fatal(err)
	}
	// Local must keep the Base distribution: core c's iterations are the
	// contiguous chunk c.
	chunks := Base(k, m.NumCores())
	for c, gs := range res.PerCore {
		want := map[string]bool{}
		for _, p := range chunks[c] {
			want[p.String()] = true
		}
		got := 0
		for _, g := range gs {
			for _, p := range res.Groups[g].Iters {
				if !want[p.String()] {
					t.Fatalf("core %d got foreign iteration %v", c, p)
				}
				got++
			}
		}
		if got != len(chunks[c]) {
			t.Fatalf("core %d has %d of %d iterations", c, got, len(chunks[c]))
		}
	}
}

func TestPrivateMissesSanity(t *testing.T) {
	// A repeated single line must miss once.
	a := poly.NewArray("A", 8)
	refs := []*poly.Ref{poly.NewRef(a, poly.Read, poly.Var(0, 1).Scale(0))}
	layout := poly.NewLayout(256, a)
	pts := []poly.Point{poly.Pt(0), poly.Pt(1), poly.Pt(2)}
	l1, err := privateL1(topology.Dunnington())
	if err != nil {
		t.Fatal(err)
	}
	if got := privateMisses(pts, refs, layout, l1); got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
}
