package trace

import (
	"testing"

	"repro/internal/core"
	"repro/internal/poly"
	"repro/internal/schedule"
	"repro/internal/tags"
)

// tinySetup builds a 2-group, 2-core scheduled mapping by hand.
func tinySetup() (*core.Result, []*poly.Ref, *poly.Layout) {
	a := poly.NewArray("A", 64)
	refs := []*poly.Ref{
		poly.NewRef(a, poly.Read, poly.Var(0, 1)),
		poly.NewRef(a, poly.Write, poly.Var(0, 1).AddConst(1)),
	}
	layout := poly.NewLayout(256, a)
	g0 := &tags.Group{ID: 0, Tag: tags.NewTag(2), Iters: []poly.Point{poly.Pt(0), poly.Pt(1)}}
	g1 := &tags.Group{ID: 1, Tag: tags.NewTag(2), Iters: []poly.Point{poly.Pt(10)}}
	res := &core.Result{
		Groups:  []*tags.Group{g0, g1},
		Origin:  []int{0, 1},
		PerCore: [][]int{{0}, {1}},
	}
	return res, refs, layout
}

func TestFromScheduleCounts(t *testing.T) {
	res, refs, layout := tinySetup()
	s := &schedule.Schedule{NumCores: 2, Rounds: [][][]int{{{0}, {1}}}}
	p := FromSchedule(s, res, refs, layout)
	if p.NumCores != 2 {
		t.Fatalf("NumCores = %d", p.NumCores)
	}
	// 3 iterations x 2 refs = 6 accesses.
	if p.NumAccesses() != 6 {
		t.Fatalf("NumAccesses = %d, want 6", p.NumAccesses())
	}
	if len(p.Rounds[0][0]) != 4 || len(p.Rounds[0][1]) != 2 {
		t.Fatalf("per-core access counts: %d, %d", len(p.Rounds[0][0]), len(p.Rounds[0][1]))
	}
}

func TestFromScheduleAddressesAndKinds(t *testing.T) {
	res, refs, layout := tinySetup()
	s := &schedule.Schedule{NumCores: 2, Rounds: [][][]int{{{0}, {1}}}}
	p := FromSchedule(s, res, refs, layout)
	// Iteration 0: read A[0] at addr 0, write A[1] at addr 8.
	a0 := p.Rounds[0][0][0]
	a1 := p.Rounds[0][0][1]
	if a0.Addr != 0 || a0.Write {
		t.Fatalf("access 0 = %+v", a0)
	}
	if a1.Addr != 8 || !a1.Write {
		t.Fatalf("access 1 = %+v", a1)
	}
	// Core 1, iteration 10: read A[10] at 80.
	if p.Rounds[0][1][0].Addr != 80 {
		t.Fatalf("core 1 access = %+v", p.Rounds[0][1][0])
	}
}

func TestFromScheduleFlattensUnsynchronized(t *testing.T) {
	res, refs, layout := tinySetup()
	s := &schedule.Schedule{
		NumCores:     2,
		Synchronized: false,
		Rounds:       [][][]int{{{0}, nil}, {nil, {1}}},
	}
	p := FromSchedule(s, res, refs, layout)
	if len(p.Rounds) != 1 {
		t.Fatalf("unsynchronized schedule kept %d rounds", len(p.Rounds))
	}
	if p.NumAccesses() != 6 {
		t.Fatalf("flattening lost accesses: %d", p.NumAccesses())
	}
}

func TestFromScheduleKeepsSynchronizedRounds(t *testing.T) {
	res, refs, layout := tinySetup()
	s := &schedule.Schedule{
		NumCores:     2,
		Synchronized: true,
		Rounds:       [][][]int{{{0}, nil}, {nil, {1}}},
	}
	p := FromSchedule(s, res, refs, layout)
	if len(p.Rounds) != 2 || !p.Synchronized {
		t.Fatalf("synchronized schedule flattened: %d rounds", len(p.Rounds))
	}
}

func TestFromOrder(t *testing.T) {
	_, refs, layout := tinySetup()
	perCore := [][]poly.Point{
		{poly.Pt(0), poly.Pt(1)},
		{poly.Pt(5)},
	}
	p := FromOrder(perCore, refs, layout)
	if p.Synchronized {
		t.Fatal("FromOrder must be unsynchronized")
	}
	if p.NumAccesses() != 6 {
		t.Fatalf("NumAccesses = %d", p.NumAccesses())
	}
	// Order preserved: first access of core 0 is iteration 0's read.
	if p.Rounds[0][0][0].Addr != 0 || p.Rounds[0][0][2].Addr != 8 {
		t.Fatal("iteration order not preserved")
	}
}

func TestAccessSizeFromElemSize(t *testing.T) {
	a := poly.NewArray("A", 8).WithElemSize(64)
	refs := []*poly.Ref{poly.NewRef(a, poly.Read, poly.Var(0, 1))}
	layout := poly.NewLayout(2048, a)
	p := FromOrder([][]poly.Point{{poly.Pt(2)}}, refs, layout)
	if p.Rounds[0][0][0].Size != 64 {
		t.Fatalf("Size = %d, want 64", p.Rounds[0][0][0].Size)
	}
	if p.Rounds[0][0][0].Addr != 128 {
		t.Fatalf("Addr = %d, want 128", p.Rounds[0][0][0].Addr)
	}
}
