package trace

import (
	"reflect"
	"testing"

	"repro/internal/poly"
	"repro/internal/schedule"
)

// drain pulls every access from a cursor.
func drain(c Cursor) []Access {
	var out []Access
	for a, ok := c.Next(); ok; a, ok = c.Next() {
		out = append(out, a)
	}
	return out
}

func TestScheduleCursorSemantics(t *testing.T) {
	res, refs, layout := tinySetup()
	s := &schedule.Schedule{NumCores: 2, Rounds: [][][]int{{{0}, {1}}}}
	src := StreamSchedule(s, res, refs, layout)

	if src.CoreCount() != 2 || src.RoundCount() != 1 || src.Sync() {
		t.Fatalf("shape: cores=%d rounds=%d sync=%v", src.CoreCount(), src.RoundCount(), src.Sync())
	}
	if src.NumAccesses() != 6 {
		t.Fatalf("NumAccesses = %d, want 6", src.NumAccesses())
	}

	cur := src.Cursor(0, 0)
	if cur.Len() != 4 {
		t.Fatalf("core 0 Len = %d, want 4", cur.Len())
	}
	first := drain(cur)
	if len(first) != 4 {
		t.Fatalf("drained %d accesses, want Len() = 4", len(first))
	}
	// Len is position-independent and the stream stays drained.
	if cur.Len() != 4 {
		t.Errorf("Len after drain = %d, want 4", cur.Len())
	}
	if _, ok := cur.Next(); ok {
		t.Error("Next after drain returned an access")
	}
	// Reset rewinds to an identical second pass.
	cur.Reset()
	if second := drain(cur); !reflect.DeepEqual(first, second) {
		t.Errorf("pass after Reset differs:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

func TestOrderCursorSemantics(t *testing.T) {
	a := poly.NewArray("A", 16)
	refs := []*poly.Ref{poly.NewRef(a, poly.Read, poly.Var(0, 1))}
	layout := poly.NewLayout(64, a)
	perCore := [][]poly.Point{
		{poly.Pt(0), poly.Pt(1), poly.Pt(2)},
		{}, // a core with no work still yields a valid empty cursor
	}
	src := StreamOrder(perCore, refs, layout)
	if src.CoreCount() != 2 || src.RoundCount() != 1 || src.Sync() {
		t.Fatalf("shape: cores=%d rounds=%d sync=%v", src.CoreCount(), src.RoundCount(), src.Sync())
	}
	if src.NumAccesses() != 3 {
		t.Fatalf("NumAccesses = %d, want 3", src.NumAccesses())
	}
	got := drain(src.Cursor(0, 0))
	want := []Access{{Addr: 0, Size: 8}, {Addr: 8, Size: 8}, {Addr: 16, Size: 8}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("core 0 stream = %+v, want %+v", got, want)
	}
	empty := src.Cursor(0, 1)
	if empty.Len() != 0 {
		t.Errorf("empty core Len = %d", empty.Len())
	}
	if _, ok := empty.Next(); ok {
		t.Error("empty core yielded an access")
	}
}

// TestMaterializeRoundTrip: Materialize(Stream*) equals the From* programs
// (they are the same generator by construction), and a materialized Program
// streams back its own accesses via the Source interface.
func TestMaterializeRoundTrip(t *testing.T) {
	res, refs, layout := tinySetup()
	s := &schedule.Schedule{NumCores: 2, Rounds: [][][]int{{{0}, {1}}}, Synchronized: true}
	p := FromSchedule(s, res, refs, layout)
	if q := Materialize(StreamSchedule(s, res, refs, layout)); !reflect.DeepEqual(p, q) {
		t.Errorf("Materialize(StreamSchedule) != FromSchedule:\n%+v\n%+v", q, p)
	}
	// Program implements Source: materializing it again is the identity.
	if q := Materialize(p); !reflect.DeepEqual(p, q) {
		t.Errorf("Materialize(Program) not the identity:\n%+v\n%+v", q, p)
	}
	if p.CoreCount() != p.NumCores || p.RoundCount() != len(p.Rounds) || p.Sync() != p.Synchronized {
		t.Error("Program Source accessors disagree with its fields")
	}
	if got := drain(p.Cursor(0, 0)); !reflect.DeepEqual(got, p.Rounds[0][0]) {
		t.Errorf("Program cursor = %+v, want %+v", got, p.Rounds[0][0])
	}
}

// TestStreamScheduleFlattensUnsynchronized: without required barriers the
// pacing rounds collapse into one free-running round, exactly like
// FromSchedule.
func TestStreamScheduleFlattensUnsynchronized(t *testing.T) {
	res, refs, layout := tinySetup()
	s := &schedule.Schedule{NumCores: 2, Rounds: [][][]int{{{0}, {}}, {{}, {1}}}}
	src := StreamSchedule(s, res, refs, layout)
	if src.RoundCount() != 1 {
		t.Fatalf("RoundCount = %d, want 1 (flattened)", src.RoundCount())
	}
	if !reflect.DeepEqual(Materialize(src), FromSchedule(s, res, refs, layout)) {
		t.Error("flattened stream differs from FromSchedule")
	}
}

func TestRepeat(t *testing.T) {
	a := poly.NewArray("A", 8)
	refs := []*poly.Ref{poly.NewRef(a, poly.Read, poly.Var(0, 1))}
	layout := poly.NewLayout(64, a)
	base := StreamOrder([][]poly.Point{{poly.Pt(0), poly.Pt(1)}}, refs, layout)

	if Repeat(base, 1) != base {
		t.Error("Repeat(src, 1) should return src unchanged")
	}
	r := Repeat(base, 3)
	if r.RoundCount() != 3 || r.NumAccesses() != 6 || r.CoreCount() != 1 {
		t.Fatalf("Repeat shape: rounds=%d accesses=%d cores=%d", r.RoundCount(), r.NumAccesses(), r.CoreCount())
	}
	want := drain(base.Cursor(0, 0))
	for round := 0; round < 3; round++ {
		if got := drain(r.Cursor(round, 0)); !reflect.DeepEqual(got, want) {
			t.Errorf("round %d = %+v, want %+v", round, got, want)
		}
	}
}
