package trace_test

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/poly"
	"repro/internal/schedule"
	"repro/internal/tags"
	"repro/internal/topology"
	"repro/internal/trace"
)

// edgeRefs builds one array and one read reference over a 1-D nest.
func edgeRefs() ([]*poly.Array, []*poly.Ref) {
	a := poly.NewArray("A", 64)
	return []*poly.Array{a}, []*poly.Ref{poly.NewRef(a, poly.Read, poly.Var(0, 1))}
}

// TestStreamOrderEmptyCores: cores with no iterations produce empty
// cursors, the totals stay consistent, and the simulator accepts the
// stream without special-casing.
func TestStreamOrderEmptyCores(t *testing.T) {
	arrays, refs := edgeRefs()
	layout := poly.NewLayout(2048, arrays...)
	perCore := [][]poly.Point{
		{},
		{{0}, {1}, {2}},
		{},
	}
	src := trace.StreamOrder(perCore, refs, layout)
	if src.NumAccesses() != 3 {
		t.Fatalf("NumAccesses = %d, want 3", src.NumAccesses())
	}
	for _, c := range []int{0, 2} {
		cur := src.Cursor(0, c)
		if cur.Len() != 0 {
			t.Errorf("core %d cursor Len = %d, want 0", c, cur.Len())
		}
		if _, ok := cur.Next(); ok {
			t.Errorf("core %d cursor yielded an access", c)
		}
	}
	res, err := cachesim.SimulateOnce(tinyMachine(3), src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 3 {
		t.Errorf("simulated %d accesses, want 3", res.Accesses)
	}
}

// TestStreamOrderAllEmpty: a stream with zero accesses simulates to a
// zero-cycle result rather than erroring or hanging.
func TestStreamOrderAllEmpty(t *testing.T) {
	arrays, refs := edgeRefs()
	layout := poly.NewLayout(2048, arrays...)
	src := trace.StreamOrder([][]poly.Point{{}, {}}, refs, layout)
	if src.NumAccesses() != 0 {
		t.Fatalf("NumAccesses = %d, want 0", src.NumAccesses())
	}
	res, err := cachesim.SimulateOnce(tinyMachine(2), src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 0 || res.TotalCycles != 0 {
		t.Errorf("empty program simulated to %d accesses, %d cycles", res.Accesses, res.TotalCycles)
	}
}

// TestStreamScheduleEmptyGroups: a schedule containing groups with no
// iterations — a degenerate tagging is allowed to produce them — streams
// the same accesses as its materialized form and drops nothing else.
func TestStreamScheduleEmptyGroups(t *testing.T) {
	arrays, refs := edgeRefs()
	layout := poly.NewLayout(2048, arrays...)
	groups := []*tags.Group{
		{ID: 0, Iters: []poly.Point{{0}, {1}}},
		{ID: 1, Iters: nil}, // empty group
		{ID: 2, Iters: []poly.Point{{2}}},
	}
	res := &core.Result{
		Groups:  groups,
		PerCore: [][]int{{0, 1}, {2}},
	}
	s := &schedule.Schedule{
		NumCores:     2,
		Rounds:       [][][]int{{{0}, {2}}, {{1}, {}}},
		Synchronized: true,
	}
	src := trace.StreamSchedule(s, res, refs, layout)
	if src.NumAccesses() != 3 {
		t.Fatalf("NumAccesses = %d, want 3", src.NumAccesses())
	}
	mat := trace.Materialize(src)
	if mat.NumAccesses() != 3 {
		t.Fatalf("materialized %d accesses, want 3", mat.NumAccesses())
	}
	sim1, err := cachesim.SimulateOnce(tinyMachine(2), src)
	if err != nil {
		t.Fatal(err)
	}
	sim2, err := cachesim.SimulateOnce(tinyMachine(2), mat)
	if err != nil {
		t.Fatal(err)
	}
	if sim1.TotalCycles != sim2.TotalCycles {
		t.Errorf("streamed %d cycles, materialized %d", sim1.TotalCycles, sim2.TotalCycles)
	}
}

// TestRepeatZeroAndOne: Passes values of 0 and 1 are identity — Repeat
// must hand back the source unchanged, not wrap it into zero rounds.
func TestRepeatZeroAndOne(t *testing.T) {
	arrays, refs := edgeRefs()
	layout := poly.NewLayout(2048, arrays...)
	src := trace.StreamOrder([][]poly.Point{{{0}, {1}}}, refs, layout)
	for _, n := range []int{-1, 0, 1} {
		if got := trace.Repeat(src, n); got != src {
			t.Errorf("Repeat(src, %d) wrapped the source", n)
		}
	}
	rep := trace.Repeat(src, 3)
	if rep.NumAccesses() != 3*src.NumAccesses() {
		t.Errorf("Repeat(3) accesses = %d, want %d", rep.NumAccesses(), 3*src.NumAccesses())
	}
}

// tinyMachine builds an n-core machine with private L1s via the JSON
// loader (the topology node constructors are unexported outside the
// package).
func tinyMachine(n int) *topology.Machine {
	l1 := `{"level":1,"sizeBytes":1024,"assoc":2,"lineBytes":64,"latency":4,"children":[{}]}`
	caches := l1
	for i := 1; i < n; i++ {
		caches += "," + l1
	}
	data := `{"name":"tiny","clockGHz":1,"memLatency":100,"root":{"children":[` + caches + `]}}`
	m, err := topology.UnmarshalMachine([]byte(data))
	if err != nil {
		panic(err)
	}
	return m
}
