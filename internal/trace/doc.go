// Package trace lowers a scheduled mapping to per-core memory reference
// streams. Each iteration of each scheduled group yields, in order, one
// access per array reference at its exact byte address; barrier rounds
// are preserved so the simulator can enforce synchronization.
//
// The production representation is streaming: a Source hands out lazy
// Cursors (one per round per core) that synthesize each Access on demand
// from its (group, iteration, reference) indices, so a cell in flight
// carries O(cores + rounds) trace state instead of O(accesses) — see
// StreamSchedule and StreamOrder. Cursors precompute their exact lengths
// from group sizes, so access accounting needs no expansion either.
//
// The materialized Program survives as the debugging representation: it
// implements Source too, Materialize expands any Source into one, and
// FromSchedule/FromOrder are Materialize composed with the streaming
// generators — one generator, two representations, no possibility of
// drift. TestStreamingMatchesMaterialized (package repro) holds the
// simulator to identical results on both.
package trace
