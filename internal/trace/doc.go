// Package trace lowers a scheduled mapping to per-core memory reference
// streams. Each iteration of each scheduled group yields, in order, one
// access per array reference at its exact byte address; barrier rounds
// are preserved so the simulator can enforce synchronization.
//
// The production representation is streaming: a Source hands out lazy
// Cursors (one per round per core) that synthesize each Access on demand
// from its (group, iteration, reference) indices, so a cell in flight
// carries O(cores + rounds) trace state instead of O(accesses) — see
// StreamSchedule and StreamOrder. Cursors precompute their exact lengths
// from group sizes, so access accounting needs no expansion either.
//
// The materialized Program survives as the debugging representation: it
// implements Source too, Materialize expands any Source into one, and
// FromSchedule/FromOrder are Materialize composed with the streaming
// generators — one generator, two representations, no possibility of
// drift. TestStreamingMatchesMaterialized (package repro) holds the
// simulator to identical results on both.
//
// Len is a contract, not a hint: a Cursor must deliver exactly Len()
// accesses before reporting exhaustion. The simulator's hit/miss
// accounting and the experiment metrics both derive access counts from
// cursor lengths, and under self-checking (internal/check) the simulator
// enforces the contract at runtime — a cursor that drains early or yields
// extra accesses aborts the cell with a cursor-short/cursor-overrun
// invariant violation. internal/chaos deliberately breaks the contract to
// prove the enforcement fires.
package trace
