// Package trace lowers a scheduled mapping to per-core memory reference
// streams. Each iteration of each scheduled group is expanded, in order,
// into one access per array reference at its exact byte address; barrier
// rounds are preserved so the simulator can enforce synchronization.
//
// Trace expansion sits on the experiment hot path (one access record per
// simulated reference), so both expanders pre-count their output and
// allocate each core's access slice at exact capacity instead of growing
// it by appends.
package trace
