package trace

import (
	"reflect"
	"testing"

	"repro/internal/poly"
	"repro/internal/schedule"
)

// drainBatch pulls every access from a cursor through Pull with the given
// batch size.
func drainBatch(c Cursor, size int) []Access {
	var out []Access
	buf := make([]Access, size)
	for {
		n := Pull(c, buf)
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
	}
}

// batchSources enumerates one source of every cursor kind: materialized
// program (sliceCursor), scheduled stream (groupCursor) and explicit order
// (orderCursor).
func batchSources() map[string]Source {
	res, refs, layout := tinySetup()
	s := &schedule.Schedule{NumCores: 2, Rounds: [][][]int{{{0}, {1}}, {{1}, {0}}}, Synchronized: true}
	sched := StreamSchedule(s, res, refs, layout)

	a := poly.NewArray("A", 32)
	orefs := []*poly.Ref{
		poly.NewRef(a, poly.Read, poly.Var(0, 1)),
		poly.NewRef(a, poly.Write, poly.Var(0, 1).AddConst(2)),
	}
	olayout := poly.NewLayout(64, a)
	perCore := [][]poly.Point{
		{poly.Pt(0), poly.Pt(3), poly.Pt(7), poly.Pt(1), poly.Pt(9)},
		{poly.Pt(2)},
	}
	order := StreamOrder(perCore, orefs, olayout)

	return map[string]Source{
		"schedule":     sched,
		"order":        order,
		"materialized": Materialize(sched),
	}
}

// TestPullMatchesNext: for every cursor kind and a range of batch sizes
// (including sizes that straddle group/iteration boundaries and sizes larger
// than the stream), Pull yields exactly the access sequence Next yields.
func TestPullMatchesNext(t *testing.T) {
	for name, src := range batchSources() {
		for r := 0; r < src.RoundCount(); r++ {
			for c := 0; c < src.CoreCount(); c++ {
				want := drain(src.Cursor(r, c))
				for _, size := range []int{1, 2, 3, 5, 7, 256} {
					got := drainBatch(src.Cursor(r, c), size)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s (r=%d c=%d) batch size %d: got %d accesses %+v, want %d %+v",
							name, r, c, size, len(got), got, len(want), want)
					}
				}
			}
		}
	}
}

// TestPullResumesMidStream: mixing Next and Pull on one cursor walks the
// same stream — batch pulls pick up exactly where per-access pulls left off.
func TestPullResumesMidStream(t *testing.T) {
	for name, src := range batchSources() {
		want := drain(src.Cursor(0, 0))
		if len(want) < 3 {
			t.Fatalf("%s: test stream too short (%d)", name, len(want))
		}
		cur := src.Cursor(0, 0)
		a, ok := cur.Next()
		if !ok || !reflect.DeepEqual(a, want[0]) {
			t.Fatalf("%s: first Next = %+v, %v", name, a, ok)
		}
		rest := drainBatch(cur, 2)
		if !reflect.DeepEqual(rest, want[1:]) {
			t.Errorf("%s: Pull after Next = %+v, want %+v", name, rest, want[1:])
		}
	}
}

// TestPullFallbackCursor: a cursor without NextBatch still works through
// Pull via the per-access fallback.
type nextOnlyCursor struct{ n int }

func (c *nextOnlyCursor) Next() (Access, bool) {
	if c.n >= 5 {
		return Access{}, false
	}
	c.n++
	return Access{Addr: int64(c.n * 64)}, true
}
func (c *nextOnlyCursor) Len() int { return 5 }
func (c *nextOnlyCursor) Reset()   { c.n = 0 }

func TestPullFallbackCursor(t *testing.T) {
	cur := &nextOnlyCursor{}
	buf := make([]Access, 3)
	if n := Pull(cur, buf); n != 3 || buf[0].Addr != 64 || buf[2].Addr != 192 {
		t.Fatalf("first pull: n=%d buf=%+v", n, buf[:n])
	}
	if n := Pull(cur, buf); n != 2 || buf[1].Addr != 320 {
		t.Fatalf("second pull: n=%d buf=%+v", n, buf[:n])
	}
	if n := Pull(cur, buf); n != 0 {
		t.Fatalf("drained pull: n=%d", n)
	}
}
