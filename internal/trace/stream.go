package trace

import (
	"repro/internal/core"
	"repro/internal/poly"
	"repro/internal/schedule"
	"repro/internal/tags"
)

// Cursor streams one core's accesses within one barrier round. A cursor is
// single-use forward iteration state — O(1) words — that synthesizes each
// Access on demand; Reset rewinds it for another pass. Cursors are not safe
// for concurrent use, but distinct cursors over the same underlying data
// are independent.
type Cursor interface {
	// Next returns the next access and true, or the zero Access and false
	// once the stream is drained.
	Next() (Access, bool)
	// Len returns the exact total number of accesses the cursor yields over
	// a full pass, independent of the current position. It is precomputed
	// from group/iteration counts, so progress and access accounting never
	// need a materialized stream.
	Len() int
	// Reset rewinds the cursor to its first access.
	Reset()
}

// Batcher is the optional bulk companion to Cursor. A cursor that can
// synthesize many accesses per call implements NextBatch so hot consumers
// amortize the per-access interface dispatch; consumers reach it through
// Pull, which degrades to Next for cursors (such as fault-injecting
// wrappers) that only stream one access at a time.
type Batcher interface {
	// NextBatch fills dst from the cursor's current position and returns the
	// number of accesses written. A return of 0 with len(dst) > 0 means the
	// stream is drained. The accesses and their order are exactly those the
	// equivalent sequence of Next calls would produce.
	NextBatch(dst []Access) int
}

// Pull fills dst from cur, using the bulk path when the cursor provides one
// and falling back to per-access Next otherwise. It returns the number of
// accesses written; 0 with len(dst) > 0 means the cursor is drained.
func Pull(cur Cursor, dst []Access) int {
	if b, ok := cur.(Batcher); ok {
		return b.NextBatch(dst)
	}
	n := 0
	for n < len(dst) {
		a, ok := cur.Next()
		if !ok {
			break
		}
		dst[n] = a
		n++
	}
	return n
}

// Source is the simulator's streaming input: per barrier round, per core,
// an ordered access stream obtained as a Cursor. A Source carries O(cores +
// rounds) state — never O(accesses) — unless it is a materialized *Program,
// which implements Source too so the two representations stay
// interchangeable (see Materialize).
type Source interface {
	// CoreCount returns the number of cores the source schedules.
	CoreCount() int
	// RoundCount returns the number of barrier rounds.
	RoundCount() int
	// Sync reports whether the rounds end in semantically required barriers.
	Sync() bool
	// Cursor returns a fresh cursor over round r, core c's accesses.
	Cursor(r, c int) Cursor
	// NumAccesses returns the exact total access count across all rounds
	// and cores, from precomputed lengths.
	NumAccesses() int
}

// Source implementation for the materialized Program.

// CoreCount returns the program's core count.
func (p *Program) CoreCount() int { return p.NumCores }

// RoundCount returns the number of barrier rounds.
func (p *Program) RoundCount() int { return len(p.Rounds) }

// Sync reports whether the program's rounds end in required barriers.
func (p *Program) Sync() bool { return p.Synchronized }

// Cursor returns a cursor over the materialized accesses of (r, c).
func (p *Program) Cursor(r, c int) Cursor { return &sliceCursor{as: p.Rounds[r][c]} }

// sliceCursor walks an already materialized access slice.
type sliceCursor struct {
	as  []Access
	pos int
}

func (c *sliceCursor) Next() (Access, bool) {
	if c.pos >= len(c.as) {
		return Access{}, false
	}
	a := c.as[c.pos]
	c.pos++
	return a, true
}

func (c *sliceCursor) Len() int { return len(c.as) }
func (c *sliceCursor) Reset()   { c.pos = 0 }

// NextBatch copies the next run of materialized accesses in one memmove.
func (c *sliceCursor) NextBatch(dst []Access) int {
	n := copy(dst, c.as[c.pos:])
	c.pos += n
	return n
}

// scheduleStream is the lazy Source over a scheduled mapping: it keeps only
// the group-id lists of the schedule (shared, not copied) plus the group
// table, references and layout needed to synthesize each access from its
// (group, iteration, reference) indices.
type scheduleStream struct {
	numCores int
	sync     bool
	rounds   [][][]int // group ids per round per core
	groups   []*tags.Group
	refs     []*poly.Ref
	layout   *poly.Layout
	lens     [][]int // exact access count per round per core
	total    int
}

// StreamSchedule builds the streaming equivalent of FromSchedule: the same
// accesses in the same order, synthesized on demand instead of expanded
// into memory. Unsynchronized schedules are flattened into a single
// free-running round exactly as FromSchedule flattens them (the rounds are
// only a pacing artifact of the Fig 7 algorithm).
func StreamSchedule(s *schedule.Schedule, res *core.Result, refs []*poly.Ref, layout *poly.Layout) Source {
	rounds := s.Rounds
	if !s.Synchronized {
		flat := make([][]int, s.NumCores)
		for _, round := range s.Rounds {
			for c, gs := range round {
				flat[c] = append(flat[c], gs...)
			}
		}
		rounds = [][][]int{flat}
	}
	st := &scheduleStream{
		numCores: s.NumCores,
		sync:     s.Synchronized,
		rounds:   rounds,
		groups:   res.Groups,
		refs:     refs,
		layout:   layout,
	}
	st.lens = make([][]int, len(rounds))
	for r, round := range rounds {
		st.lens[r] = make([]int, s.NumCores)
		for c, gs := range round {
			n := 0
			for _, gid := range gs {
				n += len(res.Groups[gid].Iters) * len(refs)
			}
			st.lens[r][c] = n
			st.total += n
		}
	}
	return st
}

func (s *scheduleStream) CoreCount() int   { return s.numCores }
func (s *scheduleStream) RoundCount() int  { return len(s.rounds) }
func (s *scheduleStream) Sync() bool       { return s.sync }
func (s *scheduleStream) NumAccesses() int { return s.total }

func (s *scheduleStream) Cursor(r, c int) Cursor {
	var gids []int
	if c < len(s.rounds[r]) {
		gids = s.rounds[r][c]
	}
	return &groupCursor{
		gids:   gids,
		groups: s.groups,
		refs:   s.refs,
		layout: s.layout,
		total:  s.lens[r][c],
	}
}

// groupCursor generates the accesses of one core's group list: for each
// group in order, for each iteration point, one access per reference.
type groupCursor struct {
	gids   []int
	groups []*tags.Group
	refs   []*poly.Ref
	layout *poly.Layout
	total  int

	gi, ii, ri int // group, iteration, reference indices
}

func (c *groupCursor) Next() (Access, bool) {
	for c.gi < len(c.gids) {
		iters := c.groups[c.gids[c.gi]].Iters
		if c.ii >= len(iters) {
			c.ii, c.gi = 0, c.gi+1
			continue
		}
		if c.ri >= len(c.refs) {
			c.ri, c.ii = 0, c.ii+1
			continue
		}
		r := c.refs[c.ri]
		c.ri++
		return Access{
			Addr:  c.layout.AddrOf(r, iters[c.ii]),
			Size:  int32(r.Array.ElemSize),
			Write: r.Kind.Writes(),
		}, true
	}
	return Access{}, false
}

func (c *groupCursor) Len() int { return c.total }
func (c *groupCursor) Reset()   { c.gi, c.ii, c.ri = 0, 0, 0 }

// NextBatch synthesizes up to len(dst) accesses without the per-access
// interface dispatch, advancing the (group, iteration, reference) indices
// exactly as repeated Next calls would.
func (c *groupCursor) NextBatch(dst []Access) int {
	n := 0
	for n < len(dst) && c.gi < len(c.gids) {
		iters := c.groups[c.gids[c.gi]].Iters
		if c.ii >= len(iters) {
			c.ii, c.gi = 0, c.gi+1
			continue
		}
		if c.ri >= len(c.refs) {
			c.ri, c.ii = 0, c.ii+1
			continue
		}
		r := c.refs[c.ri]
		c.ri++
		dst[n] = Access{
			Addr:  c.layout.AddrOf(r, iters[c.ii]),
			Size:  int32(r.Array.ElemSize),
			Write: r.Kind.Writes(),
		}
		n++
	}
	return n
}

// orderStream is the lazy Source over explicit per-core iteration orders —
// the streaming equivalent of FromOrder: a single free-running round with
// no synchronization.
type orderStream struct {
	perCore [][]poly.Point
	refs    []*poly.Ref
	layout  *poly.Layout
	total   int
}

// StreamOrder builds the streaming equivalent of FromOrder, used by the
// Base and Base+ baselines, which have no barriers.
func StreamOrder(perCore [][]poly.Point, refs []*poly.Ref, layout *poly.Layout) Source {
	st := &orderStream{perCore: perCore, refs: refs, layout: layout}
	for _, iters := range perCore {
		st.total += len(iters) * len(refs)
	}
	return st
}

func (s *orderStream) CoreCount() int   { return len(s.perCore) }
func (s *orderStream) RoundCount() int  { return 1 }
func (s *orderStream) Sync() bool       { return false }
func (s *orderStream) NumAccesses() int { return s.total }

func (s *orderStream) Cursor(r, c int) Cursor {
	return &orderCursor{iters: s.perCore[c], refs: s.refs, layout: s.layout}
}

// orderCursor generates one access per (iteration, reference) pair of an
// explicit iteration order.
type orderCursor struct {
	iters  []poly.Point
	refs   []*poly.Ref
	layout *poly.Layout
	ii, ri int
}

func (c *orderCursor) Next() (Access, bool) {
	if c.ii >= len(c.iters) {
		return Access{}, false
	}
	r := c.refs[c.ri]
	a := Access{
		Addr:  c.layout.AddrOf(r, c.iters[c.ii]),
		Size:  int32(r.Array.ElemSize),
		Write: r.Kind.Writes(),
	}
	c.ri++
	if c.ri >= len(c.refs) {
		c.ri, c.ii = 0, c.ii+1
	}
	return a, true
}

func (c *orderCursor) Len() int { return len(c.iters) * len(c.refs) }
func (c *orderCursor) Reset()   { c.ii, c.ri = 0, 0 }

// NextBatch synthesizes up to len(dst) accesses in bulk, advancing the
// (iteration, reference) indices exactly as repeated Next calls would.
func (c *orderCursor) NextBatch(dst []Access) int {
	n := 0
	for n < len(dst) && c.ii < len(c.iters) {
		r := c.refs[c.ri]
		dst[n] = Access{
			Addr:  c.layout.AddrOf(r, c.iters[c.ii]),
			Size:  int32(r.Array.ElemSize),
			Write: r.Kind.Writes(),
		}
		n++
		c.ri++
		if c.ri >= len(c.refs) {
			c.ri, c.ii = 0, c.ii+1
		}
	}
	return n
}

// Repeat presents src's rounds n times back to back — repeated executions
// of the parallel loop with warm caches (the Config.Passes semantics).
// Unlike copying rounds, the wrapper keeps O(1) extra state.
func Repeat(src Source, n int) Source {
	if n <= 1 {
		return src
	}
	return &repeated{src: src, n: n}
}

type repeated struct {
	src Source
	n   int
}

func (r *repeated) CoreCount() int   { return r.src.CoreCount() }
func (r *repeated) RoundCount() int  { return r.src.RoundCount() * r.n }
func (r *repeated) Sync() bool       { return r.src.Sync() }
func (r *repeated) NumAccesses() int { return r.src.NumAccesses() * r.n }
func (r *repeated) Cursor(round, core int) Cursor {
	return r.src.Cursor(round%r.src.RoundCount(), core)
}

// Materialize expands a Source into the equivalent fully materialized
// Program — the debugging escape hatch for diffing the streaming and
// materialized paths, and the expansion engine behind FromSchedule and
// FromOrder. Each per-core slice is allocated at its exact capacity from
// the cursor's precomputed Len.
func Materialize(src Source) *Program {
	p := &Program{NumCores: src.CoreCount(), Synchronized: src.Sync()}
	for r := 0; r < src.RoundCount(); r++ {
		cores := make([][]Access, src.CoreCount())
		for c := range cores {
			cur := src.Cursor(r, c)
			if n := cur.Len(); n > 0 {
				cores[c] = make([]Access, 0, n)
			}
			for a, ok := cur.Next(); ok; a, ok = cur.Next() {
				cores[c] = append(cores[c], a)
			}
		}
		p.Rounds = append(p.Rounds, cores)
	}
	return p
}
