package trace

import (
	"repro/internal/core"
	"repro/internal/poly"
	"repro/internal/schedule"
)

// Access is one memory reference.
type Access struct {
	Addr  int64
	Size  int32
	Write bool
}

// Program is the fully materialized simulator input: per barrier round, per
// core, the ordered accesses that core performs. It implements Source (see
// stream.go), but costs O(accesses) memory — production paths stream from
// StreamSchedule/StreamOrder instead and Materialize only as a debugging
// escape hatch.
type Program struct {
	NumCores     int
	Rounds       [][][]Access
	Synchronized bool
}

// NumAccesses returns the total access count.
func (p *Program) NumAccesses() int {
	n := 0
	for _, round := range p.Rounds {
		for _, as := range round {
			n += len(as)
		}
	}
	return n
}

// FromSchedule expands a schedule into a materialized Program using the
// references and layout the tagging was built from. When the schedule
// carries no dependences its rounds are only a pacing artifact of the Fig 7
// algorithm, so they are flattened into a single free-running round — cores
// must not pay barrier alignment the program does not need.
//
// FromSchedule is Materialize ∘ StreamSchedule: the generator is the single
// source of truth for access order, so the streaming and materialized paths
// cannot drift apart.
func FromSchedule(s *schedule.Schedule, res *core.Result, refs []*poly.Ref, layout *poly.Layout) *Program {
	return Materialize(StreamSchedule(s, res, refs, layout))
}

// FromOrder builds a materialized Program from explicit per-core iteration
// orders with a single round and no synchronization — used by the Base and
// Base+ baselines, which have no barriers. It is Materialize ∘ StreamOrder.
func FromOrder(perCore [][]poly.Point, refs []*poly.Ref, layout *poly.Layout) *Program {
	return Materialize(StreamOrder(perCore, refs, layout))
}
