package trace

import (
	"repro/internal/core"
	"repro/internal/poly"
	"repro/internal/schedule"
)

// Access is one memory reference.
type Access struct {
	Addr  int64
	Size  int32
	Write bool
}

// Program is the simulator's input: per barrier round, per core, the
// ordered accesses that core performs.
type Program struct {
	NumCores     int
	Rounds       [][][]Access
	Synchronized bool
}

// NumAccesses returns the total access count.
func (p *Program) NumAccesses() int {
	n := 0
	for _, round := range p.Rounds {
		for _, as := range round {
			n += len(as)
		}
	}
	return n
}

// FromSchedule expands a schedule into a Program using the references and
// layout the tagging was built from. When the schedule carries no
// dependences its rounds are only a pacing artifact of the Fig 7 algorithm,
// so they are flattened into a single free-running round — cores must not
// pay barrier alignment the program does not need.
func FromSchedule(s *schedule.Schedule, res *core.Result, refs []*poly.Ref, layout *poly.Layout) *Program {
	prog := &Program{NumCores: s.NumCores, Synchronized: s.Synchronized}
	emit := func(cores [][]Access, c, gid int) [][]Access {
		g := res.Groups[gid]
		for _, p := range g.Iters {
			for _, r := range refs {
				cores[c] = append(cores[c], Access{
					Addr:  layout.AddrOf(r, p),
					Size:  int32(r.Array.ElemSize),
					Write: r.Kind.Writes(),
				})
			}
		}
		return cores
	}
	// Size each core's stream exactly before expanding: the streams run to
	// millions of accesses, and growing them by append doubling churns the
	// heap the parallel experiment runner is trying to keep quiet.
	sizeRound := func(counts []int, round [][]int) []int {
		for c, gs := range round {
			for _, gid := range gs {
				counts[c] += len(res.Groups[gid].Iters) * len(refs)
			}
		}
		return counts
	}
	alloc := func(counts []int) [][]Access {
		cores := make([][]Access, s.NumCores)
		for c, n := range counts {
			if n > 0 {
				cores[c] = make([]Access, 0, n)
			}
		}
		return cores
	}
	if !s.Synchronized {
		counts := make([]int, s.NumCores)
		for _, round := range s.Rounds {
			counts = sizeRound(counts, round)
		}
		cores := alloc(counts)
		for _, round := range s.Rounds {
			for c, gs := range round {
				for _, gid := range gs {
					cores = emit(cores, c, gid)
				}
			}
		}
		prog.Rounds = [][][]Access{cores}
		return prog
	}
	counts := make([]int, s.NumCores)
	for _, round := range s.Rounds {
		for c := range counts {
			counts[c] = 0
		}
		counts = sizeRound(counts, round)
		cores := alloc(counts)
		for c, gs := range round {
			for _, gid := range gs {
				cores = emit(cores, c, gid)
			}
		}
		prog.Rounds = append(prog.Rounds, cores)
	}
	return prog
}

// FromOrder builds a Program from explicit per-core iteration orders with a
// single round and no synchronization — used by the Base and Base+
// baselines, which have no barriers.
func FromOrder(perCore [][]poly.Point, refs []*poly.Ref, layout *poly.Layout) *Program {
	prog := &Program{NumCores: len(perCore), Synchronized: false}
	cores := make([][]Access, len(perCore))
	for c, iters := range perCore {
		if n := len(iters) * len(refs); n > 0 {
			cores[c] = make([]Access, 0, n)
		}
		for _, p := range iters {
			for _, r := range refs {
				cores[c] = append(cores[c], Access{
					Addr:  layout.AddrOf(r, p),
					Size:  int32(r.Array.ElemSize),
					Write: r.Kind.Writes(),
				})
			}
		}
	}
	prog.Rounds = [][][]Access{cores}
	return prog
}
