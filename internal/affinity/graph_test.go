package affinity

import (
	"testing"
	"testing/quick"

	"repro/internal/tags"
)

func mkGroups(bits ...string) []*tags.Group {
	gs := make([]*tags.Group, len(bits))
	for i, b := range bits {
		gs[i] = &tags.Group{ID: i, Tag: tags.FromBits(b)}
	}
	return gs
}

func TestBuildWeights(t *testing.T) {
	// Figure 10(a) neighbours: θ101010... and θ010101... share nothing;
	// θ101010... and θ001010100000 share two blocks.
	gs := mkGroups("101010000000", "010101000000", "001010100000")
	g := Build(gs)
	if g.N() != 3 {
		t.Fatalf("N = %d", g.N())
	}
	if w := g.Weight(0, 1); w != 0 {
		t.Errorf("W(0,1) = %d, want 0", w)
	}
	if w := g.Weight(0, 2); w != 2 {
		t.Errorf("W(0,2) = %d, want 2", w)
	}
	if g.Weight(1, 2) != g.Weight(2, 1) {
		t.Error("graph not symmetric")
	}
	if g.Weight(1, 1) != 0 {
		t.Error("diagonal should be zero")
	}
}

func TestSetWeight(t *testing.T) {
	g := Build(mkGroups("10", "01"))
	g.SetWeight(0, 1, 1<<20) // the §3.5.2 "infinite" weight
	if g.Weight(0, 1) != 1<<20 || g.Weight(1, 0) != 1<<20 {
		t.Fatal("SetWeight not symmetric")
	}
}

func TestDigraphEdges(t *testing.T) {
	d := NewDigraph(3)
	d.AddEdge(0, 1)
	d.AddEdge(0, 1) // dedup
	d.AddEdge(1, 2)
	d.AddEdge(2, 2) // self-loop ignored
	if d.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", d.NumEdges())
	}
	if !d.HasEdge(0, 1) || d.HasEdge(1, 0) {
		t.Fatal("HasEdge wrong")
	}
	if len(d.Succ(0)) != 1 || len(d.Pred(1)) != 1 {
		t.Fatal("adjacency wrong")
	}
}

func TestTopoOrder(t *testing.T) {
	d := NewDigraph(4)
	d.AddEdge(2, 0)
	d.AddEdge(0, 1)
	d.AddEdge(1, 3)
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, 4)
	for i, v := range order {
		pos[v] = i
	}
	if pos[2] > pos[0] || pos[0] > pos[1] || pos[1] > pos[3] {
		t.Fatalf("bad topo order %v", order)
	}
	if !d.IsAcyclic() {
		t.Fatal("DAG reported cyclic")
	}
}

func TestTopoOrderCycle(t *testing.T) {
	d := NewDigraph(3)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(2, 0)
	if _, err := d.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if d.IsAcyclic() {
		t.Fatal("cycle reported acyclic")
	}
}

func TestSCCKnownGraph(t *testing.T) {
	// 0 <-> 1 form a cycle; 2 alone; 1 -> 2.
	d := NewDigraph(3)
	d.AddEdge(0, 1)
	d.AddEdge(1, 0)
	d.AddEdge(1, 2)
	comp, n := d.SCC()
	if n != 2 {
		t.Fatalf("SCC count = %d, want 2", n)
	}
	if comp[0] != comp[1] {
		t.Fatal("cycle members in different components")
	}
	if comp[2] == comp[0] {
		t.Fatal("independent vertex merged into the cycle")
	}
}

func TestCondense(t *testing.T) {
	d := NewDigraph(4)
	d.AddEdge(0, 1)
	d.AddEdge(1, 0) // SCC {0,1}
	d.AddEdge(1, 2)
	d.AddEdge(2, 3)
	dag, comp, n := d.Condense()
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if !dag.IsAcyclic() {
		t.Fatal("condensation not acyclic")
	}
	if !dag.HasEdge(comp[1], comp[2]) || !dag.HasEdge(comp[2], comp[3]) {
		t.Fatal("condensation lost edges")
	}
}

func TestSCCCondensationAcyclicProperty(t *testing.T) {
	f := func(edges []uint16) bool {
		const n = 12
		d := NewDigraph(n)
		for _, e := range edges {
			d.AddEdge(int(e)%n, int(e>>8)%n)
		}
		dag, _, _ := d.Condense()
		return dag.IsAcyclic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSCCDeepChain(t *testing.T) {
	// The iterative Tarjan must survive a long chain without stack overflow.
	const n = 50000
	d := NewDigraph(n)
	for i := 0; i < n-1; i++ {
		d.AddEdge(i, i+1)
	}
	_, numComp := d.SCC()
	if numComp != n {
		t.Fatalf("chain SCC count = %d, want %d", numComp, n)
	}
}
