// Package affinity provides the graph machinery of the paper's algorithms:
// the weighted iteration-group graph of Fig 6 (edge weight = number of
// common 1 bits between two group tags, i.e. the degree of data-block
// sharing), plus strongly-connected-component condensation and topological
// ordering for the dependence graph of Fig 7.
package affinity
