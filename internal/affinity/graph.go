package affinity

import (
	"fmt"

	"repro/internal/tags"
)

// Graph is a complete weighted undirected graph over iteration groups.
// Weights are stored densely; group count is modest (tags collapse the
// iteration space to at most 2^r signatures, in practice tens to hundreds).
type Graph struct {
	n      int
	weight []int32 // row-major n×n, symmetric, zero diagonal
}

// Build computes the Fig 6 graph: W(i,j) = Dot(tag_i, tag_j) — the number
// of data blocks groups i and j share.
func Build(groups []*tags.Group) *Graph {
	n := len(groups)
	g := &Graph{n: n, weight: make([]int32, n*n)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := int32(groups[i].Tag.Dot(groups[j].Tag))
			g.weight[i*n+j] = w
			g.weight[j*n+i] = w
		}
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// Weight returns the edge weight between vertices i and j.
func (g *Graph) Weight(i, j int) int {
	if i < 0 || i >= g.n || j < 0 || j >= g.n {
		//lint:ignore cellboundary programmer-error invariant on an internal API; repro.capturePanic converts it to a contained PanicError at the cell boundary
		panic(fmt.Sprintf("affinity: weight(%d,%d) out of range n=%d", i, j, g.n))
	}
	return int(g.weight[i*g.n+j])
}

// SetWeight overrides an edge weight (used by the conservative dependence
// mode of §3.5.2, which assigns an effectively infinite weight between
// dependent groups so clustering keeps them together).
func (g *Graph) SetWeight(i, j int, w int) {
	g.weight[i*g.n+j] = int32(w)
	g.weight[j*g.n+i] = int32(w)
}

// Digraph is a directed graph over group indices, used for dependences.
// Edge u→v means v depends on u: u must be scheduled no later than v.
type Digraph struct {
	n    int
	succ [][]int
	pred [][]int
	has  map[[2]int]bool
}

// NewDigraph creates an empty digraph over n vertices.
func NewDigraph(n int) *Digraph {
	return &Digraph{
		n:    n,
		succ: make([][]int, n),
		pred: make([][]int, n),
		has:  make(map[[2]int]bool),
	}
}

// N returns the number of vertices.
func (d *Digraph) N() int { return d.n }

// AddEdge inserts u→v once; self-loops are ignored.
func (d *Digraph) AddEdge(u, v int) {
	if u == v {
		return
	}
	k := [2]int{u, v}
	if d.has[k] {
		return
	}
	d.has[k] = true
	d.succ[u] = append(d.succ[u], v)
	d.pred[v] = append(d.pred[v], u)
}

// HasEdge reports whether u→v exists.
func (d *Digraph) HasEdge(u, v int) bool { return d.has[[2]int{u, v}] }

// Succ returns the successors of u (vertices depending on u).
func (d *Digraph) Succ(u int) []int { return d.succ[u] }

// Pred returns the predecessors of u (vertices u depends on).
func (d *Digraph) Pred(u int) []int { return d.pred[u] }

// NumEdges returns the edge count.
func (d *Digraph) NumEdges() int { return len(d.has) }

// SCC computes strongly connected components with Tarjan's algorithm,
// returning for each vertex its component index; components are numbered in
// reverse topological order of the condensation (standard Tarjan property),
// so comp[u] >= comp[v] whenever u→v crosses components.
func (d *Digraph) SCC() (comp []int, numComp int) {
	const unvisited = -1
	n := d.n
	comp = make([]int, n)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next := 0

	// Iterative Tarjan to survive deep graphs.
	type frame struct {
		v, childIdx int
	}
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames := []frame{{v: root}}
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.childIdx == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.childIdx < len(d.succ[v]) {
				w := d.succ[v][f.childIdx]
				f.childIdx++
				if index[w] == unvisited {
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// Post-visit: fold low into parent, pop component roots.
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = numComp
					if w == v {
						break
					}
				}
				numComp++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return comp, numComp
}

// Condense builds the DAG of SCCs: vertex i of the result is component i of
// d, with an edge for every cross-component dependence.
func (d *Digraph) Condense() (dag *Digraph, comp []int, numComp int) {
	comp, numComp = d.SCC()
	dag = NewDigraph(numComp)
	// Walk succ lists (stable insertion order), not the edge map, so the
	// condensation's adjacency order — and everything scheduled from it —
	// is deterministic.
	for u := 0; u < d.n; u++ {
		for _, v := range d.succ[u] {
			cu, cv := comp[u], comp[v]
			if cu != cv {
				dag.AddEdge(cu, cv)
			}
		}
	}
	return dag, comp, numComp
}

// TopoOrder returns a topological order of the digraph, or an error naming
// a vertex on a cycle. Kahn's algorithm; ties broken by vertex index for
// determinism.
func (d *Digraph) TopoOrder() ([]int, error) {
	indeg := make([]int, d.n)
	for v := 0; v < d.n; v++ {
		indeg[v] = len(d.pred[v])
	}
	var ready []int
	for v := 0; v < d.n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	var order []int
	for len(ready) > 0 {
		// Pop the smallest ready vertex (deterministic).
		best := 0
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[best] {
				best = i
			}
		}
		v := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		order = append(order, v)
		for _, w := range d.succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, w)
			}
		}
	}
	if len(order) != d.n {
		for v := 0; v < d.n; v++ {
			if indeg[v] > 0 {
				return nil, fmt.Errorf("affinity: vertex %d is on a dependence cycle", v)
			}
		}
	}
	return order, nil
}

// IsAcyclic reports whether the digraph has no cycles.
func (d *Digraph) IsAcyclic() bool {
	_, err := d.TopoOrder()
	return err == nil
}
