package analysis

import (
	"go/ast"
	"testing"
)

// TestLoadRepo loads two real packages of this module — one that imports
// the other — proving the export-data importer resolves both stdlib and
// intra-module dependencies.
func TestLoadRepo(t *testing.T) {
	pkgs, err := Load("../..", "./internal/tags", "./internal/deps")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Types == nil || len(p.Files) == 0 {
			t.Fatalf("%s: incomplete package", p.PkgPath)
		}
		// Every selector the analyzers rely on must have type info.
		n := 0
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool { return true })
			n++
		}
		if n == 0 {
			t.Fatalf("%s: no syntax", p.PkgPath)
		}
	}
}

// TestRunSuppression checks the //lint:ignore policy end to end with a
// synthetic analyzer that flags every function declaration.
func TestRunSuppression(t *testing.T) {
	pkgs, err := Load("testdata/suppress")
	if err != nil {
		t.Fatal(err)
	}
	flagFuncs := &Analyzer{
		Name: "flagfuncs",
		Doc:  "flags every function declaration (test analyzer)",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						pass.Reportf(fd.Pos(), "function %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
	diags, err := Run(pkgs, []*Analyzer{flagFuncs})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	want := []string{
		"flagfuncs: function Flagged",
		"lint-directive: //lint:ignore directive requires a justification after the analyzer name",
		"flagfuncs: function NoReason",
		"flagfuncs: function AlsoFlagged",
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diag %d: got %q, want %q", i, got[i], want[i])
		}
	}
}
