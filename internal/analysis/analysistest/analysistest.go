// Package analysistest runs an analyzer over a golden fixture module and
// compares its findings against // want expectations — the same contract
// as golang.org/x/tools/go/analysis/analysistest, rebuilt on the repo's
// stdlib-only framework.
//
// A fixture is a self-contained module under the analyzer's testdata
// directory (its own go.mod, stdlib imports only). Package paths inside
// the fixture are chosen to match the analyzer's scope regexps — e.g. a
// fixture package fix/internal/cachesim is "in scope" for analyzers scoped
// to internal/cachesim.
//
// Expectations are comments on the offending line:
//
//	time.Now() // want `wall clock`
//
// The backquoted string is a regexp matched against the diagnostic
// message; several on one line express several expected findings. A
// diagnostic with no matching expectation, or an expectation with no
// diagnostic, fails the test.
package analysistest

import (
	"go/token"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRe = regexp.MustCompile("`([^`]*)`")

// expectation is one // want entry: a file:line plus a message regexp.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run loads the fixture module at dir, applies the analyzer to every
// package in it, and diffs diagnostics against the // want expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages in fixture %s", dir)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					ms := wantRe.FindAllStringSubmatch(text, -1)
					if len(ms) == 0 {
						t.Errorf("%s: malformed want comment (no backquoted regexp): %s", pos, c.Text)
						continue
					}
					for _, m := range ms {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Errorf("%s: bad want regexp %q: %v", pos, m[1], err)
							continue
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}

	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	fset := fsetOf(pkgs)
	for _, d := range diags {
		pos := d.Position(fset)
		if !claim(wants, pos, d.Message) {
			t.Errorf("%s: unexpected finding: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unmet expectation matching the diagnostic.
func claim(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.met = true
			return true
		}
	}
	return false
}

func fsetOf(pkgs []*analysis.Package) *token.FileSet {
	return pkgs[0].Fset
}
