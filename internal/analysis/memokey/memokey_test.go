package memokey_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/memokey"
)

func TestMemoKey(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "fix"), memokey.Analyzer)
}
