package keys

// Regression fixture for the PR 2 memo-collision class: Scale was added to
// the kernel identity but never to the key, so scaled kernels ("-x4")
// silently shared memo/checkpoint cells with their Table 2 originals. The
// directive now makes the missing field a finding instead of a wrong table.

type Kernel struct {
	Name  string
	Scale int
}

//topovet:keyof Kernel
func KernelKey(k Kernel) string { // want `KernelKey does not cover Kernel.Scale`
	return k.Name
}

//topovet:keyof Kernel
func FullKernelKey(k Kernel) string {
	if k.Scale > 1 {
		return k.Name + "-scaled"
	}
	return k.Name
}
