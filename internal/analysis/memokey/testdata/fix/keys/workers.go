package keys

import "fmt"

// SimConfig mirrors the repo's Config around the SimWorkers knob: identity
// fields that must be keyed, plus a worker count that parallelizes the
// simulator without changing its (byte-identical) output. The knob must
// stay OUT of the memo key — two runs differing only in workers are the
// same experiment — but the analyzer must force that omission to be
// declared, not silent.
type SimConfig struct {
	Kernel     string
	Machine    string
	SimWorkers int
}

// WorkerKey is the regression pin for the SimWorkers-style exemption: the
// key covers every identity field and leaves the worker knob out with a
// stated reason. This must stay clean.
//
//topovet:keyof SimConfig exempt=SimWorkers -- worker count only parallelizes execution; results are byte-identical at any value
func WorkerKey(c SimConfig) string {
	return fmt.Sprintf("%s|%s", c.Kernel, c.Machine)
}

// ForgotWorkerExemption omits SimWorkers from the key without declaring
// it: the analyzer must flag it rather than let the omission pass as
// intentional.
//
//topovet:keyof SimConfig
func ForgotWorkerExemption(c SimConfig) string { // want `ForgotWorkerExemption does not cover SimConfig.SimWorkers`
	return fmt.Sprintf("%s|%s", c.Kernel, c.Machine)
}
