package keys

import "fmt"

// BatchRef mirrors the fabric's lease/batch identity: the attempt number
// is part of the identity, so a stale upload from a revoked lease can
// never satisfy a newer lease on the same cells.
type BatchRef struct {
	Grid    string
	Index   int
	Attempt int
}

// GoodToken covers the full batch identity.
//
//topovet:keyof BatchRef
func GoodToken(b BatchRef) string {
	return fmt.Sprintf("%s:%d:%d", b.Grid, b.Index, b.Attempt)
}

//topovet:keyof BatchRef
func BadToken(b BatchRef) string { // want `BadToken does not cover BatchRef.Attempt`
	return fmt.Sprintf("%s:%d", b.Grid, b.Index)
}
