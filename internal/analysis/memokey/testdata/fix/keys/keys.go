// Package keys exercises the memokey coverage rules on a Config shaped
// like the repo's: identity fields plus an execution guard that is
// deliberately not part of the key.
package keys

import "fmt"

type Config struct {
	Alpha float64
	Beta  float64
	Guard int
}

// GoodKey keys every identity field and exempts the guard with a reason.
//
//topovet:keyof Config exempt=Guard -- execution guard, not identity
func GoodKey(c Config) string {
	return fmt.Sprintf("%g|%g", c.Alpha, c.Beta)
}

//topovet:keyof Config exempt=Guard -- execution guard, not identity
func BadKey(c Config) string { // want `BadKey does not cover Config.Beta`
	return fmt.Sprintf("%g", c.Alpha)
}

// DeepKey covers Beta through a same-package helper: transitive coverage.
//
//topovet:keyof Config exempt=Guard -- execution guard, not identity
func DeepKey(c Config) string {
	return fmt.Sprintf("%g|%s", c.Alpha, tail(c))
}

func tail(c Config) string { return fmt.Sprintf("%g", c.Beta) }

// CloneKey covers fields by writing them in a composite literal.
//
//topovet:keyof Config exempt=Guard -- execution guard, not identity
func CloneKey(c Config) string {
	d := Config{Alpha: c.Alpha, Beta: c.Beta}
	return fmt.Sprintf("%g%g", d.Alpha, d.Beta)
}
