// Package memokey enforces key completeness: every behavior-affecting
// field of a configuration struct must be reflected in the functions that
// derive memoization, checkpoint and replay identities from it. PR 2's
// memo-collision bug (scaled kernels silently sharing cells with their
// Table 2 originals) is exactly the class this pass makes unrepresentable:
// adding a config field without keying it now fails the build instead of
// silently serving one experiment's numbers as another's.
//
// The pass is directive-driven. A key-deriving function declares what it
// must cover in its doc comment:
//
//	//topovet:keyof repro.Config
//	//topovet:keyof Cell exempt=Guard -- execution guard, not identity
//
// For each directive, every field of the named struct type — all fields
// for a same-package type, exported fields for an imported one — must be
// read (field selection) or written (composite-literal key or field
// store) somewhere in the annotated function or in same-package functions
// it calls, transitively. Fields that are deliberately not part of the
// identity are listed in exempt=..., and the directive must say why after
// " -- "; an exemption without a justification is itself reported.
package memokey

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the memokey pass. It has no package scope: directives opt
// functions in wherever they live.
var Analyzer = &analysis.Analyzer{
	Name: "memokey",
	Doc: "every field of a //topovet:keyof-named struct must be covered by the annotated " +
		"key-deriving function (memo/checkpoint/replay identity completeness)",
	Run: run,
}

// directive is one parsed //topovet:keyof line.
type directive struct {
	typeName string
	exempt   map[string]bool
	reasoned bool
	pos      ast.Node
}

func run(pass *analysis.Pass) error {
	// Index the package's function bodies for the transitive walk.
	bodies := make(map[*types.Func]*ast.FuncDecl)
	var annotated []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				bodies[fn] = fd
			}
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if strings.Contains(c.Text, "topovet:keyof") {
						annotated = append(annotated, fd)
						break
					}
				}
			}
		}
	}
	for _, fd := range annotated {
		for _, c := range fd.Doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "topovet:keyof") {
				continue
			}
			checkDirective(pass, fd, c, strings.TrimSpace(strings.TrimPrefix(text, "topovet:keyof")), bodies)
		}
	}
	return nil
}

// checkDirective parses one directive body ("TYPE [exempt=F1,F2 -- why]")
// and verifies coverage.
func checkDirective(pass *analysis.Pass, fd *ast.FuncDecl, c *ast.Comment, body string, bodies map[*types.Func]*ast.FuncDecl) {
	spec, reason, hasReason := strings.Cut(body, " -- ")
	fields := strings.Fields(spec)
	if len(fields) == 0 {
		pass.Reportf(c.Pos(), "malformed //topovet:keyof directive: expected a type name")
		return
	}
	exempt := make(map[string]bool)
	for _, f := range fields[1:] {
		if names, ok := strings.CutPrefix(f, "exempt="); ok {
			for _, n := range strings.Split(names, ",") {
				exempt[n] = true
			}
		} else {
			pass.Reportf(c.Pos(), "malformed //topovet:keyof directive: unexpected token %q", f)
			return
		}
	}
	if len(exempt) > 0 && (!hasReason || strings.TrimSpace(reason) == "") {
		pass.Reportf(c.Pos(), "//topovet:keyof exempt list requires a justification after \" -- \"")
	}

	named, st, local := resolveStruct(pass, fields[0])
	if named == nil {
		pass.Reportf(c.Pos(), "//topovet:keyof %s: cannot resolve to a struct type in this package or its imports", fields[0])
		return
	}
	covered := coveredFields(pass, fd, named, bodies)
	var missing []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !local && !f.Exported() {
			continue
		}
		if exempt[f.Name()] || covered[f.Name()] {
			continue
		}
		missing = append(missing, f.Name())
	}
	sort.Strings(missing)
	for _, name := range missing {
		pass.Reportf(fd.Name.Pos(), "%s does not cover %s.%s: a config field absent from the key lets distinct experiments collide in the memo/checkpoint (key it, or exempt it with a justification)",
			fd.Name.Name, fields[0], name)
	}
}

// resolveStruct resolves "Type" (this package) or "pkg.Type" (an import,
// matched by package name) to a named struct type.
func resolveStruct(pass *analysis.Pass, name string) (*types.Named, *types.Struct, bool) {
	var obj types.Object
	local := true
	if pkgName, typeName, qualified := strings.Cut(name, "."); qualified {
		local = false
		for _, imp := range pass.Pkg.Imports() {
			if imp.Name() == pkgName {
				obj = imp.Scope().Lookup(typeName)
				break
			}
		}
		if pass.Pkg.Name() == pkgName {
			obj = pass.Pkg.Scope().Lookup(typeName)
			local = true
		}
	} else {
		obj = pass.Pkg.Scope().Lookup(name)
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil, nil, false
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil, nil, false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil, false
	}
	return named, st, local
}

// coveredFields walks the annotated function and, transitively, the
// same-package functions it calls, collecting the target type's fields it
// reads or writes.
func coveredFields(pass *analysis.Pass, root *ast.FuncDecl, target *types.Named, bodies map[*types.Func]*ast.FuncDecl) map[string]bool {
	covered := make(map[string]bool)
	seen := map[*ast.FuncDecl]bool{}
	queue := []*ast.FuncDecl{root}
	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		if seen[fd] || fd.Body == nil {
			continue
		}
		seen[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pass.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
					if sameNamed(sel.Recv(), target) {
						covered[sel.Obj().Name()] = true
					}
				}
			case *ast.CompositeLit:
				tv, ok := pass.Info.Types[n]
				if !ok || !sameNamed(tv.Type, target) {
					return true
				}
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							covered[id.Name] = true
						}
					}
				}
			case *ast.CallExpr:
				if fn := calleeFunc(pass.Info, n); fn != nil {
					if next, ok := bodies[fn]; ok {
						queue = append(queue, next)
					}
				}
			}
			return true
		})
	}
	return covered
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// sameNamed reports whether t (possibly behind a pointer) is the target
// named type.
func sameNamed(t types.Type, target *types.Named) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj() == target.Obj()
}
