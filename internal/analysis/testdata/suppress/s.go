// Package suppress exercises the //lint:ignore policy.
package suppress

// Flagged has no directive and is reported.
func Flagged() {}

//lint:ignore flagfuncs test fixture: suppressed on the line above
func SuppressedAbove() {}

func SuppressedInline() {} //lint:ignore flagfuncs test fixture: suppressed inline

//lint:ignore flagfuncs
func NoReason() {}

//lint:ignore otheranalyzer wrong analyzer, still suppressed? no — names must match
func AlsoFlagged() {}
