module suppress

go 1.22
