// Command tool stands in for a driver: minting the root context here is
// legitimate, but ...Context counterparts are still mandatory.
package main

import "context"

func Do()                           {}
func DoContext(ctx context.Context) { _ = ctx }

func main() {
	ctx := context.Background() // drivers mint the root context: no finding
	DoContext(ctx)
	Do() // want `call to Do ignores its context-aware variant DoContext`
}
