// Package serve stands in for the topomapd serving layer: evaluation
// contexts must descend from the serve context so the drain-timeout
// force-cancel reaches every in-flight cell; a handler that mints its own
// root context detaches its evaluation from the drain.
package serve

import "context"

// Evaluate is a convenience wrapper over EvaluateContext, so inside it the
// default context is legal.
func Evaluate() error { return EvaluateContext(context.Background()) }

func EvaluateContext(ctx context.Context) error { return ctx.Err() }

func handle() error {
	ctx := context.Background() // want `context.Background\(\) below the driver layer`
	_ = ctx
	return Evaluate() // want `call to Evaluate ignores its context-aware variant EvaluateContext`
}

// drainBase derives the evaluation base the legal way: from the serve
// context, detached from its cancellation but not from its values.
func drainBase(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(context.WithoutCancel(ctx))
}
