// Package experiments stands in for the runner package: context must be
// threaded, not minted, below the driver layer.
package experiments

import "context"

// Runner mirrors the repo's base-context mechanism: no-context entry
// points inherit sweep-wide cancellation via SetBaseContext.
type Runner struct{ base context.Context }

func (r *Runner) SetBaseContext(ctx context.Context) { r.base = ctx }

func (r *Runner) Render() error                           { return nil }
func (r *Runner) RenderContext(ctx context.Context) error { return ctx.Err() }

// Eval is a convenience wrapper: its whole purpose is to delegate to its
// ...Context sibling with a default context, so neither the Background
// call nor the delegation is flagged inside it.
func Eval() error { return EvalContext(context.Background()) }

func EvalContext(ctx context.Context) error { return ctx.Err() }

func drive(r *Runner) error {
	ctx := context.Background() // want `context.Background\(\) below the driver layer`
	_ = ctx
	if err := Eval(); err != nil { // want `call to Eval ignores its context-aware variant EvalContext`
		return err
	}
	// Render has a ...Context counterpart, but the receiver exposes
	// SetBaseContext: the runner pattern, allowed by design.
	return r.Render()
}
