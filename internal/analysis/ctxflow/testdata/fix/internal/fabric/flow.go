// Package fabric stands in for the distributed sweep fabric: it sits
// below the driver layer, so the sweep context must be threaded through
// explicit parameters there too — a coordinator or worker that mints its
// own root context detaches lease loops from sweep-wide cancellation.
package fabric

import "context"

// RunWorker is a convenience wrapper over RunWorkerContext, mirroring the
// fabric's real entry point: inside it, minting the default context and
// delegating are both legal.
func RunWorker() error { return RunWorkerContext(context.Background()) }

func RunWorkerContext(ctx context.Context) error { return ctx.Err() }

func leaseLoop() error {
	ctx := context.TODO() // want `context.TODO\(\) below the driver layer`
	_ = ctx
	return RunWorker() // want `call to RunWorker ignores its context-aware variant RunWorkerContext`
}
