package ctxflow_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "fix"), ctxflow.Analyzer)
}
