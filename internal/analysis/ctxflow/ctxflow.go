// Package ctxflow enforces the PR 4 cancellation contract: below the
// driver layer, context flows through explicit parameters, never by
// minting fresh root contexts mid-pipeline.
//
// Two checks:
//
//   - In internal/experiments, internal/fabric and cmd/*, a call to a
//     function or method that has a "...Context" counterpart (same name +
//     "Context" suffix,
//     first parameter context.Context) must use the counterpart. Two
//     structural exemptions keep the repo's deliberate patterns legal:
//     the body of a convenience wrapper (a function that itself has a
//     ...Context sibling — its entire purpose is to delegate with a
//     default context), and calls on receivers that expose
//     SetBaseContext(context.Context) (the runner's base-context
//     mechanism, which threads sweep-wide cancellation to no-context
//     entry points by design).
//
//   - In internal/experiments and internal/fabric, context.Background() /
//     context.TODO() must not be created: the sweep context arrives from
//     the driver.
//     The same convenience-wrapper exemption applies.
package ctxflow

import (
	"go/ast"
	"go/types"
	"regexp"

	"repro/internal/analysis"
)

// CallScope matches the packages where ...Context counterparts are
// mandatory.
var CallScope = regexp.MustCompile(`(^|/)internal/(experiments|fabric|serve)(/|$)|(^|/)cmd/`)

// RootScope matches the packages where minting root contexts is
// forbidden (the driver layer, cmd/*, legitimately creates them). The
// serving layer is in scope: topomapd's evaluation contexts must descend
// from the serve context (via context.WithoutCancel for drain-surviving
// work), never from a fresh root that would detach in-flight cells from
// the force-cancel on drain timeout.
var RootScope = regexp.MustCompile(`(^|/)internal/(experiments|fabric|serve)(/|$)`)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "require ...Context call variants where they exist and forbid context.Background()/TODO() " +
		"below the driver layer, so sweep-wide cancellation reaches every cell",
	Run: run,
}

func run(pass *analysis.Pass) error {
	checkCalls := CallScope.MatchString(pass.PkgPath)
	checkRoots := RootScope.MatchString(pass.PkgPath)
	if !checkCalls && !checkRoots {
		return nil
	}
	analysis.WalkFiles(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil {
			return true
		}
		if inConvenienceWrapper(pass, stack) {
			return true
		}
		if checkRoots && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
			(fn.Name() == "Background" || fn.Name() == "TODO") {
			pass.Reportf(call.Pos(), "context.%s() below the driver layer: thread the sweep context through parameters (or SetBaseContext) instead of minting a root context", fn.Name())
			return true
		}
		if !checkCalls {
			return true
		}
		if counterpart := contextCounterpart(fn); counterpart != nil && !hasBaseContextMechanism(fn) {
			pass.Reportf(call.Pos(), "call to %s ignores its context-aware variant %s: use it so cancellation and budgets reach this cell", fn.Name(), counterpart.Name())
		}
		return true
	})
	return nil
}

// calleeFunc resolves the called function or method, or nil for builtins,
// function values and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// contextCounterpart returns the sibling <Name>Context function or method
// taking a context first, or nil.
func contextCounterpart(fn *types.Func) *types.Func {
	name := fn.Name()
	if len(name) > 7 && name[len(name)-7:] == "Context" {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var candidate types.Object
	if recv := sig.Recv(); recv != nil {
		named := namedOf(recv.Type())
		if named == nil {
			return nil
		}
		candidate = lookupMethod(named, name+"Context")
	} else if fn.Pkg() != nil {
		candidate = fn.Pkg().Scope().Lookup(name + "Context")
	}
	cfn, ok := candidate.(*types.Func)
	if !ok {
		return nil
	}
	csig, ok := cfn.Type().(*types.Signature)
	if !ok || csig.Params().Len() == 0 {
		return nil
	}
	if !isContextType(csig.Params().At(0).Type()) {
		return nil
	}
	return cfn
}

// hasBaseContextMechanism reports whether the method's receiver type also
// provides SetBaseContext(context.Context) — the runner pattern where
// no-context entry points inherit sweep-wide cancellation by design.
func hasBaseContextMechanism(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOf(sig.Recv().Type())
	if named == nil {
		return false
	}
	set, ok := lookupMethod(named, "SetBaseContext").(*types.Func)
	if !ok {
		return false
	}
	ssig, ok := set.Type().(*types.Signature)
	return ok && ssig.Params().Len() == 1 && isContextType(ssig.Params().At(0).Type())
}

// inConvenienceWrapper reports whether the call site sits inside a
// function that itself has a ...Context sibling — the delegation shim the
// counterpart rule exists to produce.
func inConvenienceWrapper(pass *analysis.Pass, stack []ast.Node) bool {
	fd, ok := analysis.EnclosingFunc(stack).(*ast.FuncDecl)
	if !ok || fd == nil {
		return false
	}
	fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	return contextCounterpart(fn) != nil
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func lookupMethod(named *types.Named, name string) types.Object {
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

func isContextType(t types.Type) bool {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}
