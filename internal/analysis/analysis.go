// Package analysis is the repo's static-analysis framework: a small,
// dependency-free substitute for golang.org/x/tools/go/analysis (which the
// build environment cannot fetch). It defines the Analyzer/Pass/Diagnostic
// vocabulary, runs analyzers over type-checked packages produced by the
// load subpackage, and applies the //lint:ignore suppression policy.
//
// The project-specific analyzers live in sibling packages (nondeterminism,
// memokey, ctxflow, cellboundary, scratchalias) and are wired together by
// cmd/topovet. DESIGN.md "Static invariants" documents what each one
// enforces and why.
//
// # Suppression policy
//
//	//lint:ignore <analyzer>[,<analyzer>...] <justification>
//
// on the flagged line, or on the line directly above it, suppresses those
// analyzers' findings for that line. The justification is mandatory: an
// ignore directive without one is itself reported. A whole file can be
// exempted with //lint:file-ignore <analyzer> <justification>. "all"
// matches every analyzer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker. Run inspects a single
// type-checked package through the Pass and reports findings via
// Pass.Report/Reportf; the framework attaches the analyzer's name and
// applies suppression afterwards.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by topovet -help.
	Doc string
	// Run reports the analyzer's findings for one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's parsed syntax (non-test files, with comments).
	Files []*ast.File
	// Pkg and Info are the go/types view of the package.
	Pkg  *types.Package
	Info *types.Info
	// PkgPath is the package's import path, the string the analyzers'
	// scope regexps match against.
	PkgPath string

	report func(Diagnostic)
}

// Report files one finding.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf files one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: an analyzer name, a position and a message.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Position resolves the diagnostic's file:line:col against the fileset it
// was produced under.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// ignoreDirective is one parsed //lint:ignore or //lint:file-ignore
// comment.
type ignoreDirective struct {
	names     map[string]bool
	hasReason bool
	fileWide  bool
	pos       token.Pos
}

func (ig *ignoreDirective) matches(analyzer string) bool {
	return ig.names["all"] || ig.names[analyzer]
}

// parseIgnores collects the suppression directives of a file, keyed by
// line number (file-wide directives are returned separately).
func parseIgnores(fset *token.FileSet, f *ast.File) (byLine map[int][]*ignoreDirective, fileWide []*ignoreDirective) {
	byLine = make(map[int][]*ignoreDirective)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			var wide bool
			switch {
			case strings.HasPrefix(text, "lint:ignore"):
				text = strings.TrimPrefix(text, "lint:ignore")
			case strings.HasPrefix(text, "lint:file-ignore"):
				text = strings.TrimPrefix(text, "lint:file-ignore")
				wide = true
			default:
				continue
			}
			fields := strings.Fields(text)
			ig := &ignoreDirective{names: make(map[string]bool), fileWide: wide, pos: c.Pos()}
			if len(fields) > 0 {
				for _, n := range strings.Split(fields[0], ",") {
					ig.names[n] = true
				}
				ig.hasReason = len(fields) > 1
			}
			if wide {
				fileWide = append(fileWide, ig)
			} else {
				byLine[fset.Position(c.Pos()).Line] = append(byLine[fset.Position(c.Pos()).Line], ig)
			}
		}
	}
	return byLine, fileWide
}

// Run executes the analyzers over the packages and returns the surviving
// (unsuppressed) diagnostics, sorted by position. Malformed suppression
// directives (no justification) are reported as findings of the pseudo
// analyzer "lint-directive". Analyzer errors abort the run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		// Suppression tables for every file of the package.
		byLine := make(map[string]map[int][]*ignoreDirective)
		fileWide := make(map[string][]*ignoreDirective)
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			lines, wide := parseIgnores(pkg.Fset, f)
			byLine[name] = lines
			fileWide[name] = wide
			for _, igs := range lines {
				for _, ig := range igs {
					if !ig.hasReason {
						out = append(out, Diagnostic{Pos: ig.pos, Analyzer: "lint-directive",
							Message: "//lint:ignore directive requires a justification after the analyzer name"})
					}
				}
			}
			for _, ig := range wide {
				if !ig.hasReason {
					out = append(out, Diagnostic{Pos: ig.pos, Analyzer: "lint-directive",
						Message: "//lint:file-ignore directive requires a justification after the analyzer name"})
				}
			}
		}
		for _, a := range analyzers {
			var diags []Diagnostic
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				PkgPath:  pkg.PkgPath,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.PkgPath, a.Name, err)
			}
			for _, d := range diags {
				if suppressed(pkg.Fset, d, byLine, fileWide) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Position(tokenFsetOf(pkgs, out[i])), out[j].Position(tokenFsetOf(pkgs, out[j]))
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// tokenFsetOf finds the fileset a diagnostic belongs to. All packages from
// one load share a fileset, so the first package's works; the helper keeps
// Run correct if callers ever mix loads.
func tokenFsetOf(pkgs []*Package, d Diagnostic) *token.FileSet {
	for _, p := range pkgs {
		if f := p.Fset.File(d.Pos); f != nil {
			return p.Fset
		}
	}
	return pkgs[0].Fset
}

// suppressed reports whether an ignore directive on the diagnostic's line,
// the line above it, or the whole file covers the finding.
func suppressed(fset *token.FileSet, d Diagnostic, byLine map[string]map[int][]*ignoreDirective, fileWide map[string][]*ignoreDirective) bool {
	pos := fset.Position(d.Pos)
	for _, ig := range fileWide[pos.Filename] {
		if ig.hasReason && ig.matches(d.Analyzer) {
			return true
		}
	}
	lines := byLine[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, ig := range lines[line] {
			if ig.hasReason && ig.matches(d.Analyzer) {
				return true
			}
		}
	}
	return false
}

// WalkFiles applies fn to every node of every file, maintaining the
// ancestor stack (innermost last, the node itself excluded). Returning
// false from fn prunes the subtree.
func WalkFiles(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			keep := fn(n, stack)
			if keep {
				stack = append(stack, n)
			}
			return keep
		})
	}
}

// EnclosingFunc returns the innermost function declaration or literal on
// the stack, or nil.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
