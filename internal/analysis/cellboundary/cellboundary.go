// Package cellboundary enforces the repo's fault-containment invariant:
// the experiment cell is the failure unit (DESIGN.md "Fault model and
// degradation"), so pipeline packages must never take down the process.
//
// Two checks:
//
//   - In every internal/ package, panic, log.Fatal*/log.Panic*, os.Exit
//     and runtime.Goexit are forbidden: failures must return errors that
//     flow into the runner's CellError path, where they degrade one cell
//     instead of killing the sweep. Bounds-style programmer-error panics
//     that are deliberately contained by repro.capturePanic at the API
//     boundary carry a //lint:ignore cellboundary annotation saying so.
//
//   - In internal/experiments (the checkpoint/replay writers), an error
//     result silently discarded by an expression statement is reported: a
//     lost checkpoint write is a silently incomplete resume. Explicitly
//     assigning to _ is accepted as a visible, reviewable decision, and
//     defer statements are exempt (the close-on-error idiom).
package cellboundary

import (
	"go/ast"
	"go/types"
	"regexp"

	"repro/internal/analysis"
)

// PipelineScope matches the packages where process-killing calls are
// forbidden.
var PipelineScope = regexp.MustCompile(`(^|/)internal/`)

// ErrcheckScope matches the packages where discarded error results are
// reported: the checkpoint/replay writers and the serving layer (a
// dropped error while writing a response or checkpoint record is a client
// silently served garbage).
var ErrcheckScope = regexp.MustCompile(`(^|/)internal/(experiments|serve)(/|$)`)

// fatalFuncs are the process-terminating standard-library calls.
var fatalFuncs = map[string]string{
	"os.Exit":        "exits the process",
	"log.Fatal":      "exits the process",
	"log.Fatalf":     "exits the process",
	"log.Fatalln":    "exits the process",
	"log.Panic":      "panics",
	"log.Panicf":     "panics",
	"log.Panicln":    "panics",
	"runtime.Goexit": "kills the goroutine, leaking the cell's worker",
}

// Analyzer is the cellboundary pass.
var Analyzer = &analysis.Analyzer{
	Name: "cellboundary",
	Doc: "forbid panic/log.Fatal/os.Exit in pipeline packages (errors must flow into the CellError path) " +
		"and discarded error results in the checkpoint/replay package",
	Run: run,
}

func run(pass *analysis.Pass) error {
	inPipeline := PipelineScope.MatchString(pass.PkgPath)
	inErrcheck := ErrcheckScope.MatchString(pass.PkgPath)
	if !inPipeline && !inErrcheck {
		return nil
	}
	errorType := types.Universe.Lookup("error").Type()

	analysis.WalkFiles(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !inPipeline {
				return true
			}
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if b, ok := pass.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
					pass.Reportf(n.Pos(), "panic crosses the cell boundary: return an error into the CellError path instead (or annotate a contained programmer-error invariant)")
				}
			case *ast.SelectorExpr:
				if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
					if why, bad := fatalFuncs[fn.Pkg().Path()+"."+fn.Name()]; bad {
						pass.Reportf(n.Pos(), "%s.%s %s: pipeline packages must degrade cell by cell, not abort the sweep",
							fn.Pkg().Path(), fn.Name(), why)
					}
				}
			}
		case *ast.ExprStmt:
			if !inErrcheck {
				return true
			}
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			// The close-on-error and cleanup idioms via defer are accepted.
			for i := len(stack) - 1; i >= 0; i-- {
				if _, isDefer := stack[i].(*ast.DeferStmt); isDefer {
					return true
				}
			}
			if returnsError(pass.Info, call, errorType) {
				pass.Reportf(n.Pos(), "error result discarded: a lost checkpoint/replay write is a silently incomplete resume; check it or assign it to _ explicitly")
			}
		}
		return true
	})
	return nil
}

// returnsError reports whether the call yields an error (alone or as the
// trailing result).
func returnsError(info *types.Info, call *ast.CallExpr, errorType types.Type) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && types.Identical(t.At(t.Len()-1).Type(), errorType)
	default:
		return types.Identical(t, errorType)
	}
}
