// Package pipe stands in for a pipeline package (internal/ scope): the
// process-killing calls are forbidden, but the errcheck rule does not
// apply here (it is scoped to internal/experiments).
package pipe

import (
	"log"
	"os"
	"runtime"
)

func Abort() {
	os.Exit(1) // want `os.Exit exits the process`
}

func AbortLogged(err error) {
	log.Fatalf("pipe: %v", err) // want `log.Fatalf exits the process`
}

func PanicOut(err error) {
	log.Panicln(err) // want `log.Panicln panics`
}

func Bail() {
	runtime.Goexit() // want `runtime.Goexit kills the goroutine`
}

func Explode(n int) {
	if n < 0 {
		panic("negative") // want `panic crosses the cell boundary`
	}
}

// Contained mirrors the repo's bounds-check idiom: a programmer-error
// invariant whose panic is converted to a PanicError at the API boundary,
// carrying the mandatory justification.
func Contained(n int) {
	if n < 0 {
		//lint:ignore cellboundary programmer-error invariant contained by capturePanic at the API boundary (fixture)
		panic("negative")
	}
}

// DropHere discards an error outside the errcheck scope: no finding.
func DropHere() {
	mayFail()
}

func mayFail() error { return nil }
