// Package serve stands in for the topomapd serving layer, where the
// errcheck rule applies on top of the pipeline rules: a response or
// checkpoint write whose error vanishes is a client silently served
// garbage.
package serve

type responseWriter struct{}

func (w *responseWriter) Write(p []byte) (int, error) { return len(p), nil }

type checkpoint struct{}

func (c *checkpoint) Append() error { return nil }

func respond(w *responseWriter, ckpt *checkpoint) error {
	w.Write([]byte(`{"ok":true}`)) // want `error result discarded`
	ckpt.Append()                  // want `error result discarded`
	return nil
}

// Explicit discards and deferred cleanup stay legal: the decision is
// visible and reviewable.
func respondChecked(w *responseWriter, ckpt *checkpoint) error {
	defer ckpt.Append()
	if _, err := w.Write([]byte(`{"ok":true}`)); err != nil {
		return err
	}
	_, _ = w.Write([]byte("\n"))
	return nil
}

func kill() {
	panic("serving layer must not cross the cell boundary") // want `panic crosses the cell boundary`
}
