// Package experiments stands in for the checkpoint/replay writers, where
// the errcheck rule applies on top of the pipeline rules.
package experiments

type file struct{}

func (f *file) Write(p []byte) (int, error) { return len(p), nil }
func (f *file) Close() error                { return nil }

func write(f *file) error {
	_, err := f.Write([]byte("rec"))
	return err
}

func Checkpoint(f *file) error {
	write(f)  // want `error result discarded`
	f.Close() // want `error result discarded`
	return nil
}

// Explicit discards and the defer close-on-error idiom are accepted.
func Flush(f *file) error {
	defer f.Close()
	_ = write(f)
	return write(f)
}
