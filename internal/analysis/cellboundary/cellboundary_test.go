package cellboundary_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/cellboundary"
)

func TestCellBoundary(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "fix"), cellboundary.Analyzer)
}
