// Package util sits outside the scratch-pool scope: returning a buffer
// field here produces no findings.
package util

type Box struct{ buf []byte }

func (b *Box) Bytes() []byte { return b.buf }
