// Package cachesim stands in for the simulator's pooled scratch buffers.
package cachesim

// Cursor mirrors the trace cursor interface: a reference type whose
// pooled elements alias reusable state.
type Cursor interface{ Next() (int, bool) }

type Sim struct {
	heapBuf []int
	curBuf  []Cursor
	snap    []uint64 //topovet:scratch
}

// Regression fixture for the PR 5 use-after-release class: returning a
// pooled cursor lets the caller advance it after the pool reclaims its
// state on the next run.
func (s *Sim) LeakCursor() Cursor {
	return s.curBuf[0] // want `scratch buffer escapes via return value`
}

func (s *Sim) LeakBuf() []int {
	return s.heapBuf // want `scratch buffer escapes via return value`
}

func (s *Sim) LeakSub(n int) []int {
	return s.heapBuf[:n] // want `scratch buffer escapes via return value`
}

// LeakLocal escapes through a local alias: taint propagates.
func (s *Sim) LeakLocal() []int {
	h := s.heapBuf[:0]
	h = append(h, 1)
	return h // want `scratch buffer escapes via return value`
}

// LeakMarked escapes a field marked //topovet:scratch rather than named
// by convention.
func (s *Sim) LeakMarked() []uint64 {
	return s.snap // want `scratch buffer escapes via return value`
}

func (s *Sim) LeakStore(m map[string][]int) {
	m["k"] = s.heapBuf // want `scratch buffer aliased into map m`
}

func (s *Sim) LeakSend(ch chan []int) {
	ch <- s.heapBuf // want `scratch buffer escapes on a channel`
}

// Use is the intended pool pattern: take the buffer locally, grow it,
// write it back to the receiver, and copy out anything that leaves.
func (s *Sim) Use(n int) []int {
	h := s.heapBuf[:0]
	for i := 0; i < n; i++ {
		h = append(h, i)
	}
	s.heapBuf = h
	out := append([]int(nil), h...)
	return out
}

// Snapshot copies out with copy: the destination is fresh memory.
func (s *Sim) Snapshot() []uint64 {
	out := make([]uint64, len(s.snap))
	copy(out, s.snap)
	return out
}

// Values loads value-typed elements out of scratch: integers do not alias.
func (s *Sim) Values() int {
	total := 0
	for _, v := range s.heapBuf {
		total += v
	}
	return total + s.heapBuf[0]
}
