package scratchalias_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/scratchalias"
)

func TestScratchAlias(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "fix"), scratchalias.Analyzer)
}
