// Package scratchalias enforces the simulator's buffer-reuse contract:
// pooled per-run scratch buffers (the cachesim event heap, cursor and
// counter-snapshot buffers, and any future trace-side pools) are reused
// across runs, so memory that aliases them must never escape the owning
// method — the PR 5 chaos suite caught exactly such a use-after-release
// in the cursor error paths at runtime; this pass catches the pattern at
// compile time.
//
// A struct field is a scratch buffer when its name marks it as one
// (scratch* / *Buf) or when its declaration carries a //topovet:scratch
// comment. Within the struct's methods the pass tracks expressions that
// alias scratch memory (the field itself, subslices, appends to it,
// reference-typed element loads, and locals assigned from any of these)
// and reports when an aliasing expression escapes:
//
//   - returned from the method,
//   - stored into anything other than the receiver's own fields, a
//     local variable, or scratch memory itself,
//   - sent on a channel.
//
// Copying out is legal and recognized: append(fresh, scratch...) and
// copy(dst, scratch) do not taint their destination.
package scratchalias

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Scope matches the packages whose scratch pools are enforced.
var Scope = regexp.MustCompile(`(^|/)internal/(cachesim|trace)(/|$)`)

// nameRe matches field names that denote scratch storage by convention.
var nameRe = regexp.MustCompile(`^scratch|Buf$|^buf$`)

// Analyzer is the scratchalias pass.
var Analyzer = &analysis.Analyzer{
	Name: "scratchalias",
	Doc: "pooled scratch buffers must not escape their owning method via returns or stored aliases " +
		"(the compile-time form of the PR 5 use-after-release class)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !Scope.MatchString(pass.PkgPath) {
		return nil
	}
	scratch := scratchFields(pass)
	if len(scratch) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
				continue
			}
			recv := pass.Info.Defs[fd.Recv.List[0].Names[0]]
			if recv == nil {
				continue
			}
			checkMethod(pass, fd, recv, scratch)
		}
	}
	return nil
}

// scratchFields collects the package's scratch-marked struct fields.
func scratchFields(pass *analysis.Pass) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				marked := commentMarks(field)
				for _, name := range field.Names {
					if !marked && !nameRe.MatchString(name.Name) {
						continue
					}
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						out[v] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// commentMarks reports whether the field's doc or line comment carries the
// //topovet:scratch directive.
func commentMarks(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, "topovet:scratch") {
				return true
			}
		}
	}
	return false
}

// checker carries the per-method taint state.
type checker struct {
	pass    *analysis.Pass
	recv    types.Object
	scratch map[*types.Var]bool
	tainted map[types.Object]bool
}

func checkMethod(pass *analysis.Pass, fd *ast.FuncDecl, recv types.Object, scratch map[*types.Var]bool) {
	c := &checker{pass: pass, recv: recv, scratch: scratch, tainted: make(map[types.Object]bool)}
	c.stmts(fd.Body.List)
}

// stmts processes statements in order, growing the taint set and
// reporting escapes.
func (c *checker) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if c.taints(r) {
				c.pass.Reportf(r.Pos(), "scratch buffer escapes via return value: the pool reuses this memory on the next run (copy it out with append/copy instead)")
			}
		}
	case *ast.SendStmt:
		if c.taints(s.Value) {
			c.pass.Reportf(s.Value.Pos(), "scratch buffer escapes on a channel: the pool reuses this memory on the next run")
		}
	case *ast.BlockStmt:
		c.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.stmts(s.Body.List)
		if s.Else != nil {
			c.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.stmts(s.Body.List)
	case *ast.RangeStmt:
		// Ranging over tainted memory taints reference-typed element vars.
		if c.taints(s.X) {
			if id, ok := s.Value.(*ast.Ident); ok {
				if obj := c.pass.Info.Defs[id]; obj != nil && refLikeType(obj.Type()) {
					c.tainted[obj] = true
				}
			}
		}
		c.stmts(s.Body.List)
	case *ast.SwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.stmts(cl.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.stmts(cl.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				if cl.Comm != nil {
					c.stmt(cl.Comm)
				}
				c.stmts(cl.Body)
			}
		}
	case *ast.DeferStmt, *ast.GoStmt, *ast.ExprStmt, *ast.IncDecStmt,
		*ast.DeclStmt, *ast.BranchStmt, *ast.LabeledStmt, *ast.EmptyStmt:
		// Calls may read scratch freely; retention through calls is out of
		// scope for this pass.
	}
}

// assign classifies one assignment: taint propagation into locals,
// legal write-backs, and escaping stores.
func (c *checker) assign(s *ast.AssignStmt) {
	n := len(s.Lhs)
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == n {
			rhs = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			rhs = s.Rhs[0] // multi-value call: conservatively shared
		}
		if rhs == nil || !c.taints(rhs) {
			continue
		}
		switch l := lhs.(type) {
		case *ast.Ident:
			// Local (or blank) variable: track the alias.
			if l.Name == "_" {
				continue
			}
			if obj := c.pass.Info.Defs[l]; obj != nil {
				c.tainted[obj] = true
				continue
			}
			if obj := c.pass.Info.Uses[l]; obj != nil {
				// Assigning to a package-level variable escapes.
				if obj.Parent() == c.pass.Pkg.Scope() {
					c.pass.Reportf(s.Pos(), "scratch buffer aliased into package-level %s: the pool reuses this memory on the next run", l.Name)
					continue
				}
				c.tainted[obj] = true
			}
		case *ast.SelectorExpr:
			// Writing back into the receiver (the pool itself) is the
			// intended pattern; storing into anything else escapes.
			if id, ok := l.X.(*ast.Ident); ok && c.pass.Info.Uses[id] == c.recv {
				continue
			}
			c.pass.Reportf(s.Pos(), "scratch buffer aliased into %s: stored slices outlive the pool's reuse of this memory (copy it out instead)", exprString(l))
		case *ast.IndexExpr:
			// Writing into scratch memory itself is fine; writing a scratch
			// alias into foreign memory escapes.
			if c.taints(l.X) {
				continue
			}
			if tv, ok := c.pass.Info.Types[l.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					c.pass.Reportf(s.Pos(), "scratch buffer aliased into map %s: stored slices outlive the pool's reuse of this memory", exprString(l.X))
					continue
				}
			}
			c.pass.Reportf(s.Pos(), "scratch buffer aliased into %s: stored slices outlive the pool's reuse of this memory", exprString(l.X))
		case *ast.StarExpr:
			c.pass.Reportf(s.Pos(), "scratch buffer aliased through pointer store: the pool reuses this memory on the next run")
		}
	}
}

// taints reports whether the expression aliases scratch memory.
func (c *checker) taints(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := c.pass.Info.Uses[e]; obj != nil {
			return c.tainted[obj]
		}
		return false
	case *ast.SelectorExpr:
		if sel, ok := c.pass.Info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && c.scratch[v] {
				// Only the receiver's own pool counts: another instance's
				// buffers are its problem.
				if id, ok := e.X.(*ast.Ident); ok && c.pass.Info.Uses[id] == c.recv {
					return true
				}
			}
		}
		return false
	case *ast.SliceExpr:
		return c.taints(e.X)
	case *ast.IndexExpr:
		// Loading an element only aliases when the element itself is a
		// reference type (slices of slices, cursor interfaces, ...).
		if !c.taints(e.X) {
			return false
		}
		return refLike(c.pass, e)
	case *ast.ParenExpr:
		return c.taints(e.X)
	case *ast.UnaryExpr:
		return c.taints(e.X)
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			if b, ok := c.pass.Info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "append":
					// append aliases its first argument's backing array.
					return len(e.Args) > 0 && c.taints(e.Args[0])
				case "copy", "len", "cap":
					return false
				}
			}
		}
		return false
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if c.taints(el) {
				return true
			}
		}
		return false
	}
	return false
}

// refLike reports whether the expression's type can alias memory.
func refLike(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return refLikeType(tv.Type)
}

// refLikeType reports whether values of the type can alias memory.
func refLikeType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan, *types.Interface, *types.Signature:
		return true
	}
	return false
}

// exprString renders a short source form of simple expressions for
// messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	}
	return "expression"
}
