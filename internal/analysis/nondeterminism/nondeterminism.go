// Package nondeterminism enforces the repo's byte-identical-output
// invariant (ROADMAP: "byte-identical output at any -j"): the simulation
// and aggregation packages must not read sources of nondeterminism that
// could leak into results.
//
// Three checks inside the scoped packages:
//
//   - time.Now / time.Since calls. Wall-clock reads that feed a result
//     make the result unreproducible. Instrumentation-only reads (cell
//     wall-time metrics, progress ETA) carry a //lint:ignore annotation
//     saying they never reach a rendered table.
//
//   - math/rand (and math/rand/v2) package-level functions, whose shared
//     global generator is seeded nondeterministically. Local generators
//     with explicit seeds (rand.New(rand.NewSource(seed))) are fine and
//     are not flagged.
//
//   - range over a map whose body does anything order-sensitive. Go map
//     iteration order is deliberately randomized, so a map-ranged loop is
//     only legal when its effect is order-insensitive: collecting keys or
//     values into a slice that is subsequently sorted in the same
//     function, integer accumulation, writes into another map, or
//     delete. Anything else is reported.
package nondeterminism

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/analysis"
)

// Scope matches the packages whose outputs must be deterministic: the
// simulator, trace generation, the differential oracle and its checking
// layers, the chaos injector (its faults must be seed-deterministic), the
// aggregation/rendering helpers and the experiment runner's result path.
var Scope = regexp.MustCompile(`(^|/)internal/(cachesim|trace|oracle|check|chaos|metrics|experiments)(/|$)`)

// randGlobals are the math/rand package-level functions backed by the
// globally seeded generator.
var randGlobals = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true, "Int63": true,
	"Int63n": true, "Uint32": true, "Uint64": true, "Float32": true,
	"Float64": true, "ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Read": true, "Seed": true, "N": true, "IntN": true,
	"Int32": true, "Int32N": true, "Int64": true, "Int64N": true, "UintN": true,
	"Uint64N": true,
}

// Analyzer is the nondeterminism pass.
var Analyzer = &analysis.Analyzer{
	Name: "nondeterminism",
	Doc: "forbid wall-clock reads, globally seeded randomness and order-sensitive map iteration " +
		"in the packages whose outputs must be byte-identical at any -j",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !Scope.MatchString(pass.PkgPath) {
		return nil
	}
	analysis.WalkFiles(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until" {
					pass.Reportf(n.Pos(), "wall-clock read time.%s in a deterministic package: results must be byte-identical across runs (annotate instrumentation-only reads)", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				// Methods on an explicitly seeded *rand.Rand are fine; only
				// the package-level functions use the global generator.
				sig, _ := fn.Type().(*types.Signature)
				if sig != nil && sig.Recv() == nil && randGlobals[fn.Name()] {
					pass.Reportf(n.Pos(), "%s.%s uses the globally seeded generator: use rand.New(rand.NewSource(seed)) with a deterministic seed", fn.Pkg().Path(), fn.Name())
				}
			}
		case *ast.RangeStmt:
			tv, ok := pass.Info.Types[n.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			fn := analysis.EnclosingFunc(stack)
			if bad := orderSensitive(pass, n, fn); bad != nil {
				pass.Reportf(bad.Pos(), "map iteration order leaks into results here: collect and sort the keys first, or restructure into an order-insensitive form")
			}
		}
		return true
	})
	return nil
}

// orderSensitive decides whether the body of a range-over-map does
// anything whose outcome depends on iteration order, returning the first
// offending node (nil when the loop is provably order-insensitive under
// the allowed patterns).
func orderSensitive(pass *analysis.Pass, rng *ast.RangeStmt, enclosing ast.Node) ast.Node {
	var appended []types.Object
	bad := checkStmts(pass, rng.Body.List, &appended)
	if bad != nil {
		return bad
	}
	// Every slice the loop appended to must be sorted afterwards in the
	// same function.
	for _, obj := range appended {
		if !sortedInFunc(pass, enclosing, obj) {
			return rng
		}
	}
	return nil
}

// checkStmts validates loop-body statements against the order-insensitive
// forms, recording slices appended to.
func checkStmts(pass *analysis.Pass, stmts []ast.Stmt, appended *[]types.Object) ast.Node {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if bad := checkAssign(pass, s, appended); bad != nil {
				return bad
			}
		case *ast.IncDecStmt:
			if !isInteger(pass, s.X) {
				return s
			}
		case *ast.BlockStmt:
			if bad := checkStmts(pass, s.List, appended); bad != nil {
				return bad
			}
		case *ast.IfStmt:
			if bad := checkStmts(pass, s.Body.List, appended); bad != nil {
				return bad
			}
			if s.Else != nil {
				if bad := checkStmts(pass, []ast.Stmt{s.Else}, appended); bad != nil {
					return bad
				}
			}
		case *ast.ExprStmt:
			// delete(m, k) is order-insensitive.
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
						continue
					}
				}
			}
			return s
		case *ast.BranchStmt:
			if s.Tok == token.CONTINUE {
				continue
			}
			return s
		default:
			return s
		}
	}
	return nil
}

// checkAssign validates one assignment inside the loop: slice appends
// (recorded for the sort requirement), integer accumulation, and writes
// into maps or into the ranged-over structures.
func checkAssign(pass *analysis.Pass, s *ast.AssignStmt, appended *[]types.Object) ast.Node {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return s
	}
	lhs, rhs := s.Lhs[0], s.Rhs[0]
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		// x = append(x, ...): collect for the sorted-later requirement.
		if call, ok := rhs.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					if lid, ok := lhs.(*ast.Ident); ok {
						if obj := pass.Info.Uses[lid]; obj != nil {
							*appended = append(*appended, obj)
							return nil
						}
						if obj := pass.Info.Defs[lid]; obj != nil {
							*appended = append(*appended, obj)
							return nil
						}
					}
				}
			}
		}
		// m2[k] = v: building another map is order-insensitive.
		if idx, ok := lhs.(*ast.IndexExpr); ok {
			if tv, ok := pass.Info.Types[idx.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					return nil
				}
			}
		}
		return s
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Integer accumulation is associative and commutative; float
		// accumulation is not (rounding depends on order).
		if isInteger(pass, lhs) {
			return nil
		}
		return s
	default:
		return s
	}
}

// sortedInFunc reports whether the enclosing function calls sort.* or
// slices.Sort* with the object as an argument.
func sortedInFunc(pass *analysis.Pass, enclosing ast.Node, obj types.Object) bool {
	if enclosing == nil {
		return false
	}
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// isInteger reports whether the expression has an integer type.
func isInteger(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
