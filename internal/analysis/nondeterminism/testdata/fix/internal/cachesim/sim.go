// Package cachesim stands in for a deterministic-output package: no wall
// clock, no global randomness, no order-sensitive map iteration.
package cachesim

import (
	"math/rand"
	"sort"
	"time"
)

func Stamp() time.Time {
	return time.Now() // want `wall-clock read time.Now`
}

func Elapsed(t time.Time) time.Duration {
	return time.Since(t) // want `wall-clock read time.Since`
}

func Jitter() int {
	return rand.Intn(8) // want `math/rand.Intn uses the globally seeded generator`
}

// Seeded uses an explicitly seeded local generator: deterministic, fine.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(8)
}

// Annotated mirrors the runner's instrumentation reads: suppressed with a
// justification, so no finding.
func Annotated() time.Time {
	return time.Now() //lint:ignore nondeterminism wall-clock instrumentation only, never rendered (fixture)
}

// Keys collects then sorts in the same function: order-insensitive.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Render feeds map iteration order straight into its result.
func Render(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order leaks into results`
		out = append(out, k)
	}
	return out
}

// Total is integer accumulation: associative and commutative, fine.
func Total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Invert builds another map: order-insensitive, fine.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Flush deletes while ranging: explicitly allowed by the spec, fine.
func Flush(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}
