// Package util sits outside the deterministic scope: wall-clock reads are
// legitimate here and produce no findings.
package util

import "time"

func Stamp() time.Time { return time.Now() }
