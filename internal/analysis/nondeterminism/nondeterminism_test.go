package nondeterminism_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nondeterminism"
)

func TestNondeterminism(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "fix"), nondeterminism.Analyzer)
}
