package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matching the patterns (relative to dir)
// and returns them ready for analysis. It resolves and compiles
// dependencies by shelling out to `go list -deps -export`, then parses the
// target packages' non-test sources and type-checks them against the
// dependencies' export data — no network, no third-party tooling, only the
// installed go toolchain. Test files are deliberately not analyzed: the
// invariants topovet enforces are production-code invariants (tests
// legitimately panic, use wall-clock time and seed local RNGs).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := &listPackage{}
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			if lp.Error != nil {
				return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
			}
			if len(lp.CgoFiles) > 0 {
				return nil, fmt.Errorf("analysis: %s uses cgo, which the loader does not support", lp.ImportPath)
			}
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, lp := range targets {
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: lp.ImportPath,
			Dir:     lp.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return pkgs, nil
}
