package cli

import (
	"io"
	"os"
	"strings"
	"testing"

	"repro"
	"repro/internal/experiments"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// TestReportFailuresOrderedByKey drives the end-of-run failure listing the
// tools print: with several cells failing under a parallel sweep, the
// stderr lines come out ordered by cell key — the listing is deterministic
// at any worker count.
func TestReportFailuresOrderedByKey(t *testing.T) {
	fig5, err := workloads.ByName("fig5")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := workloads.ByName("sp")
	if err != nil {
		t.Fatal(err)
	}
	var bad []experiments.Cell
	for _, k := range []*workloads.Kernel{sp, fig5} {
		for _, m := range []*topology.Machine{topology.Nehalem(), topology.Dunnington()} {
			bad = append(bad, experiments.Cell{Kernel: k, Machine: m,
				Scheme: repro.Scheme(99), Config: repro.DefaultConfig()})
		}
	}
	r := experiments.NewRunner()
	r.SetWorkers(4)
	if _, err := r.RunCells(bad); err == nil {
		t.Fatal("invalid-scheme cells did not fail")
	}

	old := os.Stderr
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = pw
	n := ReportFailures(r, "clitest")
	pw.Close()
	os.Stderr = old
	out, err := io.ReadAll(pr)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(bad) {
		t.Errorf("ReportFailures = %d, want %d", n, len(bad))
	}
	var keys []string
	for _, line := range strings.Split(string(out), "\n") {
		if !strings.Contains(line, "FAILED cell ") {
			continue
		}
		rest := line[strings.Index(line, "FAILED cell ")+len("FAILED cell "):]
		keys = append(keys, strings.SplitN(rest, " [", 2)[0])
	}
	if len(keys) != len(bad) {
		t.Fatalf("listing has %d FAILED lines, want %d:\n%s", len(keys), len(bad), out)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Errorf("failure listing out of order: %q before %q", keys[i-1], keys[i])
		}
	}
}

// TestDedupeFailuresKeepsLastStage: a cell retried through several stages
// is listed once, under the stage it last failed at, and the survivors come
// out sorted by key.
func TestDedupeFailuresKeepsLastStage(t *testing.T) {
	fails := []*experiments.CellError{
		{Key: "b", Stage: "map"},
		{Key: "a", Stage: "simulate"},
		{Key: "b", Stage: "oracle"},
	}
	out := dedupeFailures(fails)
	if len(out) != 2 {
		t.Fatalf("dedupeFailures kept %d entries, want 2", len(out))
	}
	if out[0].Key != "a" || out[1].Key != "b" {
		t.Errorf("survivors out of order: [%s %s], want [a b]", out[0].Key, out[1].Key)
	}
	if out[1].Stage != "oracle" {
		t.Errorf("cell b reports stage %q, want the last failure stage oracle", out[1].Stage)
	}
	if got := dedupeFailures(nil); len(got) != 0 {
		t.Errorf("dedupeFailures(nil) = %v, want empty", got)
	}
}
