// Package cli holds the runner plumbing the command-line tools share:
// the fault-isolation flags (-checkpoint, -timeout, -retries, -maxcycles),
// the self-checking flags (-check, -chaos-seed, -replaydir), the
// worker-pool and progress flags, and the end-of-run failure report.
// benchtool and topomap bind these to their own flag sets so both expose
// the same execution-guard vocabulary.
package cli

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/serve"
)

// RunnerFlags carries the flag values that configure a Runner's execution
// guards and self-checking. Bind with AddRunnerFlags, then Configure after
// flag parsing.
type RunnerFlags struct {
	Jobs       *int
	SimWorkers *int
	Progress   *bool
	Checkpoint *string
	Timeout    *time.Duration
	Retries    *int
	MaxCycles  *uint64
	Check      *string
	ChaosSeed  *int64
	ReplayDir  *string

	// Distributed sweep fabric (internal/fabric). Like -j and -simworkers,
	// none of these is part of the grid signature: the fabric changes where
	// cells run, never what they compute.
	Fabric        *bool
	FabricWorkers *int
	FabricListen  *string
	LeaseTTL      *time.Duration
	ReassignMax   *int
}

// AddRunnerFlags registers the shared runner flags on a flag set.
// defaultJobs distinguishes benchtool (0 = GOMAXPROCS) from topomap
// (1 = serial), matching each tool's historical default.
func AddRunnerFlags(fs *flag.FlagSet, defaultJobs int) *RunnerFlags {
	return &RunnerFlags{
		Jobs:       fs.Int("j", defaultJobs, "worker pool size for grid cells (0 = GOMAXPROCS, 1 = serial; output is identical at any value)"),
		SimWorkers: fs.Int("simworkers", 1, "intra-cell simulator workers: >1 runs each cell's simulation on the set-partitioned parallel engine (output is byte-identical at any value; 1 = classic sequential event loop)"),
		Progress:   fs.Bool("progress", false, "report cells done/total and ETA on stderr"),
		Checkpoint: fs.String("checkpoint", "", "persist completed cells to this file and restore them on re-runs (errors are never checkpointed; the file is bound to this sweep's grid signature)"),
		Timeout:    fs.Duration("timeout", 0, "per-cell wall-time budget (0 = unlimited); an over-budget cell fails, the rest of the grid continues"),
		Retries:    fs.Int("retries", 0, "extra evaluation attempts for a failing cell"),
		MaxCycles:  fs.Uint64("maxcycles", 0, "per-cell simulated-cycle budget (0 = unlimited)"),
		Check:      fs.String("check", "off", "self-checking level: off, invariants (runtime checks in the simulator), sampled (plus differential oracle on 1-in-4 cells), full (oracle on every cell); a failed check turns the cell into a fail row"),
		ChaosSeed:  fs.Int64("chaos-seed", 0, "arm the fault injector with this seed: ~1 in 3 cells is deterministically corrupted and must be caught by the checks (testing aid; cells are not checkpointed while armed)"),
		ReplayDir:  fs.String("replaydir", "", "write a replay bundle here for each cell failing a self-check or panicking; re-execute with benchtool -replay <bundle>"),

		Fabric:        fs.Bool("fabric", false, "shard the grid across worker processes via the lease-based sweep fabric (output is byte-identical to a single-process run); spawns -fabric-workers local workers"),
		FabricWorkers: fs.Int("fabric-workers", 2, "local worker processes the fabric spawns (with -fabric)"),
		FabricListen:  fs.String("fabric-listen", "127.0.0.1:0", "coordinator listen address (with -fabric); remote workers join with the `worker` subcommand"),
		LeaseTTL:      fs.Duration("lease-ttl", 2*time.Second, "fabric lease time-to-live: a worker that misses heartbeats for this long loses its batch, which is reassigned"),
		ReassignMax:   fs.Int("reassign-max", 3, "fabric reassignment budget per batch; an exhausted batch becomes structured per-cell failures (stage fabric) instead of cycling forever"),
	}
}

// GridParts returns the flag values that belong in the sweep's grid
// signature: everything that changes which cells run or what they compute.
// Tools append their own sweep-defining flags (kernel/machine/scheme
// selections, figure choice, config overrides) and hash the lot with
// experiments.GridSignature. -simworkers is deliberately absent, like -j:
// both only change how cells execute, never what they compute, so a
// checkpoint written at one worker count resumes at any other.
func (rf *RunnerFlags) GridParts() []string {
	return []string{
		fmt.Sprintf("maxcycles=%d", *rf.MaxCycles),
		"check=" + *rf.Check,
		fmt.Sprintf("chaos=%d", *rf.ChaosSeed),
	}
}

// Configure builds a Runner from the parsed flags. grid is the sweep's
// identity signature (experiments.GridSignature over the tool's
// sweep-defining flags); the checkpoint file is stamped with it so a resume
// against a different sweep is rejected instead of silently reusing foreign
// cells. The returned cleanup closes the checkpoint (reporting any append
// error to stderr) and must run before the process exits — call it deferred
// from a function that returns an exit code rather than calling os.Exit
// directly.
func (rf *RunnerFlags) Configure(tool, grid string) (*experiments.Runner, func(), error) {
	mode, err := repro.ParseCheckMode(*rf.Check)
	if err != nil {
		return nil, nil, err
	}
	r := experiments.NewRunner()
	r.SetWorkers(*rf.Jobs)
	r.SetSimWorkers(*rf.SimWorkers)
	r.SetTimeout(*rf.Timeout)
	r.SetRetries(*rf.Retries)
	r.SetMaxCycles(*rf.MaxCycles)
	r.SetCheck(mode)
	r.SetChaos(*rf.ChaosSeed)
	r.SetReplayDir(*rf.ReplayDir)
	if *rf.Progress {
		r.SetProgress(ProgressReporter())
	}
	var cleanups []func()
	cleanup := func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}
	if *rf.Checkpoint != "" {
		n, err := r.SetCheckpoint(*rf.Checkpoint, grid)
		if err != nil {
			return nil, nil, fmt.Errorf("checkpoint %s: %w", *rf.Checkpoint, err)
		}
		if n > 0 {
			fmt.Fprintf(os.Stderr, "%s: restored %d cells from %s\n", tool, n, *rf.Checkpoint)
		}
		cleanups = append(cleanups, func() {
			if err := r.CloseCheckpoint(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: checkpoint: %v\n", tool, err)
			}
		})
	}
	if *rf.Fabric {
		coord, pool, err := rf.startFabric(tool, grid, mode)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		r.SetDistributor(coord)
		cleanups = append(cleanups, func() {
			// Workers first, then the coordinator: a worker mid-poll against
			// a closed port would burn its connection-failure budget.
			_ = pool.Close() // kill+reap only; nothing to report
			if err := coord.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: fabric: %v\n", tool, err)
			}
		})
	}
	return r, cleanup, nil
}

// procChaosEnv is the environment variable arming process-level chaos on
// fabric workers (kill/stall/corrupt-result; see chaos.PickProcess). An
// env var rather than a flag: it is a test harness control, must never
// enter a grid signature, and CI sets it for the fault-recovery smoke.
const procChaosEnv = "REPRO_FABRIC_PROC_CHAOS"

// startFabric launches the coordinator and the local worker pool.
func (rf *RunnerFlags) startFabric(tool, grid string, mode repro.CheckMode) (*fabric.Coordinator, *fabric.Pool, error) {
	var procChaos int64
	if env := os.Getenv(procChaosEnv); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("fabric: %s=%q is not an integer seed: %w", procChaosEnv, env, err)
		}
		procChaos = seed
		fmt.Fprintf(os.Stderr, "%s: fabric process chaos armed (seed %d): workers will be killed, stalled and corrupted\n", tool, procChaos)
	}
	coord, err := fabric.Start(fabric.Options{
		Grid:        grid,
		TTL:         *rf.LeaseTTL,
		ReassignMax: *rf.ReassignMax,
		Listen:      *rf.FabricListen,
		Guards: fabric.Guards{
			TimeoutNS:  int64(*rf.Timeout),
			MaxCycles:  *rf.MaxCycles,
			Retries:    *rf.Retries,
			Check:      int(mode),
			ChaosSeed:  *rf.ChaosSeed,
			SimWorkers: *rf.SimWorkers,
		},
		ProcChaosSeed: procChaos,
	})
	if err != nil {
		return nil, nil, err
	}
	pool, err := fabric.SpawnLocal(coord.URL(), *rf.FabricWorkers, fabric.SpawnOptions{})
	if err != nil {
		_ = coord.Close() // the spawn error is the one worth reporting
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "%s: fabric coordinator at %s, %d local worker(s)\n", tool, coord.URL(), *rf.FabricWorkers)
	return coord, pool, nil
}

// WorkerMain is the `worker` subcommand both tools expose: a fabric worker
// process that pulls leased batches from a coordinator until it shuts
// down. args is os.Args[2:]; the return value is the process exit code.
func WorkerMain(tool string, args []string) int {
	fs := flag.NewFlagSet(tool+" worker", flag.ContinueOnError)
	coord := fs.String("coord", "", "coordinator base URL (required; printed by the -fabric run)")
	id := fs.String("id", "", "worker identity for leases and attribution (default w<pid>)")
	jobs := fs.Int("j", 1, "in-process cell pool size inside this worker")
	verbose := fs.Bool("v", false, "log protocol events on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *coord == "" {
		fmt.Fprintf(os.Stderr, "%s worker: -coord is required\n", tool)
		return 2
	}
	opts := fabric.WorkerOptions{Coordinator: *coord, ID: *id, Jobs: *jobs}
	if *verbose {
		opts.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}
	if err := fabric.RunWorker(opts); err != nil {
		fmt.Fprintf(os.Stderr, "%s worker: %v\n", tool, err)
		return 1
	}
	return 0
}

// ReportFailures prints every cell that stands failed — key, pipeline stage
// and cause, ordered by cell key so the listing is deterministic at any
// worker count — to stderr and returns the count. Tools exit nonzero when
// it is positive, after rendering whatever completed. Failures that wrote a
// replay bundle point at it. Each cell is listed once: a retried cell that
// failed at two different stages reports only the last failure.
func ReportFailures(r *experiments.Runner, tool string) int {
	fails := dedupeFailures(r.Failures())
	for _, ce := range fails {
		fmt.Fprintf(os.Stderr, "%s: FAILED cell %s [stage %s]: %v\n", tool, ce.Key, ce.Stage, ce.Err)
		if ce.Bundle != "" {
			fmt.Fprintf(os.Stderr, "%s:   replay bundle: %s (re-run: benchtool -replay %s)\n", tool, ce.Bundle, ce.Bundle)
		}
	}
	if len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "%s: %d cell(s) failed; completed cells were rendered above\n", tool, len(fails))
	}
	return len(fails)
}

// dedupeFailures collapses a failure list to one entry per cell key,
// keeping the last entry — the most recent stage a retried cell failed at —
// and returns the survivors sorted by key.
func dedupeFailures(fails []*experiments.CellError) []*experiments.CellError {
	byKey := make(map[string]*experiments.CellError, len(fails))
	for _, ce := range fails {
		byKey[ce.Key] = ce
	}
	out := make([]*experiments.CellError, 0, len(byKey))
	for _, ce := range byKey {
		out = append(out, ce)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ServeFlags carries the flag values that configure the topomapd
// mapping-as-a-service server (internal/serve). Bind with AddServeFlags,
// then build the server from Options() after flag parsing.
type ServeFlags struct {
	Listen       *string
	Queue        *int
	Workers      *int
	AdhocWorkers *int
	Watermark    *float64
	LRU          *int
	Timeout      *time.Duration
	MaxTimeout   *time.Duration
	MaxCycles    *uint64
	SimWorkers   *int
	BodyLimit    *int64
	DrainTimeout *time.Duration
	FabricURL    *string
	Checkpoint   *string
}

// AddServeFlags registers the topomapd flags on a flag set.
func AddServeFlags(fs *flag.FlagSet) *ServeFlags {
	return &ServeFlags{
		Listen:       fs.String("listen", "127.0.0.1:8723", "HTTP listen address (host:port; port 0 picks an ephemeral port, printed on startup)"),
		Queue:        fs.Int("queue", 64, "admission queue bound for cold evaluations (queued + running); a full queue answers 429 queue-full"),
		Workers:      fs.Int("workers", 4, "concurrently running evaluations (0 = default)"),
		AdhocWorkers: fs.Int("adhoc-workers", 0, "concurrency cap for ad-hoc kernel_source/machine_json requests (0 = half of -workers); keeps uploads from starving registry traffic"),
		Watermark:    fs.Float64("shed-watermark", 0.75, "queue-occupancy fraction beyond which cold requests are shed with 429 + Retry-After (cached results keep serving)"),
		LRU:          fs.Int("lru", 1024, "bounded shared result cache size, in records"),
		Timeout:      fs.Duration("timeout", 30*time.Second, "default per-request evaluation budget (clients tighten it with a Request-Timeout header)"),
		MaxTimeout:   fs.Duration("max-timeout", 2*time.Minute, "hard cap on any client-requested budget"),
		MaxCycles:    fs.Uint64("maxcycles", 0, "default simulated-cycle budget per evaluation (0 = unlimited); client max_cycles is clamped to it when set"),
		SimWorkers:   fs.Int("simworkers", 1, "intra-cell simulator workers per evaluation (results are byte-identical at any value)"),
		BodyLimit:    fs.Int64("body-limit", 1<<20, "request body size cap in bytes"),
		DrainTimeout: fs.Duration("drain-timeout", 15*time.Second, "graceful-drain bound after SIGTERM: in-flight requests finish within it, stragglers are canceled"),
		FabricURL:    fs.String("fabric-url", "", "offload cold evaluations to this topomapd/fabric base URL behind a circuit breaker (falls back to local evaluation on brown-out)"),
		Checkpoint:   fs.String("checkpoint", "", "warm the result cache from this checkpoint file and append computed cells to it (lockfile-guarded; a concurrent sweep on the same file is rejected)"),
	}
}

// Options resolves the parsed flags into server options.
func (sf *ServeFlags) Options() serve.Options {
	return serve.Options{
		Queue:          *sf.Queue,
		Workers:        *sf.Workers,
		AdhocWorkers:   *sf.AdhocWorkers,
		ShedWatermark:  *sf.Watermark,
		LRUSize:        *sf.LRU,
		DefaultTimeout: *sf.Timeout,
		MaxTimeout:     *sf.MaxTimeout,
		MaxCycles:      *sf.MaxCycles,
		SimWorkers:     *sf.SimWorkers,
		BodyLimit:      *sf.BodyLimit,
		DrainTimeout:   *sf.DrainTimeout,
		FabricURL:      *sf.FabricURL,
		Checkpoint:     *sf.Checkpoint,
	}
}

// ProgressReporter returns a ProgressFunc that rewrites one stderr status
// line per batch: cells done / total, percent, elapsed and ETA. Updates are
// throttled to one per 100ms except the final one, which ends the line.
func ProgressReporter() experiments.ProgressFunc {
	var last time.Time
	return func(done, total int, elapsed, eta time.Duration) {
		if done < total && time.Since(last) < 100*time.Millisecond {
			return
		}
		last = time.Now()
		fmt.Fprintf(os.Stderr, "\r%d/%d cells (%.0f%%), elapsed %s, eta %s    ",
			done, total, 100*float64(done)/float64(total),
			elapsed.Round(time.Second), eta.Round(time.Second))
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}
