package tags

import (
	"fmt"
	"sort"

	"repro/internal/poly"
)

// Group is an iteration group θ_τ: the set of loop iterations that share the
// tag τ (§3.3). Two distinct groups never share an iteration, and the groups
// of a tagging collectively cover the whole iteration space.
type Group struct {
	// ID is a dense index assigned by the Tagger, stable across a run.
	ID  int
	Tag Tag
	// Iters holds the member iterations in lexicographic (program) order.
	Iters []poly.Point
}

// Size returns |θ_τ|, the number of member iterations.
func (g *Group) Size() int { return len(g.Iters) }

// String renders the group like θ[1100]{8 iters}.
func (g *Group) String() string {
	return fmt.Sprintf("θ[%s]{%d iters}", g.Tag, g.Size())
}

// Tagging is the result of tagging a loop nest against a data-block
// partitioning: the iteration groups plus the context needed downstream.
type Tagging struct {
	Groups    []*Group
	Layout    *poly.Layout
	Refs      []*poly.Ref
	NumBlocks int
	// TotalIters is the number of iterations across all groups.
	TotalIters int
}

// GroupOf returns the group containing iteration p, or nil.
func (tg *Tagging) GroupOf(p poly.Point) *Group {
	// Tag the point and look it up; cheaper than searching every group.
	t := TagOf(p, tg.Refs, tg.Layout, tg.NumBlocks)
	key := t.Key()
	for _, g := range tg.Groups {
		if g.Tag.Key() == key {
			return g
		}
	}
	return nil
}

// TagOf computes the tag of a single iteration: one bit per data block
// touched by any reference at p.
func TagOf(p poly.Point, refs []*poly.Ref, layout *poly.Layout, numBlocks int) Tag {
	t := NewTag(numBlocks)
	for _, r := range refs {
		// An element access can touch one block; mark it. (Elements never
		// straddle blocks because block sizes are multiples of elem sizes
		// in practice; if one did, the address-level simulator would still
		// see the right lines — tags are a logical grouping device.)
		t.Set(layout.BlockOf(r, p))
	}
	return t
}

// Compute tags every iteration of the given point list and clusters
// iterations with identical tags into groups, in first-appearance order.
// This is the "Initialization" step of the Fig 6 algorithm.
func Compute(iters []poly.Point, refs []*poly.Ref, layout *poly.Layout) *Tagging {
	numBlocks := layout.NumBlocks()
	byKey := make(map[string]*Group)
	var groups []*Group
	for _, p := range iters {
		t := TagOf(p, refs, layout, numBlocks)
		k := t.Key()
		g, ok := byKey[k]
		if !ok {
			g = &Group{ID: len(groups), Tag: t}
			byKey[k] = g
			groups = append(groups, g)
		}
		g.Iters = append(g.Iters, p)
	}
	return &Tagging{
		Groups:     groups,
		Layout:     layout,
		Refs:       refs,
		NumBlocks:  numBlocks,
		TotalIters: len(iters),
	}
}

// ComputeNest is Compute over a loop nest's full iteration space.
func ComputeNest(nest *poly.Nest, refs []*poly.Ref, layout *poly.Layout) *Tagging {
	return Compute(nest.Points(), refs, layout)
}

// SplitGroup splits g into two groups: the first keeping want iterations,
// the second the rest. Both inherit g's tag (splitting is a load-balancing
// device of Fig 6 — "split θ_a such that sizes are within limits"; the tag
// is conservatively kept, since every member still touches at most τ's
// blocks). The returned groups get the IDs id1 and id2.
func SplitGroup(g *Group, want, id1, id2 int) (*Group, *Group) {
	if want <= 0 || want >= g.Size() {
		//lint:ignore cellboundary programmer-error invariant on an internal API; repro.capturePanic converts it to a contained PanicError at the cell boundary
		panic(fmt.Sprintf("tags: SplitGroup(%d of %d)", want, g.Size()))
	}
	a := &Group{ID: id1, Tag: g.Tag.Clone(), Iters: append([]poly.Point(nil), g.Iters[:want]...)}
	b := &Group{ID: id2, Tag: g.Tag.Clone(), Iters: append([]poly.Point(nil), g.Iters[want:]...)}
	return a, b
}

// Validate checks the §3.3 invariants: groups are disjoint, cover the whole
// space, and every member iteration actually matches its group tag.
func (tg *Tagging) Validate(allIters []poly.Point) error {
	seen := make(map[string]int)
	total := 0
	for _, g := range tg.Groups {
		total += g.Size()
		for _, p := range g.Iters {
			k := p.String()
			if prev, dup := seen[k]; dup {
				return fmt.Errorf("tags: iteration %v in groups %d and %d", p, prev, g.ID)
			}
			seen[k] = g.ID
			t := TagOf(p, tg.Refs, tg.Layout, tg.NumBlocks)
			if !t.Equal(g.Tag) {
				return fmt.Errorf("tags: iteration %v has tag %s but sits in group %s", p, t, g.Tag)
			}
		}
	}
	if total != len(allIters) {
		return fmt.Errorf("tags: groups cover %d iterations, space has %d", total, len(allIters))
	}
	for _, p := range allIters {
		if _, ok := seen[p.String()]; !ok {
			return fmt.Errorf("tags: iteration %v not covered by any group", p)
		}
	}
	return nil
}

// SortGroupsBySize orders a copy of the groups by descending size (ties by
// ID for determinism) — handy for load-balancing heuristics and reporting.
func SortGroupsBySize(groups []*Group) []*Group {
	out := append([]*Group(nil), groups...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Size() != out[j].Size() {
			return out[i].Size() > out[j].Size()
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Coarsen reduces the number of groups to at most limit by repeatedly
// merging each group with its best-matching neighbour (maximum tag dot
// product within a small look-ahead window, falling back to the next group
// in ID order). Groups adjacent in first-appearance order come from
// program-adjacent iterations and usually share blocks, so this works like
// locally enlarging the data block size: it trades clustering granularity
// for compile time, the Fig 16 trade-off. The result preserves the §3.3
// invariants except tag exactness: a merged group's tag is the OR of its
// members' (every member touches a subset).
func Coarsen(tg *Tagging, limit int) *Tagging {
	if limit <= 0 || len(tg.Groups) <= limit {
		return tg
	}
	groups := append([]*Group(nil), tg.Groups...)
	const window = 8
	for len(groups) > limit {
		next := make([]*Group, 0, (len(groups)+1)/2)
		used := make([]bool, len(groups))
		for i := range groups {
			if used[i] {
				continue
			}
			used[i] = true
			// Find the best unmerged partner within the window.
			best, bestDot := -1, -1
			for j := i + 1; j < len(groups) && j <= i+window; j++ {
				if used[j] {
					continue
				}
				if d := groups[i].Tag.Dot(groups[j].Tag); d > bestDot {
					best, bestDot = j, d
				}
			}
			if best < 0 {
				next = append(next, groups[i])
				continue
			}
			used[best] = true
			merged := &Group{
				Tag:   groups[i].Tag.Or(groups[best].Tag),
				Iters: append(append([]poly.Point(nil), groups[i].Iters...), groups[best].Iters...),
			}
			sort.Slice(merged.Iters, func(a, b int) bool { return merged.Iters[a].Less(merged.Iters[b]) })
			next = append(next, merged)
		}
		if len(next) == len(groups) {
			break // nothing mergeable
		}
		groups = next
	}
	for i, g := range groups {
		g.ID = i
	}
	return &Tagging{
		Groups:     groups,
		Layout:     tg.Layout,
		Refs:       tg.Refs,
		NumBlocks:  tg.NumBlocks,
		TotalIters: tg.TotalIters,
	}
}

// SelectBlockSize implements the §4.1 heuristic: pick the largest
// power-of-two block size such that the data footprint of the most
// aggressive iteration group (bounded by maxBlocksPerIter blocks, e.g. the
// reference count of the loop body) does not exceed the L1 capacity. The
// result is clamped to [minBlock, maxBlock]; the paper's default outcome is
// 2 KB.
func SelectBlockSize(l1Bytes int64, maxBlocksPerIter int, minBlock, maxBlock int64) int64 {
	if maxBlocksPerIter < 1 {
		maxBlocksPerIter = 1
	}
	if minBlock <= 0 {
		minBlock = 256
	}
	if maxBlock < minBlock {
		maxBlock = minBlock
	}
	limit := l1Bytes / int64(maxBlocksPerIter)
	size := minBlock
	for size*2 <= limit && size*2 <= maxBlock {
		size *= 2
	}
	return size
}
