// Package tags implements §3.3 of the paper: the logical partitioning of
// program data into equal-sized blocks β0..β(n-1), the bit-vector tags that
// record which blocks an iteration accesses, and the grouping of iterations
// with identical tags into iteration groups θ_τ.
package tags

import (
	"fmt"
	"math/bits"
	"strings"
)

// Tag is a fixed-width bit vector with one bit per data block: bit j is set
// when the tagged iterations access a datum in block βj. Tags of the same
// tagger share a width; operations panic on width mismatch to catch misuse.
type Tag struct {
	words []uint64
	n     int // number of valid bits
}

// NewTag returns an all-zero tag over n blocks.
func NewTag(n int) Tag {
	if n < 0 {
		//lint:ignore cellboundary programmer-error invariant on an internal API; repro.capturePanic converts it to a contained PanicError at the cell boundary
		panic("tags: negative tag width")
	}
	return Tag{words: make([]uint64, (n+63)/64), n: n}
}

// Width returns the number of blocks the tag covers.
func (t Tag) Width() int { return t.n }

// Set sets bit j.
func (t Tag) Set(j int) {
	t.check(j)
	t.words[j/64] |= 1 << (j % 64)
}

// Clear clears bit j.
func (t Tag) Clear(j int) {
	t.check(j)
	t.words[j/64] &^= 1 << (j % 64)
}

// Get reports bit j.
func (t Tag) Get(j int) bool {
	t.check(j)
	return t.words[j/64]&(1<<(j%64)) != 0
}

func (t Tag) check(j int) {
	if j < 0 || j >= t.n {
		//lint:ignore cellboundary programmer-error invariant on an internal API; repro.capturePanic converts it to a contained PanicError at the cell boundary
		panic(fmt.Sprintf("tags: bit %d out of range [0,%d)", j, t.n))
	}
}

func (t Tag) checkWidth(u Tag) {
	if t.n != u.n {
		//lint:ignore cellboundary programmer-error invariant on an internal API; repro.capturePanic converts it to a contained PanicError at the cell boundary
		panic(fmt.Sprintf("tags: width mismatch %d vs %d", t.n, u.n))
	}
}

// Clone returns an independent copy.
func (t Tag) Clone() Tag {
	w := make([]uint64, len(t.words))
	copy(w, t.words)
	return Tag{words: w, n: t.n}
}

// Or returns t | u, the cluster tag of Fig 6 ("bitwise sum" of member tags:
// the set of blocks the cluster touches).
func (t Tag) Or(u Tag) Tag {
	t.checkWidth(u)
	out := t.Clone()
	for i := range out.words {
		out.words[i] |= u.words[i]
	}
	return out
}

// OrInPlace folds u into t without allocating.
func (t Tag) OrInPlace(u Tag) {
	t.checkWidth(u)
	for i := range t.words {
		t.words[i] |= u.words[i]
	}
}

// And returns t & u.
func (t Tag) And(u Tag) Tag {
	t.checkWidth(u)
	out := t.Clone()
	for i := range out.words {
		out.words[i] &= u.words[i]
	}
	return out
}

// Dot returns the dot product of two tags as the paper defines it: the
// number of common 1 bits — the degree of data-block sharing.
func (t Tag) Dot(u Tag) int {
	t.checkWidth(u)
	d := 0
	for i := range t.words {
		d += bits.OnesCount64(t.words[i] & u.words[i])
	}
	return d
}

// Ones returns the number of set bits (blocks touched).
func (t Tag) Ones() int {
	d := 0
	for _, w := range t.words {
		d += bits.OnesCount64(w)
	}
	return d
}

// Hamming returns the Hamming distance between the tags, the §3.5.3 measure
// the scheduler minimizes between contiguously scheduled groups.
func (t Tag) Hamming(u Tag) int {
	t.checkWidth(u)
	d := 0
	for i := range t.words {
		d += bits.OnesCount64(t.words[i] ^ u.words[i])
	}
	return d
}

// Equal reports bitwise equality.
func (t Tag) Equal(u Tag) bool {
	if t.n != u.n {
		return false
	}
	for i := range t.words {
		if t.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether no bit is set.
func (t Tag) IsZero() bool {
	for _, w := range t.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Key returns a compact string usable as a map key.
func (t Tag) Key() string {
	var b strings.Builder
	b.Grow(len(t.words) * 16)
	for _, w := range t.words {
		fmt.Fprintf(&b, "%016x", w)
	}
	return b.String()
}

// Blocks lists the indices of the set bits in increasing order.
func (t Tag) Blocks() []int {
	var out []int
	for i, w := range t.words {
		for w != 0 {
			j := bits.TrailingZeros64(w)
			out = append(out, i*64+j)
			w &^= 1 << j
		}
	}
	return out
}

// String renders the tag in the paper's d0 d1 ... d(n-1) notation, e.g.
// "1100" for a four-block tag touching the first two blocks. Widths above
// 64 are abbreviated to the set-bit list.
func (t Tag) String() string {
	if t.n > 64 {
		return fmt.Sprintf("tag%v", t.Blocks())
	}
	var b strings.Builder
	for j := 0; j < t.n; j++ {
		if t.Get(j) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// FromBits builds a tag from a "1100"-style string, for tests and examples.
func FromBits(s string) Tag {
	t := NewTag(len(s))
	for i, c := range s {
		switch c {
		case '1':
			t.Set(i)
		case '0':
		default:
			//lint:ignore cellboundary programmer-error invariant on an internal API; repro.capturePanic converts it to a contained PanicError at the cell boundary
			panic(fmt.Sprintf("tags: bad bit %q in %q", c, s))
		}
	}
	return t
}
