package tags

import (
	"testing"

	"repro/internal/poly"
)

func benchTagging(b *testing.B, blockBytes int64) {
	const n = 1 << 16
	a := poly.NewArray("A", n)
	w := poly.NewArray("W", n)
	nest := poly.NewNest(poly.RectLoop("j", 0, n-1))
	refs := []*poly.Ref{
		poly.NewRef(a, poly.Read, poly.Var(0, 1)),
		poly.NewRef(a, poly.Read, poly.Var(0, 1).Scale(-1).AddConst(n-1)),
		poly.NewRef(w, poly.Write, poly.Var(0, 1)),
	}
	layout := poly.NewLayout(blockBytes, a, w)
	pts := nest.Points()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg := Compute(pts, refs, layout)
		if len(tg.Groups) == 0 {
			b.Fatal("no groups")
		}
	}
}

func BenchmarkCompute2KB(b *testing.B)  { benchTagging(b, 2048) }
func BenchmarkCompute256B(b *testing.B) { benchTagging(b, 256) }

func BenchmarkTagDot(b *testing.B) {
	t1, t2 := NewTag(4096), NewTag(4096)
	for i := 0; i < 4096; i += 3 {
		t1.Set(i)
	}
	for i := 0; i < 4096; i += 5 {
		t2.Set(i)
	}
	b.ResetTimer()
	acc := 0
	for i := 0; i < b.N; i++ {
		acc += t1.Dot(t2)
	}
	_ = acc
}

func BenchmarkCoarsen(b *testing.B) {
	const n = 1 << 15
	a := poly.NewArray("A", n)
	nest := poly.NewNest(poly.RectLoop("j", 0, n-1))
	refs := []*poly.Ref{poly.NewRef(a, poly.Read, poly.Var(0, 1))}
	layout := poly.NewLayout(256, a)
	pts := nest.Points()
	tg := Compute(pts, refs, layout)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := Coarsen(tg, 256)
		if len(out.Groups) > 256 {
			b.Fatal("coarsen failed")
		}
	}
}
