package tags

import (
	"testing"
	"testing/quick"

	"repro/internal/poly"
)

func TestTagBasics(t *testing.T) {
	tag := NewTag(130) // cross word boundaries
	if tag.Width() != 130 || !tag.IsZero() {
		t.Fatal("fresh tag wrong")
	}
	tag.Set(0)
	tag.Set(64)
	tag.Set(129)
	if !tag.Get(0) || !tag.Get(64) || !tag.Get(129) || tag.Get(1) {
		t.Fatal("Set/Get wrong")
	}
	if tag.Ones() != 3 {
		t.Fatalf("Ones = %d", tag.Ones())
	}
	tag.Clear(64)
	if tag.Get(64) || tag.Ones() != 2 {
		t.Fatal("Clear wrong")
	}
	blocks := tag.Blocks()
	if len(blocks) != 2 || blocks[0] != 0 || blocks[1] != 129 {
		t.Fatalf("Blocks = %v", blocks)
	}
}

func TestTagOutOfRangePanics(t *testing.T) {
	tag := NewTag(8)
	defer func() {
		if recover() == nil {
			t.Fatal("Set(8) on width-8 tag should panic")
		}
	}()
	tag.Set(8)
}

func TestTagWidthMismatchPanics(t *testing.T) {
	a, b := NewTag(8), NewTag(16)
	defer func() {
		if recover() == nil {
			t.Fatal("Dot across widths should panic")
		}
	}()
	a.Dot(b)
}

func TestTagDotPaperSemantics(t *testing.T) {
	// The paper's example: θ1100 and θ1000 share one block.
	a := FromBits("1100")
	b := FromBits("1000")
	if a.Dot(b) != 1 {
		t.Fatalf("Dot(1100,1000) = %d, want 1", a.Dot(b))
	}
	if a.Dot(a) != 2 {
		t.Fatalf("Dot(1100,1100) = %d, want 2", a.Dot(a))
	}
	c := FromBits("0011")
	if a.Dot(c) != 0 {
		t.Fatalf("disjoint tags Dot = %d", a.Dot(c))
	}
}

func TestTagOrHamming(t *testing.T) {
	a := FromBits("1100")
	b := FromBits("0110")
	or := a.Or(b)
	if or.String() != "1110" {
		t.Fatalf("Or = %s", or)
	}
	if a.Hamming(b) != 2 {
		t.Fatalf("Hamming = %d", a.Hamming(b))
	}
	// Or must not mutate operands.
	if a.String() != "1100" || b.String() != "0110" {
		t.Fatal("Or mutated operands")
	}
	a.OrInPlace(b)
	if a.String() != "1110" {
		t.Fatalf("OrInPlace = %s", a)
	}
}

func TestTagKeyEqual(t *testing.T) {
	a, b := FromBits("1010"), FromBits("1010")
	if a.Key() != b.Key() || !a.Equal(b) {
		t.Fatal("equal tags should share keys")
	}
	c := FromBits("1011")
	if a.Key() == c.Key() || a.Equal(c) {
		t.Fatal("different tags should differ")
	}
	if a.Equal(NewTag(5)) {
		t.Fatal("different widths never equal")
	}
}

func TestTagPropertyDotBounded(t *testing.T) {
	f := func(x, y uint64) bool {
		a, b := NewTag(64), NewTag(64)
		for i := 0; i < 64; i++ {
			if x&(1<<i) != 0 {
				a.Set(i)
			}
			if y&(1<<i) != 0 {
				b.Set(i)
			}
		}
		d := a.Dot(b)
		return d <= a.Ones() && d <= b.Ones() && d == b.Dot(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTagPropertyHammingIdentity(t *testing.T) {
	// |a^b| = |a| + |b| - 2*dot(a,b).
	f := func(x, y uint64) bool {
		a, b := NewTag(64), NewTag(64)
		for i := 0; i < 64; i++ {
			if x&(1<<i) != 0 {
				a.Set(i)
			}
			if y&(1<<i) != 0 {
				b.Set(i)
			}
		}
		return a.Hamming(b) == a.Ones()+b.Ones()-2*a.Dot(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// fig5Tagging builds the paper's §3.5.4 example: a 1-D loop over B with
// references B[j], B[j+2k], B[j-2k], twelve k-element blocks.
func fig5Tagging(k int64) *Tagging {
	m := 12 * k
	b := poly.NewArray("B", m)
	nest := poly.NewNest(poly.RectLoop("j", 2*k, m-2*k-1))
	refs := []*poly.Ref{
		poly.NewRef(b, poly.Read, poly.Var(0, 1)),
		poly.NewRef(b, poly.Read, poly.Var(0, 1).AddConst(2*k)),
		poly.NewRef(b, poly.Read, poly.Var(0, 1).AddConst(-2*k)),
	}
	layout := poly.NewLayout(k*8, b) // blocks of k 8-byte elements
	return ComputeNest(nest, refs, layout)
}

// TestFig10GroupsMatchPaper checks the exact iteration groups of the
// paper's Figure 10(a): eight groups of k iterations with the tags
// 101010000000, 010101000000, ..., 000000010101.
func TestFig10GroupsMatchPaper(t *testing.T) {
	const k = 32
	tg := fig5Tagging(k)
	want := []string{
		"101010000000",
		"010101000000",
		"001010100000",
		"000101010000",
		"000010101000",
		"000001010100",
		"000000101010",
		"000000010101",
	}
	if len(tg.Groups) != len(want) {
		t.Fatalf("got %d groups, want 8", len(tg.Groups))
	}
	for i, g := range tg.Groups {
		if g.Tag.String() != want[i] {
			t.Errorf("group %d tag = %s, want %s", i, g.Tag, want[i])
		}
		if g.Size() != k {
			t.Errorf("group %d size = %d, want %d", i, g.Size(), k)
		}
	}
	if tg.NumBlocks != 12 {
		t.Fatalf("NumBlocks = %d, want 12", tg.NumBlocks)
	}
}

func TestTaggingInvariants(t *testing.T) {
	tg := fig5Tagging(16)
	all := make([]poly.Point, 0)
	for _, g := range tg.Groups {
		all = append(all, g.Iters...)
	}
	// Reconstruct the nest to validate coverage.
	nest := poly.NewNest(poly.RectLoop("j", 32, 12*16-32-1))
	if err := tg.Validate(nest.Points()); err != nil {
		t.Fatal(err)
	}
	if tg.TotalIters != len(all) {
		t.Fatalf("TotalIters = %d, members = %d", tg.TotalIters, len(all))
	}
}

func TestGroupOf(t *testing.T) {
	tg := fig5Tagging(16)
	p := poly.Pt(40) // j=40: second j-block region
	g := tg.GroupOf(p)
	if g == nil {
		t.Fatal("GroupOf returned nil for covered iteration")
	}
	found := false
	for _, q := range g.Iters {
		if q.Equal(p) {
			found = true
		}
	}
	if !found {
		t.Fatal("GroupOf returned a group not containing the point")
	}
}

func TestSplitGroup(t *testing.T) {
	tg := fig5Tagging(16)
	g := tg.Groups[0]
	a, b := SplitGroup(g, 5, 100, 101)
	if a.Size() != 5 || b.Size() != g.Size()-5 {
		t.Fatalf("split sizes %d/%d", a.Size(), b.Size())
	}
	if a.ID != 100 || b.ID != 101 {
		t.Fatal("split ids wrong")
	}
	if !a.Tag.Equal(g.Tag) || !b.Tag.Equal(g.Tag) {
		t.Fatal("split pieces must inherit the tag")
	}
	// Pieces preserve program order.
	if !a.Iters[len(a.Iters)-1].Less(b.Iters[0]) {
		t.Fatal("split pieces out of order")
	}
}

func TestSplitGroupPanics(t *testing.T) {
	tg := fig5Tagging(16)
	defer func() {
		if recover() == nil {
			t.Fatal("SplitGroup(0) should panic")
		}
	}()
	SplitGroup(tg.Groups[0], 0, 1, 2)
}

func TestCoarsen(t *testing.T) {
	tg := fig5Tagging(32)
	limit := 3
	c := Coarsen(tg, limit)
	if len(c.Groups) > limit {
		t.Fatalf("Coarsen left %d groups, limit %d", len(c.Groups), limit)
	}
	// Iterations preserved.
	total := 0
	for _, g := range c.Groups {
		total += g.Size()
	}
	if total != tg.TotalIters {
		t.Fatalf("Coarsen lost iterations: %d of %d", total, tg.TotalIters)
	}
	// IDs dense.
	for i, g := range c.Groups {
		if g.ID != i {
			t.Fatalf("group %d has ID %d", i, g.ID)
		}
	}
	// No-op cases.
	if got := Coarsen(tg, 0); got != tg {
		t.Fatal("limit 0 should be a no-op")
	}
	if got := Coarsen(tg, 100); got != tg {
		t.Fatal("limit above count should be a no-op")
	}
}

func TestCoarsenMergesNeighborsBySharing(t *testing.T) {
	tg := fig5Tagging(32)
	c := Coarsen(tg, 4)
	// Merged tags must be supersets (ORs) of member activity: every
	// iteration's own tag is a subset of its coarse group's tag.
	for _, g := range c.Groups {
		for _, p := range g.Iters {
			fine := TagOf(p, tg.Refs, tg.Layout, tg.NumBlocks)
			if fine.Dot(g.Tag) != fine.Ones() {
				t.Fatalf("iteration %v tag %s not covered by coarse tag %s", p, fine, g.Tag)
			}
		}
	}
}

func TestSortGroupsBySize(t *testing.T) {
	tg := fig5Tagging(16)
	a, _ := SplitGroup(tg.Groups[0], 3, 50, 51)
	groups := append([]*Group{a}, tg.Groups...)
	sorted := SortGroupsBySize(groups)
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Size() > sorted[i-1].Size() {
			t.Fatal("not sorted by size desc")
		}
	}
}

func TestSelectBlockSize(t *testing.T) {
	// 32KB L1, 4 blocks per iteration -> at most 8KB blocks.
	got := SelectBlockSize(32<<10, 4, 256, 8192)
	if got != 8192 {
		t.Fatalf("SelectBlockSize = %d, want 8192", got)
	}
	// 16 blocks per iteration -> 2KB, the paper's default outcome.
	got = SelectBlockSize(32<<10, 16, 256, 8192)
	if got != 2048 {
		t.Fatalf("SelectBlockSize = %d, want 2048", got)
	}
	// Degenerate inputs clamp to the floor.
	got = SelectBlockSize(1024, 64, 256, 8192)
	if got != 256 {
		t.Fatalf("SelectBlockSize floor = %d", got)
	}
}
