package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckpointConcurrentOpenRejected: a second open of a live checkpoint
// is a hard error naming the holder — two writers would interleave
// appends — and the original holder keeps working.
func TestCheckpointConcurrentOpenRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	grid := GridSignature("lock-test")
	cf, err := OpenCheckpoint(path, grid)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()

	if _, err := OpenCheckpoint(path, grid); err == nil {
		t.Fatal("second concurrent open was accepted")
	} else if !strings.Contains(err.Error(), "locked by running process") {
		t.Errorf("concurrent-open error does not name the holder: %v", err)
	}

	// The refused open must not have broken the holder's lock.
	if _, err := os.Stat(path + ".lock"); err != nil {
		t.Fatalf("holder's lockfile disturbed by the refused open: %v", err)
	}
}

// TestCheckpointLockReleasedOnClose: Close releases the lockfile so the
// next open (a resume) succeeds.
func TestCheckpointLockReleasedOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	grid := GridSignature("lock-test")
	cf, err := OpenCheckpoint(path, grid)
	if err != nil {
		t.Fatal(err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".lock"); !os.IsNotExist(err) {
		t.Fatalf("lockfile survived Close: %v", err)
	}
	cf2, err := OpenCheckpoint(path, grid)
	if err != nil {
		t.Fatalf("reopen after Close failed: %v", err)
	}
	if err := cf2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointStaleLockStolen: a lockfile whose owner pid no longer runs
// is crash residue, not a writer — the open steals it and proceeds.
func TestCheckpointStaleLockStolen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	// A pid that cannot be a live process: beyond any kernel's pid_max.
	if err := os.WriteFile(path+".lock", []byte("999999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenCheckpoint(path, GridSignature("lock-test"))
	if err != nil {
		t.Fatalf("stale lock was not stolen: %v", err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointGarbageLockStolen: an unreadable lockfile (no pid) is
// treated as stale rather than wedging every future open.
func TestCheckpointGarbageLockStolen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	if err := os.WriteFile(path+".lock", []byte("not-a-pid\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cf, err := OpenCheckpoint(path, GridSignature("lock-test"))
	if err != nil {
		t.Fatalf("garbage lock was not stolen: %v", err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRunnerDoubleConfigure: configuring a checkpoint twice on
// one Runner is refused before any lockfile work happens.
func TestCheckpointRunnerDoubleConfigure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	grid := GridSignature("lock-test")
	r := NewRunner()
	if _, err := r.SetCheckpoint(path, grid); err != nil {
		t.Fatal(err)
	}
	defer r.CloseCheckpoint()
	if _, err := r.SetCheckpoint(path, grid); err == nil {
		t.Fatal("second SetCheckpoint on one Runner was accepted")
	}
}
