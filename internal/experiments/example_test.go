package experiments_test

import (
	"fmt"

	"repro"
	"repro/internal/experiments"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// ExampleRunner shows the parallel experiment runner: enumerate grid
// cells, execute them on a worker pool, and read results back in cell
// order. The simulation is fully deterministic, so the parallel results
// are identical to a serial run — only wall-clock time changes.
func ExampleRunner() {
	fig5, _ := workloads.ByName("fig5")
	m := topology.Dunnington()
	cfg := repro.DefaultConfig()

	parallel := experiments.NewRunner()
	parallel.SetWorkers(4)
	cells := experiments.Grid(
		[]*topology.Machine{m},
		[]*workloads.Kernel{fig5},
		[]repro.Scheme{repro.SchemeBase, repro.SchemeCombined},
		cfg)
	runs, err := parallel.RunCells(cells)
	if err != nil {
		fmt.Println(err)
		return
	}

	serial := experiments.NewRunner() // one worker: the serial harness
	for i, c := range cells {
		want, err := serial.Evaluate(c.Kernel, c.Machine, c.Scheme, c.Config)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%s: parallel == serial: %v\n",
			runs[i].Scheme, runs[i].Sim.TotalCycles == want.Sim.TotalCycles)
	}
	// Output:
	// Base: parallel == serial: true
	// Combined: parallel == serial: true
}
