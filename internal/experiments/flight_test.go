package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cachesim"
)

// TestFlightCoalesces: N concurrent joiners of one key produce exactly one
// leader; every follower receives the leader's record.
func TestFlightCoalesces(t *testing.T) {
	g := NewFlightGroup()
	const n = 16
	var leaders int32
	var mu sync.Mutex
	var wg, joined sync.WaitGroup
	joined.Add(n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, leader := g.Join("cell")
			joined.Done()
			defer f.Leave()
			if leader {
				mu.Lock()
				leaders++
				mu.Unlock()
				// Resolve only once everyone has joined, so the flight cannot
				// resolve-and-forget before a late joiner arrives (a fresh
				// flight after resolve is correct behavior, but it is not what
				// this test measures).
				joined.Wait()
				f.Resolve(&CheckpointRecord{Key: "cell", Sim: &cachesim.Result{TotalCycles: 42}}, nil)
			}
			rec, ce, err := f.Wait(context.Background())
			if err != nil || ce != nil || rec == nil || rec.Sim.TotalCycles != 42 {
				t.Errorf("Wait = (%v, %v, %v), want the leader's record", rec, ce, err)
			}
		}()
	}
	wg.Wait()
	if leaders != 1 {
		t.Fatalf("leaders = %d, want exactly 1", leaders)
	}
	if g.Inflight() != 0 {
		t.Fatalf("Inflight = %d after resolve, want 0", g.Inflight())
	}
}

// TestFlightResolveIdempotent: the first Resolve wins; a later Resolve (the
// leader's deferred panic guard firing after a normal resolve) is a no-op.
func TestFlightResolveIdempotent(t *testing.T) {
	g := NewFlightGroup()
	f, leader := g.Join("k")
	if !leader {
		t.Fatal("first Join was not leader")
	}
	f.Resolve(&CheckpointRecord{Key: "k", Sim: &cachesim.Result{TotalCycles: 1}}, nil)
	f.Resolve(nil, &CellError{Key: "k", Stage: "panic", Err: errors.New("late"), Attempts: 1})
	rec, ce, err := f.Wait(context.Background())
	if err != nil || ce != nil || rec == nil || rec.Sim.TotalCycles != 1 {
		t.Fatalf("Wait = (%v, %v, %v), want the first Resolve's record", rec, ce, err)
	}
	f.Leave()
}

// TestFlightLastWaiterCancels: when every requester has left an unresolved
// flight, the installed evaluation cancel fires — nobody is left to read
// the answer, so the worker slot must be reclaimed.
func TestFlightLastWaiterCancels(t *testing.T) {
	g := NewFlightGroup()
	f, leader := g.Join("k")
	if !leader {
		t.Fatal("first Join was not leader")
	}
	ctx, cancel := context.WithCancel(context.Background())
	f.SetCancel(cancel)
	follower, fl := g.Join("k")
	if fl {
		t.Fatal("second Join stole leadership")
	}
	follower.Leave()
	select {
	case <-ctx.Done():
		t.Fatal("cancel fired while a waiter remained")
	default:
	}
	f.Leave()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("cancel did not fire after the last waiter left")
	}
}

// TestFlightSetCancelAfterAbandonment: installing the cancel after every
// waiter already left fires it immediately — the ordering race between the
// leader's slow admission and the clients' fast disconnects must not leak
// an orphan evaluation.
func TestFlightSetCancelAfterAbandonment(t *testing.T) {
	g := NewFlightGroup()
	f, _ := g.Join("k")
	f.Leave()
	ctx, cancel := context.WithCancel(context.Background())
	f.SetCancel(cancel)
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("SetCancel on an abandoned flight did not fire immediately")
	}
}

// TestFlightWaitHonorsContext: a follower whose own deadline expires stops
// waiting with the context's error while the flight itself stays pending.
func TestFlightWaitHonorsContext(t *testing.T) {
	g := NewFlightGroup()
	f, _ := g.Join("k")
	defer f.Leave()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err := f.Wait(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait = %v, want context.DeadlineExceeded", err)
	}
	if g.Inflight() != 1 {
		t.Fatalf("Inflight = %d, want the unresolved flight still pending", g.Inflight())
	}
	f.Resolve(nil, &CellError{Key: "k", Stage: "timeout", Err: errors.New("gone"), Attempts: 1})
}

// TestFlightFreshAfterResolve: a Join after Resolve starts a new flight —
// retention is the LRU's job, not the flight group's.
func TestFlightFreshAfterResolve(t *testing.T) {
	g := NewFlightGroup()
	f, _ := g.Join("k")
	f.Resolve(&CheckpointRecord{Key: "k", Sim: &cachesim.Result{TotalCycles: 7}}, nil)
	f.Leave()
	f2, leader := g.Join("k")
	if !leader {
		t.Fatal("Join after Resolve did not start a fresh flight")
	}
	if f2 == f {
		t.Fatal("Join returned the resolved flight")
	}
	f2.Resolve(nil, nil)
	f2.Leave()
}
