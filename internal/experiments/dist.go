package experiments

import (
	"context"
	"fmt"
	"os"

	"repro/internal/metrics"
)

// DistOutcome is what a Distributor hands back for one batch of cells:
// completed cells as checkpoint records, failed cells as structured
// CellErrors, and optional per-cell execution stats for worker
// attribution. Cells present in neither map — the distributor declined
// them (an unshippable scaled machine, a drained worker pool) — are
// computed in-process by the runner, so distribution can only ever change
// where a cell runs, never whether it runs.
type DistOutcome struct {
	// Records maps cell keys to their completed results, in the PR 5
	// checkpoint record format the fabric streams over the wire.
	Records map[string]*CheckpointRecord
	// Failures maps cell keys to structured failures: cells a worker
	// reported as failed (any CellError stage) or cells whose lease
	// reassignment budget ran out (stage "fabric"). These become standing
	// fail rows exactly like in-process failures.
	Failures map[string]*CellError
	// Stats carries per-cell execution metrics with worker attribution,
	// merged into the runner's CellLog.
	Stats []metrics.CellStat
}

// Distributor executes experiment-grid cells somewhere other than the
// runner's in-process pool — the fabric coordinator (internal/fabric)
// sharding them across worker processes is the production implementation.
// DistributeContext must be safe for sequential reuse: the runner calls it
// once per RunCells batch.
type Distributor interface {
	DistributeContext(ctx context.Context, cells []Cell) (*DistOutcome, error)
}

// SetDistributor routes RunCells batches through d — cells are shipped out
// of process and their results installed into the memo — instead of the
// in-process worker pool. Cells the distributor declines or that fail to
// distribute (a dead coordinator, a verification failure on the merged
// grid) silently fall back to in-process execution: distribution changes
// where cells run, never what they compute or whether they complete. nil
// restores pure in-process execution.
func (r *Runner) SetDistributor(d Distributor) {
	r.mu.Lock()
	r.distributor = d
	r.mu.Unlock()
}

// getDistributor returns the installed distributor, if any.
func (r *Runner) getDistributor() Distributor {
	r.mu.Lock()
	d := r.distributor
	r.mu.Unlock()
	return d
}

// DistributedCells reports how many cells were completed by a distributor
// instead of the in-process pool.
func (r *Runner) DistributedCells() uint64 { return r.distHits.Load() }

// distribute ships the not-yet-memoized cells of a batch through the
// distributor and installs the outcome into the memo, returning the cells
// that still need in-process execution (declined, failed-to-install, or
// never sent because they were already memoized — the caller's pool loop
// turns those into memo hits). On distributor error the full pending set
// falls back in-process.
func (r *Runner) distribute(ctx context.Context, d Distributor, cells []Cell) (remaining []Cell) {
	var pending []Cell
	for _, c := range cells {
		key := c.Key()
		r.mu.Lock()
		_, cached := r.cache[key]
		r.mu.Unlock()
		if cached {
			remaining = append(remaining, c)
			continue
		}
		if _, ok := r.restoredRecord(key); ok {
			remaining = append(remaining, c)
			continue
		}
		pending = append(pending, c)
	}
	if len(pending) == 0 {
		return remaining
	}
	out, err := d.DistributeContext(ctx, pending)
	if err != nil || out == nil {
		if ctx.Err() == nil && err != nil {
			// Degrade loudly: the sweep still completes in-process.
			//lint:ignore cellboundary best-effort stderr diagnostic; a broken fabric degrades to in-process execution, never to a lost sweep
			fmt.Fprintf(os.Stderr, "experiments: fabric distribution failed (%v); computing %d cells in-process\n", err, len(pending))
		}
		return append(remaining, pending...)
	}
	for _, s := range out.Stats {
		r.log.Record(s)
	}
	for _, c := range pending {
		key := c.Key()
		if rec, ok := out.Records[key]; ok && rec != nil && rec.Sim != nil {
			r.installRun(key, c, rec)
			continue
		}
		if ce, ok := out.Failures[key]; ok && ce != nil {
			r.installFailure(key, ce)
			continue
		}
		remaining = append(remaining, c)
	}
	return remaining
}

// installRun memoizes one distributed result, exactly as if the cell had
// been computed in-process, and appends it to the local checkpoint so
// -checkpoint and -fabric compose.
func (r *Runner) installRun(key string, c Cell, rec *CheckpointRecord) {
	e := r.entryFor(key)
	e.once.Do(func() {
		e.run = rec.ToRun(c)
		r.distHits.Add(1)
		r.recordFailure(key, nil)
		if !r.chaosArmed(c) {
			r.appendRecord(rec)
		}
	})
}

// installFailure memoizes one distributed failure as a standing fail row.
func (r *Runner) installFailure(key string, ce *CellError) {
	e := r.entryFor(key)
	e.once.Do(func() {
		e.err = ce
		r.recordFailure(key, ce)
	})
}

// entryFor returns the cell's cache entry, creating it when absent.
func (r *Runner) entryFor(key string) *cacheEntry {
	r.mu.Lock()
	e, ok := r.cache[key]
	if !ok {
		e = &cacheEntry{}
		r.cache[key] = e
	}
	r.mu.Unlock()
	return e
}
