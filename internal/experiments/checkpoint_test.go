package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// writeCkpt runs one cheap cell into a fresh checkpoint stamped with grid
// and returns the path.
func writeCkpt(t *testing.T, grid string) string {
	t.Helper()
	fig5, err := workloads.ByName("fig5")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "h.ckpt")
	r := NewRunner()
	if _, err := r.SetCheckpoint(path, grid); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Evaluate(fig5, topology.Dunnington(), repro.SchemeBase, repro.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if err := r.CloseCheckpoint(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCheckpointGridMismatchRejected: resuming a checkpoint under a
// different sweep identity is refused — foreign cells must never be mixed
// into a grid's tables.
func TestCheckpointGridMismatchRejected(t *testing.T) {
	path := writeCkpt(t, GridSignature("sweep-a"))
	r := NewRunner()
	_, err := r.SetCheckpoint(path, GridSignature("sweep-b"))
	if err == nil {
		t.Fatal("checkpoint from a different sweep was accepted")
	}
	if !strings.Contains(err.Error(), "different sweep") {
		t.Errorf("mismatch error does not say why: %v", err)
	}
}

// TestCheckpointHeaderlessRejected: a file that is not a stamped checkpoint
// (a pre-header file, or simply the wrong file) is rejected instead of
// being scavenged for records.
func TestCheckpointHeaderlessRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.ckpt")
	rec := `{"key":"fig5|Dunnington|Base","sim":{"total_cycles":1}}` + "\n"
	if err := os.WriteFile(path, []byte(rec), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRunner()
	_, err := r.SetCheckpoint(path, GridSignature("any"))
	if err == nil {
		t.Fatal("headerless checkpoint was accepted")
	}
	if !strings.Contains(err.Error(), "no header record") {
		t.Errorf("headerless error does not say why: %v", err)
	}
}

// TestCheckpointVersionMismatchRejected: the header also pins the module
// build, so results computed by one version of the simulator are not
// restored into another.
func TestCheckpointVersionMismatchRejected(t *testing.T) {
	grid := GridSignature("sweep-v")
	path := writeCkpt(t, grid)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(string(data), "\n", 2)
	hdr := &CheckpointHeader{}
	if err := json.Unmarshal([]byte(lines[0]), hdr); err != nil {
		t.Fatalf("first line is not a header: %v", err)
	}
	hdr.Version = "v0.0.0-somewhere-else"
	stamped, err := json.Marshal(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(append(stamped, '\n'), lines[1]...), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRunner()
	if _, err := r.SetCheckpoint(path, grid); err == nil {
		t.Fatal("checkpoint from a different module version was accepted")
	} else if !strings.Contains(err.Error(), "version") {
		t.Errorf("version-mismatch error does not say why: %v", err)
	}
}

// TestCheckpointBlankFileStamped: pointing -checkpoint at an existing empty
// file behaves like a fresh one — it gains a header and later resumes.
func TestCheckpointBlankFileStamped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blank.ckpt")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	grid := GridSignature("sweep-blank")
	r := NewRunner()
	if _, err := r.SetCheckpoint(path, grid); err != nil {
		t.Fatalf("blank checkpoint file rejected: %v", err)
	}
	if err := r.CloseCheckpoint(); err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner()
	if _, err := r2.SetCheckpoint(path, grid); err != nil {
		t.Fatalf("stamped blank file does not resume: %v", err)
	}
	if err := r2.CloseCheckpoint(); err != nil {
		t.Fatal(err)
	}
}
