package experiments

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/poly"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// panicKernel builds a kernel that passes upfront validation (declared
// array, matching subscript count) but whose subscript expression spans
// more variables than the nest has loops, so evaluating it at an iteration
// point panics deep inside the address computation at simulate time.
func panicKernel() *workloads.Kernel {
	a := poly.NewArray("boom", 64)
	nest := poly.NewNest(poly.RectLoop("i", 0, 7), poly.RectLoop("j", 0, 7))
	return &workloads.Kernel{
		Name:   "panic-inject",
		Arrays: []*poly.Array{a},
		Nest:   nest,
		Refs:   []*poly.Ref{poly.NewRef(a, poly.Read, poly.Var(4, 5))},
	}
}

// TestPanicContainment is the tentpole acceptance test: a cell whose kernel
// panics mid-simulation becomes a structured *CellError carrying the cell
// key and a stack trace, the process does not crash, and every other cell
// of the grid completes with results byte-identical to a run that never saw
// the poisoned cell.
func TestPanicContainment(t *testing.T) {
	good := smallGrid(t)
	bad := Cell{Kernel: panicKernel(), Machine: topology.Dunnington(),
		Scheme: repro.SchemeBase, Config: repro.DefaultConfig()}

	want := make(map[string]uint64)
	clean := NewRunner()
	clean.SetWorkers(4)
	cleanRuns, err := clean.RunCells(good)
	if err != nil {
		t.Fatal(err)
	}
	for i, run := range cleanRuns {
		want[good[i].Key()] = run.Sim.TotalCycles
	}

	mixed := append([]Cell{}, good[:3]...)
	mixed = append(mixed, bad)
	mixed = append(mixed, good[3:]...)
	r := NewRunner()
	r.SetWorkers(4)
	runs, err := r.RunCells(mixed)
	if err == nil {
		t.Fatal("expected the poisoned cell to fail")
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *CellError: %v", err, err)
	}
	if ce.Key != bad.Key() {
		t.Errorf("CellError.Key = %q, want %q", ce.Key, bad.Key())
	}
	if len(ce.Stack) == 0 {
		t.Error("CellError.Stack is empty for a contained panic")
	}
	var pe *repro.PanicError
	if !errors.As(err, &pe) {
		t.Errorf("CellError does not unwrap to *repro.PanicError: %v", err)
	} else if ce.Stage != pe.Stage {
		t.Errorf("CellError.Stage = %q, PanicError stage = %q", ce.Stage, pe.Stage)
	}

	for i, c := range mixed {
		if c.Key() == bad.Key() {
			if runs[i] != nil {
				t.Error("poisoned cell returned a non-nil run")
			}
			continue
		}
		if runs[i] == nil {
			t.Fatalf("healthy cell %s returned nil alongside the poisoned cell", c.Key())
		}
		if got := runs[i].Sim.TotalCycles; got != want[c.Key()] {
			t.Errorf("cell %s = %d cycles with poisoned neighbor, %d without", c.Key(), got, want[c.Key()])
		}
	}

	fails := r.Failures()
	if len(fails) != 1 || fails[0].Key != bad.Key() {
		t.Errorf("Failures() = %v, want exactly the poisoned cell", fails)
	}
}

// TestGridCancellation: cancelling the sweep context stops the grid
// promptly, cells skipped by the cancellation are not falsely memoized, and
// a re-run on a live context completes every cell.
func TestGridCancellation(t *testing.T) {
	cells := smallGrid(t)
	r := NewRunner()
	r.SetWorkers(2)
	ctx, cancel := context.WithCancel(context.Background())
	r.SetProgress(func(done, total int, elapsed, eta time.Duration) {
		if done == 1 {
			cancel()
		}
	})
	runs, err := r.RunCellsContext(ctx, cells)
	cancel()
	if err == nil {
		t.Fatal("expected an error from the cancelled sweep")
	}
	var ce *CellError
	if errors.As(err, &ce) && ce.Stage != "canceled" && ce.Stage != "timeout" {
		// The first error in cell order may also be a completed cell's; only
		// check classification when the cancellation itself surfaced.
		for _, f := range r.Failures() {
			if f.Stage != "canceled" {
				t.Errorf("failure %s classified %q, want canceled", f.Key, f.Stage)
			}
		}
	}
	nils := 0
	for _, run := range runs {
		if run == nil {
			nils++
		}
	}
	if nils == 0 {
		t.Error("cancellation after one cell left no cell unfinished")
	}

	r.SetProgress(nil)
	runs, err = r.RunCells(cells)
	if err != nil {
		t.Fatalf("re-run on live context failed: %v", err)
	}
	for i, run := range runs {
		if run == nil {
			t.Fatalf("cell %s still nil after re-run", cells[i].Key())
		}
	}
	if len(r.Failures()) != 0 {
		t.Errorf("failures remain after successful re-run: %v", r.Failures())
	}
}

// TestCheckpointResume: a second runner pointed at the first runner's
// checkpoint file serves every cell from disk — zero pipeline evaluations,
// verified by the cell-evaluation counter — and reproduces identical
// simulation results.
func TestCheckpointResume(t *testing.T) {
	cells := smallGrid(t)
	path := filepath.Join(t.TempDir(), "grid.ckpt")

	first := NewRunner()
	first.SetWorkers(4)
	grid := GridSignature("faults-test")
	if n, err := first.SetCheckpoint(path, grid); err != nil || n != 0 {
		t.Fatalf("SetCheckpoint = %d, %v on a fresh file", n, err)
	}
	firstRuns, err := first.RunCells(cells)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.CloseCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if first.Evaluations() == 0 {
		t.Fatal("first run recorded zero evaluations")
	}

	second := NewRunner()
	second.SetWorkers(4)
	n, err := second.SetCheckpoint(path, grid)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no cells restored from checkpoint")
	}
	secondRuns, err := second.RunCells(cells)
	if err != nil {
		t.Fatal(err)
	}
	if got := second.Evaluations(); got != 0 {
		t.Errorf("checkpointed re-run executed %d evaluations, want 0", got)
	}
	if got := second.RestoredCells(); got == 0 {
		t.Error("checkpointed re-run restored zero cells")
	}
	for i := range cells {
		if secondRuns[i].Sim.TotalCycles != firstRuns[i].Sim.TotalCycles {
			t.Errorf("cell %s: restored %d cycles, computed %d",
				cells[i].Key(), secondRuns[i].Sim.TotalCycles, firstRuns[i].Sim.TotalCycles)
		}
		if secondRuns[i].Groups != firstRuns[i].Groups || secondRuns[i].HasDeps != firstRuns[i].HasDeps {
			t.Errorf("cell %s: restored Groups/HasDeps differ", cells[i].Key())
		}
	}
	if err := second.CloseCheckpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointSkipsTornLine: a truncated final record (a crash mid-
// append) costs one cell, not the checkpoint.
func TestCheckpointSkipsTornLine(t *testing.T) {
	fig5, _ := workloads.ByName("fig5")
	c := Cell{Kernel: fig5, Machine: topology.Dunnington(), Scheme: repro.SchemeBase, Config: repro.DefaultConfig()}
	path := filepath.Join(t.TempDir(), "torn.ckpt")

	grid := GridSignature("torn-test")
	first := NewRunner()
	if _, err := first.SetCheckpoint(path, grid); err != nil {
		t.Fatal(err)
	}
	if _, err := first.RunCells([]Cell{c}); err != nil {
		t.Fatal(err)
	}
	if err := first.CloseCheckpoint(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(data, []byte(`{"key":"half-written`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	second := NewRunner()
	n, err := second.SetCheckpoint(path, grid)
	if err != nil {
		t.Fatalf("torn checkpoint rejected: %v", err)
	}
	if n != 1 {
		t.Errorf("restored %d cells from torn checkpoint, want 1", n)
	}
	if err := second.CloseCheckpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestCellTimeout: a per-cell wall-time budget classifies the overrun as
// stage "timeout" and leaves other cells untouched.
func TestCellTimeout(t *testing.T) {
	fig5, _ := workloads.ByName("fig5")
	c := Cell{Kernel: fig5, Machine: topology.Dunnington(), Scheme: repro.SchemeBase, Config: repro.DefaultConfig()}
	r := NewRunner()
	r.SetTimeout(time.Nanosecond)
	_, err := r.Evaluate(c.Kernel, c.Machine, c.Scheme, c.Config)
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *CellError: %v", err, err)
	}
	if ce.Stage != "timeout" {
		t.Errorf("stage = %q, want timeout", ce.Stage)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timeout error does not unwrap to DeadlineExceeded: %v", err)
	}
	if !strings.Contains(err.Error(), "wall-time budget") {
		t.Errorf("timeout error does not name the exhausted budget: %v", err)
	}

	// Timeout errors are memoized like any other cell error (so rendering
	// replays the prefetch's failure), but never checkpointed: a fresh
	// runner — a re-run of the sweep — recomputes the cell cleanly.
	r2 := NewRunner()
	if _, err := r2.Evaluate(c.Kernel, c.Machine, c.Scheme, c.Config); err != nil {
		t.Fatalf("fresh runner without timeout failed: %v", err)
	}
}

// TestCycleBudget: a simulated-cycle budget aborts the cell with stage
// "cycle-budget", and a cell whose own config sets a budget keeps it.
func TestCycleBudget(t *testing.T) {
	fig5, _ := workloads.ByName("fig5")
	c := Cell{Kernel: fig5, Machine: topology.Dunnington(), Scheme: repro.SchemeBase, Config: repro.DefaultConfig()}
	r := NewRunner()
	r.SetMaxCycles(1)
	_, err := r.Evaluate(c.Kernel, c.Machine, c.Scheme, c.Config)
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *CellError: %v", err, err)
	}
	if ce.Stage != "cycle-budget" {
		t.Errorf("stage = %q, want cycle-budget", ce.Stage)
	}

	// The budget is an execution guard, not experiment identity: the cell
	// key is unchanged, yet a runner without the guard computes it fine.
	r2 := NewRunner()
	if _, err := r2.Evaluate(c.Kernel, c.Machine, c.Scheme, c.Config); err != nil {
		t.Fatalf("cell without budget failed: %v", err)
	}
}

// TestRetries: a deterministic failure consumes every allowed attempt and
// reports the count; the evaluation counter sees each attempt.
func TestRetries(t *testing.T) {
	fig5, _ := workloads.ByName("fig5")
	bad := Cell{Kernel: fig5, Machine: topology.Dunnington(), Scheme: repro.Scheme(99), Config: repro.DefaultConfig()}
	r := NewRunner()
	r.SetRetries(2)
	_, err := r.Evaluate(bad.Kernel, bad.Machine, bad.Scheme, bad.Config)
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *CellError: %v", err, err)
	}
	if ce.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3 (1 + 2 retries)", ce.Attempts)
	}
	if got := r.Evaluations(); got != 3 {
		t.Errorf("Evaluations() = %d, want 3", got)
	}
}

// TestValidationErrors: malformed inputs are rejected up front with stage
// "validate" instead of panicking deep in the pipeline.
func TestValidationErrors(t *testing.T) {
	fig5, _ := workloads.ByName("fig5")
	m := topology.Dunnington()
	r := NewRunner()
	cases := []struct {
		name string
		k    *workloads.Kernel
		m    *topology.Machine
	}{
		{"nil kernel", nil, m},
		{"nil machine", fig5, nil},
		{"no refs", &workloads.Kernel{Name: "empty", Nest: fig5.Nest, Arrays: fig5.Arrays}, m},
	}
	for _, tc := range cases {
		_, err := r.Evaluate(tc.k, tc.m, repro.SchemeBase, repro.DefaultConfig())
		if !errors.Is(err, repro.ErrInvalidInput) {
			t.Errorf("%s: error %v does not wrap ErrInvalidInput", tc.name, err)
			continue
		}
		var ce *CellError
		if errors.As(err, &ce) && ce.Stage != "validate" {
			t.Errorf("%s: stage = %q, want validate", tc.name, ce.Stage)
		}
	}
}

// TestFig13DegradesPerKernel: a poisoned kernel in the workload set renders
// as a "fail" row while the healthy kernels' ratios and the miss-reduction
// summary still appear — the driver reports partial results instead of
// aborting the figure.
func TestFig13DegradesPerKernel(t *testing.T) {
	fig5, _ := workloads.ByName("fig5")
	opt := Options{Kernels: []*workloads.Kernel{fig5, panicKernel()}, Quick: true}
	r := NewRunner()
	r.SetWorkers(2)
	res, err := Fig13(r, opt)
	if err != nil {
		t.Fatalf("Fig13 aborted instead of degrading: %v", err)
	}
	if !strings.Contains(res.Rendered, "fail") {
		t.Error("rendering does not mark the poisoned kernel as failed")
	}
	if !strings.Contains(res.Rendered, "fig5") {
		t.Error("rendering lost the healthy kernel")
	}
	if !strings.Contains(res.Rendered, "miss reduction by TopologyAware") {
		t.Error("miss-reduction summary missing despite a healthy kernel")
	}
	if _, ok := res.PerMachine["Dunnington"]["fig5"]; !ok {
		t.Error("healthy kernel missing from PerMachine results")
	}
	if _, ok := res.PerMachine["Dunnington"]["panic-inject"]; ok {
		t.Error("poisoned kernel leaked into PerMachine results")
	}
	if len(r.Failures()) == 0 {
		t.Error("no failures recorded for the poisoned kernel")
	}
}

// TestFig15DegradesPerKernel: same contract for the scheduling study.
func TestFig15DegradesPerKernel(t *testing.T) {
	fig5, _ := workloads.ByName("fig5")
	opt := Options{Kernels: []*workloads.Kernel{fig5, panicKernel()}, Quick: true}
	r := NewRunner()
	r.SetWorkers(2)
	out, err := Fig15(r, opt)
	if err != nil {
		t.Fatalf("Fig15 aborted instead of degrading: %v", err)
	}
	if !strings.Contains(out, "fail") || !strings.Contains(out, "fig5") {
		t.Errorf("Fig15 degradation rendering wrong:\n%s", out)
	}
}
