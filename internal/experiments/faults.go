package experiments

import (
	"context"
	"errors"
	"fmt"

	"repro"
	"repro/internal/cachesim"
)

// CellError is the structured failure of one experiment-grid cell. The
// runner converts every cell-level failure — pipeline errors, captured
// panics, per-cell timeouts, cycle-budget exhaustion — into a CellError so
// a sweep can report exactly which grid points failed, at which pipeline
// stage, and why, while every other cell completes normally.
type CellError struct {
	// Key is the failed cell's canonical identity (Cell.Key()).
	Key string
	// Stage locates the failure: "validate", "map", "trace", "simulate",
	// "oracle", "invariant", "diverged", "cycle-budget", "timeout",
	// "canceled", "panic" or "evaluate".
	Stage string
	// Err is the underlying error (a *repro.PanicError for contained
	// panics, a *repro.InvariantError for violated runtime invariants, a
	// *repro.DivergenceError for oracle disagreements). Unwrap exposes it
	// to errors.Is/As.
	Err error
	// Stack is the panicking goroutine's stack when the failure was a
	// contained panic, nil otherwise.
	Stack []byte
	// Attempts is the number of evaluation attempts made (1 + retries
	// consumed).
	Attempts int
	// Bundle is the path of the replay bundle written for this failure
	// (benchtool -replay re-executes it), empty when none was written.
	Bundle string
}

// Error renders the cell key, stage and cause.
func (e *CellError) Error() string {
	s := fmt.Sprintf("cell %s [%s]: %v", e.Key, e.Stage, e.Err)
	if e.Attempts > 1 {
		s += fmt.Sprintf(" (after %d attempts)", e.Attempts)
	}
	return s
}

// Unwrap exposes the underlying error to errors.Is and errors.As.
func (e *CellError) Unwrap() error { return e.Err }

// KnownStages enumerates every stage a *CellError can carry: the stages
// classifyStage produces, the explicit "panic" stage the runner assigns to
// panics that escape the repro boundary, and the "fabric" stage the
// distributed sweep fabric assigns to transport/exhaustion failures. Layers
// that map stages onto another vocabulary (e.g. the serve front-end's
// HTTP statuses) test against this list so a new stage cannot be added
// without deciding its mapping.
func KnownStages() []string {
	return []string{
		"validate", "map", "trace", "simulate", "oracle",
		"invariant", "diverged", "cycle-budget", "timeout",
		"canceled", "panic", "evaluate", "fabric",
	}
}

// NewCellError wraps a cell failure with its key, a stage classification and
// the panic stack when one was captured, exactly as the runner does
// internally. An error that already is a *CellError passes through
// unchanged. Exported for front-ends (the topomapd server) that call
// repro.EvaluateContext directly but want the same structured failures.
func NewCellError(key string, attempts int, err error) *CellError {
	return newCellError(key, attempts, err)
}

// classifyStage maps a cell failure to its stage name, with the panic stack
// when one was captured.
func classifyStage(err error) (stage string, stack []byte) {
	stage = "evaluate"
	var pe *repro.PanicError
	var ie *repro.InvariantError
	var de *repro.DivergenceError
	switch {
	case errors.As(err, &pe):
		stage, stack = pe.Stage, pe.Stack
	case errors.As(err, &ie):
		stage = "invariant"
	case errors.As(err, &de):
		stage = "diverged"
	case errors.Is(err, repro.ErrInvalidInput):
		stage = "validate"
	case errors.Is(err, cachesim.ErrCycleBudget):
		stage = "cycle-budget"
	case errors.Is(err, context.DeadlineExceeded):
		stage = "timeout"
	case errors.Is(err, context.Canceled):
		stage = "canceled"
	}
	return stage, stack
}

// newCellError wraps a cell failure with its key, a stage classification
// and the panic stack when one was captured. An error that already is a
// *CellError passes through unchanged.
func newCellError(key string, attempts int, err error) *CellError {
	var ce *CellError
	if errors.As(err, &ce) {
		return ce
	}
	stage, stack := classifyStage(err)
	return &CellError{Key: key, Stage: stage, Err: err, Stack: stack, Attempts: attempts}
}
