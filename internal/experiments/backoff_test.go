package experiments

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TestBackoffDoublingAndCap: the raw delay doubles per attempt from Base to
// Max, and the jitter stays within [50%, 150%) of it.
func TestBackoffDoublingAndCap(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 800 * time.Millisecond}
	for attempt := 1; attempt <= 8; attempt++ {
		raw := b.Base << (attempt - 1)
		if raw > b.Max {
			raw = b.Max
		}
		d := b.Delay("cell", attempt)
		lo, hi := raw/2, raw+raw/2
		if d < lo || d >= hi {
			t.Errorf("Delay(cell, %d) = %v, want in [%v, %v)", attempt, d, lo, hi)
		}
	}
}

// TestBackoffDeterministicAndSpread: the same (seed, id, attempt) always
// lands on the same delay, while distinct identities spread across the
// jitter window instead of thundering back in lockstep.
func TestBackoffDeterministicAndSpread(t *testing.T) {
	b := Backoff{Base: time.Second, Max: time.Second, Seed: 11}
	if b.Delay("x", 1) != b.Delay("x", 1) {
		t.Fatal("Delay is not deterministic")
	}
	distinct := make(map[time.Duration]bool)
	for i := 0; i < 16; i++ {
		distinct[b.Delay(fmt.Sprintf("cell-%d", i), 1)] = true
	}
	if len(distinct) < 2 {
		t.Errorf("16 identities landed on %d distinct delays; jitter is not spreading", len(distinct))
	}
	if DefaultBackoff.Delay("x", 1) <= 0 {
		t.Error("zero-value Backoff fields do not default")
	}
}

// TestSleepContext: the pause elapses under a live context, is cut short by
// cancellation, and a non-positive duration returns immediately.
func TestSleepContext(t *testing.T) {
	if !SleepContext(context.Background(), 0) {
		t.Error("zero-duration sleep reported interruption")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if SleepContext(ctx, time.Minute) {
		t.Error("sleep under a dead context reported a full pause")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("sleep under a dead context did not return promptly")
	}
	if !SleepContext(context.Background(), time.Millisecond) {
		t.Error("millisecond sleep reported interruption")
	}
}
