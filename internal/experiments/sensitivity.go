package experiments

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/metrics"
	"repro/internal/optimal"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// Fig16 reproduces the data-block-size sensitivity study on Dunnington:
// smaller blocks give finer clustering (better performance) at the cost of
// longer compilation (mapping) time.
func Fig16(r *Runner, opt Options) (string, error) {
	m := topology.Dunnington()
	sizes := []int64{256, 512, 1024, 2048, 4096, 8192}
	if opt.Quick {
		sizes = []int64{512, 2048, 8192}
	}
	var cells []Cell
	for _, bs := range sizes {
		cfg := repro.DefaultConfig()
		cfg.BlockBytes = bs
		cells = append(cells, ratioCells(m, opt.kernels(), []repro.Scheme{repro.SchemeTopologyAware}, cfg)...)
	}
	_ = r.Prefetch(cells)
	t := metrics.NewTable("Figure 16 (Dunnington): data block size sensitivity (TopologyAware vs Base)",
		"norm-cycles", "map-time")
	for _, bs := range sizes {
		cfg := repro.DefaultConfig()
		cfg.BlockBytes = bs
		var ratios []float64
		var mapTime time.Duration
		for _, k := range opt.kernels() {
			ratio, err := r.ratio(k, m, repro.SchemeTopologyAware, cfg)
			if err != nil {
				return "", fmt.Errorf("fig16 block=%d %s: %w", bs, k.Name, err)
			}
			run, err := r.Evaluate(k, m, repro.SchemeTopologyAware, cfg)
			if err != nil {
				return "", err
			}
			ratios = append(ratios, ratio)
			mapTime += run.MapTime
		}
		t.AddRow(fmt.Sprintf("%dB", bs),
			fmt.Sprintf("%.3f", metrics.Mean(ratios)),
			mapTime.Round(time.Millisecond).String())
	}
	return t.String(), nil
}

// Fig17 reproduces the core-count scaling study: the Dunnington topology
// grown to 8/12/18/24 cores; the paper reports the TopologyAware win over
// Base growing from 29% at 12 cores to 46% at 24.
func Fig17(r *Runner, opt Options) (string, error) {
	counts := []int{8, 12, 18, 24}
	if opt.Quick {
		counts = []int{8, 12, 24}
	}
	cfg := repro.DefaultConfig()
	machines := make([]*topology.Machine, len(counts))
	for i, n := range counts {
		m, err := topology.ScaleDunnington(n)
		if err != nil {
			return "", err
		}
		machines[i] = m
	}
	_ = r.Prefetch(Grid(machines, opt.kernels(),
		[]repro.Scheme{repro.SchemeBase, repro.SchemeBasePlus, repro.SchemeTopologyAware}, cfg))
	t := metrics.NewTable("Figure 17: core-count scaling (normalized to Base on the same machine)",
		"Base+", "TopologyAware")
	for i, n := range counts {
		m := machines[i]
		var bp, ta []float64
		for _, k := range opt.kernels() {
			rbp, err := r.ratio(k, m, repro.SchemeBasePlus, cfg)
			if err != nil {
				return "", fmt.Errorf("fig17 cores=%d %s: %w", n, k.Name, err)
			}
			rta, err := r.ratio(k, m, repro.SchemeTopologyAware, cfg)
			if err != nil {
				return "", fmt.Errorf("fig17 cores=%d %s: %w", n, k.Name, err)
			}
			bp, ta = append(bp, rbp), append(ta, rta)
		}
		t.AddRatios(fmt.Sprintf("%d cores", n), metrics.Mean(bp), metrics.Mean(ta))
	}
	return t.String(), nil
}

// Fig17Weak is the weak-scaling companion to Fig 17: the dataset grows
// with the machine (bigger machines run bigger problems), holding
// per-socket pressure constant. Uses the three kernels with scaled
// variants.
func Fig17Weak(r *Runner, opt Options) (string, error) {
	counts := []int{12, 24}
	if !opt.Quick {
		counts = []int{8, 12, 18, 24}
	}
	cfg := repro.DefaultConfig()
	var cells []Cell
	for _, n := range counts {
		m, err := topology.ScaleDunnington(n)
		if err != nil {
			return "", err
		}
		factor := (n + 11) / 12
		for _, name := range []string{"galgel", "bodytrack", "namd"} {
			k, err := workloads.Scaled(name, factor)
			if err != nil {
				return "", err
			}
			cells = append(cells, ratioCells(m, []*workloads.Kernel{k}, []repro.Scheme{repro.SchemeTopologyAware}, cfg)...)
		}
	}
	_ = r.Prefetch(cells)
	t := metrics.NewTable("Figure 17 (weak scaling): dataset grows with cores (normalized to Base)",
		"TopologyAware")
	for _, n := range counts {
		m, err := topology.ScaleDunnington(n)
		if err != nil {
			return "", err
		}
		factor := (n + 11) / 12 // 1x at <=12 cores, 2x at 24
		var ta []float64
		for _, name := range []string{"galgel", "bodytrack", "namd"} {
			k, err := workloads.Scaled(name, factor)
			if err != nil {
				return "", err
			}
			ratio, err := r.ratio(k, m, repro.SchemeTopologyAware, cfg)
			if err != nil {
				return "", fmt.Errorf("fig17weak cores=%d %s: %w", n, name, err)
			}
			ta = append(ta, ratio)
		}
		t.AddRatios(fmt.Sprintf("%d cores (%dx data)", n, factor), metrics.Mean(ta))
	}
	return t.String(), nil
}

// Fig18 reproduces the hierarchy-depth study: the default Dunnington
// against the deeper Arch-I and Arch-II of Figure 12; the topology-aware
// win should grow with depth.
func Fig18(r *Runner, opt Options) (string, error) {
	machines := []*topology.Machine{topology.Dunnington(), topology.ArchI(), topology.ArchII()}
	cfg := repro.DefaultConfig()
	_ = r.Prefetch(Grid(machines, opt.kernels(),
		[]repro.Scheme{repro.SchemeBase, repro.SchemeBasePlus, repro.SchemeTopologyAware, repro.SchemeCombined}, cfg))
	t := metrics.NewTable("Figure 18: on-chip hierarchy depth (normalized to Base on the same machine)",
		"Base+", "TopologyAware", "Combined")
	for _, m := range machines {
		var bp, ta, co []float64
		for _, k := range opt.kernels() {
			rbp, err := r.ratio(k, m, repro.SchemeBasePlus, cfg)
			if err != nil {
				return "", fmt.Errorf("fig18 %s/%s: %w", m.Name, k.Name, err)
			}
			rta, err := r.ratio(k, m, repro.SchemeTopologyAware, cfg)
			if err != nil {
				return "", err
			}
			rco, err := r.ratio(k, m, repro.SchemeCombined, cfg)
			if err != nil {
				return "", err
			}
			bp, ta, co = append(bp, rbp), append(ta, rta), append(co, rco)
		}
		name := m.Name
		if name == "Dunnington" {
			name = "Default"
		}
		t.AddRatios(name, metrics.Mean(bp), metrics.Mean(ta), metrics.Mean(co))
	}
	return t.String(), nil
}

// Fig19 reproduces the cache-pressure study: every Dunnington cache halved.
// The paper reports Base+ at 21% and TopologyAware at 33% improvement,
// rising to 29%/41% with scheduling.
func Fig19(r *Runner, opt Options) (string, error) {
	full := topology.Dunnington()
	half := topology.HalveCapacities(topology.Dunnington())
	cfg := repro.DefaultConfig()
	_ = r.Prefetch(Grid([]*topology.Machine{full, half}, opt.kernels(),
		[]repro.Scheme{repro.SchemeBase, repro.SchemeBasePlus, repro.SchemeTopologyAware, repro.SchemeCombined}, cfg))
	t := metrics.NewTable("Figure 19: halved cache capacities (normalized to Base on the same machine)",
		"Base+", "TopologyAware", "Combined")
	for _, m := range []*topology.Machine{full, half} {
		var bp, ta, co []float64
		for _, k := range opt.kernels() {
			rbp, err := r.ratio(k, m, repro.SchemeBasePlus, cfg)
			if err != nil {
				return "", fmt.Errorf("fig19 %s/%s: %w", m.Name, k.Name, err)
			}
			rta, err := r.ratio(k, m, repro.SchemeTopologyAware, cfg)
			if err != nil {
				return "", err
			}
			rco, err := r.ratio(k, m, repro.SchemeCombined, cfg)
			if err != nil {
				return "", err
			}
			bp, ta, co = append(bp, rbp), append(ta, rta), append(co, rco)
		}
		t.AddRatios(m.Name, metrics.Mean(bp), metrics.Mean(ta), metrics.Mean(co))
	}
	return t.String(), nil
}

// Fig20 reproduces the partial-hierarchy + optimal study on Arch-I: the
// mapper limited to seeing L1+L2, L1+L2+L3, the full four-level hierarchy,
// and the (searched) optimal mapping. All variants use coarse grouping so
// the optimal search stays tractable, mirroring the paper's per-nest ILP.
func Fig20(r *Runner, opt Options) (string, error) {
	m := topology.ArchI()
	cfg := repro.DefaultConfig()
	cfg.MaxGroups = 48 // coarse groups keep the optimal search tractable
	kernels := opt.kernels()
	if len(kernels) > 6 && opt.Quick {
		kernels = kernels[:4]
	}
	views := []struct {
		name string
		view *topology.Machine
	}{
		{"L1+L2", topology.Truncate(m, 2)},
		{"L1+L2+L3", topology.Truncate(m, 3)},
		{"L1..L4 (full)", nil},
	}
	var cells []Cell
	for _, k := range kernels {
		cells = append(cells, Cell{Kernel: k, Machine: m, Scheme: repro.SchemeBase, Config: cfg})
		for _, v := range views {
			vcfg := cfg
			vcfg.MapView = v.view
			cells = append(cells, Cell{Kernel: k, Machine: m, Scheme: repro.SchemeTopologyAware, Config: vcfg})
		}
	}
	_ = r.Prefetch(cells)
	t := metrics.NewTable("Figure 20 (Arch-I): partial-hierarchy versions and optimal (normalized to Base)",
		"L1+L2", "L1+L2+L3", "full", "optimal")
	var sums [4]float64
	n := 0
	for _, k := range kernels {
		base, err := r.Evaluate(k, m, repro.SchemeBase, cfg)
		if err != nil {
			return "", err
		}
		row := make([]float64, 0, 4)
		var fullRun *repro.Run
		for _, v := range views {
			vcfg := cfg
			vcfg.MapView = v.view
			run, err := r.Evaluate(k, m, repro.SchemeTopologyAware, vcfg)
			if err != nil {
				return "", fmt.Errorf("fig20 %s/%s: %w", k.Name, v.name, err)
			}
			if v.view == nil {
				fullRun = run
			}
			row = append(row, float64(run.Sim.TotalCycles)/float64(base.Sim.TotalCycles))
		}
		optRatio, err := optimalRatio(k, m, cfg, fullRun, base.Sim.TotalCycles, opt)
		if err != nil {
			return "", fmt.Errorf("fig20 optimal %s: %w", k.Name, err)
		}
		row = append(row, optRatio)
		for i, v := range row {
			sums[i] += v
		}
		n++
		t.AddRatios(k.Name, row...)
	}
	t.AddRatios("average", sums[0]/float64(n), sums[1]/float64(n), sums[2]/float64(n), sums[3]/float64(n))
	return t.String(), nil
}

// optimalRatio searches for the best group-to-core mapping using the
// exhaustive/local-search stand-in for the paper's ILP.
func optimalRatio(k *workloads.Kernel, m *topology.Machine, cfg repro.Config, seed *repro.Run, baseCycles uint64, opt Options) (float64, error) {
	if seed == nil || seed.Mapping == nil {
		return 0, fmt.Errorf("optimal needs the full TopologyAware run as seed")
	}
	sc, err := repro.NewSearchContext(k, m, cfg)
	if err != nil {
		return 0, err
	}
	evals := 600
	if opt.Quick {
		evals = 150
	}
	sres, err := optimal.Search(sc.NumGroups(), m.NumCores(), [][][]int{sc.Seed()}, sc.Cost, optimal.Options{
		MaxEvals:        evals,
		ExhaustiveLimit: 2000,
	})
	if err != nil {
		return 0, err
	}
	return float64(sres.Cost) / float64(baseCycles), nil
}

// AlphaBeta reproduces the §4.2 α/β discussion: equal weights are best;
// skewing toward either extreme hurts the corresponding cache level.
func AlphaBeta(r *Runner, opt Options) (string, error) {
	m := topology.Dunnington()
	settings := [][2]float64{{1, 0}, {0.75, 0.25}, {0.5, 0.5}, {0.25, 0.75}, {0, 1}}
	if opt.Quick {
		settings = [][2]float64{{1, 0}, {0.5, 0.5}, {0, 1}}
	}
	var cells []Cell
	for _, ab := range settings {
		cfg := repro.DefaultConfig()
		cfg.Alpha, cfg.Beta = ab[0], ab[1]
		cells = append(cells, ratioCells(m, opt.kernels(), []repro.Scheme{repro.SchemeCombined}, cfg)...)
	}
	_ = r.Prefetch(cells)
	t := metrics.NewTable("Alpha/Beta sensitivity (Dunnington, Combined vs Base)",
		"norm-cycles")
	for _, ab := range settings {
		cfg := repro.DefaultConfig()
		cfg.Alpha, cfg.Beta = ab[0], ab[1]
		var ratios []float64
		for _, k := range opt.kernels() {
			ratio, err := r.ratio(k, m, repro.SchemeCombined, cfg)
			if err != nil {
				return "", fmt.Errorf("alphabeta %g/%g %s: %w", ab[0], ab[1], k.Name, err)
			}
			ratios = append(ratios, ratio)
		}
		t.AddRow(fmt.Sprintf("a=%.2f b=%.2f", ab[0], ab[1]),
			fmt.Sprintf("%.3f", metrics.Mean(ratios)))
	}
	return t.String(), nil
}

// SteadyState augments Figure 19 with warm-cache (multi-pass) runs: the
// paper's applications execute their nests many times, so their Base kept
// multi-megabyte working sets resident and suffered when capacities were
// halved. A single cold pass cannot show that; three passes can.
func SteadyState(r *Runner, opt Options) (string, error) {
	full := topology.Dunnington()
	half := topology.HalveCapacities(topology.Dunnington())
	warm := repro.DefaultConfig()
	warm.Passes = 3
	_ = r.Prefetch(Grid([]*topology.Machine{full, half}, opt.kernels(),
		[]repro.Scheme{repro.SchemeBase, repro.SchemeBasePlus, repro.SchemeTopologyAware, repro.SchemeCombined}, warm))
	t := metrics.NewTable("Steady state (3 passes, Dunnington, normalized to Base on the same machine)",
		"Base+", "TopologyAware", "Combined")
	for _, m := range []*topology.Machine{full, half} {
		var bp, ta, co []float64
		for _, k := range opt.kernels() {
			cfg := repro.DefaultConfig()
			cfg.Passes = 3
			rbp, err := r.ratio(k, m, repro.SchemeBasePlus, cfg)
			if err != nil {
				return "", fmt.Errorf("steady %s/%s: %w", m.Name, k.Name, err)
			}
			rta, err := r.ratio(k, m, repro.SchemeTopologyAware, cfg)
			if err != nil {
				return "", err
			}
			rco, err := r.ratio(k, m, repro.SchemeCombined, cfg)
			if err != nil {
				return "", err
			}
			bp, ta, co = append(bp, rbp), append(ta, rta), append(co, rco)
		}
		t.AddRatios(m.Name, metrics.Mean(bp), metrics.Mean(ta), metrics.Mean(co))
	}
	return t.String(), nil
}

// CompileTime reproduces the §4.1 compilation-overhead observation: the
// paper reports 65-94% mapping-time overhead over parallelization alone.
// We compare the wall time of the full topology-aware mapping passes with
// the (near-zero) Base preparation, per kernel.
func CompileTime(r *Runner, opt Options) (string, error) {
	m := topology.Dunnington()
	cfg := repro.DefaultConfig()
	_ = r.Prefetch(Grid([]*topology.Machine{m}, opt.kernels(),
		[]repro.Scheme{repro.SchemeTopologyAware, repro.SchemeCombined}, cfg))
	t := metrics.NewTable("Mapping (compile) time, Dunnington", "TopologyAware", "Combined", "groups")
	for _, k := range opt.kernels() {
		ta, err := r.Evaluate(k, m, repro.SchemeTopologyAware, cfg)
		if err != nil {
			return "", err
		}
		co, err := r.Evaluate(k, m, repro.SchemeCombined, cfg)
		if err != nil {
			return "", err
		}
		t.AddRow(k.Name,
			ta.MapTime.Round(time.Millisecond).String(),
			co.MapTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", ta.Groups))
	}
	return t.String(), nil
}

// Ablation quantifies the design choices DESIGN.md calls out: the merge
// size cap, the balance polish, and the balance threshold, all as the
// TopologyAware-vs-Base average on Dunnington.
func Ablation(r *Runner, opt Options) (string, error) {
	m := topology.Dunnington()
	variants := []struct {
		name   string
		scheme repro.Scheme
		mut    func(*repro.Config)
	}{
		{"full algorithm", repro.SchemeTopologyAware, func(*repro.Config) {}},
		{"no merge cap", repro.SchemeTopologyAware, func(c *repro.Config) { c.NoMergeCap = true }},
		{"no balance polish", repro.SchemeTopologyAware, func(c *repro.Config) { c.NoPolish = true }},
		{"no polish, 30% threshold", repro.SchemeTopologyAware, func(c *repro.Config) { c.NoPolish = true; c.BalanceThreshold = 0.30 }},
		{"threshold 2%", repro.SchemeTopologyAware, func(c *repro.Config) { c.BalanceThreshold = 0.02 }},
		{"threshold 30%", repro.SchemeTopologyAware, func(c *repro.Config) { c.BalanceThreshold = 0.30 }},
		{"coarse groups (128)", repro.SchemeTopologyAware, func(c *repro.Config) { c.MaxGroups = 128 }},
		{"combined, dot product", repro.SchemeCombined, func(*repro.Config) {}},
		{"combined, hamming", repro.SchemeCombined, func(c *repro.Config) { c.HammingSched = true }},
	}
	var cells []Cell
	for _, v := range variants {
		cfg := repro.DefaultConfig()
		v.mut(&cfg)
		cells = append(cells, ratioCells(m, opt.kernels(), []repro.Scheme{v.scheme}, cfg)...)
	}
	_ = r.Prefetch(cells)
	t := metrics.NewTable("Ablation (Dunnington, vs Base)", "norm-cycles")
	for _, v := range variants {
		cfg := repro.DefaultConfig()
		v.mut(&cfg)
		var ratios []float64
		for _, k := range opt.kernels() {
			ratio, err := r.ratio(k, m, v.scheme, cfg)
			if err != nil {
				return "", fmt.Errorf("ablation %s %s: %w", v.name, k.Name, err)
			}
			ratios = append(ratios, ratio)
		}
		t.AddRow(v.name, fmt.Sprintf("%.3f", metrics.Mean(ratios)))
	}
	return t.String(), nil
}

// DependenceModes exercises §3.5.2 on the two dependence kernels:
// conservative clustering (no synchronization, dependence-connected groups
// serialize on one core) against barrier-synchronized distribution, both
// normalized to the (unsynchronized, illegal-in-practice) Base for scale.
// Wavefront's dependence chain favours the conservative mode; the
// tree-reduction's wide DAG favours synchronization — the trade-off the
// paper describes.
func DependenceModes(r *Runner) (string, error) {
	m := topology.Dunnington()
	var cells []Cell
	for _, name := range []string{"wavefront", "treereduce"} {
		k, err := workloads.ByName(name)
		if err != nil {
			return "", err
		}
		for _, mode := range []repro.DepsMode{repro.DepsSync, repro.DepsConservative} {
			cfg := repro.DefaultConfig()
			cfg.Deps = mode
			cells = append(cells, ratioCells(m, []*workloads.Kernel{k}, []repro.Scheme{repro.SchemeCombined}, cfg)...)
		}
	}
	_ = r.Prefetch(cells)
	t := metrics.NewTable("Dependence handling (Dunnington, Combined normalized to Base)",
		"synchronized", "sync-barriers", "conservative")
	for _, name := range []string{"wavefront", "treereduce"} {
		k, err := workloads.ByName(name)
		if err != nil {
			return "", err
		}
		row := make([]string, 0, 3)
		var syncBarriers int
		for _, mode := range []repro.DepsMode{repro.DepsSync, repro.DepsConservative} {
			cfg := repro.DefaultConfig()
			cfg.Deps = mode
			base, err := r.Evaluate(k, m, repro.SchemeBase, cfg)
			if err != nil {
				return "", err
			}
			run, err := r.Evaluate(k, m, repro.SchemeCombined, cfg)
			if err != nil {
				return "", err
			}
			row = append(row, fmt.Sprintf("%.3f", float64(run.Sim.TotalCycles)/float64(base.Sim.TotalCycles)))
			if mode == repro.DepsSync {
				syncBarriers = run.Sim.Barriers
			}
		}
		t.AddRow(name, row[0], fmt.Sprintf("%d", syncBarriers), row[1])
	}
	return t.String(), nil
}
