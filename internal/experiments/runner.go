package experiments

import (
	"fmt"
	"runtime"
	rtmetrics "runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// Cell identifies one point of the experiment grid: one kernel mapped onto
// one machine under one scheme and configuration. Every cell is an
// independent job — a self-contained discrete-event simulation with no
// shared mutable state — which is what lets the runner execute the grid on
// a worker pool.
type Cell struct {
	Kernel  *workloads.Kernel
	Machine *topology.Machine
	// MapMachine, when non-nil, requests cross-evaluation: the mapping is
	// computed for MapMachine's topology but executed on Machine (the
	// porting studies of Figures 2 and 14).
	MapMachine *topology.Machine
	Scheme     repro.Scheme
	Config     repro.Config
}

// Key returns the cell's canonical identity: the memoization key under
// which its result is cached and the sort key under which aggregated
// results are reported. Two cells with equal keys are the same experiment.
func (c Cell) Key() string {
	cfg := c.Config
	key := fmt.Sprintf("%s|%s|%v|%d|%g|%g|%g|%d|%v|%v|%v|%v|%d|%v", c.Kernel.Name, c.Machine.Name, c.Scheme,
		cfg.BlockBytes, cfg.BalanceThreshold, cfg.Alpha, cfg.Beta, cfg.MaxGroups, cfg.Deps,
		cfg.NoMergeCap, cfg.NoPolish, cfg.HammingSched, cfg.Passes, cfg.Materialize)
	if cfg.MapView != nil {
		key += "|view=" + cfg.MapView.Name
	}
	if c.MapMachine != nil {
		key += "|mapfor=" + c.MapMachine.Name
	}
	return key
}

// evaluate runs the cell's simulation (no caching).
func (c Cell) evaluate() (*repro.Run, error) {
	if c.MapMachine != nil {
		return repro.CrossEvaluate(c.Kernel, c.MapMachine, c.Machine, c.Scheme, c.Config)
	}
	return repro.Evaluate(c.Kernel, c.Machine, c.Scheme, c.Config)
}

// ProgressFunc receives completion updates while a grid executes: cells
// done so far, the total, elapsed wall time, and the estimated time to
// completion (zero until the first cell lands). The runner serializes
// calls, so implementations need no locking of their own.
type ProgressFunc func(done, total int, elapsed, eta time.Duration)

// cacheEntry is one memoized cell. The sync.Once gives single-flight
// semantics: concurrent workers asking for the same cell share one
// computation instead of racing to duplicate it.
type cacheEntry struct {
	once sync.Once
	run  *repro.Run
	err  error
}

// Runner executes experiment-grid cells, memoizing results so one
// experiment's Base runs are reused by the next. Cells run either inline
// (Evaluate/CrossEvaluate) or batched on a bounded worker pool (RunCells/
// Prefetch). Results are keyed and aggregated by cell, never by completion
// order, so every output a driver renders is byte-identical to a serial
// run regardless of the pool size. Safe for concurrent use.
type Runner struct {
	mu    sync.Mutex
	cache map[string]*cacheEntry

	workers    int
	progressMu sync.Mutex
	progress   ProgressFunc
	log        metrics.CellLog
}

// NewRunner returns an empty memoizing runner executing cells serially
// (one worker) until SetWorkers raises the pool size.
func NewRunner() *Runner {
	return &Runner{cache: make(map[string]*cacheEntry), workers: 1}
}

// SetWorkers bounds the worker pool RunCells uses: n <= 0 selects
// GOMAXPROCS, n == 1 reproduces the serial harness exactly, larger n runs
// up to n cells concurrently. The aggregated results are identical at any
// setting; only wall-clock time changes.
func (r *Runner) SetWorkers(n int) {
	r.mu.Lock()
	r.workers = n
	r.mu.Unlock()
}

// Workers reports the effective pool size.
func (r *Runner) Workers() int {
	r.mu.Lock()
	n := r.workers
	r.mu.Unlock()
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// SetProgress installs a callback invoked after every completed cell of a
// RunCells batch (nil disables reporting).
func (r *Runner) SetProgress(fn ProgressFunc) {
	r.progressMu.Lock()
	r.progress = fn
	r.progressMu.Unlock()
}

// Metrics exposes the per-cell execution log: wall time, simulated cycles
// and allocation volume for every cell this runner computed.
func (r *Runner) Metrics() *metrics.CellLog { return &r.log }

// Evaluate memoizes one cell keyed by kernel, machine, scheme and the
// distinguishing config fields. Concurrent callers of the same cell share
// a single computation.
func (r *Runner) Evaluate(k *workloads.Kernel, m *topology.Machine, s repro.Scheme, cfg repro.Config) (*repro.Run, error) {
	return r.runCell(Cell{Kernel: k, Machine: m, Scheme: s, Config: cfg})
}

// CrossEvaluate memoizes repro.CrossEvaluate: the kernel is mapped for
// mapM's topology but executed on runM.
func (r *Runner) CrossEvaluate(k *workloads.Kernel, mapM, runM *topology.Machine, s repro.Scheme, cfg repro.Config) (*repro.Run, error) {
	return r.runCell(Cell{Kernel: k, Machine: runM, MapMachine: mapM, Scheme: s, Config: cfg})
}

// runCell returns the cell's memoized result, computing and instrumenting
// it on first use. Errors are memoized too, so the serial rendering path
// reports the same failure a prefetch encountered, with its own context.
func (r *Runner) runCell(c Cell) (*repro.Run, error) {
	key := c.Key()
	r.mu.Lock()
	e, ok := r.cache[key]
	if !ok {
		e = &cacheEntry{}
		r.cache[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		start := time.Now()
		allocs := heapAllocBytes()
		e.run, e.err = c.evaluate()
		stat := metrics.CellStat{Key: key, Wall: time.Since(start), AllocBytes: heapAllocBytes() - allocs}
		if e.run != nil {
			stat.SimCycles = e.run.Sim.TotalCycles
			stat.Accesses = e.run.Sim.Accesses
		}
		r.log.Record(stat)
	})
	return e.run, e.err
}

// RunCells executes the cells on the worker pool and returns their results
// in cell order — never completion order. Duplicate cells (the same grid
// point requested twice, e.g. one Base run shared by several ratios) are
// computed once. The returned error is the first failing cell's, by cell
// order; the runs slice always has len(cells) entries with nil at failed
// cells, so callers needing richer per-cell context can re-request a cell
// and wrap the memoized error themselves.
func (r *Runner) RunCells(cells []Cell) ([]*repro.Run, error) {
	unique := make([]Cell, 0, len(cells))
	seen := make(map[string]bool, len(cells))
	for _, c := range cells {
		if key := c.Key(); !seen[key] {
			seen[key] = true
			unique = append(unique, c)
		}
	}
	workers := r.Workers()
	if workers > len(unique) {
		workers = len(unique)
	}

	total := len(unique)
	start := time.Now()
	var done atomic.Int64
	jobs := make(chan Cell)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				r.runCell(c)
				r.reportProgress(int(done.Add(1)), total, start)
			}
		}()
	}
	for _, c := range unique {
		jobs <- c
	}
	close(jobs)
	wg.Wait()

	runs := make([]*repro.Run, len(cells))
	var firstErr error
	for i, c := range cells {
		run, err := r.runCell(c) // memoized: no recomputation
		runs[i] = run
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cell %s: %w", c.Key(), err)
		}
	}
	return runs, firstErr
}

// Prefetch warms the runner's cache with the cells on the worker pool and
// discards the results. Drivers call it before their serial rendering
// loop: the loop then reads only memoized results, so its output — and its
// error messages, since errors are memoized as well — is byte-identical to
// running without Prefetch, just faster.
func (r *Runner) Prefetch(cells []Cell) error {
	_, err := r.RunCells(cells)
	return err
}

// reportProgress serializes and forwards one completion update.
func (r *Runner) reportProgress(done, total int, start time.Time) {
	r.progressMu.Lock()
	fn := r.progress
	if fn != nil {
		elapsed := time.Since(start)
		var eta time.Duration
		if done > 0 && done < total {
			eta = elapsed / time.Duration(done) * time.Duration(total-done)
		}
		fn(done, total, elapsed, eta)
	}
	r.progressMu.Unlock()
}

// Grid enumerates the full machines × kernels × schemes cross product
// under one configuration, in deterministic (machine-major) order.
func Grid(machines []*topology.Machine, kernels []*workloads.Kernel, schemes []repro.Scheme, cfg repro.Config) []Cell {
	cells := make([]Cell, 0, len(machines)*len(kernels)*len(schemes))
	for _, m := range machines {
		for _, k := range kernels {
			for _, s := range schemes {
				cells = append(cells, Cell{Kernel: k, Machine: m, Scheme: s, Config: cfg})
			}
		}
	}
	return cells
}

// ratioCells lists the cells a set of ratio computations needs: Base plus
// each scheme, per kernel, on one machine.
func ratioCells(m *topology.Machine, kernels []*workloads.Kernel, schemes []repro.Scheme, cfg repro.Config) []Cell {
	withBase := append([]repro.Scheme{repro.SchemeBase}, schemes...)
	return Grid([]*topology.Machine{m}, kernels, withBase, cfg)
}

// heapAllocBytes reads the runtime's cumulative heap allocation counter
// (cheaper than runtime.ReadMemStats; no stop-the-world).
func heapAllocBytes() uint64 {
	s := []rtmetrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	rtmetrics.Read(s)
	if s[0].Value.Kind() == rtmetrics.KindUint64 {
		return s[0].Value.Uint64()
	}
	return 0
}
