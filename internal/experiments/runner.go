package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	rtmetrics "runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// Cell identifies one point of the experiment grid: one kernel mapped onto
// one machine under one scheme and configuration. Every cell is an
// independent job — a self-contained discrete-event simulation with no
// shared mutable state — which is what lets the runner execute the grid on
// a worker pool.
type Cell struct {
	Kernel  *workloads.Kernel
	Machine *topology.Machine
	// MapMachine, when non-nil, requests cross-evaluation: the mapping is
	// computed for MapMachine's topology but executed on Machine (the
	// porting studies of Figures 2 and 14).
	MapMachine *topology.Machine
	Scheme     repro.Scheme
	Config     repro.Config
}

// Key returns the cell's canonical identity: the memoization key under
// which its result is cached and checkpointed, and the sort key under which
// aggregated results are reported. Two cells with equal keys are the same
// experiment. Execution guards (per-cell timeouts, cycle budgets, retries)
// are deliberately not part of the key: they bound how a cell runs, not
// what it computes, and a guard-aborted cell yields an error, which is
// never checkpointed.
//
//topovet:keyof Cell
//topovet:keyof repro.Config exempt=MaxSimCycles,SimWorkers -- execution knobs: MaxSimCycles bounds how a cell runs (a budget-aborted cell yields an error and is never checkpointed); SimWorkers only parallelizes the simulator's event loop, whose output is byte-identical at every worker count
func (c Cell) Key() string {
	kname, mname := "<nil>", "<nil>"
	if c.Kernel != nil {
		kname = c.Kernel.Name
	}
	if c.Machine != nil {
		mname = c.Machine.Name
	}
	cfg := c.Config
	key := fmt.Sprintf("%s|%s|%v|%d|%g|%g|%g|%d|%v|%v|%v|%v|%d|%v", kname, mname, c.Scheme,
		cfg.BlockBytes, cfg.BalanceThreshold, cfg.Alpha, cfg.Beta, cfg.MaxGroups, cfg.Deps,
		cfg.NoMergeCap, cfg.NoPolish, cfg.HammingSched, cfg.Passes, cfg.Materialize)
	if cfg.MapView != nil {
		key += "|view=" + cfg.MapView.Name
	}
	if c.MapMachine != nil {
		key += "|mapfor=" + c.MapMachine.Name
	}
	// Self-checking is part of the identity when armed: a chaos seed changes
	// what a poisoned cell computes, and a checked cell's result certifies
	// more than an unchecked one, so neither may be served from the other's
	// memo or checkpoint. Defaults add nothing, keeping old keys valid.
	if cfg.Check != repro.CheckOff {
		key += "|check=" + cfg.Check.String()
	}
	if cfg.ChaosSeed != 0 {
		key += fmt.Sprintf("|chaos=%d", cfg.ChaosSeed)
	}
	return key
}

// ProgressFunc receives completion updates while a grid executes: cells
// done so far, the total, elapsed wall time, and the estimated time to
// completion (zero until the first cell lands). The runner serializes
// calls, so implementations need no locking of their own.
type ProgressFunc func(done, total int, elapsed, eta time.Duration)

// cacheEntry is one memoized cell. The sync.Once gives single-flight
// semantics: concurrent workers asking for the same cell share one
// computation instead of racing to duplicate it.
type cacheEntry struct {
	once sync.Once
	run  *repro.Run
	err  error
}

// Runner executes experiment-grid cells, memoizing results so one
// experiment's Base runs are reused by the next. Cells run either inline
// (Evaluate/CrossEvaluate) or batched on a bounded worker pool (RunCells/
// Prefetch). Results are keyed and aggregated by cell, never by completion
// order, so every output a driver renders is byte-identical to a serial
// run regardless of the pool size. Safe for concurrent use.
//
// The runner is also the grid's fault-isolation boundary. Every cell runs
// under panic containment: a panicking kernel becomes a *CellError carrying
// the cell key, pipeline stage and stack, the remaining cells complete
// normally, and Failures lists what was lost. Per-cell wall-time and
// simulated-cycle budgets (SetTimeout/SetMaxCycles), bounded retry
// (SetRetries), cooperative cancellation (RunCellsContext/SetBaseContext)
// and checkpoint/resume (SetCheckpoint) complete the contract: a sweep
// degrades cell by cell instead of dying, and an interrupted sweep resumes
// without recomputing finished work.
type Runner struct {
	mu    sync.Mutex
	cache map[string]*cacheEntry

	workers     int
	simWorkers  int
	baseCtx     context.Context
	timeout     time.Duration
	retries     int
	retryWait   Backoff
	maxCycles   uint64
	checkMode   repro.CheckMode
	chaosSeed   int64
	replayDir   string
	distributor Distributor

	// evals counts actual pipeline executions (including retries);
	// restored counts cells served from the checkpoint instead, and
	// distHits cells completed by a distributor. Together they verify a
	// resumed or distributed sweep recomputes nothing locally.
	evals        atomic.Uint64
	restoredHits atomic.Uint64
	distHits     atomic.Uint64

	failMu   sync.Mutex
	failures map[string]*CellError

	ckptMu sync.Mutex
	ckpt   *CheckpointFile

	progressMu sync.Mutex
	progress   ProgressFunc
	log        metrics.CellLog
}

// NewRunner returns an empty memoizing runner executing cells serially
// (one worker) until SetWorkers raises the pool size, with no budgets, no
// retries and no checkpoint.
func NewRunner() *Runner {
	return &Runner{
		cache:    make(map[string]*cacheEntry),
		failures: make(map[string]*CellError),
		workers:  1,
	}
}

// SetWorkers bounds the worker pool RunCells uses: n <= 0 selects
// GOMAXPROCS, n == 1 reproduces the serial harness exactly, larger n runs
// up to n cells concurrently. The aggregated results are identical at any
// setting; only wall-clock time changes.
func (r *Runner) SetWorkers(n int) {
	r.mu.Lock()
	r.workers = n
	r.mu.Unlock()
}

// SetSimWorkers installs a default intra-cell worker count applied to every
// cell whose Config leaves SimWorkers at zero: n > 1 lets the simulator run
// its set-partitioned engine on up to n goroutines inside one cell. Results
// are byte-identical at any setting — SimWorkers is an execution knob, never
// part of a cell's identity — so it composes freely with SetWorkers
// (cell-level pool) without changing keys, checkpoints or output. n <= 1
// keeps the classic sequential event loop.
func (r *Runner) SetSimWorkers(n int) {
	r.mu.Lock()
	r.simWorkers = n
	r.mu.Unlock()
}

// Workers reports the effective pool size.
func (r *Runner) Workers() int {
	r.mu.Lock()
	n := r.workers
	r.mu.Unlock()
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// SetBaseContext installs the context the no-context entry points
// (Evaluate, CrossEvaluate, RunCells, Prefetch) run under, so drivers that
// only hold a Runner inherit sweep-wide cancellation without signature
// changes. nil restores context.Background().
func (r *Runner) SetBaseContext(ctx context.Context) {
	r.mu.Lock()
	r.baseCtx = ctx
	r.mu.Unlock()
}

// base returns the runner's base context.
func (r *Runner) base() context.Context {
	r.mu.Lock()
	ctx := r.baseCtx
	r.mu.Unlock()
	if ctx == nil {
		//lint:ignore ctxflow deliberate fallback: a runner used standalone (no SetBaseContext) has no sweep context to inherit, and Background here restores the pre-PR-4 behavior exactly
		return context.Background()
	}
	return ctx
}

// SetTimeout bounds each cell's wall-clock time (mapping + simulation);
// a cell past its budget fails with a "timeout" CellError while the rest
// of the grid continues. Zero (the default) means unlimited.
func (r *Runner) SetTimeout(d time.Duration) {
	r.mu.Lock()
	r.timeout = d
	r.mu.Unlock()
}

// SetRetries allows each failing cell up to n additional evaluation
// attempts before its error is recorded — insurance against transient
// failures in long sweeps. Attempts are separated by the jittered
// exponential backoff of SetRetryBackoff (defaulting to DefaultBackoff),
// the same policy the fabric applies to lease reassignment, so a transient
// shared cause — memory pressure, a co-tenant burst — has time to clear
// instead of being hammered immediately. Cancellation of the sweep context
// is never retried. Zero (the default) disables retry.
func (r *Runner) SetRetries(n int) {
	r.mu.Lock()
	r.retries = n
	r.mu.Unlock()
}

// SetRetryBackoff replaces the delay policy between a cell's retry
// attempts. The zero Backoff selects DefaultBackoff.
func (r *Runner) SetRetryBackoff(b Backoff) {
	r.mu.Lock()
	r.retryWait = b
	r.mu.Unlock()
}

// SetMaxCycles bounds each cell's simulated cycle count: any core's clock
// passing the budget aborts the cell with a "cycle-budget" CellError. Cells
// whose Config already sets MaxSimCycles keep their own bound. Zero (the
// default) means unlimited.
func (r *Runner) SetMaxCycles(n uint64) {
	r.mu.Lock()
	r.maxCycles = n
	r.mu.Unlock()
}

// SetCheck installs a default self-checking level applied to every cell
// whose Config leaves Check at CheckOff: CheckInvariants turns on the
// simulator's runtime invariants, CheckSampled adds the differential oracle
// on a deterministic one-in-four cell subset, CheckFull checks every cell.
// Cells that set their own Check keep it.
func (r *Runner) SetCheck(m repro.CheckMode) {
	r.mu.Lock()
	r.checkMode = m
	r.mu.Unlock()
}

// SetChaos arms the fault injector for every cell whose Config leaves
// ChaosSeed zero: roughly one cell in three is deterministically corrupted
// and must be caught by the checking layers (see internal/chaos). While a
// chaos seed is armed no cell is checkpointed — a poisoned sweep exists to
// test the detectors, not to produce reusable results. Zero disarms.
func (r *Runner) SetChaos(seed int64) {
	r.mu.Lock()
	r.chaosSeed = seed
	r.mu.Unlock()
}

// SetReplayDir selects where replay bundles are written: when a cell fails
// a self-check (stage "invariant" or "diverged") or panics, a JSON bundle
// identifying the cell, its config and chaos seed lands there, and
// benchtool -replay re-executes it with full checking. Empty disables
// bundle writing.
func (r *Runner) SetReplayDir(dir string) {
	r.mu.Lock()
	r.replayDir = dir
	r.mu.Unlock()
}

// SetProgress installs a callback invoked after every completed cell of a
// RunCells batch (nil disables reporting).
func (r *Runner) SetProgress(fn ProgressFunc) {
	r.progressMu.Lock()
	r.progress = fn
	r.progressMu.Unlock()
}

// Metrics exposes the per-cell execution log: wall time, simulated cycles
// and allocation volume for every cell this runner computed (checkpoint-
// restored cells are not re-logged).
func (r *Runner) Metrics() *metrics.CellLog { return &r.log }

// Evaluations reports how many pipeline evaluations the runner has actually
// executed, counting retries and failed attempts but not memo hits or
// checkpoint restores. A fully checkpointed re-run reports zero.
func (r *Runner) Evaluations() uint64 { return r.evals.Load() }

// RestoredCells reports how many cells were served from the checkpoint
// instead of being recomputed.
func (r *Runner) RestoredCells() uint64 { return r.restoredHits.Load() }

// Failures returns the cells that currently stand failed, sorted by cell
// key. A cell that later succeeds (a retried transient, or a cancelled cell
// recomputed on a fresh context) is removed from the list.
func (r *Runner) Failures() []*CellError {
	r.failMu.Lock()
	out := make([]*CellError, 0, len(r.failures))
	for _, ce := range r.failures {
		out = append(out, ce)
	}
	r.failMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// recordFailure files (or clears, for err == nil) a cell's standing failure.
func (r *Runner) recordFailure(key string, ce *CellError) {
	r.failMu.Lock()
	if ce == nil {
		delete(r.failures, key)
	} else {
		r.failures[key] = ce
	}
	r.failMu.Unlock()
}

// Evaluate memoizes one cell keyed by kernel, machine, scheme and the
// distinguishing config fields. Concurrent callers of the same cell share
// a single computation.
func (r *Runner) Evaluate(k *workloads.Kernel, m *topology.Machine, s repro.Scheme, cfg repro.Config) (*repro.Run, error) {
	return r.runCell(r.base(), Cell{Kernel: k, Machine: m, Scheme: s, Config: cfg})
}

// CrossEvaluate memoizes repro.CrossEvaluate: the kernel is mapped for
// mapM's topology but executed on runM.
func (r *Runner) CrossEvaluate(k *workloads.Kernel, mapM, runM *topology.Machine, s repro.Scheme, cfg repro.Config) (*repro.Run, error) {
	return r.runCell(r.base(), Cell{Kernel: k, Machine: runM, MapMachine: mapM, Scheme: s, Config: cfg})
}

// runCell returns the cell's memoized result, computing and instrumenting
// it on first use. Errors are memoized too, so the serial rendering path
// reports the same failure a prefetch encountered — with one exception:
// failures caused by the sweep context being cancelled are evicted, so a
// later run on a live context recomputes them instead of replaying the
// cancellation.
func (r *Runner) runCell(ctx context.Context, c Cell) (*repro.Run, error) {
	key := c.Key()
	e := r.entryFor(key)
	e.once.Do(func() { r.computeCell(ctx, key, c, e) })
	if e.err != nil && ctx.Err() != nil {
		r.mu.Lock()
		if r.cache[key] == e {
			delete(r.cache, key)
		}
		r.mu.Unlock()
	}
	return e.run, e.err
}

// computeCell fills a cache entry: from the checkpoint when the cell was
// already completed by an earlier run, otherwise by evaluating the pipeline
// under panic containment, the per-cell budgets and the retry policy.
func (r *Runner) computeCell(ctx context.Context, key string, c Cell, e *cacheEntry) {
	if rec, ok := r.restoredRecord(key); ok {
		e.run = rec.ToRun(c)
		r.restoredHits.Add(1)
		r.recordFailure(key, nil)
		return
	}
	attempts := 1
	r.mu.Lock()
	attempts += r.retries
	wait := r.retryWait
	r.mu.Unlock()

	made := 0
	for made < attempts {
		if made > 0 {
			// Jittered exponential backoff between attempts: the same
			// policy the fabric uses between lease reassignments. A dead
			// sweep context ends the retry loop instead of sleeping on it.
			if !SleepContext(ctx, wait.Delay(key, made)) {
				break
			}
		}
		made++
		start := time.Now() //lint:ignore nondeterminism wall-clock instrumentation: CellStat.Wall is diagnostics, never rendered into a figure table
		allocs := heapAllocBytes()
		e.run, e.err = r.evaluateOnce(ctx, c)
		r.evals.Add(1)
		//lint:ignore nondeterminism wall-clock instrumentation: CellStat.Wall is diagnostics, never rendered into a figure table
		stat := metrics.CellStat{Key: key, Wall: time.Since(start), AllocBytes: heapAllocBytes() - allocs}
		if e.run != nil {
			stat.SimCycles = e.run.Sim.TotalCycles
			stat.Accesses = e.run.Sim.Accesses
			stat.Status = "ok"
			if ph := e.run.SimPhases; ph != nil && ph.Partitioned {
				stat.SimWorkers = ph.Workers
				stat.SplitWall = ph.SplitWall
				stat.PrivateWall = ph.PrivateWall
				stat.ReplayWall = ph.ReplayWall
				stat.SimEscaped = ph.Escaped
			}
		} else {
			stat.Status, _ = classifyStage(e.err)
		}
		r.log.Record(stat)
		if e.err == nil || ctx.Err() != nil {
			break
		}
	}
	if e.err != nil {
		ce := newCellError(key, made, e.err)
		r.writeReplayBundle(c, ce)
		e.err = ce
		r.recordFailure(key, ce)
		return
	}
	r.recordFailure(key, nil)
	// A chaos-armed sweep exists to test the detectors; its cells are never
	// persisted, so a later clean sweep cannot inherit them.
	if !r.chaosArmed(c) {
		r.appendCheckpoint(key, e.run)
	}
}

// chaosArmed reports whether the cell runs under a chaos seed, from its own
// config or the runner default.
func (r *Runner) chaosArmed(c Cell) bool {
	r.mu.Lock()
	seed := r.chaosSeed
	r.mu.Unlock()
	return seed != 0 || c.Config.ChaosSeed != 0
}

// evaluateOnce runs one evaluation attempt under the per-cell wall-time
// budget, converting any panic that escapes the repro boundary into a
// CellError (stage "panic") instead of crashing the worker.
func (r *Runner) evaluateOnce(ctx context.Context, c Cell) (run *repro.Run, err error) {
	r.mu.Lock()
	timeout := r.timeout
	maxCycles := r.maxCycles
	checkMode := r.checkMode
	chaosSeed := r.chaosSeed
	simWorkers := r.simWorkers
	r.mu.Unlock()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
		defer func() {
			// Name the budget in the error while keeping the sentinel
			// reachable: errors.Is(err, context.DeadlineExceeded) must hold
			// through the CellError chain so callers and the stage
			// classifier can still tell a timeout from a real failure.
			if err != nil && errors.Is(err, context.DeadlineExceeded) {
				err = fmt.Errorf("cell wall-time budget %v exhausted: %w", timeout, err)
			}
		}()
	}
	defer func() {
		if v := recover(); v != nil {
			run = nil
			err = &CellError{Key: c.Key(), Stage: "panic", Err: fmt.Errorf("panic: %v", v), Stack: debug.Stack(), Attempts: 1}
		}
	}()
	cfg := c.Config
	if maxCycles > 0 && cfg.MaxSimCycles == 0 {
		cfg.MaxSimCycles = maxCycles
	}
	if checkMode != repro.CheckOff && cfg.Check == repro.CheckOff {
		cfg.Check = checkMode
	}
	if chaosSeed != 0 && cfg.ChaosSeed == 0 {
		cfg.ChaosSeed = chaosSeed
	}
	if simWorkers > 1 && cfg.SimWorkers == 0 {
		cfg.SimWorkers = simWorkers
	}
	if c.MapMachine != nil {
		return repro.CrossEvaluateContext(ctx, c.Kernel, c.MapMachine, c.Machine, c.Scheme, cfg)
	}
	return repro.EvaluateContext(ctx, c.Kernel, c.Machine, c.Scheme, cfg)
}

// RunCells executes the cells on the worker pool under the runner's base
// context. See RunCellsContext.
func (r *Runner) RunCells(cells []Cell) ([]*repro.Run, error) {
	return r.RunCellsContext(r.base(), cells)
}

// RunCellsContext executes the cells on the worker pool and returns their
// results in cell order — never completion order. Duplicate cells (the same
// grid point requested twice, e.g. one Base run shared by several ratios)
// are computed once. The returned error is the first failing cell's, by
// cell order; the runs slice always has len(cells) entries with nil at
// failed cells, so callers render the completed cells and report the rest.
// Cancelling the context stops the grid: in-flight cells abort within a
// fraction of a simulation round, queued cells are never started, and
// already-completed cells keep their memoized results.
func (r *Runner) RunCellsContext(ctx context.Context, cells []Cell) ([]*repro.Run, error) {
	unique := make([]Cell, 0, len(cells))
	seen := make(map[string]bool, len(cells))
	for _, c := range cells {
		if key := c.Key(); !seen[key] {
			seen[key] = true
			unique = append(unique, c)
		}
	}
	total := len(unique)
	start := time.Now() //lint:ignore nondeterminism wall-clock instrumentation: feeds the progress callback's elapsed/ETA, not any result
	var done atomic.Int64

	// A distributor (the fabric coordinator) takes the batch first: cells
	// it completes or fails are installed into the memo and only the rest
	// run on the in-process pool below. The collect loop at the end reads
	// everything back from the memo either way, so output is byte-identical
	// with and without distribution.
	if d := r.getDistributor(); d != nil {
		before := len(unique)
		unique = r.distribute(ctx, d, unique)
		if installed := before - len(unique); installed > 0 {
			r.reportProgress(int(done.Add(int64(installed))), total, start)
		}
	}

	workers := r.Workers()
	if workers > len(unique) {
		workers = len(unique)
	}
	jobs := make(chan Cell)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				if ctx.Err() == nil {
					// The result is memoized; failures land in r.failures and
					// resurface on render, so the worker discards both returns.
					_, _ = r.runCell(ctx, c)
				}
				r.reportProgress(int(done.Add(1)), total, start)
			}
		}()
	}
feed:
	for _, c := range unique {
		select {
		case jobs <- c:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	runs := make([]*repro.Run, len(cells))
	var firstErr error
	for i, c := range cells {
		// Memoized for every cell the pool completed; cells skipped by a
		// cancellation fail fast here on the dead context.
		run, err := r.runCell(ctx, c)
		runs[i] = run
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return runs, firstErr
}

// Prefetch warms the runner's cache with the cells on the worker pool and
// discards the results. Drivers call it before their serial rendering
// loop: the loop then reads only memoized results, so its output — and its
// error messages, since errors are memoized as well — is byte-identical to
// running without Prefetch, just faster.
func (r *Runner) Prefetch(cells []Cell) error {
	_, err := r.RunCells(cells)
	return err
}

// PrefetchContext is Prefetch under an explicit context.
func (r *Runner) PrefetchContext(ctx context.Context, cells []Cell) error {
	_, err := r.RunCellsContext(ctx, cells)
	return err
}

// reportProgress serializes and forwards one completion update.
func (r *Runner) reportProgress(done, total int, start time.Time) {
	r.progressMu.Lock()
	fn := r.progress
	if fn != nil {
		elapsed := time.Since(start) //lint:ignore nondeterminism wall-clock instrumentation: feeds the progress callback's elapsed/ETA, not any result
		var eta time.Duration
		if done > 0 && done < total {
			eta = elapsed / time.Duration(done) * time.Duration(total-done)
		}
		fn(done, total, elapsed, eta)
	}
	r.progressMu.Unlock()
}

// Grid enumerates the full machines × kernels × schemes cross product
// under one configuration, in deterministic (machine-major) order.
func Grid(machines []*topology.Machine, kernels []*workloads.Kernel, schemes []repro.Scheme, cfg repro.Config) []Cell {
	cells := make([]Cell, 0, len(machines)*len(kernels)*len(schemes))
	for _, m := range machines {
		for _, k := range kernels {
			for _, s := range schemes {
				cells = append(cells, Cell{Kernel: k, Machine: m, Scheme: s, Config: cfg})
			}
		}
	}
	return cells
}

// ratioCells lists the cells a set of ratio computations needs: Base plus
// each scheme, per kernel, on one machine.
func ratioCells(m *topology.Machine, kernels []*workloads.Kernel, schemes []repro.Scheme, cfg repro.Config) []Cell {
	withBase := append([]repro.Scheme{repro.SchemeBase}, schemes...)
	return Grid([]*topology.Machine{m}, kernels, withBase, cfg)
}

// heapAllocBytes reads the runtime's cumulative heap allocation counter
// (cheaper than runtime.ReadMemStats; no stop-the-world).
func heapAllocBytes() uint64 {
	s := []rtmetrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	rtmetrics.Read(s)
	if s[0].Value.Kind() == rtmetrics.KindUint64 {
		return s[0].Value.Uint64()
	}
	return 0
}
