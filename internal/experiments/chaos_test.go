package experiments

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro"
	"repro/internal/chaos"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// chaosCellFor searches kernel × machine × scheme space for a cell the
// injector assigns the wanted fault class under some small seed. The search
// is deterministic, so each test run exercises the same cell.
func chaosCellFor(t *testing.T, want chaos.Fault) (int64, Cell) {
	t.Helper()
	kernels := workloads.All()
	machines := topology.Commercial()
	schemes := []repro.Scheme{repro.SchemeBase, repro.SchemeTopologyAware, repro.SchemeCombined}
	for seed := int64(1); seed <= 16; seed++ {
		for _, k := range kernels {
			for _, m := range machines {
				for _, s := range schemes {
					if f, ok := repro.ChaosFaultFor(seed, k.Name, m.Name, "", s); ok && f == want {
						return seed, Cell{Kernel: k, Machine: m, Scheme: s, Config: repro.DefaultConfig()}
					}
				}
			}
		}
	}
	t.Fatalf("no cell resolves to fault %v within 16 seeds", want)
	return 0, Cell{}
}

// TestChaosFaultClassesDetected is the chaos acceptance matrix: every
// injectable fault class, run on a cell the injector actually poisons with
// it, is caught by the checking layer the fault was designed to slip past
// everything else — stream-structure faults by the runtime invariants,
// semantic faults (a flipped address bit, a perturbed replacement decision)
// by the differential oracle. Each detection writes a replay bundle whose
// re-execution reproduces the same failure stage.
func TestChaosFaultClassesDetected(t *testing.T) {
	wantStage := map[chaos.Fault]string{
		chaos.BitFlip:     "diverged",
		chaos.Truncate:    "invariant",
		chaos.Duplicate:   "invariant",
		chaos.BadIndex:    "invariant",
		chaos.Replacement: "diverged",
	}
	dir := t.TempDir()
	for _, f := range chaos.Injectable() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			seed, c := chaosCellFor(t, f)
			r := NewRunner()
			r.SetChaos(seed)
			r.SetReplayDir(dir)
			_, err := r.Evaluate(c.Kernel, c.Machine, c.Scheme, c.Config)
			if err == nil {
				t.Fatalf("fault %v on %s (seed %d) was not detected", f, c.Key(), seed)
			}
			var ce *CellError
			if !errors.As(err, &ce) {
				t.Fatalf("error is %T, want *CellError: %v", err, err)
			}
			if ce.Stage != wantStage[f] {
				t.Errorf("fault %v detected at stage %q, want %q: %v", f, ce.Stage, wantStage[f], err)
			}
			// The structured cause survives the CellError wrapping.
			var ie *repro.InvariantError
			var de *repro.DivergenceError
			switch wantStage[f] {
			case "invariant":
				if !errors.As(err, &ie) {
					t.Errorf("fault %v error does not unwrap to *InvariantError: %v", f, err)
				}
			case "diverged":
				if !errors.As(err, &de) {
					t.Errorf("fault %v error does not unwrap to *DivergenceError: %v", f, err)
				}
			}

			if ce.Bundle == "" {
				t.Fatalf("fault %v detection wrote no replay bundle: %v", f, err)
			}
			b, err := LoadBundle(ce.Bundle)
			if err != nil {
				t.Fatalf("bundle written for %v does not load: %v", f, err)
			}
			if b.Fault != f.String() {
				t.Errorf("bundle records fault %q, want %q", b.Fault, f.String())
			}
			if b.Stage != ce.Stage {
				t.Errorf("bundle records stage %q, CellError has %q", b.Stage, ce.Stage)
			}
			_, rerr := Replay(context.Background(), b)
			if rerr == nil {
				t.Fatalf("replay of %v bundle did not reproduce the failure", f)
			}
			if got := StageOf(rerr); got != ce.Stage {
				t.Errorf("replay of %v failed at stage %q, original was %q: %v", f, got, ce.Stage, rerr)
			}
		})
	}
}

// TestChaosStagesIdenticalAcrossSimWorkers: a chaos-poisoned cell must be
// detected at the same pipeline stage whether the simulation runs on the
// sequential event loop or the set-partitioned parallel engine — the
// checking layers see through the engine choice. (Replacement faults
// install a stateful hook the partitioned engine deliberately declines, so
// the equality there certifies the fallback; stream faults exercise the
// partitioned split phase's detectors directly.)
func TestChaosStagesIdenticalAcrossSimWorkers(t *testing.T) {
	for _, f := range chaos.Injectable() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			seed, c := chaosCellFor(t, f)
			stage := func(simWorkers int) string {
				r := NewRunner()
				r.SetChaos(seed)
				r.SetSimWorkers(simWorkers)
				_, err := r.Evaluate(c.Kernel, c.Machine, c.Scheme, c.Config)
				if err == nil {
					t.Fatalf("fault %v on %s (seed %d, simworkers %d) was not detected", f, c.Key(), seed, simWorkers)
				}
				var ce *CellError
				if !errors.As(err, &ce) {
					t.Fatalf("simworkers=%d: error is %T, want *CellError: %v", simWorkers, err, err)
				}
				return ce.Stage
			}
			seq, par := stage(1), stage(4)
			if seq != par {
				t.Errorf("fault %v: sequential stage %q, partitioned stage %q", f, seq, par)
			}
		})
	}
}

// TestChaosGridDegradesOnlyPoisonedCells: under an armed fault injector,
// every poisoned cell is detected and rendered as a failure while every
// healthy cell's result is byte-identical to a clean run's — corruption
// never leaks a wrong number into a neighboring cell. The chaos sweep's
// checkpoint stays empty (header only): poisoned sweeps exist to test the
// detectors, never to persist results.
func TestChaosGridDegradesOnlyPoisonedCells(t *testing.T) {
	cells := smallGrid(t)
	var seed int64
	poisoned := map[string]bool{}
	for s := int64(1); s <= 64; s++ {
		p := map[string]bool{}
		for _, c := range cells {
			if _, ok := repro.ChaosFaultFor(s, c.Kernel.Name, c.Machine.Name, "", c.Scheme); ok {
				p[c.Key()] = true
			}
		}
		if len(p) > 0 && len(p) < len(cells) {
			seed, poisoned = s, p
			break
		}
	}
	if seed == 0 {
		t.Fatal("no seed within 64 poisons a strict subset of the grid")
	}

	clean := NewRunner()
	clean.SetWorkers(4)
	cleanRuns, err := clean.RunCells(cells)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "chaos.ckpt")
	r := NewRunner()
	r.SetWorkers(4)
	r.SetChaos(seed)
	if _, err := r.SetCheckpoint(ckpt, GridSignature("chaos-grid")); err != nil {
		t.Fatal(err)
	}
	runs, err := r.RunCells(cells)
	if err == nil {
		t.Fatal("poisoned grid reported no failure")
	}
	if err := r.CloseCheckpoint(); err != nil {
		t.Fatal(err)
	}

	for i, c := range cells {
		key := c.Key()
		if poisoned[key] {
			if runs[i] != nil {
				t.Errorf("poisoned cell %s (seed %d) went undetected", key, seed)
			}
			continue
		}
		if runs[i] == nil {
			t.Errorf("healthy cell %s failed under the chaos sweep", key)
			continue
		}
		if !reflect.DeepEqual(runs[i].Sim, cleanRuns[i].Sim) {
			t.Errorf("healthy cell %s differs from the clean run under chaos", key)
		}
	}
	for _, f := range r.Failures() {
		if !poisoned[f.Key] {
			t.Errorf("unpoisoned cell %s stands failed: %v", f.Key, f.Err)
		}
	}

	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, l := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(l) != "" {
			lines++
		}
	}
	if lines != 1 {
		t.Errorf("chaos sweep checkpoint holds %d lines, want 1 (header only)", lines)
	}
}

// TestFailuresSortedByKey: the standing-failure listing (what the tools
// print on stderr at exit) is ordered by cell key regardless of worker
// count or completion order.
func TestFailuresSortedByKey(t *testing.T) {
	fig5, err := workloads.ByName("fig5")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := workloads.ByName("sp")
	if err != nil {
		t.Fatal(err)
	}
	var bad []Cell
	for _, k := range []*workloads.Kernel{sp, fig5} {
		for _, m := range []*topology.Machine{topology.Nehalem(), topology.Dunnington()} {
			bad = append(bad, Cell{Kernel: k, Machine: m, Scheme: repro.Scheme(99), Config: repro.DefaultConfig()})
		}
	}
	r := NewRunner()
	r.SetWorkers(4)
	if _, err := r.RunCells(bad); err == nil {
		t.Fatal("invalid-scheme cells did not fail")
	}
	fails := r.Failures()
	if len(fails) != len(bad) {
		t.Fatalf("Failures() = %d entries, want %d", len(fails), len(bad))
	}
	for i := 1; i < len(fails); i++ {
		if fails[i-1].Key >= fails[i].Key {
			t.Errorf("Failures() out of order: %q before %q", fails[i-1].Key, fails[i].Key)
		}
	}
}
