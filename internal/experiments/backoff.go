package experiments

import (
	"context"
	"time"
)

// Backoff is the jittered exponential backoff policy shared by the
// runner's per-cell retry (SetRetries) and the fabric's lease reassignment
// (internal/fabric): delays double per attempt from Base up to Max, and a
// deterministic jitter spreads retries of different identities apart so a
// correlated failure (a dead worker holding many cells, a transient
// machine-wide stall) does not thunder back in lockstep.
//
// The jitter is a pure function of (Seed, id, attempt) — no global
// randomness, no wall clock — so a given retry schedule is reproducible,
// which keeps chaos tests and failure replays deterministic.
type Backoff struct {
	// Base is the delay before the first retry (attempt 1). Zero selects
	// DefaultBackoff.Base.
	Base time.Duration
	// Max caps the exponential growth. Zero selects DefaultBackoff.Max.
	Max time.Duration
	// Seed perturbs the jitter; two sweeps with different seeds interleave
	// their retries differently, but each is individually reproducible.
	Seed int64
}

// DefaultBackoff is the policy used when a Backoff's fields are zero.
var DefaultBackoff = Backoff{Base: 100 * time.Millisecond, Max: 5 * time.Second}

// Delay returns the pause before the given attempt (attempt 1 is the first
// retry or reassignment) of the work item with the given identity: Base
// doubled per attempt, capped at Max, then jittered into [50%, 150%) by a
// deterministic hash of (Seed, id, attempt).
func (b Backoff) Delay(id string, attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = DefaultBackoff.Base
	}
	if max <= 0 {
		max = DefaultBackoff.Max
	}
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Jitter into [50%, 150%): the same (seed, id, attempt) always lands on
	// the same delay, but distinct identities spread across the window.
	h := splitmix64(uint64(b.Seed) ^ fnv64(id) ^ uint64(attempt)*0x9e3779b97f4a7c15)
	frac := float64(h%1024) / 1024 // [0, 1)
	return time.Duration(float64(d) * (0.5 + frac))
}

// SleepContext pauses for d or until the context dies, whichever comes
// first, and reports whether the full pause elapsed.
func SleepContext(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// splitmix64 is the deterministic mixing function behind the jitter (the
// same one internal/chaos uses for fault decisions).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 is the FNV-1a string hash feeding the jitter.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
