package experiments

import (
	"container/list"
	"sync"
)

// ResultLRU is a bounded, concurrency-safe result cache keyed by Cell.Key(),
// holding checkpoint records (the same compact form the JSONL checkpoint
// persists — no mappings or schedules, so an entry costs a few hundred
// bytes, not megabytes). It is the memory-capped seam the topomapd server
// puts in front of evaluation: the Runner's memo map is unbounded by design
// (a sweep's grid is finite), but a server fed by arbitrary clients must
// bound its resident results, so the LRU evicts the least recently served
// cell once Cap is exceeded.
type ResultLRU struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions uint64
}

// lruItem is one LRU slot: the key plus its record.
type lruItem struct {
	key string
	rec *CheckpointRecord
}

// NewResultLRU returns an empty LRU holding at most cap records; cap < 1 is
// clamped to 1 so Add can never grow without bound.
func NewResultLRU(cap int) *ResultLRU {
	if cap < 1 {
		cap = 1
	}
	return &ResultLRU{
		cap:   cap,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Cap reports the configured capacity.
func (l *ResultLRU) Cap() int { return l.cap }

// Len reports the current number of cached records.
func (l *ResultLRU) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ll.Len()
}

// Get returns the cached record for key and marks it most recently used.
func (l *ResultLRU) Get(key string) (*CheckpointRecord, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[key]
	if !ok {
		l.misses++
		return nil, false
	}
	l.hits++
	l.ll.MoveToFront(el)
	return el.Value.(*lruItem).rec, true
}

// Add inserts (or refreshes) a record, evicting the least recently used
// entry if the cache is full. A nil record is ignored.
func (l *ResultLRU) Add(key string, rec *CheckpointRecord) {
	if rec == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.items[key]; ok {
		el.Value.(*lruItem).rec = rec
		l.ll.MoveToFront(el)
		return
	}
	l.items[key] = l.ll.PushFront(&lruItem{key: key, rec: rec})
	for l.ll.Len() > l.cap {
		back := l.ll.Back()
		l.ll.Remove(back)
		delete(l.items, back.Value.(*lruItem).key)
		l.evictions++
	}
}

// Stats reports lifetime hit/miss/eviction counters.
func (l *ResultLRU) Stats() (hits, misses, evictions uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hits, l.misses, l.evictions
}
