package experiments

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cachesim"
)

// lruRec builds a distinct throwaway record for LRU tests.
func lruRec(i int) *CheckpointRecord {
	return &CheckpointRecord{
		Key: fmt.Sprintf("cell-%d", i),
		Sim: &cachesim.Result{TotalCycles: uint64(i)},
	}
}

// TestResultLRUEvictsLeastRecentlyUsed: the cache never exceeds its
// capacity and the entry evicted is the one served longest ago, not the
// one inserted first.
func TestResultLRUEvictsLeastRecentlyUsed(t *testing.T) {
	l := NewResultLRU(2)
	l.Add("a", lruRec(1))
	l.Add("b", lruRec(2))
	if _, ok := l.Get("a"); !ok {
		t.Fatal("a missing before any eviction")
	}
	// a is now more recently used than b, so adding c must evict b.
	l.Add("c", lruRec(3))
	if l.Len() != 2 {
		t.Fatalf("Len = %d after eviction, want 2", l.Len())
	}
	if _, ok := l.Get("b"); ok {
		t.Error("b survived eviction despite being least recently used")
	}
	if _, ok := l.Get("a"); !ok {
		t.Error("a was evicted despite a recent Get")
	}
	if _, ok := l.Get("c"); !ok {
		t.Error("c missing immediately after Add")
	}
	hits, misses, evictions := l.Stats()
	if evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
	if hits != 3 || misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", hits, misses)
	}
}

// TestResultLRUClampsCapacity: a nonsensical capacity still yields a
// bounded cache rather than an unbounded one.
func TestResultLRUClampsCapacity(t *testing.T) {
	l := NewResultLRU(0)
	if l.Cap() != 1 {
		t.Fatalf("Cap = %d, want clamp to 1", l.Cap())
	}
	for i := 0; i < 10; i++ {
		l.Add(fmt.Sprintf("k%d", i), lruRec(i))
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d with cap 1, want 1", l.Len())
	}
}

// TestResultLRURefreshDoesNotGrow: re-adding an existing key updates the
// record in place instead of duplicating the slot.
func TestResultLRURefreshDoesNotGrow(t *testing.T) {
	l := NewResultLRU(4)
	l.Add("k", lruRec(1))
	l.Add("k", lruRec(2))
	if l.Len() != 1 {
		t.Fatalf("Len = %d after refresh, want 1", l.Len())
	}
	rec, ok := l.Get("k")
	if !ok || rec.Sim.TotalCycles != 2 {
		t.Fatalf("refresh did not replace the record: %+v", rec)
	}
	l.Add("nil", nil)
	if l.Len() != 1 {
		t.Fatal("nil record was cached")
	}
}

// TestResultLRUConcurrent hammers the cache from many goroutines under
// -race: the invariant is simply that Len never exceeds Cap and nothing
// panics or races.
func TestResultLRUConcurrent(t *testing.T) {
	l := NewResultLRU(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%32)
				if _, ok := l.Get(k); !ok {
					l.Add(k, lruRec(i))
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Len() > l.Cap() {
		t.Fatalf("Len = %d exceeds Cap = %d", l.Len(), l.Cap())
	}
}
