package experiments

import (
	"context"
	"sync"
)

// FlightGroup coalesces concurrent evaluations of the same cell key: the
// first caller to Join a key becomes the leader and computes the cell once;
// every later caller becomes a follower and Waits for the leader's result.
// It is the serve-layer analogue of the Runner's single-flight memo, with
// two differences the server needs: results are not retained after the
// flight resolves (the bounded ResultLRU owns retention), and the flight
// tracks a live-waiter count so an evaluation whose every requester has
// disconnected is canceled instead of burning the worker slot.
//
// Protocol: Join counts the caller as one waiter; every Join must be
// balanced by exactly one Leave, whether the caller got a result, timed
// out, or disconnected. The leader installs the evaluation's CancelFunc
// with SetCancel and publishes with Resolve (idempotent; the first call
// wins). When the last waiter Leaves an unresolved flight, the installed
// cancel fires and the leader's evaluation returns context.Canceled.
type FlightGroup struct {
	mu      sync.Mutex
	flights map[string]*Flight
}

// NewFlightGroup returns an empty group.
func NewFlightGroup() *FlightGroup {
	return &FlightGroup{flights: make(map[string]*Flight)}
}

// Join returns the flight for key, creating it when none is in progress.
// leader reports whether this caller created the flight and therefore must
// evaluate and Resolve it. The caller holds one waiter reference either way
// and must release it with exactly one Leave.
func (g *FlightGroup) Join(key string) (f *Flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.flights[key]; ok {
		f.mu.Lock()
		f.waiters++
		f.mu.Unlock()
		return f, false
	}
	f = &Flight{group: g, key: key, waiters: 1, done: make(chan struct{})}
	g.flights[key] = f
	return f, true
}

// Inflight reports the number of unresolved flights.
func (g *FlightGroup) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}

// forget removes a resolved flight so a later Join starts fresh.
func (g *FlightGroup) forget(key string, f *Flight) {
	g.mu.Lock()
	if g.flights[key] == f {
		delete(g.flights, key)
	}
	g.mu.Unlock()
}

// A Flight is one in-progress evaluation shared by every concurrent
// requester of the same cell.
type Flight struct {
	group *FlightGroup
	key   string

	mu       sync.Mutex
	waiters  int
	resolved bool
	cancel   context.CancelFunc

	done chan struct{} // closed by Resolve
	rec  *CheckpointRecord
	ce   *CellError
}

// Key returns the cell key the flight evaluates.
func (f *Flight) Key() string { return f.key }

// SetCancel installs the leader's evaluation CancelFunc, to be fired when
// the last waiter leaves before the flight resolves. If every waiter is
// already gone, it fires immediately.
func (f *Flight) SetCancel(cancel context.CancelFunc) {
	f.mu.Lock()
	f.cancel = cancel
	fire := f.waiters == 0 && !f.resolved
	f.mu.Unlock()
	if fire && cancel != nil {
		cancel()
	}
}

// Leave releases one waiter reference. When the last waiter leaves an
// unresolved flight, the leader's evaluation is canceled — nobody is left
// to read the answer.
func (f *Flight) Leave() {
	f.mu.Lock()
	f.waiters--
	fire := f.waiters <= 0 && !f.resolved
	cancel := f.cancel
	f.mu.Unlock()
	if fire && cancel != nil {
		cancel()
	}
}

// Resolve publishes the flight's outcome — a record on success, a CellError
// on failure — wakes every Wait, and removes the flight from its group so
// the next Join of the key starts a fresh evaluation. Idempotent: the first
// call wins, later calls are no-ops (the leader typically resolves from a
// deferred guard so followers can never hang on a panicked leader).
func (f *Flight) Resolve(rec *CheckpointRecord, ce *CellError) {
	f.mu.Lock()
	if f.resolved {
		f.mu.Unlock()
		return
	}
	f.resolved = true
	f.rec = rec
	f.ce = ce
	f.mu.Unlock()
	f.group.forget(f.key, f)
	close(f.done)
}

// Wait blocks until the flight resolves or ctx is done, returning the
// leader's outcome or ctx's error. Wait does not release the caller's
// waiter reference — pair the Join with Leave regardless.
func (f *Flight) Wait(ctx context.Context) (*CheckpointRecord, *CellError, error) {
	select {
	case <-f.done:
		f.mu.Lock()
		rec, ce := f.rec, f.ce
		f.mu.Unlock()
		return rec, ce, nil
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	}
}
