package experiments

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// smallOpt restricts experiments to two fast kernels.
func smallOpt(t *testing.T) Options {
	t.Helper()
	fig5, err := workloads.ByName("fig5")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := workloads.ByName("sp")
	if err != nil {
		t.Fatal(err)
	}
	return Options{Kernels: []*workloads.Kernel{fig5, sp}, Quick: true}
}

func TestTable1Contents(t *testing.T) {
	out := Table1()
	for _, want := range []string{"Harpertown", "Nehalem", "Dunnington", "3.2GHz", "12"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Contents(t *testing.T) {
	out := Table2(Options{})
	for _, k := range workloads.All() {
		if !strings.Contains(out, k.Name) {
			t.Errorf("Table2 missing %s", k.Name)
		}
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner()
	k, _ := workloads.ByName("fig5")
	m := topology.Dunnington()
	cfg := repro.DefaultConfig()
	a, err := r.Evaluate(k, m, repro.SchemeBase, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Evaluate(k, m, repro.SchemeBase, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Runner did not memoize identical evaluations")
	}
	// Different block size must not collide.
	cfg2 := cfg
	cfg2.BlockBytes = 4096
	c, err := r.Evaluate(k, m, repro.SchemeBase, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("Runner cache key ignores block size")
	}
}

func TestFig13Structure(t *testing.T) {
	r := NewRunner()
	res, err := Fig13(r, smallOpt(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"Harpertown", "Nehalem", "Dunnington"} {
		if _, ok := res.PerMachine[m]; !ok {
			t.Errorf("Fig13 missing machine %s", m)
		}
		if res.AvgTopology[m] <= 0 || res.AvgTopology[m] > 1.5 {
			t.Errorf("Fig13 %s TA average out of range: %f", m, res.AvgTopology[m])
		}
	}
	if !strings.Contains(res.Rendered, "Figure 13") {
		t.Error("Fig13 rendering missing title")
	}
	for l := 1; l <= 3; l++ {
		if _, ok := res.MissReductionVsBase[l]; !ok {
			t.Errorf("Fig13 missing L%d miss reduction", l)
		}
	}
}

func TestFig15Renders(t *testing.T) {
	r := NewRunner()
	out, err := Fig15(r, smallOpt(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TopologyAware", "Local", "Combined", "average"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig15 missing %q", want)
		}
	}
}

func TestFig16Renders(t *testing.T) {
	r := NewRunner()
	out, err := Fig16(r, smallOpt(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"512B", "2048B", "8192B", "map-time"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig16 missing %q:\n%s", want, out)
		}
	}
}

func TestFig19Renders(t *testing.T) {
	r := NewRunner()
	out, err := Fig19(r, smallOpt(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Dunnington-half") {
		t.Errorf("Fig19 missing halved machine:\n%s", out)
	}
}

func TestDependenceModesRenders(t *testing.T) {
	r := NewRunner()
	out, err := DependenceModes(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "synchronized") || !strings.Contains(out, "conservative") {
		t.Errorf("deps experiment incomplete:\n%s", out)
	}
}

func TestAblationRenders(t *testing.T) {
	r := NewRunner()
	fig5, _ := workloads.ByName("fig5")
	out, err := Ablation(r, Options{Kernels: []*workloads.Kernel{fig5}})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"full algorithm", "no merge cap", "no balance polish", "hamming"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation missing %q:\n%s", want, out)
		}
	}
}

func TestCompileTimeRenders(t *testing.T) {
	r := NewRunner()
	fig5, _ := workloads.ByName("fig5")
	out, err := CompileTime(r, Options{Kernels: []*workloads.Kernel{fig5}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fig5") || !strings.Contains(out, "groups") {
		t.Errorf("compiletime incomplete:\n%s", out)
	}
}

func TestSteadyStateRenders(t *testing.T) {
	r := NewRunner()
	fig5, _ := workloads.ByName("fig5")
	out, err := SteadyState(r, Options{Kernels: []*workloads.Kernel{fig5}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Dunnington-half") || !strings.Contains(out, "3 passes") {
		t.Errorf("steadystate incomplete:\n%s", out)
	}
}

func TestAlphaBetaRenders(t *testing.T) {
	r := NewRunner()
	out, err := AlphaBeta(r, smallOpt(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "a=0.50 b=0.50") {
		t.Errorf("alphabeta missing default point:\n%s", out)
	}
}
