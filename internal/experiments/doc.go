// Package experiments reproduces the paper's evaluation (§4): one driver
// per table and figure (Table1, Table2, Fig2, Fig13–Fig20) plus the extra
// studies (AlphaBeta, DependenceModes, Ablation, CompileTime, SteadyState).
// Each driver renders an ASCII table in the style of the original figure;
// cmd/benchtool runs them all and the root bench_test.go wraps each in a
// testing.B benchmark.
//
// # The experiment grid and the parallel runner
//
// Every result in the evaluation is a function of one grid cell: a
// (kernel, machine, scheme, config) tuple, optionally carrying a second
// machine for the cross-mapping study of Fig 2/Fig 14. Cell names that
// tuple, Grid enumerates a full cartesian product, and Runner executes
// cells:
//
//	r := experiments.NewRunner() // one worker: the serial harness
//	r.SetWorkers(0)              // 0 = GOMAXPROCS
//	runs, err := r.RunCells(experiments.Grid(machines, kernels, schemes, cfg))
//
// Runner memoizes every cell in a single-flight cache (sync.Once per
// cell), so a cell shared by several figures — every figure needs Base
// cycles for normalization — is computed exactly once per process no
// matter how many drivers ask for it, or how many workers race to it.
//
// Determinism: parallelism only warms the cache. Drivers enumerate their
// cells up front, Prefetch computes them on the worker pool, and the
// unchanged serial rendering loop then reads the memoized results in cell
// order. Results are keyed by cell identity, never by completion order,
// and errors are memoized like results, so every simulated quantity —
// cycles, miss rates, ratios, group counts, error messages — is identical
// at any pool size; only wall-clock time changes. (Measured-time columns,
// e.g. Fig 16's map-time, report real elapsed time and naturally vary
// between any two runs, serial or parallel.)
//
// Runner also records per-cell wall time, simulated cycles and approximate
// heap allocation into a metrics.CellLog (see Metrics), and reports
// progress (cells done/total, ETA) through SetProgress.
package experiments
