package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"runtime/debug"
	"time"

	"repro"
	"repro/internal/cachesim"
)

// checkpointRecord is the on-disk form of one completed cell: the
// simulation result plus the scalar Run fields, keyed by Cell.Key(). The
// checkpoint file holds one JSON record per line (JSONL), appended as cells
// complete, so an interrupted sweep keeps everything finished before the
// interruption and a torn final line is simply ignored on reload.
//
// Mapping and Schedule are deliberately not persisted: they are large,
// kernel-pointer-laden artifacts that only topomap's -sched/-code views
// need, and those views recompute. A restored Run therefore carries
// Mapping == nil and Schedule == nil.
type checkpointRecord struct {
	Key       string           `json:"key"`
	Groups    int              `json:"groups,omitempty"`
	HasDeps   bool             `json:"has_deps,omitempty"`
	MapTimeNS int64            `json:"map_time_ns,omitempty"`
	Sim       *cachesim.Result `json:"sim"`
}

// toRun reconstitutes the memoizable Run for the cell the record was saved
// under. Kernel, machine, scheme and config come from the cell itself — the
// key equality guarantees they denote the same experiment.
func (rec *checkpointRecord) toRun(c Cell) *repro.Run {
	return &repro.Run{
		Kernel:  c.Kernel,
		Machine: c.Machine,
		Scheme:  c.Scheme,
		Config:  c.Config,
		Sim:     rec.Sim,
		Groups:  rec.Groups,
		HasDeps: rec.HasDeps,
		MapTime: time.Duration(rec.MapTimeNS),
	}
}

// checkpointHeader is the first line of every checkpoint file: the grid
// signature of the sweep that wrote it plus the module version. A resume
// whose grid or version differs is rejected — restoring cells from a
// different sweep (or a different build of the simulator) would silently
// mix incompatible results into the tables.
type checkpointHeader struct {
	Header  bool   `json:"header"`
	Grid    string `json:"grid"`
	Version string `json:"version"`
}

// GridSignature hashes the identity of a sweep — whatever strings determine
// which cells it computes and how (kernel set, machine set, schemes, config
// flags, chaos seed) — into the stable token SetCheckpoint stamps into the
// checkpoint header.
func GridSignature(parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p)) //lint:ignore cellboundary hash.Hash.Write never returns an error (hash package contract)
		h.Write([]byte{0}) //lint:ignore cellboundary hash.Hash.Write never returns an error (hash package contract)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// buildVersion identifies the running module build for the checkpoint
// header.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// SetCheckpoint enables checkpoint/resume against the given JSONL file: any
// records already present are loaded and served in place of recomputation
// (keyed by Cell.Key()), and every cell completed from now on is appended
// as it lands. It returns the number of restored cells. Errors are never
// checkpointed, so failed or budget-aborted cells are retried by the next
// run. Call CloseCheckpoint when the sweep ends.
//
// grid is the sweep's identity signature (see GridSignature). A new file
// is stamped with it; an existing file must carry a matching header, and a
// mismatch — a checkpoint written by a different sweep, an older headerless
// format, or a different module version — is rejected with a descriptive
// error instead of silently reusing foreign cells.
func (r *Runner) SetCheckpoint(path, grid string) (int, error) {
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	if r.ckptFile != nil {
		return 0, errors.New("experiments: checkpoint already configured")
	}
	version := buildVersion()
	restored := make(map[string]*checkpointRecord)
	needHeader := true
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		lines := bytes.Split(data, []byte("\n"))
		// Find the first non-blank line: it must be a matching header.
		first := -1
		for i, line := range lines {
			if len(bytes.TrimSpace(line)) > 0 {
				first = i
				break
			}
		}
		if first >= 0 {
			hdr := &checkpointHeader{}
			if json.Unmarshal(bytes.TrimSpace(lines[first]), hdr) != nil || !hdr.Header {
				return 0, fmt.Errorf("experiments: checkpoint %s has no header record: written by a pre-header version or not a checkpoint; delete it (or point -checkpoint elsewhere) to start fresh", path)
			}
			if hdr.Grid != grid {
				return 0, fmt.Errorf("experiments: checkpoint %s was written by a different sweep (grid %s, this sweep is %s): refusing to reuse its cells; delete it or point -checkpoint elsewhere", path, hdr.Grid, grid)
			}
			if hdr.Version != version {
				return 0, fmt.Errorf("experiments: checkpoint %s was written by module version %q, this build is %q: refusing to mix results across builds; delete it or point -checkpoint elsewhere", path, hdr.Version, version)
			}
			needHeader = false
			for _, line := range lines[first+1:] {
				line = bytes.TrimSpace(line)
				if len(line) == 0 {
					continue
				}
				rec := &checkpointRecord{}
				// Undecodable lines (a torn write from a kill mid-append) lose
				// one cell, not the file.
				if json.Unmarshal(line, rec) != nil || rec.Key == "" || rec.Sim == nil {
					continue
				}
				restored[rec.Key] = rec
			}
		}
	case errors.Is(err, os.ErrNotExist):
		// First run: nothing to restore.
	default:
		return 0, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	if needHeader {
		hdr, merr := json.Marshal(&checkpointHeader{Header: true, Grid: grid, Version: version})
		if merr == nil {
			_, merr = f.Write(append(hdr, '\n'))
		}
		if merr != nil {
			_ = f.Close() // the header write error is the one worth reporting
			return 0, fmt.Errorf("experiments: checkpoint %s: writing header: %w", path, merr)
		}
	}
	r.ckptFile = f
	r.restored = restored
	return len(restored), nil
}

// CloseCheckpoint closes the checkpoint file and reports the first append
// error encountered while the sweep ran, if any. A no-op when no checkpoint
// was configured.
func (r *Runner) CloseCheckpoint() error {
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	if r.ckptFile == nil {
		return nil
	}
	err := r.ckptErr
	if cerr := r.ckptFile.Close(); err == nil {
		err = cerr
	}
	r.ckptFile = nil
	r.restored = nil
	r.ckptErr = nil
	return err
}

// restoredRecord returns the checkpointed record for a key, if any.
func (r *Runner) restoredRecord(key string) (*checkpointRecord, bool) {
	r.ckptMu.Lock()
	rec, ok := r.restored[key]
	r.ckptMu.Unlock()
	return rec, ok
}

// appendCheckpoint persists one completed cell. Append failures do not fail
// the cell — the result is still correct in memory — but the first one is
// remembered and surfaced by CloseCheckpoint.
func (r *Runner) appendCheckpoint(key string, run *repro.Run) {
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	if r.ckptFile == nil {
		return
	}
	rec := checkpointRecord{
		Key:       key,
		Groups:    run.Groups,
		HasDeps:   run.HasDeps,
		MapTimeNS: int64(run.MapTime),
		Sim:       run.Sim,
	}
	data, err := json.Marshal(&rec)
	if err == nil {
		data = append(data, '\n')
		_, err = r.ckptFile.Write(data)
	}
	if err != nil && r.ckptErr == nil {
		r.ckptErr = err
	}
}
