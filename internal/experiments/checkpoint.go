package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"time"

	"repro"
	"repro/internal/cachesim"
)

// checkpointRecord is the on-disk form of one completed cell: the
// simulation result plus the scalar Run fields, keyed by Cell.Key(). The
// checkpoint file holds one JSON record per line (JSONL), appended as cells
// complete, so an interrupted sweep keeps everything finished before the
// interruption and a torn final line is simply ignored on reload.
//
// Mapping and Schedule are deliberately not persisted: they are large,
// kernel-pointer-laden artifacts that only topomap's -sched/-code views
// need, and those views recompute. A restored Run therefore carries
// Mapping == nil and Schedule == nil.
type checkpointRecord struct {
	Key       string           `json:"key"`
	Groups    int              `json:"groups,omitempty"`
	HasDeps   bool             `json:"has_deps,omitempty"`
	MapTimeNS int64            `json:"map_time_ns,omitempty"`
	Sim       *cachesim.Result `json:"sim"`
}

// toRun reconstitutes the memoizable Run for the cell the record was saved
// under. Kernel, machine, scheme and config come from the cell itself — the
// key equality guarantees they denote the same experiment.
func (rec *checkpointRecord) toRun(c Cell) *repro.Run {
	return &repro.Run{
		Kernel:  c.Kernel,
		Machine: c.Machine,
		Scheme:  c.Scheme,
		Config:  c.Config,
		Sim:     rec.Sim,
		Groups:  rec.Groups,
		HasDeps: rec.HasDeps,
		MapTime: time.Duration(rec.MapTimeNS),
	}
}

// SetCheckpoint enables checkpoint/resume against the given JSONL file: any
// records already present are loaded and served in place of recomputation
// (keyed by Cell.Key()), and every cell completed from now on is appended
// as it lands. It returns the number of restored cells. Errors are never
// checkpointed, so failed or budget-aborted cells are retried by the next
// run. Call CloseCheckpoint when the sweep ends.
func (r *Runner) SetCheckpoint(path string) (int, error) {
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	if r.ckptFile != nil {
		return 0, errors.New("experiments: checkpoint already configured")
	}
	restored := make(map[string]*checkpointRecord)
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		for _, line := range bytes.Split(data, []byte("\n")) {
			line = bytes.TrimSpace(line)
			if len(line) == 0 {
				continue
			}
			rec := &checkpointRecord{}
			// Undecodable lines (a torn write from a kill mid-append) lose
			// one cell, not the file.
			if json.Unmarshal(line, rec) != nil || rec.Key == "" || rec.Sim == nil {
				continue
			}
			restored[rec.Key] = rec
		}
	case errors.Is(err, os.ErrNotExist):
		// First run: nothing to restore.
	default:
		return 0, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	r.ckptFile = f
	r.restored = restored
	return len(restored), nil
}

// CloseCheckpoint closes the checkpoint file and reports the first append
// error encountered while the sweep ran, if any. A no-op when no checkpoint
// was configured.
func (r *Runner) CloseCheckpoint() error {
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	if r.ckptFile == nil {
		return nil
	}
	err := r.ckptErr
	if cerr := r.ckptFile.Close(); err == nil {
		err = cerr
	}
	r.ckptFile = nil
	r.restored = nil
	r.ckptErr = nil
	return err
}

// restoredRecord returns the checkpointed record for a key, if any.
func (r *Runner) restoredRecord(key string) (*checkpointRecord, bool) {
	r.ckptMu.Lock()
	rec, ok := r.restored[key]
	r.ckptMu.Unlock()
	return rec, ok
}

// appendCheckpoint persists one completed cell. Append failures do not fail
// the cell — the result is still correct in memory — but the first one is
// remembered and surfaced by CloseCheckpoint.
func (r *Runner) appendCheckpoint(key string, run *repro.Run) {
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	if r.ckptFile == nil {
		return
	}
	rec := checkpointRecord{
		Key:       key,
		Groups:    run.Groups,
		HasDeps:   run.HasDeps,
		MapTimeNS: int64(run.MapTime),
		Sim:       run.Sim,
	}
	data, err := json.Marshal(&rec)
	if err == nil {
		data = append(data, '\n')
		_, err = r.ckptFile.Write(data)
	}
	if err != nil && r.ckptErr == nil {
		r.ckptErr = err
	}
}
