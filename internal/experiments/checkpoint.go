package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro"
	"repro/internal/cachesim"
)

// CheckpointRecord is the on-disk form of one completed cell: the
// simulation result plus the scalar Run fields, keyed by Cell.Key(). The
// checkpoint file holds one JSON record per line (JSONL), appended as cells
// complete, so an interrupted sweep keeps everything finished before the
// interruption and a torn final line loses one cell, not the file.
//
// The same record is the fabric's wire format: workers stream completed
// cells back to the coordinator as checkpoint JSONL (internal/fabric), with
// Worker naming the process that computed the cell and Sum sealing the
// record against in-flight corruption (see Seal/Verify).
//
// Mapping and Schedule are deliberately not persisted: they are large,
// kernel-pointer-laden artifacts that only topomap's -sched/-code views
// need, and those views recompute. A restored Run therefore carries
// Mapping == nil and Schedule == nil.
type CheckpointRecord struct {
	Key       string           `json:"key"`
	Groups    int              `json:"groups,omitempty"`
	HasDeps   bool             `json:"has_deps,omitempty"`
	MapTimeNS int64            `json:"map_time_ns,omitempty"`
	Sim       *cachesim.Result `json:"sim"`
	// Worker names the process that computed the cell (fabric attribution);
	// empty for cells computed in-process.
	Worker string `json:"worker,omitempty"`
	// WallNS is the computing process's wall-clock cost for the cell,
	// carried for per-worker attribution; never part of any result.
	WallNS int64 `json:"wall_ns,omitempty"`
	// Sum seals the record (see Seal): a checksum over the record's
	// canonical JSON with Sum itself blank. Empty means unsealed.
	Sum string `json:"sum,omitempty"`
}

// RecordForRun flattens a completed run into its checkpoint record. The
// record is unsealed; call Seal before writing it anywhere corruption could
// go unnoticed.
func RecordForRun(key string, run *repro.Run) *CheckpointRecord {
	return &CheckpointRecord{
		Key:       key,
		Groups:    run.Groups,
		HasDeps:   run.HasDeps,
		MapTimeNS: int64(run.MapTime),
		Sim:       run.Sim,
	}
}

// ToRun reconstitutes the memoizable Run for the cell the record was saved
// under. Kernel, machine, scheme and config come from the cell itself — the
// key equality guarantees they denote the same experiment.
func (rec *CheckpointRecord) ToRun(c Cell) *repro.Run {
	return &repro.Run{
		Kernel:  c.Kernel,
		Machine: c.Machine,
		Scheme:  c.Scheme,
		Config:  c.Config,
		Sim:     rec.Sim,
		Groups:  rec.Groups,
		HasDeps: rec.HasDeps,
		MapTime: time.Duration(rec.MapTimeNS),
	}
}

// sum computes the record's checksum: FNV-1a over the canonical JSON
// encoding with the Sum field blank.
func (rec *CheckpointRecord) sum() (string, error) {
	clone := *rec
	clone.Sum = ""
	data, err := json.Marshal(&clone)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(data) //lint:ignore cellboundary hash.Hash.Write never returns an error (hash package contract)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// Seal stamps the record's checksum so a later Verify can detect any
// mutation of its payload — a torn disk write, a byte flipped in flight
// between a fabric worker and its coordinator.
func (rec *CheckpointRecord) Seal() error {
	s, err := rec.sum()
	if err != nil {
		return err
	}
	rec.Sum = s
	return nil
}

// Verify checks a sealed record's checksum. Unsealed records (written
// before sealing existed, or deliberately unsealed) verify trivially:
// callers that require the seal check Sum != "" themselves.
func (rec *CheckpointRecord) Verify() error {
	if rec.Sum == "" {
		return nil
	}
	s, err := rec.sum()
	if err != nil {
		return err
	}
	if s != rec.Sum {
		return fmt.Errorf("experiments: checkpoint record %s: checksum %s does not match payload (%s): record corrupted", rec.Key, rec.Sum, s)
	}
	return nil
}

// CheckpointHeader is the first line of every checkpoint file and of every
// fabric result upload: the grid signature of the sweep that produced it
// plus the module version. A resume or a merge whose grid or version
// differs is rejected — restoring cells from a different sweep (or a
// different build of the simulator) would silently mix incompatible
// results into the tables.
type CheckpointHeader struct {
	Header  bool   `json:"header"`
	Grid    string `json:"grid"`
	Version string `json:"version"`
	// Worker and Lease identify a fabric upload's sender; both are zero in
	// checkpoint files on disk.
	Worker string `json:"worker,omitempty"`
	Lease  uint64 `json:"lease,omitempty"`
}

// GridSignature hashes the identity of a sweep — whatever strings determine
// which cells it computes and how (kernel set, machine set, schemes, config
// flags, chaos seed) — into the stable token SetCheckpoint stamps into the
// checkpoint header.
func GridSignature(parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p)) //lint:ignore cellboundary hash.Hash.Write never returns an error (hash package contract)
		h.Write([]byte{0}) //lint:ignore cellboundary hash.Hash.Write never returns an error (hash package contract)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// BuildVersion identifies the running module build, pinned into checkpoint
// headers and fabric uploads so results never mix across builds.
func BuildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// A CheckpointFile is an open checkpoint: the records restored from a
// previous run plus an append handle for new completions. It is the shared
// persistence primitive behind Runner.SetCheckpoint and the topomapd
// server's warm result cache, and it owns an advisory lockfile
// (path + ".lock", holding the owner's pid) for the checkpoint's lifetime:
// a second concurrent open — say a server and a CLI sweep pointed at the
// same file — is rejected instead of silently interleaving appends from
// two processes. A lock whose owner is no longer running (crash residue)
// is stolen automatically.
type CheckpointFile struct {
	path string

	mu        sync.Mutex
	f         *os.File
	restored  map[string]*CheckpointRecord
	appendErr error
	unlock    func() error
}

// OpenCheckpoint opens a checkpoint file for restore + append: any records
// already present are loaded (keyed by Cell.Key()) and every record passed
// to Append from now on lands at the end of the file. Call Close when done;
// the advisory lock is held until then.
//
// grid is the sweep's identity signature (see GridSignature). A new file
// is stamped with it; an existing file must carry a matching header, and a
// mismatch — a checkpoint written by a different sweep, an older headerless
// format, or a different module version — is rejected with a descriptive
// error instead of silently reusing foreign cells.
//
// The load tolerates a torn final line — the signature a crash or SIGKILL
// leaves when it lands mid-append — by skipping it with a stderr warning;
// the cell it held is simply recomputed. Earlier undecodable or
// checksum-failing lines are skipped the same way, each with its own
// warning, so one corrupted record costs one cell, never the resume.
func OpenCheckpoint(path, grid string) (*CheckpointFile, error) {
	unlock, err := lockCheckpoint(path)
	if err != nil {
		return nil, err
	}
	cf, err := openLockedCheckpoint(path, grid)
	if err != nil {
		_ = unlock() // the open error is the one worth reporting
		return nil, err
	}
	cf.unlock = unlock
	return cf, nil
}

// openLockedCheckpoint loads and validates the checkpoint body; the caller
// already holds the lockfile.
func openLockedCheckpoint(path, grid string) (*CheckpointFile, error) {
	version := BuildVersion()
	restored := make(map[string]*CheckpointRecord)
	needHeader := true
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		lines := bytes.Split(data, []byte("\n"))
		// Find the first non-blank line: it must be a matching header.
		first := -1
		for i, line := range lines {
			if len(bytes.TrimSpace(line)) > 0 {
				first = i
				break
			}
		}
		if first >= 0 {
			hdr := &CheckpointHeader{}
			if json.Unmarshal(bytes.TrimSpace(lines[first]), hdr) != nil || !hdr.Header {
				return nil, fmt.Errorf("experiments: checkpoint %s has no header record: written by a pre-header version or not a checkpoint; delete it (or point -checkpoint elsewhere) to start fresh", path)
			}
			if hdr.Grid != grid {
				return nil, fmt.Errorf("experiments: checkpoint %s was written by a different sweep (grid %s, this sweep is %s): refusing to reuse its cells; delete it or point -checkpoint elsewhere", path, hdr.Grid, grid)
			}
			if hdr.Version != version {
				return nil, fmt.Errorf("experiments: checkpoint %s was written by module version %q, this build is %q: refusing to mix results across builds; delete it or point -checkpoint elsewhere", path, hdr.Version, version)
			}
			needHeader = false
			last := lastNonBlank(lines)
			for i, line := range lines[first+1:] {
				line = bytes.TrimSpace(line)
				if len(line) == 0 {
					continue
				}
				rec := &CheckpointRecord{}
				if derr := json.Unmarshal(line, rec); derr != nil || rec.Key == "" || rec.Sim == nil {
					warnSkippedRecord(path, first+1+i, first+1+i == last, "undecodable")
					continue
				}
				if verr := rec.Verify(); verr != nil {
					warnSkippedRecord(path, first+1+i, first+1+i == last, "checksum mismatch")
					continue
				}
				restored[rec.Key] = rec
			}
		}
	case errors.Is(err, os.ErrNotExist):
		// First run: nothing to restore.
	default:
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if needHeader {
		hdr, merr := json.Marshal(&CheckpointHeader{Header: true, Grid: grid, Version: version})
		if merr == nil {
			_, merr = f.Write(append(hdr, '\n'))
		}
		if merr != nil {
			_ = f.Close() // the header write error is the one worth reporting
			return nil, fmt.Errorf("experiments: checkpoint %s: writing header: %w", path, merr)
		}
	}
	return &CheckpointFile{path: path, f: f, restored: restored}, nil
}

// lockCheckpoint takes the checkpoint's advisory lockfile (path + ".lock",
// exclusive create, owner pid inside) and returns the release func. A lock
// held by a live process is a hard error; a stale lock — its owner's pid no
// longer runs — is stolen with one retry.
func lockCheckpoint(path string) (func() error, error) {
	lock := path + ".lock"
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			_, werr := fmt.Fprintf(f, "%d\n", os.Getpid())
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				_ = os.Remove(lock) // the write error is the one worth reporting
				return nil, fmt.Errorf("experiments: checkpoint %s: writing lockfile: %w", path, werr)
			}
			return func() error { return os.Remove(lock) }, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return nil, err
		}
		data, rerr := os.ReadFile(lock)
		if rerr != nil {
			if errors.Is(rerr, os.ErrNotExist) {
				continue // holder released between our create and read; retry
			}
			return nil, rerr
		}
		pid, perr := strconv.Atoi(strings.TrimSpace(string(data)))
		if perr == nil && pid > 0 && processAlive(pid) {
			return nil, fmt.Errorf("experiments: checkpoint %s is locked by running process %d (lockfile %s): refusing the concurrent open — two writers (say a topomapd server and a CLI sweep) would interleave appends; stop the other process or point the checkpoint elsewhere", path, pid, lock)
		}
		// Stale: the owner crashed before releasing (or the lockfile is
		// garbage). Steal it and retry the exclusive create once.
		if rmerr := os.Remove(lock); rmerr != nil && !errors.Is(rmerr, os.ErrNotExist) {
			return nil, rmerr
		}
	}
	return nil, fmt.Errorf("experiments: checkpoint %s: lockfile %s contested: could not acquire after stealing a stale lock", path, lock)
}

// processAlive reports whether pid names a currently running process, by
// signal-0 probe. A permission error still means "running" (someone else's
// process holds the lock).
func processAlive(pid int) bool {
	if pid == os.Getpid() {
		return true
	}
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	if err == nil {
		return true
	}
	if errors.Is(err, os.ErrProcessDone) || errors.Is(err, syscall.ESRCH) {
		return false
	}
	return true
}

// Len reports the number of restored records.
func (c *CheckpointFile) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.restored)
}

// Lookup returns the restored record for a key, if any.
func (c *CheckpointFile) Lookup(key string) (*CheckpointRecord, bool) {
	c.mu.Lock()
	rec, ok := c.restored[key]
	c.mu.Unlock()
	return rec, ok
}

// Restored returns the restored records sorted by key (deterministic order
// for warm-start loops).
func (c *CheckpointFile) Restored() []*CheckpointRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.restored))
	for k := range c.restored {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	recs := make([]*CheckpointRecord, len(keys))
	for i, k := range keys {
		recs[i] = c.restored[k]
	}
	return recs
}

// Append persists one checkpoint record crash-safely: the record is sealed,
// marshaled with its trailing newline into one buffer, written with a
// single write call and flushed to stable storage, so a crash between
// records never interleaves partial lines and a crash mid-write tears at
// most the final line — which the resume path skips and recomputes. Append
// failures do not fail the cell — the result is still correct in memory —
// but the first one is remembered and surfaced by Close.
func (c *CheckpointFile) Append(rec *CheckpointRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return
	}
	err := rec.Seal()
	var data []byte
	if err == nil {
		data, err = json.Marshal(rec)
	}
	if err == nil {
		data = append(data, '\n')
		_, err = c.f.Write(data)
	}
	if err == nil {
		err = c.f.Sync()
	}
	if err != nil && c.appendErr == nil {
		c.appendErr = err
	}
}

// Close closes the checkpoint, releases its lockfile, and reports the first
// append error encountered while it was open, if any. Idempotent.
func (c *CheckpointFile) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.appendErr
	if cerr := c.f.Close(); err == nil {
		err = cerr
	}
	if c.unlock != nil {
		if uerr := c.unlock(); err == nil {
			err = uerr
		}
		c.unlock = nil
	}
	c.f = nil
	c.restored = nil
	c.appendErr = nil
	return err
}

// SetCheckpoint enables checkpoint/resume against the given JSONL file: any
// records already present are loaded and served in place of recomputation
// (keyed by Cell.Key()), and every cell completed from now on is appended
// as it lands. It returns the number of restored cells. Errors are never
// checkpointed, so failed or budget-aborted cells are retried by the next
// run. Call CloseCheckpoint when the sweep ends. See OpenCheckpoint for the
// header validation, corruption tolerance and concurrent-open locking this
// inherits.
func (r *Runner) SetCheckpoint(path, grid string) (int, error) {
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	if r.ckpt != nil {
		return 0, errors.New("experiments: checkpoint already configured")
	}
	cf, err := OpenCheckpoint(path, grid)
	if err != nil {
		return 0, err
	}
	r.ckpt = cf
	return cf.Len(), nil
}

// lastNonBlank returns the index of the last line holding any content —
// the only line a mid-append crash can tear.
func lastNonBlank(lines [][]byte) int {
	for i := len(lines) - 1; i >= 0; i-- {
		if len(bytes.TrimSpace(lines[i])) > 0 {
			return i
		}
	}
	return -1
}

// warnSkippedRecord reports one skipped checkpoint line on stderr. A torn
// final line is the expected residue of a crash mid-append and says so; an
// interior bad line is more surprising but costs the same: that one cell is
// recomputed.
func warnSkippedRecord(path string, line int, final bool, why string) {
	kind := "corrupted record"
	if final {
		kind = "torn final record (crash mid-append?)"
	}
	//lint:ignore cellboundary best-effort stderr diagnostic; a skipped checkpoint line must degrade to one recomputed cell, never fail the resume
	fmt.Fprintf(os.Stderr, "experiments: checkpoint %s line %d: skipping %s (%s); that cell will be recomputed\n", path, line+1, kind, why)
}

// CloseCheckpoint closes the checkpoint file, releases its lockfile, and
// reports the first append error encountered while the sweep ran, if any. A
// no-op when no checkpoint was configured.
func (r *Runner) CloseCheckpoint() error {
	r.ckptMu.Lock()
	defer r.ckptMu.Unlock()
	if r.ckpt == nil {
		return nil
	}
	err := r.ckpt.Close()
	r.ckpt = nil
	return err
}

// checkpoint returns the configured checkpoint, if any.
func (r *Runner) checkpoint() *CheckpointFile {
	r.ckptMu.Lock()
	cf := r.ckpt
	r.ckptMu.Unlock()
	return cf
}

// restoredRecord returns the checkpointed record for a key, if any.
func (r *Runner) restoredRecord(key string) (*CheckpointRecord, bool) {
	cf := r.checkpoint()
	if cf == nil {
		return nil, false
	}
	return cf.Lookup(key)
}

// appendCheckpoint persists one completed cell.
func (r *Runner) appendCheckpoint(key string, run *repro.Run) {
	r.appendRecord(RecordForRun(key, run))
}

// appendRecord persists one checkpoint record, if a checkpoint is
// configured. See CheckpointFile.Append for the crash-safety contract.
func (r *Runner) appendRecord(rec *CheckpointRecord) {
	if cf := r.checkpoint(); cf != nil {
		cf.Append(rec)
	}
}
