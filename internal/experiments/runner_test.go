package experiments

import (
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// smallGrid is a cheap but non-trivial grid: two fast kernels, two
// machines, three schemes.
func smallGrid(t *testing.T) []Cell {
	t.Helper()
	fig5, err := workloads.ByName("fig5")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := workloads.ByName("sp")
	if err != nil {
		t.Fatal(err)
	}
	return Grid(
		[]*topology.Machine{topology.Dunnington(), topology.Nehalem()},
		[]*workloads.Kernel{fig5, sp},
		[]repro.Scheme{repro.SchemeBase, repro.SchemeTopologyAware, repro.SchemeCombined},
		repro.DefaultConfig())
}

// TestRunCellsDeterministic asserts the paper-grid guarantee the README
// documents: the aggregated results are identical at any pool size —
// results are keyed by cell, never by completion order.
func TestRunCellsDeterministic(t *testing.T) {
	cells := smallGrid(t)
	cycles := func(workers int) []uint64 {
		r := NewRunner()
		r.SetWorkers(workers)
		runs, err := r.RunCells(cells)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out := make([]uint64, len(runs))
		for i, run := range runs {
			out[i] = run.Sim.TotalCycles
		}
		return out
	}
	want := cycles(1)
	for _, j := range []int{2, 8} {
		got := cycles(j)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: cell %d (%s) = %d cycles, serial harness got %d",
					j, i, cells[i].Key(), got[i], want[i])
			}
		}
	}
}

// stripDurations blanks measured wall-clock tokens (map-time columns in
// Fig16/CompileTime). Those columns report real elapsed time, so they are
// not reproducible between any two runs — serial or parallel — and are
// excluded from the byte-identity guarantee, which covers every simulated
// quantity (cycles, miss rates, ratios, group counts).
var durationToken = regexp.MustCompile(`[0-9][0-9.µa-z]*s`)
var spaceRun = regexp.MustCompile(` +`)

func stripDurations(s string) string {
	// Collapse space runs too: column padding tracks the width of the
	// duration strings being blanked.
	return spaceRun.ReplaceAllString(durationToken.ReplaceAllString(s, "_"), " ")
}

// TestDriverOutputIdenticalAcrossWorkers runs full experiment drivers at
// -j 1/2/8 and requires byte-identical rendered tables (modulo measured
// wall-clock columns, see stripDurations).
func TestDriverOutputIdenticalAcrossWorkers(t *testing.T) {
	opt := smallOpt(t)
	render := func(workers int) string {
		r := NewRunner()
		r.SetWorkers(workers)
		var b strings.Builder
		f13, err := Fig13(r, opt)
		if err != nil {
			t.Fatalf("workers=%d fig13: %v", workers, err)
		}
		b.WriteString(f13.Rendered)
		for _, drv := range []func(*Runner, Options) (string, error){Fig15, Fig16, AlphaBeta} {
			out, err := drv(r, opt)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			b.WriteString(stripDurations(out))
		}
		return b.String()
	}
	want := render(1)
	for _, j := range []int{2, 8} {
		if got := render(j); got != want {
			t.Errorf("driver output at %d workers differs from serial output", j)
		}
	}
}

// TestDriverOutputIdenticalAcrossSimWorkers runs full experiment drivers
// with the set-partitioned simulator at -simworkers 1/2/4/8 and requires
// byte-identical rendered tables (modulo measured wall-clock columns, see
// stripDurations): the intra-cell worker count is an execution knob, never
// an experimental variable.
func TestDriverOutputIdenticalAcrossSimWorkers(t *testing.T) {
	opt := smallOpt(t)
	render := func(simWorkers int) string {
		r := NewRunner()
		r.SetSimWorkers(simWorkers)
		var b strings.Builder
		f13, err := Fig13(r, opt)
		if err != nil {
			t.Fatalf("simworkers=%d fig13: %v", simWorkers, err)
		}
		b.WriteString(f13.Rendered)
		for _, drv := range []func(*Runner, Options) (string, error){Fig15, Fig16, AlphaBeta} {
			out, err := drv(r, opt)
			if err != nil {
				t.Fatalf("simworkers=%d: %v", simWorkers, err)
			}
			b.WriteString(stripDurations(out))
		}
		return b.String()
	}
	want := render(1)
	for _, n := range []int{2, 4, 8} {
		if got := render(n); got != want {
			t.Errorf("driver output at %d sim workers differs from the sequential engine's", n)
		}
	}
}

// TestRunCellsDedup: the same grid point requested twice must be computed
// once and yield the same *Run.
func TestRunCellsDedup(t *testing.T) {
	fig5, _ := workloads.ByName("fig5")
	m := topology.Dunnington()
	c := Cell{Kernel: fig5, Machine: m, Scheme: repro.SchemeBase, Config: repro.DefaultConfig()}
	r := NewRunner()
	r.SetWorkers(4)
	runs, err := r.RunCells([]Cell{c, c, c})
	if err != nil {
		t.Fatal(err)
	}
	if runs[0] != runs[1] || runs[1] != runs[2] {
		t.Error("duplicate cells returned distinct runs")
	}
	if n := r.Metrics().Len(); n != 1 {
		t.Errorf("expected 1 computed cell, metrics recorded %d", n)
	}
}

// TestRunCellsError: a failing cell reports its error, and the result
// slice keeps positional correspondence with nil at the failed cell.
func TestRunCellsError(t *testing.T) {
	fig5, _ := workloads.ByName("fig5")
	m := topology.Dunnington()
	cfg := repro.DefaultConfig()
	good := Cell{Kernel: fig5, Machine: m, Scheme: repro.SchemeBase, Config: cfg}
	bad := Cell{Kernel: fig5, Machine: m, Scheme: repro.Scheme(99), Config: cfg}
	r := NewRunner()
	r.SetWorkers(2)
	runs, err := r.RunCells([]Cell{good, bad})
	if err == nil {
		t.Fatal("expected error from unknown scheme")
	}
	if runs[0] == nil || runs[1] != nil {
		t.Errorf("positional results wrong: good=%v bad=%v", runs[0], runs[1])
	}
}

// TestProgressReporting: every computed cell produces one update, done
// counts stay in range, and the final update reports done == total.
func TestProgressReporting(t *testing.T) {
	cells := smallGrid(t)
	r := NewRunner()
	r.SetWorkers(4)
	var mu sync.Mutex
	var dones []int
	lastTotal := 0
	r.SetProgress(func(done, total int, elapsed, eta time.Duration) {
		mu.Lock()
		dones = append(dones, done)
		lastTotal = total
		mu.Unlock()
	})
	if err := r.Prefetch(cells); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(dones) != len(cells) {
		t.Fatalf("got %d progress updates, want %d", len(dones), len(cells))
	}
	if lastTotal != len(cells) {
		t.Errorf("total = %d, want %d", lastTotal, len(cells))
	}
	seen := make(map[int]bool)
	for _, d := range dones {
		if d < 1 || d > len(cells) || seen[d] {
			t.Fatalf("bad done sequence %v", dones)
		}
		seen[d] = true
	}
	if !seen[len(cells)] {
		t.Errorf("final update missing: %v", dones)
	}
}

// TestStreamedCellsUnderWorkerPool exercises the streaming trace path —
// every cell feeds its simulator from lazy cursors — across a Fig 17-weak
// style grid of scaled kernels on scaled machines at -j 8, and requires the
// pooled results to equal the serial harness. Run under -race (the full
// verify recipe does) this also checks the generators share no mutable
// state between concurrently simulated cells.
func TestStreamedCellsUnderWorkerPool(t *testing.T) {
	var cells []Cell
	for _, name := range []string{"galgel", "bodytrack"} {
		for _, cores := range []int{12, 24} {
			k, err := workloads.Scaled(name, (cores+11)/12) // the Fig17Weak growth rule
			if err != nil {
				t.Fatal(err)
			}
			m, err := topology.ScaleDunnington(cores)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range []repro.Scheme{repro.SchemeBase, repro.SchemeTopologyAware} {
				cells = append(cells, Cell{Kernel: k, Machine: m, Scheme: s, Config: repro.DefaultConfig()})
			}
		}
	}
	cycles := func(workers int) []uint64 {
		r := NewRunner()
		r.SetWorkers(workers)
		runs, err := r.RunCells(cells)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out := make([]uint64, len(runs))
		for i, run := range runs {
			out[i] = run.Sim.TotalCycles
		}
		return out
	}
	want := cycles(1)
	got := cycles(8)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("j=8: streamed cell %d (%s) = %d cycles, serial got %d",
				i, cells[i].Key(), got[i], want[i])
		}
	}
}

// TestCrossEvaluateMemoized: cross-machine cells are cached like any other.
func TestCrossEvaluateMemoized(t *testing.T) {
	fig5, _ := workloads.ByName("fig5")
	r := NewRunner()
	cfg := repro.DefaultConfig()
	a, err := r.CrossEvaluate(fig5, topology.Dunnington(), topology.Nehalem(), repro.SchemeCombined, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.CrossEvaluate(fig5, topology.Dunnington(), topology.Nehalem(), repro.SchemeCombined, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cross-evaluation was not memoized")
	}
	// The native cell must not collide with the cross cell.
	native, err := r.Evaluate(fig5, topology.Nehalem(), repro.SchemeCombined, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if native == a {
		t.Error("cross cell collided with native cell")
	}
}

// TestCellMetricsRecorded: every computed cell logs wall time and cycles.
func TestCellMetricsRecorded(t *testing.T) {
	cells := smallGrid(t)
	r := NewRunner()
	r.SetWorkers(2)
	if err := r.Prefetch(cells); err != nil {
		t.Fatal(err)
	}
	stats := r.Metrics().Stats()
	if len(stats) == 0 {
		t.Fatal("no cell metrics recorded")
	}
	for _, s := range stats {
		if s.Wall <= 0 {
			t.Errorf("cell %s: non-positive wall time", s.Key)
		}
		if s.SimCycles == 0 {
			t.Errorf("cell %s: zero simulated cycles", s.Key)
		}
		if s.Accesses == 0 {
			t.Errorf("cell %s: zero simulated accesses", s.Key)
		}
	}
	if sum := r.Metrics().Summary(3); !strings.Contains(sum, "cells") {
		t.Errorf("summary malformed: %q", sum)
	}
}
