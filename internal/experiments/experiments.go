package experiments

import (
	"fmt"

	"repro"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// Options trims experiment cost for tests and quick runs.
type Options struct {
	// Kernels restricts the workload set (nil = all twelve).
	Kernels []*workloads.Kernel
	// Quick shrinks sweeps (fewer block sizes, fewer optimal evals).
	Quick bool
}

func (o Options) kernels() []*workloads.Kernel {
	if len(o.Kernels) > 0 {
		return o.Kernels
	}
	return workloads.All()
}

// ratio returns scheme cycles normalized to Base cycles for the kernel on
// the machine.
func (r *Runner) ratio(k *workloads.Kernel, m *topology.Machine, s repro.Scheme, cfg repro.Config) (float64, error) {
	base, err := r.Evaluate(k, m, repro.SchemeBase, cfg)
	if err != nil {
		return 0, err
	}
	run, err := r.Evaluate(k, m, s, cfg)
	if err != nil {
		return 0, err
	}
	return float64(run.Sim.TotalCycles) / float64(base.Sim.TotalCycles), nil
}

// Table1 renders the machine-parameter table.
func Table1() string {
	t := metrics.NewTable("Table 1: machine parameters",
		"cores", "clock", "L1", "L2", "L3", "mem")
	for _, m := range topology.Commercial() {
		cell := func(level int) string {
			caches := m.CachesAtLevel(level)
			if len(caches) == 0 {
				return "-"
			}
			c := caches[0]
			return fmt.Sprintf("%dx %dKB/%dw/%dcyc", len(caches), c.SizeBytes>>10, c.Assoc, c.Latency)
		}
		t.AddRow(m.Name,
			fmt.Sprintf("%d", m.NumCores()),
			fmt.Sprintf("%.1fGHz", m.ClockGHz),
			cell(1), cell(2), cell(3),
			fmt.Sprintf("%dcyc", m.MemLatency))
	}
	return t.String()
}

// Table2 renders the application table.
func Table2(opt Options) string {
	out := "Table 2: applications (scaled datasets; paper originals span 4.6MB-2.8GB)\n"
	for _, k := range opt.kernels() {
		out += k.String() + "\n"
	}
	return out
}

// Fig2 reproduces the motivation figure: galgel customized for each of the
// three machines, executed on each of the three machines, normalized per
// execution machine to the best-performing version.
func Fig2(r *Runner) (string, error) {
	machines := topology.Commercial()
	k := repro.KernelByNameMust("galgel")
	cfg := repro.DefaultConfig()
	// Enumerate every (map machine, run machine) cell up front and execute
	// them on the worker pool; the rendering loop below then reads
	// memoized results in deterministic order. Prefetch errors are
	// deliberately dropped: the serial path re-reports them with the
	// figure's own context.
	var cells []Cell
	for _, runM := range machines {
		for _, mapM := range machines {
			c := Cell{Kernel: k, Machine: runM, Scheme: repro.SchemeCombined, Config: cfg}
			if mapM.Name != runM.Name {
				c.MapMachine = mapM
			}
			cells = append(cells, c)
		}
	}
	_ = r.Prefetch(cells)
	cycles := make(map[string]map[string]uint64) // run machine -> version -> cycles
	for _, runM := range machines {
		cycles[runM.Name] = make(map[string]uint64)
		for _, mapM := range machines {
			var run *repro.Run
			var err error
			if mapM.Name == runM.Name {
				run, err = r.Evaluate(k, runM, repro.SchemeCombined, cfg)
			} else {
				run, err = r.CrossEvaluate(k, mapM, runM, repro.SchemeCombined, cfg)
			}
			if err != nil {
				return "", fmt.Errorf("fig2 %s on %s: %w", mapM.Name, runM.Name, err)
			}
			cycles[runM.Name][mapM.Name] = run.Sim.TotalCycles
		}
	}
	t := metrics.NewTable("Figure 2: galgel versions across machines (normalized to best per execution machine)",
		"Harpertown-ver", "Nehalem-ver", "Dunnington-ver")
	for _, runM := range machines {
		// Take the minimum in machine-list order, not map order: the result
		// is the same either way, but the deterministic form is provable by
		// topovet's nondeterminism pass.
		best := cycles[runM.Name]["Harpertown"]
		for _, mapM := range machines {
			if v := cycles[runM.Name][mapM.Name]; v < best {
				best = v
			}
		}
		t.AddRatios("on "+runM.Name,
			float64(cycles[runM.Name]["Harpertown"])/float64(best),
			float64(cycles[runM.Name]["Nehalem"])/float64(best),
			float64(cycles[runM.Name]["Dunnington"])/float64(best))
	}
	return t.String(), nil
}

// Fig13Result carries the main-evaluation outcome for reuse by callers.
type Fig13Result struct {
	// PerMachine[machine][kernel] = [Base+, TopologyAware] ratios vs Base.
	PerMachine map[string]map[string][2]float64
	// AvgBasePlus and AvgTopology are arithmetic means per machine.
	AvgBasePlus map[string]float64
	AvgTopology map[string]float64
	// MissReduction[level] = fractional reduction of Dunnington cache
	// misses at the level, TopologyAware vs Base (paper: 18/39/47%).
	MissReductionVsBase map[int]float64
	// MissReductionVsBasePlus: same vs Base+ (paper: 16/31/37%).
	MissReductionVsBasePlus map[int]float64
	Rendered                string
}

// Fig13 reproduces the main evaluation: Base, Base+ and TopologyAware on
// the three commercial machines, normalized to Base, with the cache-miss
// reduction summary for Dunnington.
func Fig13(r *Runner, opt Options) (*Fig13Result, error) {
	machines := topology.Commercial()
	cfg := repro.DefaultConfig()
	_ = r.Prefetch(Grid(machines, opt.kernels(),
		[]repro.Scheme{repro.SchemeBase, repro.SchemeBasePlus, repro.SchemeTopologyAware}, cfg))
	res := &Fig13Result{
		PerMachine:              make(map[string]map[string][2]float64),
		AvgBasePlus:             make(map[string]float64),
		AvgTopology:             make(map[string]float64),
		MissReductionVsBase:     make(map[int]float64),
		MissReductionVsBasePlus: make(map[int]float64),
	}
	out := ""
	for _, m := range machines {
		t := metrics.NewTable(
			fmt.Sprintf("Figure 13 (%s): normalized execution cycles", m.Name),
			"Base", "Base+", "TopologyAware")
		per := make(map[string][2]float64)
		var bp, ta []float64
		for _, k := range opt.kernels() {
			rbp, err1 := r.ratio(k, m, repro.SchemeBasePlus, cfg)
			rta, err2 := r.ratio(k, m, repro.SchemeTopologyAware, cfg)
			if err1 != nil || err2 != nil {
				// Degrade cell by cell: the failed kernel renders as "fail"
				// and drops out of the averages; every completed kernel is
				// reported exactly as it would be in a clean run. The
				// failure details stay queryable via Runner.Failures.
				t.AddRow(k.Name, "fail", "fail", "fail")
				continue
			}
			per[k.Name] = [2]float64{rbp, rta}
			bp = append(bp, rbp)
			ta = append(ta, rta)
			t.AddRatios(k.Name, 1.0, rbp, rta)
		}
		if len(bp) == 0 {
			return nil, fmt.Errorf("fig13 %s: every kernel failed (%d failures recorded)", m.Name, len(r.Failures()))
		}
		t.AddRatios("average", 1.0, metrics.Mean(bp), metrics.Mean(ta))
		res.PerMachine[m.Name] = per
		res.AvgBasePlus[m.Name] = metrics.Mean(bp)
		res.AvgTopology[m.Name] = metrics.Mean(ta)
		out += t.String() + "\n"
	}

	// Dunnington miss reductions, accumulated over the kernels for which
	// all three schemes completed so the comparison stays apples-to-apples
	// under partial failure.
	dun := topology.Dunnington()
	var missBase, missBP, missTA [4]uint64
	counted := 0
kernels:
	for _, k := range opt.kernels() {
		var delta [3][4]uint64
		for si, scheme := range []repro.Scheme{repro.SchemeBase, repro.SchemeBasePlus, repro.SchemeTopologyAware} {
			run, err := r.Evaluate(k, dun, scheme, cfg)
			if err != nil {
				continue kernels
			}
			for l := 1; l <= 3; l++ {
				delta[si][l] = run.Sim.Misses(l)
			}
		}
		for l := 1; l <= 3; l++ {
			missBase[l] += delta[0][l]
			missBP[l] += delta[1][l]
			missTA[l] += delta[2][l]
		}
		counted++
	}
	if counted == 0 {
		res.Rendered = out + "Dunnington cache miss reduction: unavailable (all kernels failed)\n"
		return res, nil
	}
	out += "Dunnington cache miss reduction by TopologyAware:\n"
	for l := 1; l <= 3; l++ {
		vsBase := 1 - float64(missTA[l])/float64(missBase[l])
		vsBP := 1 - float64(missTA[l])/float64(missBP[l])
		res.MissReductionVsBase[l] = vsBase
		res.MissReductionVsBasePlus[l] = vsBP
		out += fmt.Sprintf("  L%d: %5.1f%% vs Base, %5.1f%% vs Base+ (paper: %s)\n",
			l, vsBase*100, vsBP*100, [4]string{"", "18%/16%", "39%/31%", "47%/37%"}[l])
	}
	res.Rendered = out
	return res, nil
}

// Fig14 reproduces the cross-machine penalty study: versions optimized for
// one machine executed on another, normalized to the native version.
func Fig14(r *Runner, opt Options) (string, error) {
	machines := topology.Commercial()
	cfg := repro.DefaultConfig()
	var cells []Cell
	for _, runM := range machines {
		for _, k := range opt.kernels() {
			cells = append(cells, Cell{Kernel: k, Machine: runM, Scheme: repro.SchemeCombined, Config: cfg})
			for _, mapM := range machines {
				if mapM.Name != runM.Name {
					cells = append(cells, Cell{Kernel: k, Machine: runM, MapMachine: mapM, Scheme: repro.SchemeCombined, Config: cfg})
				}
			}
		}
	}
	_ = r.Prefetch(cells)
	out := ""
	for _, runM := range machines {
		t := metrics.NewTable(
			fmt.Sprintf("Figure 14 (executing on %s): foreign versions vs native (ratio > 1 = slowdown)", runM.Name),
			"native", machines[0].Name+"-ver", machines[1].Name+"-ver", machines[2].Name+"-ver")
		var sums [3]float64
		n := 0
		for _, k := range opt.kernels() {
			native, err := r.Evaluate(k, runM, repro.SchemeCombined, cfg)
			if err != nil {
				return "", err
			}
			row := make([]float64, 0, 4)
			row = append(row, 1.0)
			for vi, mapM := range machines {
				var cyc uint64
				if mapM.Name == runM.Name {
					cyc = native.Sim.TotalCycles
				} else {
					run, err := r.CrossEvaluate(k, mapM, runM, repro.SchemeCombined, cfg)
					if err != nil {
						return "", err
					}
					cyc = run.Sim.TotalCycles
				}
				ratio := float64(cyc) / float64(native.Sim.TotalCycles)
				row = append(row, ratio)
				sums[vi] += ratio
			}
			n++
			t.AddRatios(k.Name, row...)
		}
		t.AddRatios("average", 1.0, sums[0]/float64(n), sums[1]/float64(n), sums[2]/float64(n))
		out += t.String() + "\n"
	}
	return out, nil
}

// Fig15 reproduces the scheduling study on Dunnington: TopologyAware
// (distribution only), Local (reorganization only) and Combined.
func Fig15(r *Runner, opt Options) (string, error) {
	m := topology.Dunnington()
	cfg := repro.DefaultConfig()
	_ = r.Prefetch(ratioCells(m, opt.kernels(),
		[]repro.Scheme{repro.SchemeTopologyAware, repro.SchemeLocal, repro.SchemeCombined}, cfg))
	t := metrics.NewTable("Figure 15 (Dunnington): influence of local scheduling (normalized to Base)",
		"TopologyAware", "Local", "Combined")
	var ta, lo, co []float64
	for _, k := range opt.kernels() {
		rta, err1 := r.ratio(k, m, repro.SchemeTopologyAware, cfg)
		rlo, err2 := r.ratio(k, m, repro.SchemeLocal, cfg)
		rco, err3 := r.ratio(k, m, repro.SchemeCombined, cfg)
		if err1 != nil || err2 != nil || err3 != nil {
			// Same degradation contract as Fig13: the row reads "fail", the
			// averages skip it, the rest of the table is unaffected.
			t.AddRow(k.Name, "fail", "fail", "fail")
			continue
		}
		ta, lo, co = append(ta, rta), append(lo, rlo), append(co, rco)
		t.AddRatios(k.Name, rta, rlo, rco)
	}
	if len(ta) == 0 {
		return "", fmt.Errorf("fig15: every kernel failed (%d failures recorded)", len(r.Failures()))
	}
	t.AddRatios("average", metrics.Mean(ta), metrics.Mean(lo), metrics.Mean(co))
	return t.String(), nil
}
