package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// ReplayBundle is the on-disk record of one failed self-check: everything
// needed to re-execute exactly that cell — kernel, machines, scheme, the
// distinguishing config fields and the chaos seed — plus what failed, for
// the human reading it. benchtool -replay <bundle> re-runs the cell with
// full checking and a materialized trace.
//
// Only named kernels and machines replay: a scaled kernel ("<name>-x4") or
// a synthesized machine has no registry entry to rebuild it from, and the
// load reports that clearly instead of replaying the wrong cell.
type ReplayBundle struct {
	// Key is the failing cell's canonical identity (Cell.Key()).
	Key string `json:"key"`
	// Kernel and Machine name the cell's workload and execution machine.
	Kernel  string `json:"kernel"`
	Machine string `json:"machine"`
	// MapMachine names the mapping machine for cross-evaluated cells.
	MapMachine string `json:"map_machine,omitempty"`
	// Scheme is the mapping scheme (repro.Scheme ordinal); SchemeName
	// restates it for readers.
	Scheme     int    `json:"scheme"`
	SchemeName string `json:"scheme_name"`
	// Config carries the cell's distinguishing configuration.
	Config BundleConfig `json:"config"`
	// ChaosSeed is the fault-injector seed the cell ran under (0 = none)
	// and Fault the class it resolved to for this cell.
	ChaosSeed int64  `json:"chaos_seed,omitempty"`
	Fault     string `json:"fault,omitempty"`
	// Stage, Error and AccessIndex describe the detection: the runner's
	// failure stage, the error text, and the access-stream position the
	// check fired at (-1 when the failure is not tied to one access).
	Stage       string `json:"stage"`
	Error       string `json:"error"`
	AccessIndex int64  `json:"access_index"`
	// Attempts is how many evaluation attempts the cell made before the
	// bundle was written.
	Attempts int `json:"attempts"`
}

// BundleConfig is repro.Config flattened to JSON-stable scalars. MapView is
// stored by machine name (repro.Config holds a pointer whose node tree has
// parent cycles JSON cannot express).
type BundleConfig struct {
	BlockBytes       int64   `json:"block_bytes"`
	BalanceThreshold float64 `json:"balance_threshold"`
	Alpha            float64 `json:"alpha"`
	Beta             float64 `json:"beta"`
	Deps             int     `json:"deps"`
	MaxGroups        int     `json:"max_groups,omitempty"`
	MapView          string  `json:"map_view,omitempty"`
	NoMergeCap       bool    `json:"no_merge_cap,omitempty"`
	NoPolish         bool    `json:"no_polish,omitempty"`
	HammingSched     bool    `json:"hamming_sched,omitempty"`
	Passes           int     `json:"passes,omitempty"`
	MaxSimCycles     uint64  `json:"max_sim_cycles,omitempty"`
}

// bundleConfig flattens a cell's config for the bundle.
//
//topovet:keyof repro.Config exempt=Materialize,Check,ChaosSeed,SimWorkers -- replay pins Materialize and CheckFull on reconstruction, the chaos seed rides the bundle's own ChaosSeed field, and SimWorkers is an execution knob replay deliberately resets: re-execution uses the default sequential loop, whose output is byte-identical anyway
func bundleConfig(cfg repro.Config) BundleConfig {
	b := BundleConfig{
		BlockBytes:       cfg.BlockBytes,
		BalanceThreshold: cfg.BalanceThreshold,
		Alpha:            cfg.Alpha,
		Beta:             cfg.Beta,
		Deps:             int(cfg.Deps),
		MaxGroups:        cfg.MaxGroups,
		NoMergeCap:       cfg.NoMergeCap,
		NoPolish:         cfg.NoPolish,
		HammingSched:     cfg.HammingSched,
		Passes:           cfg.Passes,
		MaxSimCycles:     cfg.MaxSimCycles,
	}
	if cfg.MapView != nil {
		b.MapView = cfg.MapView.Name
	}
	return b
}

// bundleStages are the failure stages worth a replay bundle: the
// self-checking detections plus contained panics. Budget and cancellation
// failures are execution-guard outcomes, not suspected simulator bugs.
func bundleStage(stage string) bool {
	return stage == "invariant" || stage == "diverged" || stage == "oracle" || stage == "panic"
}

// writeReplayBundle persists a replay bundle for a qualifying cell failure
// and records its path in the CellError. Write failures are reported on
// stderr but never mask the cell's own error.
func (r *Runner) writeReplayBundle(c Cell, ce *CellError) {
	r.mu.Lock()
	dir := r.replayDir
	seed := r.chaosSeed
	r.mu.Unlock()
	if dir == "" || !bundleStage(ce.Stage) {
		return
	}
	if c.Config.ChaosSeed != 0 {
		seed = c.Config.ChaosSeed
	}
	b := &ReplayBundle{
		Key:         ce.Key,
		Scheme:      int(c.Scheme),
		SchemeName:  c.Scheme.String(),
		Config:      bundleConfig(c.Config),
		ChaosSeed:   seed,
		Stage:       ce.Stage,
		Error:       ce.Err.Error(),
		AccessIndex: -1,
		Attempts:    ce.Attempts,
	}
	if c.Kernel != nil {
		b.Kernel = c.Kernel.Name
	}
	if c.Machine != nil {
		b.Machine = c.Machine.Name
	}
	if c.MapMachine != nil {
		b.MapMachine = c.MapMachine.Name
	}
	var ie *repro.InvariantError
	var de *repro.DivergenceError
	switch {
	case errors.As(ce.Err, &ie):
		b.AccessIndex = ie.AccessIndex
	case errors.As(ce.Err, &de):
		b.AccessIndex = de.AccessIndex
	}
	if seed != 0 {
		if f, ok := repro.ChaosFaultFor(seed, b.Kernel, b.Machine, b.MapMachine, c.Scheme); ok {
			b.Fault = f.String()
		}
	}
	path := filepath.Join(dir, bundleFilename(ce.Key))
	data, err := json.MarshalIndent(b, "", "  ")
	if err == nil {
		err = os.MkdirAll(dir, 0o755)
	}
	if err == nil {
		err = os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if err != nil {
		//lint:ignore cellboundary best-effort stderr diagnostic; a bundle that cannot be written must not turn a contained cell failure into a sweep failure
		fmt.Fprintf(os.Stderr, "experiments: replay bundle for %s: %v\n", ce.Key, err)
		return
	}
	ce.Bundle = path
}

// bundleFilename derives a deterministic, filesystem-safe name from the
// cell key, so re-running the same failing sweep overwrites rather than
// accumulates.
func bundleFilename(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key)) //lint:ignore cellboundary hash.Hash.Write never returns an error (hash package contract)
	return fmt.Sprintf("replay-%016x.json", h.Sum64())
}

// LoadBundle reads a replay bundle written by a previous run.
func LoadBundle(path string) (*ReplayBundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b := &ReplayBundle{}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("experiments: replay bundle %s: %w", path, err)
	}
	if b.Kernel == "" || b.Machine == "" {
		return nil, fmt.Errorf("experiments: replay bundle %s names no kernel/machine", path)
	}
	return b, nil
}

// Cell reconstructs the failing cell from the bundle with the replay
// overrides applied: full checking, a materialized trace, and the original
// chaos seed so the same fault is re-injected. Kernels and machines resolve
// by registry name; scaled or synthesized ones cannot be rebuilt from a
// name and return a descriptive error.
//
//topovet:keyof repro.Config exempt=SimWorkers -- replay re-executes on the default sequential event loop; the worker count never changes results, so a bundle does not carry one
func (b *ReplayBundle) Cell() (Cell, error) {
	k, err := workloads.ByName(b.Kernel)
	if err != nil {
		return Cell{}, fmt.Errorf("experiments: replay: kernel %q is not a named Table 2 kernel (scaled/custom kernels cannot be replayed from a bundle): %w", b.Kernel, err)
	}
	m, err := topology.ByName(b.Machine)
	if err != nil {
		return Cell{}, fmt.Errorf("experiments: replay: machine %q is not a named machine: %w", b.Machine, err)
	}
	c := Cell{Kernel: k, Machine: m}
	if b.MapMachine != "" {
		if c.MapMachine, err = topology.ByName(b.MapMachine); err != nil {
			return Cell{}, fmt.Errorf("experiments: replay: mapping machine %q is not a named machine: %w", b.MapMachine, err)
		}
	}
	if b.Scheme < 0 || repro.Scheme(b.Scheme) > repro.SchemeCombined {
		return Cell{}, fmt.Errorf("experiments: replay: scheme ordinal %d out of range", b.Scheme)
	}
	c.Scheme = repro.Scheme(b.Scheme)
	bc := b.Config
	c.Config = repro.Config{
		BlockBytes:       bc.BlockBytes,
		BalanceThreshold: bc.BalanceThreshold,
		Alpha:            bc.Alpha,
		Beta:             bc.Beta,
		Deps:             repro.DepsMode(bc.Deps),
		MaxGroups:        bc.MaxGroups,
		NoMergeCap:       bc.NoMergeCap,
		NoPolish:         bc.NoPolish,
		HammingSched:     bc.HammingSched,
		Passes:           bc.Passes,
		MaxSimCycles:     bc.MaxSimCycles,
		Materialize:      true,
		Check:            repro.CheckFull,
		ChaosSeed:        b.ChaosSeed,
	}
	if bc.MapView != "" {
		if c.Config.MapView, err = topology.ByName(bc.MapView); err != nil {
			return Cell{}, fmt.Errorf("experiments: replay: map-view machine %q is not a named machine: %w", bc.MapView, err)
		}
	}
	return c, nil
}

// Replay re-executes the bundle's cell with the replay overrides and
// returns what the fresh evaluation produced. A reproduced failure comes
// back as the error (classify it with StageOf); a nil error means the
// failure did not reproduce.
func Replay(ctx context.Context, b *ReplayBundle) (*repro.Run, error) {
	c, err := b.Cell()
	if err != nil {
		return nil, err
	}
	if c.MapMachine != nil {
		return repro.CrossEvaluateContext(ctx, c.Kernel, c.MapMachine, c.Machine, c.Scheme, c.Config)
	}
	return repro.EvaluateContext(ctx, c.Kernel, c.Machine, c.Scheme, c.Config)
}

// StageOf classifies an evaluation error the way the runner does
// ("invariant", "diverged", "panic", ...), for callers comparing a replay
// outcome against a bundle's recorded stage.
func StageOf(err error) string {
	var ce *CellError
	if errors.As(err, &ce) {
		return ce.Stage
	}
	stage, _ := classifyStage(err)
	return stage
}
