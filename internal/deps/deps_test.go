package deps

import (
	"testing"

	"repro/internal/poly"
	"repro/internal/tags"
)

// wavefrontSetup builds a 1-D loop A[j] = f(A[j-dist]) with block-sized
// groups, returning everything the analyses need.
func wavefrontSetup(n, dist, blockElems int64) ([]poly.Point, []*poly.Ref, *poly.Layout, *tags.Tagging) {
	a := poly.NewArray("A", n)
	nest := poly.NewNest(poly.RectLoop("j", dist, n-1))
	refs := []*poly.Ref{
		poly.NewRef(a, poly.Read, poly.Var(0, 1).AddConst(-dist)),
		poly.NewRef(a, poly.Write, poly.Var(0, 1)),
	}
	layout := poly.NewLayout(blockElems*8, a)
	iters := nest.Points()
	return iters, refs, layout, tags.Compute(iters, refs, layout)
}

// parallelSetup builds a fully parallel loop B[j] = A[j] + A[j+1].
func parallelSetup(n int64) ([]poly.Point, []*poly.Ref, *poly.Layout, *tags.Tagging) {
	a := poly.NewArray("A", n+1)
	b := poly.NewArray("B", n)
	nest := poly.NewNest(poly.RectLoop("j", 0, n-1))
	refs := []*poly.Ref{
		poly.NewRef(a, poly.Read, poly.Var(0, 1)),
		poly.NewRef(a, poly.Read, poly.Var(0, 1).AddConst(1)),
		poly.NewRef(b, poly.Write, poly.Var(0, 1)),
	}
	layout := poly.NewLayout(256, a, b)
	iters := nest.Points()
	return iters, refs, layout, tags.Compute(iters, refs, layout)
}

func TestAnalyzeFullyParallel(t *testing.T) {
	iters, refs, layout, tg := parallelSetup(256)
	dg, selfDep := Analyze(iters, tg)
	if dg.NumEdges() != 0 {
		t.Fatalf("parallel loop has %d group dep edges", dg.NumEdges())
	}
	for i, s := range selfDep {
		if s {
			t.Fatalf("parallel loop group %d flagged selfDep", i)
		}
	}
	if HasLoopCarried(iters, refs, layout) {
		t.Fatal("parallel loop flagged as carrying dependences")
	}
}

func TestAnalyzeWavefront(t *testing.T) {
	iters, refs, layout, tg := wavefrontSetup(1024, 256, 32)
	dg, _ := Analyze(iters, tg)
	if dg.NumEdges() == 0 {
		t.Fatal("wavefront has no group dependences")
	}
	if !HasLoopCarried(iters, refs, layout) {
		t.Fatal("wavefront not flagged as carrying dependences")
	}
	// Flow direction: the group writing block b precedes the group
	// reading it; the reader comes later in program order, so edges go
	// from earlier groups to later ones here.
	for u := 0; u < dg.N(); u++ {
		for _, v := range dg.Succ(u) {
			// group IDs are first-appearance ordered: u wrote earlier.
			if u >= v {
				t.Fatalf("edge %d -> %d against program order", u, v)
			}
		}
	}
}

func TestSelfDepDetection(t *testing.T) {
	// dist smaller than a block: writer and reader in the same group.
	iters, _, _, tg := wavefrontSetup(1024, 8, 64)
	_, selfDep := Analyze(iters, tg)
	any := false
	for _, s := range selfDep {
		any = any || s
	}
	if !any {
		t.Fatal("intra-block dependences not flagged as selfDep")
	}
}

func TestIterationDepsKinds(t *testing.T) {
	// A[j] = A[j-1]: flow (j-1 writes, j reads) and anti (j reads j, j+1
	// writes j... actually read A[j-1] then write A[j]).
	a := poly.NewArray("A", 64)
	nest := poly.NewNest(poly.RectLoop("j", 1, 63))
	refs := []*poly.Ref{
		poly.NewRef(a, poly.Read, poly.Var(0, 1).AddConst(-1)),
		poly.NewRef(a, poly.Write, poly.Var(0, 1)),
	}
	layout := poly.NewLayout(512, a)
	deps := IterationDeps(nest.Points(), refs, layout, 0)
	if len(deps) == 0 {
		t.Fatal("no deps found")
	}
	kinds := map[Kind]bool{}
	for _, d := range deps {
		kinds[d.Kind] = true
		if !d.Src.Less(d.Dst) {
			t.Fatalf("dep %v -> %v against program order", d.Src, d.Dst)
		}
	}
	if !kinds[Flow] {
		t.Fatal("flow dependence not detected")
	}
}

func TestIterationDepsAntiOutput(t *testing.T) {
	// Anti: iteration j reads A[j+1], iteration j+1 writes A[j+1].
	a := poly.NewArray("A", 64)
	nest := poly.NewNest(poly.RectLoop("j", 0, 62))
	refs := []*poly.Ref{
		poly.NewRef(a, poly.Read, poly.Var(0, 1).AddConst(1)),
		poly.NewRef(a, poly.Write, poly.Var(0, 1)),
	}
	layout := poly.NewLayout(512, a)
	deps := IterationDeps(nest.Points(), refs, layout, 0)
	hasAnti := false
	for _, d := range deps {
		if d.Kind == Anti {
			hasAnti = true
		}
	}
	if !hasAnti {
		t.Fatal("anti dependence not detected")
	}

	// Output: two writes to the same element from different iterations.
	refs2 := []*poly.Ref{
		poly.NewRef(a, poly.Write, poly.Var(0, 1).Scale(0)), // A[0] every iteration
	}
	deps2 := IterationDeps(nest.Points(), refs2, layout, 0)
	hasOutput := false
	for _, d := range deps2 {
		if d.Kind == Output {
			hasOutput = true
		}
	}
	if !hasOutput {
		t.Fatal("output dependence not detected")
	}
}

func TestIterationDepsLimit(t *testing.T) {
	iters, refs, layout, _ := wavefrontSetup(1024, 256, 32)
	deps := IterationDeps(iters, refs, layout, 5)
	if len(deps) != 5 {
		t.Fatalf("limit ignored: %d deps", len(deps))
	}
}

func TestCollapseCyclesNoOp(t *testing.T) {
	iters, _, _, tg := wavefrontSetup(1024, 256, 32)
	dg, selfDep := Analyze(iters, tg)
	if !dg.IsAcyclic() {
		t.Skip("wavefront group graph unexpectedly cyclic")
	}
	groups, dag, self2 := CollapseCycles(tg.Groups, dg, selfDep)
	if len(groups) != len(tg.Groups) {
		t.Fatal("acyclic graph should collapse to itself")
	}
	if dag != dg {
		t.Fatal("acyclic collapse should return the original graph")
	}
	_ = self2
}

func TestCollapseCyclesMerges(t *testing.T) {
	// Build an artificial cyclic group graph: a ping-pong pattern where
	// block 0 and block 1 alternate writes from two groups.
	a := poly.NewArray("A", 64)
	nest := poly.NewNest(poly.RectLoop("j", 0, 63))
	// Iteration j writes A[63-j] and reads A[j]: early iterations read
	// low blocks and write high blocks; late iterations the reverse —
	// the two groups depend on each other.
	refs := []*poly.Ref{
		poly.NewRef(a, poly.Read, poly.Var(0, 1)),
		poly.NewRef(a, poly.Write, poly.Var(0, 1).Scale(-1).AddConst(63)),
	}
	layout := poly.NewLayout(256, a) // 32-element blocks -> 2 blocks
	iters := nest.Points()
	tg := tags.Compute(iters, refs, layout)
	dg, selfDep := Analyze(iters, tg)
	if dg.IsAcyclic() {
		t.Skip("expected a cyclic group graph for this pattern")
	}
	groups, dag, self := CollapseCycles(tg.Groups, dg, selfDep)
	if len(groups) >= len(tg.Groups) {
		t.Fatal("cycle not collapsed")
	}
	if !dag.IsAcyclic() {
		t.Fatal("collapsed graph still cyclic")
	}
	// The merged group must cover all iterations of its members, sorted.
	total := 0
	for _, g := range groups {
		total += g.Size()
		for i := 1; i < len(g.Iters); i++ {
			if !g.Iters[i-1].Less(g.Iters[i]) {
				t.Fatal("merged iterations not in program order")
			}
		}
	}
	if total != len(iters) {
		t.Fatalf("collapse lost iterations: %d of %d", total, len(iters))
	}
	// A multi-member SCC must be flagged self-dependent.
	anySelf := false
	for _, s := range self {
		anySelf = anySelf || s
	}
	if !anySelf {
		t.Fatal("merged cycle not flagged selfDep")
	}
}
