// Package deps performs the dependence analysis of §3.5.2: it finds
// loop-carried data dependences between iterations of a nest, lifts them to
// iteration-group granularity (the dependence graph DG consumed by the
// Fig 7 scheduler), and collapses dependence cycles by merging the involved
// groups, exactly as the paper prescribes ("we remove all the cycles in the
// dependence graph by merging the involved nodes").
package deps
