package deps

import (
	"sort"

	"repro/internal/affinity"
	"repro/internal/poly"
	"repro/internal/tags"
)

// Kind classifies a dependence.
type Kind int

const (
	// Flow is a true (read-after-write) dependence.
	Flow Kind = iota
	// Anti is a write-after-read dependence.
	Anti
	// Output is a write-after-write dependence.
	Output
)

// String names the dependence kind.
func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	default:
		return "unknown"
	}
}

// Dep records one iteration-level loop-carried dependence: Dst must execute
// after Src.
type Dep struct {
	Src, Dst poly.Point
	Kind     Kind
}

// elemState tracks, per data element, the last writing group and the groups
// that have read it since, as the analysis sweeps iterations in program
// order.
type elemState struct {
	lastWriter   int // group id, -1 if none yet
	readersSince []int
}

// Analyze sweeps the iterations in program order and builds the group
// dependence graph: an edge g→h when some iteration of h depends (flow,
// anti or output) on some iteration of g. Edges within a group are not
// added to the graph — a group executes on one core in program order, which
// satisfies them — but groups with such internal dependences are flagged in
// selfDep, because load balancing may later split them and their pieces
// must then stay ordered.
//
// iters must be the same slice (and order) the tagging was computed from.
func Analyze(iters []poly.Point, tg *tags.Tagging) (dg *affinity.Digraph, selfDep []bool) {
	groupOf := groupIndex(iters, tg)
	dg = affinity.NewDigraph(len(tg.Groups))
	selfDep = make([]bool, len(tg.Groups))
	state := make(map[int64]*elemState)
	for idx, p := range iters {
		g := groupOf[idx]
		for _, r := range tg.Refs {
			addr := tg.Layout.AddrOf(r, p)
			st, ok := state[addr]
			if !ok {
				st = &elemState{lastWriter: -1}
				state[addr] = st
			}
			if r.Kind.Reads() {
				if st.lastWriter >= 0 {
					if st.lastWriter != g {
						dg.AddEdge(st.lastWriter, g) // flow
					} else {
						selfDep[g] = true
					}
				}
				st.readersSince = appendUnique(st.readersSince, g)
			}
			if r.Kind.Writes() {
				if st.lastWriter >= 0 {
					if st.lastWriter != g {
						dg.AddEdge(st.lastWriter, g) // output
					} else {
						selfDep[g] = true
					}
				}
				for _, rd := range st.readersSince {
					if rd != g {
						dg.AddEdge(rd, g) // anti
					} else {
						selfDep[g] = true
					}
				}
				st.lastWriter = g
				st.readersSince = st.readersSince[:0]
			}
		}
	}
	return dg, selfDep
}

// IterationDeps lists iteration-level loop-carried dependences (for tests,
// reporting and schedule validation). It caps the result at limit entries
// (0 = unlimited) since dense kernels can carry very many.
func IterationDeps(iters []poly.Point, refs []*poly.Ref, layout *poly.Layout, limit int) []Dep {
	type access struct {
		iter  int
		write bool
		read  bool
	}
	var out []Dep
	last := make(map[int64][]access)
	for idx, p := range iters {
		for _, r := range refs {
			addr := layout.AddrOf(r, p)
			cur := access{iter: idx, write: r.Kind.Writes(), read: r.Kind.Reads()}
			hist := last[addr]
			for i := len(hist) - 1; i >= 0; i-- {
				prev := hist[i]
				if prev.iter == idx {
					continue
				}
				var k Kind
				switch {
				case prev.write && cur.read:
					k = Flow
				case prev.write && cur.write:
					k = Output
				case prev.read && cur.write:
					k = Anti
				default:
					continue
				}
				out = append(out, Dep{Src: iters[prev.iter].Clone(), Dst: p.Clone(), Kind: k})
				if limit > 0 && len(out) >= limit {
					return out
				}
				break // nearest conflicting access suffices
			}
			last[addr] = append(hist, cur)
		}
	}
	return out
}

// HasLoopCarried reports whether the nest has any loop-carried dependence —
// the fully-parallel test of §3.1 (the paper reports only 14% of parallel
// loops carry dependences).
func HasLoopCarried(iters []poly.Point, refs []*poly.Ref, layout *poly.Layout) bool {
	return len(IterationDeps(iters, refs, layout, 1)) > 0
}

// CollapseCycles merges the groups of every dependence cycle into a single
// group (concatenating iterations in program order and OR-ing tags), and
// returns the new group list, the acyclic group dependence DAG over it, and
// the merged self-dependence flags (a merged group has internal dependences
// when any member had, or when the cycle itself had >1 member — its edges
// become internal). When dg is already acyclic the original groups are
// returned unchanged.
func CollapseCycles(groups []*tags.Group, dg *affinity.Digraph, selfDep []bool) ([]*tags.Group, *affinity.Digraph, []bool) {
	dag, comp, numComp := dg.Condense()
	if numComp == len(groups) {
		return groups, dg, selfDep // every group its own SCC: already acyclic
	}
	merged := make([]*tags.Group, numComp)
	mergedSelf := make([]bool, numComp)
	members := make([]int, numComp)
	for i, g := range groups {
		c := comp[i]
		if merged[c] == nil {
			merged[c] = &tags.Group{ID: c, Tag: g.Tag.Clone()}
		} else {
			merged[c].Tag.OrInPlace(g.Tag)
		}
		merged[c].Iters = append(merged[c].Iters, g.Iters...)
		members[c]++
		if selfDep != nil && selfDep[i] {
			mergedSelf[c] = true
		}
	}
	for c, g := range merged {
		sortPoints(g.Iters)
		if members[c] > 1 {
			mergedSelf[c] = true
		}
	}
	return merged, dag, mergedSelf
}

// groupIndex maps each iteration (by its index in iters) to its group id.
func groupIndex(iters []poly.Point, tg *tags.Tagging) []int {
	pos := make(map[string]int, len(iters))
	for i, p := range iters {
		pos[p.String()] = i
	}
	out := make([]int, len(iters))
	for gi, g := range tg.Groups {
		for _, p := range g.Iters {
			out[pos[p.String()]] = gi
		}
	}
	return out
}

// appendUnique appends v if not present (lists stay tiny: readers between
// two writes of one element).
func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// sortPoints orders points lexicographically (program order).
func sortPoints(ps []poly.Point) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Less(ps[j]) })
}
