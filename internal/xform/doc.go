// Package xform provides unimodular loop transformations with dependence
// legality checking — the classical machinery behind the Base+ baseline's
// loop permutation (§4.1 cites linear transformations "very similar to
// those discussed in [43]"). A transformation is a square integer matrix T
// applied to iteration vectors; it is legal for a loop nest when every
// dependence distance vector d stays lexicographically positive after the
// transformation (T·d ≻ 0), the standard condition from the loop
// restructuring literature.
package xform
