package xform

import (
	"testing"

	"repro/internal/deps"
	"repro/internal/poly"
)

func TestIdentityAndApply(t *testing.T) {
	id := Identity(3)
	p := poly.Pt(4, 5, 6)
	if !id.Apply(p).Equal(p) {
		t.Fatal("identity changed the point")
	}
	if !id.IsUnimodular() || id.Det() != 1 {
		t.Fatal("identity not unimodular")
	}
}

func TestInterchange(t *testing.T) {
	ic := Interchange(2, 0, 1)
	got := ic.Apply(poly.Pt(3, 7))
	if got[0] != 7 || got[1] != 3 {
		t.Fatalf("interchange(3,7) = %v", got)
	}
	if !ic.IsUnimodular() {
		t.Fatal("interchange not unimodular")
	}
	if ic.Det() != -1 {
		t.Fatalf("interchange det = %d", ic.Det())
	}
}

func TestSkewAndReversal(t *testing.T) {
	sk := Skew(2, 1, 0, 1) // j' = j + i
	got := sk.Apply(poly.Pt(2, 3))
	if got[0] != 2 || got[1] != 5 {
		t.Fatalf("skew(2,3) = %v", got)
	}
	if sk.Det() != 1 {
		t.Fatalf("skew det = %d", sk.Det())
	}
	rv := Reversal(2, 0)
	if rv.Det() != -1 || !rv.IsUnimodular() {
		t.Fatal("reversal determinant wrong")
	}
}

func TestCompose(t *testing.T) {
	a := Interchange(2, 0, 1)
	b := Skew(2, 1, 0, 2)
	c := a.Compose(b) // apply b, then a
	p := poly.Pt(1, 1)
	want := a.Apply(b.Apply(p))
	if !c.Apply(p).Equal(want) {
		t.Fatalf("compose mismatch: %v vs %v", c.Apply(p), want)
	}
}

func TestDetLargerMatrix(t *testing.T) {
	m := Matrix{
		{2, 0, 0},
		{0, 3, 0},
		{0, 0, 4},
	}
	if m.Det() != 24 {
		t.Fatalf("det = %d, want 24", m.Det())
	}
	if m.IsUnimodular() {
		t.Fatal("diag(2,3,4) reported unimodular")
	}
	// Singular matrix.
	s := Matrix{{1, 2}, {2, 4}}
	if s.Det() != 0 {
		t.Fatalf("singular det = %d", s.Det())
	}
}

func TestDistanceVectors(t *testing.T) {
	ds := []deps.Dep{
		{Src: poly.Pt(0, 0), Dst: poly.Pt(1, 0)},
		{Src: poly.Pt(2, 3), Dst: poly.Pt(3, 3)}, // same distance (1,0)
		{Src: poly.Pt(0, 0), Dst: poly.Pt(1, -1)},
	}
	dists := DistanceVectors(ds)
	if len(dists) != 2 {
		t.Fatalf("got %d distinct distances, want 2", len(dists))
	}
}

func TestLegalityClassicCases(t *testing.T) {
	ic := Interchange(2, 0, 1)
	// d = (0,1): parallel outer loop; interchange -> (1,0), still positive.
	if !Legal(ic, []poly.Point{poly.Pt(0, 1)}) {
		t.Fatal("interchange of (0,1) should be legal")
	}
	// d = (1,-1): the classic illegal interchange -> (-1,1).
	if Legal(ic, []poly.Point{poly.Pt(1, -1)}) {
		t.Fatal("interchange of (1,-1) must be illegal")
	}
	// Skew by +1 legalizes the wavefront: skewed (1,-1) -> (1, 0).
	sk := Skew(2, 1, 0, 1)
	if !Legal(sk, []poly.Point{poly.Pt(1, -1)}) {
		t.Fatal("skew should preserve (1,-1)")
	}
	// Reversal of a carried loop is illegal.
	rv := Reversal(2, 0)
	if Legal(rv, []poly.Point{poly.Pt(1, 0)}) {
		t.Fatal("reversing a carried loop must be illegal")
	}
	// No dependences: everything is legal.
	if !Legal(rv, nil) {
		t.Fatal("reversal of a parallel loop should be legal")
	}
}

func TestTransformOrder(t *testing.T) {
	pts := []poly.Point{poly.Pt(0, 0), poly.Pt(0, 1), poly.Pt(1, 0), poly.Pt(1, 1)}
	ic := Interchange(2, 0, 1)
	out := TransformOrder(ic, pts)
	// j-major order: (0,0), (1,0), (0,1), (1,1).
	want := []poly.Point{poly.Pt(0, 0), poly.Pt(1, 0), poly.Pt(0, 1), poly.Pt(1, 1)}
	for i := range want {
		if !out[i].Equal(want[i]) {
			t.Fatalf("order[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	// Same multiset of points.
	if len(out) != len(pts) {
		t.Fatal("points lost")
	}
}

func TestLegalOrdersFiltering(t *testing.T) {
	// With dependence (1,-1): identity legal, interchange illegal,
	// skew(+1) legal.
	dists := []poly.Point{poly.Pt(1, -1)}
	legal := LegalOrders(2, dists)
	foundIdentity, foundInterchange, foundSkew := false, false, false
	id := Identity(2)
	ic := Interchange(2, 0, 1)
	sk := Skew(2, 1, 0, 1)
	for _, m := range legal {
		switch {
		case equalMatrix(m, id):
			foundIdentity = true
		case equalMatrix(m, ic):
			foundInterchange = true
		case equalMatrix(m, sk):
			foundSkew = true
		}
	}
	if !foundIdentity || !foundSkew {
		t.Fatal("identity and positive skew should be legal")
	}
	if foundInterchange {
		t.Fatal("interchange should have been filtered out")
	}
}

// TestEndToEndWithRealDeps: distance vectors from a real dependent nest
// feed the legality check. A[i][j] = A[i-1][j+1] carries (1,-1).
func TestEndToEndWithRealDeps(t *testing.T) {
	a := poly.NewArray("A", 16, 16)
	nest := poly.NewNest(poly.RectLoop("i", 1, 14), poly.RectLoop("j", 1, 14))
	refs := []*poly.Ref{
		poly.NewRef(a, poly.Read, poly.Var(0, 2).AddConst(-1), poly.Var(1, 2).AddConst(1)),
		poly.NewRef(a, poly.Write, poly.Var(0, 2), poly.Var(1, 2)),
	}
	layout := poly.NewLayout(2048, a)
	ds := deps.IterationDeps(nest.Points(), refs, layout, 0)
	dists := DistanceVectors(ds)
	found := false
	for _, d := range dists {
		if d.Equal(poly.Pt(1, -1)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected distance (1,-1) among %v", dists)
	}
	if Legal(Interchange(2, 0, 1), dists) {
		t.Fatal("interchange must be illegal for this nest")
	}
}

func equalMatrix(a, b Matrix) bool {
	if a.Dim() != b.Dim() {
		return false
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
