package xform

import (
	"fmt"
	"sort"

	"repro/internal/deps"
	"repro/internal/poly"
)

// Matrix is a square integer transformation matrix, row-major.
type Matrix [][]int64

// Identity returns the n×n identity transformation.
func Identity(n int) Matrix {
	m := make(Matrix, n)
	for i := range m {
		m[i] = make([]int64, n)
		m[i][i] = 1
	}
	return m
}

// Interchange returns the n×n permutation swapping loop levels a and b
// (0-based, outermost first).
func Interchange(n, a, b int) Matrix {
	m := Identity(n)
	m[a][a], m[b][b] = 0, 0
	m[a][b], m[b][a] = 1, 1
	return m
}

// Reversal returns the transformation negating loop level a.
func Reversal(n, a int) Matrix {
	m := Identity(n)
	m[a][a] = -1
	return m
}

// Skew returns the transformation adding f×level b into level a
// (i' = i + f·j), the classic wavefront enabler.
func Skew(n, a, b int, f int64) Matrix {
	m := Identity(n)
	m[a][b] += f
	return m
}

// Dim returns the matrix dimension.
func (m Matrix) Dim() int { return len(m) }

// Apply transforms an iteration point: p' = T·p.
func (m Matrix) Apply(p poly.Point) poly.Point {
	n := m.Dim()
	if len(p) != n {
		//lint:ignore cellboundary programmer-error invariant on an internal API; repro.capturePanic converts it to a contained PanicError at the cell boundary
		panic(fmt.Sprintf("xform: applying %d-dim matrix to %d-dim point", n, len(p)))
	}
	out := make(poly.Point, n)
	for i := 0; i < n; i++ {
		var v int64
		for j := 0; j < n; j++ {
			v += m[i][j] * p[j]
		}
		out[i] = v
	}
	return out
}

// Compose returns m∘o, the transformation applying o first, then m.
func (m Matrix) Compose(o Matrix) Matrix {
	n := m.Dim()
	if o.Dim() != n {
		//lint:ignore cellboundary programmer-error invariant on an internal API; repro.capturePanic converts it to a contained PanicError at the cell boundary
		panic("xform: composing matrices of different dimensions")
	}
	out := make(Matrix, n)
	for i := range out {
		out[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				out[i][j] += m[i][k] * o[k][j]
			}
		}
	}
	return out
}

// Det computes the determinant by fraction-free Gaussian elimination
// (Bareiss), exact over the integers.
func (m Matrix) Det() int64 {
	n := m.Dim()
	if n == 0 {
		return 1
	}
	a := make([][]int64, n)
	for i := range a {
		a[i] = append([]int64(nil), m[i]...)
	}
	sign := int64(1)
	prev := int64(1)
	for k := 0; k < n-1; k++ {
		if a[k][k] == 0 {
			swapped := false
			for r := k + 1; r < n; r++ {
				if a[r][k] != 0 {
					a[k], a[r] = a[r], a[k]
					sign = -sign
					swapped = true
					break
				}
			}
			if !swapped {
				return 0
			}
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				a[i][j] = (a[i][j]*a[k][k] - a[i][k]*a[k][j]) / prev
			}
			a[i][k] = 0
		}
		prev = a[k][k]
	}
	return sign * a[n-1][n-1]
}

// IsUnimodular reports whether |det T| = 1, the condition for the
// transformed space to be an exact relabeling of the original iterations.
func (m Matrix) IsUnimodular() bool {
	d := m.Det()
	return d == 1 || d == -1
}

// DistanceVectors extracts the set of distinct dependence distance vectors
// (dst - src) from iteration-level dependences.
func DistanceVectors(ds []deps.Dep) []poly.Point {
	seen := map[string]bool{}
	var out []poly.Point
	for _, d := range ds {
		if len(d.Src) != len(d.Dst) {
			continue
		}
		v := make(poly.Point, len(d.Src))
		for i := range v {
			v[i] = d.Dst[i] - d.Src[i]
		}
		k := v.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// lexPositive reports d ≻ 0: the first nonzero component is positive.
func lexPositive(d poly.Point) bool {
	for _, v := range d {
		if v != 0 {
			return v > 0
		}
	}
	return false
}

// Legal reports whether the transformation preserves every dependence:
// T·d must remain lexicographically positive for each distance vector.
// (Zero vectors — same-iteration dependences — are always preserved.)
func Legal(m Matrix, dists []poly.Point) bool {
	for _, d := range dists {
		allZero := true
		for _, v := range d {
			if v != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			continue
		}
		if !lexPositive(m.Apply(d)) {
			return false
		}
	}
	return true
}

// TransformOrder returns the iteration points reordered to the execution
// order of the transformed nest: sorted lexicographically by T·p. The
// points themselves are unchanged (the transformation renames iterations;
// their array accesses stay put).
func TransformOrder(m Matrix, pts []poly.Point) []poly.Point {
	type pair struct {
		key poly.Point
		p   poly.Point
	}
	tmp := make([]pair, len(pts))
	for i, p := range pts {
		tmp[i] = pair{key: m.Apply(p), p: p}
	}
	sort.SliceStable(tmp, func(i, j int) bool { return tmp[i].key.Less(tmp[j].key) })
	out := make([]poly.Point, len(pts))
	for i, t := range tmp {
		out[i] = t.p
	}
	return out
}

// LegalOrders enumerates the candidate unimodular transformations of the
// Base+ search (identity, all pairwise interchanges, and skews by ±1 of
// adjacent levels) filtered by legality against the given dependences.
func LegalOrders(depth int, dists []poly.Point) []Matrix {
	var cands []Matrix
	cands = append(cands, Identity(depth))
	for a := 0; a < depth; a++ {
		for b := a + 1; b < depth; b++ {
			cands = append(cands, Interchange(depth, a, b))
		}
	}
	for a := 0; a+1 < depth; a++ {
		cands = append(cands, Skew(depth, a+1, a, 1))
		cands = append(cands, Skew(depth, a+1, a, -1))
	}
	var legal []Matrix
	for _, c := range cands {
		if Legal(c, dists) {
			legal = append(legal, c)
		}
	}
	return legal
}
