package oracle

import (
	"fmt"

	"repro/internal/cachesim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// barrierCost deliberately restates the model's per-barrier cycle charge
// instead of importing cachesim.BarrierCost: if either implementation drifts
// from the paper's constant, the differential comparison catches it.
const barrierCost = 100

// refCache is one set-associative LRU cache, implemented the naive way: each
// set is a most-recently-used-first list of tags held in a map keyed by set
// index, with a parallel dirty-tag map. No fixed backing arrays, no LRU
// stamps — recency is positional.
type refCache struct {
	node     *topology.Node
	nsets    int64
	assoc    int
	lineBits uint
	// sets[set] lists resident tags, most recently used first.
	sets map[int64][]int64
	// dirty[set] holds the set's dirty tags.
	dirty map[int64]map[int64]bool

	hits, misses, writebacks uint64
}

func newRefCache(n *topology.Node) *refCache {
	lineBits := uint(0)
	for (int64(1) << lineBits) < n.LineBytes {
		lineBits++
	}
	nsets := n.SizeBytes / (int64(n.Assoc) * n.LineBytes)
	if nsets < 1 {
		nsets = 1
	}
	return &refCache{
		node: n, nsets: nsets, assoc: n.Assoc, lineBits: lineBits,
		sets:  make(map[int64][]int64),
		dirty: make(map[int64]map[int64]bool),
	}
}

func (c *refCache) locate(addr int64) (tag, set int64) {
	tag = addr >> c.lineBits
	return tag, tag % c.nsets
}

// access probes for addr; on hit it moves the tag to the front of its set's
// recency list (and marks it dirty for writes) and returns true.
func (c *refCache) access(addr int64, write bool) bool {
	tag, set := c.locate(addr)
	list := c.sets[set]
	for i, t := range list {
		if t != tag {
			continue
		}
		copy(list[1:i+1], list[:i])
		list[0] = tag
		if write {
			c.markDirty(set, tag)
		}
		c.hits++
		return true
	}
	c.misses++
	return false
}

// fill installs addr's line at the front of its set, evicting the list tail
// (the least recently used line) when the set is at associativity. It
// returns the victim's address and whether the victim was dirty; victimAddr
// is -1 when no line was evicted.
func (c *refCache) fill(addr int64, write bool) (victimAddr int64, evictedDirty bool) {
	tag, set := c.locate(addr)
	list := c.sets[set]
	victimAddr = -1
	if len(list) == c.assoc {
		victim := list[len(list)-1]
		list = list[:len(list)-1]
		victimAddr = victim << c.lineBits
		if c.dirty[set][victim] {
			delete(c.dirty[set], victim)
			c.writebacks++
			evictedDirty = true
		}
	}
	c.sets[set] = append([]int64{tag}, list...)
	if write {
		c.markDirty(set, tag)
	}
	return victimAddr, evictedDirty
}

// setDirty marks addr's line dirty if resident (a write-back arriving from
// the level below).
func (c *refCache) setDirty(addr int64) {
	tag, set := c.locate(addr)
	for _, t := range c.sets[set] {
		if t == tag {
			c.markDirty(set, tag)
			return
		}
	}
}

func (c *refCache) markDirty(set, tag int64) {
	m := c.dirty[set]
	if m == nil {
		m = make(map[int64]bool)
		c.dirty[set] = m
	}
	m[tag] = true
}

// Simulate recomputes the full simulation result for src on machine m. The
// trace is materialized up front, every structure is allocated fresh, and
// the interleaving is chosen by a linear minimum scan — the slow obvious
// implementation the optimized simulator is checked against. The returned
// Result has the same shape as cachesim's so Compare can walk both.
func Simulate(m *topology.Machine, src trace.Source) (*cachesim.Result, error) {
	prog := trace.Materialize(src)
	ncores := prog.CoreCount()
	if ncores > m.NumCores() {
		return nil, fmt.Errorf("oracle: program uses %d cores, machine %s has %d",
			ncores, m.Name, m.NumCores())
	}

	// One refCache per cache node, tree (BFS) order, plus each core's
	// lookup path from L1 upward.
	caches := make(map[*topology.Node]*refCache)
	var nodes []*topology.Node
	var list []*refCache
	for _, n := range m.Nodes() {
		if n.Kind == topology.Cache {
			rc := newRefCache(n)
			caches[n] = rc
			nodes = append(nodes, n)
			list = append(list, rc)
		}
	}
	paths := make([][]*refCache, ncores)
	for c := 0; c < ncores; c++ {
		path, err := m.PathToRoot(c)
		if err != nil {
			return nil, err
		}
		for _, n := range path {
			if n.Kind == topology.Cache {
				paths[c] = append(paths[c], caches[n])
			}
		}
	}

	res := &cachesim.Result{
		Machine:            m.Name,
		CyclesPerCore:      make([]uint64, m.NumCores()),
		MemAccessesPerCore: make([]uint64, m.NumCores()),
		AccessesPerCore:    make([]uint64, m.NumCores()),
		Levels:             make(map[int]*cachesim.LevelStats),
	}
	var memFreeAt uint64

	for r := 0; r < prog.RoundCount(); r++ {
		pos := make([]int, ncores)
		for {
			// Next event: the unfinished core with the smallest local
			// clock, ties to the lowest core id (strict < over ascending
			// scan order).
			core := -1
			for c := 0; c < ncores; c++ {
				if pos[c] >= len(prog.Rounds[r][c]) {
					continue
				}
				if core == -1 || res.CyclesPerCore[c] < res.CyclesPerCore[core] {
					core = c
				}
			}
			if core == -1 {
				break
			}
			a := prog.Rounds[r][core][pos[core]]
			pos[core]++

			path := paths[core]
			cost := 0
			hitAt := -1
			for i, ch := range path {
				cost += ch.node.Latency
				if ch.access(a.Addr, a.Write) {
					hitAt = i
					break
				}
			}
			if hitAt == -1 {
				hitAt = len(path)
				res.MemAccesses++
				res.MemAccessesPerCore[core]++
				cost += m.MemLatency
				if occ := uint64(m.MemOccupancy); occ > 0 {
					arrive := res.CyclesPerCore[core] + uint64(cost) - uint64(m.MemLatency)
					if memFreeAt > arrive {
						cost += int(memFreeAt - arrive)
						memFreeAt += occ
					} else {
						memFreeAt = arrive + occ
					}
				}
			}
			for i := 0; i < hitAt && i < len(path); i++ {
				victimAddr, dirtyOut := path[i].fill(a.Addr, a.Write && i == 0)
				if !dirtyOut {
					continue
				}
				if i+1 < len(path) {
					path[i+1].setDirty(victimAddr)
					continue
				}
				res.Writebacks++
				if occ := uint64(m.MemOccupancy); occ > 0 {
					memFreeAt += occ
				}
			}
			res.Accesses++
			res.AccessesPerCore[core]++
			res.CyclesPerCore[core] += uint64(cost)
		}
		if prog.Sync() {
			var maxC uint64
			for _, cy := range res.CyclesPerCore {
				if cy > maxC {
					maxC = cy
				}
			}
			maxC += barrierCost
			res.Barriers++
			for c := range res.CyclesPerCore {
				res.CyclesPerCore[c] = maxC
			}
		}
	}

	res.PerCache = make([]cachesim.CacheStats, 0, len(list))
	for i, rc := range list {
		n := nodes[i]
		ls, ok := res.Levels[n.Level]
		if !ok {
			ls = &cachesim.LevelStats{Level: n.Level}
			res.Levels[n.Level] = ls
		}
		ls.Hits += rc.hits
		ls.Misses += rc.misses
		ls.Accesses += rc.hits + rc.misses
		cs := cachesim.CacheStats{Label: n.Label(), Level: n.Level,
			Hits: rc.hits, Misses: rc.misses, Writebacks: rc.writebacks}
		for _, cn := range n.Cores() {
			cs.Cores = append(cs.Cores, cn.CoreID)
		}
		res.PerCache = append(res.PerCache, cs)
	}
	for _, cy := range res.CyclesPerCore {
		if cy > res.TotalCycles {
			res.TotalCycles = cy
		}
	}
	return res, nil
}
