// Package oracle is the differential-testing reference for the cache
// simulator: a second, deliberately naive implementation of the same machine
// model that recomputes a cell's per-level hit/miss/cycle statistics from
// scratch and field-compares them against internal/cachesim.
//
// The two implementations share nothing but the model definition. Where
// cachesim keeps fixed-size backing arrays with LRU stamps, scratch-buffer
// reuse and a hand-rolled slice min-heap pulling from streaming cursors, the
// oracle materializes the whole trace up front, keeps each cache set as a
// map-indexed most-recently-used-first list, and picks the next core by a
// linear minimum scan. It even redefines the barrier cost as its own
// constant, so a drifted constant in either implementation shows up as a
// divergence rather than being silently shared.
//
// The oracle is slow by design — O(associativity) list surgery per access,
// O(cores) scan per event, O(accesses) memory — which is why repro.Config
// gates it behind Check modes Sampled (a deterministic one-in-four subset of
// cells) and Full (every cell). A mismatch is reported as a structured
// *DivergenceError naming the level, the field, and both values; the
// experiment runner surfaces it through the CellError path so a divergent
// cell becomes a "fail" row, never a wrong number.
package oracle
