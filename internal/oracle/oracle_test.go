package oracle

import (
	"math/rand"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/check"
	"repro/internal/topology"
	"repro/internal/trace"
)

// randomProgram builds a materialized multi-core trace with a skewed address
// mix: enough reuse to exercise hits, LRU surgery and write-backs at every
// level, enough spread to reach memory and the off-chip queue.
func randomProgram(rng *rand.Rand, cores, rounds, perCore int, sync bool) *trace.Program {
	p := &trace.Program{NumCores: cores, Synchronized: sync}
	for r := 0; r < rounds; r++ {
		round := make([][]trace.Access, cores)
		for c := 0; c < cores; c++ {
			as := make([]trace.Access, perCore)
			for i := range as {
				var addr int64
				switch rng.Intn(4) {
				case 0: // hot shared line
					addr = int64(rng.Intn(64)) * 64
				case 1: // per-core working set
					addr = int64(1<<16) + int64(c)<<12 + int64(rng.Intn(64))*64
				default: // cold spread
					addr = int64(rng.Intn(1 << 22))
				}
				as[i] = trace.Access{Addr: addr, Size: 8, Write: rng.Intn(3) == 0}
			}
			round[c] = as
		}
		p.Rounds = append(p.Rounds, round)
	}
	return p
}

// TestOracleMatchesSimulatorRandom differentially tests the two simulator
// implementations on random traces over every machine model: per-level and
// per-cache statistics, per-core clocks and the off-chip queue must agree
// exactly. The simulator leg runs with invariants enabled, so this also
// exercises the runtime checks on healthy inputs.
func TestOracleMatchesSimulatorRandom(t *testing.T) {
	for _, m := range topology.All() {
		name := m.Name
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 3; trial++ {
			sync := trial%2 == 0
			rounds := 1 + trial
			prog := randomProgram(rng, m.NumCores(), rounds, 400, sync)
			got, err := cachesim.SimulateContext(t.Context(), m, prog, cachesim.Limits{Check: check.Invariants})
			if err != nil {
				t.Fatalf("%s trial %d: simulator: %v", name, trial, err)
			}
			want, err := Simulate(m, prog)
			if err != nil {
				t.Fatalf("%s trial %d: oracle: %v", name, trial, err)
			}
			if derr := Compare(name, got, want); derr != nil {
				t.Errorf("%s trial %d (sync=%v): %v", name, trial, sync, derr)
			}
		}
	}
}

// TestCompareFlagsDivergence proves Compare actually reports a difference in
// each field family, not just equal results.
func TestCompareFlagsDivergence(t *testing.T) {
	m, err := topology.ByName("harpertown")
	if err != nil {
		t.Fatal(err)
	}
	prog := randomProgram(rand.New(rand.NewSource(1)), m.NumCores(), 2, 200, true)
	base, err := Simulate(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	mut, err := Simulate(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	if d := Compare("same", base, mut); d != nil {
		t.Fatalf("identical results reported divergent: %v", d)
	}
	mut.TotalCycles++
	d := Compare("cell-x", base, mut)
	if d == nil {
		t.Fatal("TotalCycles mutation not detected")
	}
	if d.Key != "cell-x" || d.Field != "TotalCycles" {
		t.Fatalf("unexpected divergence identity: %+v", d)
	}
	mut.TotalCycles--
	mut.Levels[2].Misses++
	d = Compare("cell-x", base, mut)
	if d == nil || d.Level != 2 {
		t.Fatalf("L2 miss mutation not detected as level-2 divergence: %+v", d)
	}
}
