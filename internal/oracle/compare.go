package oracle

import (
	"fmt"

	"repro/internal/cachesim"
)

// DivergenceError reports a field where the optimized simulator and the
// reference oracle disagree. It means one of the two implementations is
// wrong and the cell's statistics cannot be trusted; the experiment runner
// classifies it as stage "diverged" so the cell becomes a "fail" row.
type DivergenceError struct {
	// Key identifies the diverging cell (the runner's cell key, or the
	// kernel|machine|scheme id at the repro API).
	Key string
	// Level is the cache level the field belongs to (1=L1, ...), 0 for
	// machine-global fields such as TotalCycles.
	Level int
	// Field names the diverging statistic ("TotalCycles", "L2 misses",
	// "cycles core 3", "L2#4 hits", ...).
	Field string
	// Got is the optimized simulator's value, Want the oracle's.
	Got, Want uint64
	// AccessIndex anchors the divergence to a point in the access stream
	// when known, -1 otherwise (aggregate counters diverge as a whole).
	AccessIndex int64
}

// Error renders the cell, field and both values.
func (e *DivergenceError) Error() string {
	s := fmt.Sprintf("oracle: divergence at %q: %s = %d, oracle says %d", e.Key, e.Field, e.Got, e.Want)
	if e.AccessIndex >= 0 {
		s += fmt.Sprintf(" (around access %d)", e.AccessIndex)
	}
	return s
}

// Compare field-compares the optimized simulator's result against the
// oracle's recomputation and returns a DivergenceError for the first
// mismatch (nil when the results agree). key tags the error with the cell
// identity for replay.
func Compare(key string, got, want *cachesim.Result) *DivergenceError {
	diff := func(level int, field string, g, w uint64) *DivergenceError {
		return &DivergenceError{Key: key, Level: level, Field: field, Got: g, Want: w, AccessIndex: -1}
	}
	if got.Accesses != want.Accesses {
		return diff(0, "Accesses", got.Accesses, want.Accesses)
	}
	if got.TotalCycles != want.TotalCycles {
		return diff(0, "TotalCycles", got.TotalCycles, want.TotalCycles)
	}
	if got.MemAccesses != want.MemAccesses {
		return diff(0, "MemAccesses", got.MemAccesses, want.MemAccesses)
	}
	if got.Writebacks != want.Writebacks {
		return diff(0, "Writebacks", got.Writebacks, want.Writebacks)
	}
	if uint64(got.Barriers) != uint64(want.Barriers) {
		return diff(0, "Barriers", uint64(got.Barriers), uint64(want.Barriers))
	}
	if len(got.CyclesPerCore) != len(want.CyclesPerCore) {
		return diff(0, "len(CyclesPerCore)", uint64(len(got.CyclesPerCore)), uint64(len(want.CyclesPerCore)))
	}
	for c := range want.CyclesPerCore {
		if got.CyclesPerCore[c] != want.CyclesPerCore[c] {
			return diff(0, fmt.Sprintf("cycles core %d", c), got.CyclesPerCore[c], want.CyclesPerCore[c])
		}
		if got.AccessesPerCore[c] != want.AccessesPerCore[c] {
			return diff(0, fmt.Sprintf("accesses core %d", c), got.AccessesPerCore[c], want.AccessesPerCore[c])
		}
		if got.MemAccessesPerCore[c] != want.MemAccessesPerCore[c] {
			return diff(0, fmt.Sprintf("mem accesses core %d", c), got.MemAccessesPerCore[c], want.MemAccessesPerCore[c])
		}
	}
	if len(got.Levels) != len(want.Levels) {
		return diff(0, "cache levels", uint64(len(got.Levels)), uint64(len(want.Levels)))
	}
	for l := 1; l <= len(want.Levels); l++ {
		w, g := want.Levels[l], got.Levels[l]
		if w == nil || g == nil {
			return diff(l, fmt.Sprintf("L%d present", l), boolU(g != nil), boolU(w != nil))
		}
		if g.Accesses != w.Accesses {
			return diff(l, fmt.Sprintf("L%d accesses", l), g.Accesses, w.Accesses)
		}
		if g.Hits != w.Hits {
			return diff(l, fmt.Sprintf("L%d hits", l), g.Hits, w.Hits)
		}
		if g.Misses != w.Misses {
			return diff(l, fmt.Sprintf("L%d misses", l), g.Misses, w.Misses)
		}
	}
	if len(got.PerCache) != len(want.PerCache) {
		return diff(0, "len(PerCache)", uint64(len(got.PerCache)), uint64(len(want.PerCache)))
	}
	for i := range want.PerCache {
		g, w := got.PerCache[i], want.PerCache[i]
		if g.Label != w.Label {
			return diff(w.Level, fmt.Sprintf("PerCache[%d] label %s vs %s", i, g.Label, w.Label), 0, 1)
		}
		if g.Hits != w.Hits {
			return diff(w.Level, w.Label+" hits", g.Hits, w.Hits)
		}
		if g.Misses != w.Misses {
			return diff(w.Level, w.Label+" misses", g.Misses, w.Misses)
		}
		if g.Writebacks != w.Writebacks {
			return diff(w.Level, w.Label+" writebacks", g.Writebacks, w.Writebacks)
		}
	}
	return nil
}

func boolU(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
