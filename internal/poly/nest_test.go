package poly

import (
	"strings"
	"testing"
)

func TestNestPointsOrder(t *testing.T) {
	n := NewNest(RectLoop("i", 0, 1), RectLoop("j", 10, 12))
	pts := n.Points()
	want := []Point{Pt(0, 10), Pt(0, 11), Pt(0, 12), Pt(1, 10), Pt(1, 11), Pt(1, 12)}
	if len(pts) != len(want) {
		t.Fatalf("got %d points, want %d", len(pts), len(want))
	}
	for i := range want {
		if !pts[i].Equal(want[i]) {
			t.Fatalf("Points[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
	if n.Size() != 6 {
		t.Fatalf("Size = %d, want 6", n.Size())
	}
}

func TestNestTriangular(t *testing.T) {
	// for i in 0..3; for j in 0..i — bounds depending on the outer var.
	n := NewNest(
		RectLoop("i", 0, 3),
		Loop{Name: "j", Lower: Constant(0), Upper: Var(0, 2), Step: 1},
	)
	pts := n.Points()
	if len(pts) != 10 {
		t.Fatalf("triangular nest has %d points, want 10", len(pts))
	}
	if n.Size() != 10 {
		t.Fatalf("Size = %d, want 10", n.Size())
	}
	for _, p := range pts {
		if p[1] > p[0] {
			t.Fatalf("point %v outside triangle", p)
		}
		if !n.Contains(p) {
			t.Fatalf("Contains(%v) = false for enumerated point", p)
		}
	}
	if n.Contains(Pt(1, 2)) {
		t.Fatal("point above diagonal should be outside")
	}
}

func TestNestStep(t *testing.T) {
	n := NewNest(Loop{Name: "i", Lower: Constant(0), Upper: Constant(9), Step: 3})
	pts := n.Points()
	want := []int64{0, 3, 6, 9}
	if len(pts) != len(want) {
		t.Fatalf("stepped nest: %d points, want %d", len(pts), len(want))
	}
	for i, p := range pts {
		if p[0] != want[i] {
			t.Fatalf("point %d = %v", i, p)
		}
	}
	if n.Contains(Pt(4)) {
		t.Fatal("off-step point should be outside")
	}
	if n.Size() != 4 {
		t.Fatalf("Size = %d, want 4", n.Size())
	}
}

func TestNestEmptyBounds(t *testing.T) {
	n := NewNest(RectLoop("i", 5, 4))
	if n.Size() != 0 || len(n.Points()) != 0 {
		t.Fatal("inverted bounds should yield empty nest")
	}
}

func TestNestSetConversion(t *testing.T) {
	n := NewNest(RectLoop("i", 1, 4), RectLoop("j", 2, 5))
	s := n.Set()
	for _, p := range n.Points() {
		if !s.Contains(p) {
			t.Fatalf("Set misses nest point %v", p)
		}
	}
	cnt, err := s.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt != n.Size() {
		t.Fatalf("Set count %d != nest size %d", cnt, n.Size())
	}
}

func TestNestString(t *testing.T) {
	n := NewNest(RectLoop("i", 0, 7))
	got := n.String()
	if !strings.Contains(got, "for (i = 0; i <= 7; i++)") {
		t.Fatalf("String = %q", got)
	}
}

func TestNestNames(t *testing.T) {
	n := NewNest(RectLoop("a", 0, 1), RectLoop("b", 0, 1))
	names := n.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	if n.Depth() != 2 {
		t.Fatalf("Depth = %d", n.Depth())
	}
}
