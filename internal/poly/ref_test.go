package poly

import (
	"testing"
	"testing/quick"
)

func TestArrayBasics(t *testing.T) {
	a := NewArray("A", 4, 8)
	if a.Elems() != 32 || a.Bytes() != 256 {
		t.Fatalf("Elems=%d Bytes=%d", a.Elems(), a.Bytes())
	}
	b := NewArray("B", 10).WithElemSize(64)
	if b.Bytes() != 640 {
		t.Fatalf("Bytes=%d", b.Bytes())
	}
}

func TestLinearIndexRowMajor(t *testing.T) {
	a := NewArray("A", 3, 4)
	if got := a.LinearIndex([]int64{0, 0}); got != 0 {
		t.Fatalf("[0][0] -> %d", got)
	}
	if got := a.LinearIndex([]int64{1, 0}); got != 4 {
		t.Fatalf("[1][0] -> %d", got)
	}
	if got := a.LinearIndex([]int64{2, 3}); got != 11 {
		t.Fatalf("[2][3] -> %d", got)
	}
}

func TestLinearIndexClamps(t *testing.T) {
	a := NewArray("A", 3, 4)
	if got := a.LinearIndex([]int64{-1, 2}); got != 2 {
		t.Fatalf("clamped low -> %d", got)
	}
	if got := a.LinearIndex([]int64{5, 5}); got != 11 {
		t.Fatalf("clamped high -> %d", got)
	}
}

func TestLinearIndexBijectiveInBounds(t *testing.T) {
	a := NewArray("A", 5, 7)
	seen := map[int64]bool{}
	for i := int64(0); i < 5; i++ {
		for j := int64(0); j < 7; j++ {
			lin := a.LinearIndex([]int64{i, j})
			if seen[lin] {
				t.Fatalf("duplicate linear index %d", lin)
			}
			seen[lin] = true
			if lin < 0 || lin >= a.Elems() {
				t.Fatalf("linear index %d out of range", lin)
			}
		}
	}
}

func TestAccessKind(t *testing.T) {
	if !Read.Reads() || Read.Writes() {
		t.Fatal("Read kind wrong")
	}
	if Write.Reads() || !Write.Writes() {
		t.Fatal("Write kind wrong")
	}
	if !ReadWrite.Reads() || !ReadWrite.Writes() {
		t.Fatal("ReadWrite kind wrong")
	}
	if Read.String() != "read" || Write.String() != "write" || ReadWrite.String() != "update" {
		t.Fatal("kind names wrong")
	}
}

func TestRefPaperExample(t *testing.T) {
	// Figure 4: A[i1+1][i2-1] over (i1, i2).
	a := NewArray("A", 10, 10)
	r := NewRef(a, Read, Var(0, 2).AddConst(1), Var(1, 2).AddConst(-1))
	idx := r.At(Pt(3, 5))
	if idx[0] != 4 || idx[1] != 4 {
		t.Fatalf("R(3,5) = %v, want [4 4]", idx)
	}
	if got := r.LinearAt(Pt(3, 5)); got != 44 {
		t.Fatalf("LinearAt = %d, want 44", got)
	}
	if s := r.StringNamed([]string{"i1", "i2"}); s != "A[i1 + 1][i2 - 1]" {
		t.Fatalf("String = %q", s)
	}
}

func TestRefArityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRef with wrong subscript count should panic")
		}
	}()
	NewRef(NewArray("A", 4, 4), Read, Var(0, 1))
}

func TestLayoutPlacement(t *testing.T) {
	a := NewArray("A", 100)   // 800 bytes
	b := NewArray("B", 10)    // 80 bytes
	l := NewLayout(256, a, b) // blocks of 256 bytes
	if l.Base(a) != 0 {
		t.Fatalf("Base(A) = %d", l.Base(a))
	}
	// A occupies 800 bytes -> rounded to 1024 so B starts a fresh block.
	if l.Base(b) != 1024 {
		t.Fatalf("Base(B) = %d, want 1024", l.Base(b))
	}
	if l.TotalBytes() != 1024+256 {
		t.Fatalf("TotalBytes = %d", l.TotalBytes())
	}
	if l.NumBlocks() != 5 {
		t.Fatalf("NumBlocks = %d, want 5", l.NumBlocks())
	}
}

func TestLayoutBlockOf(t *testing.T) {
	a := NewArray("A", 100)
	b := NewArray("B", 100)
	l := NewLayout(256, a, b)
	ra := NewRef(a, Read, Var(0, 1))
	rb := NewRef(b, Read, Var(0, 1))
	// A element 0 in block 0; element 33 at byte 264 -> block 1.
	if l.BlockOf(ra, Pt(0)) != 0 || l.BlockOf(ra, Pt(33)) != 1 {
		t.Fatalf("A blocks: %d, %d", l.BlockOf(ra, Pt(0)), l.BlockOf(ra, Pt(33)))
	}
	// B starts at byte 1024 = block 4.
	if l.BlockOf(rb, Pt(0)) != 4 {
		t.Fatalf("B block = %d, want 4", l.BlockOf(rb, Pt(0)))
	}
}

func TestLayoutNoBlockSpansArrays(t *testing.T) {
	f := func(sizeA, sizeB uint8) bool {
		a := NewArray("A", int64(sizeA%60)+1)
		b := NewArray("B", int64(sizeB%60)+1)
		l := NewLayout(128, a, b)
		// The last byte of A and the first byte of B are in distinct blocks.
		lastA := (l.Base(a) + a.Bytes() - 1) / 128
		firstB := l.Base(b) / 128
		return firstB > lastA
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutUnknownArrayPanics(t *testing.T) {
	l := NewLayout(256, NewArray("A", 4))
	defer func() {
		if recover() == nil {
			t.Fatal("Base of unknown array should panic")
		}
	}()
	l.Base(NewArray("X", 4))
}

func TestAddrOfUsesElemSize(t *testing.T) {
	a := NewArray("A", 16).WithElemSize(64)
	l := NewLayout(2048, a)
	r := NewRef(a, Read, Var(0, 1))
	if got := l.AddrOf(r, Pt(3)); got != 192 {
		t.Fatalf("AddrOf = %d, want 192", got)
	}
}
