package poly

import (
	"fmt"
	"sort"
	"strings"
)

// Codegen turns an explicit set of iteration points back into compact
// C-like loop pseudo-code that enumerates exactly those points in
// lexicographic order. It plays the role of the Omega Library's codegen(θ)
// utility (§3.4): once the mapper has decided which iteration groups run on
// which core, Codegen produces the per-core code.
//
// The generator works dimension by dimension: points are bucketed by their
// leading coordinate; consecutive coordinate values whose residual point
// sets are identical are fused into a surrounding for-loop; in the innermost
// dimension maximal unit-stride runs become loops and isolated values become
// plain statements.
func Codegen(points []Point, names []string, body string) string {
	if len(points) == 0 {
		return "/* empty iteration set */\n"
	}
	pts := make([]Point, len(points))
	copy(pts, points)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Less(pts[j]) })
	var b strings.Builder
	genDim(&b, pts, names, body, 0, nil)
	return b.String()
}

// genDim emits code for dimension d of the sorted point set pts, with fixed
// is the values already bound for dims < d (used only for the body text of
// fully-bound statements).
func genDim(b *strings.Builder, pts []Point, names []string, body string, d int, fixed []string) {
	indent := strings.Repeat("  ", d)
	dims := len(pts[0])
	if d == dims-1 {
		// Innermost: compress maximal unit-stride runs.
		i := 0
		for i < len(pts) {
			j := i
			for j+1 < len(pts) && pts[j+1][d] == pts[j][d]+1 {
				j++
			}
			if j > i {
				fmt.Fprintf(b, "%sfor (%s = %d; %s <= %d; %s++)\n%s  %s;\n",
					indent, name(names, d), pts[i][d], name(names, d), pts[j][d], name(names, d),
					indent, bindBody(body, names, fixed, name(names, d)))
			} else {
				all := append(append([]string(nil), fixed...), fmt.Sprintf("%d", pts[i][d]))
				fmt.Fprintf(b, "%s%s;\n", indent, bindBody(body, names, all, ""))
			}
			i = j + 1
		}
		return
	}

	// Bucket by leading coordinate, preserving order. Buckets keep the
	// full-width points so recursion can keep indexing dimension d+1.
	type bucket struct {
		val int64
		sub []Point
		key string // canonical rendering of the residual coordinates
	}
	var buckets []bucket
	i := 0
	for i < len(pts) {
		j := i
		for j < len(pts) && pts[j][d] == pts[i][d] {
			j++
		}
		sub := pts[i:j]
		buckets = append(buckets, bucket{val: pts[i][d], sub: sub, key: keyOf(sub, d+1)})
		i = j
	}

	// Fuse runs of consecutive values with identical residual sets.
	k := 0
	for k < len(buckets) {
		m := k
		for m+1 < len(buckets) && buckets[m+1].val == buckets[m].val+1 && buckets[m+1].key == buckets[k].key {
			m++
		}
		if m > k {
			fmt.Fprintf(b, "%sfor (%s = %d; %s <= %d; %s++)\n",
				indent, name(names, d), buckets[k].val, name(names, d), buckets[m].val, name(names, d))
			genDim(b, buckets[k].sub, names, body, d+1, append(append([]string(nil), fixed...), name(names, d)))
		} else {
			fmt.Fprintf(b, "%s%s = %d;\n", indent, name(names, d), buckets[k].val)
			genDim(b, buckets[k].sub, names, body, d+1, append(append([]string(nil), fixed...), fmt.Sprintf("%d", buckets[k].val)))
		}
		k = m + 1
	}
}

// keyOf canonically renders the coordinates from dimension d onward so
// identical residual sets compare equal cheaply.
func keyOf(pts []Point, d int) string {
	var b strings.Builder
	for _, p := range pts {
		b.WriteString(Point(p[d:]).String())
		b.WriteByte(';')
	}
	return b.String()
}

// name returns the loop variable name for dimension d.
func name(names []string, d int) string {
	if d < len(names) && names[d] != "" {
		return names[d]
	}
	return fmt.Sprintf("x%d", d)
}

// bindBody renders the loop body. When body contains %s-style placeholders
// it is left untouched; the default body is "body(v0, v1, ..., lastVar)".
func bindBody(body string, names []string, bound []string, lastVar string) string {
	args := append([]string(nil), bound...)
	if lastVar != "" {
		args = append(args, lastVar)
	}
	if body == "" {
		body = "body"
	}
	return fmt.Sprintf("%s(%s)", body, strings.Join(args, ", "))
}
