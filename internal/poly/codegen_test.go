package poly

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCodegenEmpty(t *testing.T) {
	got := Codegen(nil, nil, "body")
	if !strings.Contains(got, "empty") {
		t.Fatalf("empty set: %q", got)
	}
}

func TestCodegenSingleRun(t *testing.T) {
	pts := []Point{Pt(3), Pt(4), Pt(5), Pt(6)}
	got := Codegen(pts, []string{"j"}, "body")
	if !strings.Contains(got, "for (j = 3; j <= 6; j++)") {
		t.Fatalf("run not compressed: %q", got)
	}
}

func TestCodegenHole(t *testing.T) {
	pts := []Point{Pt(1), Pt(2), Pt(5), Pt(6)}
	got := Codegen(pts, []string{"j"}, "body")
	if !strings.Contains(got, "for (j = 1; j <= 2; j++)") ||
		!strings.Contains(got, "for (j = 5; j <= 6; j++)") {
		t.Fatalf("holes not handled: %q", got)
	}
}

func TestCodegenSingleton(t *testing.T) {
	got := Codegen([]Point{Pt(7)}, []string{"j"}, "body")
	if !strings.Contains(got, "body(7)") {
		t.Fatalf("singleton: %q", got)
	}
}

func TestCodegenRect2D(t *testing.T) {
	var pts []Point
	for i := int64(0); i < 3; i++ {
		for j := int64(4); j < 8; j++ {
			pts = append(pts, Pt(i, j))
		}
	}
	got := Codegen(pts, []string{"i", "j"}, "body")
	// A full rectangle should fuse into two nested loops.
	if !strings.Contains(got, "for (i = 0; i <= 2; i++)") ||
		!strings.Contains(got, "for (j = 4; j <= 7; j++)") {
		t.Fatalf("rectangle not fused:\n%s", got)
	}
	// And appear only once each (no per-i duplication).
	if strings.Count(got, "for (j = 4; j <= 7; j++)") != 1 {
		t.Fatalf("inner loop duplicated:\n%s", got)
	}
}

func TestCodegenRaggedRows(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(0, 1), Pt(1, 5)}
	got := Codegen(pts, []string{"i", "j"}, "body")
	if !strings.Contains(got, "i = 0;") || !strings.Contains(got, "i = 1;") {
		t.Fatalf("ragged rows:\n%s", got)
	}
}

func TestCodegenUnsortedInput(t *testing.T) {
	pts := []Point{Pt(5), Pt(3), Pt(4)}
	got := Codegen(pts, []string{"j"}, "body")
	if !strings.Contains(got, "for (j = 3; j <= 5; j++)") {
		t.Fatalf("input not sorted before compression: %q", got)
	}
}

// TestCodegenLineCountProperty: generated code is compact — for a full
// rectangle the output is exactly depth loop headers plus one body line.
func TestCodegenCompactProperty(t *testing.T) {
	f := func(w, h uint8) bool {
		ww, hh := int64(w%6)+2, int64(h%6)+2
		var pts []Point
		for i := int64(0); i < ww; i++ {
			for j := int64(0); j < hh; j++ {
				pts = append(pts, Pt(i, j))
			}
		}
		got := Codegen(pts, []string{"i", "j"}, "body")
		lines := strings.Count(strings.TrimSpace(got), "\n") + 1
		return lines == 3 // outer for, inner for, body
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
