package poly

import (
	"fmt"
	"strings"
)

// ConstraintKind distinguishes inequalities from equalities.
type ConstraintKind int

const (
	// GE constrains Expr >= 0.
	GE ConstraintKind = iota
	// EQ constrains Expr == 0.
	EQ
)

// Constraint is an affine constraint: Expr >= 0 or Expr == 0.
type Constraint struct {
	Expr Expr
	Kind ConstraintKind
}

// GEZero builds the constraint e >= 0.
func GEZero(e Expr) Constraint { return Constraint{Expr: e, Kind: GE} }

// EQZero builds the constraint e == 0.
func EQZero(e Expr) Constraint { return Constraint{Expr: e, Kind: EQ} }

// Holds reports whether the constraint is satisfied at p.
func (c Constraint) Holds(p Point) bool {
	v := c.Expr.Eval(p)
	if c.Kind == EQ {
		return v == 0
	}
	return v >= 0
}

// String renders the constraint using x<i> names.
func (c Constraint) String() string { return c.StringNamed(nil) }

// StringNamed renders the constraint using the given variable names.
func (c Constraint) StringNamed(names []string) string {
	op := ">="
	if c.Kind == EQ {
		op = "=="
	}
	return fmt.Sprintf("%s %s 0", c.Expr.StringNamed(names), op)
}

// Set is a conjunction of affine constraints over a named vector of integer
// variables — a convex polyhedron intersected with the integer lattice. It
// represents iteration spaces and data spaces as in §3.2 of the paper.
type Set struct {
	Names []string
	Cons  []Constraint
}

// NewSet creates a set over the given variable names with no constraints
// (the universe of that dimensionality).
func NewSet(names ...string) *Set {
	return &Set{Names: append([]string(nil), names...)}
}

// Dims returns the dimensionality of the set.
func (s *Set) Dims() int { return len(s.Names) }

// Add appends constraints and returns the set for chaining.
func (s *Set) Add(cs ...Constraint) *Set {
	s.Cons = append(s.Cons, cs...)
	return s
}

// AddBounds appends lo <= x_i <= hi and returns the set for chaining.
func (s *Set) AddBounds(i int, lo, hi int64) *Set {
	n := s.Dims()
	s.Add(GEZero(Var(i, n).AddConst(-lo)))          // x_i - lo >= 0
	s.Add(GEZero(Var(i, n).Scale(-1).AddConst(hi))) // hi - x_i >= 0
	return s
}

// Contains reports whether p satisfies every constraint.
func (s *Set) Contains(p Point) bool {
	if len(p) != s.Dims() {
		return false
	}
	for _, c := range s.Cons {
		if !c.Holds(p) {
			return false
		}
	}
	return true
}

// Intersect returns a new set over the same variables containing the
// constraints of both sets. The sets must agree on dimensionality.
func (s *Set) Intersect(t *Set) *Set {
	if s.Dims() != t.Dims() {
		//lint:ignore cellboundary programmer-error invariant on an internal API; repro.capturePanic converts it to a contained PanicError at the cell boundary
		panic(fmt.Sprintf("poly: intersecting %d-dim set with %d-dim set", s.Dims(), t.Dims()))
	}
	out := NewSet(s.Names...)
	out.Cons = append(out.Cons, s.Cons...)
	out.Cons = append(out.Cons, t.Cons...)
	return out
}

// Bounds computes, per dimension, a conservative [lo, hi] bounding box from
// the single-variable constraints in the set. It returns ok=false if some
// dimension has no finite single-variable lower or upper bound; callers that
// need enumeration should build sets whose outermost bounds are explicit.
func (s *Set) Bounds() (lo, hi []int64, ok bool) {
	n := s.Dims()
	lo = make([]int64, n)
	hi = make([]int64, n)
	haveLo := make([]bool, n)
	haveHi := make([]bool, n)
	for _, c := range s.Cons {
		// Look for constraints mentioning exactly one variable.
		idx := -1
		single := true
		for i := 0; i < n; i++ {
			if c.Expr.Coeff(i) != 0 {
				if idx >= 0 {
					single = false
					break
				}
				idx = i
			}
		}
		if !single || idx < 0 {
			continue
		}
		a := c.Expr.Coeff(idx)
		b := c.Expr.Const
		// a*x + b >= 0  =>  x >= ceil(-b/a) when a > 0, x <= floor(-b/-a)... handle signs.
		switch {
		case c.Kind == EQ:
			if b%a == 0 {
				v := -b / a
				if !haveLo[idx] || v > lo[idx] {
					lo[idx], haveLo[idx] = v, true
				}
				if !haveHi[idx] || v < hi[idx] {
					hi[idx], haveHi[idx] = v, true
				}
			}
		case a > 0:
			v := ceilDiv(-b, a)
			if !haveLo[idx] || v > lo[idx] {
				lo[idx], haveLo[idx] = v, true
			}
		case a < 0:
			v := floorDiv(b, -a)
			if !haveHi[idx] || v < hi[idx] {
				hi[idx], haveHi[idx] = v, true
			}
		}
	}
	for i := 0; i < n; i++ {
		if !haveLo[i] || !haveHi[i] {
			return nil, nil, false
		}
	}
	return lo, hi, true
}

// Enumerate lists every integer point of the set in lexicographic order.
// It requires a finite bounding box (see Bounds) and scans it, filtering by
// the full constraint system; this is exact for any conjunctive set.
func (s *Set) Enumerate() ([]Point, error) {
	lo, hi, ok := s.Bounds()
	if !ok {
		return nil, fmt.Errorf("poly: set %v has no finite bounding box", s)
	}
	var out []Point
	n := s.Dims()
	p := make(Point, n)
	var rec func(d int)
	rec = func(d int) {
		if d == n {
			if s.Contains(p) {
				out = append(out, p.Clone())
			}
			return
		}
		for v := lo[d]; v <= hi[d]; v++ {
			p[d] = v
			rec(d + 1)
		}
	}
	rec(0)
	return out, nil
}

// Count returns the number of integer points in the set.
func (s *Set) Count() (int, error) {
	pts, err := s.Enumerate()
	if err != nil {
		return 0, err
	}
	return len(pts), nil
}

// IsEmpty reports whether the set has no integer points.
func (s *Set) IsEmpty() (bool, error) {
	n, err := s.Count()
	return n == 0, err
}

// String renders the set in the paper's notation:
// {(i, j) | cons && cons && ...}.
func (s *Set) String() string {
	var cons []string
	for _, c := range s.Cons {
		cons = append(cons, c.StringNamed(s.Names))
	}
	return fmt.Sprintf("{(%s) | %s}", strings.Join(s.Names, ", "), strings.Join(cons, " && "))
}

// ceilDiv returns ceil(a/b) for b > 0.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

// floorDiv returns floor(a/b) for b > 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
