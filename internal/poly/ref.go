package poly

import (
	"fmt"
	"strings"
)

// Array describes one data array of the program: its name, its extent in
// each dimension, and the size in bytes of one element. Arrays define the
// data space D of §3.2; elements are laid out row-major and arrays are
// placed one after another in a single linear address space (each array
// starts a fresh data block, per §3.3 assumption (ii)).
type Array struct {
	Name     string
	Dims     []int64
	ElemSize int64
}

// NewArray builds an array description. ElemSize defaults to 8 (a float64)
// when zero, matching the double-precision scientific codes of the paper.
func NewArray(name string, dims ...int64) *Array {
	return &Array{Name: name, Dims: append([]int64(nil), dims...), ElemSize: 8}
}

// WithElemSize sets the element size in bytes and returns the array.
func (a *Array) WithElemSize(bytes int64) *Array {
	a.ElemSize = bytes
	return a
}

// Elems returns the total number of elements.
func (a *Array) Elems() int64 {
	n := int64(1)
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// Bytes returns the total byte size of the array.
func (a *Array) Bytes() int64 { return a.Elems() * a.ElemSize }

// LinearIndex converts a multi-dimensional element index to a row-major
// linear element offset. Indices outside the declared extent are clamped
// into range (the paper's kernels never index out of bounds; clamping makes
// boundary-condition kernels forgiving to write).
func (a *Array) LinearIndex(idx []int64) int64 {
	if len(idx) != len(a.Dims) {
		//lint:ignore cellboundary programmer-error invariant on an internal API; repro.capturePanic converts it to a contained PanicError at the cell boundary
		panic(fmt.Sprintf("poly: %s has %d dims, got %d indices", a.Name, len(a.Dims), len(idx)))
	}
	var lin int64
	for i, v := range idx {
		if v < 0 {
			v = 0
		}
		if v >= a.Dims[i] {
			v = a.Dims[i] - 1
		}
		lin = lin*a.Dims[i] + v
	}
	return lin
}

// AccessKind distinguishes reads from writes; dependence analysis cares.
type AccessKind int

const (
	// Read marks a use of the referenced element.
	Read AccessKind = iota
	// Write marks a definition of the referenced element.
	Write
	// ReadWrite marks an update (e.g. B[j] += ...), both use and def.
	ReadWrite
)

// String names the access kind.
func (k AccessKind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case ReadWrite:
		return "update"
	default:
		return fmt.Sprintf("AccessKind(%d)", int(k))
	}
}

// Reads reports whether the access uses the element.
func (k AccessKind) Reads() bool { return k == Read || k == ReadWrite }

// Writes reports whether the access defines the element.
func (k AccessKind) Writes() bool { return k == Write || k == ReadWrite }

// Ref is an array reference inside a loop body: an affine mapping R from the
// iteration space to the data space of one array (§3.2). Subs[i] gives the
// affine subscript expression of array dimension i over the loop variables.
type Ref struct {
	Array *Array
	Subs  []Expr
	Kind  AccessKind
}

// NewRef builds a reference. The number of subscripts must match the array's
// dimensionality.
func NewRef(a *Array, kind AccessKind, subs ...Expr) *Ref {
	if len(subs) != len(a.Dims) {
		//lint:ignore cellboundary programmer-error invariant on an internal API; repro.capturePanic converts it to a contained PanicError at the cell boundary
		panic(fmt.Sprintf("poly: ref to %s needs %d subscripts, got %d", a.Name, len(a.Dims), len(subs)))
	}
	return &Ref{Array: a, Subs: append([]Expr(nil), subs...), Kind: kind}
}

// At applies the reference map R(I) at iteration point p, yielding the
// element index vector in the data space of the array.
func (r *Ref) At(p Point) []int64 {
	idx := make([]int64, len(r.Subs))
	for i, e := range r.Subs {
		idx[i] = e.Eval(p)
	}
	return idx
}

// LinearAt returns the row-major linear element offset touched at p. It is
// the fusion of LinearIndex ∘ At without the intermediate index vector: the
// trace generators call it once per simulated access, so it must not
// heap-allocate.
func (r *Ref) LinearAt(p Point) int64 {
	a := r.Array
	if len(r.Subs) != len(a.Dims) {
		//lint:ignore cellboundary programmer-error invariant on an internal API; repro.capturePanic converts it to a contained PanicError at the cell boundary
		panic(fmt.Sprintf("poly: %s has %d dims, got %d indices", a.Name, len(a.Dims), len(r.Subs)))
	}
	var lin int64
	for i, e := range r.Subs {
		v := e.Eval(p)
		if v < 0 {
			v = 0
		}
		if v >= a.Dims[i] {
			v = a.Dims[i] - 1
		}
		lin = lin*a.Dims[i] + v
	}
	return lin
}

// String renders the reference like A[i1+1][i2-1].
func (r *Ref) String() string { return r.StringNamed(nil) }

// StringNamed renders the reference using the given loop variable names.
func (r *Ref) StringNamed(names []string) string {
	var b strings.Builder
	b.WriteString(r.Array.Name)
	for _, e := range r.Subs {
		b.WriteString("[" + e.StringNamed(names) + "]")
	}
	return b.String()
}

// Layout assigns every array a base byte address in a single shared linear
// address space, in declaration order, each array starting a fresh data
// block of the given byte size. It is the concrete realization of §3.3's
// block numbering rules: blocks do not cross array boundaries (ii),
// consecutive blocks of an array get consecutive numbers, and the first
// block of the next array continues the numbering (iii).
type Layout struct {
	Arrays     []*Array
	BlockBytes int64
	base       map[*Array]int64 // byte address of each array's first element
	total      int64            // total bytes including alignment padding
}

// NewLayout places arrays back to back, aligning each to blockBytes so no
// block spans two arrays. blockBytes must be > 0.
func NewLayout(blockBytes int64, arrays ...*Array) *Layout {
	if blockBytes <= 0 {
		//lint:ignore cellboundary programmer-error invariant on an internal API; repro.capturePanic converts it to a contained PanicError at the cell boundary
		panic("poly: NewLayout requires blockBytes > 0")
	}
	l := &Layout{BlockBytes: blockBytes, base: make(map[*Array]int64)}
	var off int64
	for _, a := range arrays {
		l.Arrays = append(l.Arrays, a)
		l.base[a] = off
		off += a.Bytes()
		if rem := off % blockBytes; rem != 0 {
			off += blockBytes - rem
		}
	}
	l.total = off
	return l
}

// Base returns the byte address of the array's first element.
func (l *Layout) Base(a *Array) int64 {
	b, ok := l.base[a]
	if !ok {
		//lint:ignore cellboundary programmer-error invariant on an internal API; repro.capturePanic converts it to a contained PanicError at the cell boundary
		panic(fmt.Sprintf("poly: array %s not in layout", a.Name))
	}
	return b
}

// TotalBytes returns the padded byte size of the whole data space.
func (l *Layout) TotalBytes() int64 { return l.total }

// NumBlocks returns the number of data blocks covering the data space.
func (l *Layout) NumBlocks() int {
	return int((l.total + l.BlockBytes - 1) / l.BlockBytes)
}

// AddrOf returns the global byte address touched by ref at p.
func (l *Layout) AddrOf(r *Ref, p Point) int64 {
	return l.Base(r.Array) + r.LinearAt(p)*r.Array.ElemSize
}

// BlockOf returns the data-block number (β index of §3.3) touched by ref at p.
func (l *Layout) BlockOf(r *Ref, p Point) int {
	return int(l.AddrOf(r, p) / l.BlockBytes)
}
