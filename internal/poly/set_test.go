package poly

import (
	"testing"
	"testing/quick"
)

// paperSet builds the iteration space of the paper's Figure 4 example:
// {(i1, i2) | 0 <= i1 <= Q1-1 && 2 <= i2 <= Q2+1}.
func paperSet(q1, q2 int64) *Set {
	s := NewSet("i1", "i2")
	s.AddBounds(0, 0, q1-1)
	s.AddBounds(1, 2, q2+1)
	return s
}

func TestSetContains(t *testing.T) {
	s := paperSet(4, 3)
	cases := []struct {
		p  Point
		in bool
	}{
		{Pt(0, 2), true},
		{Pt(3, 4), true},
		{Pt(4, 2), false},  // i1 too big
		{Pt(0, 1), false},  // i2 too small
		{Pt(-1, 2), false}, // i1 negative
		{Pt(0, 5), false},  // i2 too big
	}
	for _, c := range cases {
		if got := s.Contains(c.p); got != c.in {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.in)
		}
	}
	if s.Contains(Pt(0)) {
		t.Error("wrong-arity point should not be contained")
	}
}

func TestSetBounds(t *testing.T) {
	s := paperSet(4, 3)
	lo, hi, ok := s.Bounds()
	if !ok {
		t.Fatal("Bounds not found")
	}
	if lo[0] != 0 || hi[0] != 3 || lo[1] != 2 || hi[1] != 4 {
		t.Fatalf("Bounds = %v..%v", lo, hi)
	}
}

func TestSetBoundsUnbounded(t *testing.T) {
	s := NewSet("x")
	s.Add(GEZero(Var(0, 1))) // x >= 0 only
	if _, _, ok := s.Bounds(); ok {
		t.Fatal("half-open set should have no bounding box")
	}
}

func TestSetEnumerate(t *testing.T) {
	s := paperSet(2, 2)
	pts, err := s.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	want := []Point{Pt(0, 2), Pt(0, 3), Pt(1, 2), Pt(1, 3)}
	if len(pts) != len(want) {
		t.Fatalf("Enumerate: %d points, want %d (%v)", len(pts), len(want), pts)
	}
	for i := range want {
		if !pts[i].Equal(want[i]) {
			t.Fatalf("Enumerate[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestSetEnumerateTriangular(t *testing.T) {
	// {(i, j) | 0 <= i <= 3 && 0 <= j && j <= i}: triangular via the
	// two-variable constraint i - j >= 0.
	s := NewSet("i", "j")
	s.AddBounds(0, 0, 3)
	s.AddBounds(1, 0, 3)
	s.Add(GEZero(Var(0, 2).Sub(Var(1, 2))))
	n, err := s.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4+3+2+1 {
		t.Fatalf("triangle count = %d, want 10", n)
	}
}

func TestSetEquality(t *testing.T) {
	// {x | x == 5, 0 <= x <= 10}
	s := NewSet("x")
	s.AddBounds(0, 0, 10)
	s.Add(EQZero(Var(0, 1).AddConst(-5)))
	pts, err := s.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0][0] != 5 {
		t.Fatalf("equality set = %v", pts)
	}
}

func TestSetIntersect(t *testing.T) {
	a := NewSet("x")
	a.AddBounds(0, 0, 10)
	b := NewSet("x")
	b.AddBounds(0, 5, 20)
	n, err := a.Intersect(b).Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 { // 5..10
		t.Fatalf("intersection count = %d, want 6", n)
	}
}

func TestSetEmpty(t *testing.T) {
	s := NewSet("x")
	s.AddBounds(0, 5, 3)
	empty, err := s.IsEmpty()
	if err == nil && !empty {
		t.Fatal("inverted bounds should be empty")
	}
}

func TestCeilFloorDiv(t *testing.T) {
	cases := []struct {
		a, b, ceil, floor int64
	}{
		{7, 2, 4, 3},
		{-7, 2, -3, -4},
		{6, 3, 2, 2},
		{-6, 3, -2, -2},
		{0, 5, 0, 0},
		{1, 5, 1, 0},
		{-1, 5, 0, -1},
	}
	for _, c := range cases {
		if got := ceilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
		if got := floorDiv(c.a, c.b); got != c.floor {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.floor)
		}
	}
}

func TestCeilFloorDivProperty(t *testing.T) {
	f := func(a int16, b uint8) bool {
		bb := int64(b%50) + 1
		aa := int64(a)
		c, fl := ceilDiv(aa, bb), floorDiv(aa, bb)
		// floor <= a/b <= ceil, and they differ by exactly 0 or 1.
		if c-fl != 0 && c-fl != 1 {
			return false
		}
		return fl*bb <= aa && c*bb >= aa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerateMatchesContainsProperty(t *testing.T) {
	// Every enumerated point is contained; count matches brute force.
	f := func(q1, q2 uint8) bool {
		a := int64(q1%5) + 1
		b := int64(q2%5) + 1
		s := paperSet(a, b)
		pts, err := s.Enumerate()
		if err != nil {
			return false
		}
		for _, p := range pts {
			if !s.Contains(p) {
				return false
			}
		}
		return int64(len(pts)) == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetString(t *testing.T) {
	s := NewSet("i")
	s.AddBounds(0, 0, 3)
	got := s.String()
	if got != "{(i) | i >= 0 && -i + 3 >= 0}" {
		t.Fatalf("String = %q", got)
	}
}
