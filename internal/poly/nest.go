package poly

import (
	"fmt"
	"strings"
)

// Loop is one level of a loop nest. Its bounds are affine expressions over
// the *outer* loop variables (and may also mention its own variable with
// coefficient zero, which is ignored). Bounds are inclusive: the loop runs
// Lower(p) <= x <= Upper(p). Step is the positive stride (default 1).
type Loop struct {
	Name  string
	Lower Expr
	Upper Expr
	Step  int64
}

// Nest is a perfect loop nest: the iteration-space generator the mapper
// consumes. Bounds of inner loops may depend affinely on outer variables, so
// triangular and trapezoidal spaces are expressible.
type Nest struct {
	Loops []Loop
}

// NewNest builds a nest from loops, defaulting Step to 1.
func NewNest(loops ...Loop) *Nest {
	n := &Nest{Loops: append([]Loop(nil), loops...)}
	for i := range n.Loops {
		if n.Loops[i].Step == 0 {
			n.Loops[i].Step = 1
		}
	}
	return n
}

// RectLoop builds a loop with constant inclusive bounds.
func RectLoop(name string, lo, hi int64) Loop {
	return Loop{Name: name, Lower: Constant(lo), Upper: Constant(hi), Step: 1}
}

// Depth returns the nesting depth.
func (n *Nest) Depth() int { return len(n.Loops) }

// Names returns the loop variable names outermost-first.
func (n *Nest) Names() []string {
	names := make([]string, len(n.Loops))
	for i, l := range n.Loops {
		names[i] = l.Name
	}
	return names
}

// Contains reports whether p lies inside the nest bounds.
func (n *Nest) Contains(p Point) bool {
	if len(p) != n.Depth() {
		return false
	}
	for i, l := range n.Loops {
		lo, hi := l.Lower.Eval(p), l.Upper.Eval(p)
		if p[i] < lo || p[i] > hi {
			return false
		}
		if l.Step > 1 && (p[i]-lo)%l.Step != 0 {
			return false
		}
	}
	return true
}

// Points enumerates every iteration of the nest in lexicographic (program)
// order. The result is the iteration space K of §3.2.
func (n *Nest) Points() []Point {
	var out []Point
	p := make(Point, n.Depth())
	var rec func(d int)
	rec = func(d int) {
		if d == n.Depth() {
			out = append(out, p.Clone())
			return
		}
		l := n.Loops[d]
		lo, hi := l.Lower.Eval(p), l.Upper.Eval(p)
		for v := lo; v <= hi; v += l.Step {
			p[d] = v
			rec(d + 1)
		}
	}
	rec(0)
	return out
}

// Size returns the number of iterations without materializing them when the
// nest is rectangular; general nests fall back to enumeration.
func (n *Nest) Size() int {
	rect := true
	total := int64(1)
	for _, l := range n.Loops {
		if !l.Lower.IsConstant() || !l.Upper.IsConstant() {
			rect = false
			break
		}
		span := l.Upper.Const - l.Lower.Const
		if span < 0 {
			return 0
		}
		total *= span/l.Step + 1
	}
	if rect {
		return int(total)
	}
	return len(n.Points())
}

// Set converts the nest to a constraint set (dropping step information for
// steps of 1; stepped loops are kept via enumeration-based paths).
func (n *Nest) Set() *Set {
	s := NewSet(n.Names()...)
	d := n.Depth()
	for i, l := range n.Loops {
		// x_i - Lower >= 0
		lower := l.Lower.widen(d)
		s.Add(GEZero(Var(i, d).Sub(lower)))
		// Upper - x_i >= 0
		upper := l.Upper.widen(d)
		s.Add(GEZero(upper.Sub(Var(i, d))))
	}
	return s
}

// String renders the nest as C-like pseudo-code, matching the paper's
// example style (Figure 4).
func (n *Nest) String() string {
	var b strings.Builder
	for d, l := range n.Loops {
		indent := strings.Repeat("  ", d)
		step := ""
		if l.Step != 1 {
			step = fmt.Sprintf(" step %d", l.Step)
		}
		fmt.Fprintf(&b, "%sfor (%s = %s; %s <= %s; %s++%s)\n",
			indent, l.Name, l.Lower.StringNamed(n.Names()), l.Name,
			l.Upper.StringNamed(n.Names()), l.Name, step)
	}
	return b.String()
}
