package poly

import (
	"testing"
	"testing/quick"
)

func TestExprConstructors(t *testing.T) {
	c := Constant(7)
	if !c.IsConstant() || c.Const != 7 || c.Dims() != 0 {
		t.Fatalf("Constant(7) = %+v", c)
	}
	v := Var(1, 3)
	if v.IsConstant() || v.Coeff(0) != 0 || v.Coeff(1) != 1 || v.Coeff(2) != 0 {
		t.Fatalf("Var(1,3) = %+v", v)
	}
	e := NewExpr([]int64{2, -3}, 5)
	if e.Coeff(0) != 2 || e.Coeff(1) != -3 || e.Const != 5 {
		t.Fatalf("NewExpr = %+v", e)
	}
	// NewExpr must copy its argument.
	src := []int64{1, 2}
	e2 := NewExpr(src, 0)
	src[0] = 99
	if e2.Coeff(0) != 1 {
		t.Fatal("NewExpr aliased its input slice")
	}
}

func TestExprVarPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Var(3,3) should panic")
		}
	}()
	Var(3, 3)
}

func TestExprArithmetic(t *testing.T) {
	x := Var(0, 2)
	y := Var(1, 2)
	e := x.Scale(2).Add(y.Scale(-1)).AddConst(4) // 2x - y + 4
	p := Pt(3, 5)
	if got := e.Eval(p); got != 2*3-5+4 {
		t.Fatalf("Eval = %d, want 5", got)
	}
	d := e.Sub(x) // x - y + 4
	if got := d.Eval(p); got != 3-5+4 {
		t.Fatalf("Sub/Eval = %d, want 2", got)
	}
}

func TestExprCoeffBeyondWidth(t *testing.T) {
	e := NewExpr([]int64{1}, 0)
	if e.Coeff(5) != 0 {
		t.Fatal("Coeff beyond width should be 0")
	}
}

func TestExprAddDifferentWidths(t *testing.T) {
	a := NewExpr([]int64{1}, 1)
	b := NewExpr([]int64{0, 2}, 2)
	s := a.Add(b)
	if s.Dims() != 2 || s.Coeff(0) != 1 || s.Coeff(1) != 2 || s.Const != 3 {
		t.Fatalf("mixed-width Add = %+v", s)
	}
}

func TestExprEqual(t *testing.T) {
	a := NewExpr([]int64{1, 0}, 2)
	b := NewExpr([]int64{1}, 2)
	if !a.Equal(b) {
		t.Fatal("trailing zero coefficients should compare equal")
	}
	if a.Equal(b.AddConst(1)) {
		t.Fatal("different constants compared equal")
	}
}

func TestExprString(t *testing.T) {
	e := NewExpr([]int64{1, -1, 2}, -3)
	got := e.StringNamed([]string{"i", "j", "k"})
	want := "i - j + 2*k - 3"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if Constant(0).String() != "0" {
		t.Fatalf("Constant(0) = %q", Constant(0).String())
	}
}

func TestExprAddCommutativeProperty(t *testing.T) {
	f := func(a0, a1, ac, b0, b1, bc int8) bool {
		a := NewExpr([]int64{int64(a0), int64(a1)}, int64(ac))
		b := NewExpr([]int64{int64(b0), int64(b1)}, int64(bc))
		return a.Add(b).Equal(b.Add(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExprEvalLinearityProperty(t *testing.T) {
	f := func(a0, a1, ac, b0, b1, bc, p0, p1 int8) bool {
		a := NewExpr([]int64{int64(a0), int64(a1)}, int64(ac))
		b := NewExpr([]int64{int64(b0), int64(b1)}, int64(bc))
		p := Pt(int64(p0), int64(p1))
		return a.Add(b).Eval(p) == a.Eval(p)+b.Eval(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExprScaleDistributesProperty(t *testing.T) {
	f := func(a0, a1, ac, k, p0, p1 int8) bool {
		a := NewExpr([]int64{int64(a0), int64(a1)}, int64(ac))
		p := Pt(int64(p0), int64(p1))
		return a.Scale(int64(k)).Eval(p) == int64(k)*a.Eval(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPointLexOrder(t *testing.T) {
	cases := []struct {
		a, b Point
		less bool
	}{
		{Pt(0, 0), Pt(0, 1), true},
		{Pt(0, 1), Pt(0, 0), false},
		{Pt(1, 0), Pt(0, 9), false},
		{Pt(2, 3), Pt(2, 3), false},
		{Pt(1), Pt(1, 0), true}, // shorter is less when prefix equal
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v < %v = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestPointLessAntisymmetryProperty(t *testing.T) {
	f := func(a0, a1, b0, b1 int8) bool {
		a := Pt(int64(a0), int64(a1))
		b := Pt(int64(b0), int64(b1))
		if a.Equal(b) {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPointCloneIndependence(t *testing.T) {
	p := Pt(1, 2)
	q := p.Clone()
	q[0] = 9
	if p[0] != 1 {
		t.Fatal("Clone aliased the point")
	}
}
