package poly

import (
	"fmt"
	"strings"
)

// Expr is an affine expression over a vector of loop variables:
//
//	Const + Coeffs[0]*x0 + Coeffs[1]*x1 + ... + Coeffs[n-1]*x(n-1)
//
// The variable order is positional; names are supplied by the enclosing
// Space or Nest when printing. An Expr with an empty coefficient vector is a
// constant. Expr values are immutable by convention: operations return new
// expressions.
type Expr struct {
	Coeffs []int64
	Const  int64
}

// Constant returns the affine expression with value c and no variables.
func Constant(c int64) Expr { return Expr{Const: c} }

// Var returns the affine expression that selects variable i out of n.
func Var(i, n int) Expr {
	if i < 0 || i >= n {
		//lint:ignore cellboundary programmer-error invariant on an internal API; repro.capturePanic converts it to a contained PanicError at the cell boundary
		panic(fmt.Sprintf("poly: Var(%d, %d) out of range", i, n))
	}
	co := make([]int64, n)
	co[i] = 1
	return Expr{Coeffs: co}
}

// NewExpr builds an expression from an explicit coefficient vector and
// constant term. The slice is copied.
func NewExpr(coeffs []int64, c int64) Expr {
	co := make([]int64, len(coeffs))
	copy(co, coeffs)
	return Expr{Coeffs: co, Const: c}
}

// Dims reports the number of variables the expression is defined over.
func (e Expr) Dims() int { return len(e.Coeffs) }

// IsConstant reports whether every variable coefficient is zero.
func (e Expr) IsConstant() bool {
	for _, c := range e.Coeffs {
		if c != 0 {
			return false
		}
	}
	return true
}

// Coeff returns the coefficient of variable i (zero when i is beyond the
// stored vector, so expressions over fewer dims compose with wider spaces).
func (e Expr) Coeff(i int) int64 {
	if i < len(e.Coeffs) {
		return e.Coeffs[i]
	}
	return 0
}

// widen returns a copy of e padded with zero coefficients up to n dims.
func (e Expr) widen(n int) Expr {
	if len(e.Coeffs) >= n {
		return e
	}
	co := make([]int64, n)
	copy(co, e.Coeffs)
	return Expr{Coeffs: co, Const: e.Const}
}

// Add returns e + f.
func (e Expr) Add(f Expr) Expr {
	n := max(len(e.Coeffs), len(f.Coeffs))
	out := Expr{Coeffs: make([]int64, n), Const: e.Const + f.Const}
	for i := 0; i < n; i++ {
		out.Coeffs[i] = e.Coeff(i) + f.Coeff(i)
	}
	return out
}

// Sub returns e - f.
func (e Expr) Sub(f Expr) Expr { return e.Add(f.Scale(-1)) }

// Scale returns k*e.
func (e Expr) Scale(k int64) Expr {
	out := Expr{Coeffs: make([]int64, len(e.Coeffs)), Const: e.Const * k}
	for i, c := range e.Coeffs {
		out.Coeffs[i] = c * k
	}
	return out
}

// AddConst returns e + c.
func (e Expr) AddConst(c int64) Expr {
	out := NewExpr(e.Coeffs, e.Const+c)
	return out
}

// Eval evaluates the expression at the given point. The point must supply a
// value for every variable with a nonzero coefficient.
func (e Expr) Eval(p Point) int64 {
	v := e.Const
	for i, c := range e.Coeffs {
		if c == 0 {
			continue
		}
		if i >= len(p) {
			//lint:ignore cellboundary programmer-error invariant on an internal API; repro.capturePanic converts it to a contained PanicError at the cell boundary
			panic(fmt.Sprintf("poly: evaluating %d-dim expr at %d-dim point", len(e.Coeffs), len(p)))
		}
		v += c * p[i]
	}
	return v
}

// Equal reports structural equality after widening to a common dimension.
func (e Expr) Equal(f Expr) bool {
	if e.Const != f.Const {
		return false
	}
	n := max(len(e.Coeffs), len(f.Coeffs))
	for i := 0; i < n; i++ {
		if e.Coeff(i) != f.Coeff(i) {
			return false
		}
	}
	return true
}

// String renders the expression with x0, x1, ... variable names.
func (e Expr) String() string { return e.StringNamed(nil) }

// StringNamed renders the expression using the given variable names; missing
// names fall back to x<i>.
func (e Expr) StringNamed(names []string) string {
	var b strings.Builder
	wrote := false
	for i, c := range e.Coeffs {
		if c == 0 {
			continue
		}
		name := fmt.Sprintf("x%d", i)
		if i < len(names) && names[i] != "" {
			name = names[i]
		}
		switch {
		case !wrote && c == 1:
			b.WriteString(name)
		case !wrote && c == -1:
			b.WriteString("-" + name)
		case !wrote:
			fmt.Fprintf(&b, "%d*%s", c, name)
		case c == 1:
			b.WriteString(" + " + name)
		case c == -1:
			b.WriteString(" - " + name)
		case c > 0:
			fmt.Fprintf(&b, " + %d*%s", c, name)
		default:
			fmt.Fprintf(&b, " - %d*%s", -c, name)
		}
		wrote = true
	}
	switch {
	case !wrote:
		fmt.Fprintf(&b, "%d", e.Const)
	case e.Const > 0:
		fmt.Fprintf(&b, " + %d", e.Const)
	case e.Const < 0:
		fmt.Fprintf(&b, " - %d", -e.Const)
	}
	return b.String()
}

// Point is an integer point in an iteration or data space.
type Point []int64

// Pt is a convenience constructor for Point literals.
func Pt(vals ...int64) Point { return Point(vals) }

// Clone returns a copy of the point.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports element-wise equality.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Less reports lexicographic order, the execution order of a loop nest.
func (p Point) Less(q Point) bool {
	n := min(len(p), len(q))
	for i := 0; i < n; i++ {
		if p[i] != q[i] {
			return p[i] < q[i]
		}
	}
	return len(p) < len(q)
}

// String renders the point as (a, b, ...).
func (p Point) String() string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
