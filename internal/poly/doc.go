// Package poly implements the small polyhedral framework the mapper is
// built on: affine expressions over loop variables, affine constraints,
// integer sets, rectangular-with-affine-bounds loop nests, array references
// as affine maps from iteration space to data space, point enumeration, and
// loop-nest code generation.
//
// It plays the role the Omega Library plays in the paper (Kandemir et al.,
// PLDI 2010, §3.2): iteration spaces and data spaces are represented as sets
// of integer points, array references map iteration points to data points,
// and codegen turns a set of iteration points back into a compact loop nest
// that enumerates them.
//
// The representation is deliberately simpler than full Presburger
// arithmetic: sets are conjunctions of affine inequalities/equalities
// (convex), and unions are kept as explicit lists of convex pieces or as
// explicit point sets. This is all the mapper needs — iteration groups are
// arbitrary subsets of the iteration space discovered by tagging, and they
// are carried as point sets which codegen re-compacts into loops.
package poly
