// Package optimal computes (or closely approximates) the optimal
// iteration-group-to-core mapping the paper compares against in Figure 20.
// The authors solved an integer linear program, reporting up to 23 hours per
// instance; the figure only needs the *gap* between the heuristic and the
// optimum, so we compute the optimum exactly by exhaustive enumeration with
// core-symmetry pruning when the instance is small, and fall back to
// steepest-descent local search (move + swap neighborhoods, multiple seeds)
// on larger instances, reporting the best mapping found.
package optimal

import (
	"fmt"
	"math"
)

// Cost evaluates a complete per-core assignment of group IDs and returns
// its cost (typically simulated total cycles). Implementations must be
// deterministic.
type Cost func(perCore [][]int) (uint64, error)

// Options bounds the search.
type Options struct {
	// ExhaustiveLimit is the largest number of (pruned) assignments the
	// exhaustive search may enumerate; above it, local search is used.
	// Zero selects 20000.
	ExhaustiveLimit int
	// MaxEvals caps total cost evaluations in local search. Zero selects
	// 3000.
	MaxEvals int
}

func (o Options) exhaustiveLimit() float64 {
	if o.ExhaustiveLimit <= 0 {
		return 20000
	}
	return float64(o.ExhaustiveLimit)
}

func (o Options) maxEvals() int {
	if o.MaxEvals <= 0 {
		return 3000
	}
	return o.MaxEvals
}

// Result reports the outcome of a search.
type Result struct {
	PerCore [][]int
	Cost    uint64
	Evals   int
	// Exact is true when the search enumerated the full (symmetry-pruned)
	// space, so Cost is the true optimum of the cost function.
	Exact bool
}

// Search finds the best assignment of numGroups groups onto ncores cores.
// seeds are optional starting assignments for the local-search fallback
// (e.g. the TopologyAware mapping); they are also evaluated directly so the
// result is never worse than any seed.
func Search(numGroups, ncores int, seeds [][][]int, cost Cost, opt Options) (*Result, error) {
	if numGroups <= 0 || ncores <= 0 {
		return nil, fmt.Errorf("optimal: need groups and cores, got %d/%d", numGroups, ncores)
	}
	// Pruned space size: product over groups of min(g+1, ncores) — group g
	// may only start a new core or reuse cores 0..min(g, ncores-1).
	space := 1.0
	for g := 0; g < numGroups; g++ {
		space *= math.Min(float64(g+1), float64(ncores))
		if space > 1e18 {
			break
		}
	}
	if space <= opt.exhaustiveLimit() {
		return exhaustive(numGroups, ncores, cost)
	}
	return localSearch(numGroups, ncores, seeds, cost, opt)
}

// exhaustive enumerates all assignments up to core renaming. Core symmetry
// holds because the paper machines are homogeneous at each level; with
// heterogeneous topologies the pruning is only approximate, so exhaustive
// additionally re-evaluates the found assignment under identity naming —
// callers with asymmetric cost should keep instances in local-search range.
func exhaustive(numGroups, ncores int, cost Cost) (*Result, error) {
	assign := make([]int, numGroups)
	res := &Result{Exact: true}
	first := true
	var rec func(g, maxUsed int) error
	rec = func(g, maxUsed int) error {
		if g == numGroups {
			pc := toPerCore(assign, ncores)
			c, err := cost(pc)
			if err != nil {
				return err
			}
			res.Evals++
			if first || c < res.Cost {
				first = false
				res.Cost = c
				res.PerCore = clonePC(pc)
			}
			return nil
		}
		limit := maxUsed + 1
		if limit >= ncores {
			limit = ncores - 1
		}
		for c := 0; c <= limit; c++ {
			assign[g] = c
			nm := maxUsed
			if c > maxUsed {
				nm = c
			}
			if err := rec(g+1, nm); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, -1); err != nil {
		return nil, err
	}
	return res, nil
}

// localSearch runs steepest-descent over move and swap neighborhoods from
// each seed (plus a round-robin seed), keeping the best local optimum.
func localSearch(numGroups, ncores int, seeds [][][]int, cost Cost, opt Options) (*Result, error) {
	res := &Result{}
	budget := opt.maxEvals()
	evalPC := func(pc [][]int) (uint64, error) {
		c, err := cost(pc)
		if err != nil {
			return 0, err
		}
		res.Evals++
		return c, nil
	}

	starts := make([][]int, 0, len(seeds)+2)
	for _, s := range seeds {
		starts = append(starts, fromPerCore(s, numGroups))
	}
	rr := make([]int, numGroups)
	for g := range rr {
		rr[g] = g % ncores
	}
	starts = append(starts, rr)
	blocked := make([]int, numGroups)
	per := (numGroups + ncores - 1) / ncores
	for g := range blocked {
		blocked[g] = g / per
	}
	starts = append(starts, blocked)

	first := true
	for _, start := range starts {
		assign := append([]int(nil), start...)
		cur, err := evalPC(toPerCore(assign, ncores))
		if err != nil {
			return nil, err
		}
		improved := true
		for improved && res.Evals < budget {
			improved = false
			// Move neighborhood.
			for g := 0; g < numGroups && res.Evals < budget; g++ {
				orig := assign[g]
				for c := 0; c < ncores; c++ {
					if c == orig {
						continue
					}
					assign[g] = c
					nc, err := evalPC(toPerCore(assign, ncores))
					if err != nil {
						return nil, err
					}
					if nc < cur {
						cur = nc
						orig = c
						improved = true
					} else {
						assign[g] = orig
					}
					if res.Evals >= budget {
						break
					}
				}
				assign[g] = orig
			}
			// Swap neighborhood.
			for a := 0; a < numGroups && res.Evals < budget; a++ {
				for b := a + 1; b < numGroups && res.Evals < budget; b++ {
					if assign[a] == assign[b] {
						continue
					}
					assign[a], assign[b] = assign[b], assign[a]
					nc, err := evalPC(toPerCore(assign, ncores))
					if err != nil {
						return nil, err
					}
					if nc < cur {
						cur = nc
						improved = true
					} else {
						assign[a], assign[b] = assign[b], assign[a]
					}
				}
			}
		}
		if first || cur < res.Cost {
			first = false
			res.Cost = cur
			res.PerCore = clonePC(toPerCore(assign, ncores))
		}
		if res.Evals >= budget {
			break
		}
	}
	return res, nil
}

// toPerCore converts a group→core vector into per-core lists.
func toPerCore(assign []int, ncores int) [][]int {
	pc := make([][]int, ncores)
	for g, c := range assign {
		pc[c] = append(pc[c], g)
	}
	return pc
}

// fromPerCore inverts per-core lists into a group→core vector.
func fromPerCore(pc [][]int, numGroups int) []int {
	assign := make([]int, numGroups)
	for c, gs := range pc {
		for _, g := range gs {
			if g >= 0 && g < numGroups {
				assign[g] = c
			}
		}
	}
	return assign
}

// clonePC deep-copies per-core lists.
func clonePC(pc [][]int) [][]int {
	out := make([][]int, len(pc))
	for i, gs := range pc {
		out[i] = append([]int(nil), gs...)
	}
	return out
}
