package optimal

import (
	"fmt"
	"testing"
)

// sumCost is a toy cost: the squared imbalance of per-core group counts
// plus a placement preference (group g prefers core g%2). Deterministic,
// with a known optimum for small instances.
func sumCost(perCore [][]int) (uint64, error) {
	var cost uint64
	for c, gs := range perCore {
		cost += uint64(len(gs) * len(gs) * 10)
		for _, g := range gs {
			if g%2 != c%2 {
				cost += 3
			}
		}
	}
	return cost, nil
}

// bruteForce enumerates every assignment without pruning.
func bruteForce(numGroups, ncores int, cost Cost) uint64 {
	assign := make([]int, numGroups)
	best := uint64(1 << 62)
	var rec func(g int)
	rec = func(g int) {
		if g == numGroups {
			pc := toPerCore(assign, ncores)
			c, _ := cost(pc)
			if c < best {
				best = c
			}
			return
		}
		for c := 0; c < ncores; c++ {
			assign[g] = c
			rec(g + 1)
		}
	}
	rec(0)
	return best
}

func TestExhaustiveMatchesBruteForce(t *testing.T) {
	// The pruned exhaustive search must find the same optimum as the
	// unpruned enumeration for a symmetric cost.
	for _, tc := range []struct{ groups, cores int }{{4, 2}, {5, 3}, {6, 2}} {
		res, err := Search(tc.groups, tc.cores, nil, sumCost, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact {
			t.Fatalf("%d/%d expected exhaustive", tc.groups, tc.cores)
		}
		want := bruteForce(tc.groups, tc.cores, sumCost)
		if res.Cost != want {
			t.Fatalf("%d groups/%d cores: got %d, brute force %d", tc.groups, tc.cores, res.Cost, want)
		}
	}
}

func TestLocalSearchNotWorseThanSeed(t *testing.T) {
	// Too large for exhaustive: 20 groups on 8 cores.
	seed := make([][]int, 8)
	for g := 0; g < 20; g++ {
		seed[0] = append(seed[0], g) // terrible seed: everything on core 0
	}
	seedCost, _ := sumCost(seed)
	res, err := Search(20, 8, [][][]int{seed}, sumCost, Options{MaxEvals: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("20/8 should use local search")
	}
	if res.Cost > seedCost {
		t.Fatalf("local search worse than seed: %d > %d", res.Cost, seedCost)
	}
	// The toy optimum balances groups (20/8 -> 2 or 3 per core); local
	// search should get well below the all-on-one-core seed.
	if res.Cost >= seedCost/2 {
		t.Fatalf("local search barely improved: %d from %d", res.Cost, seedCost)
	}
}

func TestSearchDeterministic(t *testing.T) {
	r1, err := Search(12, 4, nil, sumCost, Options{MaxEvals: 500})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Search(12, 4, nil, sumCost, Options{MaxEvals: 500})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cost != r2.Cost || r1.Evals != r2.Evals {
		t.Fatalf("nondeterministic search: %v vs %v", r1, r2)
	}
}

func TestSearchCoversAllGroups(t *testing.T) {
	res, err := Search(9, 3, nil, sumCost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, gs := range res.PerCore {
		for _, g := range gs {
			if seen[g] {
				t.Fatalf("group %d assigned twice", g)
			}
			seen[g] = true
		}
	}
	if len(seen) != 9 {
		t.Fatalf("assignment covers %d of 9 groups", len(seen))
	}
}

func TestSearchPropagatesCostErrors(t *testing.T) {
	bad := func([][]int) (uint64, error) { return 0, fmt.Errorf("boom") }
	if _, err := Search(3, 2, nil, bad, Options{}); err == nil {
		t.Fatal("cost error swallowed")
	}
}

func TestSearchRejectsDegenerate(t *testing.T) {
	if _, err := Search(0, 2, nil, sumCost, Options{}); err == nil {
		t.Fatal("zero groups accepted")
	}
	if _, err := Search(2, 0, nil, sumCost, Options{}); err == nil {
		t.Fatal("zero cores accepted")
	}
}

func TestToFromPerCoreRoundTrip(t *testing.T) {
	assign := []int{0, 2, 1, 2, 0}
	pc := toPerCore(assign, 3)
	back := fromPerCore(pc, 5)
	for i := range assign {
		if back[i] != assign[i] {
			t.Fatalf("round trip broke at %d: %v vs %v", i, assign, back)
		}
	}
}
