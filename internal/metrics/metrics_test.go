package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestRatioImprovement(t *testing.T) {
	if got := Ratio(0.7).Improvement(); math.Abs(got-30) > 1e-9 {
		t.Fatalf("Improvement(0.7) = %f", got)
	}
	if got := Ratio(1.0).Improvement(); got != 0 {
		t.Fatalf("Improvement(1.0) = %f", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %f", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %f", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("GeoMean = %f", got)
	}
	if got := GeoMean([]float64{2, 0}); got != 0 {
		t.Fatalf("GeoMean with zero = %f", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %f", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("My Title", "colA", "colB")
	tb.AddRatios("row1", 1.0, 0.85)
	tb.AddRow("longer-row-name", "x", "y")
	out := tb.String()
	for _, want := range []string{"My Title", "colA", "colB", "row1", "1.000", "0.850", "longer-row-name"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Header alignment: every line reaches at least the widest row name.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 {
		t.Fatalf("table too short:\n%s", out)
	}
}

func TestRenderSeries(t *testing.T) {
	s := []Series{
		{Label: "Base", Points: []Point{{X: "8", Y: 1}, {X: "16", Y: 1}}},
		{Label: "TA", Points: []Point{{X: "8", Y: 0.8}}},
	}
	out := RenderSeries("fig", s)
	for _, want := range []string{"fig", "Base", "TA", "0.800", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("series missing %q:\n%s", want, out)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("SortedKeys = %v", keys)
	}
}
