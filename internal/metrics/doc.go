// Package metrics provides the result bookkeeping and rendering the
// experiment harness uses: normalized cycle ratios, means, and ASCII
// tables/series in the style of the paper's figures.
//
// It also carries the per-cell instrumentation of the parallel runner
// (CellStat, CellLog): one record per computed experiment-grid cell with
// its wall time, simulated cycle count and approximate heap allocation,
// aggregated into the summary benchtool prints under -cellstats. CellLog
// is safe for concurrent use by the worker pool.
package metrics
