package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Ratio is a normalized execution time (scheme cycles / Base cycles);
// below 1.0 means the scheme is faster than Base.
type Ratio float64

// Improvement converts the ratio to the paper's "% improvement" form.
func (r Ratio) Improvement() float64 { return (1 - float64(r)) * 100 }

// Mean returns the arithmetic mean of a ratio slice (the paper averages
// normalized execution times arithmetically).
func Mean(rs []float64) float64 {
	if len(rs) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range rs {
		s += r
	}
	return s / float64(len(rs))
}

// GeoMean returns the geometric mean, reported alongside for robustness.
func GeoMean(rs []float64) float64 {
	if len(rs) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range rs {
		if r <= 0 {
			return 0
		}
		s += math.Log(r)
	}
	return math.Exp(s / float64(len(rs)))
}

// Table accumulates named rows of named columns and renders them aligned.
type Table struct {
	Title   string
	Columns []string
	rows    []row
}

type row struct {
	name string
	vals []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(name string, cells ...string) {
	t.rows = append(t.rows, row{name: name, vals: cells})
}

// AddRatios appends a row of ratios formatted to three decimals.
func (t *Table) AddRatios(name string, ratios ...float64) {
	cells := make([]string, len(ratios))
	for i, r := range ratios {
		cells[i] = fmt.Sprintf("%.3f", r)
	}
	t.AddRow(name, cells...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len("benchmark")
	for _, r := range t.rows {
		if len(r.name) > widths[0] {
			widths[0] = len(r.name)
		}
	}
	for i, c := range t.Columns {
		widths[i+1] = len(c)
	}
	for _, r := range t.rows {
		for i, v := range r.vals {
			if i+1 < len(widths) && len(v) > widths[i+1] {
				widths[i+1] = len(v)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	writeCell := func(s string, w int) {
		fmt.Fprintf(&b, "%-*s  ", w, s)
	}
	writeCell("benchmark", widths[0])
	for i, c := range t.Columns {
		writeCell(c, widths[i+1])
	}
	b.WriteString("\n")
	total := widths[0]
	for _, w := range widths[1:] {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total+2) + "\n")
	for _, r := range t.rows {
		writeCell(r.name, widths[0])
		for i, v := range r.vals {
			w := 0
			if i+1 < len(widths) {
				w = widths[i+1]
			}
			writeCell(v, w)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Series is a labeled sequence of (x, y) points — one line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Point is one figure point.
type Point struct {
	X string
	Y float64
}

// RenderSeries prints several series as a compact aligned listing, the
// closest text form of a paper figure.
func RenderSeries(title string, series []Series) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	// Collect x labels in first-seen order.
	var xs []string
	seen := map[string]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	w := len("x")
	for _, x := range xs {
		if len(x) > w {
			w = len(x)
		}
	}
	fmt.Fprintf(&b, "%-*s", w+2, "x")
	for _, s := range series {
		fmt.Fprintf(&b, "%12s", s.Label)
	}
	b.WriteString("\n")
	for _, x := range xs {
		fmt.Fprintf(&b, "%-*s", w+2, x)
		for _, s := range series {
			y, ok := lookup(s, x)
			if ok {
				fmt.Fprintf(&b, "%12.3f", y)
			} else {
				fmt.Fprintf(&b, "%12s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func lookup(s Series, x string) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// SortedKeys returns map keys in sorted order (rendering helper).
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
