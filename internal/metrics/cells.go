package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// CellStat records the execution of one experiment-grid cell — one
// (kernel, machine, scheme, config) simulation run by the parallel runner.
type CellStat struct {
	// Key is the cell's canonical identity (the runner's memoization key).
	Key string `json:"key"`
	// Wall is the wall-clock time the cell took (mapping + simulation).
	Wall time.Duration `json:"wall_ns"`
	// SimCycles is the simulated cycle count the cell produced.
	SimCycles uint64 `json:"sim_cycles"`
	// Accesses is the number of memory accesses the cell simulated. With
	// streamed traces this comes from the cursors' precomputed lengths, so
	// it stays exact even though no access slice is ever materialized.
	Accesses uint64 `json:"accesses"`
	// AllocBytes is the heap allocated while the cell ran. Attribution is
	// exact under a single worker; with concurrent workers the per-cell
	// numbers overlap (the Go runtime exposes only process-wide counters)
	// and should be read as an upper bound.
	AllocBytes uint64 `json:"alloc_bytes"`
	// Status records how the attempt ended: "ok" for a completed cell,
	// otherwise the failure stage the runner classified ("panic",
	// "timeout", "invariant", "diverged", ...). Empty in records written
	// before status tracking existed.
	Status string `json:"status,omitempty"`
	// Worker attributes the cell to the fabric worker process that ran it.
	// Empty for cells computed by the in-process pool.
	Worker string `json:"worker,omitempty"`

	// Simulator phase attribution (zero / omitted when the cell ran on the
	// classic sequential event loop with no stats plumbing). SimWorkers is
	// the effective worker count; SplitWall/PrivateWall/ReplayWall break the
	// simulation's wall time into the set-partitioned engine's three phases
	// (cursor split, parallel private-prefix simulation, sequential shared
	// replay); SimEscaped counts accesses that escaped every private cache
	// and reached the replay phase. All observational — never part of any
	// result or figure.
	SimWorkers  int           `json:"sim_workers,omitempty"`
	SplitWall   time.Duration `json:"split_wall_ns,omitempty"`
	PrivateWall time.Duration `json:"private_wall_ns,omitempty"`
	ReplayWall  time.Duration `json:"replay_wall_ns,omitempty"`
	SimEscaped  uint64        `json:"sim_escaped,omitempty"`
}

// CellLog is a concurrency-safe recorder of per-cell execution statistics.
// The zero value is ready to use.
type CellLog struct {
	mu    sync.Mutex
	stats []CellStat
}

// Record appends one cell's statistics. Safe for concurrent use.
func (l *CellLog) Record(s CellStat) {
	l.mu.Lock()
	l.stats = append(l.stats, s)
	l.mu.Unlock()
}

// Len returns the number of recorded cells.
func (l *CellLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.stats)
}

// Stats returns a copy of the recorded statistics sorted by cell key, so
// the listing is deterministic regardless of completion order.
func (l *CellLog) Stats() []CellStat {
	l.mu.Lock()
	out := make([]CellStat, len(l.stats))
	copy(out, l.stats)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// TotalWall returns the summed wall time of every recorded cell — the
// serial cost of the grid, against which the parallel wall clock compares.
func (l *CellLog) TotalWall() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	var t time.Duration
	for _, s := range l.stats {
		t += s.Wall
	}
	return t
}

// Summary renders an aggregate line plus the n slowest cells, most
// expensive first — the view that tells a sweep author where the grid's
// time goes.
func (l *CellLog) Summary(n int) string {
	stats := l.Stats()
	var b strings.Builder
	var wall time.Duration
	var allocs, accesses uint64
	for _, s := range stats {
		wall += s.Wall
		allocs += s.AllocBytes
		accesses += s.Accesses
	}
	fmt.Fprintf(&b, "%d cells, %s total cell time, %d accesses simulated, %.1f MB allocated\n",
		len(stats), wall.Round(time.Millisecond), accesses, float64(allocs)/(1<<20))
	if byWorker := workerCounts(stats); len(byWorker) > 0 {
		names := make([]string, 0, len(byWorker))
		for w := range byWorker {
			names = append(names, w)
		}
		sort.Strings(names)
		b.WriteString("  fabric:")
		for _, w := range names {
			fmt.Fprintf(&b, " %s=%d", w, byWorker[w])
		}
		b.WriteString(" cells\n")
	}
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Wall != stats[j].Wall {
			return stats[i].Wall > stats[j].Wall
		}
		return stats[i].Key < stats[j].Key
	})
	if n > len(stats) {
		n = len(stats)
	}
	for _, s := range stats[:n] {
		fmt.Fprintf(&b, "  %-12s %14d cycles  %8.1f MB  %s\n",
			s.Wall.Round(time.Millisecond), s.SimCycles, float64(s.AllocBytes)/(1<<20), s.Key)
		if s.SimWorkers > 1 {
			fmt.Fprintf(&b, "    sim: %d workers  split %s  private %s  replay %s  %d escaped\n",
				s.SimWorkers, s.SplitWall.Round(time.Millisecond),
				s.PrivateWall.Round(time.Millisecond), s.ReplayWall.Round(time.Millisecond),
				s.SimEscaped)
		}
	}
	return b.String()
}

// workerCounts tallies cells per fabric worker; empty when the grid ran
// purely in-process.
func workerCounts(stats []CellStat) map[string]int {
	var by map[string]int
	for _, s := range stats {
		if s.Worker == "" {
			continue
		}
		if by == nil {
			by = make(map[string]int)
		}
		by[s.Worker]++
	}
	return by
}

// cellLogJSON is the serialized shape of a CellLog: the aggregate line's
// quantities plus the sorted per-cell records.
type cellLogJSON struct {
	Cells         int           `json:"cells"`
	TotalWallNS   time.Duration `json:"total_wall_ns"`
	TotalAccesses uint64        `json:"total_accesses"`
	TotalAlloc    uint64        `json:"total_alloc_bytes"`
	PerCell       []CellStat    `json:"per_cell"`
}

// WriteJSON serializes the log — totals plus every cell's stats, sorted by
// cell key for deterministic output — as indented JSON.
func (l *CellLog) WriteJSON(w io.Writer) error {
	stats := l.Stats()
	out := cellLogJSON{Cells: len(stats), PerCell: stats}
	for _, s := range stats {
		out.TotalWallNS += s.Wall
		out.TotalAccesses += s.Accesses
		out.TotalAlloc += s.AllocBytes
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
