package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// CellStat records the execution of one experiment-grid cell — one
// (kernel, machine, scheme, config) simulation run by the parallel runner.
type CellStat struct {
	// Key is the cell's canonical identity (the runner's memoization key).
	Key string
	// Wall is the wall-clock time the cell took (mapping + simulation).
	Wall time.Duration
	// SimCycles is the simulated cycle count the cell produced.
	SimCycles uint64
	// AllocBytes is the heap allocated while the cell ran. Attribution is
	// exact under a single worker; with concurrent workers the per-cell
	// numbers overlap (the Go runtime exposes only process-wide counters)
	// and should be read as an upper bound.
	AllocBytes uint64
}

// CellLog is a concurrency-safe recorder of per-cell execution statistics.
// The zero value is ready to use.
type CellLog struct {
	mu    sync.Mutex
	stats []CellStat
}

// Record appends one cell's statistics. Safe for concurrent use.
func (l *CellLog) Record(s CellStat) {
	l.mu.Lock()
	l.stats = append(l.stats, s)
	l.mu.Unlock()
}

// Len returns the number of recorded cells.
func (l *CellLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.stats)
}

// Stats returns a copy of the recorded statistics sorted by cell key, so
// the listing is deterministic regardless of completion order.
func (l *CellLog) Stats() []CellStat {
	l.mu.Lock()
	out := make([]CellStat, len(l.stats))
	copy(out, l.stats)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// TotalWall returns the summed wall time of every recorded cell — the
// serial cost of the grid, against which the parallel wall clock compares.
func (l *CellLog) TotalWall() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	var t time.Duration
	for _, s := range l.stats {
		t += s.Wall
	}
	return t
}

// Summary renders an aggregate line plus the n slowest cells, most
// expensive first — the view that tells a sweep author where the grid's
// time goes.
func (l *CellLog) Summary(n int) string {
	stats := l.Stats()
	var b strings.Builder
	var wall time.Duration
	var allocs uint64
	for _, s := range stats {
		wall += s.Wall
		allocs += s.AllocBytes
	}
	fmt.Fprintf(&b, "%d cells, %s total cell time, %.1f MB allocated\n",
		len(stats), wall.Round(time.Millisecond), float64(allocs)/(1<<20))
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Wall != stats[j].Wall {
			return stats[i].Wall > stats[j].Wall
		}
		return stats[i].Key < stats[j].Key
	})
	if n > len(stats) {
		n = len(stats)
	}
	for _, s := range stats[:n] {
		fmt.Fprintf(&b, "  %-12s %14d cycles  %8.1f MB  %s\n",
			s.Wall.Round(time.Millisecond), s.SimCycles, float64(s.AllocBytes)/(1<<20), s.Key)
	}
	return b.String()
}
