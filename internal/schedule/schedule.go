package schedule

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/affinity"
	"repro/internal/core"
	"repro/internal/tags"
)

// Options tunes the Fig 7 algorithm.
type Options struct {
	// Alpha weighs horizontal (shared-cache) reuse: affinity with the last
	// group scheduled on the previous core under the same shared cache.
	Alpha float64
	// Beta weighs vertical (L1) reuse: affinity with the last group
	// scheduled on this core.
	Beta float64
	// Hamming selects §3.5.3's alternative objective: schedule the group
	// with the minimum weighted Hamming distance to the reference groups
	// instead of the maximum dot product. The two agree when group tags
	// have equal popcounts; Hamming additionally penalizes touching blocks
	// the neighbour does not.
	Hamming bool
}

// DefaultOptions returns the paper's α = β = 0.5.
func DefaultOptions() Options { return Options{Alpha: 0.5, Beta: 0.5} }

func (o Options) normalized() Options {
	if o.Alpha == 0 && o.Beta == 0 {
		h := o.Hamming
		o = DefaultOptions()
		o.Hamming = h
	}
	return o
}

// Schedule is the scheduled execution plan: per round, per core, the
// ordered iteration groups that core runs before the round's barrier.
type Schedule struct {
	NumCores int
	// Rounds[r][c] lists group ids core c executes in round r, in order.
	Rounds [][][]int
	// Synchronized reports whether the barriers are semantically required
	// (the loop carried dependences); when false they are only a pacing
	// artifact and an executor may ignore them.
	Synchronized bool
}

// PerCore flattens the rounds into one ordered group list per core.
func (s *Schedule) PerCore() [][]int {
	out := make([][]int, s.NumCores)
	for _, round := range s.Rounds {
		for c := 0; c < s.NumCores; c++ {
			out[c] = append(out[c], round[c]...)
		}
	}
	return out
}

// NumBarriers returns the number of barrier synchronizations (one per round
// except after the last).
func (s *Schedule) NumBarriers() int {
	if !s.Synchronized || len(s.Rounds) == 0 {
		return 0
	}
	return len(s.Rounds) - 1
}

// GroupCount returns the total number of scheduled groups.
func (s *Schedule) GroupCount() int {
	n := 0
	for _, round := range s.Rounds {
		for _, gs := range round {
			n += len(gs)
		}
	}
	return n
}

// String renders the schedule as a per-core timeline in the style of the
// paper's Figure 11: one line per core, rounds separated by " || " (the
// barriers), groups as θ<id>(<size>).
func (s *Schedule) String() string {
	return s.Render(nil)
}

// Render is String with group sizes resolved from the mapping result; pass
// nil to omit sizes.
func (s *Schedule) Render(res *core.Result) string {
	var b strings.Builder
	sep := " | "
	if s.Synchronized {
		sep = " || "
	}
	for c := 0; c < s.NumCores; c++ {
		fmt.Fprintf(&b, "core %2d: ", c)
		for r, round := range s.Rounds {
			if r > 0 {
				b.WriteString(sep)
			}
			for i, g := range round[c] {
				if i > 0 {
					b.WriteString(" ")
				}
				if res != nil {
					fmt.Fprintf(&b, "θ%d(%d)", g, res.Groups[g].Size())
				} else {
					fmt.Fprintf(&b, "θ%d", g)
				}
			}
			if len(round[c]) == 0 {
				b.WriteString("-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Build runs the Fig 7 algorithm over a distribution result. deps may be
// nil for fully parallel loops, in which case the schedule is a pure
// locality reorganization (§3.5.3) and Synchronized is false. Barriers are
// also unnecessary when every dependence edge stays within one core (the
// conservative §3.5.2 mode): program order on the core satisfies them.
func Build(res *core.Result, deps *affinity.Digraph, opt Options) (*Schedule, error) {
	opt = opt.normalized()
	ncores := len(res.PerCore)
	lifted := core.LiftDeps(res, deps)
	sched := &Schedule{NumCores: ncores, Synchronized: crossCoreDeps(res, lifted)}

	// Remaining groups per core (CS_i of Fig 7), kept in ID order so that
	// affinity ties resolve to program order (the distribution pass emits
	// groups in cluster order, which scrambles spatial locality).
	remaining := make([][]int, ncores)
	for c, gs := range res.PerCore {
		remaining[c] = append([]int(nil), gs...)
		sort.Ints(remaining[c])
	}
	scheduled := make([]bool, len(res.Groups))  // in any earlier round or earlier on some core
	prevRounds := make([]bool, len(res.Groups)) // strictly earlier rounds (barrier-separated)
	sizeSoFar := make([]int, ncores)            // s_i of Fig 7
	lastOnCore := make([]int, ncores)           // y: last group added to SCS_i, -1 initially
	for i := range lastOnCore {
		lastOnCore[i] = -1
	}

	// Cores are visited per shared-cache domain, in core order, so that
	// "previous core" means the neighbour under the same first-level shared
	// cache (horizontal reuse is only meaningful there).
	domains := sharedCacheDomains(res)

	total := 0
	for _, r := range remaining {
		total += len(r)
	}
	done := 0
	round := 0
	for done < total {
		thisRound := make([][]int, ncores)
		addedThisRound := 0

		for _, domain := range domains {
			var lastOnPrevCore int = -1 // x: last group added to SCS_{i-1} within the domain
			for di, c := range domain {
				if len(remaining[c]) == 0 {
					continue
				}
				// schedulable: every predecessor already scheduled in a
				// previous round, or earlier on this same core (program
				// order satisfies same-core dependences without a barrier).
				canRun := func(g int) bool {
					for _, p := range lifted.Pred(g) {
						if !prevRounds[p] && !onCoreEarlier(p, thisRound[c], res.PerCore[c], scheduled, c, g, lifted) {
							return false
						}
					}
					return true
				}

				// pickBest returns the schedulable group maximizing the
				// weighted affinity (dot product, or negated Hamming
				// distance under Options.Hamming); ties fall to the lowest
				// group ID, i.e. program order (remaining is ID-sorted).
				affinityTo := func(g, ref int) float64 {
					if opt.Hamming {
						return -float64(res.Groups[g].Tag.Hamming(res.Groups[ref].Tag))
					}
					return float64(res.Groups[g].Tag.Dot(res.Groups[ref].Tag))
				}
				pickBest := func(useAlpha, useBeta bool) int {
					bestIdx := -1
					bestScore := 0.0
					for idx, g := range remaining[c] {
						if !canRun(g) {
							continue
						}
						score := 0.0
						if useAlpha && lastOnPrevCore >= 0 {
							score += opt.Alpha * affinityTo(g, lastOnPrevCore)
						}
						if useBeta && lastOnCore[c] >= 0 {
							score += opt.Beta * affinityTo(g, lastOnCore[c])
						}
						if bestIdx < 0 || score > bestScore {
							bestIdx, bestScore = idx, score
						}
					}
					return bestIdx
				}

				take := func(idx int) {
					g := remaining[c][idx]
					remaining[c] = append(remaining[c][:idx], remaining[c][idx+1:]...)
					thisRound[c] = append(thisRound[c], g)
					scheduled[g] = true
					sizeSoFar[c] += res.Groups[g].Size()
					lastOnCore[c] = g
					done++
					addedThisRound++
				}

				switch {
				case round == 0 && di == 0:
					// First core, first round: the schedulable group with
					// the fewest 1 bits (Fig 7's "least number of 1 bits").
					bestIdx, bestOnes := -1, 1<<30
					for idx, g := range remaining[c] {
						if !canRun(g) {
							continue
						}
						if ones := res.Groups[g].Tag.Ones(); ones < bestOnes {
							bestIdx, bestOnes = idx, ones
						}
					}
					if bestIdx >= 0 {
						take(bestIdx)
					}
				case round == 0:
					// Other cores, first round: one group, maximizing
					// horizontal affinity α·(τ_a · τ_x).
					if idx := pickBest(true, false); idx >= 0 {
						take(idx)
					}
				case di == 0:
					// First core, later rounds: catch up to the last core of
					// the domain, maximizing vertical affinity β·(τ_a · τ_y).
					target := sizeSoFar[domain[len(domain)-1]]
					addedHere := 0
					for sizeSoFar[c] < target || addedHere == 0 {
						idx := pickBest(false, true)
						if idx < 0 {
							break
						}
						take(idx)
						addedHere++
					}
				default:
					// Later rounds, later cores: catch up to the previous
					// core, maximizing α·(τ_a·τ_x) + β·(τ_a·τ_y).
					target := sizeSoFar[domain[di-1]]
					addedHere := 0
					for sizeSoFar[c] < target || addedHere == 0 {
						idx := pickBest(true, true)
						if idx < 0 {
							break
						}
						take(idx)
						addedHere++
					}
				}
				if n := len(thisRound[c]); n > 0 {
					lastOnPrevCore = thisRound[c][n-1]
				}
			}
		}

		if addedThisRound == 0 {
			return nil, fmt.Errorf("schedule: no progress in round %d — dependence cycle across cores (collapse cycles before distributing)", round)
		}
		// Barrier: everything scheduled so far becomes visible to later rounds.
		for c := 0; c < ncores; c++ {
			for _, g := range thisRound[c] {
				prevRounds[g] = true
			}
		}
		sched.Rounds = append(sched.Rounds, thisRound)
		round++
	}
	return sched, nil
}

// onCoreEarlier reports whether predecessor p already ran earlier on the
// same core c in the current round (program order on one core needs no
// barrier).
func onCoreEarlier(p int, thisRound []int, _ []int, scheduled []bool, _ int, _ int, _ *affinity.Digraph) bool {
	if !scheduled[p] {
		return false
	}
	for _, g := range thisRound {
		if g == p {
			return true
		}
	}
	return false
}

// DefaultOrder builds the no-reorganization schedule used by the plain
// TopologyAware variant and the Base/Base+ baselines: groups run in ID
// (program) order on each core, packed into dependence-legal rounds.
func DefaultOrder(res *core.Result, deps *affinity.Digraph) (*Schedule, error) {
	ncores := len(res.PerCore)
	lifted := core.LiftDeps(res, deps)
	sched := &Schedule{NumCores: ncores, Synchronized: crossCoreDeps(res, lifted)}

	if !sched.Synchronized {
		round := make([][]int, ncores)
		for c, gs := range res.PerCore {
			round[c] = append([]int(nil), gs...)
			sort.Ints(round[c])
		}
		sched.Rounds = [][][]int{round}
		return sched, nil
	}

	remaining := make([][]int, ncores)
	for c, gs := range res.PerCore {
		remaining[c] = append([]int(nil), gs...)
		sort.Ints(remaining[c])
	}
	prevRounds := make([]bool, len(res.Groups))
	total := 0
	for _, r := range remaining {
		total += len(r)
	}
	done := 0
	for done < total {
		thisRound := make([][]int, ncores)
		added := 0
		for c := 0; c < ncores; c++ {
			// Take every currently schedulable group, preferring queue
			// order but allowing later groups to jump a blocked head (the
			// head's producer may sit on another core and only become
			// visible after the next barrier).
			progress := true
			for progress {
				progress = false
				for idx := 0; idx < len(remaining[c]); idx++ {
					g := remaining[c][idx]
					ok := true
					for _, p := range lifted.Pred(g) {
						if !prevRounds[p] && !contains(thisRound[c], p) {
							ok = false
							break
						}
					}
					if !ok {
						continue
					}
					remaining[c] = append(remaining[c][:idx], remaining[c][idx+1:]...)
					thisRound[c] = append(thisRound[c], g)
					done++
					added++
					progress = true
					idx--
				}
			}
		}
		if added == 0 {
			return nil, fmt.Errorf("schedule: default order stuck — dependence cycle across cores")
		}
		for _, gs := range thisRound {
			for _, g := range gs {
				prevRounds[g] = true
			}
		}
		sched.Rounds = append(sched.Rounds, thisRound)
	}
	return sched, nil
}

// Validate checks that the schedule runs every assigned group exactly once
// and respects every dependence: each predecessor runs in an earlier round,
// or earlier on the same core within the same round.
func Validate(s *Schedule, res *core.Result, deps *affinity.Digraph) error {
	lifted := core.LiftDeps(res, deps)
	roundOf := make(map[int]int)
	coreOf := make(map[int]int)
	posOf := make(map[int]int)
	count := 0
	for r, round := range s.Rounds {
		for c, gs := range round {
			for i, g := range gs {
				if _, dup := roundOf[g]; dup {
					return fmt.Errorf("schedule: group %d scheduled twice", g)
				}
				roundOf[g], coreOf[g], posOf[g] = r, c, i
				count++
			}
		}
	}
	want := 0
	for c, gs := range res.PerCore {
		want += len(gs)
		for _, g := range gs {
			if cc, ok := coreOf[g]; !ok {
				return fmt.Errorf("schedule: group %d assigned to core %d never scheduled", g, c)
			} else if cc != c {
				return fmt.Errorf("schedule: group %d assigned to core %d but scheduled on core %d", g, c, cc)
			}
		}
	}
	if count != want {
		return fmt.Errorf("schedule: %d groups scheduled, %d assigned", count, want)
	}
	for g := 0; g < lifted.N(); g++ {
		for _, succ := range lifted.Succ(g) {
			switch {
			case roundOf[g] < roundOf[succ]:
				// ordered by barrier
			case roundOf[g] == roundOf[succ] && coreOf[g] == coreOf[succ] && posOf[g] < posOf[succ]:
				// ordered by program order on one core
			default:
				return fmt.Errorf("schedule: dependence %d→%d violated (rounds %d→%d, cores %d→%d)",
					g, succ, roundOf[g], roundOf[succ], coreOf[g], coreOf[succ])
			}
		}
	}
	return nil
}

// crossCoreDeps reports whether any lifted dependence edge connects groups
// assigned to different cores — only those require barrier rounds; deps
// within one core are satisfied by program order.
func crossCoreDeps(res *core.Result, lifted *affinity.Digraph) bool {
	if lifted.NumEdges() == 0 {
		return false
	}
	coreOf := make(map[int]int)
	for c, gs := range res.PerCore {
		for _, g := range gs {
			coreOf[g] = c
		}
	}
	for u := 0; u < lifted.N(); u++ {
		for _, v := range lifted.Succ(u) {
			if coreOf[u] != coreOf[v] {
				return true
			}
		}
	}
	return false
}

// sharedCacheDomains partitions core ids by the first-level shared cache
// they sit under, each domain in core order — the "ForEach shared cache S
// at the first shared cache level" loop of Fig 7.
func sharedCacheDomains(res *core.Result) [][]int {
	m := res.Machine
	if m == nil {
		// No topology (e.g. synthetic tests): one domain with every core.
		all := make([]int, len(res.PerCore))
		for i := range all {
			all[i] = i
		}
		return [][]int{all}
	}
	var domains [][]int
	assigned := make([]bool, m.NumCores())
	for _, cacheNode := range m.FirstSharedCaches() {
		var d []int
		for _, c := range cacheNode.Cores() {
			d = append(d, c.CoreID)
			assigned[c.CoreID] = true
		}
		domains = append(domains, d)
	}
	// Cores under no shared cache (fully private hierarchies) become
	// singleton domains.
	for c := 0; c < m.NumCores(); c++ {
		if !assigned[c] {
			domains = append(domains, []int{c})
		}
	}
	return domains
}

// contains reports membership in a small slice.
func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// TagOf is a tiny helper for diagnostics: the tag of group g in res.
func TagOf(res *core.Result, g int) tags.Tag { return res.Groups[g].Tag }
