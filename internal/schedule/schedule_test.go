package schedule

import (
	"strings"
	"testing"

	"repro/internal/affinity"
	"repro/internal/core"
	"repro/internal/deps"
	"repro/internal/poly"
	"repro/internal/tags"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// distributed maps a named kernel on Dunnington and returns the result
// plus its (possibly nil) group dependence DAG.
func distributed(t *testing.T, name string) (*core.Result, *affinity.Digraph) {
	t.Helper()
	k, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	layout := k.Layout(2048)
	iters := k.Nest.Points()
	tg := tags.Compute(iters, k.Refs, layout)
	tg = tags.Coarsen(tg, 512)
	dg, selfDep := deps.Analyze(iters, tg)
	var dag *affinity.Digraph
	groups := tg.Groups
	if dg.NumEdges() > 0 {
		groups, dag, selfDep = deps.CollapseCycles(tg.Groups, dg, selfDep)
	}
	work := &tags.Tagging{Groups: groups, Layout: layout, Refs: k.Refs, NumBlocks: tg.NumBlocks, TotalIters: tg.TotalIters}
	res, err := core.Distribute(work, topology.Dunnington(), core.Options{SelfDep: selfDep})
	if err != nil {
		t.Fatal(err)
	}
	return res, dag
}

func TestBuildFullyParallel(t *testing.T) {
	res, dag := distributed(t, "fig5")
	if dag != nil {
		t.Fatal("fig5 should be fully parallel")
	}
	s, err := Build(res, dag, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s.Synchronized {
		t.Fatal("parallel schedule should not be synchronized")
	}
	if err := Validate(s, res, dag); err != nil {
		t.Fatal(err)
	}
	if s.NumBarriers() != 0 {
		t.Fatalf("parallel schedule has %d barriers", s.NumBarriers())
	}
}

func TestBuildWavefront(t *testing.T) {
	res, dag := distributed(t, "wavefront")
	if dag == nil {
		t.Fatal("wavefront should carry dependences")
	}
	s, err := Build(res, dag, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !s.Synchronized {
		t.Fatal("dependent schedule must be synchronized")
	}
	if err := Validate(s, res, dag); err != nil {
		t.Fatal(err)
	}
	if len(s.Rounds) < 2 {
		t.Fatalf("wavefront scheduled in %d rounds; dependences demand several", len(s.Rounds))
	}
}

func TestDefaultOrderParallel(t *testing.T) {
	res, dag := distributed(t, "fig5")
	s, err := DefaultOrder(res, dag)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rounds) != 1 {
		t.Fatalf("parallel default order has %d rounds", len(s.Rounds))
	}
	if err := Validate(s, res, dag); err != nil {
		t.Fatal(err)
	}
	// Groups per core must come out ID-sorted (program order).
	for _, gs := range s.PerCore() {
		for i := 1; i < len(gs); i++ {
			if gs[i] < gs[i-1] {
				t.Fatal("default order not ID-sorted")
			}
		}
	}
}

func TestDefaultOrderWavefront(t *testing.T) {
	res, dag := distributed(t, "wavefront")
	s, err := DefaultOrder(res, dag)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(s, res, dag); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleCoversAllGroups(t *testing.T) {
	for _, name := range []string{"fig5", "sp", "wavefront"} {
		res, dag := distributed(t, name)
		s, err := Build(res, dag, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := 0
		for _, gs := range res.PerCore {
			want += len(gs)
		}
		if got := s.GroupCount(); got != want {
			t.Fatalf("%s: scheduled %d of %d groups", name, got, want)
		}
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	res, dag := distributed(t, "wavefront")
	s, err := Build(res, dag, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: swap the first two non-empty rounds' content for one core.
	var c1 int = -1
	var r1, r2 int = -1, -1
	for r := range s.Rounds {
		for c := range s.Rounds[r] {
			if len(s.Rounds[r][c]) > 0 {
				if r1 == -1 {
					r1, c1 = r, c
				} else if r != r1 && c == c1 && len(s.Rounds[r][c]) > 0 {
					r2 = r
				}
			}
		}
		if r2 != -1 {
			break
		}
	}
	if r2 == -1 {
		t.Skip("no second round to swap")
	}
	s.Rounds[r1][c1], s.Rounds[r2][c1] = s.Rounds[r2][c1], s.Rounds[r1][c1]
	if err := Validate(s, res, dag); err == nil {
		t.Fatal("Validate accepted a corrupted schedule")
	}
}

func TestValidateCatchesDuplicates(t *testing.T) {
	res, dag := distributed(t, "fig5")
	s, err := Build(res, dag, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate one group.
	for c := range s.Rounds[0] {
		if len(s.Rounds[0][c]) > 0 {
			s.Rounds[0][c] = append(s.Rounds[0][c], s.Rounds[0][c][0])
			break
		}
	}
	if err := Validate(s, res, dag); err == nil {
		t.Fatal("Validate accepted a duplicated group")
	}
}

func TestAlphaBetaInfluenceOrder(t *testing.T) {
	// With β=1 (vertical only), consecutive groups on a core should have
	// at least the affinity the α=1 schedule achieves vertically; we just
	// verify both run, validate, and differ in at least one core order for
	// a kernel with real affinity structure.
	res, dag := distributed(t, "povray")
	a, err := Build(res, dag, Options{Alpha: 1, Beta: 0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(res, dag, Options{Alpha: 0, Beta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(a, res, dag); err != nil {
		t.Fatal(err)
	}
	if err := Validate(b, res, dag); err != nil {
		t.Fatal(err)
	}
	pa, pb := a.PerCore(), b.PerCore()
	differs := false
	for c := range pa {
		for i := range pa[c] {
			if pa[c][i] != pb[c][i] {
				differs = true
			}
		}
	}
	if !differs {
		t.Log("alpha-only and beta-only schedules identical (weak affinity structure)")
	}
}

func TestZeroOptionsDefaulted(t *testing.T) {
	o := Options{}.normalized()
	if o.Alpha != 0.5 || o.Beta != 0.5 {
		t.Fatalf("normalized zero options = %+v", o)
	}
	// Explicit single-sided settings survive.
	o = Options{Alpha: 1}.normalized()
	if o.Alpha != 1 || o.Beta != 0 {
		t.Fatalf("explicit options altered: %+v", o)
	}
}

func TestScheduleRender(t *testing.T) {
	res, dag := distributed(t, "fig5")
	s, err := Build(res, dag, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := s.Render(res)
	if !strings.Contains(out, "core  0:") || !strings.Contains(out, "θ") {
		t.Fatalf("Render output malformed:\n%s", out)
	}
	// Every scheduled group appears exactly once.
	count := strings.Count(out, "θ")
	if count != s.GroupCount() {
		t.Fatalf("Render shows %d groups, schedule has %d", count, s.GroupCount())
	}
	// Sizes resolved when a result is passed; bare String works too.
	if !strings.Contains(out, "(") {
		t.Fatal("Render with result should show sizes")
	}
	if strings.Contains(s.String(), "(") {
		t.Fatal("String without result should omit sizes")
	}
}

func TestCrossCoreCycleDetected(t *testing.T) {
	// Hand-build a result with a cross-core dependence cycle: group 0 on
	// core 0, group 1 on core 1, 0 -> 1 -> 0.
	width := 2
	g0 := &tags.Group{ID: 0, Tag: tags.NewTag(width), Iters: []poly.Point{poly.Pt(0)}}
	g1 := &tags.Group{ID: 1, Tag: tags.NewTag(width), Iters: []poly.Point{poly.Pt(1)}}
	res := &core.Result{
		Groups:  []*tags.Group{g0, g1},
		Origin:  []int{0, 1},
		PerCore: [][]int{{0}, {1}},
	}
	dag := affinity.NewDigraph(2)
	dag.AddEdge(0, 1)
	dag.AddEdge(1, 0)
	if _, err := Build(res, dag, DefaultOptions()); err == nil {
		t.Fatal("cross-core cycle not reported")
	}
	if _, err := DefaultOrder(res, dag); err == nil {
		t.Fatal("cross-core cycle not reported by DefaultOrder")
	}
}
