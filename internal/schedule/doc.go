// Package schedule implements the paper's primary contribution, part 2: the
// dependence-aware local iteration-group scheduling algorithm of Figure 7
// (§3.5.2–§3.5.3). Given the per-core group clusters produced by
// distribution, it orders the groups on each core in rounds separated by
// barrier synchronizations so that
//
//   - all dependences are respected (groups in a round depend only on
//     groups of earlier rounds),
//   - vertical reuse is exploited: consecutive groups on one core share
//     data blocks (weight β — private L1 locality), and
//   - horizontal reuse is exploited: groups running concurrently on cores
//     that share a cache share data blocks (weight α — shared-cache
//     locality),
//
// with the α/β trade-off of §3.5.3 exposed as tunables (the paper's default
// is α = β = 0.5).
package schedule
