package lang

import (
	"repro/internal/poly"
	"repro/internal/workloads"
)

// AST node types. The AST stays close to the surface syntax; lowering to
// the polyhedral form happens in lower().

// Program is a parsed source file.
type Program struct {
	Name   string
	Arrays []*ArrayDecl
	Nest   *ForLoop
}

// ArrayDecl is `array NAME[d]...[d] (elem N)?`.
type ArrayDecl struct {
	Pos      Pos
	Name     string
	Dims     []int64
	ElemSize int64
}

// ForLoop is one loop level; Body is either a nested loop or statements.
type ForLoop struct {
	Pos    Pos
	Var    string
	Lo, Hi *AffineExpr
	Inner  *ForLoop
	Stmts  []*Assign
}

// Assign is `REF op EXPR ;` with op in {=, +=, -=, *=}.
type Assign struct {
	Pos    Pos
	LHS    *RefExpr
	Update bool // true for +=, -=, *=
	Reads  []*RefExpr
}

// RefExpr is NAME[sub]...[sub].
type RefExpr struct {
	Pos  Pos
	Name string
	Subs []*AffineExpr
}

// AffineExpr is a surface affine expression: constant + Σ coeff*var.
type AffineExpr struct {
	Pos   Pos
	Const int64
	Terms map[string]int64 // var -> coefficient
}

func newAffine(pos Pos) *AffineExpr {
	return &AffineExpr{Pos: pos, Terms: map[string]int64{}}
}

// add folds `coeff*varName` (varName=="" for constants) into the expression.
func (a *AffineExpr) add(varName string, coeff int64) {
	if varName == "" {
		a.Const += coeff
		return
	}
	a.Terms[varName] += coeff
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	i    int
}

// Parse parses a source file into a Program.
func Parse(name, src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{Name: name}
	for {
		t := p.peek()
		switch {
		case t.kind == tokEOF:
			if prog.Nest == nil {
				return nil, errf(t.pos, "program has no loop nest")
			}
			return prog, nil
		case t.kind == tokIdent && t.text == "array":
			d, err := p.parseArray()
			if err != nil {
				return nil, err
			}
			prog.Arrays = append(prog.Arrays, d)
		case t.kind == tokIdent && t.text == "for":
			if prog.Nest != nil {
				return nil, errf(t.pos, "only one top-level loop nest is supported")
			}
			f, err := p.parseFor()
			if err != nil {
				return nil, err
			}
			prog.Nest = f
		default:
			return nil, errf(t.pos, "expected 'array' or 'for', got %s", t)
		}
	}
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// expect consumes a punct token with the given text.
func (p *parser) expect(text string) (token, error) {
	t := p.next()
	if t.kind != tokPunct || t.text != text {
		return t, errf(t.pos, "expected %q, got %s", text, t)
	}
	return t, nil
}

// expectIdent consumes an identifier.
func (p *parser) expectIdent() (token, error) {
	t := p.next()
	if t.kind != tokIdent {
		return t, errf(t.pos, "expected identifier, got %s", t)
	}
	return t, nil
}

// parseArray parses `array NAME[d]...[d] (elem N)?`.
func (p *parser) parseArray() (*ArrayDecl, error) {
	kw := p.next() // 'array'
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &ArrayDecl{Pos: kw.pos, Name: name.text, ElemSize: 8}
	for p.peek().kind == tokPunct && p.peek().text == "[" {
		p.next()
		n := p.next()
		if n.kind != tokNumber || n.val <= 0 {
			return nil, errf(n.pos, "array dimension must be a positive number, got %s", n)
		}
		d.Dims = append(d.Dims, n.val)
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if len(d.Dims) == 0 {
		return nil, errf(kw.pos, "array %s has no dimensions", d.Name)
	}
	if p.peek().kind == tokIdent && p.peek().text == "elem" {
		p.next()
		n := p.next()
		if n.kind != tokNumber || n.val <= 0 {
			return nil, errf(n.pos, "elem size must be a positive number")
		}
		d.ElemSize = n.val
	}
	return d, nil
}

// parseFor parses `for (v = lo; v <= hi) { body }` where body is another
// for loop or a statement list. A `v = lo .. hi` shorthand is accepted.
func (p *parser) parseFor() (*ForLoop, error) {
	kw := p.next() // 'for'
	f := &ForLoop{Pos: kw.pos}
	paren := false
	if p.peek().kind == tokPunct && p.peek().text == "(" {
		p.next()
		paren = true
	}
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	f.Var = v.text
	if _, err := p.expect("="); err != nil {
		return nil, err
	}
	f.Lo, err = p.parseAffine()
	if err != nil {
		return nil, err
	}
	// Either `; v <= hi` or `.. hi`.
	switch t := p.next(); {
	case t.kind == tokPunct && t.text == ";":
		v2, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if v2.text != f.Var {
			return nil, errf(v2.pos, "loop condition names %q, loop variable is %q", v2.text, f.Var)
		}
		if _, err := p.expect("<="); err != nil {
			return nil, err
		}
		f.Hi, err = p.parseAffine()
		if err != nil {
			return nil, err
		}
	case t.kind == tokPunct && t.text == "..":
		f.Hi, err = p.parseAffine()
		if err != nil {
			return nil, err
		}
	default:
		return nil, errf(t.pos, "expected ';' or '..' in loop header, got %s", t)
	}
	if paren {
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	// Body: a nested for, or statements.
	if p.peek().kind == tokIdent && p.peek().text == "for" {
		inner, err := p.parseFor()
		if err != nil {
			return nil, err
		}
		f.Inner = inner
	} else {
		for !(p.peek().kind == tokPunct && p.peek().text == "}") {
			if p.peek().kind == tokEOF {
				return nil, errf(p.peek().pos, "unterminated loop body")
			}
			s, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			f.Stmts = append(f.Stmts, s)
		}
		if len(f.Stmts) == 0 {
			return nil, errf(f.Pos, "innermost loop body is empty")
		}
	}
	if _, err := p.expect("}"); err != nil {
		return nil, err
	}
	return f, nil
}

// parseAssign parses `REF (=|+=|-=|*=) expr ;`.
func (p *parser) parseAssign() (*Assign, error) {
	lhs, err := p.parseRef()
	if err != nil {
		return nil, err
	}
	op := p.next()
	a := &Assign{Pos: lhs.Pos, LHS: lhs}
	switch {
	case op.kind == tokPunct && op.text == "=":
	case op.kind == tokPunct && (op.text == "+=" || op.text == "-=" || op.text == "*="):
		a.Update = true
	default:
		return nil, errf(op.pos, "expected assignment operator, got %s", op)
	}
	// Right-hand side: refs and constants joined by + - *; we only record
	// the refs (constants and operator structure don't affect mapping).
	for {
		t := p.peek()
		switch {
		case t.kind == tokIdent:
			r, err := p.parseRef()
			if err != nil {
				return nil, err
			}
			a.Reads = append(a.Reads, r)
		case t.kind == tokNumber:
			p.next()
		case t.kind == tokPunct && (t.text == "+" || t.text == "-" || t.text == "*"):
			p.next()
		case t.kind == tokPunct && t.text == ";":
			p.next()
			return a, nil
		default:
			return nil, errf(t.pos, "unexpected %s in expression", t)
		}
	}
}

// parseRef parses NAME[sub]...[sub].
func (p *parser) parseRef() (*RefExpr, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	r := &RefExpr{Pos: name.pos, Name: name.text}
	for p.peek().kind == tokPunct && p.peek().text == "[" {
		p.next()
		sub, err := p.parseAffine()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		r.Subs = append(r.Subs, sub)
	}
	if len(r.Subs) == 0 {
		return nil, errf(name.pos, "reference to %s has no subscripts", name.text)
	}
	return r, nil
}

// parseAffine parses `term (('+'|'-') term)*` with term = NUM | VAR |
// NUM '*' VAR | VAR '*' NUM.
func (p *parser) parseAffine() (*AffineExpr, error) {
	a := newAffine(p.peek().pos)
	sign := int64(1)
	first := true
	for {
		t := p.peek()
		if !first {
			switch {
			case t.kind == tokPunct && t.text == "+":
				p.next()
				sign = 1
			case t.kind == tokPunct && t.text == "-":
				p.next()
				sign = -1
			default:
				return a, nil
			}
		} else if t.kind == tokPunct && t.text == "-" {
			p.next()
			sign = -1
		}
		first = false
		if err := p.parseTerm(a, sign); err != nil {
			return nil, err
		}
		sign = 1
	}
}

// parseTerm folds one signed term into a.
func (p *parser) parseTerm(a *AffineExpr, sign int64) error {
	t := p.next()
	switch t.kind {
	case tokNumber:
		// NUM or NUM '*' VAR.
		if p.peek().kind == tokPunct && p.peek().text == "*" {
			p.next()
			v, err := p.expectIdent()
			if err != nil {
				return err
			}
			a.add(v.text, sign*t.val)
			return nil
		}
		a.add("", sign*t.val)
		return nil
	case tokIdent:
		// VAR or VAR '*' NUM.
		if p.peek().kind == tokPunct && p.peek().text == "*" {
			p.next()
			n := p.next()
			if n.kind != tokNumber {
				return errf(n.pos, "expected number after '*', got %s", n)
			}
			a.add(t.text, sign*n.val)
			return nil
		}
		a.add(t.text, sign)
		return nil
	default:
		return errf(t.pos, "expected number or variable, got %s", t)
	}
}

// Compile parses and lowers a source file into a workloads.Kernel ready
// for the mapping pipeline.
func Compile(name, src string) (*workloads.Kernel, error) {
	prog, err := Parse(name, src)
	if err != nil {
		return nil, err
	}
	return lower(prog)
}

// lower converts the AST to the polyhedral kernel form, checking that
// every reference resolves, arities match, and bound/subscript expressions
// only use in-scope loop variables.
func lower(prog *Program) (*workloads.Kernel, error) {
	arrays := map[string]*poly.Array{}
	var order []*poly.Array
	for _, d := range prog.Arrays {
		if _, dup := arrays[d.Name]; dup {
			return nil, errf(d.Pos, "array %s redeclared", d.Name)
		}
		a := poly.NewArray(d.Name, d.Dims...).WithElemSize(d.ElemSize)
		arrays[d.Name] = a
		order = append(order, a)
	}

	// Collect loop variables outermost-first.
	var loops []*ForLoop
	var vars []string
	seen := map[string]int{}
	for f := prog.Nest; f != nil; f = f.Inner {
		if _, dup := seen[f.Var]; dup {
			return nil, errf(f.Pos, "loop variable %s shadows an outer loop", f.Var)
		}
		seen[f.Var] = len(vars)
		vars = append(vars, f.Var)
		loops = append(loops, f)
	}
	depth := len(vars)

	toExpr := func(a *AffineExpr, scope int) (poly.Expr, error) {
		e := poly.Constant(a.Const)
		for v, c := range a.Terms {
			idx, ok := seen[v]
			if !ok {
				return poly.Expr{}, errf(a.Pos, "unknown variable %q", v)
			}
			if idx >= scope {
				return poly.Expr{}, errf(a.Pos, "variable %q not in scope here (inner loops cannot appear in outer bounds)", v)
			}
			e = e.Add(poly.Var(idx, depth).Scale(c))
		}
		return e, nil
	}

	nestLoops := make([]poly.Loop, depth)
	for i, f := range loops {
		lo, err := toExpr(f.Lo, i)
		if err != nil {
			return nil, err
		}
		hi, err := toExpr(f.Hi, i)
		if err != nil {
			return nil, err
		}
		nestLoops[i] = poly.Loop{Name: f.Var, Lower: lo, Upper: hi, Step: 1}
	}

	toRef := func(r *RefExpr, kind poly.AccessKind) (*poly.Ref, error) {
		a, ok := arrays[r.Name]
		if !ok {
			return nil, errf(r.Pos, "undeclared array %q", r.Name)
		}
		if len(r.Subs) != len(a.Dims) {
			return nil, errf(r.Pos, "%s has %d dimensions, reference uses %d", r.Name, len(a.Dims), len(r.Subs))
		}
		subs := make([]poly.Expr, len(r.Subs))
		for i, s := range r.Subs {
			e, err := toExpr(s, depth)
			if err != nil {
				return nil, err
			}
			subs[i] = e
		}
		return poly.NewRef(a, kind, subs...), nil
	}

	var refs []*poly.Ref
	for _, s := range loops[depth-1].Stmts {
		kind := poly.Write
		if s.Update {
			kind = poly.ReadWrite
		}
		w, err := toRef(s.LHS, kind)
		if err != nil {
			return nil, err
		}
		refs = append(refs, w)
		for _, r := range s.Reads {
			rr, err := toRef(r, poly.Read)
			if err != nil {
				return nil, err
			}
			refs = append(refs, rr)
		}
	}

	return &workloads.Kernel{
		Name:        prog.Name,
		Source:      "lang",
		Description: "compiled from source",
		Arrays:      order,
		Nest:        poly.NewNest(nestLoops...),
		Refs:        refs,
	}, nil
}
