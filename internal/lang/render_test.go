package lang

import (
	"strings"
	"testing"

	"repro/internal/poly"
	"repro/internal/tags"
	"repro/internal/workloads"
)

// TestRenderRoundTrip: compile → render → recompile must preserve the
// iteration space and the per-iteration data-block behaviour (tags).
func TestRenderRoundTrip(t *testing.T) {
	sources := []string{
		stencilSrc,
		`
array B[3072]
for (j = 512; j <= 2559) {
  B[j] += B[j + 512] + B[j - 512];
}
`,
		`
array P[128] elem 64
array Q[128] elem 64
for (v = 0 .. 127) {
  Q[v] = P[127 - v] + P[v];
}
`,
		`
array A[32][32]
for (i = 0; i <= 31) {
  for (j = 0; j <= i) {
    A[i][j] = A[j][i];
  }
}
`,
	}
	for si, src := range sources {
		k1, err := Compile("rt", src)
		if err != nil {
			t.Fatalf("source %d: %v", si, err)
		}
		rendered := Render(k1)
		k2, err := Compile("rt", rendered)
		if err != nil {
			t.Fatalf("source %d: recompiling rendered output: %v\n%s", si, err, rendered)
		}
		if k1.Iterations() != k2.Iterations() {
			t.Fatalf("source %d: iteration count changed %d -> %d", si, k1.Iterations(), k2.Iterations())
		}
		if len(k1.Refs) != len(k2.Refs) {
			t.Fatalf("source %d: ref count changed %d -> %d\n%s", si, len(k1.Refs), len(k2.Refs), rendered)
		}
		// Tag equivalence on a sample of iterations.
		l1 := k1.Layout(1024)
		l2 := k2.Layout(1024)
		pts := k1.Nest.Points()
		step := len(pts)/50 + 1
		for i := 0; i < len(pts); i += step {
			t1 := tags.TagOf(pts[i], k1.Refs, l1, l1.NumBlocks())
			t2 := tags.TagOf(pts[i], k2.Refs, l2, l2.NumBlocks())
			if !t1.Equal(t2) {
				t.Fatalf("source %d: tag changed at %v: %s vs %s\n%s", si, pts[i], t1, t2, rendered)
			}
		}
	}
}

// TestRenderPaperKernels: every shipped kernel renders to parseable source
// with the same iteration space and block behaviour.
func TestRenderPaperKernels(t *testing.T) {
	ks := append(workloads.All(), workloads.Fig5Example(), workloads.Wavefront(), workloads.TreeReduce())
	for _, k := range ks {
		rendered := Render(k)
		k2, err := Compile(k.Name, rendered)
		if err != nil {
			t.Fatalf("%s: rendered source does not compile: %v\n%s", k.Name, err, rendered)
		}
		if k2.Iterations() != k.Iterations() {
			t.Fatalf("%s: iterations %d -> %d", k.Name, k.Iterations(), k2.Iterations())
		}
		l1 := k.Layout(2048)
		l2 := k2.Layout(2048)
		pts := k.Nest.Points()
		step := len(pts)/20 + 1
		for i := 0; i < len(pts); i += step {
			t1 := tags.TagOf(pts[i], k.Refs, l1, l1.NumBlocks())
			t2 := tags.TagOf(pts[i], k2.Refs, l2, l2.NumBlocks())
			if !t1.Equal(t2) {
				t.Fatalf("%s: tag changed at %v\n%s", k.Name, pts[i], rendered)
			}
		}
	}
}

func TestRenderSyntax(t *testing.T) {
	k, err := Compile("s", stencilSrc)
	if err != nil {
		t.Fatal(err)
	}
	out := Render(k)
	for _, want := range []string{"array A[64][64]", "for (i = 1; i <= 62) {", "Anew[i][j] ="} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered source missing %q:\n%s", want, out)
		}
	}
	// Element sizes survive.
	p := poly.NewArray("P", 8).WithElemSize(64)
	k2 := &workloads.Kernel{
		Name:   "e",
		Arrays: []*poly.Array{p},
		Nest:   poly.NewNest(poly.RectLoop("i", 0, 7)),
		Refs:   []*poly.Ref{poly.NewRef(p, poly.Write, poly.Var(0, 1))},
	}
	if !strings.Contains(Render(k2), "elem 64") {
		t.Fatal("elem size lost in rendering")
	}
}
