// Package lang is the front end of the reproduction: a small C-like
// loop-nest language matching the paper's example style (Figures 4 and 5),
// parsed into the polyhedral representation the mapper consumes. It plays
// the role Microsoft Phoenix plays in the paper — turning source into the
// iteration space / reference sets of §3.2.
//
// A program declares arrays and one perfect loop nest whose innermost body
// contains assignment statements over affine array references:
//
//	array A[512][512]
//	array Anew[512][512]
//	array B[4096] elem 64
//
//	for (i = 1; i <= 510) {
//	  for (j = 1; j <= 510) {
//	    Anew[i][j] = A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1];
//	    B[2*i + 3] += A[i][j];
//	  }
//	}
//
// Rules:
//   - `array NAME[dim]...[dim]` declares an array (row-major); an optional
//     `elem N` suffix sets the element size in bytes (default 8).
//   - loop bounds are inclusive affine expressions over *outer* loop
//     variables, so triangular nests are expressible.
//   - subscripts are affine: sums/differences of `c`, `v`, and `c*v`.
//   - `=` makes the left side a write; `+=` (or `-=`, `*=`) makes it an
//     update (read+write); every array reference on the right is a read.
//   - constants in arithmetic are allowed and ignored for mapping purposes
//     (only the references matter).
package lang

import (
	"fmt"
	"strings"
)

// Pos is a 1-based source position.
type Pos struct {
	Line, Col int
}

// String renders the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a positioned front-end error.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// tokenKind enumerates lexical classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokPunct // single or double punctuation: ( ) { } [ ] ; = += -= *= + - * , <= .. <
)

// token is one lexeme.
type token struct {
	kind tokenKind
	text string
	pos  Pos
	val  int64 // for tokNumber
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokNumber:
		return fmt.Sprintf("number %d", t.val)
	case tokIdent:
		return fmt.Sprintf("identifier %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer scans the source into tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peekByte() (byte, bool) {
	if l.off >= len(l.src) {
		return 0, false
	}
	return l.src[l.off], true
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// next returns the next token, skipping whitespace and // comments.
func (l *lexer) next() (token, error) {
	for {
		c, ok := l.peekByte()
		if !ok {
			return token{kind: tokEOF, pos: l.pos()}, nil
		}
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance()
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/':
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		default:
			goto scan
		}
	}
scan:
	pos := l.pos()
	c := l.advance()
	switch {
	case isLetter(c):
		start := l.off - 1
		for {
			c, ok := l.peekByte()
			if !ok || (!isLetter(c) && !isDigit(c)) {
				break
			}
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.off], pos: pos}, nil
	case isDigit(c):
		v := int64(c - '0')
		for {
			c, ok := l.peekByte()
			if !ok || !isDigit(c) {
				break
			}
			l.advance()
			v = v*10 + int64(c-'0')
			if v < 0 {
				return token{}, errf(pos, "integer literal overflows")
			}
		}
		return token{kind: tokNumber, val: v, pos: pos}, nil
	case strings.ContainsRune("()[]{};,+-*=<.", rune(c)):
		text := string(c)
		// Two-byte operators.
		if n, ok := l.peekByte(); ok {
			two := text + string(n)
			switch two {
			case "+=", "-=", "*=", "<=", "..", "==":
				l.advance()
				text = two
			}
		}
		return token{kind: tokPunct, text: text, pos: pos}, nil
	default:
		return token{}, errf(pos, "unexpected character %q", c)
	}
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// lexAll tokenizes the whole source (the parser wants lookahead).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
