package lang

import (
	"errors"
	"testing"

	"repro/internal/workloads"
)

// corpus seeds the fuzzers with every Table 2 kernel rendered back to
// source — maximal coverage of the grammar the front end actually accepts —
// plus a spread of malformed inputs near the grammar's edges.
func corpus(f *testing.F) {
	for _, k := range workloads.All() {
		f.Add(Render(k))
	}
	for _, s := range []string{
		"",
		"array A[8]",
		"array A[8]; parallel for i = 0..7 { A[i] = A[i] + 1; }",
		"array A[0]",
		"array A[8] of 0 bytes",
		"parallel for i = 0..7 { }",
		"array A[8]; parallel for i = 7..0 { A[i] += 1; }",
		"array A[8]; parallel for i = 0..7 { A[j] += 1; }",
		"array A[8]; parallel for i = 0..7 { B[i] += 1; }",
		"array A[8,8]; parallel for i = 0..7 { A[i] += 1; }",
		"array A[8]; parallel for i = 0..7 { A[i*i] += 1; }",
		"array A[8]; parallel for i = 0..99999999999999999999 { A[i] += 1; }",
		"array A[8]; parallel for i = 0..7 { A[i] += 1;",
		"array A[8]; parallel for i = 0..7 step 0 { A[i] += 1; }",
		"{}[]=..;+=",
		"\x00\xff\xfe",
		"array é[8]",
	} {
		f.Add(s)
	}
}

// FuzzParse: Parse must never panic; any rejection must be a positioned
// *Error with a line and column a user can act on.
func FuzzParse(f *testing.F) {
	corpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse("fuzz", src)
		if err != nil {
			if prog != nil {
				t.Errorf("Parse returned both a program and an error: %v", err)
			}
			var le *Error
			if !errors.As(err, &le) {
				t.Fatalf("Parse error is %T, want *lang.Error: %v", err, err)
			}
			if le.Pos.Line < 1 || le.Pos.Col < 1 {
				t.Errorf("Parse error position %v not 1-based: %v", le.Pos, le)
			}
		}
	})
}

// FuzzCompile: the full front end (parse + lower) must never panic, and a
// compiled kernel must be well-formed enough for the mapping pipeline —
// every ref resolved with subscript arity matching its array.
func FuzzCompile(f *testing.F) {
	corpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		k, err := Compile("fuzz", src)
		if err != nil {
			var le *Error
			if !errors.As(err, &le) {
				t.Fatalf("Compile error is %T, want *lang.Error: %v", err, err)
			}
			if le.Pos.Line < 1 || le.Pos.Col < 1 {
				t.Errorf("Compile error position %v not 1-based: %v", le.Pos, le)
			}
			return
		}
		if k.Nest == nil || len(k.Refs) == 0 {
			t.Fatalf("Compile accepted a kernel with no nest or refs: %q", src)
		}
		for _, r := range k.Refs {
			if r.Array == nil {
				t.Fatal("compiled ref has nil array")
			}
			if len(r.Subs) != len(r.Array.Dims) {
				t.Fatalf("ref on %s: %d subscripts for %d dims", r.Array.Name, len(r.Subs), len(r.Array.Dims))
			}
		}
	})
}
