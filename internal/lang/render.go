package lang

import (
	"fmt"
	"strings"

	"repro/internal/poly"
	"repro/internal/workloads"
)

// Render pretty-prints a kernel back into the loop-nest language — the
// inverse of Compile, up to statement grouping. Statements are
// reconstructed from the reference list: each write (or update) reference
// starts a statement whose right-hand side collects the read references
// that follow it, and reads appearing before the first write attach to the
// first statement. Rendering a compiled program and recompiling it yields
// a kernel with the same iteration space and the same reference behaviour
// (see the round-trip tests).
func Render(k *workloads.Kernel) string {
	var b strings.Builder
	for _, a := range k.Arrays {
		fmt.Fprintf(&b, "array %s", a.Name)
		for _, d := range a.Dims {
			fmt.Fprintf(&b, "[%d]", d)
		}
		if a.ElemSize != 8 {
			fmt.Fprintf(&b, " elem %d", a.ElemSize)
		}
		b.WriteString("\n")
	}
	b.WriteString("\n")

	names := k.Nest.Names()
	for d, l := range k.Nest.Loops {
		indent := strings.Repeat("  ", d)
		fmt.Fprintf(&b, "%sfor (%s = %s; %s <= %s) {\n",
			indent, l.Name, renderExpr(l.Lower, names), l.Name, renderExpr(l.Upper, names))
	}
	body := strings.Repeat("  ", k.Nest.Depth())

	// Group refs into statements: a write/update opens a statement; reads
	// attach to the open statement (or to the first statement if they
	// precede every write).
	type stmt struct {
		lhs    *poly.Ref
		update bool
		reads  []*poly.Ref
	}
	var stmts []*stmt
	var orphans []*poly.Ref
	for _, r := range k.Refs {
		if r.Kind.Writes() {
			stmts = append(stmts, &stmt{lhs: r, update: r.Kind == poly.ReadWrite})
			continue
		}
		if len(stmts) == 0 {
			orphans = append(orphans, r)
			continue
		}
		cur := stmts[len(stmts)-1]
		cur.reads = append(cur.reads, r)
	}
	if len(stmts) > 0 {
		stmts[0].reads = append(orphans, stmts[0].reads...)
	} else if len(orphans) > 0 {
		// Pure-read kernel: synthesize an update into the first reference
		// so the reads are expressible (tags only see touched blocks).
		stmts = append(stmts, &stmt{lhs: orphans[0], update: true, reads: orphans[1:]})
	}
	for _, s := range stmts {
		op := "="
		if s.update {
			op = "+="
		}
		rhs := make([]string, 0, len(s.reads))
		for _, r := range s.reads {
			rhs = append(rhs, renderRef(r, names))
		}
		if len(rhs) == 0 {
			rhs = []string{"0"}
		}
		fmt.Fprintf(&b, "%s%s %s %s;\n", body, renderRef(s.lhs, names), op, strings.Join(rhs, " + "))
	}

	for d := k.Nest.Depth() - 1; d >= 0; d-- {
		fmt.Fprintf(&b, "%s}\n", strings.Repeat("  ", d))
	}
	return b.String()
}

// renderRef prints NAME[sub]...[sub].
func renderRef(r *poly.Ref, names []string) string {
	var b strings.Builder
	b.WriteString(r.Array.Name)
	for _, e := range r.Subs {
		b.WriteString("[" + renderExpr(e, names) + "]")
	}
	return b.String()
}

// renderExpr prints an affine expression in the language's term syntax
// (c, v, c*v joined by + and -).
func renderExpr(e poly.Expr, names []string) string {
	var parts []string
	for i := 0; i < e.Dims(); i++ {
		c := e.Coeff(i)
		if c == 0 {
			continue
		}
		name := fmt.Sprintf("x%d", i)
		if i < len(names) {
			name = names[i]
		}
		switch {
		case c == 1:
			parts = append(parts, "+ "+name)
		case c == -1:
			parts = append(parts, "- "+name)
		case c > 0:
			parts = append(parts, fmt.Sprintf("+ %d*%s", c, name))
		default:
			parts = append(parts, fmt.Sprintf("- %d*%s", -c, name))
		}
	}
	if e.Const != 0 || len(parts) == 0 {
		if e.Const >= 0 {
			parts = append(parts, fmt.Sprintf("+ %d", e.Const))
		} else {
			parts = append(parts, fmt.Sprintf("- %d", -e.Const))
		}
	}
	out := strings.Join(parts, " ")
	out = strings.TrimPrefix(out, "+ ")
	return out
}
