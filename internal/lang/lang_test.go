package lang

import (
	"strings"
	"testing"

	"repro/internal/poly"
)

const stencilSrc = `
// 5-point stencil, Figure 4 style.
array A[64][64]
array Anew[64][64]

for (i = 1; i <= 62) {
  for (j = 1; j <= 62) {
    Anew[i][j] = A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1];
  }
}
`

func TestCompileStencil(t *testing.T) {
	k, err := Compile("stencil", stencilSrc)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "stencil" {
		t.Fatalf("name = %q", k.Name)
	}
	if len(k.Arrays) != 2 || k.Arrays[0].Name != "A" || k.Arrays[1].Name != "Anew" {
		t.Fatalf("arrays = %v", k.Arrays)
	}
	if k.Nest.Depth() != 2 || k.Iterations() != 62*62 {
		t.Fatalf("nest: depth %d, %d iterations", k.Nest.Depth(), k.Iterations())
	}
	// 1 write + 4 reads.
	if len(k.Refs) != 5 {
		t.Fatalf("refs = %d", len(k.Refs))
	}
	if k.Refs[0].Kind != poly.Write || k.Refs[1].Kind != poly.Read {
		t.Fatal("ref kinds wrong")
	}
	// Check a subscript: A[i-1][j] at (5, 7) -> element (4, 7).
	idx := k.Refs[1].At(poly.Pt(5, 7))
	if idx[0] != 4 || idx[1] != 7 {
		t.Fatalf("A[i-1][j] at (5,7) = %v", idx)
	}
}

func TestCompileFig5(t *testing.T) {
	src := `
array B[3072]
for (j = 512; j <= 2559) {
  B[j] += B[j + 512] + B[j - 512];
}
`
	k, err := Compile("fig5", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Refs) != 3 {
		t.Fatalf("refs = %d", len(k.Refs))
	}
	if k.Refs[0].Kind != poly.ReadWrite {
		t.Fatalf("+= should produce an update, got %v", k.Refs[0].Kind)
	}
	if k.Iterations() != 2048 {
		t.Fatalf("iterations = %d", k.Iterations())
	}
}

func TestRangeShorthandAndElem(t *testing.T) {
	src := `
array P[128] elem 64
for (v = 0 .. 127) {
  P[v] = P[127 - v];
}
`
	k, err := Compile("mirror", src)
	if err != nil {
		t.Fatal(err)
	}
	if k.Arrays[0].ElemSize != 64 {
		t.Fatalf("elem size = %d", k.Arrays[0].ElemSize)
	}
	// P[127 - v] at v=27 -> 100.
	if got := k.Refs[1].At(poly.Pt(27))[0]; got != 100 {
		t.Fatalf("mirror subscript = %d", got)
	}
}

func TestTriangularBounds(t *testing.T) {
	src := `
array A[32][32]
for (i = 0; i <= 31) {
  for (j = 0; j <= i) {
    A[i][j] = A[j][i];
  }
}
`
	k, err := Compile("tri", src)
	if err != nil {
		t.Fatal(err)
	}
	if k.Iterations() != 32*33/2 {
		t.Fatalf("triangular iterations = %d", k.Iterations())
	}
}

func TestCoefficientForms(t *testing.T) {
	src := `
array A[4096]
for (i = 0; i <= 100) {
  A[3*i + 7] = A[i*2 - 0] + A[2*i + i];
}
`
	k, err := Compile("coef", src)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.Refs[0].At(poly.Pt(10))[0]; got != 37 {
		t.Fatalf("3*i+7 at 10 = %d", got)
	}
	if got := k.Refs[1].At(poly.Pt(10))[0]; got != 20 {
		t.Fatalf("i*2 at 10 = %d", got)
	}
	if got := k.Refs[2].At(poly.Pt(10))[0]; got != 30 {
		t.Fatalf("2*i+i at 10 = %d", got)
	}
}

func TestMultipleStatements(t *testing.T) {
	src := `
array A[256]
array B[256]
for (i = 0; i <= 255) {
  A[i] = B[i];
  B[i] += A[i];
}
`
	k, err := Compile("multi", src)
	if err != nil {
		t.Fatal(err)
	}
	// stmt1: write A, read B; stmt2: update B, read A.
	if len(k.Refs) != 4 {
		t.Fatalf("refs = %d", len(k.Refs))
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "array A[8]\n// a comment\nfor (i = 0; i <= 7) { // trailing\n A[i] = A[i]; }"
	if _, err := Compile("c", src); err != nil {
		t.Fatal(err)
	}
}

// Error cases: each must fail with a positioned message.
func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no nest", `array A[4]`, "no loop nest"},
		{"undeclared", `for (i = 0; i <= 3) { B[i] = B[i]; }`, "undeclared array"},
		{"arity", "array A[4][4]\nfor (i = 0; i <= 3) { A[i] = A[i]; }", "dimensions"},
		{"shadow", "array A[4]\nfor (i = 0; i <= 3) { for (i = 0; i <= 3) { A[i] = A[i]; } }", "shadows"},
		{"inner in outer bound", "array A[9]\nfor (i = 0; i <= j) { for (j = 0; j <= 3) { A[j] = A[i]; } }", "not in scope"},
		{"empty body", "array A[4]\nfor (i = 0; i <= 3) { }", "empty"},
		{"bad dim", `array A[0]`, "positive"},
		{"two nests", "array A[4]\nfor (i = 0 .. 3) { A[i] = A[i]; }\nfor (k = 0 .. 3) { A[k] = A[k]; }", "one top-level"},
		{"wrong cond var", "array A[4]\nfor (i = 0; j <= 3) { A[i] = A[i]; }", "names"},
		{"garbage", `@`, "unexpected character"},
		{"no subs", "array A[4]\nfor (i = 0 .. 3) { A = A; }", "no subscripts"},
		{"redeclared", "array A[4]\narray A[4]\nfor (i = 0 .. 3) { A[i] = A[i]; }", "redeclared"},
		{"unterminated", "array A[4]\nfor (i = 0 .. 3) { A[i] = A[i];", "unterminated"},
	}
	for _, c := range cases {
		_, err := Compile(c.name, c.src)
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	src := "array A[4]\nfor (i = 0; i <= 3) {\n  A[i] = Z[i];\n}"
	_, err := Compile("pos", src)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.HasPrefix(err.Error(), "3:") {
		t.Fatalf("error lacks line 3 position: %q", err)
	}
}

// TestParserNeverPanics: arbitrary mangled inputs must produce errors, not
// panics (a front end's first duty).
func TestParserNeverPanics(t *testing.T) {
	base := stencilSrc
	// Mutations: truncate at every byte, delete random spans, swap chars.
	for cut := 0; cut < len(base); cut += 7 {
		src := base[:cut]
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on truncation at %d: %v", cut, r)
				}
			}()
			_, _ = Compile("trunc", src)
		}()
	}
	mangled := []string{
		"array", "array A", "array A[", "array A[]",
		"for", "for (", "for (i", "for (i =", "for (i = 0", "for (i = 0;",
		"array A[4]\nfor (i = 0 .. 3) { A[i] }",
		"array A[4]\nfor (i = 0 .. 3) { A[i] = ; }",
		"array A[4]\nfor (i = 0 .. 3) { A[i] = A[**i]; }",
		"array A[4]\nfor (i = 0 .. 3) { A[i] = A[i]; } }",
		"array A[99999999999999999999999]",
		"for (i = 0 .. 3) { }",
		"]{[()]}[",
	}
	for _, src := range mangled {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = Compile("m", src)
		}()
	}
}

// TestCompiledKernelRunsPipeline: a compiled kernel must flow through the
// whole mapping pipeline (smoke, integration with the rest of the system
// happens in the root package tests).
func TestCompiledKernelShape(t *testing.T) {
	k, err := Compile("stencil", stencilSrc)
	if err != nil {
		t.Fatal(err)
	}
	layout := k.Layout(2048)
	if layout.NumBlocks() == 0 {
		t.Fatal("no blocks")
	}
	if k.DataBytes() != 2*64*64*8 {
		t.Fatalf("data bytes = %d", k.DataBytes())
	}
}
