package serve

import (
	"testing"
	"time"
)

// TestBreakerOpensOnConsecutiveFailures: FailLimit consecutive failures
// open the circuit; an interleaved success resets the count.
func TestBreakerOpensOnConsecutiveFailures(t *testing.T) {
	b := NewBreaker(3, time.Hour)
	b.Failure()
	b.Failure()
	b.Success() // resets the streak
	b.Failure()
	b.Failure()
	if b.State() != "closed" {
		t.Fatalf("state = %s after 2 consecutive failures with limit 3, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a request")
	}
	b.Failure()
	if b.State() != "open" {
		t.Fatalf("state = %s after 3 consecutive failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request inside the cooldown")
	}
}

// TestBreakerHalfOpenProbe: after the cooldown exactly one probe goes
// through; a second concurrent request is refused while the probe is in
// flight; the probe's outcome decides the next state.
func TestBreakerHalfOpenProbe(t *testing.T) {
	b := NewBreaker(1, 10*time.Millisecond)
	b.Failure()
	if b.State() != "open" {
		t.Fatalf("state = %s, want open", b.State())
	}
	time.Sleep(20 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if b.State() != "half-open" {
		t.Fatalf("state = %s during probe, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second request allowed while the probe is in flight")
	}
	b.Failure() // the probe failed
	if b.State() != "open" {
		t.Fatalf("state = %s after failed probe, want open", b.State())
	}

	time.Sleep(20 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused the second probe")
	}
	b.Success()
	if b.State() != "closed" {
		t.Fatalf("state = %s after successful probe, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("re-closed breaker refused a request")
	}
}

// TestBreakerClamps: nonsense construction parameters become safe ones.
func TestBreakerClamps(t *testing.T) {
	b := NewBreaker(0, 0)
	if b.FailLimit != 1 {
		t.Errorf("FailLimit = %d, want clamp to 1", b.FailLimit)
	}
	if b.Cooldown != 5*time.Second {
		t.Errorf("Cooldown = %v, want default 5s", b.Cooldown)
	}
}
