package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/experiments"
)

// newTestServer builds a Server with tight limits and an httptest front
// end. Callers adjust opts before it is passed in.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("closing server: %v", err)
		}
	})
	// Evaluations in handler-only tests run under a background base.
	s.evalBase = context.Background()
	return s, ts
}

// postMap sends one /v1/map request and returns the status, body and
// decoded envelope (nil when the body is not an envelope).
func postMap(t *testing.T, url, body string, hdr map[string]string) (int, []byte, *Envelope) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/map", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	env := &Envelope{}
	if json.Unmarshal(data, env) != nil {
		env = nil
	}
	return resp.StatusCode, data, env
}

const fig5Base = `{"kernel":"fig5","machine":"dunnington","scheme":"base"}`

// TestServeMapComputedThenCached: the first request computes, the second
// is an LRU hit, and both bodies satisfy the envelope contract.
func TestServeMapComputedThenCached(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	status, body, env := postMap(t, ts.URL, fig5Base, nil)
	if status != http.StatusOK {
		t.Fatalf("first request: status %d, body %s", status, body)
	}
	if err := check.VerifyEnvelope(status, body); err != nil {
		t.Fatal(err)
	}
	if env.Result.Source != "computed" {
		t.Errorf("first request source = %q, want computed", env.Result.Source)
	}
	if env.Result.TotalCycles == 0 || len(env.Result.MissRates) == 0 {
		t.Errorf("result carries no simulation profile: %+v", env.Result)
	}

	status, body, env = postMap(t, ts.URL, fig5Base, nil)
	if status != http.StatusOK {
		t.Fatalf("second request: status %d, body %s", status, body)
	}
	if env.Result.Source != "lru" {
		t.Errorf("second request source = %q, want lru", env.Result.Source)
	}
	if st := s.CurrentStatus(); st.Computed != 1 || st.LRUHits != 1 {
		t.Errorf("counters computed/lruHits = %d/%d, want 1/1", st.Computed, st.LRUHits)
	}
}

// TestServeMapValidateRejections: requests describing impossible
// experiments answer structured 400 validate envelopes.
func TestServeMapValidateRejections(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []string{
		`{"machine":"dunnington"}`,                                    // no kernel
		`{"kernel":"no-such-kernel","machine":"dunnington"}`,          // unknown kernel
		`{"kernel":"fig5"}`,                                           // no machine
		`{"kernel":"fig5","machine":"no-such-machine"}`,               // unknown machine
		`{"kernel":"fig5","machine":"dunnington","scheme":"quantum"}`, // unknown scheme
		`{"kernel":"fig5","kernel_source":"x","machine":"dunnington"}`,
		`{"kernel":"fig5","machine":"dunnington","passes":1000}`, // over maxUploadPasses
	}
	for _, body := range cases {
		status, data, env := postMap(t, ts.URL, body, nil)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", body, status, data)
			continue
		}
		if err := check.VerifyEnvelope(status, data); err != nil {
			t.Errorf("%s: %v", body, err)
		}
		if env.Error.Stage != "validate" {
			t.Errorf("%s: stage %q, want validate", body, env.Error.Stage)
		}
	}
}

// TestServeMapTransportRejections: method, decode and body-size failures
// each answer their deliberate status with a well-formed envelope.
func TestServeMapTransportRejections(t *testing.T) {
	_, ts := newTestServer(t, Options{BodyLimit: 256})

	resp, err := http.Get(ts.URL + "/v1/map")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}
	if err := check.VerifyEnvelope(resp.StatusCode, data); err != nil {
		t.Errorf("GET: %v", err)
	}

	status, data, env := postMap(t, ts.URL, `{"kernel": truncated`, nil)
	if status != http.StatusBadRequest || env.Error.Stage != StageDecode {
		t.Errorf("malformed JSON: status %d stage %v, want 400 decode (body %s)", status, env, data)
	}

	big := `{"kernel":"` + strings.Repeat("x", 512) + `"}`
	status, data, env = postMap(t, ts.URL, big, nil)
	if status != http.StatusRequestEntityTooLarge || env.Error.Stage != StageBodySize {
		t.Errorf("oversized body: status %d, want 413 body-size (body %s)", status, data)
	}
	if err := check.VerifyEnvelope(status, data); err != nil {
		t.Errorf("oversized body: %v", err)
	}
}

// TestServeMapQueueFullAndShed: with the admission queue artificially
// occupied, cold requests shed (watermark) or bounce (full) with retryable
// 429 envelopes — while an LRU hit keeps serving through the overload.
func TestServeMapQueueFullAndShed(t *testing.T) {
	s, ts := newTestServer(t, Options{Queue: 4, ShedWatermark: 0.5})

	// Prime the cache while the server is idle.
	if status, body, _ := postMap(t, ts.URL, fig5Base, nil); status != http.StatusOK {
		t.Fatalf("prime: status %d, body %s", status, body)
	}

	// Occupy the queue past the shed watermark (mark = 2 of 4).
	for i := 0; i < 3; i++ {
		s.queue <- struct{}{}
	}
	defer func() {
		for i := 0; i < 3; i++ {
			<-s.queue
		}
	}()

	status, data, env := postMap(t, ts.URL, `{"kernel":"fig5","machine":"dunnington","scheme":"local"}`, nil)
	if status != http.StatusTooManyRequests || env.Error.Stage != StageShed {
		t.Fatalf("over watermark: status %d, want 429 shed (body %s)", status, data)
	}
	if err := check.VerifyEnvelope(status, data); err != nil {
		t.Fatal(err)
	}
	if !env.Error.Retryable {
		t.Error("shed envelope is not marked retryable")
	}

	// Cached results still serve above the watermark.
	if status, body, env := postMap(t, ts.URL, fig5Base, nil); status != http.StatusOK || env.Result.Source != "lru" {
		t.Fatalf("cache hit during shed: status %d, body %s", status, body)
	}

	// Fill the queue completely: queue-full, not shed.
	s.queue <- struct{}{}
	defer func() { <-s.queue }()
	status, data, env = postMap(t, ts.URL, `{"kernel":"fig5","machine":"dunnington","scheme":"ta"}`, nil)
	if status != http.StatusTooManyRequests || env.Error.Stage != StageQueueFull {
		t.Fatalf("full queue: status %d, want 429 queue-full (body %s)", status, data)
	}
}

// TestServeMapDraining: once draining, evaluation endpoints answer 503
// envelopes and readyz flips to 503, while healthz stays alive.
func TestServeMapDraining(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	s.draining.Store(true)

	status, data, env := postMap(t, ts.URL, fig5Base, nil)
	if status != http.StatusServiceUnavailable || env.Error.Stage != StageDraining {
		t.Fatalf("draining map: status %d, want 503 draining (body %s)", status, data)
	}
	if err := check.VerifyEnvelope(status, data); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining: status %d, want 200", resp.StatusCode)
	}
}

// TestServePanicContained: a panicking handler answers a 503 handler-panic
// envelope instead of an empty reply, and the server keeps serving.
func TestServePanicContained(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.contained(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/map", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("panicked handler answered %d, want 503", rr.Code)
	}
	if err := check.VerifyEnvelope(rr.Code, rr.Body.Bytes()); err != nil {
		t.Fatal(err)
	}
	if st := s.CurrentStatus(); st.Panics != 1 {
		t.Errorf("panics counter = %d, want 1", st.Panics)
	}

	// Header already sent: the boundary must not write a second one (the
	// recorder would record a superfluous WriteHeader as a code change).
	h = s.contained(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		panic("late kaboom")
	}))
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/map", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("late panic rewrote the status to %d", rr.Code)
	}
}

// TestRequestTimeoutHeader: the Request-Timeout header is parsed as a Go
// duration or whole seconds, clamped to MaxTimeout, and ignored when
// nonsense.
func TestRequestTimeoutHeader(t *testing.T) {
	s, err := New(Options{DefaultTimeout: 30 * time.Second, MaxTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 30 * time.Second},
		{"2s", 2 * time.Second},
		{"5", 5 * time.Second},
		{"500ms", 500 * time.Millisecond},
		{"10m", time.Minute}, // clamped
		{"-3s", 30 * time.Second},
		{"soon", 30 * time.Second},
	}
	for _, c := range cases {
		r := httptest.NewRequest(http.MethodPost, "/v1/map", nil)
		if c.header != "" {
			r.Header.Set("Request-Timeout", c.header)
		}
		if got := s.requestTimeout(r); got != c.want {
			t.Errorf("Request-Timeout %q: %v, want %v", c.header, got, c.want)
		}
	}
}

// TestServeMapBudgetTimeout: a vanishingly small Request-Timeout expires
// before the evaluation finishes and answers a retryable timeout envelope.
func TestServeMapBudgetTimeout(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, data, env := postMap(t, ts.URL, fig5Base, map[string]string{"Request-Timeout": "1ns"})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", status, data)
	}
	if err := check.VerifyEnvelope(status, data); err != nil {
		t.Fatal(err)
	}
	if env.Error.Stage != "timeout" || !env.Error.Retryable {
		t.Errorf("envelope = %+v, want retryable timeout", env.Error)
	}
}

// TestServeRecordEndpoint: /v1/record answers a sealed checkpoint record —
// the fabric offload wire form — whose seal verifies.
func TestServeRecordEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Post(ts.URL+"/v1/record", "application/json", strings.NewReader(fig5Base))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, data)
	}
	rec := &experiments.CheckpointRecord{}
	if err := json.Unmarshal(data, rec); err != nil {
		t.Fatal(err)
	}
	if rec.Key == "" || rec.Sim == nil {
		t.Fatalf("record incomplete: %s", data)
	}
	if rec.Sum == "" {
		t.Fatal("record is unsealed")
	}
	if err := rec.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestServeAdhocKeysByDigest: two different kernel sources sharing a name
// must not collide in the cache — their keys differ by content digest.
func TestServeAdhocKeysByDigest(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	src1 := "array B[3072]\nfor (j = 512; j <= 2559) {\n  B[j] += B[j + 512];\n}\n"
	src2 := "array B[3072]\nfor (j = 512; j <= 2559) {\n  B[j] += B[j - 512];\n}\n"
	keys := make(map[string]bool)
	for _, src := range []string{src1, src2} {
		p := &parsed{req: &MapRequest{KernelSource: src, Machine: "dunnington", Scheme: "base"}}
		if err := s.resolve(p); err != nil {
			t.Fatal(err)
		}
		if !p.adhoc {
			t.Error("kernel_source request not classified ad-hoc")
		}
		if !strings.Contains(p.key, "|src=") {
			t.Errorf("ad-hoc key carries no source digest: %s", p.key)
		}
		keys[p.key] = true
	}
	if len(keys) != 2 {
		t.Fatalf("distinct sources collided on one key: %v", keys)
	}
}

// TestServeCheckpointWarmStart: a second server pointed at the first's
// checkpoint restores its records into the LRU and serves them without
// recomputing; a concurrent open of the live checkpoint is rejected by the
// lockfile.
func TestServeCheckpointWarmStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.ckpt")
	s1, ts1 := newTestServer(t, Options{Checkpoint: path})
	if status, body, _ := postMap(t, ts1.URL, fig5Base, nil); status != http.StatusOK {
		t.Fatalf("compute: status %d, body %s", status, body)
	}

	// The live checkpoint is locked: a CLI sweep (or second server) on the
	// same file must be refused.
	if _, err := experiments.OpenCheckpoint(path, experiments.GridSignature(ServeGrid)); err == nil {
		t.Fatal("concurrent open of the live server checkpoint was accepted")
	}

	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Options{Checkpoint: path})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Close()
	s2.evalBase = context.Background()
	status, body, env := postMap(t, ts2.URL, fig5Base, nil)
	if status != http.StatusOK {
		t.Fatalf("warm start: status %d, body %s", status, body)
	}
	if env.Result.Source != "lru" {
		t.Errorf("warm-start source = %q, want lru (restored from checkpoint)", env.Result.Source)
	}
	if st := s2.CurrentStatus(); st.Computed != 0 {
		t.Errorf("warm start recomputed %d cells", st.Computed)
	}
}

// TestOffloadEndToEnd: a server with -fabric-url pointed at a second
// topomapd offloads its cold evaluation over the /v1/record protocol and
// reports source "fabric"; the backend's sealed record survives the trip.
func TestOffloadEndToEnd(t *testing.T) {
	_, backendTS := newTestServer(t, Options{})
	front, frontTS := newTestServer(t, Options{FabricURL: backendTS.URL})

	status, body, env := postMap(t, frontTS.URL, fig5Base, nil)
	if status != http.StatusOK {
		t.Fatalf("offloaded request: status %d, body %s", status, body)
	}
	if env.Result.Source != "fabric" {
		t.Errorf("source = %q, want fabric", env.Result.Source)
	}
	if st := front.CurrentStatus(); st.Fabric != 1 || st.Computed != 0 {
		t.Errorf("front counters fabric/computed = %d/%d, want 1/0", st.Fabric, st.Computed)
	}
	if st := front.CurrentStatus(); st.Breaker != "closed" {
		t.Errorf("breaker = %s after a successful offload, want closed", st.Breaker)
	}
}

// TestOffloadBreakerFallback: a black-holed fabric URL trips the breaker
// after its failure limit; every request is still answered locally, and
// once open the breaker stops even trying the fabric.
func TestOffloadBreakerFallback(t *testing.T) {
	// A listener that accepts nothing useful: immediate connection refusal
	// after close.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + dead.Addr().String()
	dead.Close()

	front, frontTS := newTestServer(t, Options{FabricURL: deadURL})
	schemes := []string{"base", "local", "ta", "combined"}
	for i, scheme := range schemes {
		body := `{"kernel":"fig5","machine":"dunnington","scheme":"` + scheme + `"}`
		status, data, env := postMap(t, frontTS.URL, body, nil)
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, status, data)
		}
		if env.Result.Source != "computed" {
			t.Errorf("request %d source = %q, want computed (local fallback)", i, env.Result.Source)
		}
	}
	st := front.CurrentStatus()
	if st.Breaker != "open" {
		t.Errorf("breaker = %s after repeated transport failures, want open", st.Breaker)
	}
	if st.Computed != uint64(len(schemes)) {
		t.Errorf("computed = %d, want %d (every request served locally)", st.Computed, len(schemes))
	}
}

// TestOffloadAuthoritativeFailure: a structured cell failure from the
// fabric is an authoritative answer — relayed to the client, not treated
// as a breaker failure.
func TestOffloadAuthoritativeFailure(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		status, env := errorEnvelope("map", "fabric: no legal mapping", 0)
		writeEnvelope(w, status, env)
	}))
	defer backend.Close()

	front, frontTS := newTestServer(t, Options{FabricURL: backend.URL})
	status, data, env := postMap(t, frontTS.URL, fig5Base, nil)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (body %s)", status, data)
	}
	if err := check.VerifyEnvelope(status, data); err != nil {
		t.Fatal(err)
	}
	if env.Error.Stage != "map" {
		t.Errorf("stage = %q, want map", env.Error.Stage)
	}
	if st := front.CurrentStatus(); st.Breaker != "closed" {
		t.Errorf("breaker = %s after an authoritative failure, want closed", st.Breaker)
	}
}

// TestOffloadRejectsCorruptRecord: a record whose seal does not verify is
// a breaker failure and the evaluation falls back to local.
func TestOffloadRejectsCorruptRecord(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A structurally valid record with a wrong seal.
		io.WriteString(w, `{"key":"x","sim":{"total_cycles":1},"sum":"deadbeefdeadbeef"}`)
	}))
	defer backend.Close()

	front, frontTS := newTestServer(t, Options{FabricURL: backend.URL})
	status, _, env := postMap(t, frontTS.URL, fig5Base, nil)
	if status != http.StatusOK || env.Result.Source != "computed" {
		t.Fatalf("corrupt offload record: status %d source %v, want 200 computed", status, env)
	}
	if st := front.CurrentStatus(); st.Fabric != 0 {
		t.Errorf("fabric counter = %d for a rejected record, want 0", st.Fabric)
	}
}

// TestServeGracefulDrain: canceling the serve context drains in-flight
// work and Serve returns nil; the listener refuses new connections after.
func TestServeGracefulDrain(t *testing.T) {
	s, err := New(Options{DrainTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	resp, err := http.Post(url+"/v1/map", "application/json", bytes.NewReader([]byte(fig5Base)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain request: status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve after drain = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after context cancel")
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

// TestStatuszShape: /statusz is well-formed JSON carrying the bounded
// state the chaos harness asserts on.
func TestStatuszShape(t *testing.T) {
	_, ts := newTestServer(t, Options{LRUSize: 7})
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	st := &Status{}
	if err := json.NewDecoder(resp.Body).Decode(st); err != nil {
		t.Fatal(err)
	}
	if st.LRUCap != 7 || st.QueueCap != 64 {
		t.Errorf("statusz caps = %+v, want LRUCap 7, QueueCap 64", st)
	}
}

// TestErrorEnvelopesNeverPlainText sweeps every failure-path response body
// this file exercised plus a direct unknown path, asserting the error
// contract from the client side: non-200 implies a decodable envelope.
func TestErrorEnvelopesNeverPlainText(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, body := range []string{"", "{", `{"kernel":"fig5"}`} {
		status, data, _ := postMap(t, ts.URL, body, nil)
		if status == http.StatusOK {
			t.Errorf("%q: unexpectedly succeeded", body)
			continue
		}
		if err := check.VerifyEnvelope(status, data); err != nil {
			t.Errorf("%q: %v", body, err)
		}
	}
}
