package chaostest

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/check"
	"repro/internal/serve"
)

// soakSeed pins the fault schedule; change it only to explore a different
// deterministic mix.
const soakSeed int64 = 1746

// soakOptions keeps the server small enough that overload genuinely
// happens: a short queue, few workers, a tight body budget.
func soakOptions() serve.Options {
	return serve.Options{
		Queue:          8,
		Workers:        2,
		LRUSize:        64,
		DefaultTimeout: 10 * time.Second,
		BodyLimit:      2 << 10,
		BodyTimeout:    300 * time.Millisecond,
		DrainTimeout:   10 * time.Second,
	}
}

// healthyBodies rotates a small request pool: repeats exercise the LRU and
// coalescing, distinct cells exercise cold evaluation under load.
var healthyBodies = []string{
	`{"kernel":"fig5","machine":"dunnington","scheme":"base"}`,
	`{"kernel":"fig5","machine":"dunnington","scheme":"local"}`,
	`{"kernel":"fig5","machine":"dunnington","scheme":"ta"}`,
	`{"kernel":"fig5","machine":"dunnington","scheme":"combined"}`,
	`{"kernel":"fig5","machine":"dunnington"}`,
}

// TestSoakMixedFaultLoad is the chaos soak: 40 clients × 6 requests (240
// total) against one small server, each request deterministically healthy
// or hostile per chaos.PickClient. The server must answer every surviving
// request with a well-formed envelope, keep its state bounded, drain
// cleanly on context cancel, and leak no goroutines.
func TestSoakMixedFaultLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	before := runtime.NumGoroutine()

	s, err := serve.New(soakOptions())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()
	addr := ln.Addr().String()
	base := "http://" + addr

	const clients = 40
	const perClient = 6

	var (
		mu        sync.Mutex
		oks       int
		sheds     int
		envErrs   []string
		faultRuns = map[chaos.ClientFault]int{}
	)
	record := func(f func()) { mu.Lock(); defer mu.Unlock(); f() }

	tr := &http.Transport{MaxIdleConnsPerHost: 4}
	client := &http.Client{Transport: tr, Timeout: 15 * time.Second}
	defer tr.CloseIdleConnections()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for seq := 0; seq < perClient; seq++ {
				id := fmt.Sprintf("c%d-r%d", c, seq)
				fault, armed := chaos.PickClient(soakSeed, id)
				if !armed {
					fault = chaos.ClientNone
				}
				record(func() { faultRuns[fault]++ })
				status, body, err := fireRequest(t, client, base, addr, fault, c, seq)
				if err != nil {
					// Hostile requests may legitimately end in a client-side
					// error (cut connection, canceled context). A healthy
					// request must not.
					if fault == chaos.ClientNone {
						record(func() {
							envErrs = append(envErrs, fmt.Sprintf("%s healthy request failed: %v", id, err))
						})
					}
					continue
				}
				if verr := check.VerifyEnvelope(status, body); verr != nil {
					record(func() {
						envErrs = append(envErrs, fmt.Sprintf("%s (%s, HTTP %d): %v", id, fault, status, verr))
					})
					continue
				}
				record(func() {
					switch status {
					case http.StatusOK:
						oks++
					case http.StatusTooManyRequests:
						sheds++
					}
				})
				if status == http.StatusTooManyRequests {
					assertRetryableShed(t, record, &envErrs, id, body)
				}
			}
		}(c)
	}
	wg.Wait()

	for _, e := range envErrs {
		t.Error(e)
	}
	if oks == 0 {
		t.Error("soak produced zero successful responses")
	}
	t.Logf("soak: %d ok, %d shed; faults: %v", oks, sheds, faultRuns)
	for _, f := range chaos.InjectableClient() {
		if faultRuns[f] == 0 {
			t.Errorf("fault class %s never fired under seed %d; grow the request matrix", f, soakSeed)
		}
	}

	// Bounded state after the storm: queue drained, flights resolved, LRU
	// within cap.
	deadline := time.Now().Add(10 * time.Second)
	var st serve.Status
	for {
		st = s.CurrentStatus()
		if st.QueueDepth == 0 && st.Inflight == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if st.QueueDepth != 0 {
		t.Errorf("admission queue still holds %d after the soak", st.QueueDepth)
	}
	if st.Inflight != 0 {
		t.Errorf("%d flights still unresolved after the soak", st.Inflight)
	}
	if st.LRULen > st.LRUCap {
		t.Errorf("LRU grew past its cap: %d > %d", st.LRULen, st.LRUCap)
	}
	if st.Requests == 0 || st.Shed+st.QueueFull == 0 {
		t.Logf("soak note: requests=%d shed=%d queue_full=%d (overload pressure may need tuning)", st.Requests, st.Shed, st.QueueFull)
	}

	// SIGTERM-style drain: cancel, expect a clean nil from Serve.
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve after drain = %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain within 30s")
	}
	if err := s.Close(); err != nil {
		t.Errorf("closing server: %v", err)
	}
	tr.CloseIdleConnections()

	// Goroutine-leak check: allow the runtime and net pollers to settle,
	// then require the count back near the baseline.
	leakDeadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+5 || time.Now().After(leakDeadline) {
			if n > before+5 {
				buf := make([]byte, 1<<20)
				t.Errorf("goroutine leak: %d before soak, %d after drain\n%s", before, n, buf[:runtime.Stack(buf, true)])
			}
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// fireRequest issues one request under the given fault class and returns
// the status and body when a response arrived at all.
func fireRequest(t *testing.T, client *http.Client, base, addr string, fault chaos.ClientFault, c, seq int) (int, []byte, error) {
	t.Helper()
	switch fault {
	case chaos.ClientSlowLoris:
		return slowLoris(addr)
	case chaos.ClientMalformed:
		return post(client, base, strings.NewReader(`{"kernel": "fig5", "machine": truncated garb`), nil)
	case chaos.ClientOversized:
		big := `{"kernel":"fig5","machine":"dunnington","pad":"` + strings.Repeat("x", 4<<10) + `"}`
		return post(client, base, strings.NewReader(big), nil)
	case chaos.ClientDisconnect:
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		defer cancel()
		return post(client, base, strings.NewReader(healthyBodies[(c+seq)%len(healthyBodies)]), ctx)
	default:
		return post(client, base, strings.NewReader(healthyBodies[(c+seq)%len(healthyBodies)]), nil)
	}
}

// post sends one /v1/map POST; a non-nil ctx arms the disconnect fault.
func post(client *http.Client, base string, body io.Reader, ctx context.Context) (int, []byte, error) {
	req, err := http.NewRequest(http.MethodPost, base+"/v1/map", body)
	if err != nil {
		return 0, nil, err
	}
	if ctx != nil {
		req = req.WithContext(ctx)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// slowLoris opens a raw connection, promises a body, and trickles it
// slower than the server's body deadline. The server must answer 408 (or
// cut the connection); it must never succeed and never stall.
func slowLoris(addr string) (int, []byte, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return 0, nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(15 * time.Second))
	header := "POST /v1/map HTTP/1.1\r\nHost: topomapd\r\nContent-Type: application/json\r\nContent-Length: 512\r\n\r\n"
	if _, err := io.WriteString(conn, header); err != nil {
		return 0, nil, err
	}
	// One byte every 120ms against a 300ms body deadline: the guard must
	// fire long before the 512-byte body completes.
	for i := 0; i < 10; i++ {
		if _, err := io.WriteString(conn, "{"); err != nil {
			break // server cut us off mid-trickle: acceptable
		}
		time.Sleep(120 * time.Millisecond)
	}
	raw, err := io.ReadAll(conn)
	if err != nil && len(raw) == 0 {
		return 0, nil, err
	}
	status, body, perr := parseRawResponse(string(raw))
	if perr != nil {
		return 0, nil, perr
	}
	return status, body, nil
}

// parseRawResponse pulls the status code and body out of a raw HTTP/1.1
// response read to EOF.
func parseRawResponse(raw string) (int, []byte, error) {
	if raw == "" {
		return 0, nil, fmt.Errorf("connection closed with no response")
	}
	var status int
	if _, err := fmt.Sscanf(raw, "HTTP/1.1 %d", &status); err != nil {
		return 0, nil, fmt.Errorf("unparseable response %.60q", raw)
	}
	i := strings.Index(raw, "\r\n\r\n")
	if i < 0 {
		return status, nil, fmt.Errorf("response %d with no body separator", status)
	}
	body := raw[i+4:]
	// Tolerate chunked transfer framing by trimming to the JSON object.
	if j := strings.IndexByte(body, '{'); j >= 0 {
		if k := strings.LastIndexByte(body, '}'); k > j {
			body = body[j : k+1]
		}
	}
	return status, []byte(body), nil
}

// assertRetryableShed decodes a 429 body and requires the retry contract:
// a shed or queue-full stage, retryable, with a retry hint.
func assertRetryableShed(t *testing.T, record func(func()), envErrs *[]string, id string, body []byte) {
	t.Helper()
	env := struct {
		Error *struct {
			Stage     string `json:"stage"`
			Retryable bool   `json:"retryable"`
		} `json:"error"`
	}{}
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
		record(func() { *envErrs = append(*envErrs, fmt.Sprintf("%s: undecodable 429 body %.80q", id, body)) })
		return
	}
	if env.Error.Stage != "shed" && env.Error.Stage != "queue-full" {
		record(func() { *envErrs = append(*envErrs, fmt.Sprintf("%s: 429 with stage %q", id, env.Error.Stage)) })
	}
	if !env.Error.Retryable {
		record(func() { *envErrs = append(*envErrs, fmt.Sprintf("%s: 429 not marked retryable", id)) })
	}
}

// TestSoakCacheServesThroughOverload: with the queue artificially wedged
// (every cold request sheds), a result already in the LRU keeps serving —
// the graceful-degradation property the watermark shedder exists for.
func TestSoakCacheServesThroughOverload(t *testing.T) {
	s, err := serve.New(soakOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()
	defer func() { cancel(); <-served }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 30 * time.Second}

	// Prime one cell.
	status, body, err := post(client, base, strings.NewReader(healthyBodies[0]), nil)
	if err != nil || status != http.StatusOK {
		t.Fatalf("prime: status %d err %v body %s", status, err, body)
	}

	// Wedge the workers with slow cold cells? No — deterministic: flood
	// with enough concurrent cold distinct cells that the shed watermark
	// trips, and interleave cached requests which must all succeed.
	var wg sync.WaitGroup
	shedSeen := make(chan struct{}, 1)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cold := fmt.Sprintf(`{"kernel":"fig5","machine":"dunnington","scheme":"base","passes":%d}`, 2+i%8)
			st, _, err := post(client, base, strings.NewReader(cold), nil)
			if err == nil && st == http.StatusTooManyRequests {
				select {
				case shedSeen <- struct{}{}:
				default:
				}
			}
		}(i)
	}
	for i := 0; i < 10; i++ {
		st, b, err := post(client, base, strings.NewReader(healthyBodies[0]), nil)
		if err != nil {
			t.Errorf("cached request %d failed under overload: %v", i, err)
			continue
		}
		if st != http.StatusOK {
			t.Errorf("cached request %d answered %d under overload (body %s)", i, st, b)
		}
	}
	wg.Wait()
	select {
	case <-shedSeen:
	default:
		t.Log("note: overload flood finished without tripping the shedder (fast machine); cache assertions still held")
	}
}
