// Package chaostest is the topomapd chaos/soak harness: a black-box test
// package (no non-test sources) that runs a real serve.Server on a real
// listener and hammers it with hundreds of concurrent seeded-misbehaving
// clients — slow-loris bodies, malformed requests, oversized uploads,
// mid-request disconnects, and plain overload — then asserts the
// robustness contract from the outside:
//
//   - every response with a body is a well-formed JSON envelope for its
//     status (check.VerifyEnvelope), including sheds, drains and panics;
//   - rejected-for-load answers are retryable 429s, and cached results
//     keep serving while cold traffic sheds;
//   - server state stays bounded: the result LRU never exceeds its cap,
//     the admission queue drains to empty, no flight leaks;
//   - a SIGTERM-style context cancel drains cleanly and the process ends
//     with no leaked goroutines.
//
// Fault assignment is deterministic per (seed, request id) via
// chaos.PickClient, so a failing soak replays exactly.
package chaostest
