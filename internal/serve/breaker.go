package serve

import (
	"sync"
	"time"
)

// Breaker is the circuit breaker in front of fabric offload. It trips on
// transport-level trouble (connection failures, malformed responses,
// overload statuses) — never on a structured cell failure, which is an
// authoritative answer — and while open the server evaluates locally
// instead of hammering a browned-out coordinator. After Cooldown one probe
// request is allowed through (half-open); its outcome closes or re-opens
// the circuit.
type Breaker struct {
	// FailLimit is the consecutive-failure count that opens the circuit.
	FailLimit int
	// Cooldown is how long the circuit stays open before a probe.
	Cooldown time.Duration

	mu       sync.Mutex
	fails    int
	state    breakerState
	openedAt time.Time
	probing  bool
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// NewBreaker returns a closed breaker. failLimit < 1 is clamped to 1;
// cooldown <= 0 defaults to 5s.
func NewBreaker(failLimit int, cooldown time.Duration) *Breaker {
	if failLimit < 1 {
		failLimit = 1
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{FailLimit: failLimit, Cooldown: cooldown}
}

// Allow reports whether a request may go to the protected backend right
// now. In the half-open state only one in-flight probe is allowed; its
// Success/Failure decides the next state.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) < b.Cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a backend success, closing the circuit.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.fails = 0
	b.state = breakerClosed
	b.probing = false
	b.mu.Unlock()
}

// Failure records a backend failure. FailLimit consecutive failures — or
// any failed half-open probe — open the circuit.
func (b *Breaker) Failure() {
	b.mu.Lock()
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= b.FailLimit {
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.fails = 0
	}
	b.probing = false
	b.mu.Unlock()
}

// State names the current state for /statusz: "closed", "open" or
// "half-open".
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
