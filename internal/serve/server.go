package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/experiments"
)

// Options configures a Server. The zero value of any field selects the
// documented default, so Options{} is a usable production config.
type Options struct {
	// Queue bounds cold evaluations admitted (queued + running); a full
	// queue answers 429 queue-full. Default 64.
	Queue int
	// Workers caps concurrently running evaluations. Default 4.
	Workers int
	// AdhocWorkers caps the ad-hoc class (kernel_source / machine_json
	// requests) below Workers so unbounded-universe uploads cannot starve
	// registry traffic. Default max(1, Workers/2).
	AdhocWorkers int
	// ShedWatermark is the queue-occupancy fraction beyond which cold
	// requests are shed with 429 + Retry-After while cached results keep
	// serving. Default 0.75.
	ShedWatermark float64
	// LRUSize bounds the shared result cache (records). Default 1024.
	LRUSize int
	// DefaultTimeout is the per-request evaluation budget when the client
	// sends no Request-Timeout header. Default 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps any client-requested budget. Default 2m.
	MaxTimeout time.Duration
	// MaxCycles is the default simulated-cycle budget per evaluation
	// (0 = unlimited); a request's max_cycles is clamped to it when set.
	MaxCycles uint64
	// SimWorkers bounds each evaluation's intra-cell simulator pool.
	SimWorkers int
	// BodyLimit caps request-body bytes. Default 1 MiB.
	BodyLimit int64
	// BodyTimeout bounds reading the request body (slow-loris guard).
	// Default 10s.
	BodyTimeout time.Duration
	// DrainTimeout bounds the graceful drain after the serve context is
	// canceled; in-flight work past it is force-canceled. Default 15s.
	DrainTimeout time.Duration
	// FabricURL, when set, offloads cold evaluations to another topomapd
	// (or a fabric front end speaking /v1/record) behind a circuit
	// breaker, falling back to local evaluation when it browns out.
	FabricURL string
	// Checkpoint, when set, is a JSONL checkpoint path (PR 5 format):
	// restored records warm the LRU at startup and computed cells are
	// appended, under the checkpoint lockfile (a concurrent CLI sweep on
	// the same file is rejected).
	Checkpoint string
}

// withDefaults resolves every zero field.
func (o Options) withDefaults() Options {
	if o.Queue <= 0 {
		o.Queue = 64
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.AdhocWorkers <= 0 {
		o.AdhocWorkers = (o.Workers + 1) / 2
	}
	if o.AdhocWorkers > o.Workers {
		o.AdhocWorkers = o.Workers
	}
	if o.ShedWatermark <= 0 || o.ShedWatermark > 1 {
		o.ShedWatermark = 0.75
	}
	if o.LRUSize <= 0 {
		o.LRUSize = 1024
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 2 * time.Minute
	}
	if o.BodyLimit <= 0 {
		o.BodyLimit = 1 << 20
	}
	if o.BodyTimeout <= 0 {
		o.BodyTimeout = 10 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 15 * time.Second
	}
	return o
}

// Server is the topomapd request pipeline. See the package comment for the
// layering; Serve runs it on a listener until the context is canceled,
// then drains.
type Server struct {
	opts    Options
	lru     *experiments.ResultLRU
	flights *experiments.FlightGroup
	ckpt    *experiments.CheckpointFile
	offload *offloader

	// queue admits cold evaluations (queued + running); slots and
	// adhocSlots cap the running classes.
	queue      chan struct{}
	slots      chan struct{}
	adhocSlots chan struct{}
	shedMark   int

	draining atomic.Bool
	evalBase context.Context
	evalStop context.CancelFunc
	httpSrv  *http.Server

	stats struct {
		requests, lruHits, coalesced, computed, fabric atomic.Uint64
		cellFails, shed, queueFull, panics             atomic.Uint64
	}
}

// ServeGrid is the grid-signature tag topomapd checkpoints carry. Cell
// keys are self-describing (kernel, machine, scheme, config, digests), so
// every topomapd instance shares one signature and any topomapd can warm
// from any topomapd checkpoint — but a CLI sweep's checkpoint (whose grid
// signature encodes its flag set) is still rejected.
const ServeGrid = "topomapd"

// New builds a Server, opening (and locking) the warm checkpoint when one
// is configured. Call Close to release it.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	s := &Server{
		opts:       opts,
		lru:        experiments.NewResultLRU(opts.LRUSize),
		flights:    experiments.NewFlightGroup(),
		queue:      make(chan struct{}, opts.Queue),
		slots:      make(chan struct{}, opts.Workers),
		adhocSlots: make(chan struct{}, opts.AdhocWorkers),
		shedMark:   int(opts.ShedWatermark * float64(opts.Queue)),
	}
	if s.shedMark < 1 {
		s.shedMark = 1
	}
	if opts.FabricURL != "" {
		s.offload = newOffloader(opts.FabricURL)
	}
	if opts.Checkpoint != "" {
		ckpt, err := experiments.OpenCheckpoint(opts.Checkpoint, experiments.GridSignature(ServeGrid))
		if err != nil {
			return nil, err
		}
		s.ckpt = ckpt
		for _, rec := range ckpt.Restored() {
			s.lru.Add(rec.Key, rec)
		}
	}
	return s, nil
}

// Close releases the server's checkpoint (and its lockfile), if any.
func (s *Server) Close() error {
	if s.ckpt == nil {
		return nil
	}
	err := s.ckpt.Close()
	s.ckpt = nil
	return err
}

// Handler returns the server's routed handler with per-request panic
// containment: a panicking handler answers a 503 handler-panic envelope
// (when the header is still unsent) instead of killing the connection
// without a body or taking the process down.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/map", func(w http.ResponseWriter, r *http.Request) { s.serveMap(w, r, false) })
	mux.HandleFunc("/v1/record", func(w http.ResponseWriter, r *http.Request) { s.serveMap(w, r, true) })
	mux.HandleFunc("/healthz", s.serveHealthz)
	mux.HandleFunc("/readyz", s.serveReadyz)
	mux.HandleFunc("/statusz", s.serveStatusz)
	return s.contained(mux)
}

// contained wraps next with the panic-to-503 boundary.
func (s *Server) contained(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tw := &trackingWriter{ResponseWriter: w}
		defer func() {
			if v := recover(); v != nil {
				s.stats.panics.Add(1)
				if !tw.wrote {
					status, env := errorEnvelope(StagePanic, fmt.Sprintf("request handler panicked: %v", v), 0)
					writeEnvelope(tw, status, env)
				}
			}
		}()
		next.ServeHTTP(tw, r)
	})
}

// trackingWriter records whether the response header went out, so the
// panic boundary knows when an envelope can still be written.
type trackingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (t *trackingWriter) WriteHeader(status int) {
	t.wrote = true
	t.ResponseWriter.WriteHeader(status)
}

func (t *trackingWriter) Write(p []byte) (int, error) {
	t.wrote = true
	return t.ResponseWriter.Write(p)
}

// Serve runs the hardened HTTP server on ln until ctx is canceled, then
// drains: readiness drops, new requests get 503, in-flight requests finish
// under DrainTimeout, stragglers are force-canceled. Returns nil after a
// clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.evalBase, s.evalStop = context.WithCancel(context.WithoutCancel(ctx))
	defer s.evalStop()
	srv := Harden(&http.Server{Handler: s.Handler()})
	s.httpSrv = srv

	drained := make(chan error, 1)
	stopDrainer := context.AfterFunc(ctx, func() {
		s.draining.Store(true)
		dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), s.opts.DrainTimeout)
		defer cancel()
		err := Shutdown(dctx, srv)
		s.evalStop() // whatever outlived the drain deadline is canceled now
		drained <- err
	})

	err := srv.Serve(ln)
	if !errors.Is(err, http.ErrServerClosed) {
		stopDrainer()
		return err
	}
	if derr := <-drained; derr != nil {
		return fmt.Errorf("serve: drain: %w", derr)
	}
	return nil
}

// parsed is a decoded, resolved, keyed request ready to evaluate.
type parsed struct {
	req     *MapRequest
	kernel  *repro.Kernel
	machine *repro.Machine
	scheme  repro.Scheme
	cfg     repro.Config
	key     string
	adhoc   bool
	timeout time.Duration
}

// serveMap is the evaluation pipeline shared by /v1/map (envelope
// response) and /v1/record (sealed checkpoint-record response, the fabric
// offload form).
func (s *Server) serveMap(w http.ResponseWriter, r *http.Request, record bool) {
	s.stats.requests.Add(1)
	if r.Method != http.MethodPost {
		status, env := errorEnvelope(StageMethod, fmt.Sprintf("%s requires POST", r.URL.Path), 0)
		writeEnvelope(w, status, env)
		return
	}
	if s.draining.Load() {
		status, env := errorEnvelope(StageDraining, "server is draining", 1000)
		writeEnvelope(w, status, env)
		return
	}
	p, stage, perr := s.parseRequest(w, r)
	if perr != nil {
		status, env := errorEnvelope(stage, perr.Error(), 0)
		writeEnvelope(w, status, env)
		return
	}

	// Cache first: hits serve even above the shed watermark.
	if rec, ok := s.lru.Get(p.key); ok {
		s.stats.lruHits.Add(1)
		s.respond(w, p, rec, nil, "lru", record)
		return
	}

	f, leader := s.flights.Join(p.key)
	// Exactly one Leave per Join: on client disconnect (AfterFunc fires)
	// or on handler exit (stop() wins).
	stop := context.AfterFunc(r.Context(), f.Leave)
	defer func() {
		if stop() {
			f.Leave()
		}
	}()

	if !leader {
		s.stats.coalesced.Add(1)
		rec, ce, werr := f.Wait(r.Context())
		if werr != nil {
			// The client vanished (or its deadline passed) while waiting;
			// mostly unobservable, but answer in case it is still there.
			status, env := errorEnvelope("canceled", "request canceled while coalesced: "+werr.Error(), 0)
			writeEnvelope(w, status, env)
			return
		}
		s.respond(w, p, rec, ce, "coalesced", record)
		return
	}

	// Leader: whatever happens below, the flight must resolve — a leader
	// that panicked out of the pipeline resolves as a contained panic so
	// followers never hang (Resolve is idempotent; the normal paths win).
	defer f.Resolve(nil, &experiments.CellError{
		Key: p.key, Stage: "panic",
		Err: errors.New("evaluation abandoned by a panicking handler"), Attempts: 1,
	})

	rec, ce, source := s.admitAndEvaluate(r, f, p)
	f.Resolve(rec, ce)
	s.respond(w, p, rec, ce, source, record)
}

// admitAndEvaluate runs the leader's half: admission (queue bound,
// watermark shed, class slot), then evaluation under the flight-scoped
// deadline, then cache/checkpoint fill.
func (s *Server) admitAndEvaluate(r *http.Request, f *experiments.Flight, p *parsed) (*experiments.CheckpointRecord, *experiments.CellError, string) {
	select {
	case s.queue <- struct{}{}:
	default:
		s.stats.queueFull.Add(1)
		return nil, shedError(p.key, StageQueueFull, "admission queue full", 2000), StageQueueFull
	}
	defer func() { <-s.queue }()

	if occ := len(s.queue); occ > s.shedMark {
		s.stats.shed.Add(1)
		return nil, shedError(p.key, StageShed,
			fmt.Sprintf("load shedding cold requests (queue %d/%d over watermark %d); cached results still serve", occ, s.opts.Queue, s.shedMark), 1000), StageShed
	}

	// The evaluation context: canceled when every interested client has
	// disconnected (flight waiter count), when the budget expires, or
	// when a drain passes its deadline — never merely because the leader
	// request ended.
	evalCtx, cancel := context.WithTimeout(s.evalBase, p.timeout)
	defer cancel()
	f.SetCancel(cancel)

	slots := s.slots
	if p.adhoc {
		slots = s.adhocSlots
	}
	select {
	case slots <- struct{}{}:
	case <-evalCtx.Done():
		return nil, experiments.NewCellError(p.key, 1, fmt.Errorf("waiting for a worker slot: %w", evalCtx.Err())), "admission"
	}
	defer func() { <-slots }()

	rec, ce, source := s.evaluate(evalCtx, p)
	if rec != nil {
		s.lru.Add(p.key, rec)
		if s.ckpt != nil {
			s.ckpt.Append(rec)
		}
	}
	return rec, ce, source
}

// evaluate computes one cell: offloaded to the fabric when the breaker
// allows, locally otherwise (and as fallback when offload fails at the
// transport level).
func (s *Server) evaluate(ctx context.Context, p *parsed) (*experiments.CheckpointRecord, *experiments.CellError, string) {
	if s.offload != nil {
		if rec, ce, ok := s.offload.try(ctx, p); ok {
			s.stats.fabric.Add(1)
			return rec, ce, "fabric"
		}
	}
	run, err := repro.EvaluateContext(ctx, p.kernel, p.machine, p.scheme, p.cfg)
	if err != nil {
		s.stats.cellFails.Add(1)
		return nil, experiments.NewCellError(p.key, 1, err), "computed"
	}
	s.stats.computed.Add(1)
	rec := experiments.RecordForRun(p.key, run)
	if serr := rec.Seal(); serr != nil {
		s.stats.cellFails.Add(1)
		return nil, experiments.NewCellError(p.key, 1, serr), "computed"
	}
	return rec, nil, "computed"
}

// shedError is the CellError form of an admission rejection, so coalesced
// followers of a shed leader see the same retryable answer.
func shedError(key, stage, msg string, retryAfterMS int64) *experiments.CellError {
	return &experiments.CellError{Key: key, Stage: stage,
		Err: fmt.Errorf("%s (retry after %dms)", msg, retryAfterMS), Attempts: 1}
}

// respond renders the pipeline outcome for one client.
func (s *Server) respond(w http.ResponseWriter, p *parsed, rec *experiments.CheckpointRecord, ce *experiments.CellError, source string, record bool) {
	switch {
	case rec != nil && record:
		w.Header().Set("Content-Type", "application/json")
		data, err := json.Marshal(rec)
		if err != nil {
			status, env := errorEnvelope("evaluate", "encoding record: "+err.Error(), 0)
			writeEnvelope(w, status, env)
			return
		}
		_, _ = w.Write(data)
	case rec != nil:
		res := resultFromRecord(rec, p.kernel.Name, p.machine.Name, p.req.Scheme, source)
		w.Header().Set("Content-Type", "application/json")
		data, err := json.Marshal(&Envelope{OK: true, Result: res})
		if err != nil {
			status, env := errorEnvelope("evaluate", "encoding result: "+err.Error(), 0)
			writeEnvelope(w, status, env)
			return
		}
		_, _ = w.Write(data)
	case ce != nil:
		var retryAfter int64
		if ce.Stage == StageShed || ce.Stage == StageQueueFull {
			retryAfter = 1000
		}
		status, env := errorEnvelope(ce.Stage, ce.Error(), retryAfter)
		writeEnvelope(w, status, env)
	default:
		// A skipped flight (leader resolved with neither) cannot happen;
		// degrade to a structured 500 rather than an empty body.
		status, env := errorEnvelope("evaluate", "evaluation produced no result", 0)
		writeEnvelope(w, status, env)
	}
}

// parseRequest reads the bounded body under the slow-loris deadline,
// decodes it, resolves kernel/machine/scheme, and builds the cell key.
// On failure the returned stage selects the envelope.
func (s *Server) parseRequest(w http.ResponseWriter, r *http.Request) (*parsed, string, error) {
	rc := http.NewResponseController(w)
	// Bound body arrival; ignore the error (some wrapped test writers
	// cannot set deadlines — then ReadTimeout still bounds us).
	_ = rc.SetReadDeadline(time.Now().Add(s.opts.BodyTimeout))
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.BodyLimit))
	_ = rc.SetReadDeadline(time.Time{})
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, StageBodySize, fmt.Errorf("request body over %d bytes", s.opts.BodyLimit)
		}
		if errors.Is(err, os.ErrDeadlineExceeded) {
			return nil, StageBodySlow, fmt.Errorf("request body did not arrive within %v", s.opts.BodyTimeout)
		}
		return nil, StageDecode, fmt.Errorf("reading request body: %w", err)
	}
	req := &MapRequest{}
	if err := json.Unmarshal(body, req); err != nil {
		return nil, StageDecode, fmt.Errorf("decoding request: %w", err)
	}

	p := &parsed{req: req}
	if err := s.resolve(p); err != nil {
		return nil, "validate", err
	}
	p.timeout = s.requestTimeout(r)
	return p, "", nil
}

// resolve fills the kernel, machine, scheme, config and cell key from the
// wire request. Every rejection here is stage "validate" (400).
func (s *Server) resolve(p *parsed) error {
	req := p.req
	var err error
	var srcDigest string
	switch {
	case req.Kernel != "" && req.KernelSource != "":
		return errors.New("request sets both kernel and kernel_source; pick one")
	case req.Kernel != "":
		if p.kernel, err = repro.KernelByName(req.Kernel); err != nil {
			return err
		}
	case req.KernelSource != "":
		p.adhoc = true
		name := req.KernelName
		if name == "" {
			name = "adhoc"
		}
		if p.kernel, err = repro.CompileKernel(name, req.KernelSource); err != nil {
			return fmt.Errorf("compiling kernel_source: %w", err)
		}
		srcDigest = digest(req.KernelSource)
	default:
		return errors.New("request needs kernel or kernel_source")
	}

	var machDigest string
	switch {
	case req.Machine != "" && len(req.MachineJSON) > 0:
		return errors.New("request sets both machine and machine_json; pick one")
	case req.Machine != "":
		if p.machine, err = repro.MachineByName(req.Machine); err != nil {
			return err
		}
	case len(req.MachineJSON) > 0:
		p.adhoc = true
		if p.machine, err = repro.LoadMachine(req.MachineJSON); err != nil {
			return err
		}
		if n := p.machine.NumCores(); n > maxUploadCores {
			return fmt.Errorf("machine_json has %d cores, over the %d-core limit", n, maxUploadCores)
		}
		machDigest = digest(string(req.MachineJSON))
	default:
		return errors.New("request needs machine or machine_json")
	}

	if req.Scheme == "" {
		req.Scheme = "combined"
	}
	if p.scheme, err = parseScheme(req.Scheme); err != nil {
		return err
	}

	cfg := repro.DefaultConfig()
	if req.BlockBytes != 0 {
		cfg.BlockBytes = req.BlockBytes
	}
	if req.Passes > maxUploadPasses {
		return fmt.Errorf("passes %d over the limit %d", req.Passes, maxUploadPasses)
	}
	cfg.Passes = req.Passes
	cfg.MaxSimCycles = s.opts.MaxCycles
	if req.MaxCycles != 0 {
		cfg.MaxSimCycles = req.MaxCycles
		if s.opts.MaxCycles != 0 && req.MaxCycles > s.opts.MaxCycles {
			cfg.MaxSimCycles = s.opts.MaxCycles
		}
	}
	if req.Check != "" {
		if cfg.Check, err = repro.ParseCheckMode(req.Check); err != nil {
			return err
		}
	}
	cfg.SimWorkers = s.opts.SimWorkers
	p.cfg = cfg

	key := experiments.Cell{Kernel: p.kernel, Machine: p.machine, Scheme: p.scheme, Config: cfg}.Key()
	// Ad-hoc inputs key by content digest too: two uploads sharing a name
	// must never collide in the cache.
	if srcDigest != "" {
		key += "|src=" + srcDigest
	}
	if machDigest != "" {
		key += "|machjson=" + machDigest
	}
	p.key = key
	return nil
}

// Upload guards: structural caps on ad-hoc inputs (the body limit bounds
// raw bytes; these bound what the bytes expand into).
const (
	maxUploadCores  = 4096
	maxUploadPasses = 64
)

// digest hashes ad-hoc request content into a short stable token.
func digest(s string) string {
	h := fnv.New64a()
	h.Write([]byte(s)) //lint:ignore cellboundary hash.Hash.Write never returns an error (hash package contract)
	return fmt.Sprintf("%016x", h.Sum64())
}

// requestTimeout resolves the evaluation budget: the Request-Timeout
// header (a Go duration like "2s", or whole seconds) clamped to
// MaxTimeout; DefaultTimeout without one.
func (s *Server) requestTimeout(r *http.Request) time.Duration {
	h := r.Header.Get("Request-Timeout")
	if h == "" {
		return s.opts.DefaultTimeout
	}
	d, err := time.ParseDuration(h)
	if err != nil {
		if secs, serr := strconv.Atoi(h); serr == nil {
			d = time.Duration(secs) * time.Second
		} else {
			return s.opts.DefaultTimeout
		}
	}
	if d <= 0 {
		return s.opts.DefaultTimeout
	}
	if d > s.opts.MaxTimeout {
		d = s.opts.MaxTimeout
	}
	return d
}

// parseScheme maps the wire scheme names (the same vocabulary the CLIs
// use) to repro schemes.
func parseScheme(s string) (repro.Scheme, error) {
	switch s {
	case "base":
		return repro.SchemeBase, nil
	case "base+", "baseplus":
		return repro.SchemeBasePlus, nil
	case "local":
		return repro.SchemeLocal, nil
	case "topology", "topologyaware", "ta":
		return repro.SchemeTopologyAware, nil
	case "combined":
		return repro.SchemeCombined, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q", s)
	}
}

// serveHealthz answers 200 while the process lives — liveness, nothing
// more.
func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	_, _ = io.WriteString(w, "ok\n")
}

// serveReadyz answers 200 while accepting work and 503 once draining, so
// load balancers stop routing before the listener closes.
func (s *Server) serveReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, "draining\n")
		return
	}
	_, _ = io.WriteString(w, "ready\n")
}

// Status is the /statusz payload: counters plus the degradation state.
type Status struct {
	Requests  uint64 `json:"requests"`
	LRUHits   uint64 `json:"lru_hits"`
	Coalesced uint64 `json:"coalesced"`
	Computed  uint64 `json:"computed"`
	Fabric    uint64 `json:"fabric"`
	CellFails uint64 `json:"cell_fails"`
	Shed      uint64 `json:"shed"`
	QueueFull uint64 `json:"queue_full"`
	Panics    uint64 `json:"panics"`

	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	ShedMark   int    `json:"shed_mark"`
	Inflight   int    `json:"inflight"`
	LRULen     int    `json:"lru_len"`
	LRUCap     int    `json:"lru_cap"`
	Breaker    string `json:"breaker,omitempty"`
	Draining   bool   `json:"draining"`
}

// CurrentStatus snapshots the server's counters (also used by tests and
// the chaos harness to assert bounded state).
func (s *Server) CurrentStatus() Status {
	st := Status{
		Requests:   s.stats.requests.Load(),
		LRUHits:    s.stats.lruHits.Load(),
		Coalesced:  s.stats.coalesced.Load(),
		Computed:   s.stats.computed.Load(),
		Fabric:     s.stats.fabric.Load(),
		CellFails:  s.stats.cellFails.Load(),
		Shed:       s.stats.shed.Load(),
		QueueFull:  s.stats.queueFull.Load(),
		Panics:     s.stats.panics.Load(),
		QueueDepth: len(s.queue),
		QueueCap:   s.opts.Queue,
		ShedMark:   s.shedMark,
		Inflight:   s.flights.Inflight(),
		LRULen:     s.lru.Len(),
		LRUCap:     s.lru.Cap(),
		Draining:   s.draining.Load(),
	}
	if s.offload != nil {
		st.Breaker = s.offload.breaker.State()
	}
	return st
}

func (s *Server) serveStatusz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	st := s.CurrentStatus()
	data, err := json.Marshal(&st)
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	_, _ = w.Write(data)
}
