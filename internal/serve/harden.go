package serve

import (
	"context"
	"net/http"
	"time"
)

// Hardening defaults. A zero field on the incoming server gets the
// default; an explicit setting is respected.
const (
	// DefaultReadHeaderTimeout bounds how long a connection may dribble
	// its request line + headers (slow-loris at the header layer).
	DefaultReadHeaderTimeout = 5 * time.Second
	// DefaultReadTimeout bounds the whole request read, body included.
	DefaultReadTimeout = 60 * time.Second
	// DefaultIdleTimeout reaps keep-alive connections between requests.
	DefaultIdleTimeout = 2 * time.Minute
	// DefaultMaxHeaderBytes caps header memory per connection.
	DefaultMaxHeaderBytes = 1 << 20
)

// Harden applies defensive defaults to an http.Server so an idle, slow or
// malicious client cannot pin one of its connections forever: header and
// read timeouts, keep-alive reaping, bounded header memory. WriteTimeout
// is deliberately left alone — a legitimate cold evaluation can take
// longer than any sane write timeout, and response writing is bounded by
// the per-request evaluation deadline instead. Shared by topomapd and the
// fabric coordinator. Returns srv for chaining.
func Harden(srv *http.Server) *http.Server {
	if srv.ReadHeaderTimeout == 0 {
		srv.ReadHeaderTimeout = DefaultReadHeaderTimeout
	}
	if srv.ReadTimeout == 0 {
		srv.ReadTimeout = DefaultReadTimeout
	}
	if srv.IdleTimeout == 0 {
		srv.IdleTimeout = DefaultIdleTimeout
	}
	if srv.MaxHeaderBytes == 0 {
		srv.MaxHeaderBytes = DefaultMaxHeaderBytes
	}
	return srv
}

// Shutdown drains srv gracefully under ctx's deadline — stop accepting,
// finish in-flight requests — and force-closes whatever remains when the
// deadline expires. The returned error is nil on a clean drain and ctx's
// error when the force-close path fired.
func Shutdown(ctx context.Context, srv *http.Server) error {
	err := srv.Shutdown(ctx)
	if err != nil {
		_ = srv.Close() // deadline passed: cut the stragglers
	}
	return err
}
