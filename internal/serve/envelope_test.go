package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// stageGolden pins the deliberate HTTP mapping of every failure stage.
// This is the exhaustiveness gate the error contract hangs on: a stage
// added to experiments.KnownStages or ServerStages without a row here —
// and a decision in StatusForStage — fails this test, so no failure class
// can ever reach the wire with an accidental status.
var stageGolden = map[string]struct {
	status    int
	retryable bool
}{
	// Cell stages (experiments.KnownStages).
	"validate":     {http.StatusBadRequest, false},
	"map":          {http.StatusUnprocessableEntity, false},
	"trace":        {http.StatusUnprocessableEntity, false},
	"simulate":     {http.StatusUnprocessableEntity, false},
	"evaluate":     {http.StatusUnprocessableEntity, false},
	"cycle-budget": {http.StatusUnprocessableEntity, false},
	"oracle":       {http.StatusInternalServerError, false},
	"invariant":    {http.StatusInternalServerError, false},
	"diverged":     {http.StatusInternalServerError, false},
	"panic":        {http.StatusInternalServerError, false},
	"fabric":       {http.StatusBadGateway, true},
	"timeout":      {http.StatusGatewayTimeout, true},
	"canceled":     {499, true},

	// Server-level stages (ServerStages).
	StageMethod:    {http.StatusMethodNotAllowed, false},
	StageDecode:    {http.StatusBadRequest, false},
	StageBodySlow:  {http.StatusRequestTimeout, true},
	StageBodySize:  {http.StatusRequestEntityTooLarge, false},
	StageQueueFull: {http.StatusTooManyRequests, true},
	StageShed:      {http.StatusTooManyRequests, true},
	StageDraining:  {http.StatusServiceUnavailable, true},
	StagePanic:     {http.StatusServiceUnavailable, true},
}

// TestStatusForStageExhaustive walks every known stage — cell-level and
// server-level — and checks it against the golden table in both
// directions: every stage has a deliberate mapping, and the golden table
// carries no stale rows for stages that no longer exist.
func TestStatusForStageExhaustive(t *testing.T) {
	stages := append(experiments.KnownStages(), ServerStages()...)
	seen := make(map[string]bool, len(stages))
	for _, stage := range stages {
		seen[stage] = true
		want, ok := stageGolden[stage]
		if !ok {
			t.Errorf("stage %q has no golden row: a new stage needs a deliberate HTTP mapping here and in StatusForStage", stage)
			continue
		}
		status, retryable := StatusForStage(stage)
		if status != want.status || retryable != want.retryable {
			t.Errorf("StatusForStage(%q) = (%d, %v), golden says (%d, %v)", stage, status, retryable, want.status, want.retryable)
		}
	}
	for stage := range stageGolden {
		if !seen[stage] {
			t.Errorf("golden table row %q matches no known stage: stale row, or the stage lost its KnownStages/ServerStages entry", stage)
		}
	}
}

// TestStatusForStageUnknown: an unmapped stage reports (0, false) so
// callers can detect it, and errorEnvelope degrades it to a structured 500
// rather than letting it escape the envelope.
func TestStatusForStageUnknown(t *testing.T) {
	if status, retryable := StatusForStage("no-such-stage"); status != 0 || retryable {
		t.Fatalf("StatusForStage(unknown) = (%d, %v), want (0, false)", status, retryable)
	}
	status, env := errorEnvelope("no-such-stage", "boom", 0)
	if status != http.StatusInternalServerError {
		t.Fatalf("unknown stage degraded to %d, want 500", status)
	}
	if env.OK || env.Error == nil || env.Error.Stage != "no-such-stage" {
		t.Fatalf("unknown-stage envelope malformed: %+v", env)
	}
}

// TestWriteEnvelopeRetryAfter: retryable envelopes carry a Retry-After
// header in whole seconds, rounded up and never below 1; non-retryable
// envelopes carry none.
func TestWriteEnvelopeRetryAfter(t *testing.T) {
	cases := []struct {
		stage string
		ms    int64
		want  string // "" = header absent
	}{
		{StageShed, 1500, "2"},
		{StageQueueFull, 0, "1"},
		{StageDraining, 1000, "1"},
		{"validate", 5000, ""},
	}
	for _, c := range cases {
		rr := httptest.NewRecorder()
		status, env := errorEnvelope(c.stage, "x", c.ms)
		writeEnvelope(rr, status, env)
		if got := rr.Header().Get("Retry-After"); got != c.want {
			t.Errorf("stage %s retry_after_ms=%d: Retry-After = %q, want %q", c.stage, c.ms, got, c.want)
		}
		if rr.Code != status {
			t.Errorf("stage %s: wrote status %d, want %d", c.stage, rr.Code, status)
		}
		round := &Envelope{}
		if err := json.Unmarshal(rr.Body.Bytes(), round); err != nil {
			t.Errorf("stage %s: body is not an envelope: %v", c.stage, err)
		} else if round.Error == nil || round.Error.Status != status {
			t.Errorf("stage %s: envelope does not echo its status: %+v", c.stage, round.Error)
		}
	}
}

// TestCellEnvelopeOmitsStack: the wire rendering of a cell failure carries
// the error text, never the captured stack (stacks are for server logs and
// replay bundles).
func TestCellEnvelopeOmitsStack(t *testing.T) {
	ce := experiments.NewCellError("k", 1, errors.New("kaboom"))
	ce.Stack = []byte("goroutine 1 [running]: secret frames")
	status, env := cellEnvelope(ce)
	if status == 0 || env.Error == nil {
		t.Fatalf("cellEnvelope = (%d, %+v)", status, env)
	}
	data, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "secret frames") {
		t.Fatal("cell envelope leaked the stack onto the wire")
	}
}
