package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/experiments"
)

// offloader posts cold evaluations to another topomapd (or any server
// speaking the /v1/record protocol: a normalized MapRequest in, a sealed
// CheckpointRecord — or an error envelope — out) behind a circuit
// breaker. Transport trouble, overload answers and malformed or
// corrupted records count as breaker failures and the caller falls back
// to local evaluation; a structured cell failure is an authoritative
// answer and returns as such.
type offloader struct {
	url     string
	client  *http.Client
	breaker *Breaker
}

// offloadTimeout bounds one offload round-trip regardless of the
// request's own (possibly much longer) budget, so a black-holed fabric
// costs bounded time before the local fallback.
const offloadTimeout = 30 * time.Second

func newOffloader(url string) *offloader {
	return &offloader{
		url:     url,
		client:  &http.Client{Timeout: offloadTimeout},
		breaker: NewBreaker(3, 5*time.Second),
	}
}

// try attempts one offloaded evaluation. ok=false means "no answer — run
// it locally" (breaker open, transport failure, remote shed or brown-out);
// ok=true carries either the remote's record or its authoritative cell
// failure.
func (o *offloader) try(ctx context.Context, p *parsed) (*experiments.CheckpointRecord, *experiments.CellError, bool) {
	if !o.breaker.Allow() {
		return nil, nil, false
	}
	rec, ce, err := o.roundTrip(ctx, p)
	if err != nil {
		o.breaker.Failure()
		return nil, nil, false
	}
	o.breaker.Success()
	return rec, ce, true
}

// roundTrip does one POST /v1/record exchange. The error return means the
// fabric gave no usable answer (trip the breaker); a non-nil *CellError
// with nil error is the remote's authoritative failure for this cell.
func (o *offloader) roundTrip(ctx context.Context, p *parsed) (*experiments.CheckpointRecord, *experiments.CellError, error) {
	body, err := json.Marshal(p.req)
	if err != nil {
		return nil, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, o.url+"/v1/record", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := o.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, nil, err
	}

	// Error envelopes: overload/drain answers are "no answer, back off";
	// cell-stage failures are authoritative.
	env := &Envelope{}
	if jerr := json.Unmarshal(data, env); jerr == nil && !env.OK && env.Error != nil {
		switch env.Error.Stage {
		case StageQueueFull, StageShed, StageDraining, StagePanic:
			return nil, nil, fmt.Errorf("fabric overloaded: %s", env.Error.Stage)
		}
		return nil, &experiments.CellError{
			Key: p.key, Stage: env.Error.Stage,
			Err: fmt.Errorf("fabric: %s", env.Error.Message), Attempts: 1,
		}, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("fabric: status %d with no envelope", resp.StatusCode)
	}

	rec := &experiments.CheckpointRecord{}
	if err := json.Unmarshal(data, rec); err != nil || rec.Key == "" || rec.Sim == nil {
		return nil, nil, fmt.Errorf("fabric: malformed record")
	}
	// The seal is mandatory over the wire: a browned-out coordinator must
	// not be able to hand back a silently corrupted result.
	if rec.Sum == "" {
		return nil, nil, fmt.Errorf("fabric: unsealed record")
	}
	if err := rec.Verify(); err != nil {
		return nil, nil, err
	}
	if rec.Key != p.key {
		return nil, nil, fmt.Errorf("fabric: record for key %q, asked for %q", rec.Key, p.key)
	}
	return rec, nil, nil
}
