// Package serve is the mapping-as-a-service front end: a hardened
// HTTP/JSON server (cmd/topomapd) that accepts a kernel — by registry name
// or as polyhedral source — plus a machine description and returns the
// computed mapping summary and predicted miss profile.
//
// A single request costs anywhere from microseconds (cache hit) to seconds
// (a cold weak-locality cell), so robustness under load is the package's
// whole design, layered front to back:
//
//   - Admission control: cold evaluations pass through a bounded queue
//     with per-class concurrency caps (ad-hoc uploads are capped below
//     registry requests so unbounded-universe traffic cannot starve the
//     bounded one). A full queue answers 429 + Retry-After; above the
//     shed watermark, cold non-cached requests are rejected first while
//     LRU hits keep being served.
//   - Budgets: every evaluation runs under a deadline (server default,
//     tightened by a Request-Timeout header) and the cycle budget riding
//     repro.EvaluateContext + cachesim.Limits. Failures surface as
//     structured JSON envelopes mapped from CellError stages
//     (StatusForStage) — never a 500 with a stack.
//   - Coalescing + bounded memory: concurrent requests for the same cell
//     key share one evaluation (experiments.FlightGroup) whose context is
//     canceled when the last interested client disconnects, and results
//     live in a bounded LRU (experiments.ResultLRU), optionally warmed
//     from and persisted to a lockfile-guarded checkpoint.
//   - Lifecycle: /healthz + /readyz + /statusz, graceful drain on context
//     cancellation (stop accepting, finish in-flight under the drain
//     deadline, then cancel evaluations), per-request panic-to-503
//     containment, and a circuit breaker in front of optional fabric
//     offload that falls back to local evaluation during brown-outs.
//
// The chaos/soak harness in serve/chaostest drives all of this with
// seeded client faults (internal/chaos) and asserts the invariants: only
// well-formed envelopes, zero goroutine leaks, bounded memory, retryable
// sheds.
package serve
