package serve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestHardenFillsDefaults: zero fields get the defensive defaults,
// explicit settings are respected, WriteTimeout is left alone.
func TestHardenFillsDefaults(t *testing.T) {
	srv := Harden(&http.Server{})
	if srv.ReadHeaderTimeout != DefaultReadHeaderTimeout {
		t.Errorf("ReadHeaderTimeout = %v, want %v", srv.ReadHeaderTimeout, DefaultReadHeaderTimeout)
	}
	if srv.ReadTimeout != DefaultReadTimeout {
		t.Errorf("ReadTimeout = %v, want %v", srv.ReadTimeout, DefaultReadTimeout)
	}
	if srv.IdleTimeout != DefaultIdleTimeout {
		t.Errorf("IdleTimeout = %v, want %v", srv.IdleTimeout, DefaultIdleTimeout)
	}
	if srv.MaxHeaderBytes != DefaultMaxHeaderBytes {
		t.Errorf("MaxHeaderBytes = %d, want %d", srv.MaxHeaderBytes, DefaultMaxHeaderBytes)
	}
	if srv.WriteTimeout != 0 {
		t.Errorf("WriteTimeout = %v, want untouched 0 (long evaluations write late)", srv.WriteTimeout)
	}

	explicit := Harden(&http.Server{ReadHeaderTimeout: time.Second})
	if explicit.ReadHeaderTimeout != time.Second {
		t.Errorf("explicit ReadHeaderTimeout overridden to %v", explicit.ReadHeaderTimeout)
	}
}

// TestHardenDropsSlowHeaderClient: a client that dribbles its request
// headers slower than ReadHeaderTimeout gets its connection cut instead of
// pinning the server, while a well-behaved request on the same server
// keeps working. This is satellite coverage for the coordinator adopting
// Harden: before it, a slow-loris client held a coordinator connection
// forever.
func TestHardenDropsSlowHeaderClient(t *testing.T) {
	srv := Harden(&http.Server{
		ReadHeaderTimeout: 150 * time.Millisecond,
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		}),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close() }()

	// Slow loris: open, send half a request line, then stall.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "POST /v1/map HT"); err != nil {
		t.Fatal(err)
	}
	// The server must cut the connection promptly: a bare close or a
	// courtesy error reply (net/http answers 408 or 400 when the deadline
	// tears the request line) — never a success and never an indefinite
	// stall.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	reply, err := io.ReadAll(conn)
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server did not drop the slow-loris connection within 5s (ReadHeaderTimeout 150ms)")
	}
	if strings.HasPrefix(string(reply), "HTTP/1.1 2") {
		t.Fatalf("server answered a half-sent request line with success: %.80q", reply)
	}
	// The slow client was dropped. A healthy request must still be served.
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatalf("healthy request after the slow-loris drop: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy request answered %d", resp.StatusCode)
	}
}

// TestShutdownForceClosesStragglers: a handler that outlives the drain
// deadline is cut by the force-close path, and Shutdown reports the
// deadline error instead of hanging.
func TestShutdownForceClosesStragglers(t *testing.T) {
	release := make(chan struct{})
	srv := Harden(&http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			<-release // straggler: never finishes on its own
		}),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer close(release)

	// Park one in-flight request.
	errc := make(chan error, 1)
	go func() {
		c := &http.Client{Timeout: 10 * time.Second}
		_, err := c.Get("http://" + ln.Addr().String() + "/")
		errc <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the request reach the handler

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := Shutdown(ctx, srv); err == nil {
		t.Fatal("Shutdown reported a clean drain with a straggler in flight")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Shutdown took %v, force-close did not fire", elapsed)
	}
	select {
	case <-errc:
		// The parked client saw its connection cut (an error) or an empty
		// response; either way it was released.
	case <-time.After(5 * time.Second):
		t.Fatal("parked client still blocked after force-close")
	}
}
