package serve

import (
	"encoding/json"
	"net/http"
	"strconv"

	"repro/internal/experiments"
)

// MapRequest is the wire form of one mapping request. Exactly one of
// Kernel (registry name) or KernelSource (polyhedral source text) selects
// the kernel, and exactly one of Machine (registry name) or MachineJSON
// (a topology description in the machine JSON format) selects the machine.
type MapRequest struct {
	Kernel       string `json:"kernel,omitempty"`
	KernelSource string `json:"kernel_source,omitempty"`
	// KernelName names an ad-hoc KernelSource (default "adhoc"); the cell
	// key still includes a content digest, so distinct sources never
	// collide in the result cache.
	KernelName  string          `json:"kernel_name,omitempty"`
	Machine     string          `json:"machine,omitempty"`
	MachineJSON json.RawMessage `json:"machine_json,omitempty"`
	// Scheme is the paper scheme to map with: base, base+, local,
	// topology, combined (the default).
	Scheme string `json:"scheme,omitempty"`
	// BlockBytes overrides the decomposition block size (0 = paper
	// default).
	BlockBytes int64 `json:"block_bytes,omitempty"`
	// Passes repeats the loop nest with warm caches (0 or 1 = single).
	Passes int `json:"passes,omitempty"`
	// MaxCycles caps the simulated cycle budget (0 = server default).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// Check selects the self-checking level: off, invariants, sampled,
	// full ("" = off).
	Check string `json:"check,omitempty"`
}

// MapResult is the successful payload: the mapping summary plus the
// predicted miss profile, with Source naming where the answer came from.
type MapResult struct {
	Key         string             `json:"key"`
	Kernel      string             `json:"kernel"`
	Machine     string             `json:"machine"`
	Scheme      string             `json:"scheme"`
	Groups      int                `json:"groups,omitempty"`
	HasDeps     bool               `json:"has_deps,omitempty"`
	MapTimeNS   int64              `json:"map_time_ns,omitempty"`
	TotalCycles uint64             `json:"total_cycles"`
	Accesses    uint64             `json:"accesses"`
	MemAccesses uint64             `json:"mem_accesses"`
	MissRates   map[string]float64 `json:"miss_rates"`
	// Source is "computed", "fabric", "lru" (cache hit) or "coalesced"
	// (shared a concurrent evaluation).
	Source string `json:"source"`
}

// ErrorBody is the structured failure payload. Stage is a CellError stage
// (experiments.KnownStages) or one of the server-level stages
// (ServerStages); Status repeats the HTTP status so the body is
// self-describing when it outlives the transport.
type ErrorBody struct {
	Stage        string `json:"stage"`
	Status       int    `json:"status"`
	Message      string `json:"message"`
	Retryable    bool   `json:"retryable"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// Envelope is the uniform response body: every topomapd response — success,
// cell failure, shed, drain, even a contained handler panic — decodes into
// it, which is what lets the chaos harness assert "only well-formed
// envelopes" as an invariant.
type Envelope struct {
	OK     bool       `json:"ok"`
	Result *MapResult `json:"result,omitempty"`
	Error  *ErrorBody `json:"error,omitempty"`
}

// Server-level stages: failures that happen before (or instead of) a cell
// evaluation, so they are serve's vocabulary rather than CellError's.
const (
	// StageMethod rejects a non-POST on an evaluation endpoint.
	StageMethod = "method"
	// StageDecode rejects an unreadable or non-JSON request body.
	StageDecode = "decode"
	// StageBodySlow rejects a body that did not arrive within the body
	// read deadline (slow-loris).
	StageBodySlow = "body-slow"
	// StageBodySize rejects a body over the size limit.
	StageBodySize = "body-size"
	// StageQueueFull sheds a cold request because the admission queue is
	// at capacity.
	StageQueueFull = "queue-full"
	// StageShed sheds a cold request because queue occupancy crossed the
	// shed watermark (cached results keep being served).
	StageShed = "shed"
	// StageDraining rejects a request arriving while the server drains.
	StageDraining = "draining"
	// StagePanic reports a handler panic contained to this request.
	StagePanic = "handler-panic"
)

// ServerStages enumerates every server-level stage, for the same
// exhaustiveness tests KnownStages supports.
func ServerStages() []string {
	return []string{
		StageMethod, StageDecode, StageBodySlow, StageBodySize,
		StageQueueFull, StageShed, StageDraining, StagePanic,
	}
}

// StatusForStage maps a failure stage — CellError or server-level — to its
// deliberate HTTP status and whether a client retry can succeed. Unknown
// stages return (0, false): the exhaustive table test walks
// experiments.KnownStages() and ServerStages() so adding a stage anywhere
// without deciding its mapping fails the build's tests, and the serving
// path treats 0 as 500 so an unmapped stage still cannot escape the
// envelope.
func StatusForStage(stage string) (status int, retryable bool) {
	switch stage {
	// Cell stages (experiments.KnownStages).
	case "validate":
		// The request described an impossible experiment.
		return http.StatusBadRequest, false
	case "map", "trace", "simulate", "evaluate":
		// The pipeline rejected a well-formed but unprocessable cell.
		return http.StatusUnprocessableEntity, false
	case "cycle-budget":
		// The cell exceeded its simulated-cycle budget; a retry with the
		// same budget fails identically.
		return http.StatusUnprocessableEntity, false
	case "oracle", "invariant", "diverged":
		// Self-checking caught the server lying; the result cannot be
		// trusted and the failure is ours, not the client's.
		return http.StatusInternalServerError, false
	case "panic", StagePanic:
		return statusPanic(stage)
	case "fabric":
		// The offload fabric failed; the coordinator may recover.
		return http.StatusBadGateway, true
	case "timeout":
		// The wall-clock budget expired; a retry under lighter load (or a
		// longer Request-Timeout) can succeed.
		return http.StatusGatewayTimeout, true
	case "canceled":
		// The client went away; 499 is the de-facto "client closed
		// request" status. Mostly unobservable (nobody is listening) but
		// coalesced followers can see a leader-side cancellation.
		return 499, true

	// Server-level stages.
	case StageMethod:
		return http.StatusMethodNotAllowed, false
	case StageDecode:
		return http.StatusBadRequest, false
	case StageBodySlow:
		return http.StatusRequestTimeout, true
	case StageBodySize:
		return http.StatusRequestEntityTooLarge, false
	case StageQueueFull, StageShed:
		return http.StatusTooManyRequests, true
	case StageDraining:
		return http.StatusServiceUnavailable, true
	}
	return 0, false
}

// statusPanic keeps the two panic vocabularies distinct: a contained
// evaluation panic is an internal error in the pipeline (500), a contained
// handler panic means this server instance misbehaved and a retry may land
// on a healthy one (503).
func statusPanic(stage string) (int, bool) {
	if stage == StagePanic {
		return http.StatusServiceUnavailable, true
	}
	return http.StatusInternalServerError, false
}

// errorEnvelope builds the envelope for a failure stage. An unmapped stage
// degrades to 500, never to a missing body.
func errorEnvelope(stage, message string, retryAfterMS int64) (int, *Envelope) {
	status, retryable := StatusForStage(stage)
	if status == 0 {
		status = http.StatusInternalServerError
	}
	return status, &Envelope{OK: false, Error: &ErrorBody{
		Stage:        stage,
		Status:       status,
		Message:      message,
		Retryable:    retryable,
		RetryAfterMS: retryAfterMS,
	}}
}

// cellEnvelope builds the envelope for a structured cell failure. The
// message is the CellError's rendering — key, stage, cause — with the
// stack deliberately omitted: stacks are for server logs and replay
// bundles, not wire responses.
func cellEnvelope(ce *experiments.CellError) (int, *Envelope) {
	return errorEnvelope(ce.Stage, ce.Error(), 0)
}

// writeEnvelope renders an envelope, setting Retry-After (whole seconds,
// rounded up) whenever the error is retryable.
func writeEnvelope(w http.ResponseWriter, status int, env *Envelope) {
	w.Header().Set("Content-Type", "application/json")
	if env.Error != nil && env.Error.Retryable {
		secs := (env.Error.RetryAfterMS + 999) / 1000
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.WriteHeader(status)
	data, err := json.Marshal(env)
	if err != nil {
		// Envelope types marshal by construction; this is unreachable
		// without a programming error, and the status line already went
		// out.
		return
	}
	_, _ = w.Write(data)
}

// resultFromRecord flattens a checkpoint record into the wire result.
func resultFromRecord(rec *experiments.CheckpointRecord, kernel, machine, scheme, source string) *MapResult {
	res := &MapResult{
		Key:       rec.Key,
		Kernel:    kernel,
		Machine:   machine,
		Scheme:    scheme,
		Groups:    rec.Groups,
		HasDeps:   rec.HasDeps,
		MapTimeNS: rec.MapTimeNS,
		Source:    source,
		MissRates: map[string]float64{},
	}
	if rec.Sim != nil {
		res.TotalCycles = rec.Sim.TotalCycles
		res.Accesses = rec.Sim.Accesses
		res.MemAccesses = rec.Sim.MemAccesses
		for level := range rec.Sim.Levels {
			res.MissRates[strconv.Itoa(level)] = rec.Sim.MissRate(level)
		}
	}
	return res
}
