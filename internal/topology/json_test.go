package topology

import (
	"strings"
	"testing"
)

func TestMachineJSONRoundTrip(t *testing.T) {
	for _, m := range All() {
		data, err := MarshalMachine(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		back, err := UnmarshalMachine(data)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if back.Name != m.Name || back.NumCores() != m.NumCores() ||
			back.MemLatency != m.MemLatency || back.MemOccupancy != m.MemOccupancy ||
			back.ClockGHz != m.ClockGHz {
			t.Fatalf("%s: round trip changed header", m.Name)
		}
		if back.MaxLevel() != m.MaxLevel() {
			t.Fatalf("%s: round trip changed depth", m.Name)
		}
		// Structural spot check: per-level cache counts and parameters.
		for l := 1; l <= m.MaxLevel(); l++ {
			a, b := m.CachesAtLevel(l), back.CachesAtLevel(l)
			if len(a) != len(b) {
				t.Fatalf("%s L%d: %d vs %d caches", m.Name, l, len(a), len(b))
			}
			if a[0].SizeBytes != b[0].SizeBytes || a[0].Assoc != b[0].Assoc || a[0].Latency != b[0].Latency {
				t.Fatalf("%s L%d: params changed", m.Name, l)
			}
		}
	}
}

func TestUnmarshalCustomMachine(t *testing.T) {
	src := `{
	  "name": "mini",
	  "clockGHz": 2.0,
	  "memLatency": 150,
	  "memOccupancy": 8,
	  "root": {"children": [
	    {"level": 2, "sizeBytes": 1048576, "assoc": 8, "lineBytes": 64, "latency": 12,
	     "children": [
	       {"level": 1, "sizeBytes": 32768, "assoc": 8, "lineBytes": 64, "latency": 4, "children": [{}]},
	       {"level": 1, "sizeBytes": 32768, "assoc": 8, "lineBytes": 64, "latency": 4, "children": [{}]}
	     ]},
	    {"level": 2, "sizeBytes": 1048576, "assoc": 8, "lineBytes": 64, "latency": 12,
	     "children": [
	       {"level": 1, "sizeBytes": 32768, "assoc": 8, "lineBytes": 64, "latency": 4, "children": [{}]},
	       {"level": 1, "sizeBytes": 32768, "assoc": 8, "lineBytes": 64, "latency": 4, "children": [{}]}
	     ]}
	  ]}
	}`
	m, err := UnmarshalMachine([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCores() != 4 || m.MaxLevel() != 2 {
		t.Fatalf("mini machine: %d cores, depth %d", m.NumCores(), m.MaxLevel())
	}
	if m.SharedLevel(0, 1) != 2 || m.SharedLevel(0, 2) != 0 {
		t.Fatal("mini machine sharing structure wrong")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"garbage", "{", "parsing"},
		{"no name", `{"root": {"children": [{}]}}`, "name"},
		{"core root", `{"name": "x", "root": {}}`, "root cannot be a core"},
		{"interior no level", `{"name": "x", "root": {"children": [{"children": [{}]}]}}`, "without a cache level"},
		{"bad cache", `{"name": "x", "root": {"children": [{"level": 1, "children": [{}]}]}}`, "invalid parameters"},
	}
	for _, c := range cases {
		if _, err := UnmarshalMachine([]byte(c.src)); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.want)
		}
	}
}
