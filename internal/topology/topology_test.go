package topology

import (
	"strings"
	"testing"
)

func TestAllMachinesValid(t *testing.T) {
	for _, m := range All() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestCoreCounts(t *testing.T) {
	cases := []struct {
		m    *Machine
		want int
	}{
		{Harpertown(), 8},
		{Nehalem(), 8},
		{Dunnington(), 12},
		{ArchI(), 16},
		{ArchII(), 32},
	}
	for _, c := range cases {
		if got := c.m.NumCores(); got != c.want {
			t.Errorf("%s: %d cores, want %d", c.m.Name, got, c.want)
		}
	}
}

func TestTable1Parameters(t *testing.T) {
	h := Harpertown()
	if h.MaxLevel() != 2 {
		t.Errorf("Harpertown max level = %d, want 2 (L1+L2 only)", h.MaxLevel())
	}
	l2s := h.CachesAtLevel(2)
	if len(l2s) != 4 {
		t.Fatalf("Harpertown has %d L2s, want 4", len(l2s))
	}
	if l2s[0].SizeBytes != 6<<20 || l2s[0].Assoc != 24 || l2s[0].Latency != 15 {
		t.Errorf("Harpertown L2 = %d bytes %d-way %dcyc", l2s[0].SizeBytes, l2s[0].Assoc, l2s[0].Latency)
	}

	n := Nehalem()
	if n.MaxLevel() != 3 {
		t.Errorf("Nehalem max level = %d, want 3", n.MaxLevel())
	}
	if l2s := n.CachesAtLevel(2); len(l2s) != 8 || l2s[0].SizeBytes != 256<<10 {
		t.Errorf("Nehalem L2s: %d of %d bytes (want 8 private 256KB)", len(l2s), l2s[0].SizeBytes)
	}

	d := Dunnington()
	if l2s := d.CachesAtLevel(2); len(l2s) != 6 || l2s[0].SizeBytes != 3<<20 {
		t.Errorf("Dunnington L2s: %d (want 6 shared 3MB)", len(l2s))
	}
	if l3s := d.CachesAtLevel(3); len(l3s) != 2 || l3s[0].SizeBytes != 12<<20 {
		t.Errorf("Dunnington L3s wrong")
	}
}

func TestSharedLevelDunnington(t *testing.T) {
	d := Dunnington()
	// Figure 1(c): cores 0 and 1 share the first L2.
	if lvl := d.SharedLevel(0, 1); lvl != 2 {
		t.Errorf("cores 0,1 share level %d, want 2", lvl)
	}
	// Cores 0 and 2 only share the socket L3.
	if lvl := d.SharedLevel(0, 2); lvl != 3 {
		t.Errorf("cores 0,2 share level %d, want 3", lvl)
	}
	// Cores 0 and 6 are in different sockets: no shared cache.
	if lvl := d.SharedLevel(0, 6); lvl != 0 {
		t.Errorf("cores 0,6 share level %d, want 0", lvl)
	}
	if lvl := d.SharedLevel(4, 4); lvl != 1 {
		t.Errorf("core with itself shares level %d, want 1", lvl)
	}
}

func TestSharedLevelHarpertown(t *testing.T) {
	h := Harpertown()
	if lvl := h.SharedLevel(0, 1); lvl != 2 {
		t.Errorf("Harpertown cores 0,1 share level %d, want 2", lvl)
	}
	if lvl := h.SharedLevel(0, 2); lvl != 0 {
		t.Errorf("Harpertown cores 0,2 share level %d, want 0 (memory only)", lvl)
	}
}

func TestFirstSharedCaches(t *testing.T) {
	d := Dunnington()
	shared := d.FirstSharedCaches()
	if len(shared) != 6 {
		t.Fatalf("Dunnington first shared caches = %d, want 6 L2 pairs", len(shared))
	}
	for _, s := range shared {
		if s.Level != 2 || len(s.Cores()) != 2 {
			t.Errorf("shared cache %s level %d with %d cores", s.Label(), s.Level, len(s.Cores()))
		}
	}
	// Nehalem's L2s are private, so the first shared level is L3.
	n := Nehalem()
	shared = n.FirstSharedCaches()
	if len(shared) != 2 {
		t.Fatalf("Nehalem first shared caches = %d, want 2 L3s", len(shared))
	}
	if shared[0].Level != 3 {
		t.Errorf("Nehalem first shared level = %d, want 3", shared[0].Level)
	}
}

func TestPathToRoot(t *testing.T) {
	d := Dunnington()
	path, err := d.PathToRoot(0)
	if err != nil {
		t.Fatal(err)
	}
	// L1 -> L2 -> L3 -> MEM.
	if len(path) != 4 {
		t.Fatalf("path length %d, want 4", len(path))
	}
	if path[0].Level != 1 || path[1].Level != 2 || path[2].Level != 3 || path[3].Kind != Memory {
		t.Fatalf("path levels wrong: %v %v %v %v", path[0].Label(), path[1].Label(), path[2].Label(), path[3].Label())
	}
	// Out-of-range cores are errors, not panics.
	for _, core := range []int{-1, d.NumCores(), d.NumCores() + 5} {
		if _, err := d.PathToRoot(core); err == nil {
			t.Errorf("PathToRoot(%d) = nil error, want out-of-range error", core)
		}
	}
	if lvl := d.SharedLevel(-1, 0); lvl != 0 {
		t.Errorf("SharedLevel(-1, 0) = %d, want 0", lvl)
	}
	if lca := d.LCA(0, d.NumCores()); lca != nil {
		t.Errorf("LCA with out-of-range core = %v, want nil", lca)
	}
}

func TestScaleDunnington(t *testing.T) {
	for _, n := range []int{8, 12, 18, 24} {
		m, err := ScaleDunnington(n)
		if err != nil {
			t.Fatalf("ScaleDunnington(%d): %v", n, err)
		}
		if m.NumCores() != n {
			t.Errorf("ScaleDunnington(%d) has %d cores", n, m.NumCores())
		}
		if err := m.Validate(); err != nil {
			t.Errorf("ScaleDunnington(%d): %v", n, err)
		}
	}
	if _, err := ScaleDunnington(7); err == nil {
		t.Error("ScaleDunnington(7) should fail")
	}
}

func TestHalveCapacities(t *testing.T) {
	d := Dunnington()
	h := HalveCapacities(d)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumCores() != d.NumCores() {
		t.Fatal("halving changed core count")
	}
	if got := h.CachesAtLevel(2)[0].SizeBytes; got != (3<<20)/2 {
		t.Errorf("halved L2 = %d", got)
	}
	// Original untouched.
	if d.CachesAtLevel(2)[0].SizeBytes != 3<<20 {
		t.Error("HalveCapacities mutated the original")
	}
}

func TestTruncate(t *testing.T) {
	a := ArchI()
	for maxLevel := 2; maxLevel <= 4; maxLevel++ {
		tr := Truncate(a, maxLevel)
		if tr.NumCores() != a.NumCores() {
			t.Fatalf("Truncate(%d) changed core count to %d", maxLevel, tr.NumCores())
		}
		if got := tr.MaxLevel(); got != maxLevel {
			t.Errorf("Truncate(%d) max level = %d", maxLevel, got)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("Truncate(%d): %v", maxLevel, err)
		}
	}
	// Truncating away L3+L4 leaves the memory root directly over 8 L2s.
	tr := Truncate(a, 2)
	if got := len(tr.Root.Children); got != 8 {
		t.Errorf("Truncate(2) root degree = %d, want 8", got)
	}
}

func TestClone(t *testing.T) {
	d := Dunnington()
	c := Clone(d)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.CachesAtLevel(2)[0].SizeBytes = 1
	if d.CachesAtLevel(2)[0].SizeBytes == 1 {
		t.Fatal("Clone shares nodes with the original")
	}
	if c.MemOccupancy != d.MemOccupancy {
		t.Fatal("Clone dropped MemOccupancy")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"harpertown", "nehalem", "dunnington", "arch-i", "arch-ii"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("pentium"); err == nil {
		t.Error("ByName(pentium) should fail")
	}
}

func TestLCA(t *testing.T) {
	d := Dunnington()
	lca := d.LCA(0, 1)
	if lca == nil || lca.Kind != Cache || lca.Level != 2 {
		t.Fatalf("LCA(0,1) = %v", lca)
	}
	lca = d.LCA(0, 11)
	if lca == nil || lca.Kind != Memory {
		t.Fatalf("LCA(0,11) = %v, want memory", lca)
	}
}

func TestMachineString(t *testing.T) {
	s := Dunnington().String()
	for _, want := range []string{"Dunnington", "12 cores", "L3", "3MB", "core0", "core11"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestCoreIDsLeftToRight(t *testing.T) {
	for _, m := range All() {
		cores := m.Cores()
		for i, c := range cores {
			if c.CoreID != i {
				t.Fatalf("%s: core at position %d has id %d", m.Name, i, c.CoreID)
			}
		}
	}
}
