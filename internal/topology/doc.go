// Package topology models on-chip cache hierarchies as trees, exactly the
// "cache hierarchy tree" input of the paper's iteration-distribution
// algorithm (Fig 6): the last-level cache is the root — or off-chip memory
// when there is more than one last-level cache — interior nodes are shared
// caches, and leaves are processor cores.
//
// The package ships the three commercial machines of Table 1 (Harpertown,
// Nehalem, Dunnington), the two deeper simulated architectures of Figure 12
// (Arch-I, Arch-II), and the topology transforms the sensitivity studies
// need: core scaling (Fig 17), capacity halving (Fig 19) and hierarchy
// truncation (Fig 20). Machines can also be loaded from a JSON description
// (see json.go and cmd/topomap's -machine-file flag).
package topology
