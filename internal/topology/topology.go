package topology

import (
	"fmt"
	"strings"
)

// NodeKind distinguishes the tree's node types.
type NodeKind int

const (
	// Memory is the off-chip root used when the machine has multiple
	// last-level caches.
	Memory NodeKind = iota
	// Cache is an on-chip cache (L1..Ln).
	Cache
	// Core is a leaf processor core.
	Core
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case Memory:
		return "memory"
	case Cache:
		return "cache"
	case Core:
		return "core"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is one vertex of the cache hierarchy tree.
type Node struct {
	ID   int // unique within the machine, assigned by finalize
	Kind NodeKind

	// Cache parameters; meaningful when Kind == Cache (and for Memory,
	// only Latency is used).
	Level     int   // 1 for L1, 2 for L2, ...
	SizeBytes int64 // capacity
	Assoc     int   // set associativity
	LineBytes int64 // cache line size
	Latency   int   // access latency in cycles

	// CoreID is the core number for Kind == Core, -1 otherwise.
	CoreID int

	Parent   *Node
	Children []*Node
}

// IsLeaf reports whether the node is a core.
func (n *Node) IsLeaf() bool { return n.Kind == Core }

// Degree returns the number of children.
func (n *Node) Degree() int { return len(n.Children) }

// Cores returns the core leaves under n, left to right.
func (n *Node) Cores() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(m *Node) {
		if m.Kind == Core {
			out = append(out, m)
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// Label renders a short human-readable node label.
func (n *Node) Label() string {
	switch n.Kind {
	case Memory:
		return "MEM"
	case Core:
		return fmt.Sprintf("core%d", n.CoreID)
	default:
		return fmt.Sprintf("L%d#%d", n.Level, n.ID)
	}
}

// Machine is a complete multicore description: the hierarchy tree plus the
// global parameters of Table 1.
type Machine struct {
	Name     string
	Root     *Node
	ClockGHz float64
	// MemLatency is the off-chip access latency in cycles.
	MemLatency int
	// MemOccupancy is the number of cycles the shared off-chip channel is
	// busy per line transfer — the bandwidth model. These machines are
	// front-side-bus era parts (Harpertown and Dunnington share one FSB),
	// so one global channel serves every socket; concurrent misses queue.
	// Zero disables contention.
	MemOccupancy int

	nodes []*Node // all nodes in BFS order
	cores []*Node // leaves in core-id order
}

// finalize assigns IDs, parent pointers and core numbering; every
// constructor must call it.
func (m *Machine) finalize() *Machine {
	m.nodes = m.nodes[:0]
	m.cores = m.cores[:0]
	id := 0
	coreID := 0
	queue := []*Node{m.Root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		n.ID = id
		id++
		m.nodes = append(m.nodes, n)
		if n.Kind == Core {
			n.CoreID = coreID
			coreID++
			m.cores = append(m.cores, n)
			continue
		}
		for _, c := range n.Children {
			c.Parent = n
			queue = append(queue, c)
		}
	}
	// BFS numbers cores by depth; renumber left-to-right by DFS instead so
	// "adjacent core IDs share the lowest cache" holds for asymmetric trees.
	m.cores = m.Root.Cores()
	for i, c := range m.cores {
		c.CoreID = i
	}
	return m
}

// NumCores returns the number of cores.
func (m *Machine) NumCores() int { return len(m.cores) }

// Cores returns the core leaves in core-id order.
func (m *Machine) Cores() []*Node { return m.cores }

// Nodes returns every node of the tree.
func (m *Machine) Nodes() []*Node { return m.nodes }

// CachesAtLevel returns the cache nodes with the given level number, left to
// right.
func (m *Machine) CachesAtLevel(level int) []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(n *Node) {
		if n.Kind == Cache && n.Level == level {
			out = append(out, n)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(m.Root)
	return out
}

// MaxLevel returns the deepest (largest-numbered) cache level present.
func (m *Machine) MaxLevel() int {
	maxL := 0
	for _, n := range m.nodes {
		if n.Kind == Cache && n.Level > maxL {
			maxL = n.Level
		}
	}
	return maxL
}

// PathToRoot returns the chain of caches from the core's L1 up to the root,
// the lookup path the simulator walks on a miss. Out-of-range cores are an
// error rather than a panic, so callers driving the API with untrusted
// machine descriptions get a diagnosable failure.
func (m *Machine) PathToRoot(core int) ([]*Node, error) {
	if core < 0 || core >= len(m.cores) {
		return nil, fmt.Errorf("topology: core %d out of range [0,%d)", core, len(m.cores))
	}
	var path []*Node
	for n := m.cores[core].Parent; n != nil; n = n.Parent {
		path = append(path, n)
	}
	return path, nil
}

// SharedLevel returns the smallest cache level at which cores a and b have
// affinity (§2: two cores have affinity at cache L if both access L), or 0
// when they share no on-chip cache (affinity only at memory) or either core
// is out of range.
func (m *Machine) SharedLevel(a, b int) int {
	if a < 0 || b < 0 || a >= len(m.cores) || b >= len(m.cores) {
		return 0
	}
	if a == b {
		return 1
	}
	lca := m.LCA(a, b)
	if lca == nil || lca.Kind != Cache {
		return 0
	}
	return lca.Level
}

// LCA returns the lowest common ancestor node of two cores, or nil when
// either core is out of range.
func (m *Machine) LCA(a, b int) *Node {
	if a < 0 || b < 0 || a >= len(m.cores) || b >= len(m.cores) {
		return nil
	}
	seen := make(map[*Node]bool)
	for n := m.cores[a].Parent; n != nil; n = n.Parent {
		seen[n] = true
	}
	for n := m.cores[b].Parent; n != nil; n = n.Parent {
		if seen[n] {
			return n
		}
	}
	return nil
}

// FirstSharedCaches returns the lowest-level caches that are shared by more
// than one core, grouped with the cores under each. This is the "first
// shared cache level" the local scheduling algorithm of Fig 7 iterates over.
func (m *Machine) FirstSharedCaches() []*Node {
	// Walk down from the root; a node qualifies when it is a cache shared by
	// >1 core and none of its descendants is a multi-core cache... actually
	// the *first* (closest to the cores) shared level is wanted: find, for
	// each core, the nearest ancestor with >1 core, then dedup.
	seen := make(map[*Node]bool)
	var out []*Node
	for _, c := range m.cores {
		n := c.Parent
		for n != nil && len(n.Cores()) < 2 {
			n = n.Parent
		}
		if n != nil && n.Kind == Cache && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// Validate checks structural invariants and returns the first violation.
func (m *Machine) Validate() error {
	if m.Root == nil {
		return fmt.Errorf("topology: %s has nil root", m.Name)
	}
	if m.NumCores() == 0 {
		return fmt.Errorf("topology: %s has no cores", m.Name)
	}
	for _, n := range m.nodes {
		switch n.Kind {
		case Core:
			if len(n.Children) != 0 {
				return fmt.Errorf("topology: %s: core %d has children", m.Name, n.CoreID)
			}
		case Cache:
			if n.SizeBytes <= 0 || n.Assoc <= 0 || n.LineBytes <= 0 {
				return fmt.Errorf("topology: %s: cache %s has invalid parameters", m.Name, n.Label())
			}
			if n.SizeBytes%(int64(n.Assoc)*n.LineBytes) != 0 {
				return fmt.Errorf("topology: %s: cache %s size %d not divisible by assoc*line", m.Name, n.Label(), n.SizeBytes)
			}
			if len(n.Children) == 0 {
				return fmt.Errorf("topology: %s: cache %s has no children", m.Name, n.Label())
			}
		case Memory:
			if n != m.Root {
				return fmt.Errorf("topology: %s: interior memory node", m.Name)
			}
		}
		for _, c := range n.Children {
			if c.Parent != n {
				return fmt.Errorf("topology: %s: broken parent link at %s", m.Name, c.Label())
			}
			if c.Kind == Cache && n.Kind == Cache && c.Level >= n.Level {
				return fmt.Errorf("topology: %s: child cache L%d under L%d", m.Name, c.Level, n.Level)
			}
		}
	}
	return nil
}

// String draws the tree, one node per line.
func (m *Machine) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d cores, %.1f GHz, mem %d cycles)\n", m.Name, m.NumCores(), m.ClockGHz, m.MemLatency)
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		indent := strings.Repeat("  ", depth)
		switch n.Kind {
		case Cache:
			fmt.Fprintf(&b, "%s%s %s %d-way %dB-line %dcyc\n", indent, n.Label(), fmtBytes(n.SizeBytes), n.Assoc, n.LineBytes, n.Latency)
		default:
			fmt.Fprintf(&b, "%s%s\n", indent, n.Label())
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(m.Root, 0)
	return b.String()
}

// fmtBytes renders a byte count as KB/MB when exact.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
