package topology

import (
	"encoding/json"
	"fmt"
)

// jsonMachine is the on-disk form of a Machine. The tree is explicit; a
// node with no children is a core, a node with a cache level is a cache,
// and the root is off-chip memory when it declares no level.
//
// Example (a 4-core machine with pairwise L2s):
//
//	{
//	  "name": "mini",
//	  "clockGHz": 2.0,
//	  "memLatency": 150,
//	  "memOccupancy": 8,
//	  "root": {"children": [
//	    {"level": 2, "sizeBytes": 1048576, "assoc": 8, "lineBytes": 64, "latency": 12,
//	     "children": [
//	       {"level": 1, "sizeBytes": 32768, "assoc": 8, "lineBytes": 64, "latency": 4, "children": [{}]},
//	       {"level": 1, "sizeBytes": 32768, "assoc": 8, "lineBytes": 64, "latency": 4, "children": [{}]}
//	     ]},
//	    ...
//	  ]}
//	}
type jsonMachine struct {
	Name         string   `json:"name"`
	ClockGHz     float64  `json:"clockGHz"`
	MemLatency   int      `json:"memLatency"`
	MemOccupancy int      `json:"memOccupancy"`
	Root         jsonNode `json:"root"`
}

type jsonNode struct {
	Level     int        `json:"level,omitempty"`
	SizeBytes int64      `json:"sizeBytes,omitempty"`
	Assoc     int        `json:"assoc,omitempty"`
	LineBytes int64      `json:"lineBytes,omitempty"`
	Latency   int        `json:"latency,omitempty"`
	Children  []jsonNode `json:"children,omitempty"`
}

// MarshalMachine renders a machine as indented JSON.
func MarshalMachine(m *Machine) ([]byte, error) {
	var conv func(n *Node) jsonNode
	conv = func(n *Node) jsonNode {
		out := jsonNode{}
		if n.Kind == Cache {
			out.Level = n.Level
			out.SizeBytes = n.SizeBytes
			out.Assoc = n.Assoc
			out.LineBytes = n.LineBytes
			out.Latency = n.Latency
		}
		for _, c := range n.Children {
			out.Children = append(out.Children, conv(c))
		}
		return out
	}
	jm := jsonMachine{
		Name:         m.Name,
		ClockGHz:     m.ClockGHz,
		MemLatency:   m.MemLatency,
		MemOccupancy: m.MemOccupancy,
		Root:         conv(m.Root),
	}
	return json.MarshalIndent(jm, "", "  ")
}

// UnmarshalMachine parses a JSON machine description and validates it.
func UnmarshalMachine(data []byte) (*Machine, error) {
	var jm jsonMachine
	if err := json.Unmarshal(data, &jm); err != nil {
		return nil, fmt.Errorf("topology: parsing machine: %w", err)
	}
	if jm.Name == "" {
		return nil, fmt.Errorf("topology: machine needs a name")
	}
	var conv func(j jsonNode, isRoot bool) (*Node, error)
	conv = func(j jsonNode, isRoot bool) (*Node, error) {
		var n *Node
		switch {
		case len(j.Children) == 0:
			if j.Level != 0 {
				return nil, fmt.Errorf("topology: cache node L%d with no children", j.Level)
			}
			n = &Node{Kind: Core, CoreID: -1}
		case j.Level > 0:
			n = &Node{Kind: Cache, Level: j.Level, SizeBytes: j.SizeBytes,
				Assoc: j.Assoc, LineBytes: j.LineBytes, Latency: j.Latency, CoreID: -1}
		case isRoot:
			n = &Node{Kind: Memory, CoreID: -1}
		default:
			return nil, fmt.Errorf("topology: interior node without a cache level")
		}
		for _, c := range j.Children {
			cn, err := conv(c, false)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, cn)
		}
		return n, nil
	}
	root, err := conv(jm.Root, true)
	if err != nil {
		return nil, err
	}
	if root.Kind == Core {
		return nil, fmt.Errorf("topology: machine root cannot be a core")
	}
	m := &Machine{
		Name:         jm.Name,
		ClockGHz:     jm.ClockGHz,
		MemLatency:   jm.MemLatency,
		MemOccupancy: jm.MemOccupancy,
		Root:         root,
	}
	m.finalize()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
