package topology

import "fmt"

// cache builds a cache node.
func cache(level int, size int64, assoc int, line int64, latency int, children ...*Node) *Node {
	return &Node{Kind: Cache, Level: level, SizeBytes: size, Assoc: assoc, LineBytes: line, Latency: latency, CoreID: -1, Children: children}
}

// core builds a core leaf.
func core() *Node { return &Node{Kind: Core, CoreID: -1} }

// mem builds an off-chip memory root over the given last-level caches.
func mem(children ...*Node) *Node {
	return &Node{Kind: Memory, CoreID: -1, Children: children}
}

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
)

// Harpertown is the 8-core, two-level machine of Table 1 / Figure 1(a):
// two sockets, each with two 6 MB L2 caches shared by a pair of cores
// (four last-level caches, so memory is the clustering root).
func Harpertown() *Machine {
	l2 := func() *Node {
		return cache(2, 6*mb, 24, 64, 15,
			l1h(), l1h())
	}
	m := &Machine{
		Name:       "Harpertown",
		ClockGHz:   3.2,
		MemLatency: 320, MemOccupancy: 8, // ~100 ns at 3.2 GHz, shared FSB
		Root: mem(l2(), l2(), l2(), l2()),
	}
	return m.finalize()
}

// l1h is Harpertown's L1: 32 KB, 8-way, 64 B lines, 3-cycle latency.
func l1h() *Node { return cache(1, 32*kb, 8, 64, 3, core()) }

// Nehalem is the 8-core, three-level machine of Table 1 / Figure 1(b):
// two sockets, each an 8 MB L3 shared by four cores with private 256 KB L2s.
func Nehalem() *Machine {
	l2 := func() *Node {
		return cache(2, 256*kb, 8, 64, 10,
			cache(1, 32*kb, 8, 64, 4, core()))
	}
	socket := func() *Node {
		return cache(3, 8*mb, 16, 64, 35, l2(), l2(), l2(), l2())
	}
	m := &Machine{
		Name:       "Nehalem",
		ClockGHz:   2.9,
		MemLatency: 174, MemOccupancy: 8, // ~60 ns at 2.9 GHz
		Root: mem(socket(), socket()),
	}
	return m.finalize()
}

// Dunnington is the 12-core, three-level machine of Table 1 / Figure 1(c):
// two sockets, each a 12 MB L3 shared by six cores, with three 3 MB L2s each
// shared by a pair of cores.
func Dunnington() *Machine {
	l2 := func() *Node {
		return cache(2, 3*mb, 12, 64, 10,
			cache(1, 32*kb, 8, 64, 4, core()),
			cache(1, 32*kb, 8, 64, 4, core()))
	}
	socket := func() *Node {
		return cache(3, 12*mb, 16, 64, 36, l2(), l2(), l2())
	}
	m := &Machine{
		Name:       "Dunnington",
		ClockGHz:   2.4,
		MemLatency: 120, MemOccupancy: 8, // ~50 ns at 2.4 GHz, shared FSB
		Root: mem(socket(), socket()),
	}
	return m.finalize()
}

// ArchI is the first deeper simulated architecture of Figure 12: 16 cores
// with a four-level on-chip hierarchy (private L1, L2 per core pair, L3 per
// quad, L4 per socket of eight).
func ArchI() *Machine {
	l2 := func() *Node {
		return cache(2, 512*kb, 8, 64, 10,
			cache(1, 32*kb, 8, 64, 4, core()),
			cache(1, 32*kb, 8, 64, 4, core()))
	}
	l3 := func() *Node { return cache(3, 4*mb, 16, 64, 24, l2(), l2()) }
	socket := func() *Node { return cache(4, 16*mb, 16, 64, 40, l3(), l3()) }
	m := &Machine{
		Name:       "Arch-I",
		ClockGHz:   2.0,
		MemLatency: 200, MemOccupancy: 8,
		Root: mem(socket(), socket()),
	}
	return m.finalize()
}

// ArchII is the second, still deeper simulated architecture of Figure 12:
// 32 cores with a five-level on-chip hierarchy. Per-level capacities are
// tighter than Arch-I's — the depth trades capacity per level for more
// sharing domains, which is the regime the paper projects for future
// multicores.
func ArchII() *Machine {
	l2 := func() *Node {
		return cache(2, 256*kb, 8, 64, 8,
			cache(1, 32*kb, 8, 64, 4, core()),
			cache(1, 32*kb, 8, 64, 4, core()))
	}
	l3 := func() *Node { return cache(3, 1*mb, 16, 64, 16, l2(), l2()) }
	l4 := func() *Node { return cache(4, 4*mb, 16, 64, 28, l3(), l3()) }
	socket := func() *Node { return cache(5, 16*mb, 16, 64, 44, l4(), l4()) }
	m := &Machine{
		Name:       "Arch-II",
		ClockGHz:   2.0,
		MemLatency: 220, MemOccupancy: 8,
		Root: mem(socket(), socket()),
	}
	return m.finalize()
}

// ByName returns the named machine. Recognized names: harpertown, nehalem,
// dunnington, arch1/arch-i, arch2/arch-ii.
func ByName(name string) (*Machine, error) {
	switch name {
	case "harpertown", "Harpertown":
		return Harpertown(), nil
	case "nehalem", "Nehalem":
		return Nehalem(), nil
	case "dunnington", "Dunnington":
		return Dunnington(), nil
	case "arch1", "arch-i", "Arch-I", "archI":
		return ArchI(), nil
	case "arch2", "arch-ii", "Arch-II", "archII":
		return ArchII(), nil
	default:
		return nil, fmt.Errorf("topology: unknown machine %q", name)
	}
}

// All returns the five paper machines.
func All() []*Machine {
	return []*Machine{Harpertown(), Nehalem(), Dunnington(), ArchI(), ArchII()}
}

// Commercial returns the three Table 1 machines the main evaluation uses.
func Commercial() []*Machine {
	return []*Machine{Harpertown(), Nehalem(), Dunnington()}
}

// ScaleDunnington builds the Fig 17 machines: the Dunnington topology grown
// to the given core count by adding six-core sockets. Valid counts are
// multiples of 6; the paper uses 12, 18 and 24 (plus an 8-core comparison
// point which we model as Dunnington with two sockets of 4 = two L2 pairs
// per socket).
func ScaleDunnington(cores int) (*Machine, error) {
	if cores == 8 {
		l2 := func() *Node {
			return cache(2, 3*mb, 12, 64, 10,
				cache(1, 32*kb, 8, 64, 4, core()),
				cache(1, 32*kb, 8, 64, 4, core()))
		}
		socket := func() *Node { return cache(3, 12*mb, 16, 64, 36, l2(), l2()) }
		m := &Machine{Name: "Dunnington-8", ClockGHz: 2.4, MemLatency: 120, MemOccupancy: 8, Root: mem(socket(), socket())}
		return m.finalize(), nil
	}
	if cores <= 0 || cores%6 != 0 {
		return nil, fmt.Errorf("topology: ScaleDunnington wants 8 or a multiple of 6, got %d", cores)
	}
	l2 := func() *Node {
		return cache(2, 3*mb, 12, 64, 10,
			cache(1, 32*kb, 8, 64, 4, core()),
			cache(1, 32*kb, 8, 64, 4, core()))
	}
	socket := func() *Node { return cache(3, 12*mb, 16, 64, 36, l2(), l2(), l2()) }
	sockets := make([]*Node, cores/6)
	for i := range sockets {
		sockets[i] = socket()
	}
	m := &Machine{
		Name:         fmt.Sprintf("Dunnington-%d", cores),
		ClockGHz:     2.4,
		MemLatency:   120,
		MemOccupancy: 8,
		Root:         mem(sockets...),
	}
	return m.finalize(), nil
}

// HalveCapacities returns a deep copy of m with every cache capacity halved
// (associativity halved too when needed to keep sets intact), the Fig 19
// pressure study.
func HalveCapacities(m *Machine) *Machine {
	out := Clone(m)
	out.Name = m.Name + "-half"
	for _, n := range out.nodes {
		if n.Kind != Cache {
			continue
		}
		n.SizeBytes /= 2
		// Keep size divisible by assoc*line: halve associativity when the
		// halved capacity no longer accommodates it.
		for n.Assoc > 1 && n.SizeBytes%(int64(n.Assoc)*n.LineBytes) != 0 {
			n.Assoc /= 2
		}
	}
	return out
}

// Truncate returns a copy of m whose hierarchy *view* only keeps cache
// levels 1..maxLevel; higher caches are spliced out (their children attach
// to their parent). This is how the Fig 20 "L1+L2" and "L1+L2+L3" versions
// of the mapper are produced: the mapper sees the truncated tree while the
// simulator still runs the full machine.
func Truncate(m *Machine, maxLevel int) *Machine {
	out := Clone(m)
	out.Name = fmt.Sprintf("%s-L1..L%d", m.Name, maxLevel)
	changed := true
	for changed {
		changed = false
		var walk func(n *Node)
		walk = func(n *Node) {
			kept := make([]*Node, 0, len(n.Children))
			for _, c := range n.Children {
				if c.Kind == Cache && c.Level > maxLevel {
					kept = append(kept, c.Children...)
					changed = true
				} else {
					kept = append(kept, c)
				}
			}
			n.Children = kept
			for _, c := range n.Children {
				c.Parent = n
				if c.Kind != Core {
					walk(c)
				}
			}
		}
		if out.Root.Kind == Cache && out.Root.Level > maxLevel {
			out.Root = mem(out.Root.Children...)
			changed = true
		}
		walk(out.Root)
	}
	return out.finalize()
}

// Clone deep-copies a machine.
func Clone(m *Machine) *Machine {
	var copyNode func(n *Node) *Node
	copyNode = func(n *Node) *Node {
		nn := &Node{Kind: n.Kind, Level: n.Level, SizeBytes: n.SizeBytes,
			Assoc: n.Assoc, LineBytes: n.LineBytes, Latency: n.Latency, CoreID: -1}
		for _, c := range n.Children {
			nn.Children = append(nn.Children, copyNode(c))
		}
		return nn
	}
	out := &Machine{Name: m.Name, ClockGHz: m.ClockGHz, MemLatency: m.MemLatency, MemOccupancy: m.MemOccupancy, Root: copyNode(m.Root)}
	return out.finalize()
}
