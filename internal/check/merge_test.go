package check

import (
	"errors"
	"strings"
	"testing"
)

// TestVerifyMergeExactCoverage: a merge holding every grid key and nothing
// else verifies.
func TestVerifyMergeExactCoverage(t *testing.T) {
	keys := []string{"a", "b", "c"}
	merged := map[string]bool{"a": true, "b": true, "c": true}
	if err := VerifyMerge(keys, merged); err != nil {
		t.Fatalf("exact coverage rejected: %v", err)
	}
	if err := VerifyMerge(nil, map[string]bool{}); err != nil {
		t.Fatalf("empty grid rejected: %v", err)
	}
}

// TestVerifyMergeMissingAndForeign: uncovered grid cells and keys no grid
// cell owns are both reported, sorted, with a message naming the counts.
func TestVerifyMergeMissingAndForeign(t *testing.T) {
	keys := []string{"b", "a", "c"}
	merged := map[string]bool{"a": true, "z": true, "y": true}
	err := VerifyMerge(keys, merged)
	if err == nil {
		t.Fatal("incoherent merge verified")
	}
	var me *MergeError
	if !errors.As(err, &me) {
		t.Fatalf("error is %T, want *MergeError", err)
	}
	if len(me.Missing) != 2 || me.Missing[0] != "b" || me.Missing[1] != "c" {
		t.Errorf("Missing = %v, want [b c]", me.Missing)
	}
	if len(me.Foreign) != 2 || me.Foreign[0] != "y" || me.Foreign[1] != "z" {
		t.Errorf("Foreign = %v, want [y z]", me.Foreign)
	}
	for _, want := range []string{"2 missing", "2 foreign", "b", "y"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}
