// Package check defines the self-checking levels of the simulation stack
// and the runtime invariants the cache simulator enforces under them.
//
// The paper's entire claim rests on on-chip cache statistics, so a silent
// corruption in the simulator or a drifted streaming cursor falsifies every
// figure without any test failing. The defense is layered:
//
//   - Invariants (this package + cachesim): cheap structural checks inside
//     the event loop — set occupancy, LRU ordering, cursor-length
//     accounting, cycle monotonicity, cross-level conservation. They cost a
//     few branches per access and are compiled to no-ops below Mode
//     Invariants.
//   - Oracle (internal/oracle): a deliberately naive reference simulator
//     recomputes the full result and field-compares it, at Sampled (a
//     deterministic subset of cells) or Full (every cell) level.
//   - Chaos (internal/chaos): a seeded fault injector proves the two layers
//     above actually fire.
//
// A violated invariant is an *InvariantError; the experiment runner
// classifies it as stage "invariant" so a lying cell becomes a "fail" row,
// never a wrong number.
package check

import "fmt"

// Mode selects how much self-checking a simulation runs under. Levels are
// ordered: every level includes the checks of the levels below it.
type Mode int

const (
	// Off disables all self-checking (the default): the simulator runs the
	// plain event loop with zero per-access overhead.
	Off Mode = iota
	// Invariants enables the runtime invariants inside the simulator: set
	// occupancy <= associativity, LRU recency ordering, cursor Len()
	// accounting, monotone event clock, and cross-level conservation.
	Invariants
	// Sampled adds the differential oracle on a deterministic subset of
	// cells (see Sampled* below): roughly one cell in four recomputes its
	// statistics on the naive reference simulator and field-compares.
	Sampled
	// Full runs the differential oracle on every cell.
	Full
)

// String names the mode as the -check flag spells it.
func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Invariants:
		return "invariants"
	case Sampled:
		return "sampled"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode parses a -check flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off", "":
		return Off, nil
	case "invariants", "inv":
		return Invariants, nil
	case "sampled":
		return Sampled, nil
	case "full":
		return Full, nil
	default:
		return Off, fmt.Errorf("check: unknown mode %q (want off, invariants, sampled or full)", s)
	}
}

// sampleDivisor is the Sampled-mode selection rate: one cell in
// sampleDivisor runs the oracle.
const sampleDivisor = 4

// SampleSelected reports whether Sampled mode runs the oracle for the cell
// with the given identity string. The decision is a deterministic hash, so
// the same cell is checked (or skipped) on every run, machine and -j.
func SampleSelected(id string) bool {
	return fnv64(id)%sampleDivisor == 0
}

// fnv64 is the FNV-1a hash used for deterministic sampling decisions.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// InvariantError reports a violated runtime invariant inside the simulator.
// It means the simulation's statistics cannot be trusted: the run is
// aborted and no Result is returned.
type InvariantError struct {
	// Name identifies the invariant: "set-occupancy", "duplicate-tag",
	// "lru-order", "cursor-short", "cursor-overrun", "negative-address",
	// "event-clock" or "conservation".
	Name string
	// Detail is a human-readable account of the violation.
	Detail string
	// Core is the issuing core when the violation is tied to one, else -1.
	Core int
	// Round is the barrier round in which the violation was detected, -1
	// when it was an end-of-run check.
	Round int
	// AccessIndex is the number of accesses simulated when the violation
	// was detected (a debugging window anchor), -1 when unknown.
	AccessIndex int64
}

// Error renders the invariant name, location and detail.
func (e *InvariantError) Error() string {
	s := fmt.Sprintf("check: invariant %q violated", e.Name)
	if e.Core >= 0 {
		s += fmt.Sprintf(" (core %d", e.Core)
		if e.Round >= 0 {
			s += fmt.Sprintf(", round %d", e.Round)
		}
		s += ")"
	}
	if e.AccessIndex >= 0 {
		s += fmt.Sprintf(" at access %d", e.AccessIndex)
	}
	return s + ": " + e.Detail
}

// LineTag decodes a way's packed tag word. The simulator stores each way's
// line tag and dirty bit in one word — tag<<1 | dirty, or -1 when the way
// is empty — so the write-back state lives in the array the probe scan
// already reads. The -1 sentinel survives the encoding because a packed
// tag is never negative.
func LineTag(packed int64) int64 {
	if packed == -1 {
		return -1
	}
	return packed >> 1
}

// VerifySet checks the structural invariants of one cache set after an
// access touched the line with the given tag: occupancy cannot exceed the
// associativity (the backing array is fixed-size, so this catches index
// arithmetic that strays into a neighboring set), the tag must be resident
// exactly once, the set's recency list must be a permutation of its ways,
// and the just-touched way must be the most recently used line of the set.
// tags is the cache's packed tag array (see LineTag); base is the set's
// first way index; lru is the set's recency list, most recent first.
func VerifySet(tags []int64, lru []uint16, base, assoc int, tag int64) *InvariantError {
	if base < 0 || base+assoc > len(tags) || len(lru) < assoc {
		return &InvariantError{Name: "set-occupancy", Core: -1, Round: -1, AccessIndex: -1,
			Detail: fmt.Sprintf("set base %d assoc %d outside %d ways (%d recency entries)", base, assoc, len(tags), len(lru))}
	}
	found := -1
	for w := 0; w < assoc; w++ {
		l := LineTag(tags[base+w])
		if l != tag {
			continue
		}
		if found >= 0 {
			return &InvariantError{Name: "duplicate-tag", Core: -1, Round: -1, AccessIndex: -1,
				Detail: fmt.Sprintf("tag %#x resident in ways %d and %d of set at %d", tag, found, w, base)}
		}
		found = w
	}
	if found < 0 {
		return &InvariantError{Name: "set-occupancy", Core: -1, Round: -1, AccessIndex: -1,
			Detail: fmt.Sprintf("tag %#x not resident after access/fill in set at %d", tag, base)}
	}
	// The recency list drives victim selection: it must name every way
	// exactly once, and the just-touched way must head it — both a hit and
	// a fill promote their way to most recent, so anything else means the
	// ordering (and therefore future victim selection) is corrupt.
	var seen uint64
	for i := 0; i < assoc; i++ {
		w := int(lru[i])
		if w >= assoc || seen&(1<<uint(w)) != 0 {
			return &InvariantError{Name: "lru-order", Core: -1, Round: -1, AccessIndex: -1,
				Detail: fmt.Sprintf("recency list entry %d (way %d) is out of range or repeated in set at %d", i, w, base)}
		}
		seen |= 1 << uint(w)
	}
	if int(lru[0]) != found {
		return &InvariantError{Name: "lru-order", Core: -1, Round: -1, AccessIndex: -1,
			Detail: fmt.Sprintf("way %d is most recent but just-touched way is %d in set at %d", lru[0], found, base)}
	}
	return nil
}
