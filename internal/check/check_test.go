package check

import (
	"strings"
	"testing"
)

// TestModeRoundTrip: every mode survives String → ParseMode (the -check
// flag encoding), levels are ordered, and garbage is rejected.
func TestModeRoundTrip(t *testing.T) {
	modes := []Mode{Off, Invariants, Sampled, Full}
	for i, m := range modes {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
		if i > 0 && !(modes[i-1] < m) {
			t.Errorf("mode %v not above %v", m, modes[i-1])
		}
	}
	if m, err := ParseMode("inv"); err != nil || m != Invariants {
		t.Errorf(`ParseMode("inv") = %v, %v; want Invariants`, m, err)
	}
	if _, err := ParseMode("paranoid"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
}

// TestSampleSelectedDeterministic: the sampled-oracle subset is a pure
// function of the cell id and lands near the intended 1-in-4 rate.
func TestSampleSelectedDeterministic(t *testing.T) {
	selected := 0
	const n = 4000
	for i := 0; i < n; i++ {
		id := strings.Repeat("x", i%7) + string(rune('a'+i%26)) + "|machine|Base"
		a, b := SampleSelected(id), SampleSelected(id)
		if a != b {
			t.Fatalf("SampleSelected(%q) flapped", id)
		}
		if a {
			selected++
		}
	}
	if selected < n/8 || selected > n/2 {
		t.Errorf("sample rate %d/%d far from 1-in-%d", selected, n, sampleDivisor)
	}
}

// TestVerifySet exercises each structural violation VerifySet detects.
func TestVerifySet(t *testing.T) {
	const assoc = 4
	// Line tags pack into the tag word as the simulator stores them
	// (tag<<1 | dirty, -1 empty); the dirty bit is irrelevant to the
	// structural invariants, so the helper leaves it clear.
	set := func(lines ...int64) []int64 {
		ts := make([]int64, len(lines))
		for i, l := range lines {
			if l != -1 {
				l <<= 1
			}
			ts[i] = l
		}
		return ts
	}
	tags := set(10, 11, 12, -1)
	// Recency: way 1 (tag 11) most recent, then 0, 2, empty way 3 at the tail.
	lru := []uint16{1, 0, 2, 3}

	if err := VerifySet(tags, lru, 0, assoc, 11); err != nil {
		t.Errorf("healthy set flagged: %v", err)
	}
	if err := VerifySet(tags, lru, 0, assoc, 99); err == nil || err.Name != "set-occupancy" {
		t.Errorf("missing tag not flagged as set-occupancy: %v", err)
	}
	if err := VerifySet(tags, lru, 4, assoc, 10); err == nil || err.Name != "set-occupancy" {
		t.Errorf("out-of-range set base not flagged: %v", err)
	}
	dup := set(7, 7, -1, -1)
	if err := VerifySet(dup, []uint16{0, 1, 2, 3}, 0, assoc, 7); err == nil || err.Name != "duplicate-tag" {
		t.Errorf("duplicate tag not flagged: %v", err)
	}
	// Way 0 was just touched (tag 10) but the recency list still heads way 1.
	if err := VerifySet(tags, lru, 0, assoc, 10); err == nil || err.Name != "lru-order" {
		t.Errorf("stale recency not flagged: %v", err)
	}
	// A recency list that repeats a way (or names one out of range) means
	// victim selection is corrupt even when the tags look healthy.
	if err := VerifySet(tags, []uint16{1, 0, 2, 2}, 0, assoc, 11); err == nil || err.Name != "lru-order" {
		t.Errorf("repeated recency entry not flagged: %v", err)
	}
	if err := VerifySet(tags, []uint16{1, 0, 2, 9}, 0, assoc, 11); err == nil || err.Name != "lru-order" {
		t.Errorf("out-of-range recency entry not flagged: %v", err)
	}

	if err := VerifySet(dup, []uint16{0, 1, 2, 3}, 0, assoc, 7); err != nil {
		msg := err.Error()
		if !strings.Contains(msg, "duplicate-tag") {
			t.Errorf("error text lacks the invariant name: %q", msg)
		}
	}
}
