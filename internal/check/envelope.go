package check

import (
	"encoding/json"
	"fmt"
)

// wireEnvelope mirrors the topomapd response envelope (internal/serve)
// structurally but is decoded independently here — deliberately not a
// shared type, so this verifier cross-checks the server's encoder the way
// the oracle cross-checks the simulator: through the wire format, not
// through shared code.
type wireEnvelope struct {
	OK     bool `json:"ok"`
	Result *struct {
		Key    string `json:"key"`
		Source string `json:"source"`
	} `json:"result"`
	Error *struct {
		Stage     string `json:"stage"`
		Status    int    `json:"status"`
		Message   string `json:"message"`
		Retryable bool   `json:"retryable"`
	} `json:"error"`
}

// VerifyEnvelope checks that one topomapd /v1/map response is a
// well-formed wire envelope for its HTTP status: a 200 must carry
// ok=true and a keyed result; any other status must carry ok=false and a
// structured error whose stage and message are non-empty and whose
// echoed status matches the transport's. The chaos/soak harness applies
// it to every response — including sheds, drains and contained panics —
// so "the server never answers garbage under fault load" is a checkable
// invariant, not a hope.
func VerifyEnvelope(status int, body []byte) error {
	env := &wireEnvelope{}
	if err := json.Unmarshal(body, env); err != nil {
		return fmt.Errorf("check: HTTP %d response is not an envelope: %v (body %.120q)", status, err, body)
	}
	if status == 200 {
		if !env.OK {
			return fmt.Errorf("check: HTTP 200 envelope has ok=false")
		}
		if env.Result == nil || env.Result.Key == "" {
			return fmt.Errorf("check: HTTP 200 envelope has no keyed result")
		}
		if env.Error != nil {
			return fmt.Errorf("check: HTTP 200 envelope carries an error body")
		}
		return nil
	}
	if env.OK {
		return fmt.Errorf("check: HTTP %d envelope has ok=true", status)
	}
	if env.Result != nil {
		return fmt.Errorf("check: HTTP %d envelope carries a result", status)
	}
	if env.Error == nil {
		return fmt.Errorf("check: HTTP %d envelope has no error body", status)
	}
	if env.Error.Stage == "" || env.Error.Message == "" {
		return fmt.Errorf("check: HTTP %d envelope error lacks stage or message", status)
	}
	if env.Error.Status != status {
		return fmt.Errorf("check: envelope echoes status %d but arrived with HTTP %d", env.Error.Status, status)
	}
	return nil
}
