package check

import (
	"fmt"
	"sort"
)

// MergeError reports a merged distributed sweep that does not cover exactly
// the grid it was sharded from: cells missing (never completed nor failed
// by any worker) or foreign (keys no cell of this grid owns — a stale
// checkpoint merged in, or a coordinator bookkeeping bug). The fabric
// treats it like an invariant violation: the merge is rejected and the
// sweep degrades to in-process execution rather than publishing a partial
// or polluted grid.
type MergeError struct {
	// Missing lists grid cell keys with neither a result nor a failure.
	Missing []string
	// Foreign lists merged keys that belong to no cell of the grid.
	Foreign []string
}

// Error names the first few offending keys of each class.
func (e *MergeError) Error() string {
	s := "check: merged grid does not cover sweep"
	if n := len(e.Missing); n > 0 {
		s += fmt.Sprintf("; %d missing (first: %s)", n, e.Missing[0])
	}
	if n := len(e.Foreign); n > 0 {
		s += fmt.Sprintf("; %d foreign (first: %s)", n, e.Foreign[0])
	}
	return s
}

// VerifyMerge checks that a distributed sweep's merged outcome covers its
// grid exactly: every grid cell key appears in merged (as a completed
// result or a structured failure — both count as resolved), and merged
// holds no key outside the grid. Returns nil on exact coverage, else a
// *MergeError listing the offenders sorted by key.
func VerifyMerge(gridKeys []string, merged map[string]bool) error {
	want := make(map[string]bool, len(gridKeys))
	for _, k := range gridKeys {
		want[k] = true
	}
	var e MergeError
	for _, k := range gridKeys {
		if !merged[k] {
			e.Missing = append(e.Missing, k)
		}
	}
	got := make([]string, 0, len(merged))
	for k := range merged {
		got = append(got, k)
	}
	sort.Strings(got)
	for _, k := range got {
		if !want[k] {
			e.Foreign = append(e.Foreign, k)
		}
	}
	if len(e.Missing) == 0 && len(e.Foreign) == 0 {
		return nil
	}
	sort.Strings(e.Missing)
	return &e
}
