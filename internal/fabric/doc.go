// Package fabric shards an experiment grid across worker processes with
// lease-based work assignment and crash recovery.
//
// The paper's figure sweeps are embarrassingly parallel at the cell level
// (internal/experiments runs them on an in-process pool), but a full
// sensitivity study is hours of CPU — worth spreading over processes and
// hosts, if and only if distribution cannot change a single number. The
// fabric's contract is exactly that: a sweep completed through the fabric
// renders byte-identical to a single-process run, at any worker count and
// under any kill schedule.
//
// # Protocol
//
// One coordinator owns the grid; workers are stateless pull loops:
//
//	worker                         coordinator
//	  |---- POST /v1/lease ---------->|   next pending batch, under a TTL lease
//	  |<--- specs, lease, guards -----|
//	  |---- POST /v1/heartbeat ------>|   extends the lease while computing
//	  |---- POST /v1/results -------->|   checkpoint JSONL: header + records
//	  |<--- 200 merged ---------------|
//
// Batches are handed out under a TTL lease. A worker that stops
// heartbeating — crashed, stalled, partitioned — loses the lease: the
// coordinator revokes it and requeues the batch with jittered exponential
// backoff (experiments.Backoff) and a bounded reassignment budget. A batch
// that exhausts the budget resolves to structured per-cell failures (stage
// "fabric"), exactly like any other contained cell failure: a standing
// "fail" row, never a missing or silently wrong number.
//
// Results travel as PR 5 checkpoint JSONL: a CheckpointHeader line carrying
// the grid signature, module build version, worker identity and lease,
// then one sealed CheckpointRecord (or fail row) per cell. The coordinator
// enforces all of it — foreign grids, mismatched builds, stale leases and
// checksum-failing records are rejected wholesale, and a rejected upload
// just requeues the batch.
//
// # Determinism
//
// Merged results are installed into the runner's memo keyed by Cell.Key(),
// the same identity in-process execution uses, and rendering reads the memo
// in cell order. Which worker computed a cell, how many times its batch was
// reassigned, and in which order uploads landed are all invisible to the
// output. Cells the fabric cannot ship (a programmatically scaled machine
// with no registry name) or fails to complete (dead coordinator, merge
// verification failure) fall back to in-process execution: distribution
// changes where cells run, never whether.
//
// # Chaos
//
// internal/chaos extends to process-level faults (kill, stall,
// corrupt-result), armed by a seed the coordinator hands each worker with
// its lease. A chaos fabric sweep must end with every injected fault either
// recovered (the batch reassigned and completed elsewhere) or surfaced as a
// structured failure row.
package fabric
