package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/chaos"
	"repro/internal/experiments"
)

// WorkerOptions configures one worker process.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (Coordinator.URL). Required.
	Coordinator string
	// ID names this worker in leases, uploads and attribution. Default
	// "w<pid>".
	ID string
	// Jobs bounds the worker's in-process cell pool. Default 1.
	Jobs int
	// Poll is the idle re-poll interval when no batch is assignable.
	// Default 200ms.
	Poll time.Duration
	// MaxIdleErrs bounds consecutive coordinator connection failures before
	// the worker gives up and exits (the coordinator is gone, not busy).
	// Default 10.
	MaxIdleErrs int
	// HTTPTimeout bounds every coordinator round-trip, connect through
	// body read. 0 derives it from the active lease TTL (4×TTL, floor 2s;
	// 10s before the first grant), so a stalled coordinator costs the
	// worker one bounded round-trip — never a hang.
	HTTPTimeout time.Duration
	// Logf, when non-nil, receives worker diagnostics.
	Logf func(format string, args ...any)
}

// RunWorker is RunWorkerContext under context.Background, for the CLI
// `worker` subcommand whose lifetime is the process's.
func RunWorker(opts WorkerOptions) error {
	//lint:ignore ctxflow convenience wrapper: delegates to RunWorkerContext immediately
	return RunWorkerContext(context.Background(), opts)
}

// RunWorkerContext runs the worker pull loop until the context dies (nil
// error) or the coordinator becomes unreachable (the connection-failure
// budget, returned as an error). Each leased batch is recomputed on a
// persistent in-process Runner — memoization carries across batches, so a
// Base cell shared by many ratio cells is computed once per worker — and
// streamed back as sealed checkpoint JSONL under the lease.
func RunWorkerContext(ctx context.Context, opts WorkerOptions) error {
	if opts.Coordinator == "" {
		return errors.New("fabric: WorkerOptions.Coordinator is required")
	}
	if opts.ID == "" {
		opts.ID = fmt.Sprintf("w%d", os.Getpid())
	}
	if opts.Jobs <= 0 {
		opts.Jobs = 1
	}
	if opts.Poll <= 0 {
		opts.Poll = 200 * time.Millisecond
	}
	if opts.MaxIdleErrs <= 0 {
		opts.MaxIdleErrs = 10
	}
	w := &worker{
		opts:   opts,
		client: &http.Client{},
		runner: experiments.NewRunner(),
	}
	w.runner.SetWorkers(opts.Jobs)
	errs := 0
	for ctx.Err() == nil {
		grant, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			errs++
			if errs >= opts.MaxIdleErrs {
				return fmt.Errorf("fabric: worker %s: coordinator unreachable after %d attempts: %w", opts.ID, errs, err)
			}
			experiments.SleepContext(ctx, experiments.DefaultBackoff.Delay(opts.ID, errs))
			continue
		}
		errs = 0
		if grant == nil {
			experiments.SleepContext(ctx, opts.Poll)
			continue
		}
		w.runBatch(ctx, grant)
	}
	return nil
}

// worker is the pull loop's state.
type worker struct {
	opts   WorkerOptions
	client *http.Client
	runner *experiments.Runner
	// ttlNS remembers the last lease's TTL, the scale httpTimeout derives
	// round-trip bounds from (heartbeats run concurrently with uploads, so
	// it is atomic rather than under a lock).
	ttlNS atomic.Int64
}

// httpTimeout is the bound on one coordinator round-trip: the configured
// override, else 4× the active lease TTL (floor 2s), else 10s before the
// first grant.
func (w *worker) httpTimeout() time.Duration {
	if w.opts.HTTPTimeout > 0 {
		return w.opts.HTTPTimeout
	}
	if ttl := time.Duration(w.ttlNS.Load()); ttl > 0 {
		d := 4 * ttl
		if d < 2*time.Second {
			d = 2 * time.Second
		}
		return d
	}
	return 10 * time.Second
}

// logf forwards a diagnostic to the configured sink.
func (w *worker) logf(format string, args ...any) {
	if w.opts.Logf != nil {
		w.opts.Logf(format, args...)
	}
}

// post sends one JSON request body and reads the full response under
// httpTimeout, so a stalled or black-holed coordinator can never hang the
// pull loop: the deadline covers connect, write, and body read.
func (w *worker) post(ctx context.Context, path string, body []byte) (status int, data []byte, err error) {
	rctx, cancel := context.WithTimeout(ctx, w.httpTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, w.opts.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close() //lint:ignore cellboundary response body close errors are unreportable and harmless after a full read
	data, err = io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// maxResponseBytes bounds a coordinator response (lease grants carry whole
// batches of specs; 64 MiB matches the coordinator's own upload bound).
const maxResponseBytes = 64 << 20

// lease asks for the next batch: a grant, nil (nothing assignable right
// now), or a connection error.
func (w *worker) lease(ctx context.Context) (*leaseGrant, error) {
	body, err := json.Marshal(&leaseRequest{Worker: w.opts.ID})
	if err != nil {
		return nil, err
	}
	status, data, err := w.post(ctx, "/v1/lease", body)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNoContent {
		return nil, nil
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("fabric: lease request: HTTP %d", status)
	}
	grant := &leaseGrant{}
	if err := json.Unmarshal(data, grant); err != nil {
		return nil, fmt.Errorf("fabric: decoding lease grant: %w", err)
	}
	return grant, nil
}

// runBatch computes one leased batch under heartbeats and uploads the
// outcome. Every failure mode — lost lease, dead coordinator, rejected
// upload — ends with the batch abandoned and the loop pulling again; the
// coordinator's expiry/revocation machinery owns recovery.
func (w *worker) runBatch(ctx context.Context, grant *leaseGrant) {
	ttl := time.Duration(grant.TTLNS)
	if ttl <= 0 {
		ttl = 2 * time.Second
	}
	w.ttlNS.Store(int64(ttl))
	// The batch context dies with the lease: a 410 heartbeat cancels any
	// in-flight computation, since its result could never be merged.
	batchCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeat(batchCtx, cancel, grant, ttl)
	}()
	defer func() { cancel(); <-hbDone }()

	w.applyGuards(grant.Guards)
	upload := w.computeBatch(batchCtx, grant)
	if upload == nil {
		return
	}

	var fault chaos.ProcessFault
	var armed bool
	if grant.ProcChaos != 0 {
		fault, armed = chaos.PickProcess(grant.ProcChaos, w.opts.ID, grant.Batch)
	}
	if armed {
		w.logf("fabric: worker %s: chaos %s armed for batch %s", w.opts.ID, fault, grant.Batch)
		switch fault {
		case chaos.ProcKill:
			// Crash after computing, before uploading: the hardest point for
			// the coordinator, which sees only missed heartbeats.
			killSelf()
		case chaos.ProcStall:
			// Outlive the lease, then proceed: heartbeats stop first so the
			// lease expires mid-stall, and the late upload must bounce off
			// the stale-lease check — the late-writer rejection path.
			cancel()
			experiments.SleepContext(ctx, 3*ttl)
		case chaos.ProcCorrupt:
			upload = corruptUpload(upload, grant.ProcChaos, w.opts.ID, grant.Batch)
		}
	}

	status, _, err := w.post(ctx, "/v1/results", upload)
	if err != nil {
		w.logf("fabric: worker %s: uploading batch %s: %v", w.opts.ID, grant.Batch, err)
		return
	}
	if status != http.StatusOK {
		w.logf("fabric: worker %s: batch %s upload rejected: HTTP %d", w.opts.ID, grant.Batch, status)
	}
}

// heartbeat extends the lease at TTL/3 until the batch context ends; a 410
// (lease revoked) cancels the batch.
func (w *worker) heartbeat(ctx context.Context, cancel context.CancelFunc, grant *leaseGrant, ttl time.Duration) {
	body, err := json.Marshal(&heartbeatRequest{Worker: w.opts.ID, Lease: grant.Lease})
	if err != nil {
		return
	}
	interval := ttl / 3
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		code, _, err := w.post(ctx, "/v1/heartbeat", body)
		if err != nil {
			// A transient coordinator hiccup: keep computing; the next beat
			// may land. If the lease meanwhile expires, the upload bounces.
			continue
		}
		if code == http.StatusGone {
			w.logf("fabric: worker %s: lease %d revoked; abandoning batch", w.opts.ID, grant.Lease)
			cancel()
			return
		}
	}
}

// applyGuards installs the coordinator's execution guards on the runner.
func (w *worker) applyGuards(g Guards) {
	w.runner.SetTimeout(time.Duration(g.TimeoutNS))
	w.runner.SetMaxCycles(g.MaxCycles)
	w.runner.SetRetries(g.Retries)
	w.runner.SetRetryBackoff(experiments.Backoff{Seed: g.BackoffSeed})
	w.runner.SetCheck(repro.CheckMode(g.Check))
	w.runner.SetChaos(g.ChaosSeed)
	w.runner.SetSimWorkers(g.SimWorkers)
}

// computeBatch evaluates the batch's cells and renders the upload body:
// header line, then one sealed record or fail row per cell. nil means the
// batch was abandoned (lease lost mid-compute).
func (w *worker) computeBatch(ctx context.Context, grant *leaseGrant) []byte {
	cells := make([]experiments.Cell, 0, len(grant.Specs))
	specErr := make(map[string]error)
	for _, s := range grant.Specs {
		c, err := s.Cell()
		if err != nil {
			// The coordinator round-trips specs before shipping, so this
			// means version skew; surfaced as a structured fail row.
			specErr[s.Key] = err
			continue
		}
		cells = append(cells, c)
	}
	runs, _ := w.runner.RunCellsContext(ctx, cells)
	if ctx.Err() != nil {
		return nil
	}
	failures := make(map[string]*experiments.CellError)
	for _, ce := range w.runner.Failures() {
		failures[ce.Key] = ce
	}
	walls := make(map[string]time.Duration)
	for _, st := range w.runner.Metrics().Stats() {
		walls[st.Key] = st.Wall
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	hdr := &experiments.CheckpointHeader{
		Header:  true,
		Grid:    grant.Grid,
		Version: experiments.BuildVersion(),
		Worker:  w.opts.ID,
		Lease:   grant.Lease,
	}
	if err := enc.Encode(hdr); err != nil {
		w.logf("fabric: worker %s: encoding upload header: %v", w.opts.ID, err)
		return nil
	}
	byKey := make(map[string]int, len(cells))
	for i, c := range cells {
		byKey[c.Key()] = i
	}
	for _, s := range grant.Specs {
		if serr, ok := specErr[s.Key]; ok {
			w.encodeFail(enc, &experiments.CellError{Key: s.Key, Stage: "fabric", Err: serr, Attempts: 1})
			continue
		}
		i := byKey[s.Key]
		if runs[i] != nil {
			rec := experiments.RecordForRun(s.Key, runs[i])
			rec.Worker = w.opts.ID
			rec.WallNS = int64(walls[s.Key])
			if err := rec.Seal(); err != nil {
				w.logf("fabric: worker %s: sealing record %s: %v", w.opts.ID, s.Key, err)
				return nil
			}
			if err := enc.Encode(rec); err != nil {
				w.logf("fabric: worker %s: encoding record %s: %v", w.opts.ID, s.Key, err)
				return nil
			}
			continue
		}
		ce := failures[s.Key]
		if ce == nil {
			ce = &experiments.CellError{Key: s.Key, Stage: "fabric",
				Err: errors.New("fabric: cell produced neither result nor failure"), Attempts: 1}
		}
		w.encodeFail(enc, ce)
	}
	return buf.Bytes()
}

// encodeFail renders one contained cell failure as its wire fail row.
func (w *worker) encodeFail(enc *json.Encoder, ce *experiments.CellError) {
	fl := &failLine{Fail: true, Key: ce.Key, Stage: ce.Stage, Error: ce.Err.Error(), Attempts: ce.Attempts}
	if err := enc.Encode(fl); err != nil {
		w.logf("fabric: worker %s: encoding fail row %s: %v", w.opts.ID, ce.Key, err)
	}
}

// corruptUpload applies the ProcCorrupt chaos fault: one byte of the first
// record line (never the header) flips, so the coordinator's checksum or
// decode check must fire.
func corruptUpload(body []byte, seed int64, worker, batch string) []byte {
	lines := bytes.SplitAfter(body, []byte("\n"))
	for i, line := range lines {
		if i == 0 || len(bytes.TrimSpace(line)) == 0 {
			continue // never the header: a corrupt header is rejected trivially
		}
		lines[i] = chaos.CorruptRecord(seed, worker, batch, line)
		break
	}
	return bytes.Join(lines, nil)
}
