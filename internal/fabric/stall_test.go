package fabric

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/experiments"
)

// TestWorkerHTTPTimeoutDerivation pins the round-trip bound's ladder: the
// explicit override wins; otherwise 4× the active lease TTL with a 2s
// floor; 10s before the first grant. (Before this existed the worker's
// http.Client had no timeout at all, so a stalled coordinator could hang
// the pull loop forever on one read.)
func TestWorkerHTTPTimeoutDerivation(t *testing.T) {
	w := &worker{opts: WorkerOptions{HTTPTimeout: 750 * time.Millisecond}}
	if got := w.httpTimeout(); got != 750*time.Millisecond {
		t.Errorf("explicit override: %v, want 750ms", got)
	}

	w = &worker{}
	if got := w.httpTimeout(); got != 10*time.Second {
		t.Errorf("before first grant: %v, want 10s", got)
	}

	w.ttlNS.Store(int64(10 * time.Second))
	if got := w.httpTimeout(); got != 40*time.Second {
		t.Errorf("ttl 10s: %v, want 4×ttl = 40s", got)
	}

	w.ttlNS.Store(int64(100 * time.Millisecond))
	if got := w.httpTimeout(); got != 2*time.Second {
		t.Errorf("ttl 100ms: %v, want the 2s floor", got)
	}
}

// TestWorkerPostBoundedByStalledCoordinator: a coordinator that accepts
// the connection and then never answers costs the worker one bounded
// round-trip — post returns an error within the timeout, it does not hang.
func TestWorkerPostBoundedByStalledCoordinator(t *testing.T) {
	release := make(chan struct{})
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // black hole: headers in, nothing out
	}))
	// LIFO: release the parked handlers first, then Close can finish.
	defer stalled.Close()
	defer close(release)

	w := &worker{
		opts:   WorkerOptions{Coordinator: stalled.URL, ID: "w-stall", HTTPTimeout: 150 * time.Millisecond},
		client: &http.Client{},
	}
	start := time.Now()
	_, _, err := w.post(context.Background(), "/v1/lease", []byte(`{"worker":"w-stall"}`))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("post against a stalled coordinator returned no error")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("post took %v against a stalled coordinator; the 150ms bound did not fire", elapsed)
	}
}

// TestWorkerGivesUpOnStalledCoordinator: the full pull loop against a
// stalled coordinator burns its connection-failure budget and exits with
// an error instead of hanging — the regression the missing client timeout
// used to cause.
func TestWorkerGivesUpOnStalledCoordinator(t *testing.T) {
	release := make(chan struct{})
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	// LIFO: release the parked handlers first, then Close can finish.
	defer stalled.Close()
	defer close(release)

	done := make(chan error, 1)
	go func() {
		done <- RunWorker(WorkerOptions{
			Coordinator: stalled.URL,
			ID:          "w-giveup",
			HTTPTimeout: 50 * time.Millisecond,
			MaxIdleErrs: 3,
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("worker exited cleanly against a stalled coordinator, want an unreachable error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker still hanging on a stalled coordinator after 30s")
	}
}

// TestCoordinatorShutdownDrains: the coordinator's graceful Shutdown
// finishes in-flight requests and then stops accepting; a second Shutdown
// (or Close) is a safe no-op.
func TestCoordinatorShutdownDrains(t *testing.T) {
	c, err := Start(Options{Grid: experiments.GridSignature("drain-test")})
	if err != nil {
		t.Fatal(err)
	}
	// A live endpoint answers before the drain.
	resp, err := http.Get(c.URL() + "/v1/ping")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get(c.URL() + "/v1/ping"); err == nil {
		t.Fatal("coordinator still serving after Shutdown")
	}
	if err := c.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}
