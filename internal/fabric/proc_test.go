package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/chaos"
	"repro/internal/experiments"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// testWorkerEnv re-enters this test binary as a fabric worker: when it
// names a coordinator URL, TestMain runs the worker pull loop instead of
// the tests, so SpawnLocal can start real worker subprocesses from the
// binary the test is already running.
const testWorkerEnv = "REPRO_FABRIC_TEST_WORKER"

func TestMain(m *testing.M) {
	if coord := os.Getenv(testWorkerEnv); coord != "" {
		id := ""
		for i, a := range os.Args {
			if a == "-id" && i+1 < len(os.Args) {
				id = os.Args[i+1]
			}
		}
		err := RunWorker(WorkerOptions{Coordinator: coord, ID: id, Poll: 20 * time.Millisecond,
			Logf: func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// procGrid is the cell set the subprocess tests sweep: two kernels across
// every scheme — enough batches that both workers are provably busy when
// the crash lands.
func procGrid(t *testing.T) []experiments.Cell {
	t.Helper()
	fig5, err := workloads.ByName("fig5")
	if err != nil {
		t.Fatal(err)
	}
	wavefront, err := workloads.ByName("wavefront")
	if err != nil {
		t.Fatal(err)
	}
	var cells []experiments.Cell
	for _, s := range repro.AllSchemes() {
		cells = append(cells, experiments.Cell{Kernel: fig5, Machine: topology.Dunnington(), Scheme: s, Config: repro.DefaultConfig()})
		cells = append(cells, experiments.Cell{Kernel: wavefront, Machine: topology.Nehalem(), Scheme: s, Config: repro.DefaultConfig()})
	}
	return cells
}

// spawnTestWorkers starts n real worker subprocesses by re-executing this
// test binary in worker mode.
func spawnTestWorkers(t *testing.T, coordURL string, n, respawnMax int) *Pool {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	pool, err := SpawnLocal(coordURL, n, SpawnOptions{
		Command:    []string{exe},
		Env:        []string{testWorkerEnv + "=" + coordURL},
		RespawnMax: respawnMax,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

// simRendering renders the result-bearing parts of a sweep — per cell key,
// the simulated outcome and grouping — as one deterministic byte string.
// Wall-clock fields (map time, cell wall time, worker attribution) are
// execution records, not results, and are excluded by construction.
func simRendering(t *testing.T, cells []experiments.Cell, runs []*repro.Run) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i, c := range cells {
		run := runs[i]
		if run == nil {
			fmt.Fprintf(&buf, "%s\tFAILED\n", c.Key())
			continue
		}
		sim, err := json.Marshal(run.Sim)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "%s\tgroups=%d deps=%v sim=%s\n", c.Key(), run.Groups, run.HasDeps, sim)
	}
	return buf.Bytes()
}

// TestSubprocessWorkerKilledMidSweep is the crash-recovery acceptance test:
// a coordinator shards the grid across two real worker subprocesses, one
// worker is SIGKILLed while it provably holds a lease, and the merged sweep
// must still complete — byte-identical to a clean single-process run, with
// the coordinator's expiry/reassignment counters showing the recovery
// actually happened.
func TestSubprocessWorkerKilledMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cells := procGrid(t)

	var pool atomic.Pointer[Pool]
	var coord *Coordinator
	var killOnce sync.Once
	killedWorker := make(chan string, 1)
	var err error
	coord, err = Start(Options{
		Grid:        "grid-kill",
		TTL:         500 * time.Millisecond,
		BatchSize:   1, // many batches: both workers hold leases throughout
		ReassignMax: 6, // generous: a loaded host can starve heartbeats past the TTL
		MergeHook: func(worker string, id BatchID, done, total int) {
			// At each merge, look for a worker that is mid-batch right now —
			// holding a live lease — and SIGKILL it, once. The merge hook is
			// synchronous in the results handler, so the victim's lease is
			// provably live when the kill lands.
			p := pool.Load()
			if p == nil {
				return
			}
			for _, holder := range coord.LeaseHolders() {
				if holder == worker {
					continue // the uploader is between batches, not mid-batch
				}
				killOnce.Do(func() {
					if p.Kill(holder) {
						killedWorker <- holder
					}
				})
				return
			}
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	p := spawnTestWorkers(t, coord.URL(), 2, -1) // no respawn: recovery must come from reassignment alone
	defer p.Close()
	pool.Store(p)

	fabricRunner := experiments.NewRunner()
	fabricRunner.SetDistributor(coord)
	fabricRuns, fabricErr := fabricRunner.RunCells(cells)
	if fabricErr != nil {
		t.Fatalf("distributed sweep failed: %v", fabricErr)
	}

	var victim string
	select {
	case victim = <-killedWorker:
		t.Logf("killed worker %s mid-batch", victim)
	default:
		t.Fatal("no worker was ever mid-batch to kill; the crash path went unexercised")
	}

	localRunner := experiments.NewRunner()
	localRuns, localErr := localRunner.RunCells(cells)
	if localErr != nil {
		t.Fatalf("single-process sweep failed: %v", localErr)
	}
	got, want := simRendering(t, cells, fabricRuns), simRendering(t, cells, localRuns)
	if !bytes.Equal(got, want) {
		t.Errorf("merged grid differs from the single-process run:\n--- fabric ---\n%s--- local ---\n%s", got, want)
	}
	if n := len(fabricRunner.Failures()); n != 0 {
		t.Errorf("crash recovery surfaced %d failures; reassignment should have recovered every cell", n)
	}
	ctr := coord.Counters()
	if ctr.Expired < 1 || ctr.Reassigned < 1 {
		t.Errorf("counters = %+v: the killed worker's lease should have expired and its batch reassigned", ctr)
	}
	// Attribution: the merged stats name which worker computed each cell,
	// and the surviving worker carried cells.
	byWorker := make(map[string]int)
	for _, st := range fabricRunner.Metrics().Stats() {
		if st.Worker != "" {
			byWorker[st.Worker]++
		}
	}
	if len(byWorker) == 0 {
		t.Error("no per-worker attribution in the merged cell stats")
	}
	if byWorker[victim] == len(cells) {
		t.Errorf("every cell attributed to the killed worker %s: %v", victim, byWorker)
	}
}

// chaosSeedFor finds a process-chaos seed under which some first-attempt
// batch faults for BOTH workers — so whichever of the two leases it, a
// process fault provably fires during the sweep. Purely computed.
func chaosSeedFor(grid string, batches int) (int64, bool) {
	for seed := int64(1); seed < 500; seed++ {
		for i := 0; i < batches; i++ {
			tok := BatchID{Grid: grid, Index: i, Attempt: 1}.Token()
			_, w1 := chaos.PickProcess(seed, "w1", tok)
			_, w2 := chaos.PickProcess(seed, "w2", tok)
			if w1 && w2 {
				return seed, true
			}
		}
	}
	return 0, false
}

// TestSubprocessChaosSweep arms process-level chaos (seeded worker kills,
// stalls and corrupt uploads) over real worker subprocesses with respawn
// supervision, and asserts the contract of a chaos sweep: every injected
// fault is either recovered (the cell's result is identical to a clean
// single-process run) or surfaced as a structured stage-"fabric" fail row —
// nothing hangs, nothing is silently lost, nothing is silently wrong.
func TestSubprocessChaosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cells := procGrid(t)
	const grid = "grid-chaos"
	seed, ok := chaosSeedFor(grid, len(cells)) // BatchSize 1: one batch per cell
	if !ok {
		t.Fatal("no chaos seed faults a first-attempt batch for both workers")
	}
	t.Logf("process chaos seed %d", seed)

	coord, err := Start(Options{
		Grid:          grid,
		TTL:           400 * time.Millisecond,
		BatchSize:     1,
		ReassignMax:   6, // generous: chained faults must exhaust, not flake
		ProcChaosSeed: seed,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	p := spawnTestWorkers(t, coord.URL(), 2, 16) // supervision replaces chaos-killed workers
	defer p.Close()

	fabricRunner := experiments.NewRunner()
	fabricRunner.SetDistributor(coord)
	fabricRuns, _ := fabricRunner.RunCells(cells)

	// Coverage: every cell resolved — a run or a structured fabric failure.
	fails := make(map[string]string)
	for _, ce := range fabricRunner.Failures() {
		fails[ce.Key] = ce.Stage
	}
	for i, c := range cells {
		if fabricRuns[i] == nil {
			stage, failed := fails[c.Key()]
			if !failed {
				t.Errorf("cell %s: no result and no structured failure", c.Key())
			} else if stage != "fabric" {
				t.Errorf("cell %s: failed at stage %q; chaos faults must surface as stage fabric", c.Key(), stage)
			}
		}
	}
	// Correctness: every recovered cell matches the clean run exactly.
	localRunner := experiments.NewRunner()
	localRuns, localErr := localRunner.RunCells(cells)
	if localErr != nil {
		t.Fatalf("single-process sweep failed: %v", localErr)
	}
	for i, c := range cells {
		if fabricRuns[i] == nil {
			continue
		}
		fj, _ := json.Marshal(fabricRuns[i].Sim)
		lj, _ := json.Marshal(localRuns[i].Sim)
		if !bytes.Equal(fj, lj) {
			t.Errorf("cell %s: chaos-sweep result differs from clean run:\n  fabric %s\n  local  %s", c.Key(), fj, lj)
		}
	}
	// The machinery provably fired: the seed guarantees at least one fault
	// on a first-attempt batch, and every fault class leaves a counter
	// trace (kill/stall → expiry; corrupt → checksum rejection).
	ctr := coord.Counters()
	if ctr.Expired+ctr.RejectedCorrupt+ctr.RejectedStale == 0 {
		t.Errorf("counters = %+v: chaos was armed but no fault left a trace", ctr)
	}
	if ctr.Reassigned == 0 {
		t.Errorf("counters = %+v: no batch was ever reassigned under chaos", ctr)
	}
	t.Logf("chaos counters: %+v", ctr)
}
