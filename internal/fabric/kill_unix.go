//go:build unix

package fabric

import (
	"os"
	"syscall"
)

// killSelf hard-crashes the worker process, modelling an OOM kill or node
// loss: SIGKILL cannot be caught, so no deferred cleanup, no upload, no
// goodbye — exactly the failure the lease TTL exists to recover from.
func killSelf() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	//lint:ignore cellboundary deliberate hard-crash: chaos injection models an OOM kill; runs only in a worker subprocess, never inside a sweep
	os.Exit(137) // unreachable on unix; belt and braces
}
