package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/cachesim"
	"repro/internal/experiments"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// --- wire format ---

// TestSpecRoundTrip: named, cross-evaluated and scaled-kernel cells all
// survive the wire — the reconstruction carries the exact cell key.
func TestSpecRoundTrip(t *testing.T) {
	fig5, err := workloads.ByName("fig5")
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := workloads.Scaled("galgel", 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := repro.DefaultConfig()
	view := repro.DefaultConfig()
	view.MapView = topology.Nehalem()
	cells := []experiments.Cell{
		{Kernel: fig5, Machine: topology.Dunnington(), Scheme: repro.SchemeBase, Config: cfg},
		{Kernel: fig5, Machine: topology.Nehalem(), MapMachine: topology.Dunnington(), Scheme: repro.SchemeCombined, Config: cfg},
		{Kernel: scaled, Machine: topology.Dunnington(), Scheme: repro.SchemeTopologyAware, Config: cfg},
		{Kernel: fig5, Machine: topology.Dunnington(), Scheme: repro.SchemeBase, Config: view},
	}
	for _, c := range cells {
		spec, err := SpecFor(c)
		if err != nil {
			t.Errorf("SpecFor(%s): %v", c.Key(), err)
			continue
		}
		// Through JSON, as the wire would carry it.
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		decoded := &CellSpec{}
		if err := json.Unmarshal(data, decoded); err != nil {
			t.Fatal(err)
		}
		back, err := decoded.Cell()
		if err != nil {
			t.Errorf("spec for %s does not reconstruct: %v", c.Key(), err)
			continue
		}
		if back.Key() != c.Key() {
			t.Errorf("round trip changed identity:\n  sent %s\n  got  %s", c.Key(), back.Key())
		}
	}
}

// TestSpecRejectsUnshippable: a cell whose machine has no registry name
// cannot be denoted on the wire and is declined, not mangled.
func TestSpecRejectsUnshippable(t *testing.T) {
	fig5, err := workloads.ByName("fig5")
	if err != nil {
		t.Fatal(err)
	}
	custom := topology.Dunnington()
	custom.Name = "sensitivity-variant-17"
	c := experiments.Cell{Kernel: fig5, Machine: custom, Scheme: repro.SchemeBase, Config: repro.DefaultConfig()}
	if _, err := SpecFor(c); err == nil {
		t.Fatal("cell with an unnamed machine was shipped")
	}
}

// --- lease table (fake clock; no HTTP, no sleeping) ---

// tableSpecs builds n synthetic one-cell specs for table-level tests.
func tableSpecs(n int) []*CellSpec {
	specs := make([]*CellSpec, n)
	for i := range specs {
		specs[i] = &CellSpec{Key: fmt.Sprintf("cell-%d", i)}
	}
	return specs
}

// sealedRecord builds a minimal sealed record for a key.
func sealedRecord(t *testing.T, key, worker string) *experiments.CheckpointRecord {
	t.Helper()
	rec := &experiments.CheckpointRecord{Key: key, Sim: &cachesim.Result{TotalCycles: 1}, Worker: worker}
	if err := rec.Seal(); err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestLeaseExpiryReassignsWithBackoff: a missed-heartbeat lease is revoked,
// the batch requeues under a backoff window, and the next assignment is a
// new attempt of the same batch.
func TestLeaseExpiryReassignsWithBackoff(t *testing.T) {
	now := time.Unix(1000, 0)
	ttl := time.Second
	tab := newTable("g", tableSpecs(1), 4, ttl, 3, experiments.Backoff{Base: 10 * time.Second, Max: 10 * time.Second})
	b, lease := tab.acquire("w1", now)
	if b == nil || b.id.Attempt != 1 {
		t.Fatalf("first acquire: batch %+v", b)
	}
	// Heartbeats extend the lease: past the original deadline but within
	// the extended one, the lease is still live.
	if err := tab.heartbeat(lease, now.Add(ttl/2)); err != nil {
		t.Fatalf("heartbeat on a live lease: %v", err)
	}
	if n := tab.expire(now.Add(ttl + ttl/2 - time.Millisecond)); n != 0 {
		t.Fatalf("expire revoked %d leases before the extended deadline", n)
	}
	// Now miss heartbeats past the deadline: revoked and requeued.
	deadAt := now.Add(2*ttl + time.Millisecond)
	if n := tab.expire(deadAt); n != 1 {
		t.Fatalf("expire revoked %d leases, want 1", n)
	}
	if err := tab.heartbeat(lease, deadAt); err == nil {
		t.Fatal("heartbeat on a revoked lease succeeded")
	}
	// Backoff window: the delay jitters within [5s, 15s) of the 10s base,
	// so the batch is not assignable right after revocation and is
	// assignable once the window has certainly passed.
	if b2, _ := tab.acquire("w2", deadAt.Add(time.Millisecond)); b2 != nil {
		t.Fatal("batch reassigned inside its backoff window")
	}
	b2, _ := tab.acquire("w2", deadAt.Add(16*time.Second))
	if b2 == nil {
		t.Fatal("batch not reassignable after its backoff window")
	}
	if b2.id.Attempt != 2 {
		t.Fatalf("reassigned batch has attempt %d, want 2", b2.id.Attempt)
	}
	if tab.reassigned != 1 {
		t.Fatalf("reassigned counter = %d, want 1", tab.reassigned)
	}
}

// TestLeaseBudgetExhaustion: a batch that keeps losing its lease resolves
// as structured per-cell failures (stage "fabric") instead of cycling
// forever, and the round completes.
func TestLeaseBudgetExhaustion(t *testing.T) {
	now := time.Unix(1000, 0)
	ttl := time.Second
	tab := newTable("g", tableSpecs(2), 4, ttl, 1, experiments.Backoff{Base: time.Millisecond, Max: time.Millisecond})
	for attempt := 1; ; attempt++ {
		b, _ := tab.acquire("evil", now)
		if b == nil {
			break
		}
		if b.id.Attempt != attempt {
			t.Fatalf("attempt %d handed out as %d", attempt, b.id.Attempt)
		}
		now = now.Add(ttl + time.Hour)
		tab.expire(now)
		now = now.Add(time.Second) // step past the (millisecond) backoff window
	}
	select {
	case <-tab.done:
	default:
		t.Fatal("budget-exhausted round did not complete")
	}
	out := tab.outcome()
	if len(out.Failures) != 2 {
		t.Fatalf("budget exhaustion produced %d failures, want 2", len(out.Failures))
	}
	for key, ce := range out.Failures {
		if ce.Stage != "fabric" {
			t.Errorf("failure %s has stage %q, want fabric", key, ce.Stage)
		}
		if !strings.Contains(ce.Err.Error(), "reassignment budget") {
			t.Errorf("failure %s does not say why: %v", key, ce.Err)
		}
	}
	if tab.budgetFailed != 1 {
		t.Fatalf("budgetFailed counter = %d, want 1", tab.budgetFailed)
	}
}

// TestCompleteValidation: uploads with foreign cells, missing cells, the
// wrong worker or a stale lease are rejected whole; a coherent upload
// resolves the batch.
func TestCompleteValidation(t *testing.T) {
	now := time.Unix(1000, 0)
	tab := newTable("g", tableSpecs(2), 4, time.Second, 3, experiments.Backoff{})
	b, lease := tab.acquire("w1", now)
	if b == nil {
		t.Fatal("no batch")
	}
	good := map[string]*experiments.CheckpointRecord{
		"cell-0": sealedRecord(t, "cell-0", "w1"),
		"cell-1": sealedRecord(t, "cell-1", "w1"),
	}
	if _, _, err := tab.complete(lease, "w2", now, good, nil); err == nil {
		t.Fatal("upload from the wrong worker accepted")
	}
	foreign := map[string]*experiments.CheckpointRecord{"cell-9": sealedRecord(t, "cell-9", "w1")}
	if _, _, err := tab.complete(lease, "w1", now, foreign, nil); err == nil {
		t.Fatal("upload with a foreign cell accepted")
	}
	partial := map[string]*experiments.CheckpointRecord{"cell-0": good["cell-0"]}
	if _, _, err := tab.complete(lease, "w1", now, partial, nil); err == nil {
		t.Fatal("upload missing a batch cell accepted")
	}
	if _, _, err := tab.complete(lease, "w1", now.Add(2*time.Second), good, nil); err != errStaleLease {
		t.Fatalf("upload on an expired lease: %v, want errStaleLease", err)
	}
	// Revoke the expired lease, wait out the backoff, and land the coherent
	// upload on the fresh lease.
	tab.expire(now.Add(2 * time.Second))
	b2, lease2 := tab.acquire("w1", now.Add(time.Hour))
	if b2 == nil {
		t.Fatal("no batch after requeue")
	}
	if _, _, err := tab.complete(lease2, "w1", now.Add(time.Hour), good, nil); err != nil {
		t.Fatalf("coherent upload rejected: %v", err)
	}
	select {
	case <-tab.done:
	default:
		t.Fatal("completed round not done")
	}
	// The uploader's final in-flight heartbeat can race its own upload's
	// merge: a heartbeat on the resolved lease is benign (errLeaseDone),
	// not a stale-lease fault — but a duplicate upload under it, or a
	// heartbeat under the long-revoked first lease, is still stale.
	if err := tab.heartbeat(lease2, now.Add(time.Hour)); err != errLeaseDone {
		t.Fatalf("heartbeat on the resolved lease: %v, want errLeaseDone", err)
	}
	if _, _, err := tab.complete(lease2, "w1", now.Add(time.Hour), good, nil); err != errStaleLease {
		t.Fatalf("duplicate upload on the resolved lease: %v, want errStaleLease", err)
	}
	if err := tab.heartbeat(lease, now.Add(time.Hour)); err != errStaleLease {
		t.Fatalf("heartbeat on the revoked lease: %v, want errStaleLease", err)
	}
}

// --- protocol over HTTP (real coordinator, scripted client) ---

// leaseFromCoordinator asks the live coordinator for a grant, polling past
// backoff windows.
func leaseFromCoordinator(t *testing.T, url, worker string) *leaseGrant {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		body, _ := json.Marshal(&leaseRequest{Worker: worker})
		resp, err := http.Post(url+"/v1/lease", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusNoContent {
			resp.Body.Close()
			time.Sleep(10 * time.Millisecond)
			continue
		}
		grant := &leaseGrant{}
		err = json.NewDecoder(resp.Body).Decode(grant)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return grant
	}
	t.Fatal("no lease granted within 10s")
	return nil
}

// uploadBody renders a result upload for the grant: header plus one sealed
// record per spec (computed for real on a local runner). corrupt breaks the
// first record's seal.
func uploadBody(t *testing.T, grant *leaseGrant, grid, worker string, corrupt bool) []byte {
	t.Helper()
	r := experiments.NewRunner()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	hdr := &experiments.CheckpointHeader{Header: true, Grid: grid, Version: experiments.BuildVersion(), Worker: worker, Lease: grant.Lease}
	if err := enc.Encode(hdr); err != nil {
		t.Fatal(err)
	}
	for _, s := range grant.Specs {
		c, err := s.Cell()
		if err != nil {
			t.Fatal(err)
		}
		run, err := r.Evaluate(c.Kernel, c.Machine, c.Scheme, c.Config)
		if err != nil {
			t.Fatal(err)
		}
		rec := experiments.RecordForRun(s.Key, run)
		rec.Worker = worker
		if err := rec.Seal(); err != nil {
			t.Fatal(err)
		}
		if corrupt {
			rec.Sum = "feedfacefeedface"
			corrupt = false
		}
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// postResults uploads a body and returns the HTTP status.
func postResults(t *testing.T, url string, body []byte) int {
	t.Helper()
	resp, err := http.Post(url+"/v1/results", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

// TestProtocolRejections drives a full distribution round against a real
// coordinator with a scripted worker: a foreign-grid upload bounces, a
// checksum-corrupt upload bounces and revokes the lease, a stale upload
// after revocation bounces with 410, and the honest retry completes the
// round with the right counters.
func TestProtocolRejections(t *testing.T) {
	fig5, err := workloads.ByName("fig5")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := Start(Options{
		Grid:        "grid-proto",
		TTL:         time.Minute, // only explicit revocations in this test
		BatchSize:   4,
		ReassignMax: 5,
		Backoff:     experiments.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	cells := []experiments.Cell{{Kernel: fig5, Machine: topology.Dunnington(), Scheme: repro.SchemeBase, Config: repro.DefaultConfig()}}
	type distResult struct {
		out *experiments.DistOutcome
		err error
	}
	distCh := make(chan distResult, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() {
		out, derr := coord.DistributeContext(ctx, cells)
		distCh <- distResult{out, derr}
	}()

	grant := leaseFromCoordinator(t, coord.URL(), "w1")
	if grant.Grid != "grid-proto" || len(grant.Specs) != 1 {
		t.Fatalf("unexpected grant: %+v", grant)
	}

	// Foreign grid: rejected as incoherent; the lease dies with it.
	if code := postResults(t, coord.URL(), uploadBody(t, grant, "grid-other", "w1", false)); code != http.StatusBadRequest {
		t.Fatalf("foreign-grid upload: HTTP %d, want 400", code)
	}
	// Checksum corruption on the requeued batch's fresh lease.
	grant2 := leaseFromCoordinator(t, coord.URL(), "w1")
	if grant2.Lease == grant.Lease {
		t.Fatal("revoked lease was handed out again")
	}
	if code := postResults(t, coord.URL(), uploadBody(t, grant2, "grid-proto", "w1", true)); code != http.StatusBadRequest {
		t.Fatalf("corrupt upload: HTTP %d, want 400", code)
	}
	// The corrupt upload revoked lease 2: a late coherent upload under it
	// must bounce as stale, not merge.
	if code := postResults(t, coord.URL(), uploadBody(t, grant2, "grid-proto", "w1", false)); code != http.StatusGone {
		t.Fatalf("stale-lease upload: HTTP %d, want 410", code)
	}
	// Honest completion on the third lease.
	grant3 := leaseFromCoordinator(t, coord.URL(), "w1")
	if grant3.Batch == grant.Batch {
		t.Fatalf("batch token did not change across attempts: %s", grant3.Batch)
	}
	if code := postResults(t, coord.URL(), uploadBody(t, grant3, "grid-proto", "w1", false)); code != http.StatusOK {
		t.Fatalf("honest upload: HTTP %d, want 200", code)
	}

	res := <-distCh
	if res.err != nil {
		t.Fatalf("DistributeContext: %v", res.err)
	}
	if len(res.out.Records) != 1 || len(res.out.Failures) != 0 {
		t.Fatalf("outcome: %d records, %d failures; want 1, 0", len(res.out.Records), len(res.out.Failures))
	}
	ctr := coord.Counters()
	if ctr.RejectedIncoherent != 1 || ctr.RejectedCorrupt != 1 || ctr.RejectedStale != 1 {
		t.Fatalf("counters = %+v, want 1 incoherent, 1 corrupt, 1 stale rejection", ctr)
	}
	if ctr.Reassigned != 2 {
		t.Fatalf("counters = %+v, want 2 reassignments", ctr)
	}
}

// TestEvilWorkerBudget: a worker that leases batches and never delivers
// drives every batch to budget exhaustion — the round still completes, as
// structured stage-"fabric" failures, never a hang.
func TestEvilWorkerBudget(t *testing.T) {
	fig5, err := workloads.ByName("fig5")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := Start(Options{
		Grid:        "grid-evil",
		TTL:         50 * time.Millisecond,
		BatchSize:   4,
		ReassignMax: 1,
		Backoff:     experiments.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// The evil client: lease whatever is assignable, deliver nothing, never
	// heartbeat. It exits when the coordinator closes its port.
	evilDone := make(chan struct{})
	go func() {
		defer close(evilDone)
		for {
			body, _ := json.Marshal(&leaseRequest{Worker: "evil"})
			resp, perr := http.Post(coord.URL()+"/v1/lease", "application/json", bytes.NewReader(body))
			if perr != nil {
				return // coordinator closed; round over
			}
			resp.Body.Close()
			time.Sleep(5 * time.Millisecond)
		}
	}()

	cells := []experiments.Cell{{Kernel: fig5, Machine: topology.Dunnington(), Scheme: repro.SchemeBase, Config: repro.DefaultConfig()}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, err := coord.DistributeContext(ctx, cells)
	coord.Close() // stop the evil poller
	<-evilDone
	if err != nil {
		t.Fatalf("DistributeContext: %v", err)
	}
	if len(out.Failures) != 1 {
		t.Fatalf("outcome has %d failures, want 1", len(out.Failures))
	}
	for _, ce := range out.Failures {
		if ce.Stage != "fabric" {
			t.Errorf("failure stage %q, want fabric", ce.Stage)
		}
	}
	if ctr := coord.Counters(); ctr.BudgetFailed != 1 || ctr.Expired < 2 {
		t.Fatalf("counters = %+v, want 1 budget failure and >=2 expiries", ctr)
	}
}

// --- worker loop end to end (in-process) ---

// chaoticSeed finds a chaos seed that poisons at least one but not all of
// the cells, so a distributed chaos sweep exercises both the record path
// and the fail-row path. Purely computed — no cells run.
func chaoticSeed(t *testing.T, cells []experiments.Cell) int64 {
	t.Helper()
	for seed := int64(1); seed < 500; seed++ {
		poisoned := 0
		for _, c := range cells {
			mapfor := ""
			if c.MapMachine != nil {
				mapfor = c.MapMachine.Name
			}
			if _, ok := repro.ChaosFaultFor(seed, c.Kernel.Name, c.Machine.Name, mapfor, c.Scheme); ok {
				poisoned++
			}
		}
		if poisoned > 0 && poisoned < len(cells) {
			return seed
		}
	}
	t.Fatal("no chaos seed poisons a strict subset of the cells")
	return 0
}

// TestWorkerLoopEndToEnd runs a real RunWorkerContext pull loop (in
// process) against a coordinator, with a per-cell chaos seed poisoning one
// of the cells: the distributed sweep must produce exactly the results and
// exactly the contained failures of a single-process run — same sim
// outputs, same failed keys, same stages.
func TestWorkerLoopEndToEnd(t *testing.T) {
	fig5, err := workloads.ByName("fig5")
	if err != nil {
		t.Fatal(err)
	}
	wavefront, err := workloads.ByName("wavefront")
	if err != nil {
		t.Fatal(err)
	}
	base := []experiments.Cell{
		{Kernel: fig5, Machine: topology.Dunnington(), Scheme: repro.SchemeBase},
		{Kernel: fig5, Machine: topology.Dunnington(), Scheme: repro.SchemeCombined},
		{Kernel: wavefront, Machine: topology.Nehalem(), Scheme: repro.SchemeTopologyAware},
	}
	seed := chaoticSeed(t, base)
	cells := make([]experiments.Cell, len(base))
	for i, c := range base {
		cfg := repro.DefaultConfig()
		cfg.ChaosSeed = seed // part of the cell identity; travels in the spec
		c.Config = cfg
		cells[i] = c
	}

	coord, err := Start(Options{Grid: "grid-e2e", TTL: 2 * time.Second, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- RunWorkerContext(wctx, WorkerOptions{Coordinator: coord.URL(), ID: "wtest", Poll: 5 * time.Millisecond})
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	fabricRunner := experiments.NewRunner()
	fabricRunner.SetDistributor(coord)
	fabricRunner.SetBaseContext(ctx)
	fabricRuns, fabricErr := fabricRunner.RunCells(cells)

	localRunner := experiments.NewRunner()
	localRuns, localErr := localRunner.RunCells(cells)

	if (fabricErr == nil) != (localErr == nil) {
		t.Fatalf("fabric err %v, local err %v", fabricErr, localErr)
	}
	for i := range cells {
		fr, lr := fabricRuns[i], localRuns[i]
		if (fr == nil) != (lr == nil) {
			t.Fatalf("cell %s: fabric run nil=%v, local nil=%v", cells[i].Key(), fr == nil, lr == nil)
		}
		if fr == nil {
			continue
		}
		fj, _ := json.Marshal(fr.Sim)
		lj, _ := json.Marshal(lr.Sim)
		if !bytes.Equal(fj, lj) {
			t.Errorf("cell %s: distributed sim result differs from local:\n  fabric %s\n  local  %s", cells[i].Key(), fj, lj)
		}
	}
	// The contained failures must match key-for-key and stage-for-stage.
	fabricFails := make(map[string]string)
	for _, ce := range fabricRunner.Failures() {
		fabricFails[ce.Key] = ce.Stage
	}
	localFails := make(map[string]string)
	for _, ce := range localRunner.Failures() {
		localFails[ce.Key] = ce.Stage
	}
	if len(localFails) == 0 {
		t.Fatal("chaos seed poisoned no cell; the fail-row path went unexercised")
	}
	if len(fabricFails) != len(localFails) {
		t.Fatalf("fabric failures %v, local failures %v", fabricFails, localFails)
	}
	for key, stage := range localFails {
		if fabricFails[key] != stage {
			t.Errorf("cell %s: fabric stage %q, local stage %q", key, fabricFails[key], stage)
		}
	}
	if n := fabricRunner.DistributedCells(); n == 0 {
		t.Fatal("no cells were completed by the fabric")
	}
	if n := fabricRunner.Evaluations(); n != 0 {
		t.Fatalf("fabric runner evaluated %d cells locally; every cell should have distributed", n)
	}
	wcancel()
	if werr := <-workerDone; werr != nil {
		t.Fatalf("worker loop: %v", werr)
	}
}

// TestRunnerFallsBackWhenDistributorFails: a distributor that errors on
// every round degrades to in-process execution — same results, nothing
// lost, nothing distributed.
func TestRunnerFallsBackWhenDistributorFails(t *testing.T) {
	fig5, err := workloads.ByName("fig5")
	if err != nil {
		t.Fatal(err)
	}
	r := experiments.NewRunner()
	r.SetDistributor(deadDistributor{})
	cells := []experiments.Cell{{Kernel: fig5, Machine: topology.Dunnington(), Scheme: repro.SchemeBase, Config: repro.DefaultConfig()}}
	runs, err := r.RunCells(cells)
	if err != nil {
		t.Fatalf("fallback sweep failed: %v", err)
	}
	if runs[0] == nil || runs[0].Sim == nil {
		t.Fatal("fallback sweep produced no result")
	}
	if r.DistributedCells() != 0 || r.Evaluations() == 0 {
		t.Fatalf("fallback accounting wrong: %d distributed, %d evaluated", r.DistributedCells(), r.Evaluations())
	}
}

// deadDistributor models a coordinator that errors on every round.
type deadDistributor struct{}

func (deadDistributor) DistributeContext(ctx context.Context, cells []experiments.Cell) (*experiments.DistOutcome, error) {
	return nil, fmt.Errorf("fabric: coordinator is gone")
}
