package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/check"
	"repro/internal/experiments"
	"repro/internal/serve"
)

// Options configures a coordinator.
type Options struct {
	// Grid is the sweep's grid signature (experiments.GridSignature);
	// uploads from any other sweep are rejected. Required.
	Grid string
	// TTL is the lease time-to-live: a worker that does not heartbeat
	// within it loses its batch. Default 2s.
	TTL time.Duration
	// BatchSize is how many cells one lease covers. Default 4.
	BatchSize int
	// ReassignMax bounds reassignments per batch: after 1+ReassignMax
	// assignments the batch resolves as structured per-cell failures
	// (stage "fabric") instead of cycling forever. Default 3.
	ReassignMax int
	// Backoff delays a revoked batch's next assignment; the zero value
	// selects experiments.DefaultBackoff.
	Backoff experiments.Backoff
	// Guards are the execution guards every worker runs cells under.
	Guards Guards
	// ProcChaosSeed arms process-level fault injection on workers (0 = off;
	// see chaos.PickProcess). Test mode only: a chaos fabric exists to prove
	// the recovery machinery, not to produce results faster.
	ProcChaosSeed int64
	// Listen is the coordinator's listen address. Default 127.0.0.1:0
	// (an ephemeral local port; URL() reports where it landed).
	Listen string
	// Progress, when non-nil, receives merged-cell counts as uploads land.
	Progress func(done, total int)
	// MergeHook, when non-nil, runs synchronously in the results handler
	// after each batch merges — a deterministic protocol point tests use to
	// kill workers mid-sweep.
	MergeHook func(worker string, id BatchID, done, total int)
	// Logf, when non-nil, receives protocol diagnostics (revocations,
	// rejections, declines).
	Logf func(format string, args ...any)
}

// Counters are the coordinator's cumulative fault-handling statistics:
// how often the recovery machinery actually fired. Tests assert on them;
// sweeps may log them.
type Counters struct {
	// Expired counts leases revoked by the expiry sweeper (missed
	// heartbeats: crashed, stalled or partitioned workers).
	Expired int
	// Reassigned counts batch requeues (after expiry or a rejected upload).
	Reassigned int
	// BudgetFailed counts batches resolved as failures after exhausting
	// their reassignment budget.
	BudgetFailed int
	// RejectedStale counts heartbeats and uploads refused for a dead lease.
	RejectedStale int
	// RejectedCorrupt counts uploads refused for undecodable or
	// checksum-failing payloads.
	RejectedCorrupt int
	// RejectedIncoherent counts uploads refused for foreign or missing
	// cells, wrong grid, wrong build, or a worker identity mismatch.
	RejectedIncoherent int
}

// Coordinator owns one sweep's grid and leases its batches to workers over
// HTTP. It implements experiments.Distributor: install it on a Runner with
// SetDistributor and every RunCells batch is sharded across the worker
// pool, with in-process fallback for anything the fabric cannot complete.
type Coordinator struct {
	opts Options
	ln   net.Listener
	srv  *http.Server

	mu  sync.Mutex
	cur *table // active distribution round, nil between rounds

	// now is the coordinator's clock, injectable for lease-expiry tests.
	now func() time.Time

	ctrMu     sync.Mutex
	ctr       Counters
	rounds    atomic.Uint64
	closeOnce sync.Once
	closeErr  error
}

// Start launches a coordinator serving the fabric protocol on opts.Listen.
// Close releases the port and fails all outstanding worker requests.
func Start(opts Options) (*Coordinator, error) {
	if opts.Grid == "" {
		return nil, errors.New("fabric: Options.Grid is required")
	}
	if opts.TTL <= 0 {
		opts.TTL = 2 * time.Second
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 4
	}
	if opts.ReassignMax <= 0 {
		opts.ReassignMax = 3
	}
	if opts.Listen == "" {
		opts.Listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		return nil, fmt.Errorf("fabric: listen %s: %w", opts.Listen, err)
	}
	c := &Coordinator{opts: opts, ln: ln, now: time.Now}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ping", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusNoContent) })
	mux.HandleFunc("/v1/lease", c.handleLease)
	mux.HandleFunc("/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/v1/results", c.handleResults)
	// Hardened like topomapd: header/read/idle timeouts and bounded header
	// memory, so a slow or stalled worker connection cannot pin the
	// coordinator (serve.Harden is the shared helper).
	c.srv = serve.Harden(&http.Server{Handler: mux})
	go func() {
		// Serve returns http.ErrServerClosed on Close; anything else means
		// the coordinator died and workers will fall back in-process.
		if serr := c.srv.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			c.logf("fabric: coordinator server: %v", serr)
		}
	}()
	return c, nil
}

// URL is the coordinator's base URL, for workers.
func (c *Coordinator) URL() string { return "http://" + c.ln.Addr().String() }

// Close shuts the coordinator down immediately: the port is released and
// every outstanding worker request fails. Safe to call more than once.
func (c *Coordinator) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.srv.Close() })
	return c.closeErr
}

// Shutdown drains the coordinator gracefully: the listener closes, worker
// exchanges already in flight (a lease grant, a result upload mid-merge)
// finish under ctx's deadline, and stragglers are then force-closed.
// Like Close, first call wins; later Close/Shutdown calls return its
// result.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.closeOnce.Do(func() { c.closeErr = serve.Shutdown(ctx, c.srv) })
	return c.closeErr
}

// Counters snapshots the cumulative fault-handling statistics.
func (c *Coordinator) Counters() Counters {
	c.ctrMu.Lock()
	defer c.ctrMu.Unlock()
	return c.ctr
}

// Rounds reports how many distribution rounds the coordinator has run.
func (c *Coordinator) Rounds() uint64 { return c.rounds.Load() }

// LeaseHolders lists the workers currently holding live leases in the
// active round, sorted — the hook crash tests use to kill a worker that is
// provably mid-batch. Empty between rounds.
func (c *Coordinator) LeaseHolders() []string {
	t := c.table()
	if t == nil {
		return nil
	}
	return t.holders()
}

// logf forwards a diagnostic to the configured sink.
func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// table returns the active round's lease table, nil between rounds.
func (c *Coordinator) table() *table {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

// Distribute is DistributeContext under context.Background, for callers
// without a sweep context.
func (c *Coordinator) Distribute(cells []experiments.Cell) (*experiments.DistOutcome, error) {
	//lint:ignore ctxflow convenience wrapper: delegates to DistributeContext immediately
	return c.DistributeContext(context.Background(), cells)
}

// DistributeContext runs one distribution round: the shippable cells are
// sharded into leased batches, workers pull and compute them, and the
// merged outcome — verified to cover exactly the shipped set — is returned
// for the runner to install. Cells that do not round-trip through their
// wire spec are declined (absent from the outcome), so the runner computes
// them in-process. An error (dead context, merge verification failure)
// makes the runner fall back entirely; it never loses cells.
func (c *Coordinator) DistributeContext(ctx context.Context, cells []experiments.Cell) (*experiments.DistOutcome, error) {
	specs := make([]*CellSpec, 0, len(cells))
	for _, cell := range cells {
		s, err := SpecFor(cell)
		if err != nil {
			c.logf("fabric: declining cell (computing it in-process): %v", err)
			continue
		}
		specs = append(specs, s)
	}
	if len(specs) == 0 {
		return &experiments.DistOutcome{}, nil
	}
	t := newTable(c.opts.Grid, specs, c.opts.BatchSize, c.opts.TTL, c.opts.ReassignMax, c.opts.Backoff)
	c.mu.Lock()
	if c.cur != nil {
		c.mu.Unlock()
		return nil, errors.New("fabric: a distribution round is already active")
	}
	c.cur = t
	c.mu.Unlock()
	c.rounds.Add(1)
	defer func() {
		c.mu.Lock()
		c.cur = nil
		c.mu.Unlock()
		c.ctrMu.Lock()
		c.ctr.Reassigned += t.reassigned
		c.ctr.BudgetFailed += t.budgetFailed
		c.ctrMu.Unlock()
	}()

	stop := make(chan struct{})
	defer close(stop)
	go c.sweep(t, stop)

	select {
	case <-t.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}

	out := t.outcome()
	keys := make([]string, len(specs))
	merged := make(map[string]bool, len(specs))
	for i, s := range specs {
		keys[i] = s.Key
	}
	for k := range out.Records {
		merged[k] = true
	}
	for k := range out.Failures {
		merged[k] = true
	}
	if err := check.VerifyMerge(keys, merged); err != nil {
		return nil, err
	}
	return out, nil
}

// sweep revokes expired leases until the round ends. The poll interval is a
// fraction of the TTL so a dead worker costs about one TTL, not several.
func (c *Coordinator) sweep(t *table, stop <-chan struct{}) {
	interval := t.ttl / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.done:
			return
		case <-tick.C:
			if n := t.expire(c.now()); n > 0 {
				c.ctrMu.Lock()
				c.ctr.Expired += n
				c.ctrMu.Unlock()
				c.logf("fabric: revoked %d expired lease(s)", n)
			}
		}
	}
}

// handleLease grants the next assignable batch, or 204 when nothing is
// assignable right now (no active round, everything leased or backing off).
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		http.Error(w, "fabric: lease request must name a worker", http.StatusBadRequest)
		return
	}
	t := c.table()
	if t == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	b, lease := t.acquire(req.Worker, c.now())
	if b == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	grant := &leaseGrant{
		Batch:     b.id.Token(),
		Lease:     lease,
		TTLNS:     int64(t.ttl),
		Grid:      c.opts.Grid,
		Specs:     b.specs,
		Guards:    c.opts.Guards,
		ProcChaos: c.opts.ProcChaosSeed,
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(grant); err != nil {
		// The connection died mid-grant; the lease expires and requeues.
		c.logf("fabric: lease grant to %s lost: %v", req.Worker, err)
	}
}

// handleHeartbeat extends a live lease; 410 tells the holder its batch is
// gone and its work must be discarded.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Lease == 0 {
		http.Error(w, "fabric: heartbeat must carry a lease", http.StatusBadRequest)
		return
	}
	t := c.table()
	if t == nil {
		c.reject(&c.ctr.RejectedStale)
		http.Error(w, errStaleLease.Error(), http.StatusGone)
		return
	}
	switch err := t.heartbeat(req.Lease, c.now()); {
	case err == nil, errors.Is(err, errLeaseDone):
		// errLeaseDone: the batch resolved under this lease — the holder's
		// final heartbeat raced its own accepted upload. Benign, not stale.
		w.WriteHeader(http.StatusNoContent)
	default:
		c.reject(&c.ctr.RejectedStale)
		http.Error(w, errStaleLease.Error(), http.StatusGone)
	}
}

// handleResults validates and merges one worker upload: checkpoint JSONL
// whose header pins grid, build, worker and lease, and whose every record
// is sealed. Any violation rejects the whole upload; a corrupt or
// incoherent one also revokes the lease so the batch requeues immediately
// instead of waiting out the TTL.
func (c *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	t := c.table()
	if t == nil {
		c.reject(&c.ctr.RejectedStale)
		http.Error(w, "fabric: no distribution round is active", http.StatusGone)
		return
	}
	body, err := readAll(r)
	if err != nil {
		http.Error(w, "fabric: reading upload: "+err.Error(), http.StatusBadRequest)
		return
	}
	hdr, recs, fails, err := parseUpload(body, c.opts.Grid)
	if err != nil {
		counter := &c.ctr.RejectedCorrupt
		if errors.Is(err, errIncoherent) {
			counter = &c.ctr.RejectedIncoherent
		}
		c.reject(counter)
		if hdr != nil && hdr.Lease != 0 {
			t.revokeLease(hdr.Lease, c.now())
		}
		c.logf("fabric: rejecting upload: %v", err)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	id, doneCells, err := t.complete(hdr.Lease, hdr.Worker, c.now(), recs, fails)
	switch {
	case errors.Is(err, errStaleLease):
		c.reject(&c.ctr.RejectedStale)
		http.Error(w, err.Error(), http.StatusGone)
		return
	case err != nil:
		c.reject(&c.ctr.RejectedIncoherent)
		t.revokeLease(hdr.Lease, c.now())
		c.logf("fabric: rejecting upload: %v", err)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	_, total := t.progress()
	if c.opts.Progress != nil {
		c.opts.Progress(doneCells, total)
	}
	if c.opts.MergeHook != nil {
		c.opts.MergeHook(hdr.Worker, id, doneCells, total)
	}
	w.WriteHeader(http.StatusOK)
}

// reject bumps one rejection counter.
func (c *Coordinator) reject(counter *int) {
	c.ctrMu.Lock()
	*counter++
	c.ctrMu.Unlock()
}

// errIncoherent classifies upload rejections that are protocol violations
// (wrong grid, wrong build, identity mismatch) rather than data corruption.
var errIncoherent = errors.New("fabric: incoherent upload")

// incoherentf builds an errIncoherent-classified rejection.
func incoherentf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, errIncoherent)...)
}

// parseUpload decodes one result upload: a CheckpointHeader line, then
// sealed CheckpointRecord and failLine rows. Every record must verify its
// checksum; the header must match this sweep's grid and this build.
func parseUpload(body []byte, grid string) (*experiments.CheckpointHeader, map[string]*experiments.CheckpointRecord, map[string]*failLine, error) {
	lines := bytes.Split(body, []byte("\n"))
	var hdr *experiments.CheckpointHeader
	recs := make(map[string]*experiments.CheckpointRecord)
	fails := make(map[string]*failLine)
	for _, line := range lines {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		if hdr == nil {
			h := &experiments.CheckpointHeader{}
			if json.Unmarshal(line, h) != nil || !h.Header {
				return nil, nil, nil, incoherentf("fabric: upload does not begin with a header record")
			}
			if h.Grid != grid {
				return h, nil, nil, incoherentf("fabric: upload is for grid %s, this sweep is %s", h.Grid, grid)
			}
			if v := experiments.BuildVersion(); h.Version != v {
				return h, nil, nil, incoherentf("fabric: upload from build %q, this coordinator is %q", h.Version, v)
			}
			if h.Worker == "" || h.Lease == 0 {
				return h, nil, nil, incoherentf("fabric: upload header names no worker or lease")
			}
			hdr = h
			continue
		}
		var probe lineProbe
		if err := json.Unmarshal(line, &probe); err != nil {
			return hdr, nil, nil, fmt.Errorf("fabric: undecodable upload line: %w", err)
		}
		if probe.Fail {
			fl := &failLine{}
			if json.Unmarshal(line, fl) != nil || fl.Key == "" || fl.Stage == "" {
				return hdr, nil, nil, fmt.Errorf("fabric: malformed fail row in upload")
			}
			fails[fl.Key] = fl
			continue
		}
		rec := &experiments.CheckpointRecord{}
		if json.Unmarshal(line, rec) != nil || rec.Key == "" || rec.Sim == nil {
			return hdr, nil, nil, fmt.Errorf("fabric: malformed record in upload")
		}
		if rec.Sum == "" {
			return hdr, nil, nil, fmt.Errorf("fabric: record %s is unsealed; fabric uploads must be sealed", rec.Key)
		}
		if err := rec.Verify(); err != nil {
			return hdr, nil, nil, err
		}
		if rec.Worker != hdr.Worker {
			return hdr, nil, nil, incoherentf("fabric: record %s claims worker %q, upload header says %q", rec.Key, rec.Worker, hdr.Worker)
		}
		recs[rec.Key] = rec
	}
	if hdr == nil {
		return nil, nil, nil, incoherentf("fabric: empty upload")
	}
	return hdr, recs, fails, nil
}

// readAll drains a bounded request body.
func readAll(r *http.Request) ([]byte, error) {
	const maxUpload = 64 << 20
	body := http.MaxBytesReader(nil, r.Body, maxUpload)
	defer body.Close() //lint:ignore cellboundary request body close errors are unreportable and harmless after a full read
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(body); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
