package fabric

import (
	"fmt"
	"strconv"
	"strings"

	"repro"
	"repro/internal/experiments"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// CellSpec is the wire form of one experiment-grid cell: everything a
// worker needs to reconstruct the cell by registry name and recompute it.
// Kernels and machines travel as names (a kernel "<name>-x<N>" rebuilds via
// workloads.Scaled); the config travels field-by-field. The coordinator
// round-trips every spec before shipping it — build spec, rebuild cell,
// compare keys — so a cell that cannot be reconstructed exactly is never
// distributed at all (it runs in-process instead).
type CellSpec struct {
	// Key is the cell's canonical identity (experiments.Cell.Key()),
	// restated so worker and coordinator agree on what the spec denotes.
	Key     string `json:"key"`
	Kernel  string `json:"kernel"`
	Machine string `json:"machine"`
	// MapMachine names the mapping machine for cross-evaluated cells.
	MapMachine string     `json:"map_machine,omitempty"`
	Scheme     int        `json:"scheme"`
	Config     SpecConfig `json:"config"`
}

// SpecConfig is repro.Config flattened to JSON-stable scalars, carrying
// every field — identity-bearing and execution knob alike — so the worker
// recomputes the cell under exactly the configuration the coordinator's
// grid enumerated. MapView travels by machine name (the pointer's node tree
// has parent cycles JSON cannot express).
type SpecConfig struct {
	BlockBytes       int64   `json:"block_bytes"`
	BalanceThreshold float64 `json:"balance_threshold"`
	Alpha            float64 `json:"alpha"`
	Beta             float64 `json:"beta"`
	Deps             int     `json:"deps"`
	MaxGroups        int     `json:"max_groups,omitempty"`
	MapView          string  `json:"map_view,omitempty"`
	NoMergeCap       bool    `json:"no_merge_cap,omitempty"`
	NoPolish         bool    `json:"no_polish,omitempty"`
	HammingSched     bool    `json:"hamming_sched,omitempty"`
	Passes           int     `json:"passes,omitempty"`
	MaxSimCycles     uint64  `json:"max_sim_cycles,omitempty"`
	Materialize      bool    `json:"materialize,omitempty"`
	Check            int     `json:"check,omitempty"`
	ChaosSeed        int64   `json:"chaos_seed,omitempty"`
	SimWorkers       int     `json:"sim_workers,omitempty"`
}

// specConfig flattens a cell's config for the wire.
//
//topovet:keyof repro.Config
func specConfig(cfg repro.Config) SpecConfig {
	s := SpecConfig{
		BlockBytes:       cfg.BlockBytes,
		BalanceThreshold: cfg.BalanceThreshold,
		Alpha:            cfg.Alpha,
		Beta:             cfg.Beta,
		Deps:             int(cfg.Deps),
		MaxGroups:        cfg.MaxGroups,
		NoMergeCap:       cfg.NoMergeCap,
		NoPolish:         cfg.NoPolish,
		HammingSched:     cfg.HammingSched,
		Passes:           cfg.Passes,
		MaxSimCycles:     cfg.MaxSimCycles,
		Materialize:      cfg.Materialize,
		Check:            int(cfg.Check),
		ChaosSeed:        cfg.ChaosSeed,
		SimWorkers:       cfg.SimWorkers,
	}
	if cfg.MapView != nil {
		s.MapView = cfg.MapView.Name
	}
	return s
}

// SpecFor builds the wire spec for a cell and validates it round-trips:
// the spec's reconstruction must carry the cell's exact key. Cells that do
// not survive the round trip — an unnamed machine synthesized for a
// sensitivity sweep, a kernel outside the registry — return an error and
// stay in-process; the fabric never ships a cell it cannot faithfully
// denote.
//
//topovet:keyof experiments.Cell
func SpecFor(c experiments.Cell) (*CellSpec, error) {
	if c.Kernel == nil || c.Machine == nil {
		return nil, fmt.Errorf("fabric: cell has no kernel or machine")
	}
	s := &CellSpec{
		Key:     c.Key(),
		Kernel:  c.Kernel.Name,
		Machine: c.Machine.Name,
		Scheme:  int(c.Scheme),
		Config:  specConfig(c.Config),
	}
	if c.MapMachine != nil {
		s.MapMachine = c.MapMachine.Name
	}
	back, err := s.Cell()
	if err != nil {
		return nil, fmt.Errorf("fabric: cell %s does not reconstruct from its spec: %w", s.Key, err)
	}
	if got := back.Key(); got != s.Key {
		return nil, fmt.Errorf("fabric: cell %s round-trips to a different identity %s: refusing to distribute it", s.Key, got)
	}
	return s, nil
}

// Cell reconstructs the spec's cell from the registries, exactly as the
// coordinator enumerated it.
func (s *CellSpec) Cell() (experiments.Cell, error) {
	k, err := resolveKernel(s.Kernel)
	if err != nil {
		return experiments.Cell{}, err
	}
	m, err := topology.ByName(s.Machine)
	if err != nil {
		return experiments.Cell{}, err
	}
	c := experiments.Cell{Kernel: k, Machine: m}
	if s.MapMachine != "" {
		if c.MapMachine, err = topology.ByName(s.MapMachine); err != nil {
			return experiments.Cell{}, err
		}
	}
	if s.Scheme < 0 || repro.Scheme(s.Scheme) > repro.SchemeCombined {
		return experiments.Cell{}, fmt.Errorf("fabric: scheme ordinal %d out of range", s.Scheme)
	}
	c.Scheme = repro.Scheme(s.Scheme)
	sc := s.Config
	c.Config = repro.Config{
		BlockBytes:       sc.BlockBytes,
		BalanceThreshold: sc.BalanceThreshold,
		Alpha:            sc.Alpha,
		Beta:             sc.Beta,
		Deps:             repro.DepsMode(sc.Deps),
		MaxGroups:        sc.MaxGroups,
		NoMergeCap:       sc.NoMergeCap,
		NoPolish:         sc.NoPolish,
		HammingSched:     sc.HammingSched,
		Passes:           sc.Passes,
		MaxSimCycles:     sc.MaxSimCycles,
		Materialize:      sc.Materialize,
		Check:            repro.CheckMode(sc.Check),
		ChaosSeed:        sc.ChaosSeed,
		SimWorkers:       sc.SimWorkers,
	}
	if sc.MapView != "" {
		if c.Config.MapView, err = topology.ByName(sc.MapView); err != nil {
			return experiments.Cell{}, err
		}
	}
	return c, nil
}

// resolveKernel rebuilds a kernel from its wire name: a registry lookup,
// or — for "<name>-x<N>" — the scaled variant workloads.Scaled denotes by
// exactly that name.
func resolveKernel(name string) (*workloads.Kernel, error) {
	if k, err := workloads.ByName(name); err == nil {
		return k, nil
	}
	if i := strings.LastIndex(name, "-x"); i > 0 {
		if factor, err := strconv.Atoi(name[i+2:]); err == nil && factor >= 1 {
			k, err := workloads.Scaled(name[:i], factor)
			if err != nil {
				return nil, fmt.Errorf("fabric: kernel %q: %w", name, err)
			}
			if k.Name != name {
				return nil, fmt.Errorf("fabric: kernel %q rebuilds as %q", name, k.Name)
			}
			return k, nil
		}
	}
	return nil, fmt.Errorf("fabric: kernel %q is not a named or scaled registry kernel", name)
}

// Guards carries the coordinator's per-cell execution guards to workers,
// so a distributed sweep runs under the same budgets, retry policy and
// self-checking level the flags selected. All execution knobs — none is
// part of any cell's identity.
type Guards struct {
	TimeoutNS  int64  `json:"timeout_ns,omitempty"`
	MaxCycles  uint64 `json:"max_cycles,omitempty"`
	Retries    int    `json:"retries,omitempty"`
	Check      int    `json:"check,omitempty"`
	ChaosSeed  int64  `json:"chaos_seed,omitempty"`
	SimWorkers int    `json:"sim_workers,omitempty"`
	// BackoffSeed seeds the worker-side retry jitter, matching the sweep's.
	BackoffSeed int64 `json:"backoff_seed,omitempty"`
}

// leaseRequest asks the coordinator for a batch.
type leaseRequest struct {
	Worker string `json:"worker"`
}

// leaseGrant hands a worker one leased batch.
type leaseGrant struct {
	// Batch is the BatchID token the worker echoes in its upload header's
	// lease context and its chaos decisions.
	Batch string `json:"batch"`
	// Lease identifies this grant; heartbeats and the result upload carry it.
	Lease uint64 `json:"lease"`
	// TTLNS is the lease TTL; the worker heartbeats at a fraction of it.
	TTLNS int64 `json:"ttl_ns"`
	// Grid is the sweep's grid signature, echoed in the upload header.
	Grid   string      `json:"grid"`
	Specs  []*CellSpec `json:"specs"`
	Guards Guards      `json:"guards"`
	// ProcChaos arms process-level fault injection on the worker (0 = off).
	ProcChaos int64 `json:"proc_chaos,omitempty"`
}

// heartbeatRequest extends a lease while the worker computes.
type heartbeatRequest struct {
	Worker string `json:"worker"`
	Lease  uint64 `json:"lease"`
}

// failLine is the wire form of one failed cell inside a result upload: the
// worker's contained CellError, flattened. Fail distinguishes it from a
// CheckpointRecord line.
type failLine struct {
	Fail     bool   `json:"fail"`
	Key      string `json:"key"`
	Stage    string `json:"stage"`
	Error    string `json:"error"`
	Attempts int    `json:"attempts,omitempty"`
}

// lineProbe sniffs an upload line's shape: header, fail row, or (neither)
// a checkpoint record.
type lineProbe struct {
	Header bool `json:"header"`
	Fail   bool `json:"fail"`
}
