//go:build !unix

package fabric

import "os"

// killSelf hard-crashes the worker process. Without SIGKILL the closest
// model is an immediate exit: still no upload and no farewell to the
// coordinator.
func killSelf() {
	os.Exit(137)
}
