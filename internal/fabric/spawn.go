package fabric

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
)

// SpawnOptions configures a local worker pool.
type SpawnOptions struct {
	// Command is the argv prefix each worker is launched with; the pool
	// appends "-id <worker-id>". Empty selects the current executable's
	// `worker` subcommand: {os.Executable(), "worker", "-coord", <url>}.
	Command []string
	// Env is extra environment appended to the current process's.
	Env []string
	// Stderr receives the workers' stderr (default os.Stderr), so contained
	// cell failures inside workers stay visible.
	Stderr io.Writer
	// RespawnMax bounds replacement workers started for ones that die
	// unexpectedly — supervision that keeps a chaos-killed pool alive
	// without letting a crash loop fork forever. 0 selects the default
	// (16); negative disables respawning.
	RespawnMax int
	// Logf, when non-nil, receives spawn/respawn/death diagnostics.
	Logf func(format string, args ...any)
}

// Pool is a supervised set of local worker processes. Close kills and
// reaps every live worker.
type Pool struct {
	opts   SpawnOptions
	mu     sync.Mutex
	procs  map[string]*exec.Cmd
	closed bool
	spawns int // respawn budget consumed
	wg     sync.WaitGroup
}

// SpawnLocal starts n worker processes pointed at the coordinator and
// supervises them: a worker that dies while the pool is open (a chaos
// kill, an OOM) is replaced under a fresh identity, up to the respawn
// budget. The pool holds no protocol state — workers are stateless pull
// loops, so a replacement needs nothing from its predecessor.
func SpawnLocal(coordinatorURL string, n int, opts SpawnOptions) (*Pool, error) {
	if n < 1 {
		return nil, fmt.Errorf("fabric: worker count %d < 1", n)
	}
	if len(opts.Command) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("fabric: resolving executable for worker spawn: %w", err)
		}
		opts.Command = []string{exe, "worker", "-coord", coordinatorURL}
	}
	if opts.Stderr == nil {
		opts.Stderr = os.Stderr
	}
	if opts.RespawnMax == 0 {
		opts.RespawnMax = 16
	}
	p := &Pool{opts: opts, procs: make(map[string]*exec.Cmd)}
	for i := 1; i <= n; i++ {
		if err := p.spawn(fmt.Sprintf("w%d", i)); err != nil {
			_ = p.Close() // the spawn error is the one worth reporting
			return nil, err
		}
	}
	return p, nil
}

// spawn starts one worker under the given identity and watches it.
func (p *Pool) spawn(id string) error {
	argv := append(append([]string{}, p.opts.Command...), "-id", id)
	//lint:ignore ctxflow worker lifetime is owned by the pool's supervision (Kill/Close), not a context: a context-killed worker would be indistinguishable from a crash and get respawned
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), p.opts.Env...)
	cmd.Stderr = p.opts.Stderr
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("fabric: pool is closed")
	}
	if err := cmd.Start(); err != nil {
		p.mu.Unlock()
		return fmt.Errorf("fabric: starting worker %s: %w", id, err)
	}
	p.procs[id] = cmd
	p.wg.Add(1)
	p.mu.Unlock()
	p.logf("fabric: worker %s started (pid %d)", id, cmd.Process.Pid)
	go p.watch(id, cmd)
	return nil
}

// watch reaps one worker and respawns a replacement if it died while the
// pool was still open.
func (p *Pool) watch(id string, cmd *exec.Cmd) {
	defer p.wg.Done()
	err := cmd.Wait()
	p.mu.Lock()
	delete(p.procs, id)
	closed := p.closed
	respawn := !closed && p.opts.RespawnMax > 0 && p.spawns < p.opts.RespawnMax
	if respawn {
		p.spawns++
	}
	gen := p.spawns
	p.mu.Unlock()
	if closed {
		return
	}
	p.logf("fabric: worker %s died (%v)", id, err)
	if !respawn {
		p.logf("fabric: not replacing worker %s (respawn budget spent)", id)
		return
	}
	// A fresh identity, never a reused one: chaos decisions and lease
	// attribution hash the worker name, and a reincarnated name would
	// repeat its predecessor's faults.
	nid := fmt.Sprintf("%s.r%d", id, gen)
	if serr := p.spawn(nid); serr != nil {
		p.logf("fabric: replacing worker %s: %v", id, serr)
	}
}

// Kill forcibly terminates one live worker by identity (SIGKILL on unix) —
// the crash-test hook. It reports whether the worker was alive to kill;
// supervision then treats the death like any other crash.
func (p *Pool) Kill(id string) bool {
	p.mu.Lock()
	cmd := p.procs[id]
	p.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return false
	}
	return cmd.Process.Kill() == nil
}

// Live reports how many worker processes are currently running.
func (p *Pool) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.procs)
}

// Close kills every live worker and waits for the reapers. Workers are
// stateless: killing them mid-batch at worst costs the coordinator a lease
// TTL, and Close is only called after the sweep's rounds have completed.
func (p *Pool) Close() error {
	p.mu.Lock()
	p.closed = true
	procs := make([]*exec.Cmd, 0, len(p.procs))
	for _, cmd := range p.procs {
		procs = append(procs, cmd)
	}
	p.mu.Unlock()
	for _, cmd := range procs {
		if cmd.Process != nil {
			_ = cmd.Process.Kill() // already-dead workers are fine
		}
	}
	p.wg.Wait()
	return nil
}

// logf forwards a diagnostic to the configured sink.
func (p *Pool) logf(format string, args ...any) {
	if p.opts.Logf != nil {
		p.opts.Logf(format, args...)
	}
}
