package fabric

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

// BatchID identifies one lease-able unit of work: a contiguous slice of the
// grid's shippable cells, within one sweep, at one reassignment attempt.
// Attempt is part of the identity on purpose: a reassigned batch is new
// work (a new lease, a new backoff delay, a fresh chaos decision), and two
// attempts of the same slice must never be confused — a stale upload from
// attempt 1 cannot satisfy attempt 2's lease.
type BatchID struct {
	// Grid is the sweep's grid signature.
	Grid string
	// Index is the batch's position in the sweep's batch enumeration.
	Index int
	// Attempt counts assignments: 1 for the first lease, +1 per
	// reassignment.
	Attempt int
}

// Token renders the identity under which leases are granted, chaos
// decisions hash, and backoff delays jitter.
//
//topovet:keyof BatchID
func (b BatchID) Token() string {
	return fmt.Sprintf("%s:%d:%d", b.Grid, b.Index, b.Attempt)
}

// batch states.
const (
	batchPending  = iota // waiting for a worker (possibly under backoff)
	batchLeased          // held by a worker under a live lease
	batchResolved        // merged (results, failures, or budget exhaustion)
)

// batch is the coordinator's bookkeeping for one unit of work.
type batch struct {
	id    BatchID
	specs []*CellSpec
	keys  map[string]bool

	state     int
	lease     uint64    // current lease ID while leased
	worker    string    // current holder while leased
	deadline  time.Time // lease expiry while leased
	notBefore time.Time // earliest next assignment while pending (backoff)
}

// errStaleLease rejects a heartbeat or upload whose lease is no longer
// live: expired, revoked and reassigned, or never granted.
var errStaleLease = errors.New("fabric: lease is not live (expired, revoked or unknown)")

// errLeaseDone marks a heartbeat for a lease whose batch already resolved
// successfully. A worker's final in-flight heartbeat can race its own
// upload's merge; that is benign — the work was accepted — and must not be
// counted or logged as a stale-lease rejection.
var errLeaseDone = errors.New("fabric: lease already resolved")

// table is the lease table of one distribution round: every batch of the
// round, its state, and the merged outcome. All methods are safe for
// concurrent use by the HTTP handlers and the expiry sweeper.
type table struct {
	mu       sync.Mutex
	grid     string
	ttl      time.Duration
	reassign int // max reassignments per batch before the budget fails it
	backoff  experiments.Backoff

	batches   []*batch
	byLease   map[uint64]*batch
	nextLease uint64
	open      int           // batches not yet resolved
	done      chan struct{} // closed when open reaches zero

	totalCells int
	doneCells  int
	records    map[string]*experiments.CheckpointRecord
	failures   map[string]*experiments.CellError
	stats      []metrics.CellStat

	// reassigned and budgetFailed feed the coordinator's Counters.
	reassigned   int
	budgetFailed int
}

// newTable shards the shippable specs into batches of batchSize and readies
// them all as pending.
func newTable(grid string, specs []*CellSpec, batchSize int, ttl time.Duration, reassign int, backoff experiments.Backoff) *table {
	if batchSize < 1 {
		batchSize = 1
	}
	t := &table{
		grid:       grid,
		ttl:        ttl,
		reassign:   reassign,
		backoff:    backoff,
		byLease:    make(map[uint64]*batch),
		done:       make(chan struct{}),
		totalCells: len(specs),
		records:    make(map[string]*experiments.CheckpointRecord),
		failures:   make(map[string]*experiments.CellError),
	}
	for i := 0; i < len(specs); i += batchSize {
		end := i + batchSize
		if end > len(specs) {
			end = len(specs)
		}
		b := &batch{
			id:    BatchID{Grid: grid, Index: len(t.batches), Attempt: 1},
			specs: specs[i:end],
			keys:  make(map[string]bool, end-i),
		}
		for _, s := range b.specs {
			b.keys[s.Key] = true
		}
		t.batches = append(t.batches, b)
	}
	t.open = len(t.batches)
	if t.open == 0 {
		close(t.done)
	}
	return t
}

// acquire leases the first assignable pending batch to the worker. A nil
// batch means nothing is assignable right now (all leased, resolved, or
// backing off) — the worker polls again later.
func (t *table) acquire(worker string, now time.Time) (*batch, uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, b := range t.batches {
		if b.state != batchPending || now.Before(b.notBefore) {
			continue
		}
		t.nextLease++
		b.state = batchLeased
		b.lease = t.nextLease
		b.worker = worker
		b.deadline = now.Add(t.ttl)
		t.byLease[b.lease] = b
		return b, b.lease
	}
	return nil, 0
}

// heartbeat extends a live lease's deadline; a stale lease errors so the
// holder abandons the batch. A lease whose batch already resolved under it
// reports errLeaseDone instead: the holder's final heartbeat racing its own
// accepted upload is not a fault.
func (t *table) heartbeat(lease uint64, now time.Time) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.byLease[lease]
	if ok && b.state == batchResolved && b.lease == lease {
		return errLeaseDone
	}
	if !ok || b.state != batchLeased || b.lease != lease || now.After(b.deadline) {
		return errStaleLease
	}
	b.deadline = now.Add(t.ttl)
	return nil
}

// expire revokes every lease whose deadline has passed, requeueing (or
// budget-failing) its batch, and returns how many it revoked.
func (t *table) expire(now time.Time) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, b := range t.batches {
		if b.state == batchLeased && now.After(b.deadline) {
			t.revokeLocked(b, now)
			n++
		}
	}
	return n
}

// revokeLocked takes the batch away from its holder: back to pending under
// backoff for the next attempt, or — budget exhausted — resolved as
// structured per-cell failures (stage "fabric"). Callers hold t.mu.
func (t *table) revokeLocked(b *batch, now time.Time) {
	delete(t.byLease, b.lease)
	worker := b.worker
	b.lease, b.worker = 0, ""
	if b.id.Attempt > t.reassign {
		// The budget counts assignments: attempt 1 plus `reassign` more.
		for _, s := range b.specs {
			t.failures[s.Key] = &experiments.CellError{
				Key:   s.Key,
				Stage: "fabric",
				Err: fmt.Errorf("fabric: batch %s exhausted its reassignment budget (%d attempts, last worker %s)",
					b.id.Token(), b.id.Attempt, worker),
				Attempts: b.id.Attempt,
			}
		}
		t.resolveLocked(b, len(b.specs))
		t.budgetFailed++
		return
	}
	b.id.Attempt++
	b.state = batchPending
	b.notBefore = now.Add(t.backoff.Delay(b.id.Token(), b.id.Attempt-1))
	t.reassigned++
}

// resolveLocked finalizes a batch. Callers hold t.mu.
func (t *table) resolveLocked(b *batch, cells int) {
	b.state = batchResolved
	t.doneCells += cells
	t.open--
	if t.open == 0 {
		close(t.done)
	}
}

// complete merges one validated upload: the lease must be live and held by
// the named worker, and the upload must resolve every cell of the batch
// (record or fail row) and no cell outside it. Violations reject the whole
// upload without consuming the lease — the expiry sweeper or a revoke
// recovers the batch.
func (t *table) complete(lease uint64, worker string, now time.Time,
	recs map[string]*experiments.CheckpointRecord, fails map[string]*failLine) (BatchID, int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.byLease[lease]
	if !ok || b.state != batchLeased || b.lease != lease || now.After(b.deadline) {
		return BatchID{}, 0, errStaleLease
	}
	if b.worker != worker {
		return BatchID{}, 0, fmt.Errorf("fabric: lease %d belongs to worker %s, upload claims %s", lease, b.worker, worker)
	}
	for key := range recs {
		if !b.keys[key] {
			return BatchID{}, 0, fmt.Errorf("fabric: upload for batch %s carries foreign cell %s", b.id.Token(), key)
		}
	}
	for key := range fails {
		if !b.keys[key] {
			return BatchID{}, 0, fmt.Errorf("fabric: upload for batch %s carries foreign cell %s", b.id.Token(), key)
		}
	}
	for key := range b.keys {
		if recs[key] == nil && fails[key] == nil {
			return BatchID{}, 0, fmt.Errorf("fabric: upload for batch %s misses cell %s", b.id.Token(), key)
		}
	}
	for key, rec := range recs {
		t.records[key] = rec
		t.stats = append(t.stats, metrics.CellStat{
			Key:       key,
			Wall:      time.Duration(rec.WallNS),
			SimCycles: rec.Sim.TotalCycles,
			Accesses:  rec.Sim.Accesses,
			Status:    "ok",
			Worker:    worker,
		})
	}
	for key, fl := range fails {
		t.failures[key] = &experiments.CellError{
			Key:      key,
			Stage:    fl.Stage,
			Err:      fmt.Errorf("fabric: worker %s: %s", worker, fl.Error),
			Attempts: fl.Attempts,
		}
		t.stats = append(t.stats, metrics.CellStat{Key: key, Status: fl.Stage, Worker: worker})
	}
	// The lease entry stays in the table (state batchResolved) so the
	// uploader's final in-flight heartbeat resolves to errLeaseDone rather
	// than a spurious stale-lease rejection.
	b.worker = ""
	t.resolveLocked(b, len(b.keys))
	return b.id, t.doneCells, nil
}

// revokeLease takes a specific live lease away (a corrupt or incoherent
// upload): the batch requeues under backoff, the uploader's lease dies.
func (t *table) revokeLease(lease uint64, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b, ok := t.byLease[lease]; ok && b.state == batchLeased && b.lease == lease {
		t.revokeLocked(b, now)
	}
}

// holders lists the workers currently holding live leases, sorted.
func (t *table) holders() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var ws []string
	for _, b := range t.batches {
		if b.state == batchLeased {
			ws = append(ws, b.worker)
		}
	}
	sort.Strings(ws)
	return ws
}

// progress reports merged cells so far and the round's total.
func (t *table) progress() (done, total int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.doneCells, t.totalCells
}

// outcome assembles the round's merged result after done closes.
func (t *table) outcome() *experiments.DistOutcome {
	t.mu.Lock()
	defer t.mu.Unlock()
	return &experiments.DistOutcome{Records: t.records, Failures: t.failures, Stats: t.stats}
}
