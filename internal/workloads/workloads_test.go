package workloads

import (
	"strings"
	"testing"

	"repro/internal/deps"
	"repro/internal/poly"
	"repro/internal/tags"
)

func TestAllTwelveKernels(t *testing.T) {
	ks := All()
	if len(ks) != 12 {
		t.Fatalf("All() = %d kernels, want 12 (Table 2)", len(ks))
	}
	names := map[string]bool{}
	for _, k := range ks {
		if names[k.Name] {
			t.Fatalf("duplicate kernel %s", k.Name)
		}
		names[k.Name] = true
	}
	// The paper's Table 2 names, in order.
	want := []string{"applu", "galgel", "equake", "cg", "sp", "bodytrack",
		"facesim", "freqmine", "namd", "povray", "mesa", "h264"}
	for i, k := range ks {
		if k.Name != want[i] {
			t.Errorf("kernel %d = %s, want %s", i, k.Name, want[i])
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"galgel", "fig5", "wavefront"} {
		k, err := ByName(name)
		if err != nil || k.Name != name {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("doom"); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestKernelShapes(t *testing.T) {
	for _, k := range append(All(), Fig5Example(), Wavefront()) {
		if k.Iterations() <= 0 {
			t.Errorf("%s has no iterations", k.Name)
		}
		if len(k.Refs) == 0 || len(k.Arrays) == 0 {
			t.Errorf("%s missing refs or arrays", k.Name)
		}
		if k.DataBytes() <= 0 {
			t.Errorf("%s has no data", k.Name)
		}
		if k.Accesses() != k.Iterations()*len(k.Refs) {
			t.Errorf("%s access count inconsistent", k.Name)
		}
		if !strings.Contains(k.String(), k.Name) {
			t.Errorf("%s String() missing name", k.Name)
		}
	}
}

// TestRefsStayInBounds verifies no reference is silently clamped: for
// every iteration and reference the raw subscripts must lie inside the
// declared array extents (clamping would distort the modeled sharing).
func TestRefsStayInBounds(t *testing.T) {
	for _, k := range append(All(), Fig5Example(), Wavefront()) {
		pts := k.Nest.Points()
		// Sample the space to keep the test fast but include boundaries.
		samples := pts
		if len(pts) > 2000 {
			samples = samples[:0]
			samples = append(samples, pts[:500]...)
			samples = append(samples, pts[len(pts)/2-250:len(pts)/2+250]...)
			samples = append(samples, pts[len(pts)-500:]...)
		}
		for _, p := range samples {
			for ri, r := range k.Refs {
				idx := r.At(p)
				for d, v := range idx {
					if v < 0 || v >= r.Array.Dims[d] {
						t.Fatalf("%s ref %d (%s) out of bounds at %v: dim %d index %d of %d",
							k.Name, ri, r.Array.Name, p, d, v, r.Array.Dims[d])
					}
				}
			}
		}
	}
}

// TestTwelveKernelsFullyParallel checks §3.1's premise for the main suite:
// the Table 2 kernels carry no loop dependences (reductions are flattened).
func TestTwelveKernelsFullyParallel(t *testing.T) {
	for _, k := range All() {
		layout := k.Layout(2048)
		if deps.HasLoopCarried(k.Nest.Points(), k.Refs, layout) {
			t.Errorf("%s carries loop dependences; the Table 2 suite must be fully parallel", k.Name)
		}
	}
}

func TestWavefrontCarriesDeps(t *testing.T) {
	k := Wavefront()
	layout := k.Layout(2048)
	if !deps.HasLoopCarried(k.Nest.Points(), k.Refs, layout) {
		t.Fatal("wavefront must carry dependences")
	}
}

// TestSharingStructure verifies the documented distant-sharing kernels
// really produce it: some pair of program-distant iterations touches a
// common data block.
func TestSharingStructure(t *testing.T) {
	for _, name := range []string{"galgel", "bodytrack", "namd", "h264", "cg"} {
		k, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		layout := k.Layout(2048)
		pts := k.Nest.Points()
		first, last := pts[0], pts[len(pts)-1]
		tagA := tags.TagOf(first, k.Refs, layout, layout.NumBlocks())
		tagB := tags.TagOf(last, k.Refs, layout, layout.NumBlocks())
		if tagA.Dot(tagB) == 0 {
			t.Errorf("%s: first and last iterations share no blocks — distant sharing missing", name)
		}
	}
}

// TestNearSharingKernels: the stencil kernels share blocks only with
// program neighbours — first and last iterations must be disjoint.
func TestNearSharingKernels(t *testing.T) {
	for _, name := range []string{"applu", "sp", "facesim"} {
		k, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		layout := k.Layout(2048)
		pts := k.Nest.Points()
		tagA := tags.TagOf(pts[0], k.Refs, layout, layout.NumBlocks())
		tagB := tags.TagOf(pts[len(pts)-1], k.Refs, layout, layout.NumBlocks())
		if tagA.Dot(tagB) != 0 {
			t.Errorf("%s: first and last iterations share blocks — should be near sharing only", name)
		}
	}
}

func TestFig5MatchesPaperScale(t *testing.T) {
	k := Fig5Example()
	layout := k.Layout(2048)
	if layout.NumBlocks() != 12 {
		t.Fatalf("fig5 has %d blocks, want 12", layout.NumBlocks())
	}
	tg := tags.ComputeNest(k.Nest, k.Refs, layout)
	if len(tg.Groups) != 8 {
		t.Fatalf("fig5 has %d groups, want 8 (Figure 10a)", len(tg.Groups))
	}
}

func TestDatasetsExceedPrivateCaches(t *testing.T) {
	// Placement can only matter when datasets exceed the 32 KB L1; the
	// main suite should also mostly exceed one 3 MB L2 — but at minimum
	// L1 for every kernel.
	for _, k := range All() {
		if k.DataBytes() <= 32<<10 {
			t.Errorf("%s dataset %d bytes fits in L1", k.Name, k.DataBytes())
		}
	}
}

func TestElemSizes(t *testing.T) {
	// 64-byte record kernels and 8-byte scalar kernels both exist; verify
	// a representative of each keeps its element size in the layout math.
	g, _ := ByName("galgel")
	if g.Arrays[0].ElemSize != 64 {
		t.Errorf("galgel V elem size = %d", g.Arrays[0].ElemSize)
	}
	a, _ := ByName("applu")
	if a.Arrays[0].ElemSize != 8 {
		t.Errorf("applu A elem size = %d", a.Arrays[0].ElemSize)
	}
}

func TestLayoutBlockAlignment(t *testing.T) {
	for _, k := range All() {
		layout := k.Layout(2048)
		for _, a := range k.Arrays {
			if layout.Base(a)%2048 != 0 {
				t.Errorf("%s: array %s not block-aligned", k.Name, a.Name)
			}
		}
	}
}

func TestSequentialFlagsMatchTable2(t *testing.T) {
	seq := map[string]bool{"namd": true, "povray": true, "mesa": true, "h264": true}
	for _, k := range All() {
		if k.Sequential != seq[k.Name] {
			t.Errorf("%s Sequential = %v, want %v", k.Name, k.Sequential, seq[k.Name])
		}
	}
}

func TestScaledVariants(t *testing.T) {
	for _, name := range []string{"galgel", "bodytrack", "namd"} {
		base, err := Scaled(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		doubled, err := Scaled(name, 2)
		if err != nil {
			t.Fatal(err)
		}
		if doubled.Iterations() < 2*base.Iterations()-16 {
			t.Errorf("%s: scaled(2) has %d iterations, base %d", name, doubled.Iterations(), base.Iterations())
		}
		if doubled.DataBytes() < 2*base.DataBytes()-1024 {
			t.Errorf("%s: scaled(2) data %d, base %d", name, doubled.DataBytes(), base.DataBytes())
		}
		// Sharing structure preserved: first and last iterations share.
		layout := doubled.Layout(2048)
		pts := doubled.Nest.Points()
		tagA := tags.TagOf(pts[0], doubled.Refs, layout, layout.NumBlocks())
		tagB := tags.TagOf(pts[len(pts)-1], doubled.Refs, layout, layout.NumBlocks())
		if tagA.Dot(tagB) == 0 {
			t.Errorf("%s scaled: distant sharing lost", name)
		}
	}
	if _, err := Scaled("mesa", 2); err == nil {
		t.Error("mesa should have no scaled variant")
	}
	if _, err := Scaled("galgel", 0); err == nil {
		t.Error("factor 0 should be rejected")
	}
}

// TestPovrayColumnWalk: the povray scene reference must stride with the
// inner loop (the Base+ permutation story): consecutive inner iterations
// touch different scene blocks, while permuted order would not.
func TestPovrayColumnWalk(t *testing.T) {
	k, _ := ByName("povray")
	layout := k.Layout(2048)
	sceneRef := k.Refs[0]
	b1 := layout.BlockOf(sceneRef, poly.Pt(0, 0))
	b2 := layout.BlockOf(sceneRef, poly.Pt(0, 1))
	if b1 == b2 {
		t.Fatal("povray scene bands should change with y")
	}
	b3 := layout.BlockOf(sceneRef, poly.Pt(1, 0))
	if b1 != b3 {
		t.Fatal("povray scene band should be x-invariant (scanline sharing)")
	}
}
