package workloads

import (
	"fmt"
	"sort"

	"repro/internal/poly"
)

// Kernel is one benchmark: a parallel loop nest, its arrays and references,
// and Table 2 metadata.
type Kernel struct {
	Name        string
	Description string
	Source      string // benchmark suite of the original application
	Sequential  bool   // Table 2 distinguishes sequential vs parallel inputs
	Arrays      []*poly.Array
	Nest        *poly.Nest
	Refs        []*poly.Ref
}

// Layout places the kernel's arrays with the given data-block size.
func (k *Kernel) Layout(blockBytes int64) *poly.Layout {
	return poly.NewLayout(blockBytes, k.Arrays...)
}

// DataBytes returns the total dataset size.
func (k *Kernel) DataBytes() int64 {
	var n int64
	for _, a := range k.Arrays {
		n += a.Bytes()
	}
	return n
}

// Iterations returns the iteration count of the parallel nest.
func (k *Kernel) Iterations() int { return k.Nest.Size() }

// Accesses returns the number of memory references one execution performs.
func (k *Kernel) Accesses() int { return k.Iterations() * len(k.Refs) }

// String renders a Table 2 style row.
func (k *Kernel) String() string {
	kind := "parallel"
	if k.Sequential {
		kind = "sequential"
	}
	return fmt.Sprintf("%-10s %-9s %-10s %8d iters %9.1f KB  %s",
		k.Name, k.Source, kind, k.Iterations(), float64(k.DataBytes())/1024, k.Description)
}

// Expression helpers over 1-D and 2-D nests.

func i2() poly.Expr { return poly.Var(0, 2) }
func j2() poly.Expr { return poly.Var(1, 2) }
func j1() poly.Expr { return poly.Var(0, 1) }

// Applu mirrors applu (SpecOMP): an SSOR-style 5-point relaxation sweep
// over a 2-D grid. The original is Fortran (column-major); walking its
// arrays in the C-convention loop order of the parallelizer makes the
// inner loop stride a whole row — the classic layout mismatch. Loop
// permutation (Base+) fixes the stride within a core; the topology-aware
// mapper additionally stops every core from touching every grid column.
func Applu() *Kernel {
	const N = 192
	a := poly.NewArray("A", N, N)
	b := poly.NewArray("Anew", N, N)
	nest := poly.NewNest(
		poly.RectLoop("i", 1, N-2),
		poly.RectLoop("j", 1, N-2),
	)
	// Fortran layout: subscripts transposed relative to the loop order, so
	// the inner j walk strides N elements.
	refs := []*poly.Ref{
		poly.NewRef(a, poly.Read, j2(), i2()),
		poly.NewRef(a, poly.Read, j2(), i2().AddConst(-1)),
		poly.NewRef(a, poly.Read, j2(), i2().AddConst(1)),
		poly.NewRef(a, poly.Read, j2().AddConst(-1), i2()),
		poly.NewRef(a, poly.Read, j2().AddConst(1), i2()),
		poly.NewRef(b, poly.Write, j2(), i2()),
	}
	return &Kernel{
		Name: "applu", Source: "SpecOMP",
		Description: "SSOR-style 5-point relaxation (Fortran-layout grid walked in C loop order)",
		Arrays:      []*poly.Array{a, b}, Nest: nest, Refs: refs,
	}
}

// Galgel mirrors galgel (SpecOMP): the spectral-Galerkin fluid-dynamics
// code of the paper's Figure 2 motivation. Spectral bases pair mode j with
// its symmetric partner n-1-j, so iterations far apart in program order
// read the same coefficient blocks — distant sharing the default
// distribution replicates across sockets.
func Galgel() *Kernel {
	const N = 65536
	v := poly.NewArray("V", N).WithElemSize(64)
	w := poly.NewArray("W", N).WithElemSize(64)
	nest := poly.NewNest(poly.RectLoop("j", 0, N-1))
	refs := []*poly.Ref{
		poly.NewRef(v, poly.Read, j1()),
		poly.NewRef(v, poly.Read, j1().Scale(-1).AddConst(N-1)), // symmetric mode
		poly.NewRef(w, poly.Write, j1()),
	}
	return &Kernel{
		Name: "galgel", Source: "SpecOMP",
		Description: "fluid dynamics, oscillatory instability (symmetric spectral modes)",
		Arrays:      []*poly.Array{v, w}, Nest: nest, Refs: refs,
	}
}

// Equake mirrors equake (SpecOMP): an unstructured seismic solver, modeled
// as a banded sparse matvec over 64-byte node records with a reflected
// far coupling (absorbing boundary pairs).
func Equake() *Kernel {
	const N = 24576
	stiff := poly.NewArray("K", 5*N) // packed band, 8-byte scalars
	disp := poly.NewArray("disp", N).WithElemSize(64)
	frc := poly.NewArray("force", N).WithElemSize(64)
	nest := poly.NewNest(poly.RectLoop("i", 2, N-3))
	refs := []*poly.Ref{
		poly.NewRef(stiff, poly.Read, j1().Scale(5)),
		poly.NewRef(disp, poly.Read, j1().AddConst(-2)),
		poly.NewRef(disp, poly.Read, j1().AddConst(2)),
		poly.NewRef(disp, poly.Read, j1().Scale(-1).AddConst(N-1)), // boundary pair
		poly.NewRef(frc, poly.Write, j1()),
	}
	return &Kernel{
		Name: "equake", Source: "SpecOMP",
		Description: "seismic wave propagation (banded matvec + reflected boundary pairs)",
		Arrays:      []*poly.Array{stiff, disp, frc}, Nest: nest, Refs: refs,
	}
}

// Cg mirrors cg (NAS): conjugate gradient on a banded symmetric matrix;
// near sharing through the band plus the symmetric half touched mirrored.
func Cg() *Kernel {
	const N = 16384
	mat := poly.NewArray("A", 9*N) // packed band rows
	p := poly.NewArray("p", N).WithElemSize(64)
	q := poly.NewArray("q", N).WithElemSize(64)
	nest := poly.NewNest(poly.RectLoop("i", 4, N-5))
	refs := []*poly.Ref{
		poly.NewRef(mat, poly.Read, j1().Scale(9)),
		// Symmetric storage: row i also walks the packed mirror half, so
		// rows i and N-1-i share matrix blocks (distant sharing).
		poly.NewRef(mat, poly.Read, j1().Scale(-9).AddConst(9*(N-1))),
		poly.NewRef(p, poly.Read, j1().AddConst(-4)),
		poly.NewRef(p, poly.Read, j1().AddConst(4)),
		poly.NewRef(q, poly.Write, j1()),
	}
	return &Kernel{
		Name: "cg", Source: "NAS",
		Description: "conjugate gradient (banded symmetric sparse matvec, packed mirror half)",
		Arrays:      []*poly.Array{mat, p, q}, Nest: nest, Refs: refs,
	}
}

// Sp mirrors sp (NAS): scalar penta-diagonal line sweeps — pure near
// sharing along each line.
func Sp() *Kernel {
	const Lines, N = 96, 256
	u := poly.NewArray("U", Lines, N)
	rhs := poly.NewArray("RHS", Lines, N)
	nest := poly.NewNest(
		poly.RectLoop("l", 1, Lines-2),
		poly.RectLoop("k", 2, N-3),
	)
	refs := []*poly.Ref{
		poly.NewRef(u, poly.Read, i2(), j2().AddConst(-2)),
		poly.NewRef(u, poly.Read, i2(), j2()),
		poly.NewRef(u, poly.Read, i2(), j2().AddConst(2)),
		poly.NewRef(u, poly.Read, i2().AddConst(-1), j2()),
		poly.NewRef(u, poly.Read, i2().AddConst(1), j2()),
		poly.NewRef(rhs, poly.Write, i2(), j2()),
	}
	return &Kernel{
		Name: "sp", Source: "NAS",
		Description: "scalar penta-diagonal solver (per-line stencil sweeps)",
		Arrays:      []*poly.Array{u, rhs}, Nest: nest, Refs: refs,
	}
}

// Bodytrack mirrors bodytrack (Parsec): particle-filter body tracking.
// Particles are scattered over the image, so a particle near the start of
// the particle list and one near the end probe the same edge-map strips:
// distant sharing, modeled by a direct and a mirrored strip probe.
func Bodytrack() *Kernel {
	const P = 32768
	part := poly.NewArray("particle", P).WithElemSize(64)
	obs := poly.NewArray("edgeMap", P).WithElemSize(64)
	wgt := poly.NewArray("weight", P) // 8-byte likelihoods
	nest := poly.NewNest(poly.RectLoop("p", 0, P-1))
	refs := []*poly.Ref{
		poly.NewRef(part, poly.Read, j1()),
		poly.NewRef(obs, poly.Read, j1()),
		poly.NewRef(obs, poly.Read, j1().Scale(-1).AddConst(P-1)), // mirrored strip
		poly.NewRef(wgt, poly.Write, j1()),
	}
	return &Kernel{
		Name: "bodytrack", Source: "Parsec",
		Description: "particle-filter body tracking (scattered particles probing shared edge maps)",
		Arrays:      []*poly.Array{part, obs, wgt}, Nest: nest, Refs: refs,
	}
}

// Facesim mirrors facesim (Parsec): deformable-face simulation; particles
// gather from the tetrahedral mesh node they attach to (p = n*4 + l), a
// near/hot sharing pattern.
func Facesim() *Kernel {
	const Nodes, K = 3072, 4
	// Structure-of-arrays layout: component l of every particle is stored
	// contiguously, so the inner l loop strides Nodes elements — loop
	// permutation recovers the streaming order within a core.
	pos := poly.NewArray("pos", K, Nodes).WithElemSize(64)
	mesh := poly.NewArray("mesh", Nodes).WithElemSize(64)
	frc := poly.NewArray("force", K, Nodes).WithElemSize(64)
	nest := poly.NewNest(
		poly.RectLoop("n", 0, Nodes-1),
		poly.RectLoop("l", 0, K-1),
	)
	refs := []*poly.Ref{
		poly.NewRef(pos, poly.Read, j2(), i2()),
		poly.NewRef(mesh, poly.Read, i2()),
		poly.NewRef(frc, poly.Write, j2(), i2()),
	}
	return &Kernel{
		Name: "facesim", Source: "Parsec",
		Description: "face simulation (SoA particle components sharing mesh nodes in groups of 4)",
		Arrays:      []*poly.Array{pos, mesh, frc}, Nest: nest, Refs: refs,
	}
}

// Freqmine mirrors freqmine (Parsec): FP-growth mining — a streaming
// transaction scan against a small hot prefix tree (hot-table sharing;
// mapping has little to exploit, as in the paper's low-gain apps).
func Freqmine() *Kernel {
	const T = 16384
	txn := poly.NewArray("txn", 4*T) // 4 items per transaction
	tree := poly.NewArray("fpTree", 256)
	cnt := poly.NewArray("count", T)
	nest := poly.NewNest(poly.RectLoop("t", 0, T-1))
	refs := []*poly.Ref{
		poly.NewRef(txn, poly.Read, j1().Scale(4)),
		poly.NewRef(txn, poly.Read, j1().Scale(4).AddConst(3)),
		poly.NewRef(tree, poly.Read, poly.Constant(0)), // hot root block
		poly.NewRef(cnt, poly.Write, j1()),
	}
	return &Kernel{
		Name: "freqmine", Source: "Parsec",
		Description: "frequent itemset mining (streaming transactions over a hot shared tree)",
		Arrays:      []*poly.Array{txn, tree, cnt}, Nest: nest, Refs: refs,
	}
}

// Namd mirrors namd (Spec2006, sequential in Table 2): molecular dynamics
// with symmetric pair lists — atom i interacts with a cutoff neighbour and
// with its symmetric partner across the cell, distant sharing.
func Namd() *Kernel {
	const N = 32768
	pos := poly.NewArray("pos", N).WithElemSize(64)
	frc := poly.NewArray("forceNew", N).WithElemSize(64)
	nest := poly.NewNest(poly.RectLoop("a", 0, N-9))
	refs := []*poly.Ref{
		poly.NewRef(pos, poly.Read, j1()),
		poly.NewRef(pos, poly.Read, j1().AddConst(8)),             // cutoff neighbour
		poly.NewRef(pos, poly.Read, j1().Scale(-1).AddConst(N-1)), // symmetric pair
		poly.NewRef(frc, poly.Write, j1()),
	}
	return &Kernel{
		Name: "namd", Source: "Spec2006", Sequential: true,
		Description: "molecular dynamics (cutoff neighbours + symmetric pair lists)",
		Arrays:      []*poly.Array{pos, frc}, Nest: nest, Refs: refs,
	}
}

// Povray mirrors povray (Spec2006, sequential): ray tracing. Pixels are
// visited column-outer/row-inner while the scene is organized in per-row
// bands, so all iterations of one scanline — scattered across the pixel
// loop's chunks — read the same scene band: distant sharing, and a strong
// case for Base+'s loop permutation within a core.
func Povray() *Kernel {
	const W, H = 128, 128
	const band = 32 // scene objects per scanline band (one 2 KB block)
	img := poly.NewArray("image", W, H)
	scene := poly.NewArray("scene", band*H).WithElemSize(64)
	nest := poly.NewNest(
		poly.RectLoop("x", 0, W-1),
		poly.RectLoop("y", 0, H-1),
	)
	refs := []*poly.Ref{
		poly.NewRef(scene, poly.Read, j2().Scale(band)),                  // band of scanline y
		poly.NewRef(scene, poly.Read, j2().Scale(band).AddConst(band/2)), // second band object
		poly.NewRef(img, poly.Write, i2(), j2()),
	}
	return &Kernel{
		Name: "povray", Source: "Spec2006", Sequential: true,
		Description: "ray tracing (column-major pixel walk over per-scanline scene bands)",
		Arrays:      []*poly.Array{img, scene}, Nest: nest, Refs: refs,
	}
}

// Mesa mirrors mesa (locally maintained): 3-D vertex transformation — a
// streaming read/write pair plus an extremely hot transform matrix.
func Mesa() *Kernel {
	const V = 16384
	vin := poly.NewArray("vin", V).WithElemSize(64)
	vout := poly.NewArray("vout", V).WithElemSize(64)
	mvp := poly.NewArray("mvp", 16)
	nest := poly.NewNest(poly.RectLoop("v", 0, V-1))
	refs := []*poly.Ref{
		poly.NewRef(vin, poly.Read, j1()),
		poly.NewRef(mvp, poly.Read, poly.Constant(0)), // hot matrix block
		poly.NewRef(vout, poly.Write, j1()),
	}
	return &Kernel{
		Name: "mesa", Source: "local", Sequential: true,
		Description: "3-D vertex transform (streaming vertices, hot shared matrix)",
		Arrays:      []*poly.Array{vin, vout, mvp}, Nest: nest, Refs: refs,
	}
}

// H264 mirrors H.264 (locally maintained): bidirectional motion
// estimation — each macroblock reads its own pixels, the forward reference
// frame nearby, and the backward reference frame in display order, which
// runs opposite to coding order: distant sharing between early and late
// macroblocks.
func H264() *Kernel {
	const M = 24576
	cur := poly.NewArray("cur", M).WithElemSize(64)
	fwd := poly.NewArray("fwdRef", M).WithElemSize(64)
	bwd := poly.NewArray("bwdRef", M).WithElemSize(64)
	sad := poly.NewArray("sad", M)
	nest := poly.NewNest(poly.RectLoop("m", 1, M-2))
	refs := []*poly.Ref{
		poly.NewRef(cur, poly.Read, j1()),
		poly.NewRef(fwd, poly.Read, j1().AddConst(-1)),
		poly.NewRef(fwd, poly.Read, j1().AddConst(1)),
		poly.NewRef(bwd, poly.Read, j1()),                         // co-located window
		poly.NewRef(bwd, poly.Read, j1().Scale(-1).AddConst(M-1)), // display-order window
		poly.NewRef(sad, poly.Write, j1()),
	}
	return &Kernel{
		Name: "h264", Source: "local", Sequential: true,
		Description: "H.264 bidirectional motion estimation (fwd + reversed bwd reference frames)",
		Arrays:      []*poly.Array{cur, fwd, bwd, sad}, Nest: nest, Refs: refs,
	}
}

// All returns the twelve Table 2 kernels in the paper's order.
func All() []*Kernel {
	return []*Kernel{
		Applu(), Galgel(), Equake(), Cg(), Sp(), Bodytrack(),
		Facesim(), Freqmine(), Namd(), Povray(), Mesa(), H264(),
	}
}

// ByName returns the named kernel (the twelve plus "fig5" and "wavefront").
func ByName(name string) (*Kernel, error) {
	for _, k := range All() {
		if k.Name == name {
			return k, nil
		}
	}
	switch name {
	case "fig5":
		return Fig5Example(), nil
	case "wavefront":
		return Wavefront(), nil
	case "treereduce":
		return TreeReduce(), nil
	}
	names := make([]string, 0, 15)
	for _, k := range All() {
		names = append(names, k.Name)
	}
	names = append(names, "fig5", "wavefront", "treereduce")
	sort.Strings(names)
	return nil, fmt.Errorf("workloads: unknown kernel %q (have %v)", name, names)
}

// Fig5Example reproduces the paper's running example (Figure 5): a 1-D
// loop over B with three references B[j], B[j+2k], B[j-2k], twelve data
// blocks of k elements, which tags into the eight iteration groups of
// Figure 10(a).
func Fig5Example() *Kernel {
	const k = 256 // elements per 2 KB block of float64
	const m = 12 * k
	b := poly.NewArray("B", m)
	nest := poly.NewNest(poly.RectLoop("j", 2*k, m-2*k-1))
	// The paper treats the example as dependence-free ("we consider a
	// dependence-free case here for simplicity", §3.5.4), so the update is
	// modeled as three reads — the tags and the eight iteration groups of
	// Figure 10(a) depend only on which blocks are touched.
	refs := []*poly.Ref{
		poly.NewRef(b, poly.Read, j1()),
		poly.NewRef(b, poly.Read, j1().AddConst(2*k)),
		poly.NewRef(b, poly.Read, j1().AddConst(-2*k)),
	}
	return &Kernel{
		Name: "fig5", Source: "paper",
		Description: "Figure 5 running example: B[j] + B[j+2k] + B[j-2k], 12 blocks",
		Arrays:      []*poly.Array{b}, Nest: nest, Refs: refs,
	}
}

// TreeReduce is the second §3.5.2 study kernel: an in-place binary
// reduction (A[j] = A[2j] + A[2j+1]) whose anti-dependences form one
// connected component with a *wide* DAG — the conservative mode must
// serialize the whole loop onto one core, while the synchronized mode can
// run each dependence-free wave across all cores. This is the case where
// distributing a dependent loop pays off.
func TreeReduce() *Kernel {
	const N = 16384
	a := poly.NewArray("A", N)
	nest := poly.NewNest(poly.RectLoop("j", 1, N/2-1))
	refs := []*poly.Ref{
		poly.NewRef(a, poly.Read, j1().Scale(2)),
		poly.NewRef(a, poly.Read, j1().Scale(2).AddConst(1)),
		poly.NewRef(a, poly.Write, j1()),
	}
	return &Kernel{
		Name: "treereduce", Source: "paper",
		Description: "in-place binary tree reduction (wide anti-dependence DAG)",
		Arrays:      []*poly.Array{a}, Nest: nest, Refs: refs,
	}
}

// Wavefront is a loop with genuine loop-carried dependences for the
// §3.5.2 studies: a 1-D Gauss–Seidel-style update where iteration j reads
// the value written by iteration j-256 (one data block earlier).
func Wavefront() *Kernel {
	const N = 8192
	a := poly.NewArray("A", N)
	nest := poly.NewNest(poly.RectLoop("j", 256, N-1))
	refs := []*poly.Ref{
		poly.NewRef(a, poly.Read, j1().AddConst(-256)),
		poly.NewRef(a, poly.Write, j1()),
	}
	return &Kernel{
		Name: "wavefront", Source: "paper",
		Description: "1-D wavefront with distance-256 loop-carried flow dependences",
		Arrays:      []*poly.Array{a}, Nest: nest, Refs: refs,
	}
}
