package workloads

import (
	"fmt"

	"repro/internal/poly"
)

// Scaled returns a size-scaled variant of a 1-D mirror-structured kernel
// for weak-scaling studies: the dataset and iteration count grow by the
// given factor while the sharing structure is preserved. Only the
// distant-sharing record kernels scale cleanly this way; others return an
// error.
//
// The variant's Name carries an "-x<factor>" suffix: scaled kernels are
// structurally different loop nests from their Table 2 namesakes, and the
// experiment runner memoizes simulation results by kernel name, so the two
// must never share an identity (a factor-1 "galgel" colliding with the real
// galgel on the same machine would silently cross-pollute experiments).
func Scaled(name string, factor int) (*Kernel, error) {
	k, err := scaled(name, factor)
	if err != nil {
		return nil, err
	}
	k.Name = fmt.Sprintf("%s-x%d", name, factor)
	return k, nil
}

func scaled(name string, factor int) (*Kernel, error) {
	if factor < 1 {
		return nil, fmt.Errorf("workloads: factor must be >= 1, got %d", factor)
	}
	switch name {
	case "galgel":
		return scaledMirror("galgel", 65536*int64(factor), "V", "W",
			"fluid dynamics, oscillatory instability (symmetric spectral modes)"), nil
	case "bodytrack":
		k := scaledMirror("bodytrack", 32768*int64(factor), "edgeMap", "weight",
			"particle-filter body tracking (scattered particles probing shared edge maps)")
		return k, nil
	case "namd":
		n := 32768 * int64(factor)
		pos := poly.NewArray("pos", n).WithElemSize(64)
		frc := poly.NewArray("forceNew", n).WithElemSize(64)
		nest := poly.NewNest(poly.RectLoop("a", 0, n-9))
		refs := []*poly.Ref{
			poly.NewRef(pos, poly.Read, j1()),
			poly.NewRef(pos, poly.Read, j1().AddConst(8)),
			poly.NewRef(pos, poly.Read, j1().Scale(-1).AddConst(n-1)),
			poly.NewRef(frc, poly.Write, j1()),
		}
		return &Kernel{
			Name: "namd", Source: "Spec2006", Sequential: true,
			Description: "molecular dynamics (cutoff neighbours + symmetric pair lists)",
			Arrays:      []*poly.Array{pos, frc}, Nest: nest, Refs: refs,
		}, nil
	default:
		return nil, fmt.Errorf("workloads: kernel %q has no scaled variant", name)
	}
}

// scaledMirror builds the mirror-sharing shape at size n: read[j],
// read[n-1-j], write[j] over 64-byte records.
func scaledMirror(name string, n int64, readName, writeName, desc string) *Kernel {
	rd := poly.NewArray(readName, n).WithElemSize(64)
	wr := poly.NewArray(writeName, n).WithElemSize(64)
	nest := poly.NewNest(poly.RectLoop("j", 0, n-1))
	refs := []*poly.Ref{
		poly.NewRef(rd, poly.Read, j1()),
		poly.NewRef(rd, poly.Read, j1().Scale(-1).AddConst(n-1)),
		poly.NewRef(wr, poly.Write, j1()),
	}
	return &Kernel{
		Name: name, Source: "scaled",
		Description: desc,
		Arrays:      []*poly.Array{rd, wr}, Nest: nest, Refs: refs,
	}
}
