// Package workloads provides the application kernels of the evaluation
// (Table 2). The paper uses twelve applications from SpecOMP, NAS, Parsec,
// Spec2006 and two locally maintained codes; we do not have those sources
// or their gigabyte inputs, so each application is represented by a
// synthetic loop-nest kernel whose *data sharing structure* mirrors the
// application's character. The mapper only ever sees iteration spaces,
// array references and data blocks, so kernels with the right sharing
// structure exercise exactly the same code paths as the originals (see
// DESIGN.md, substitution table).
//
// Sharing structures represented:
//
//   - near (stencil) sharing: neighbouring iterations touch overlapping
//     blocks (applu, sp, equake, cg, facesim) — default contiguous
//     distribution already handles these reasonably, so the topology-aware
//     gain is modest, as in the paper's per-application spread;
//   - distant (symmetric / multi-frame / column-band) sharing: iterations
//     far apart in program order touch the same blocks (galgel's spectral
//     symmetry, namd's symmetric pair lists, bodytrack's mirrored strip
//     probes, h264's bidirectional reference frames, povray's per-scanline
//     scene bands) — contiguous chunking replicates these blocks across
//     sockets and the topology-aware mapper wins big;
//   - hot-table sharing: every iteration touches a tiny table (mesa,
//     freqmine) — mapping matters little, again matching the paper's
//     low-gain applications.
//
// Arrays use 64-byte elements where the original works on records (pixels,
// particles, mesh nodes, macroblocks) and 8-byte elements for scalar
// double-precision grids. Every kernel here is fully parallel (distinct
// write targets per iteration; reductions are flattened into per-iteration
// references), matching §3.1's observation that the loops compilers run in
// parallel overwhelmingly carry no dependences. Wavefront (not part of the
// twelve) carries real dependences for the §3.5.2 studies.
//
// Datasets are scaled from the paper's 4.6 MB–2.8 GB down to 0.5–4 MB so
// trace-driven simulation stays fast, while still exceeding the private
// caches of the Table 1 machines — which is what makes placement matter.
package workloads
