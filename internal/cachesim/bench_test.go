package cachesim

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
	"repro/internal/trace"
)

// BenchmarkSimulatorThroughput measures raw simulated accesses per second
// on a representative multi-core random trace.
func BenchmarkSimulatorThroughput(b *testing.B) {
	m := topology.Dunnington()
	rng := rand.New(rand.NewSource(1))
	const perCore = 4096
	cores := make([][]trace.Access, 12)
	for c := range cores {
		for i := 0; i < perCore; i++ {
			cores[c] = append(cores[c], trace.Access{Addr: int64(rng.Intn(4 << 20)), Size: 8})
		}
	}
	p := &trace.Program{NumCores: 12, Rounds: [][][]trace.Access{cores}}
	b.SetBytes(12 * perCore)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateOnce(m, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorStreaming: sequential streams are the best case for
// the line-granular caches.
func BenchmarkSimulatorStreaming(b *testing.B) {
	m := topology.Dunnington()
	const perCore = 4096
	cores := make([][]trace.Access, 12)
	for c := range cores {
		base := int64(c) << 20
		for i := 0; i < perCore; i++ {
			cores[c] = append(cores[c], trace.Access{Addr: base + int64(i)*8, Size: 8})
		}
	}
	p := &trace.Program{NumCores: 12, Rounds: [][][]trace.Access{cores}}
	b.SetBytes(12 * perCore)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateOnce(m, p); err != nil {
			b.Fatal(err)
		}
	}
}
