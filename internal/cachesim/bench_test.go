package cachesim

import (
	"math/rand"
	"testing"

	"repro/internal/poly"
	"repro/internal/topology"
	"repro/internal/trace"
)

// BenchmarkSimulatorThroughput measures raw simulated accesses per second
// on a representative multi-core random trace.
func BenchmarkSimulatorThroughput(b *testing.B) {
	m := topology.Dunnington()
	rng := rand.New(rand.NewSource(1))
	const perCore = 4096
	cores := make([][]trace.Access, 12)
	for c := range cores {
		for i := 0; i < perCore; i++ {
			cores[c] = append(cores[c], trace.Access{Addr: int64(rng.Intn(4 << 20)), Size: 8})
		}
	}
	p := &trace.Program{NumCores: 12, Rounds: [][][]trace.Access{cores}}
	b.SetBytes(12 * perCore)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateOnce(m, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorStreaming: sequential streams are the best case for
// the line-granular caches.
func BenchmarkSimulatorStreaming(b *testing.B) {
	m := topology.Dunnington()
	const perCore = 4096
	cores := make([][]trace.Access, 12)
	for c := range cores {
		base := int64(c) << 20
		for i := 0; i < perCore; i++ {
			cores[c] = append(cores[c], trace.Access{Addr: base + int64(i)*8, Size: 8})
		}
	}
	p := &trace.Program{NumCores: 12, Rounds: [][][]trace.Access{cores}}
	b.SetBytes(12 * perCore)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateOnce(m, p); err != nil {
			b.Fatal(err)
		}
	}
}

// benchOrder builds a 12-core sequential iteration order over one large
// array — the same reference stream for both source benchmarks below.
func benchOrder() ([][]poly.Point, []*poly.Ref, *poly.Layout) {
	const perCore = 16384
	a := poly.NewArray("A", 12*perCore)
	refs := []*poly.Ref{poly.NewRef(a, poly.Read, poly.Var(0, 1))}
	layout := poly.NewLayout(2048, a)
	perCoreIters := make([][]poly.Point, 12)
	for c := range perCoreIters {
		base := int64(c * perCore)
		for i := int64(0); i < perCore; i++ {
			perCoreIters[c] = append(perCoreIters[c], poly.Pt(base+i))
		}
	}
	return perCoreIters, refs, layout
}

// BenchmarkSourceMaterialized builds the full access stream fresh every
// run before simulating — the pre-streaming behaviour, O(accesses) bytes
// per run. The simulator is constructed once so B/op isolates the trace
// layer (cache-array construction is identical either way and would only
// dilute the comparison). Compare against BenchmarkSourceStreamed.
func BenchmarkSourceMaterialized(b *testing.B) {
	sim := New(topology.Dunnington())
	perCore, refs, layout := benchOrder()
	b.SetBytes(12 * 16384)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := trace.FromOrder(perCore, refs, layout)
		if _, err := sim.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSourceStreamed feeds the simulator from lazy cursors — the
// streaming path, O(cores) state per run regardless of trace length.
func BenchmarkSourceStreamed(b *testing.B) {
	sim := New(topology.Dunnington())
	perCore, refs, layout := benchOrder()
	b.SetBytes(12 * 16384)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := trace.StreamOrder(perCore, refs, layout)
		if _, err := sim.Run(src); err != nil {
			b.Fatal(err)
		}
	}
}
