package cachesim

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/trace"
)

// oneCoreMachine builds a single-core machine with one L1 for exact-count
// tests: 2 sets x 2 ways x 64B lines = 256 bytes, 4-cycle hits, 100-cycle
// memory, no bandwidth contention.
func oneCoreMachine() *topology.Machine {
	m := &topology.Machine{
		Name:       "tiny",
		ClockGHz:   1,
		MemLatency: 100,
	}
	l1 := &topology.Node{Kind: topology.Cache, Level: 1, SizeBytes: 256, Assoc: 2, LineBytes: 64, Latency: 4, CoreID: -1}
	c := &topology.Node{Kind: topology.Core, CoreID: -1}
	l1.Children = []*topology.Node{c}
	root := &topology.Node{Kind: topology.Memory, CoreID: -1, Children: []*topology.Node{l1}}
	m.Root = root
	return finalize(m)
}

// finalize is a test-only helper: rebuild machine indexes via Clone, which
// calls the internal finalizer.
func finalize(m *topology.Machine) *topology.Machine { return topology.Clone(m) }

// prog builds a one-round single-core program from addresses.
func prog(addrs ...int64) *trace.Program {
	accesses := make([]trace.Access, len(addrs))
	for i, a := range addrs {
		accesses[i] = trace.Access{Addr: a, Size: 8}
	}
	return &trace.Program{NumCores: 1, Rounds: [][][]trace.Access{{accesses}}}
}

func TestColdMissThenHit(t *testing.T) {
	m := oneCoreMachine()
	res, err := SimulateOnce(m, prog(0, 0, 8)) // same line three times
	if err != nil {
		t.Fatal(err)
	}
	l1 := res.Levels[1]
	if l1.Misses != 1 || l1.Hits != 2 {
		t.Fatalf("L1 = %d misses %d hits, want 1/2", l1.Misses, l1.Hits)
	}
	// Cost: miss = 4 + 100, hits = 4 each.
	if res.TotalCycles != 104+4+4 {
		t.Fatalf("cycles = %d, want 112", res.TotalCycles)
	}
	if res.MemAccesses != 1 {
		t.Fatalf("mem accesses = %d", res.MemAccesses)
	}
}

func TestLRUEviction(t *testing.T) {
	m := oneCoreMachine()
	// Set 0 holds lines with (addr>>6)%2 == 0: lines 0, 128, 256 map to
	// set 0 in a 2-way cache; touching all three then line 0 again evicts
	// in LRU order: 0, 128 resident after 256? No: 0,128 fill; 256 evicts
	// 0 (LRU); re-access 0 must miss.
	res, err := SimulateOnce(m, prog(0, 128, 256, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels[1].Misses != 4 {
		t.Fatalf("misses = %d, want 4 (LRU evicted line 0)", res.Levels[1].Misses)
	}
	// LRU refresh: 0, 128, 0-again (refresh), 256 (evicts 128), 0 hits.
	res, err = SimulateOnce(m, prog(0, 128, 0, 256, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels[1].Misses != 3 || res.Levels[1].Hits != 2 {
		t.Fatalf("refresh case: %d misses %d hits, want 3/2", res.Levels[1].Misses, res.Levels[1].Hits)
	}
}

func TestSetIndexing(t *testing.T) {
	m := oneCoreMachine()
	// Lines 0 and 64 map to different sets: no conflict.
	res, err := SimulateOnce(m, prog(0, 64, 0, 64))
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels[1].Misses != 2 || res.Levels[1].Hits != 2 {
		t.Fatalf("%d misses %d hits, want 2/2", res.Levels[1].Misses, res.Levels[1].Hits)
	}
}

func TestInclusiveFill(t *testing.T) {
	// Two-level: miss at both fills both; re-access after L1 eviction
	// hits L2.
	d := topology.Dunnington()
	sim := New(d)
	// Touch 1024 distinct lines (L1 = 512 lines) then the first again:
	// L1 must miss, L2 must hit.
	var accesses []trace.Access
	for i := int64(0); i < 1024; i++ {
		accesses = append(accesses, trace.Access{Addr: i * 64, Size: 8})
	}
	accesses = append(accesses, trace.Access{Addr: 0, Size: 8})
	p := &trace.Program{NumCores: 1, Rounds: [][][]trace.Access{{accesses}}}
	res, err := sim.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels[2].Hits != 1 {
		t.Fatalf("L2 hits = %d, want exactly the re-access", res.Levels[2].Hits)
	}
	if res.MemAccesses != 1024 {
		t.Fatalf("mem accesses = %d, want 1024 cold", res.MemAccesses)
	}
}

func TestBarrierAlignment(t *testing.T) {
	// Two cores, synchronized: round 1 core 0 does 3 accesses, core 1 does
	// 1; after the barrier both clocks equal max + BarrierCost.
	d := topology.Dunnington()
	p := &trace.Program{
		NumCores:     2,
		Synchronized: true,
		Rounds: [][][]trace.Access{
			{
				{{Addr: 0, Size: 8}, {Addr: 1 << 20, Size: 8}, {Addr: 2 << 20, Size: 8}},
				{{Addr: 3 << 20, Size: 8}},
			},
			{
				{{Addr: 0, Size: 8}},
				nil,
			},
		},
	}
	res, err := SimulateOnce(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Barriers != 2 {
		t.Fatalf("barriers = %d, want 2", res.Barriers)
	}
	if res.CyclesPerCore[0] != res.CyclesPerCore[1] {
		t.Fatal("clocks not aligned after synchronized rounds")
	}
}

func TestUnsynchronizedNoAlignment(t *testing.T) {
	d := topology.Dunnington()
	p := &trace.Program{
		NumCores: 2,
		Rounds: [][][]trace.Access{
			{
				{{Addr: 0, Size: 8}, {Addr: 1 << 20, Size: 8}},
				{{Addr: 3 << 20, Size: 8}},
			},
		},
	}
	res, err := SimulateOnce(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Barriers != 0 {
		t.Fatal("unsynchronized program charged barriers")
	}
	if res.CyclesPerCore[0] == res.CyclesPerCore[1] {
		t.Fatal("clocks should differ without alignment")
	}
}

func TestMemoryContention(t *testing.T) {
	// Two cores issuing misses at the same instant: the second must queue.
	m := topology.Dunnington() // MemOccupancy 8
	p := &trace.Program{
		NumCores: 2,
		Rounds: [][][]trace.Access{
			{
				{{Addr: 0, Size: 8}},
				{{Addr: 1 << 22, Size: 8}},
			},
		},
	}
	res, err := SimulateOnce(m, p)
	if err != nil {
		t.Fatal(err)
	}
	// Core 0 pays the plain path; core 1 pays + queueing (its arrival
	// coincides, channel busy for 8 cycles).
	if res.CyclesPerCore[1] <= res.CyclesPerCore[0] {
		t.Fatalf("no queueing: core0=%d core1=%d", res.CyclesPerCore[0], res.CyclesPerCore[1])
	}
	if res.CyclesPerCore[1]-res.CyclesPerCore[0] > 8 {
		t.Fatalf("queueing too large: %d vs %d", res.CyclesPerCore[1], res.CyclesPerCore[0])
	}

	// Without occupancy both cost the same.
	m2 := topology.Dunnington()
	m2.MemOccupancy = 0
	res2, err := SimulateOnce(m2, p)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CyclesPerCore[0] != res2.CyclesPerCore[1] {
		t.Fatal("contention-free run should be symmetric")
	}
}

func TestPerCoreCounters(t *testing.T) {
	d := topology.Dunnington()
	p := &trace.Program{
		NumCores: 3,
		Rounds: [][][]trace.Access{
			{
				{{Addr: 0, Size: 8}, {Addr: 64, Size: 8}},
				{{Addr: 1 << 20, Size: 8}},
				nil,
			},
		},
	}
	res, err := SimulateOnce(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.AccessesPerCore[0] != 2 || res.AccessesPerCore[1] != 1 || res.AccessesPerCore[2] != 0 {
		t.Fatalf("per-core accesses = %v", res.AccessesPerCore)
	}
	if res.Accesses != 3 {
		t.Fatalf("total accesses = %d", res.Accesses)
	}
}

func TestTooManyCoresRejected(t *testing.T) {
	d := topology.Dunnington()
	p := &trace.Program{NumCores: 13, Rounds: [][][]trace.Access{make([][]trace.Access, 13)}}
	if _, err := SimulateOnce(d, p); err == nil {
		t.Fatal("13-core program on 12-core machine should error")
	}
}

func TestWarmCacheAcrossRuns(t *testing.T) {
	d := topology.Dunnington()
	sim := New(d)
	p := prog12(0)
	r1, err := sim.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Levels[1].Misses != 1 {
		t.Fatalf("cold run misses = %d", r1.Levels[1].Misses)
	}
	r2, err := sim.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Levels[1].Misses != 0 {
		t.Fatalf("warm run misses = %d, want 0", r2.Levels[1].Misses)
	}
	// SimulateOnce always starts cold.
	r3, err := SimulateOnce(d, p)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Levels[1].Misses != 1 {
		t.Fatal("SimulateOnce should start cold")
	}
}

// prog12 builds a 12-core-shaped single-access program for Dunnington.
func prog12(addr int64) *trace.Program {
	cores := make([][]trace.Access, 12)
	cores[0] = []trace.Access{{Addr: addr, Size: 8}}
	return &trace.Program{NumCores: 12, Rounds: [][][]trace.Access{cores}}
}

func TestWriteBackAccounting(t *testing.T) {
	m := oneCoreMachine() // 4-line L1, single level
	// Write 5 distinct conflicting lines mapping to set 0 (stride 128):
	// the 2-way set holds 2, so 3 dirty victims must be written back.
	var accesses []trace.Access
	for i := int64(0); i < 5; i++ {
		accesses = append(accesses, trace.Access{Addr: i * 128, Size: 8, Write: true})
	}
	p := &trace.Program{NumCores: 1, Rounds: [][][]trace.Access{{accesses}}}
	res, err := SimulateOnce(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Writebacks != 3 {
		t.Fatalf("writebacks = %d, want 3", res.Writebacks)
	}
	// Clean reads never write back.
	var reads []trace.Access
	for i := int64(0); i < 5; i++ {
		reads = append(reads, trace.Access{Addr: i * 128, Size: 8})
	}
	p2 := &trace.Program{NumCores: 1, Rounds: [][][]trace.Access{{reads}}}
	res2, err := SimulateOnce(m, p2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Writebacks != 0 {
		t.Fatalf("clean evictions wrote back: %d", res2.Writebacks)
	}
}

func TestWriteBackPropagatesDirtyUp(t *testing.T) {
	// On Dunnington, write a line, evict it from L1 by filling its set,
	// then evict it from L2 and L3: the final eviction must count as an
	// off-chip write-back even though the write happened at L1 only.
	d := topology.Dunnington()
	sim := New(d)
	var accesses []trace.Access
	accesses = append(accesses, trace.Access{Addr: 0, Size: 8, Write: true})
	// Thrash everything with clean reads over > L3 capacity.
	const l3Lines = (12 << 20) / 64
	for i := int64(1); i <= 2*l3Lines; i++ {
		accesses = append(accesses, trace.Access{Addr: i * 64, Size: 8})
	}
	p := &trace.Program{NumCores: 1, Rounds: [][][]trace.Access{{accesses}}}
	res, err := sim.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Writebacks == 0 {
		t.Fatal("dirty line evicted through the hierarchy without a write-back")
	}
}

func TestLevelStatsMissRate(t *testing.T) {
	s := LevelStats{Accesses: 10, Misses: 3}
	if s.MissRate() != 0.3 {
		t.Fatalf("MissRate = %f", s.MissRate())
	}
	var zero LevelStats
	if zero.MissRate() != 0 {
		t.Fatal("zero stats should have zero miss rate")
	}
}

func TestPerCacheStats(t *testing.T) {
	d := topology.Dunnington()
	res, err := SimulateOnce(d, prog12(0))
	if err != nil {
		t.Fatal(err)
	}
	// 12 L1 + 6 L2 + 2 L3 = 20 cache instances.
	if len(res.PerCache) != 20 {
		t.Fatalf("PerCache has %d entries, want 20", len(res.PerCache))
	}
	// Per-instance sums must match the aggregated level stats.
	sum := map[int]uint64{}
	for _, cs := range res.PerCache {
		sum[cs.Level] += cs.Hits + cs.Misses
	}
	for l := 1; l <= 3; l++ {
		if sum[l] != res.Levels[l].Accesses {
			t.Fatalf("L%d per-cache sum %d != level accesses %d", l, sum[l], res.Levels[l].Accesses)
		}
	}
	// Core 0's access went through exactly one L1 (core 0's).
	for _, cs := range res.PerCache {
		if cs.Level == 1 && len(cs.Cores) == 1 && cs.Cores[0] == 0 {
			if cs.Hits+cs.Misses != 1 {
				t.Fatalf("core 0's L1 saw %d accesses, want 1", cs.Hits+cs.Misses)
			}
		} else if cs.Level == 1 && cs.Hits+cs.Misses != 0 {
			t.Fatalf("idle core's L1 %s saw traffic", cs.Label)
		}
	}
}

func TestResultHelpers(t *testing.T) {
	d := topology.Dunnington()
	res, err := SimulateOnce(d, prog12(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.MissRate(1) != 1.0 {
		t.Fatalf("single cold access L1 miss rate = %f", res.MissRate(1))
	}
	if res.Misses(9) != 0 || res.MissRate(9) != 0 {
		t.Fatal("absent level should report zeros")
	}
	if res.String() == "" {
		t.Fatal("String empty")
	}
}
