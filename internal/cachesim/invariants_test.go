package cachesim

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/check"
	"repro/internal/topology"
	"repro/internal/trace"
)

// randomProgram builds an unsynchronized random-address program for m.
func randomProgram(m *topology.Machine, seed int64, perCore int) *trace.Program {
	rng := rand.New(rand.NewSource(seed))
	n := m.NumCores()
	cores := make([][]trace.Access, n)
	for c := range cores {
		for i := 0; i < perCore; i++ {
			cores[c] = append(cores[c], trace.Access{
				Addr:  int64(rng.Intn(1 << 21)),
				Size:  8,
				Write: rng.Intn(4) == 0,
			})
		}
	}
	return &trace.Program{NumCores: n, Rounds: [][][]trace.Access{cores}}
}

// TestCheckedRunIsTransparent: enabling the runtime invariants changes
// nothing about a healthy run's statistics — the checks observe, they never
// steer.
func TestCheckedRunIsTransparent(t *testing.T) {
	for _, m := range topology.Commercial() {
		plain, err := SimulateContext(context.Background(), m, randomProgram(m, 17, 800), Limits{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		checked, err := SimulateContext(context.Background(), m, randomProgram(m, 17, 800), Limits{Check: check.Invariants})
		if err != nil {
			t.Fatalf("%s: healthy run violated an invariant: %v", m.Name, err)
		}
		if !reflect.DeepEqual(plain, checked) {
			t.Errorf("%s: checked run differs from unchecked run", m.Name)
		}
	}
}

// TestReplaceHookEvadesInvariants documents the chaos matrix's hard case:
// a perturbed replacement decision leaves every structural invariant intact
// (the run completes under full invariant checking) while actually changing
// the statistics — which is exactly why the differential oracle exists.
func TestReplaceHookEvadesInvariants(t *testing.T) {
	m := topology.Dunnington()
	prog := func() *trace.Program { return randomProgram(m, 23, 1200) }
	clean, err := SimulateContext(context.Background(), m, prog(), Limits{Check: check.Invariants})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	hook := func(level, set, victim, assoc int) int {
		calls++
		if calls%5 != 0 {
			return -1
		}
		return (victim + 1) % assoc
	}
	perturbed, err := SimulateContext(context.Background(), m, prog(), Limits{Check: check.Invariants, Replace: hook})
	if err != nil {
		t.Fatalf("perturbed replacement tripped a structural invariant (it must only be caught by the oracle): %v", err)
	}
	if calls == 0 {
		t.Fatal("replacement hook never consulted")
	}
	if reflect.DeepEqual(clean, perturbed) {
		t.Error("perturbed replacement left all statistics unchanged; the fault would be undetectable")
	}
}
