package cachesim

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/check"
	"repro/internal/topology"
	"repro/internal/trace"
)

// randProgram builds a synchronized multi-round random trace: mixed
// reads/writes, skewed per-core volumes (including idle cores) so the
// event heap, barrier and queueing paths all exercise.
func randProgram(seed int64, ncores, rounds, perCore int) *trace.Program {
	rng := rand.New(rand.NewSource(seed))
	p := &trace.Program{NumCores: ncores, Synchronized: rounds > 1}
	for r := 0; r < rounds; r++ {
		cores := make([][]trace.Access, ncores)
		for c := range cores {
			n := perCore
			switch c % 4 {
			case 1:
				n = perCore / 2
			case 2:
				n = perCore * 2
			case 3:
				if r == 0 {
					n = 0 // a core idle for a whole round
				}
			}
			for i := 0; i < n; i++ {
				cores[c] = append(cores[c], trace.Access{
					Addr:  int64(rng.Intn(6 << 20)),
					Size:  8,
					Write: rng.Intn(3) == 0,
				})
			}
		}
		p.Rounds = append(p.Rounds, cores)
	}
	return p
}

// partMachines are the Table 1 commercial topologies: Dunnington's private
// prefix is L1 only (L2 is shared by pairs), Harpertown's likewise,
// Nehalem's is L1+L2 — together they cover one- and two-level private
// prefixes with different class geometries.
func partMachines() map[string]*topology.Machine {
	return map[string]*topology.Machine{
		"dunnington": topology.Dunnington(),
		"harpertown": topology.Harpertown(),
		"nehalem":    topology.Nehalem(),
	}
}

// TestPartitionedMatchesSequential: the set-partitioned engine must
// reproduce the sequential Result field for field at every worker count,
// under full checking, on every commercial topology — including across
// warm-cache reruns, where the engines' (unobservable) internal LRU stamp
// values differ but every observable outcome must not.
func TestPartitionedMatchesSequential(t *testing.T) {
	for name, m := range partMachines() {
		p := randProgram(7, m.NumCores(), 3, 1024)
		seq := New(m)
		lim := Limits{Check: check.Full}
		want1, err := seq.RunContext(context.Background(), p, lim)
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		want2, err := seq.RunContext(context.Background(), p, lim) // warm rerun
		if err != nil {
			t.Fatalf("%s sequential warm: %v", name, err)
		}
		for _, workers := range []int{2, 4, 8} {
			par := New(m)
			var st PhaseStats
			plim := Limits{Check: check.Full, SimWorkers: workers, Stats: &st}
			got1, err := par.RunContext(context.Background(), p, plim)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if !st.Partitioned {
				t.Fatalf("%s workers=%d: engine fell back to sequential (plan rejected)", name, workers)
			}
			got2, err := par.RunContext(context.Background(), p, plim)
			if err != nil {
				t.Fatalf("%s workers=%d warm: %v", name, workers, err)
			}
			if !reflect.DeepEqual(got1, want1) {
				t.Errorf("%s workers=%d: cold result differs\ngot:  %+v\nwant: %+v", name, workers, got1, want1)
			}
			if !reflect.DeepEqual(got2, want2) {
				t.Errorf("%s workers=%d: warm result differs\ngot:  %+v\nwant: %+v", name, workers, got2, want2)
			}
			if st.Escaped == 0 {
				t.Errorf("%s workers=%d: no accesses escaped the private prefix (trace too small to exercise replay)", name, workers)
			}
		}
	}
}

// TestPartitionedSequentialInterleaving: cache state left by one engine is
// observably identical to the other's — a partitioned run followed by a
// sequential warm run must equal two sequential runs, and vice versa.
func TestPartitionedSequentialInterleaving(t *testing.T) {
	m := topology.Nehalem()
	p := randProgram(11, m.NumCores(), 2, 2048)
	ctx := context.Background()

	seq := New(m)
	if _, err := seq.RunContext(ctx, p, Limits{Check: check.Full}); err != nil {
		t.Fatal(err)
	}
	want, err := seq.RunContext(ctx, p, Limits{Check: check.Full})
	if err != nil {
		t.Fatal(err)
	}

	mixed := New(m)
	if _, err := mixed.RunContext(ctx, p, Limits{Check: check.Full, SimWorkers: 4}); err != nil {
		t.Fatal(err)
	}
	got, err := mixed.RunContext(ctx, p, Limits{Check: check.Full})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sequential warm run after partitioned run differs\ngot:  %+v\nwant: %+v", got, want)
	}

	mixed2 := New(m)
	if _, err := mixed2.RunContext(ctx, p, Limits{Check: check.Full}); err != nil {
		t.Fatal(err)
	}
	got2, err := mixed2.RunContext(ctx, p, Limits{Check: check.Full, SimWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Errorf("partitioned warm run after sequential run differs\ngot:  %+v\nwant: %+v", got2, want)
	}
}

// TestPartitionedBudgetErrorIdentical: a cycle-budget abort must surface
// the identical error text at the identical point in both engines.
func TestPartitionedBudgetErrorIdentical(t *testing.T) {
	m := topology.Dunnington()
	p := randProgram(3, m.NumCores(), 1, 2048)
	lim := Limits{MaxCycles: 50_000}
	_, errSeq := New(m).RunContext(context.Background(), p, lim)
	lim.SimWorkers = 4
	_, errPar := New(m).RunContext(context.Background(), p, lim)
	if errSeq == nil || errPar == nil {
		t.Fatalf("expected budget aborts, got seq=%v par=%v", errSeq, errPar)
	}
	if !errors.Is(errSeq, ErrCycleBudget) || !errors.Is(errPar, ErrCycleBudget) {
		t.Fatalf("errors not ErrCycleBudget: seq=%v par=%v", errSeq, errPar)
	}
	if errSeq.Error() != errPar.Error() {
		t.Errorf("budget error text differs:\nseq: %s\npar: %s", errSeq, errPar)
	}
}

// TestPartitionedFallbacks: the engine must decline — and still produce
// sequential-identical results — when a Replace hook is installed (order-
// dependent chaos state) and when SimWorkers is not above 1.
func TestPartitionedFallbacks(t *testing.T) {
	m := topology.Dunnington()
	p := randProgram(5, m.NumCores(), 1, 512)
	hook := func(level, set, victim, assoc int) int { return 0 }

	want, err := New(m).RunContext(context.Background(), p, Limits{Replace: hook})
	if err != nil {
		t.Fatal(err)
	}
	var st PhaseStats
	got, err := New(m).RunContext(context.Background(), p, Limits{Replace: hook, SimWorkers: 4, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if st.Partitioned {
		t.Error("engine partitioned despite a Replace hook")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fallback result differs from sequential\ngot:  %+v\nwant: %+v", got, want)
	}

	var st1 PhaseStats
	if _, err := New(m).RunContext(context.Background(), p, Limits{SimWorkers: 1, Stats: &st1}); err != nil {
		t.Fatal(err)
	}
	if st1.Partitioned || st1.Workers != 1 {
		t.Errorf("SimWorkers=1 should run sequentially, stats = %+v", st1)
	}
}

// TestPartitionedCursorFaults: cursor-level invariant violations must be
// detected by the split phase with the same invariant names the sequential
// loop reports.
func TestPartitionedCursorFaults(t *testing.T) {
	m := topology.Dunnington()
	base := randProgram(9, m.NumCores(), 1, 256)
	for _, tc := range []struct {
		name string
		src  trace.Source
	}{
		{"cursor-short", truncSource{base}},
		{"cursor-overrun", dupSource{base}},
		{"negative-address", negSource{base}},
	} {
		for _, workers := range []int{1, 4} {
			_, err := New(m).RunContext(context.Background(), tc.src, Limits{Check: check.Full, SimWorkers: workers})
			var ie *check.InvariantError
			if !errors.As(err, &ie) {
				t.Fatalf("%s workers=%d: got %v, want InvariantError", tc.name, workers, err)
			}
			if ie.Name != tc.name {
				t.Errorf("%s workers=%d: invariant %q reported", tc.name, workers, ie.Name)
			}
		}
	}
}

// faultingCursor wraps a cursor to misbehave in one specific way.
type faultingCursor struct {
	trace.Cursor
	mode  string
	n     int
	yield int
}

func (f *faultingCursor) Next() (trace.Access, bool) {
	switch f.mode {
	case "trunc":
		if f.yield >= f.n/2 {
			return trace.Access{}, false
		}
	case "dup":
		// fall through: extra accesses appear after Len is exhausted
		if f.yield >= f.n {
			f.yield++
			return trace.Access{Addr: 64}, true
		}
	case "neg":
		if f.yield == f.n/2 {
			f.yield++
			return trace.Access{Addr: -64}, true
		}
	}
	f.yield++
	return f.Cursor.Next()
}

type truncSource struct{ trace.Source }

func (s truncSource) Cursor(r, c int) trace.Cursor {
	cur := s.Source.Cursor(r, c)
	if c == 2 {
		return &faultingCursor{Cursor: cur, mode: "trunc", n: cur.Len()}
	}
	return cur
}

type dupSource struct{ trace.Source }

func (s dupSource) Cursor(r, c int) trace.Cursor {
	cur := s.Source.Cursor(r, c)
	if c == 2 {
		return &faultingCursor{Cursor: cur, mode: "dup", n: cur.Len()}
	}
	return cur
}

type negSource struct{ trace.Source }

func (s negSource) Cursor(r, c int) trace.Cursor {
	cur := s.Source.Cursor(r, c)
	if c == 2 {
		return &faultingCursor{Cursor: cur, mode: "neg", n: cur.Len()}
	}
	return cur
}

// TestPartitionedPlanGeometry pins the class geometry on the commercial
// machines: Nehalem's two-level private prefix and the pow-two set counts
// yield the capped class count; every machine partitions.
func TestPartitionedPlanGeometry(t *testing.T) {
	for name, m := range partMachines() {
		s := New(m)
		plan := s.partitionPlan(m.NumCores(), 4)
		if plan == nil {
			t.Fatalf("%s: no partition plan", name)
		}
		if plan.classes != 1<<maxClassBits {
			t.Errorf("%s: classes = %d, want %d (pow-two private sets should reach the cap)", name, plan.classes, 1<<maxClassBits)
		}
		for c, priv := range plan.priv {
			if len(priv) == 0 {
				t.Fatalf("%s core %d: empty private prefix", name, c)
			}
			for _, ch := range priv {
				if len(ch.node.Cores()) != 1 {
					t.Errorf("%s core %d: non-private cache %s in prefix", name, c, ch.node.Label())
				}
			}
		}
	}
	if np := New(topology.Nehalem()).partitionPlan(4, 4); np != nil && len(np.priv[0]) != 2 {
		t.Errorf("nehalem private prefix depth = %d, want 2 (L1+L2)", len(np.priv[0]))
	}
}
