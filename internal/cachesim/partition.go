package cachesim

// Set-partitioned execution: the intra-cell parallel engine behind
// Limits.SimWorkers (DESIGN.md "Intra-cell parallelism").
//
// The sequential event loop is exact but serial: every access flows through
// one global (cycles, core) heap. Under LRU, however, cache sets never
// interact — an access touches exactly one set per level, victim selection
// and recency are decided entirely within that set — so the expensive part
// of the simulation decomposes. What does NOT decompose is time: an
// access's cycle cost depends on shared-level state and off-chip queueing,
// which depend on the global interleaving, which depends on every earlier
// access's cost. The engine therefore splits each barrier round into three
// phases that together reproduce the sequential computation exactly:
//
//  1. split: stream every (round, core) cursor once — the cursor-level
//     invariant checks (Len accounting, address range) run here — and
//     scatter each core's in-order access stream into per-(core, set-class)
//     sub-streams. A set class is a group of addresses whose bits [B, B+g)
//     agree, chosen so that every private cache maps a class into a set
//     range no other class touches.
//  2. private: simulate the private-cache prefix of each (core, class) unit
//     on a bounded worker pool. Private-cache outcomes are independent of
//     the cross-core interleaving (only one core ever touches them, in its
//     own program order), and within one core the class partition owns its
//     sets exclusively, so units race on nothing: hit levels and escaping
//     accesses are recorded into dense position-indexed arrays, counters
//     are kept unit-local and summed in fixed (core, class) order
//     afterwards, and recency state lives in per-set meta blocks a unit
//     owns outright. Merging is order-independent, so any worker count
//     produces identical state.
//  3. replay: run the ordinary discrete-event heap over the recorded
//     annotations. Private hits cost their precomputed level latency;
//     escaping accesses probe the shared levels, queue on the off-chip
//     channel and run the inclusive fill chain with the recorded private
//     victim — the exact op sequence the sequential loop would issue, in
//     the exact global order, because costs (and hence the heap order) are
//     reproduced access for access.
//
// The result is byte-identical to the sequential loop at every worker
// count. The engine declines (partitionPlan returns nil) when a chaos
// Replace hook is installed — the hook is stateful and order-dependent —
// or when some active core has no private leading cache.

import (
	"context"
	"fmt"
	runtimemetrics "runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/check"
	"repro/internal/trace"
)

// escaped marks a position whose access missed every private level and
// must be replayed against the shared hierarchy.
const escaped = 0xff

// maxClassBits caps the number of set classes per core (2^maxClassBits).
// Classes beyond the worker count only add scatter overhead in the split
// phase; 16 classes per core load-balances any worker pool the runner
// grants while keeping the split's append targets cache-resident.
const maxClassBits = 4

// PhaseStats is the per-phase execution attribution of one run, filled
// into Limits.Stats when the caller provides it. It is observational
// output only: nothing here feeds back into the simulation, and it is
// deliberately not part of Result (which is checkpointed and
// oracle-compared, so its shape is frozen to simulation outcomes).
type PhaseStats struct {
	// Workers is the parallelism the run was granted; Partitioned reports
	// whether the set-partitioned engine actually ran (false = sequential
	// loop, either by request or by fallback).
	Workers     int
	Partitioned bool
	// Classes is the number of set classes per core; Units is cores x
	// classes, the parallel work-item count per round.
	Classes int
	Units   int
	// Escaped counts accesses that missed every private level and were
	// replayed against the shared hierarchy — the fraction of the trace
	// that stays serial.
	Escaped uint64
	// SplitWall/PrivateWall/ReplayWall attribute wall-clock time to the
	// three phases, summed over rounds. SplitAlloc/PrivateAlloc/
	// ReplayAlloc attribute heap allocation the same way (process-wide
	// counters: exact under one runner worker, an upper bound otherwise).
	SplitWall    time.Duration
	PrivateWall  time.Duration
	ReplayWall   time.Duration
	SplitAlloc   uint64
	PrivateAlloc uint64
	ReplayAlloc  uint64
}

// partPlan is the per-run decomposition: which leading caches of each
// core's path are private, the precomputed hit costs, and the set-class
// geometry. Built once per RunContext by partitionPlan; read-only during
// the run (shared by every worker).
type partPlan struct {
	workers int
	// priv[c] is the private prefix of paths[c]: the leading caches
	// serving exactly one core. levelCost[c][j] is the cycle cost of a hit
	// at private level j (latencies of levels 0..j summed); privCost[c] is
	// the cost of missing the whole prefix.
	priv      [][]*cache
	levelCost [][]int
	privCost  []int
	// classShift/classes define the set-class function: an address's class
	// is (addr >> classShift) & (classes-1). classes == 1 degenerates to
	// per-core parallelism only (still exact).
	classShift uint
	classes    int
}

// partitionPlan decides whether the set-partitioned engine can run for
// ncores active cores and builds its decomposition. It returns nil — and
// the caller falls back to the sequential loop — when some active core has
// no private leading cache (its L1 is shared, so no phase of the
// simulation is interleaving-independent).
func (s *Simulator) partitionPlan(ncores, workers int) *partPlan {
	if ncores == 0 {
		return nil
	}
	p := &partPlan{
		workers:   workers,
		priv:      make([][]*cache, ncores),
		levelCost: make([][]int, ncores),
		privCost:  make([]int, ncores),
	}
	// Class geometry: class bits must be set-index bits of every private
	// cache, so a class owns its sets exclusively at every private level.
	// With B = max line-offset width and s_i set-index width of private
	// cache i, bits [B, B+g) qualify iff g <= min(b_i + s_i) - B and every
	// private set count is a power of two.
	maxLine := uint(0)
	minTop := uint(64)
	pow2 := true
	for c := 0; c < ncores; c++ {
		path := s.paths[c]
		n := 0
		for n < len(path) && len(path[n].node.Cores()) == 1 {
			n++
		}
		if n == 0 {
			return nil
		}
		p.priv[c] = path[:n]
		costs := make([]int, n)
		sum := 0
		for j, ch := range path[:n] {
			sum += ch.node.Latency
			costs[j] = sum
			if ch.lineBits > maxLine {
				maxLine = ch.lineBits
			}
			setBits := uint(0)
			for (1 << setBits) < ch.sets {
				setBits++
			}
			if ch.mask == 0 && ch.sets > 1 {
				pow2 = false
			}
			if top := ch.lineBits + setBits; top < minTop {
				minTop = top
			}
		}
		p.levelCost[c] = costs
		p.privCost[c] = sum
	}
	p.classShift = maxLine
	p.classes = 1
	if pow2 && minTop > maxLine {
		g := minTop - maxLine
		if g > maxClassBits {
			g = maxClassBits
		}
		p.classes = 1 << g
	}
	return p
}

// partState is the engine's pooled working memory, reused across rounds
// and runs. All slices are scratch in the simulator's buffer-reuse sense:
// they are repopulated every round and must never escape.
type partState struct {
	// Per-(core*classes+class) sub-streams produced by the split phase:
	// addresses in core program order, and pos | write<<63 metadata.
	subAddr [][]int64  //topovet:scratch
	subMeta [][]uint64 //topovet:scratch
	// Dense per-core, per-position annotations produced by the private
	// phase: the private hit level (escaped = missed the whole prefix),
	// and for escaping positions the packed access (addr<<1 | write) and
	// the last private level's victim (victimAddr<<1 | dirty; no victim
	// encodes as -1<<1, whose dirty bit is 0).
	hitLvl [][]uint8 //topovet:scratch
	escAW  [][]int64 //topovet:scratch
	escVic [][]int64 //topovet:scratch
	// Per-unit, per-private-level local counters, merged sequentially
	// after the private phase. Recency state needs no merging: it lives in
	// per-set meta blocks, which units own exclusively.
	unitHits [][]uint64 //topovet:scratch
	unitMiss [][]uint64 //topovet:scratch
	unitWb   [][]uint64 //topovet:scratch
	// cnt[c] is core c's access count this round; pos[c] is the replay
	// cursor into the annotation arrays.
	cnt []int
	pos []int
	// errs/panics collect per-unit outcomes of a parallel phase; the
	// lowest-indexed entry wins, making failures deterministic at any
	// worker count.
	errs   []error
	panics []any
}

// growPart sizes the pooled partition state for ncores cores and the
// plan's unit count, preserving capacity across calls.
func (s *Simulator) growPart(ncores int, plan *partPlan) *partState {
	if s.part == nil {
		s.part = &partState{}
	}
	ps := s.part
	units := ncores * plan.classes
	for len(ps.subAddr) < units {
		ps.subAddr = append(ps.subAddr, nil)
		ps.subMeta = append(ps.subMeta, nil)
	}
	for len(ps.unitHits) < units {
		ps.unitHits = append(ps.unitHits, nil)
		ps.unitMiss = append(ps.unitMiss, nil)
		ps.unitWb = append(ps.unitWb, nil)
	}
	for len(ps.hitLvl) < ncores {
		ps.hitLvl = append(ps.hitLvl, nil)
		ps.escAW = append(ps.escAW, nil)
		ps.escVic = append(ps.escVic, nil)
	}
	for len(ps.cnt) < ncores {
		ps.cnt = append(ps.cnt, 0)
		ps.pos = append(ps.pos, 0)
	}
	for len(ps.errs) < units {
		ps.errs = append(ps.errs, nil)
		ps.panics = append(ps.panics, nil)
	}
	for u := 0; u < units; u++ {
		plen := len(plan.priv[u/plan.classes])
		if cap(ps.unitHits[u]) < plen {
			ps.unitHits[u] = make([]uint64, plen)
			ps.unitMiss[u] = make([]uint64, plen)
			ps.unitWb[u] = make([]uint64, plen)
		}
		ps.unitHits[u] = ps.unitHits[u][:plen]
		ps.unitMiss[u] = ps.unitMiss[u][:plen]
		ps.unitWb[u] = ps.unitWb[u][:plen]
	}
	return ps
}

// runPartitioned is the set-partitioned counterpart of the sequential loop
// in RunContext: identical inputs, identical Result, internal parallelism
// bounded by plan.workers.
func (s *Simulator) runPartitioned(ctx context.Context, prog trace.Source, lim Limits, res *Result, plan *partPlan) (*Result, error) {
	ncores := len(plan.priv)
	ps := s.growPart(ncores, plan)
	units := ncores * plan.classes
	st := lim.Stats
	if st != nil {
		*st = PhaseStats{Workers: plan.workers, Partitioned: true, Classes: plan.classes, Units: units}
	}
	synchronized := prog.Sync()
	for r, rounds := 0, prog.RoundCount(); r < rounds; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		// Phase 1: split each core's cursor into per-class sub-streams.
		t, alloc := phaseStart(st)
		curs := s.curBuf[:0]
		for c := 0; c < ncores; c++ {
			curs = append(curs, prog.Cursor(r, c))
		}
		s.curBuf = curs
		err := s.runUnits(ps, plan.workers, ncores, func(c int) error {
			return s.splitCore(ctx, ps, plan, r, c, curs[c])
		})
		s.releaseCursors()
		phaseEnd(st, t, alloc, stSplit)
		if err != nil {
			return nil, err
		}

		// Phase 2: simulate every (core, class) unit's private prefix in
		// parallel, then merge unit counters in fixed order.
		t, alloc = phaseStart(st)
		err = s.runUnits(ps, plan.workers, units, func(u int) error {
			return s.privUnit(ctx, ps, plan, r, u)
		})
		if err == nil {
			for u := 0; u < units; u++ {
				for j, ch := range plan.priv[u/plan.classes] {
					ch.hits += ps.unitHits[u][j]
					ch.misses += ps.unitMiss[u][j]
					ch.writebacks += ps.unitWb[u][j]
				}
			}
		}
		phaseEnd(st, t, alloc, stPrivate)
		if err != nil {
			return nil, err
		}

		// Phase 3: sequential replay over the annotations.
		t, alloc = phaseStart(st)
		err = s.replayRound(ctx, ps, plan, r, lim, res, st)
		phaseEnd(st, t, alloc, stReplay)
		if err != nil {
			return nil, err
		}

		if synchronized {
			alignBarrier(res)
		}
	}
	return s.finishRun(res)
}

// runUnits executes fn(0..n-1) on min(workers, n) goroutines pulling unit
// indices from a shared counter. Unit outcomes land in ps.errs/ps.panics
// by index; the lowest-indexed failure wins, so the reported error is
// deterministic at any worker count. A panicking unit re-panics on the
// calling goroutine, preserving the repo's panic-containment path
// (repro.capturePanic wraps the simulator's caller).
func (s *Simulator) runUnits(ps *partState, workers, n int, fn func(u int) error) error {
	for u := 0; u < n; u++ {
		ps.errs[u] = nil
		ps.panics[u] = nil
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				u := int(next.Add(1)) - 1
				if u >= n {
					return
				}
				func() {
					defer func() {
						if p := recover(); p != nil {
							ps.panics[u] = p
						}
					}()
					ps.errs[u] = fn(u)
				}()
			}
		}()
	}
	wg.Wait()
	for u := 0; u < n; u++ {
		if ps.panics[u] != nil {
			//lint:ignore cellboundary re-raising a worker unit's panic on the calling goroutine, where repro.capturePanic contains it exactly as it contains sequential-loop panics
			panic(ps.panics[u])
		}
		if ps.errs[u] != nil {
			return ps.errs[u]
		}
	}
	return nil
}

// splitCore streams core c's round-r cursor once, scattering its accesses
// into the core's per-class sub-streams. The cursor-level invariants run
// here under checking: exactly Len() accesses, all with non-negative
// addresses. Without checking the sequential loop's semantics are
// preserved bit for bit: a short cursor contributes zero-valued accesses
// up to Len (exactly what the sequential loop simulates when Next runs
// dry), and accesses beyond Len are never pulled.
func (s *Simulator) splitCore(ctx context.Context, ps *partState, plan *partPlan, r, c int, cur trace.Cursor) error {
	n := cur.Len()
	ps.cnt[c] = n
	if cap(ps.hitLvl[c]) < n {
		ps.hitLvl[c] = make([]uint8, n)
		ps.escAW[c] = make([]int64, n)
		ps.escVic[c] = make([]int64, n)
	}
	ps.hitLvl[c] = ps.hitLvl[c][:n]
	ps.escAW[c] = ps.escAW[c][:n]
	ps.escVic[c] = ps.escVic[c][:n]
	u0 := c * plan.classes
	for g := 0; g < plan.classes; g++ {
		ps.subAddr[u0+g] = ps.subAddr[u0+g][:0]
		ps.subMeta[u0+g] = ps.subMeta[u0+g][:0]
	}
	cmask := int64(plan.classes - 1)
	shift := plan.classShift
	for i := 0; i < n; i++ {
		if i&(cancelCheckEvents-1) == cancelCheckEvents-1 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		a, ok := cur.Next()
		if s.chk {
			if !ok {
				return &check.InvariantError{Name: "cursor-short", Core: c, Round: r, AccessIndex: int64(i),
					Detail: fmt.Sprintf("cursor drained with %d of %d accesses outstanding (hits+misses would undercount Len)", n-i, n)}
			}
			if a.Addr < 0 {
				return &check.InvariantError{Name: "negative-address", Core: c, Round: r, AccessIndex: int64(i),
					Detail: fmt.Sprintf("cursor yielded address %#x (out-of-range group index or corrupted synthesis)", a.Addr)}
			}
		} else if !ok {
			a = trace.Access{}
		}
		u := u0 + int((a.Addr>>shift)&cmask)
		m := uint64(i)
		if a.Write {
			m |= 1 << 63
		}
		ps.subAddr[u] = append(ps.subAddr[u], a.Addr)
		ps.subMeta[u] = append(ps.subMeta[u], m)
	}
	if s.chk {
		if _, more := cur.Next(); more {
			return &check.InvariantError{Name: "cursor-overrun", Core: c, Round: r, AccessIndex: int64(n),
				Detail: fmt.Sprintf("cursor yields accesses beyond its Len() of %d", n)}
		}
	}
	return nil
}

// privUnit simulates unit u's private-cache stream: probe and fill the
// private prefix in core program order with unit-local counters,
// recording each position's outcome for replay. Every array write
// is either unit-exclusive (the unit's own counters, positions of its own
// class) or line-disjoint (cache sets owned by the class), so units never
// race.
func (s *Simulator) privUnit(ctx context.Context, ps *partState, plan *partPlan, r, u int) error {
	c := u / plan.classes
	priv := plan.priv[c]
	addrs := ps.subAddr[u]
	metas := ps.subMeta[u]
	hits, miss, wbs := ps.unitHits[u], ps.unitMiss[u], ps.unitWb[u]
	for j := range hits {
		hits[j], miss[j], wbs[j] = 0, 0, 0
	}
	hl, eaw, evc := ps.hitLvl[c], ps.escAW[c], ps.escVic[c]
	vict := make([]int, len(priv))
	for i, addr := range addrs {
		if i&(cancelCheckEvents-1) == cancelCheckEvents-1 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		m := metas[i]
		pos := int(m &^ (1 << 63))
		write := m>>63 == 1
		hit := -1
		for j, ch := range priv {
			h, v := ch.probeAt(addr, write, &hits[j], &miss[j])
			if h {
				hit = j
				break
			}
			vict[j] = v
		}
		fillTo := hit
		if hit >= 0 {
			hl[pos] = uint8(hit)
		} else {
			hl[pos] = escaped
			wbit := int64(0)
			if write {
				wbit = 1
			}
			eaw[pos] = addr<<1 | wbit
			fillTo = len(priv)
		}
		for j := 0; j < fillTo; j++ {
			va, vd := priv[j].fillAtWay(addr, write && j == 0, vict[j], &wbs[j])
			if j+1 < len(priv) {
				if vd {
					priv[j+1].setDirty(va)
				}
				continue
			}
			// The last private level's victim leaves the prefix; replay
			// hands it to the shared hierarchy at this access's global
			// slot. (-1 victims pack to an even value: dirty bit 0.)
			vbit := int64(0)
			if vd {
				vbit = 1
			}
			evc[pos] = va<<1 | vbit
		}
		if s.chk {
			top := hit
			if hit < 0 {
				top = len(priv) - 1
			}
			for j := 0; j <= top; j++ {
				ch := priv[j]
				tag := addr >> ch.lineBits
				set := ch.setOf(tag)
				if v := check.VerifySet(ch.tags, ch.lruOf(set), set*ch.assoc, ch.assoc, tag); v != nil {
					v.Detail = ch.node.Label() + ": " + v.Detail
					v.Core, v.Round, v.AccessIndex = c, r, int64(pos)
					return v
				}
			}
		}
	}
	return nil
}

// probeAt is cache.probe with externalized counters — the private-phase
// variant, where each (core, class) unit counts into unit-local cells that
// merge after the phase. Recency state needs no externalization at all:
// it is per-set (the recency list in the set's meta block), and a unit
// owns its sets exclusively. Like probe, it returns the fill-time victim
// way on a miss so fillAtWay never re-scans the set.
func (c *cache) probeAt(addr int64, write bool, hits, misses *uint64) (hit bool, victim int) {
	tag := addr >> c.lineBits
	set := c.setOf(tag)
	base := set * c.assoc
	off := set * c.metaStride
	pts := c.meta[off : off+c.assoc]
	tg := c.tags[base : base+c.assoc]
	pt := ptagOf(tag)
	for w := range pts {
		if pts[w] != pt {
			continue
		}
		if t := tg[w]; t>>1 == tag {
			if write {
				tg[w] = t | 1
			}
			touch(c.meta[off+c.assoc:off+2*c.assoc], w)
			*hits++
			return true, 0
		}
	}
	*misses++
	return false, base + int(c.meta[off+2*c.assoc-1])
}

// fillAtWay is cache.fillWay with an externalized write-back counter and
// no replacement hook (the partitioned engine declines to run under chaos
// hooks, which are stateful and order-dependent). victim is the flat way
// index probeAt chose.
func (c *cache) fillAtWay(addr int64, write bool, victim int, writebacks *uint64) (victimAddr int64, evictedDirty bool) {
	tag := addr >> c.lineBits
	set := c.setOf(tag)
	w := victim - set*c.assoc
	victimAddr = -1
	if t := c.tags[victim]; t != -1 {
		victimAddr = (t >> 1) << c.lineBits
		if t&1 != 0 {
			*writebacks++
			evictedDirty = true
		}
	}
	nt := tag << 1
	if write {
		nt |= 1
	}
	c.tags[victim] = nt
	off := set * c.metaStride
	c.meta[off+w] = ptagOf(tag)
	touch(c.meta[off+c.assoc:off+2*c.assoc], w)
	return victimAddr, evictedDirty
}

// replayRound drives the same discrete-event heap as the sequential loop,
// but over the recorded annotations: no cursor pulls, no private-cache
// work — a private hit is a table lookup, and only escaping accesses touch
// shared state. Costs reproduce the sequential loop's exactly, so the heap
// pops events in the identical global order.
func (s *Simulator) replayRound(ctx context.Context, ps *partState, plan *partPlan, r int, lim Limits, res *Result, st *PhaseStats) error {
	ncores := len(plan.priv)
	h := s.heapBuf[:0]
	rem := s.remBuf[:0]
	for c := 0; c < ncores; c++ {
		rem = append(rem, ps.cnt[c])
		ps.pos[c] = 0
		if ps.cnt[c] > 0 {
			h = eventPush(h, coreEvent{core: c, cycles: res.CyclesPerCore[c]})
		}
	}
	defer func() {
		s.heapBuf, s.remBuf = h, rem
	}()
	limMax := lim.MaxCycles
	if limMax == 0 {
		limMax = ^uint64(0)
	}
	chk := s.chk
	lastEv := coreEvent{core: -1}
	popped := false
	sinceCheck := 0
	var escCount uint64
	for len(h) > 0 {
		if sinceCheck++; sinceCheck >= cancelCheckEvents {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		ev := h[0]
		c := ev.core
		if chk {
			if popped && eventLess(ev, lastEv) {
				return &check.InvariantError{Name: "event-clock", Core: c, Round: r, AccessIndex: int64(res.Accesses),
					Detail: fmt.Sprintf("event (cycle %d, core %d) popped after (cycle %d, core %d)", ev.cycles, ev.core, lastEv.cycles, lastEv.core)}
			}
			lastEv, popped = ev, true
		}
		k := ps.pos[c]
		ps.pos[c] = k + 1
		rem[c]--
		var cost int
		memHit := false
		if hl := ps.hitLvl[c][k]; hl != escaped {
			cost = plan.levelCost[c][hl]
		} else {
			escCount++
			var cerr *check.InvariantError
			cost, memHit, cerr = s.replayEscaped(c, k, plan, ps, res)
			if cerr != nil {
				cerr.Core, cerr.Round, cerr.AccessIndex = c, r, int64(res.Accesses)
				return cerr
			}
		}
		res.Accesses++
		res.AccessesPerCore[c]++
		if memHit {
			res.MemAccesses++
			res.MemAccessesPerCore[c]++
		}
		res.CyclesPerCore[c] += uint64(cost)
		if res.CyclesPerCore[c] > limMax {
			return fmt.Errorf("%w: core %d reached %d cycles (budget %d)",
				ErrCycleBudget, c, res.CyclesPerCore[c], lim.MaxCycles)
		}
		if rem[c] > 0 {
			h[0] = coreEvent{core: c, cycles: res.CyclesPerCore[c]}
			eventFix(h)
		} else {
			_, h = eventPop(h)
		}
	}
	if st != nil {
		st.Escaped += escCount
	}
	return nil
}

// replayEscaped replays one recorded escaping access at its global slot:
// probe the shared levels, charge off-chip latency and queueing, then run
// the inclusive fill chain seeded with the recorded private victim —
// exactly the shared-level op sequence (access, setDirty-from-below, fill)
// the sequential accessFrom issues.
func (s *Simulator) replayEscaped(c, k int, plan *partPlan, ps *partState, res *Result) (cost int, memAccess bool, ierr *check.InvariantError) {
	aw := ps.escAW[c][k]
	addr := aw >> 1
	write := aw&1 == 1
	shared := s.paths[c][len(plan.priv[c]):]
	cost = plan.privCost[c]
	hitAt := -1
	for i, ch := range shared {
		cost += ch.node.Latency
		hit, v := ch.probe(addr, write)
		if hit {
			hitAt = i
			break
		}
		s.victimBuf[i] = v
	}
	now := res.CyclesPerCore[c]
	if hitAt == -1 {
		memAccess = true
		hitAt = len(shared)
		cost += s.machine.MemLatency
		if occ := uint64(s.machine.MemOccupancy); occ > 0 {
			arrive := now + uint64(cost) - uint64(s.machine.MemLatency)
			if s.memFreeAt > arrive {
				cost += int(s.memFreeAt - arrive) // queueing delay
				s.memFreeAt += occ
			} else {
				s.memFreeAt = arrive + occ
			}
		}
	}
	v := ps.escVic[c][k]
	vAddr := v >> 1
	vDirty := v&1 == 1
	for i := 0; i < hitAt; i++ {
		if vDirty {
			shared[i].setDirty(vAddr)
		}
		vAddr, vDirty = shared[i].fillWay(addr, false, s.victimBuf[i], nil)
	}
	if vDirty {
		if hitAt < len(shared) {
			shared[hitAt].setDirty(vAddr)
		} else {
			res.Writebacks++
			if occ := uint64(s.machine.MemOccupancy); occ > 0 {
				s.memFreeAt += occ
			}
		}
	}
	if s.chk {
		for i := 0; i <= hitAt && i < len(shared); i++ {
			ch := shared[i]
			tag := addr >> ch.lineBits
			set := ch.setOf(tag)
			if v := check.VerifySet(ch.tags, ch.lruOf(set), set*ch.assoc, ch.assoc, tag); v != nil {
				v.Detail = ch.node.Label() + ": " + v.Detail
				return cost, memAccess, v
			}
		}
	}
	return cost, memAccess, nil
}

// Phase selectors for phaseEnd.
const (
	stSplit = iota
	stPrivate
	stReplay
)

// phaseStart samples the wall clock and allocation counter for phase
// attribution; a nil st (stats not requested) samples nothing.
func phaseStart(st *PhaseStats) (time.Time, uint64) {
	if st == nil {
		return time.Time{}, 0
	}
	return time.Now(), heapAllocBytes() //lint:ignore nondeterminism phase wall-clock attribution feeds Limits.Stats, which is observational and never part of Result or any figure table
}

// phaseEnd accumulates one phase's wall time and allocation into st.
func phaseEnd(st *PhaseStats, t0 time.Time, alloc0 uint64, phase int) {
	if st == nil {
		return
	}
	d := time.Since(t0) //lint:ignore nondeterminism phase wall-clock attribution feeds Limits.Stats, which is observational and never part of Result or any figure table
	a := heapAllocBytes() - alloc0
	switch phase {
	case stSplit:
		st.SplitWall += d
		st.SplitAlloc += a
	case stPrivate:
		st.PrivateWall += d
		st.PrivateAlloc += a
	case stReplay:
		st.ReplayWall += d
		st.ReplayAlloc += a
	}
}

// heapAllocBytes reads the runtime's cumulative heap allocation counter
// (process-wide; see PhaseStats alloc-field caveat).
func heapAllocBytes() uint64 {
	sample := []runtimemetrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	runtimemetrics.Read(sample)
	if sample[0].Value.Kind() != runtimemetrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}
