package cachesim

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/topology"
	"repro/internal/trace"
)

// refLRU is an oracle: a fully-associative LRU cache of capacity lines,
// implemented as an ordered slice (most recent last).
type refLRU struct {
	capacity int
	lines    []int64
}

func (r *refLRU) access(line int64) bool {
	for i, l := range r.lines {
		if l == line {
			r.lines = append(append(r.lines[:i], r.lines[i+1:]...), line)
			return true
		}
	}
	r.lines = append(r.lines, line)
	if len(r.lines) > r.capacity {
		r.lines = r.lines[1:]
	}
	return false
}

// TestSetAssocMatchesOracleWhenFullyAssociative: with a single set
// (assoc == capacity), the production cache must behave exactly like the
// reference LRU on random traces.
func TestSetAssocMatchesOracleWhenFullyAssociative(t *testing.T) {
	const capacity = 16
	node := &topology.Node{
		Kind: topology.Cache, Level: 1,
		SizeBytes: capacity * 64, Assoc: capacity, LineBytes: 64, Latency: 1, CoreID: -1,
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		c := newCache(node)
		oracle := &refLRU{capacity: capacity}
		var missC, missO int
		for i := 0; i < 2000; i++ {
			line := int64(rng.Intn(64))
			addr := line * 64
			if !c.access(addr, false) {
				missC++
				c.fill(addr, false, nil)
			}
			if !oracle.access(line) {
				missO++
			}
		}
		if missC != missO {
			t.Fatalf("trial %d: set-assoc %d misses, oracle %d", trial, missC, missO)
		}
	}
}

// TestSetAssocMissBounds: for equal capacity on a uniform random trace, a
// set-associative LRU cache behaves close to the fully-associative oracle
// (it may be marginally better or worse — LRU is not optimal and set
// partitioning can accidentally protect hot lines — but large deviations
// indicate broken indexing or replacement).
func TestSetAssocMissBounds(t *testing.T) {
	const capacity = 32
	node := &topology.Node{
		Kind: topology.Cache, Level: 1,
		SizeBytes: capacity * 64, Assoc: 4, LineBytes: 64, Latency: 1, CoreID: -1,
	}
	rng := rand.New(rand.NewSource(7))
	c := newCache(node)
	oracle := &refLRU{capacity: capacity}
	var missC, missO int
	const accesses = 5000
	for i := 0; i < accesses; i++ {
		line := int64(rng.Intn(128))
		addr := line * 64
		if !c.access(addr, false) {
			missC++
			c.fill(addr, false, nil)
		}
		if !oracle.access(line) {
			missO++
		}
	}
	diff := missC - missO
	if diff < 0 {
		diff = -diff
	}
	if diff > accesses/20 {
		t.Fatalf("set-assoc misses %d deviate from oracle %d by more than 5%%", missC, missO)
	}
	if missC > accesses {
		t.Fatalf("impossible miss count %d", missC)
	}
}

// TestSimulatorConservation: across any program, per-level hits+misses
// must equal that level's accesses, L1 accesses must equal the program's
// accesses, and deeper-level accesses must equal the previous level's
// misses (single-path hierarchies).
func TestSimulatorConservation(t *testing.T) {
	m := topology.Dunnington()
	rng := rand.New(rand.NewSource(99))
	cores := make([][]trace.Access, 12)
	for c := range cores {
		for i := 0; i < 500; i++ {
			cores[c] = append(cores[c], trace.Access{Addr: int64(rng.Intn(1 << 22)), Size: 8})
		}
	}
	p := &trace.Program{NumCores: 12, Rounds: [][][]trace.Access{cores}}
	res, err := SimulateOnce(m, p)
	if err != nil {
		t.Fatal(err)
	}
	for l := 1; l <= 3; l++ {
		s := res.Levels[l]
		if s.Hits+s.Misses != s.Accesses {
			t.Fatalf("L%d: hits %d + misses %d != accesses %d", l, s.Hits, s.Misses, s.Accesses)
		}
	}
	if res.Levels[1].Accesses != res.Accesses {
		t.Fatalf("L1 accesses %d != total %d", res.Levels[1].Accesses, res.Accesses)
	}
	if res.Levels[2].Accesses != res.Levels[1].Misses {
		t.Fatalf("L2 accesses %d != L1 misses %d", res.Levels[2].Accesses, res.Levels[1].Misses)
	}
	if res.Levels[3].Accesses != res.Levels[2].Misses {
		t.Fatalf("L3 accesses %d != L2 misses %d", res.Levels[3].Accesses, res.Levels[2].Misses)
	}
	if res.MemAccesses != res.Levels[3].Misses {
		t.Fatalf("mem accesses %d != L3 misses %d", res.MemAccesses, res.Levels[3].Misses)
	}
}

// TestSimulatorMonotoneUnderLargerCache: enlarging every cache can only
// reduce (or keep) the miss counts for an identical trace.
func TestSimulatorMonotoneUnderLargerCache(t *testing.T) {
	small := topology.HalveCapacities(topology.Dunnington())
	big := topology.Dunnington()
	rng := rand.New(rand.NewSource(5))
	cores := make([][]trace.Access, 12)
	for c := range cores {
		base := int64(c) << 21
		for i := 0; i < 800; i++ {
			// Mix of streaming and reuse within a window.
			addr := base + int64(rng.Intn(1<<19))
			cores[c] = append(cores[c], trace.Access{Addr: addr, Size: 8})
		}
	}
	p := &trace.Program{NumCores: 12, Rounds: [][][]trace.Access{cores}}
	rs, err := SimulateOnce(small, p)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := SimulateOnce(big, p)
	if err != nil {
		t.Fatal(err)
	}
	// LRU is a stack algorithm: inclusion holds per cache, so aggregate
	// misses are monotone.
	for l := 1; l <= 3; l++ {
		if rb.Misses(l) > rs.Misses(l) {
			t.Fatalf("L%d: bigger cache missed more (%d > %d)", l, rb.Misses(l), rs.Misses(l))
		}
	}
}

// TestProbeFillWayMatchesAccessFill: the fused probe (hit test + victim
// selection in one scan) and scan-free fillWay must leave a cache in
// exactly the state the unfused access/fill pair does, on a random mixed
// stream — including identical victim choices, stamps and dirty bits.
func TestProbeFillWayMatchesAccessFill(t *testing.T) {
	node := &topology.Node{Kind: topology.Cache, Level: 1, SizeBytes: 1 << 12, LineBytes: 64, Assoc: 4}
	a := newCache(node)
	b := newCache(node)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200000; i++ {
		addr := int64(rng.Intn(1<<14)) * 64
		write := rng.Intn(3) == 0
		hitA := a.access(addr, write)
		if !hitA {
			a.fill(addr, write, nil)
		}
		hitB, v := b.probe(addr, write)
		if hitA != hitB {
			t.Fatalf("access %d: access=%v probe=%v", i, hitA, hitB)
		}
		if !hitB {
			b.fillWay(addr, write, v, nil)
		}
	}
	if !reflect.DeepEqual(a.tags, b.tags) || !reflect.DeepEqual(a.meta, b.meta) {
		t.Error("fused and unfused probe/fill sequences diverge in cache state")
	}
	if a.hits != b.hits || a.misses != b.misses || a.writebacks != b.writebacks {
		t.Errorf("counter divergence: access/fill %d/%d/%d, probe/fillWay %d/%d/%d",
			a.hits, a.misses, a.writebacks, b.hits, b.misses, b.writebacks)
	}
}

// TestSetOfFastmod: the Lemire fastmod reduction for non-power-of-two set
// counts must agree with tag % sets for every set count the topologies use
// and across adversarial tag patterns.
func TestSetOfFastmod(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sets := range []int{3, 5, 12288, 24576, 48 * 1024, 12289, (1 << 20) - 1} {
		n := &topology.Node{Kind: topology.Cache, Level: 3,
			SizeBytes: int64(sets) * 64, LineBytes: 64, Assoc: 1}
		c := newCache(n)
		if c.mask != 0 {
			t.Fatalf("sets=%d unexpectedly took the mask path", sets)
		}
		check := func(tag int64) {
			if got, want := c.setOf(tag), int(tag%int64(sets)); got != want {
				t.Fatalf("sets=%d tag=%#x: fastmod %d, modulo %d", sets, tag, got, want)
			}
		}
		for tag := int64(0); tag < 4*int64(sets); tag++ {
			check(tag)
		}
		for i := 0; i < 100000; i++ {
			check(rng.Int63())
		}
		check(0)
		check(int64(^uint64(0) >> 1)) // max tag
	}
}
