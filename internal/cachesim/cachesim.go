package cachesim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/check"
	"repro/internal/topology"
	"repro/internal/trace"
)

// BarrierCost is the cycle cost charged per synchronized barrier.
const BarrierCost = 100

// cancelCheckEvents is how many simulated accesses the event loop processes
// between context checks. Small enough that cancellation lands promptly even
// inside a single long free-running round, large enough that the check is
// invisible in the per-access cost.
const cancelCheckEvents = 4096

// ErrCycleBudget is wrapped by RunContext when a core's simulated clock
// exceeds Limits.MaxCycles. Detect it with errors.Is.
var ErrCycleBudget = errors.New("cachesim: simulated-cycle budget exceeded")

// Limits bounds and instruments one simulation. The zero value imposes no
// limits and runs no checks.
type Limits struct {
	// MaxCycles aborts the run with ErrCycleBudget once any core's local
	// clock passes this bound (0 = unlimited). It is a fault-isolation
	// guard for pathological cells, not part of the machine model: an
	// aborted run returns no Result at all, so partial statistics can
	// never be mistaken for a completed simulation.
	MaxCycles uint64
	// Check selects the runtime self-checking level. The simulator itself
	// distinguishes only off (< check.Invariants) from on: at Invariants
	// and above every access verifies set occupancy, tag uniqueness and
	// LRU recency, the event loop verifies cursor Len() accounting and
	// clock monotonicity, and the end of the run verifies cross-level
	// conservation. A violation aborts the run with a *check.InvariantError
	// and no Result. The Sampled/Full oracle layers live above, in repro.
	Check check.Mode
	// Replace, when non-nil, overrides the victim way the replacement
	// policy chose — the chaos-testing hook (internal/chaos). It receives
	// the cache level, set index, LRU-chosen victim way and associativity
	// and returns the way to evict instead. Production runs leave it nil.
	Replace func(level, set, victim, assoc int) int
}

// cache is one set-associative LRU cache instance.
type cache struct {
	node     *topology.Node
	sets     int
	assoc    int
	lineBits uint
	// lines[set*assoc+way] holds the line tag (addr >> lineBits), -1 empty.
	lines []int64
	// stamp[set*assoc+way] is the LRU timestamp.
	stamp []uint64
	// dirty[set*assoc+way] marks written lines (write-back accounting).
	dirty []bool
	tick  uint64

	hits, misses uint64
	// writebacks counts dirty lines evicted from this cache.
	writebacks uint64
}

func newCache(n *topology.Node) *cache {
	lineBits := uint(0)
	for (int64(1) << lineBits) < n.LineBytes {
		lineBits++
	}
	sets := int(n.SizeBytes / (int64(n.Assoc) * n.LineBytes))
	if sets < 1 {
		sets = 1
	}
	c := &cache{node: n, sets: sets, assoc: n.Assoc, lineBits: lineBits}
	c.lines = make([]int64, sets*n.Assoc)
	c.stamp = make([]uint64, sets*n.Assoc)
	c.dirty = make([]bool, sets*n.Assoc)
	for i := range c.lines {
		c.lines[i] = -1
	}
	return c
}

// access probes the cache for addr; on hit it refreshes LRU (and marks the
// line dirty for writes) and returns true; on miss it returns false without
// filling (fill is a separate step so the hierarchy can install top-down).
func (c *cache) access(addr int64, write bool) bool {
	tag := addr >> c.lineBits
	set := int(tag % int64(c.sets))
	base := set * c.assoc
	c.tick++
	for w := 0; w < c.assoc; w++ {
		if c.lines[base+w] == tag {
			c.stamp[base+w] = c.tick
			if write {
				c.dirty[base+w] = true
			}
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// fill installs addr's line (write-allocate), evicting the LRU way; it
// returns the victim's address and whether it was dirty (a write-back to
// the next level). victimAddr is -1 when the way was empty. replace, when
// non-nil, may override the chosen victim way (the chaos-testing hook).
func (c *cache) fill(addr int64, write bool, replace func(level, set, victim, assoc int) int) (victimAddr int64, evictedDirty bool) {
	tag := addr >> c.lineBits
	set := int(tag % int64(c.sets))
	base := set * c.assoc
	victim := base
	for w := 0; w < c.assoc; w++ {
		if c.lines[base+w] == -1 {
			victim = base + w
			break
		}
		if c.stamp[base+w] < c.stamp[victim] {
			victim = base + w
		}
	}
	if replace != nil {
		if w := replace(c.node.Level, set, victim-base, c.assoc); w >= 0 && w < c.assoc {
			victim = base + w
		}
	}
	victimAddr = -1
	if c.lines[victim] != -1 {
		victimAddr = c.lines[victim] << c.lineBits
		if c.dirty[victim] {
			c.writebacks++
			evictedDirty = true
		}
	}
	c.tick++
	c.lines[victim] = tag
	c.stamp[victim] = c.tick
	c.dirty[victim] = write
	return victimAddr, evictedDirty
}

// setDirty marks addr's line dirty if resident (receiving a write-back
// from the level below); returns whether the line was found.
func (c *cache) setDirty(addr int64) bool {
	tag := addr >> c.lineBits
	set := int(tag % int64(c.sets))
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.lines[base+w] == tag {
			c.dirty[base+w] = true
			return true
		}
	}
	return false
}

// LevelStats aggregates hit/miss counts over all caches of one level.
type LevelStats struct {
	Level    int
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// MissRate returns misses/accesses (0 when never accessed).
func (s LevelStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Result is the outcome of one simulation.
type Result struct {
	Machine       string
	TotalCycles   uint64
	CyclesPerCore []uint64
	// Levels maps cache level (1=L1, ...) to aggregated stats.
	Levels map[int]*LevelStats
	// MemAccesses counts accesses that missed every on-chip level.
	MemAccesses uint64
	// MemAccessesPerCore breaks MemAccesses down by issuing core.
	MemAccessesPerCore []uint64
	// AccessesPerCore counts references issued by each core.
	AccessesPerCore []uint64
	// Accesses is the total reference count simulated.
	Accesses uint64
	// Writebacks counts dirty lines evicted from the last on-chip level
	// (each occupies the off-chip channel like a line transfer).
	Writebacks uint64
	// Barriers is the number of synchronized barriers charged.
	Barriers int
	// PerCache breaks the statistics down per physical cache instance,
	// in tree (BFS) order — the destructive-interference diagnosis view.
	PerCache []CacheStats
}

// CacheStats is one cache instance's counters.
type CacheStats struct {
	Label      string // e.g. "L2#4"
	Level      int
	Cores      []int // core IDs served by this cache
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns this instance's miss rate.
func (s CacheStats) MissRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Hits+s.Misses)
}

// MissRate returns the aggregate miss rate of the given level.
func (r *Result) MissRate(level int) float64 {
	if s, ok := r.Levels[level]; ok {
		return s.MissRate()
	}
	return 0
}

// Misses returns the aggregate miss count of the given level.
func (r *Result) Misses(level int) uint64 {
	if s, ok := r.Levels[level]; ok {
		return s.Misses
	}
	return 0
}

// String summarizes the result.
func (r *Result) String() string {
	s := fmt.Sprintf("%s: %d cycles, %d accesses", r.Machine, r.TotalCycles, r.Accesses)
	for l := 1; ; l++ {
		ls, ok := r.Levels[l]
		if !ok {
			break
		}
		s += fmt.Sprintf(", L%d miss %.1f%%", l, 100*ls.MissRate())
	}
	return s
}

// coreEvent is one entry of the discrete-event min-heap: a core and its
// local clock. The heap is hand-rolled over a plain slice instead of
// container/heap because the latter's interface-based Push/Pop boxes every
// event onto the heap — one allocation per simulated access, which under a
// parallel experiment grid turns straight into GC pressure.
type coreEvent struct {
	core   int
	cycles uint64
}

// eventLess orders events by local clock, ties broken by core id, so the
// interleaving is fully deterministic.
func eventLess(a, b coreEvent) bool {
	if a.cycles != b.cycles {
		return a.cycles < b.cycles
	}
	return a.core < b.core
}

// eventPush appends e and sifts it up, returning the grown slice.
func eventPush(h []coreEvent, e coreEvent) []coreEvent {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

// eventPop removes and returns the minimum event, returning the shrunk
// slice alongside it.
func eventPop(h []coreEvent) (coreEvent, []coreEvent) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		small := i
		if l := 2*i + 1; l < n && eventLess(h[l], h[small]) {
			small = l
		}
		if r := 2*i + 2; r < n && eventLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top, h
}

// Simulator runs programs against one machine instance. It is not safe for
// concurrent use; create one per goroutine.
type Simulator struct {
	machine *topology.Machine
	caches  map[*topology.Node]*cache
	// cacheNodes/cacheList pair cache nodes with their instances in tree
	// (BFS) order, so stats aggregation iterates deterministically without
	// map lookups.
	cacheNodes []*topology.Node
	cacheList  []*cache
	paths      [][]*cache // per core, L1 upward
	// memFreeAt is the cycle at which the shared off-chip channel next
	// becomes free — the bandwidth/queueing model. Concurrent misses from
	// different cores serialize on this channel (Machine.MemOccupancy
	// cycles each), which is what makes excess off-chip traffic hurt more
	// as core counts grow.
	memFreeAt uint64
	// Per-run scratch buffers, reused across Run calls so warm-cache
	// multi-pass experiments do not reallocate per pass.
	heapBuf  []coreEvent
	remBuf   []int
	curBuf   []trace.Cursor
	snapHits []uint64 //topovet:scratch
	snapMiss []uint64 //topovet:scratch
	snapWb   []uint64 //topovet:scratch
	// Per-run self-checking state, installed by RunContext from Limits:
	// chk enables the runtime invariants, replace is the chaos hook.
	chk     bool
	replace func(level, set, victim, assoc int) int
}

// New builds a simulator with cold caches for the machine.
func New(m *topology.Machine) *Simulator {
	s := &Simulator{machine: m, caches: make(map[*topology.Node]*cache)}
	for _, n := range m.Nodes() {
		if n.Kind == topology.Cache {
			c := newCache(n)
			s.caches[n] = c
			s.cacheNodes = append(s.cacheNodes, n)
			s.cacheList = append(s.cacheList, c)
		}
	}
	s.paths = make([][]*cache, m.NumCores())
	for c := 0; c < m.NumCores(); c++ {
		// c ranges over the machine's own cores, so the path lookup cannot
		// be out of range.
		path, _ := m.PathToRoot(c)
		for _, n := range path {
			if n.Kind == topology.Cache {
				s.paths[c] = append(s.paths[c], s.caches[n])
			}
		}
	}
	s.snapHits = make([]uint64, len(s.cacheList))
	s.snapMiss = make([]uint64, len(s.cacheList))
	s.snapWb = make([]uint64, len(s.cacheList))
	return s
}

// Run simulates the program and returns aggregated statistics. The
// simulator's caches start cold on the first Run and stay warm across
// consecutive Runs (call New for a cold restart).
//
// The input is a trace.Source: the discrete-event loop pulls each core's
// next access from a per-core cursor, so a streamed program is simulated in
// O(cores) working memory. A materialized *trace.Program is a Source too
// and behaves identically.
func (s *Simulator) Run(prog trace.Source) (*Result, error) {
	return s.RunContext(context.Background(), prog, Limits{})
}

// RunContext is Run with cooperative cancellation and resource limits. The
// event loop checks the context at every round boundary and every
// cancelCheckEvents accesses within a round, so a cancelled grid stops
// within a fraction of one simulation round per worker. On cancellation or
// budget exhaustion it returns a nil Result and the error: a run either
// completes and reports full statistics or reports nothing, never a partial
// count dressed up as a result. After an aborted run the simulator's caches
// hold partial state; discard it (or call New) before reusing warm-cache
// semantics.
func (s *Simulator) RunContext(ctx context.Context, prog trace.Source, lim Limits) (*Result, error) {
	ncores := prog.CoreCount()
	if ncores > s.machine.NumCores() {
		return nil, fmt.Errorf("cachesim: program uses %d cores, machine %s has %d",
			ncores, s.machine.Name, s.machine.NumCores())
	}
	res := &Result{
		Machine:            s.machine.Name,
		CyclesPerCore:      make([]uint64, s.machine.NumCores()),
		MemAccessesPerCore: make([]uint64, s.machine.NumCores()),
		AccessesPerCore:    make([]uint64, s.machine.NumCores()),
		Levels:             make(map[int]*LevelStats),
	}
	s.chk = lim.Check >= check.Invariants
	s.replace = lim.Replace
	// Snapshot per-cache counters so warm-cache reruns still report only
	// this program's stats.
	for i, c := range s.cacheList {
		s.snapHits[i] = c.hits
		s.snapMiss[i] = c.misses
		s.snapWb[i] = c.writebacks
	}

	synchronized := prog.Sync()
	sinceCheck := 0
	for r, rounds := 0, prog.RoundCount(); r < rounds; r++ {
		if err := ctx.Err(); err != nil {
			s.releaseCursors()
			return nil, err
		}
		// Discrete-event interleaving within the round. The heap, cursor
		// and remaining-count buffers are simulator scratch, reused across
		// rounds; each core's accesses are pulled lazily from its cursor.
		h := s.heapBuf[:0]
		rem := s.remBuf[:0]
		curs := s.curBuf[:0]
		for c := 0; c < ncores; c++ {
			cur := prog.Cursor(r, c)
			curs = append(curs, cur)
			n := cur.Len()
			rem = append(rem, n)
			if n > 0 {
				h = eventPush(h, coreEvent{core: c, cycles: res.CyclesPerCore[c]})
			}
		}
		// lastEv tracks the popped event order within the round: the
		// discrete-event heap must yield a monotone (cycles, core) sequence,
		// or the interleaving — and therefore the contention model — is
		// corrupt. Checked only under lim.Check.
		lastEv := coreEvent{core: -1}
		popped := false
		for len(h) > 0 {
			if sinceCheck++; sinceCheck >= cancelCheckEvents {
				sinceCheck = 0
				if err := ctx.Err(); err != nil {
					s.heapBuf, s.remBuf, s.curBuf = h, rem, curs
					s.releaseCursors()
					return nil, err
				}
			}
			var ev coreEvent
			ev, h = eventPop(h)
			c := ev.core
			if s.chk {
				if popped && eventLess(ev, lastEv) {
					s.heapBuf, s.remBuf, s.curBuf = h, rem, curs
					s.releaseCursors()
					return nil, &check.InvariantError{Name: "event-clock", Core: c, Round: r, AccessIndex: int64(res.Accesses),
						Detail: fmt.Sprintf("event (cycle %d, core %d) popped after (cycle %d, core %d)", ev.cycles, ev.core, lastEv.cycles, lastEv.core)}
				}
				lastEv, popped = ev, true
			}
			a, ok := curs[c].Next()
			rem[c]--
			if s.chk {
				if !ok {
					// Read Len before releaseCursors nils the shared buffer.
					n := curs[c].Len()
					s.heapBuf, s.remBuf, s.curBuf = h, rem, curs
					s.releaseCursors()
					return nil, &check.InvariantError{Name: "cursor-short", Core: c, Round: r, AccessIndex: int64(res.Accesses),
						Detail: fmt.Sprintf("cursor drained with %d of %d accesses outstanding (hits+misses would undercount Len)", rem[c]+1, n)}
				}
				if a.Addr < 0 {
					s.heapBuf, s.remBuf, s.curBuf = h, rem, curs
					s.releaseCursors()
					return nil, &check.InvariantError{Name: "negative-address", Core: c, Round: r, AccessIndex: int64(res.Accesses),
						Detail: fmt.Sprintf("cursor yielded address %#x (out-of-range group index or corrupted synthesis)", a.Addr)}
				}
			}
			cost, memHit, cerr := s.accessFrom(c, a.Addr, a.Write, res.CyclesPerCore[c], res)
			if cerr != nil {
				cerr.Core, cerr.Round, cerr.AccessIndex = c, r, int64(res.Accesses)
				s.heapBuf, s.remBuf, s.curBuf = h, rem, curs
				s.releaseCursors()
				return nil, cerr
			}
			res.Accesses++
			res.AccessesPerCore[c]++
			if memHit {
				res.MemAccesses++
				res.MemAccessesPerCore[c]++
			}
			res.CyclesPerCore[c] += uint64(cost)
			if lim.MaxCycles > 0 && res.CyclesPerCore[c] > lim.MaxCycles {
				s.heapBuf, s.remBuf, s.curBuf = h, rem, curs
				s.releaseCursors()
				return nil, fmt.Errorf("%w: core %d reached %d cycles (budget %d)",
					ErrCycleBudget, c, res.CyclesPerCore[c], lim.MaxCycles)
			}
			if rem[c] > 0 {
				h = eventPush(h, coreEvent{core: c, cycles: res.CyclesPerCore[c]})
			} else if s.chk {
				// The cursor promised exactly Len() accesses; anything left
				// beyond them means hits+misses would overcount Len (a
				// duplicated or shifted stream).
				if _, more := curs[c].Next(); more {
					n := curs[c].Len()
					s.heapBuf, s.remBuf, s.curBuf = h, rem, curs
					s.releaseCursors()
					return nil, &check.InvariantError{Name: "cursor-overrun", Core: c, Round: r, AccessIndex: int64(res.Accesses),
						Detail: fmt.Sprintf("cursor yields accesses beyond its Len() of %d", n)}
				}
			}
		}
		s.heapBuf, s.remBuf, s.curBuf = h, rem, curs
		// Barrier: align clocks. Unsynchronized programs have a single
		// round, so this only fires where the schedule demands it.
		if synchronized {
			var maxC uint64
			for _, cy := range res.CyclesPerCore {
				if cy > maxC {
					maxC = cy
				}
			}
			maxC += BarrierCost
			res.Barriers++
			for c := range res.CyclesPerCore {
				res.CyclesPerCore[c] = maxC
			}
		}
	}

	s.releaseCursors()

	res.PerCache = make([]CacheStats, 0, len(s.cacheList))
	for i, c := range s.cacheList {
		n := s.cacheNodes[i]
		ls, ok := res.Levels[c.node.Level]
		if !ok {
			ls = &LevelStats{Level: c.node.Level}
			res.Levels[c.node.Level] = ls
		}
		hits := c.hits - s.snapHits[i]
		misses := c.misses - s.snapMiss[i]
		ls.Hits += hits
		ls.Misses += misses
		ls.Accesses += hits + misses
		cs := CacheStats{Label: n.Label(), Level: n.Level, Hits: hits, Misses: misses, Writebacks: c.writebacks - s.snapWb[i]}
		for _, cn := range n.Cores() {
			cs.Cores = append(cs.Cores, cn.CoreID)
		}
		res.PerCache = append(res.PerCache, cs)
	}
	for _, cy := range res.CyclesPerCore {
		if cy > res.TotalCycles {
			res.TotalCycles = cy
		}
	}
	if s.chk {
		if ierr := s.checkConservation(res); ierr != nil {
			return nil, ierr
		}
	}
	return res, nil
}

// accessFrom performs one access from core c at local time now: probe up
// the path, fill on the way back, return the cycle cost and whether memory
// was reached. Off-chip accesses queue on the shared channel; dirty lines
// evicted from the last on-chip level occupy the channel too (write-back
// traffic is asynchronous, so it costs bandwidth but not access latency).
// Under self-checking the set holding addr is verified at every touched
// level; the returned *check.InvariantError is nil in production runs.
func (s *Simulator) accessFrom(c int, addr int64, write bool, now uint64, res *Result) (cost int, memAccess bool, ierr *check.InvariantError) {
	path := s.paths[c]
	hitAt := -1
	for i, ch := range path {
		cost += ch.node.Latency
		if ch.access(addr, write) {
			hitAt = i
			break
		}
	}
	if hitAt == -1 {
		memAccess = true
		hitAt = len(path)
		cost += s.machine.MemLatency
		if occ := uint64(s.machine.MemOccupancy); occ > 0 {
			arrive := now + uint64(cost) - uint64(s.machine.MemLatency)
			if s.memFreeAt > arrive {
				cost += int(s.memFreeAt - arrive) // queueing delay
				s.memFreeAt += occ
			} else {
				s.memFreeAt = arrive + occ
			}
		}
	}
	// Inclusive fill below the hit level. Inner-level dirty victims write
	// back into the next level up (resident there under inclusion); only a
	// dirty eviction from the last on-chip cache goes off-chip, where it
	// occupies the shared channel like any other line transfer.
	for i := 0; i < hitAt && i < len(path); i++ {
		victimAddr, dirtyOut := path[i].fill(addr, write && i == 0, s.replace)
		if !dirtyOut {
			continue
		}
		if i+1 < len(path) {
			path[i+1].setDirty(victimAddr)
			continue
		}
		res.Writebacks++
		if occ := uint64(s.machine.MemOccupancy); occ > 0 {
			s.memFreeAt += occ
		}
	}
	if s.chk {
		// Every level up to and including the hit level was either refreshed
		// (the hit) or filled; the line must now be resident exactly once and
		// most recently used in each.
		for i := 0; i <= hitAt && i < len(path); i++ {
			ch := path[i]
			tag := addr >> ch.lineBits
			base := int(tag%int64(ch.sets)) * ch.assoc
			if v := check.VerifySet(ch.lines, ch.stamp, base, ch.assoc, tag); v != nil {
				v.Detail = ch.node.Label() + ": " + v.Detail
				return cost, memAccess, v
			}
		}
	}
	return cost, memAccess, nil
}

// releaseCursors drops cursor references so the scratch buffer does not pin
// the last round's trace data across warm-cache reruns.
func (s *Simulator) releaseCursors() {
	for i := range s.curBuf {
		s.curBuf[i] = nil
	}
}

// SimulateOnce is the one-shot convenience: cold caches, single program.
func SimulateOnce(m *topology.Machine, prog trace.Source) (*Result, error) {
	return New(m).Run(prog)
}

// SimulateContext is SimulateOnce with cancellation and limits: cold
// caches, single program, abort on context cancellation or budget
// exhaustion (see RunContext).
func SimulateContext(ctx context.Context, m *topology.Machine, prog trace.Source, lim Limits) (*Result, error) {
	return New(m).RunContext(ctx, prog, lim)
}
