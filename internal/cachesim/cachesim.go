package cachesim

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/check"
	"repro/internal/topology"
	"repro/internal/trace"
)

// BarrierCost is the cycle cost charged per synchronized barrier.
const BarrierCost = 100

// cancelCheckEvents is how many simulated accesses the event loop processes
// between context checks. Small enough that cancellation lands promptly even
// inside a single long free-running round, large enough that the check is
// invisible in the per-access cost.
const cancelCheckEvents = 4096

// batchSize is how many accesses the event loop pulls per cursor call.
// Large enough to amortize the interface dispatch and synthesis setup,
// small enough that per-core batch buffers stay cache-resident (256 accesses
// x 16 bytes = 4 KB per core). It is an internal pacing constant, not a
// tunable: any value yields byte-identical results, because batching only
// prefetches each core's own in-order stream.
const batchSize = 256

// ErrCycleBudget is wrapped by RunContext when a core's simulated clock
// exceeds Limits.MaxCycles. Detect it with errors.Is.
var ErrCycleBudget = errors.New("cachesim: simulated-cycle budget exceeded")

// Limits bounds and instruments one simulation. The zero value imposes no
// limits and runs no checks.
type Limits struct {
	// MaxCycles aborts the run with ErrCycleBudget once any core's local
	// clock passes this bound (0 = unlimited). It is a fault-isolation
	// guard for pathological cells, not part of the machine model: an
	// aborted run returns no Result at all, so partial statistics can
	// never be mistaken for a completed simulation.
	MaxCycles uint64
	// Check selects the runtime self-checking level. The simulator itself
	// distinguishes only off (< check.Invariants) from on: at Invariants
	// and above every access verifies set occupancy, tag uniqueness and
	// LRU recency, the event loop verifies cursor Len() accounting and
	// clock monotonicity, and the end of the run verifies cross-level
	// conservation. A violation aborts the run with a *check.InvariantError
	// and no Result. The Sampled/Full oracle layers live above, in repro.
	Check check.Mode
	// Replace, when non-nil, overrides the victim way the replacement
	// policy chose — the chaos-testing hook (internal/chaos). It receives
	// the cache level, set index, LRU-chosen victim way and associativity
	// and returns the way to evict instead. Production runs leave it nil.
	Replace func(level, set, victim, assoc int) int
	// SimWorkers bounds the simulator's internal parallelism: the number of
	// goroutines the set-partitioned engine (partition.go) may use inside
	// one run. 0 or 1 selects the sequential event loop. Results are
	// byte-identical at every setting — the engine parallelizes only the
	// private-cache phase, whose outcomes are independent of the global
	// interleaving, and replays the shared levels in the exact sequential
	// event order. The run silently falls back to the sequential loop when
	// a Replace hook is installed (chaos hooks are stateful and
	// order-dependent) or the topology gives some active core no private
	// cache, so the knob can never change what is simulated.
	SimWorkers int
	// Stats, when non-nil, receives per-phase execution attribution for
	// the run (wall time, allocation and escape counts per partition
	// phase). Purely observational: it never feeds back into the
	// simulation and is deliberately not part of Result, which is
	// checkpointed and oracle-compared.
	Stats *PhaseStats
}

// cache is one set-associative LRU cache instance.
type cache struct {
	node     *topology.Node
	sets     int
	assoc    int
	lineBits uint
	// mask is sets-1 when sets is a power of two (set index = tag & mask,
	// no division on the hot path), 0 otherwise (Lemire fastmod fallback,
	// see setOf).
	mask int64
	// magicHi:magicLo is ceil(2^128 / sets), precomputed for the fastmod
	// set reduction when sets is not a power of two.
	magicHi, magicLo uint64
	// The per-way state is laid out for the miss path, where a probe scans
	// a random set of a multi-megabyte structure and every parallel array
	// is another host-DRAM cache line:
	//
	//   - meta[set*metaStride ...] is one compact per-set block holding the
	//     whole scan: assoc 16-bit partial tags (a multiplicative hash of
	//     the line tag) followed by the set's recency list (meta[assoc+i] =
	//     way at recency rank i, rank 0 most recent, rank assoc-1 the LRU
	//     victim). The stride is padded so a block never straddles cache
	//     lines it doesn't need, and for every Table 1 geometry the whole
	//     block is a single 64-byte line.
	//   - tags[set*assoc+way] holds each way's full packed tag word (line
	//     tag and dirty bit, check.LineTag). It is read only to confirm a
	//     partial-tag match and at the victim way during a fill, so a miss
	//     touches one line of it instead of scanning it.
	//
	// Recency is the explicit rank list, not LRU stamps: a stamp scan needs
	// 8 bytes per way on the miss path, the rank list needs log2(assoc)
	// bits and rides in the block the probe already loaded.
	meta       []uint16
	metaStride int
	tags       []int64

	hits, misses uint64
	// writebacks counts dirty lines evicted from this cache.
	writebacks uint64
}

// ptagOf hashes a line tag to its 16-bit partial tag. The low tag bits are
// the set index (identical within a set), so the hash must mix high bits
// down: one odd-constant multiply (Fibonacci hashing) keeping the top 16
// bits does. Collisions only cost a confirming full-tag read.
func ptagOf(tag int64) uint16 {
	return uint16(uint64(tag) * 0x9E3779B97F4A7C15 >> 48)
}

func newCache(n *topology.Node) *cache {
	lineBits := uint(0)
	for (int64(1) << lineBits) < n.LineBytes {
		lineBits++
	}
	sets := int(n.SizeBytes / (int64(n.Assoc) * n.LineBytes))
	if sets < 1 {
		sets = 1
	}
	c := &cache{node: n, sets: sets, assoc: n.Assoc, lineBits: lineBits}
	if sets&(sets-1) == 0 {
		c.mask = int64(sets - 1)
	} else {
		// ceil(2^128/sets) = floor((2^128-1)/sets) + 1: long-divide the
		// all-ones 128-bit value by sets, then add one.
		d := uint64(sets)
		c.magicHi = ^uint64(0) / d
		c.magicLo, _ = bits.Div64(^uint64(0)%d, ^uint64(0), d)
		c.magicLo++
		if c.magicLo == 0 {
			c.magicHi++
		}
	}
	// Meta stride: 2*assoc uint16s rounded up so set blocks stay cache-line
	// aligned — to 8/16/32 elements (16/32/64 bytes, dividing a line), else
	// to a multiple of 32 (whole lines).
	stride := 2 * n.Assoc
	switch {
	case stride <= 8:
		stride = 8
	case stride <= 16:
		stride = 16
	case stride <= 32:
		stride = 32
	default:
		stride = (stride + 31) &^ 31
	}
	c.metaStride = stride
	c.meta = make([]uint16, sets*stride)
	c.tags = make([]int64, sets*n.Assoc)
	for i := range c.tags {
		c.tags[i] = -1
	}
	// Initial recency lists put way 0 at the LRU tail so cold fills claim
	// ways in ascending index order, matching the reference engines'
	// first-empty-way rule. Untouched (empty) ways keep that relative
	// order at the tail, so the rule holds for partially filled sets too.
	for s := 0; s < sets; s++ {
		lru := c.meta[s*stride+n.Assoc:]
		for i := 0; i < n.Assoc; i++ {
			lru[i] = uint16(n.Assoc - 1 - i)
		}
	}
	return c
}

// lruOf returns a set's recency list (most recent first).
func (c *cache) lruOf(set int) []uint16 {
	off := set*c.metaStride + c.assoc
	return c.meta[off : off+c.assoc]
}

// touch promotes way w to most recent in a set's recency list. The list is
// tiny and already loaded, so the shift is register/L1 work. The two fast
// paths cover the common cases: a re-hit on the most recent way moves
// nothing, and a fill of the LRU tail (every ordinary eviction) is a whole
// rotate with no search.
func touch(lru []uint16, w int) {
	n := len(lru)
	uw := uint16(w)
	if lru[0] == uw {
		return
	}
	if lru[n-1] == uw {
		copy(lru[1:], lru[:n-1])
		lru[0] = uw
		return
	}
	i := 1
	for lru[i] != uw {
		i++
	}
	copy(lru[1:i+1], lru[:i])
	lru[0] = uw
}

// setOf maps a line tag to its set index: a single and-mask when the set
// count is a power of two (every Table 1 L1/L2; Dunnington's 16 MB L3 has
// 12288 sets and takes the general path), otherwise an exact tag % sets
// computed by Lemire's fastmod — two widening multiplies instead of a
// 64-bit divide, which at several probes per access was a measurable slice
// of the non-power-of-two hot path. Exactness: with M = ceil(2^128/d) and
// d not dividing 2^128, floor(((M*n mod 2^128) * d) / 2^128) == n % d for
// every n < 2^64 (the fractional-part error term is below 2^-64).
func (c *cache) setOf(tag int64) int {
	if c.mask != 0 {
		return int(tag & c.mask)
	}
	n := uint64(tag)
	d := uint64(c.sets)
	hi1, lo1 := bits.Mul64(c.magicLo, n)
	lowHi := c.magicHi*n + hi1
	ph, pl := bits.Mul64(lowHi, d)
	qh, _ := bits.Mul64(lo1, d)
	_, carry := bits.Add64(pl, qh, 0)
	return int(ph + carry)
}

// access probes the cache for addr; on hit it promotes the line to most
// recent (and marks it dirty for writes) and returns true; on miss it
// returns false without filling (fill is a separate step so the hierarchy
// can install top-down). The scan walks the set's partial tags; only a
// partial match reads the full tag word to confirm (a collision just costs
// that read and the scan continues).
func (c *cache) access(addr int64, write bool) bool {
	tag := addr >> c.lineBits
	set := c.setOf(tag)
	base := set * c.assoc
	off := set * c.metaStride
	pts := c.meta[off : off+c.assoc]
	tg := c.tags[base : base+c.assoc]
	pt := ptagOf(tag)
	for w := range pts {
		if pts[w] != pt {
			continue
		}
		if t := tg[w]; t>>1 == tag {
			if write {
				tg[w] = t | 1
			}
			touch(c.meta[off+c.assoc:off+2*c.assoc], w)
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// fill installs addr's line (write-allocate), evicting the least recently
// used way — the tail of the set's recency list, which is the first empty
// way in index order while the set is filling (see newCache) and the LRU
// line after. It returns the victim's address and whether it was dirty (a
// write-back to the next level); victimAddr is -1 when the way was empty.
// replace, when non-nil, may override the chosen victim way (the
// chaos-testing hook).
func (c *cache) fill(addr int64, write bool, replace func(level, set, victim, assoc int) int) (victimAddr int64, evictedDirty bool) {
	tag := addr >> c.lineBits
	set := c.setOf(tag)
	w := int(c.meta[set*c.metaStride+2*c.assoc-1])
	if replace != nil {
		if rw := replace(c.node.Level, set, w, c.assoc); rw >= 0 && rw < c.assoc {
			w = rw
		}
	}
	return c.install(tag, set, w, write)
}

// install writes addr's line into way w of set: evict what is there,
// record the new packed tag and partial tag, and promote the way to most
// recent. Shared tail of fill/fillWay.
func (c *cache) install(tag int64, set, w int, write bool) (victimAddr int64, evictedDirty bool) {
	i := set*c.assoc + w
	victimAddr = -1
	if t := c.tags[i]; t != -1 {
		victimAddr = (t >> 1) << c.lineBits
		if t&1 != 0 {
			c.writebacks++
			evictedDirty = true
		}
	}
	nt := tag << 1
	if write {
		nt |= 1
	}
	c.tags[i] = nt
	off := set * c.metaStride
	c.meta[off+w] = ptagOf(tag)
	touch(c.meta[off+c.assoc:off+2*c.assoc], w)
	return victimAddr, evictedDirty
}

// probe is access fused with victim selection: the one scan decides
// hit/miss, and on a miss the victim is simply the recency tail — the
// same way the reference engines' stamp argmin (first empty way, else
// lowest stamp) selects, because the rank list and the stamp order are
// the same order. On hit victim is meaningless. victim is the flat
// way-array index (set*assoc+way), so fillWay installs without re-scanning
// anything.
func (c *cache) probe(addr int64, write bool) (hit bool, victim int) {
	tag := addr >> c.lineBits
	set := c.setOf(tag)
	base := set * c.assoc
	off := set * c.metaStride
	pts := c.meta[off : off+c.assoc]
	tg := c.tags[base : base+c.assoc]
	pt := ptagOf(tag)
	for w := range pts {
		if pts[w] != pt {
			continue
		}
		if t := tg[w]; t>>1 == tag {
			if write {
				tg[w] = t | 1
			}
			touch(c.meta[off+c.assoc:off+2*c.assoc], w)
			c.hits++
			return true, 0
		}
	}
	c.misses++
	return false, base + int(c.meta[off+2*c.assoc-1])
}

// fillWay is fill with the victim already chosen by probe: victim is the
// flat way index probe returned. Between probe and fillWay only other
// caches are touched, and setDirty from an inner level never reorders
// recency, so the chosen way is still the fill-time LRU victim. The chaos
// hook sees the same (level, set, victim, assoc) it always did.
func (c *cache) fillWay(addr int64, write bool, victim int, replace func(level, set, victim, assoc int) int) (victimAddr int64, evictedDirty bool) {
	tag := addr >> c.lineBits
	set := c.setOf(tag)
	w := victim - set*c.assoc
	if replace != nil {
		if rw := replace(c.node.Level, set, w, c.assoc); rw >= 0 && rw < c.assoc {
			w = rw
		}
	}
	return c.install(tag, set, w, write)
}

// setDirty marks addr's line dirty if resident (receiving a write-back
// from the level below); returns whether the line was found. Recency is
// deliberately not touched — receiving a write-back is not a use.
func (c *cache) setDirty(addr int64) bool {
	tag := addr >> c.lineBits
	set := c.setOf(tag)
	base := set * c.assoc
	off := set * c.metaStride
	pts := c.meta[off : off+c.assoc]
	tg := c.tags[base : base+c.assoc]
	pt := ptagOf(tag)
	for w := range pts {
		if pts[w] != pt {
			continue
		}
		if t := tg[w]; t>>1 == tag {
			tg[w] = t | 1
			return true
		}
	}
	return false
}

// LevelStats aggregates hit/miss counts over all caches of one level.
type LevelStats struct {
	Level    int
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// MissRate returns misses/accesses (0 when never accessed).
func (s LevelStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Result is the outcome of one simulation.
type Result struct {
	Machine       string
	TotalCycles   uint64
	CyclesPerCore []uint64
	// Levels maps cache level (1=L1, ...) to aggregated stats.
	Levels map[int]*LevelStats
	// MemAccesses counts accesses that missed every on-chip level.
	MemAccesses uint64
	// MemAccessesPerCore breaks MemAccesses down by issuing core.
	MemAccessesPerCore []uint64
	// AccessesPerCore counts references issued by each core.
	AccessesPerCore []uint64
	// Accesses is the total reference count simulated.
	Accesses uint64
	// Writebacks counts dirty lines evicted from the last on-chip level
	// (each occupies the off-chip channel like a line transfer).
	Writebacks uint64
	// Barriers is the number of synchronized barriers charged.
	Barriers int
	// PerCache breaks the statistics down per physical cache instance,
	// in tree (BFS) order — the destructive-interference diagnosis view.
	PerCache []CacheStats
}

// CacheStats is one cache instance's counters.
type CacheStats struct {
	Label      string // e.g. "L2#4"
	Level      int
	Cores      []int // core IDs served by this cache
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns this instance's miss rate.
func (s CacheStats) MissRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Hits+s.Misses)
}

// MissRate returns the aggregate miss rate of the given level.
func (r *Result) MissRate(level int) float64 {
	if s, ok := r.Levels[level]; ok {
		return s.MissRate()
	}
	return 0
}

// Misses returns the aggregate miss count of the given level.
func (r *Result) Misses(level int) uint64 {
	if s, ok := r.Levels[level]; ok {
		return s.Misses
	}
	return 0
}

// String summarizes the result.
func (r *Result) String() string {
	s := fmt.Sprintf("%s: %d cycles, %d accesses", r.Machine, r.TotalCycles, r.Accesses)
	for l := 1; ; l++ {
		ls, ok := r.Levels[l]
		if !ok {
			break
		}
		s += fmt.Sprintf(", L%d miss %.1f%%", l, 100*ls.MissRate())
	}
	return s
}

// coreEvent is one entry of the discrete-event min-heap: a core and its
// local clock. The heap is hand-rolled over a plain slice instead of
// container/heap because the latter's interface-based Push/Pop boxes every
// event onto the heap — one allocation per simulated access, which under a
// parallel experiment grid turns straight into GC pressure.
type coreEvent struct {
	core   int
	cycles uint64
}

// eventLess orders events by local clock, ties broken by core id, so the
// interleaving is fully deterministic.
func eventLess(a, b coreEvent) bool {
	if a.cycles != b.cycles {
		return a.cycles < b.cycles
	}
	return a.core < b.core
}

// eventPush appends e and sifts it up, returning the grown slice.
func eventPush(h []coreEvent, e coreEvent) []coreEvent {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

// eventFix restores the heap property after the root was replaced in place —
// the fused pop+push for the hot "core re-arms with its next access" path,
// which saves the sift-up and the slice bookkeeping of a separate push.
// Because (cycles, core) pairs are unique (each core appears at most once),
// the heap's pop sequence is the strict total order of its contents and the
// fused form yields exactly the sequence pop-then-push would.
func eventFix(h []coreEvent) {
	n := len(h)
	i := 0
	for {
		small := i
		if l := 2*i + 1; l < n && eventLess(h[l], h[small]) {
			small = l
		}
		if r := 2*i + 2; r < n && eventLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// eventPop removes and returns the minimum event, returning the shrunk
// slice alongside it.
func eventPop(h []coreEvent) (coreEvent, []coreEvent) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	eventFix(h)
	return top, h
}

// Simulator runs programs against one machine instance. It is not safe for
// concurrent use; create one per goroutine.
type Simulator struct {
	machine *topology.Machine
	caches  map[*topology.Node]*cache
	// cacheNodes/cacheList pair cache nodes with their instances in tree
	// (BFS) order, so stats aggregation iterates deterministically without
	// map lookups.
	cacheNodes []*topology.Node
	cacheList  []*cache
	paths      [][]*cache // per core, L1 upward
	// memFreeAt is the cycle at which the shared off-chip channel next
	// becomes free — the bandwidth/queueing model. Concurrent misses from
	// different cores serialize on this channel (Machine.MemOccupancy
	// cycles each), which is what makes excess off-chip traffic hurt more
	// as core counts grow.
	memFreeAt uint64
	// Per-run scratch buffers, reused across Run calls so warm-cache
	// multi-pass experiments do not reallocate per pass.
	heapBuf  []coreEvent
	remBuf   []int
	curBuf   []trace.Cursor
	snapHits []uint64 //topovet:scratch
	snapMiss []uint64 //topovet:scratch
	snapWb   []uint64 //topovet:scratch
	// batchBuf/batchPos/batchLen hold each core's current cursor batch: the
	// event loop pulls batchSize accesses per cursor call (trace.Pull) and
	// walks the buffer, amortizing the per-access interface dispatch.
	batchBuf [][]trace.Access //topovet:scratch
	batchPos []int
	batchLen []int
	// victimBuf[i] is the eviction way probe chose at path level i of the
	// current access — carried from the probe walk to the fill walk so the
	// fill never re-scans the set. Sized to the deepest core path.
	victimBuf []int //topovet:scratch
	// cycBuf is runRoundFast's event table: cycBuf[c] is core c's local
	// clock while it has accesses left, else the done sentinel. See the
	// scan there.
	cycBuf []uint64 //topovet:scratch
	// part holds the pooled buffers of the set-partitioned engine, allocated
	// on first partitioned run (see partition.go).
	part *partState
	// Per-run self-checking state, installed by RunContext from Limits:
	// chk enables the runtime invariants, replace is the chaos hook.
	chk     bool
	replace func(level, set, victim, assoc int) int
}

// New builds a simulator with cold caches for the machine.
func New(m *topology.Machine) *Simulator {
	s := &Simulator{machine: m, caches: make(map[*topology.Node]*cache)}
	for _, n := range m.Nodes() {
		if n.Kind == topology.Cache {
			c := newCache(n)
			s.caches[n] = c
			s.cacheNodes = append(s.cacheNodes, n)
			s.cacheList = append(s.cacheList, c)
		}
	}
	s.paths = make([][]*cache, m.NumCores())
	for c := 0; c < m.NumCores(); c++ {
		// c ranges over the machine's own cores, so the path lookup cannot
		// be out of range.
		path, _ := m.PathToRoot(c)
		for _, n := range path {
			if n.Kind == topology.Cache {
				s.paths[c] = append(s.paths[c], s.caches[n])
			}
		}
	}
	s.snapHits = make([]uint64, len(s.cacheList))
	s.snapMiss = make([]uint64, len(s.cacheList))
	s.snapWb = make([]uint64, len(s.cacheList))
	maxDepth := 0
	for _, p := range s.paths {
		if len(p) > maxDepth {
			maxDepth = len(p)
		}
	}
	s.victimBuf = make([]int, maxDepth)
	return s
}

// Run simulates the program and returns aggregated statistics. The
// simulator's caches start cold on the first Run and stay warm across
// consecutive Runs (call New for a cold restart).
//
// The input is a trace.Source: the discrete-event loop pulls each core's
// next access from a per-core cursor, so a streamed program is simulated in
// O(cores) working memory. A materialized *trace.Program is a Source too
// and behaves identically.
func (s *Simulator) Run(prog trace.Source) (*Result, error) {
	return s.RunContext(context.Background(), prog, Limits{})
}

// RunContext is Run with cooperative cancellation and resource limits. The
// event loop checks the context at every round boundary and every
// cancelCheckEvents accesses within a round, so a cancelled grid stops
// within a fraction of one simulation round per worker. On cancellation or
// budget exhaustion it returns a nil Result and the error: a run either
// completes and reports full statistics or reports nothing, never a partial
// count dressed up as a result. After an aborted run the simulator's caches
// hold partial state; discard it (or call New) before reusing warm-cache
// semantics.
func (s *Simulator) RunContext(ctx context.Context, prog trace.Source, lim Limits) (*Result, error) {
	ncores := prog.CoreCount()
	if ncores > s.machine.NumCores() {
		return nil, fmt.Errorf("cachesim: program uses %d cores, machine %s has %d",
			ncores, s.machine.Name, s.machine.NumCores())
	}
	res := &Result{
		Machine:            s.machine.Name,
		CyclesPerCore:      make([]uint64, s.machine.NumCores()),
		MemAccessesPerCore: make([]uint64, s.machine.NumCores()),
		AccessesPerCore:    make([]uint64, s.machine.NumCores()),
		Levels:             make(map[int]*LevelStats),
	}
	s.chk = lim.Check >= check.Invariants
	s.replace = lim.Replace
	// Snapshot per-cache counters so warm-cache reruns still report only
	// this program's stats.
	for i, c := range s.cacheList {
		s.snapHits[i] = c.hits
		s.snapMiss[i] = c.misses
		s.snapWb[i] = c.writebacks
	}
	s.growBatches(ncores)

	// Set-partitioned mode: when the caller grants internal workers, no
	// order-dependent chaos hook is installed and the topology gives every
	// active core a private leading cache, the three-phase engine in
	// partition.go produces the identical Result with intra-cell
	// parallelism.
	if lim.SimWorkers > 1 && lim.Replace == nil {
		if plan := s.partitionPlan(ncores, lim.SimWorkers); plan != nil {
			return s.runPartitioned(ctx, prog, lim, res, plan)
		}
	}
	if lim.Stats != nil {
		*lim.Stats = PhaseStats{Workers: 1}
	}

	synchronized := prog.Sync()
	for r, rounds := 0, prog.RoundCount(); r < rounds; r++ {
		if err := ctx.Err(); err != nil {
			s.releaseCursors()
			return nil, err
		}
		// Discrete-event interleaving within the round. The heap, cursor,
		// remaining-count and batch buffers are simulator scratch, reused
		// across rounds; each core's accesses are pulled from its cursor in
		// batches of batchSize.
		h := s.heapBuf[:0]
		rem := s.remBuf[:0]
		curs := s.curBuf[:0]
		for c := 0; c < ncores; c++ {
			cur := prog.Cursor(r, c)
			curs = append(curs, cur)
			n := cur.Len()
			rem = append(rem, n)
			s.batchPos[c], s.batchLen[c] = 0, 0
			if n > 0 {
				h = eventPush(h, coreEvent{core: c, cycles: res.CyclesPerCore[c]})
			}
		}
		// The checked loop carries the per-access invariant machinery; the
		// fast loop is the same event loop with those checks hoisted out
		// entirely (Check == CheckOff never pays for them).
		var err error
		if s.chk {
			h, err = s.runRoundChecked(ctx, r, h, rem, curs, lim, res)
		} else {
			h, err = s.runRoundFast(ctx, r, h, rem, curs, lim, res)
		}
		s.heapBuf, s.remBuf, s.curBuf = h, rem, curs
		if err != nil {
			s.releaseCursors()
			return nil, err
		}
		// Barrier: align clocks. Unsynchronized programs have a single
		// round, so this only fires where the schedule demands it.
		if synchronized {
			alignBarrier(res)
		}
	}

	s.releaseCursors()
	return s.finishRun(res)
}

// runRoundChecked drives one round's discrete-event loop with the runtime
// invariants enabled: event-clock monotonicity, cursor Len() accounting,
// address-range validation and per-set verification (inside accessFrom). It
// returns the (possibly shrunk) heap slice so the caller can persist the
// scratch.
func (s *Simulator) runRoundChecked(ctx context.Context, r int, h []coreEvent, rem []int, curs []trace.Cursor, lim Limits, res *Result) ([]coreEvent, error) {
	// lastEv tracks the popped event order within the round: the
	// discrete-event heap must yield a monotone (cycles, core) sequence,
	// or the interleaving — and therefore the contention model — is
	// corrupt.
	lastEv := coreEvent{core: -1}
	popped := false
	sinceCheck := 0
	for len(h) > 0 {
		if sinceCheck++; sinceCheck >= cancelCheckEvents {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return h, err
			}
		}
		ev := h[0]
		c := ev.core
		if popped && eventLess(ev, lastEv) {
			return h, &check.InvariantError{Name: "event-clock", Core: c, Round: r, AccessIndex: int64(res.Accesses),
				Detail: fmt.Sprintf("event (cycle %d, core %d) popped after (cycle %d, core %d)", ev.cycles, ev.core, lastEv.cycles, lastEv.core)}
		}
		lastEv, popped = ev, true
		var a trace.Access
		ok := true
		if s.batchPos[c] == s.batchLen[c] {
			s.batchLen[c] = trace.Pull(curs[c], s.batchBuf[c])
			s.batchPos[c] = 0
		}
		if s.batchLen[c] > 0 {
			a = s.batchBuf[c][s.batchPos[c]]
			s.batchPos[c]++
		} else {
			ok = false
		}
		rem[c]--
		if !ok {
			return h, &check.InvariantError{Name: "cursor-short", Core: c, Round: r, AccessIndex: int64(res.Accesses),
				Detail: fmt.Sprintf("cursor drained with %d of %d accesses outstanding (hits+misses would undercount Len)", rem[c]+1, curs[c].Len())}
		}
		if a.Addr < 0 {
			return h, &check.InvariantError{Name: "negative-address", Core: c, Round: r, AccessIndex: int64(res.Accesses),
				Detail: fmt.Sprintf("cursor yielded address %#x (out-of-range group index or corrupted synthesis)", a.Addr)}
		}
		cost, memHit, cerr := s.accessFrom(c, a.Addr, a.Write, res.CyclesPerCore[c], res)
		if cerr != nil {
			cerr.Core, cerr.Round, cerr.AccessIndex = c, r, int64(res.Accesses)
			return h, cerr
		}
		res.Accesses++
		res.AccessesPerCore[c]++
		if memHit {
			res.MemAccesses++
			res.MemAccessesPerCore[c]++
		}
		res.CyclesPerCore[c] += uint64(cost)
		if lim.MaxCycles > 0 && res.CyclesPerCore[c] > lim.MaxCycles {
			return h, fmt.Errorf("%w: core %d reached %d cycles (budget %d)",
				ErrCycleBudget, c, res.CyclesPerCore[c], lim.MaxCycles)
		}
		if rem[c] > 0 {
			h[0] = coreEvent{core: c, cycles: res.CyclesPerCore[c]}
			eventFix(h)
		} else {
			_, h = eventPop(h)
			// The cursor promised exactly Len() accesses; anything left
			// beyond them — buffered in the current batch or still in the
			// cursor — means hits+misses would overcount Len (a duplicated
			// or shifted stream).
			more := s.batchPos[c] < s.batchLen[c]
			if !more {
				_, more = curs[c].Next()
			}
			if more {
				return h, &check.InvariantError{Name: "cursor-overrun", Core: c, Round: r, AccessIndex: int64(res.Accesses),
					Detail: fmt.Sprintf("cursor yields accesses beyond its Len() of %d", curs[c].Len())}
			}
		}
	}
	return h, nil
}

// runRoundFast is runRoundChecked with every invariant check hoisted out:
// the Check == CheckOff event loop pays only for the simulation itself plus
// the periodic cancellation poll and the cycle budget compare.
//
// It also drops the heap: the pending events live in a flat per-core clock
// table (cycBuf[c] = core c's local clock, or the all-ones done sentinel),
// and the next event is the table's strict-< argmin scanned in ascending
// core order — which makes the heap's lowest-core tie-break implicit, so
// the scan needs exactly one compare per core and no tuple comparison.
// The machines in scope have at most a few dozen cores, so that is a
// handful of branch-predictable compares over one or two hot cache lines,
// cheaper than the heap's data-dependent sift swaps. The pop order is the
// exact lexicographic (cycles, core) total order the heap yields (clocks
// are finite, so a live clock never equals the sentinel), and results are
// byte-identical to the checked loop's. h is only passed through as the
// shared scratch slice.
func (s *Simulator) runRoundFast(ctx context.Context, r int, h []coreEvent, rem []int, curs []trace.Cursor, lim Limits, res *Result) ([]coreEvent, error) {
	// With MaxCycles unset the budget compare is against an unreachable
	// sentinel, so the loop body carries exactly one compare either way.
	limMax := lim.MaxCycles
	if limMax == 0 {
		limMax = ^uint64(0)
	}
	const done = ^uint64(0)
	ncores := len(rem)
	for len(s.cycBuf) < ncores {
		s.cycBuf = append(s.cycBuf, done)
	}
	cyc := s.cycBuf[:ncores]
	active := 0
	for c := 0; c < ncores; c++ {
		cyc[c] = done
		if rem[c] > 0 {
			cyc[c] = res.CyclesPerCore[c]
			active++
		}
	}
	sinceCheck := 0
	for active > 0 {
		if sinceCheck++; sinceCheck >= cancelCheckEvents {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return h, err
			}
		}
		c := 0
		best := cyc[0]
		for i := 1; i < ncores; i++ {
			if cyc[i] < best {
				best = cyc[i]
				c = i
			}
		}
		if s.batchPos[c] == s.batchLen[c] {
			s.batchLen[c] = trace.Pull(curs[c], s.batchBuf[c])
			s.batchPos[c] = 0
		}
		var a trace.Access
		if bp := s.batchPos[c]; bp < s.batchLen[c] {
			a = s.batchBuf[c][bp]
			s.batchPos[c] = bp + 1
		}
		rem[c]--
		cost, memHit, _ := s.accessFrom(c, a.Addr, a.Write, res.CyclesPerCore[c], res)
		res.Accesses++
		res.AccessesPerCore[c]++
		if memHit {
			res.MemAccesses++
			res.MemAccessesPerCore[c]++
		}
		res.CyclesPerCore[c] += uint64(cost)
		if res.CyclesPerCore[c] > limMax {
			return h, fmt.Errorf("%w: core %d reached %d cycles (budget %d)",
				ErrCycleBudget, c, res.CyclesPerCore[c], lim.MaxCycles)
		}
		if rem[c] > 0 {
			cyc[c] = res.CyclesPerCore[c]
		} else {
			cyc[c] = done
			active--
		}
	}
	return h, nil
}

// alignBarrier charges one barrier and aligns every core's clock to the
// slowest core plus BarrierCost.
func alignBarrier(res *Result) {
	var maxC uint64
	for _, cy := range res.CyclesPerCore {
		if cy > maxC {
			maxC = cy
		}
	}
	maxC += BarrierCost
	res.Barriers++
	for c := range res.CyclesPerCore {
		res.CyclesPerCore[c] = maxC
	}
}

// growBatches sizes the per-core batch buffers for ncores cores.
func (s *Simulator) growBatches(ncores int) {
	for len(s.batchBuf) < ncores {
		s.batchBuf = append(s.batchBuf, make([]trace.Access, batchSize))
		s.batchPos = append(s.batchPos, 0)
		s.batchLen = append(s.batchLen, 0)
	}
}

// finishRun aggregates the per-cache counter deltas into the result's level
// and instance statistics, derives TotalCycles, and runs the end-of-run
// conservation check. Shared by the sequential and partitioned paths.
func (s *Simulator) finishRun(res *Result) (*Result, error) {
	res.PerCache = make([]CacheStats, 0, len(s.cacheList))
	for i, c := range s.cacheList {
		n := s.cacheNodes[i]
		ls, ok := res.Levels[c.node.Level]
		if !ok {
			ls = &LevelStats{Level: c.node.Level}
			res.Levels[c.node.Level] = ls
		}
		hits := c.hits - s.snapHits[i]
		misses := c.misses - s.snapMiss[i]
		ls.Hits += hits
		ls.Misses += misses
		ls.Accesses += hits + misses
		cs := CacheStats{Label: n.Label(), Level: n.Level, Hits: hits, Misses: misses, Writebacks: c.writebacks - s.snapWb[i]}
		for _, cn := range n.Cores() {
			cs.Cores = append(cs.Cores, cn.CoreID)
		}
		res.PerCache = append(res.PerCache, cs)
	}
	for _, cy := range res.CyclesPerCore {
		if cy > res.TotalCycles {
			res.TotalCycles = cy
		}
	}
	if s.chk {
		if ierr := s.checkConservation(res); ierr != nil {
			return nil, ierr
		}
	}
	return res, nil
}

// accessFrom performs one access from core c at local time now: probe up
// the path, fill on the way back, return the cycle cost and whether memory
// was reached. Off-chip accesses queue on the shared channel; dirty lines
// evicted from the last on-chip level occupy the channel too (write-back
// traffic is asynchronous, so it costs bandwidth but not access latency).
// Under self-checking the set holding addr is verified at every touched
// level; the returned *check.InvariantError is nil in production runs.
func (s *Simulator) accessFrom(c int, addr int64, write bool, now uint64, res *Result) (cost int, memAccess bool, ierr *check.InvariantError) {
	path := s.paths[c]
	hitAt := -1
	for i, ch := range path {
		cost += ch.node.Latency
		hit, v := ch.probe(addr, write)
		if hit {
			hitAt = i
			break
		}
		s.victimBuf[i] = v
	}
	if hitAt == -1 {
		memAccess = true
		hitAt = len(path)
		cost += s.machine.MemLatency
		if occ := uint64(s.machine.MemOccupancy); occ > 0 {
			arrive := now + uint64(cost) - uint64(s.machine.MemLatency)
			if s.memFreeAt > arrive {
				cost += int(s.memFreeAt - arrive) // queueing delay
				s.memFreeAt += occ
			} else {
				s.memFreeAt = arrive + occ
			}
		}
	}
	// Inclusive fill below the hit level. Inner-level dirty victims write
	// back into the next level up (resident there under inclusion); only a
	// dirty eviction from the last on-chip cache goes off-chip, where it
	// occupies the shared channel like any other line transfer.
	for i := 0; i < hitAt && i < len(path); i++ {
		victimAddr, dirtyOut := path[i].fillWay(addr, write && i == 0, s.victimBuf[i], s.replace)
		if !dirtyOut {
			continue
		}
		if i+1 < len(path) {
			path[i+1].setDirty(victimAddr)
			continue
		}
		res.Writebacks++
		if occ := uint64(s.machine.MemOccupancy); occ > 0 {
			s.memFreeAt += occ
		}
	}
	if s.chk {
		// Every level up to and including the hit level was either refreshed
		// (the hit) or filled; the line must now be resident exactly once and
		// most recently used in each.
		for i := 0; i <= hitAt && i < len(path); i++ {
			ch := path[i]
			tag := addr >> ch.lineBits
			set := ch.setOf(tag)
			if v := check.VerifySet(ch.tags, ch.lruOf(set), set*ch.assoc, ch.assoc, tag); v != nil {
				v.Detail = ch.node.Label() + ": " + v.Detail
				return cost, memAccess, v
			}
		}
	}
	return cost, memAccess, nil
}

// releaseCursors drops cursor references so the scratch buffer does not pin
// the last round's trace data across warm-cache reruns.
func (s *Simulator) releaseCursors() {
	for i := range s.curBuf {
		s.curBuf[i] = nil
	}
}

// SimulateOnce is the one-shot convenience: cold caches, single program.
func SimulateOnce(m *topology.Machine, prog trace.Source) (*Result, error) {
	return New(m).Run(prog)
}

// SimulateContext is SimulateOnce with cancellation and limits: cold
// caches, single program, abort on context cancellation or budget
// exhaustion (see RunContext).
func SimulateContext(ctx context.Context, m *topology.Machine, prog trace.Source, lim Limits) (*Result, error) {
	return New(m).RunContext(ctx, prog, lim)
}
