package cachesim

import (
	"context"
	"errors"
	"testing"

	"repro/internal/trace"
)

// cancellingSource yields a fixed access stream but cancels the supplied
// CancelFunc partway through the round, so the test exercises the
// simulator's mid-round cancellation check deterministically — no timing.
type cancellingSource struct {
	total    int
	cancelAt int
	cancel   context.CancelFunc
}

func (s *cancellingSource) CoreCount() int   { return 1 }
func (s *cancellingSource) RoundCount() int  { return 1 }
func (s *cancellingSource) Sync() bool       { return false }
func (s *cancellingSource) NumAccesses() int { return s.total }
func (s *cancellingSource) Cursor(r, c int) trace.Cursor {
	return &cancellingCursor{src: s}
}

type cancellingCursor struct {
	src *cancellingSource
	pos int
}

func (c *cancellingCursor) Next() (trace.Access, bool) {
	if c.pos >= c.src.total {
		return trace.Access{}, false
	}
	if c.pos == c.src.cancelAt {
		c.src.cancel()
	}
	c.pos++
	return trace.Access{Addr: int64(c.pos * 64), Size: 8}, true
}

func (c *cancellingCursor) Len() int { return c.src.total }
func (c *cancellingCursor) Reset()   { c.pos = 0 }

// TestRunContextPreCancelled: a dead context aborts before any event is
// simulated, returning the context's error and no result.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SimulateContext(ctx, oneCoreMachine(), prog(0, 64, 128), Limits{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("aborted run returned a partial result")
	}
}

// TestRunContextCancelledMidRound: cancellation raised while a round is in
// flight is noticed at the next in-round check; the run reports the
// cancellation and never surfaces partial statistics as a result.
func TestRunContextCancelledMidRound(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel a quarter of the way into a round long enough to cross
	// several in-round check boundaries after the cancellation point.
	src := &cancellingSource{total: 4 * cancelCheckEvents, cancelAt: cancelCheckEvents, cancel: cancel}
	res, err := SimulateContext(ctx, oneCoreMachine(), src, Limits{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a partial result")
	}
}

// TestCycleBudgetAborts: a cycle budget below the program's cost aborts
// with ErrCycleBudget and no partial result; a generous budget is
// invisible.
func TestCycleBudgetAborts(t *testing.T) {
	m := oneCoreMachine()
	p := prog(0, 1024, 2048, 4096) // four cold misses, ~104 cycles each
	res, err := SimulateContext(context.Background(), m, p, Limits{MaxCycles: 150})
	if !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("err = %v, want ErrCycleBudget", err)
	}
	if res != nil {
		t.Fatal("over-budget run returned a partial result")
	}

	res, err = SimulateContext(context.Background(), m, p, Limits{MaxCycles: 1 << 40})
	if err != nil {
		t.Fatalf("generous budget failed: %v", err)
	}
	want, err := SimulateOnce(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles != want.TotalCycles {
		t.Fatalf("budgeted run = %d cycles, unbudgeted %d", res.TotalCycles, want.TotalCycles)
	}
}

// TestRunAfterAbortIsUsable: a budget abort leaves the simulator in a
// usable state — a subsequent warm-cache Run on the same instance completes
// and reports a full (non-partial) access count.
func TestRunAfterAbortIsUsable(t *testing.T) {
	m := oneCoreMachine()
	s := New(m)
	p := prog(0, 1024, 2048, 4096)
	if _, err := s.RunContext(context.Background(), p, Limits{MaxCycles: 150}); !errors.Is(err, ErrCycleBudget) {
		t.Fatalf("expected budget abort, got %v", err)
	}
	got, err := s.Run(p)
	if err != nil {
		t.Fatalf("run after abort failed: %v", err)
	}
	if got.Accesses != uint64(p.NumAccesses()) {
		t.Fatalf("run after abort saw %d accesses, want %d", got.Accesses, p.NumAccesses())
	}
}
