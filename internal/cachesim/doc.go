// Package cachesim is the hardware substitute for the paper's Intel
// machines and its Simics+GEMS simulations: a trace-driven, multi-core,
// multi-level set-associative cache simulator instantiated directly from a
// topology.Machine.
//
// Model:
//
//   - every cache node of the hierarchy tree becomes a set-associative
//     LRU cache with the node's size/associativity/line parameters;
//   - an access from core c probes the caches on c's path to the root in
//     order (L1, then the shared L2/L3/... above it) and costs the sum of
//     the latencies of every level probed, plus the memory latency when
//     even the last level misses;
//   - fills are inclusive: the line is installed in every cache on the
//     path on the way back down;
//   - cores advance in discrete-event order (the core with the smallest
//     local clock issues next), so concurrently scheduled groups interleave
//     in time — this is what makes horizontal (shared-cache) reuse and
//     destructive interference visible, the §2 phenomena the paper builds
//     on;
//   - a barrier round ends when every core has drained its stream; all
//     clocks then align to the maximum (plus a small barrier cost when the
//     schedule is synchronized).
//
// Writes are modeled as write-allocate and cost the same probe path as
// reads (write-back traffic is not separately charged; it is identical
// across the schemes being compared and cancels out of normalized results).
//
// # Streaming input
//
// The simulator consumes a trace.Source: at the start of each barrier
// round it obtains one trace.Cursor per core and the discrete-event loop
// pulls accesses from the cursor of whichever core's clock is smallest.
// Because the simulator only ever needs the next access per core, a lazily
// generated source (trace.StreamSchedule / trace.StreamOrder) is simulated
// in O(cores) working memory — no access stream is ever materialized. A
// fully expanded *trace.Program implements Source too and produces
// bit-identical results; trace.Materialize converts between the two for
// debugging.
//
// # Self-checking
//
// Limits.Check >= check.Invariants arms runtime invariants inside the
// event loop: set occupancy and tag uniqueness, LRU recency of the
// just-touched way, cursors delivering exactly Len() accesses, no negative
// addresses, a monotone discrete-event clock, and an end-of-run
// conservation pass tying per-cache hit/miss counts to their children's
// inflow and TotalCycles to the slowest core. Violations abort the run
// with a *check.InvariantError — corrupted statistics are never returned.
// The checks are observational: a healthy run's Result is bit-identical
// with them on or off. Limits.Replace is a test-only hook (used by
// internal/chaos) that perturbs victim selection after the LRU choice;
// the differential oracle in internal/oracle, not these invariants, is
// what catches it.
package cachesim
