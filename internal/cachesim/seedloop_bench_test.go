package cachesim

// BenchmarkSimulatorHotPath compares the fused event loop (batched cursor
// pulls, interleaved way arrays, shift/mask-or-fastmod set indexing, heap
// replace-top, hoisted checks) and the set-partitioned parallel engine
// against a faithful copy of the seed implementation — separate tag and
// stamp arrays, modulo set indexing, per-access cursor.Next, pop+push heap
// re-arm, separate access and fill scans, per-access check branches — on
// the Fig 17-weak headline cell (galgel scaled x8 on the 24-core scaled
// Dunnington, Base order). The seed is copied here rather than summoned
// from git so the comparison runs in one binary; record runs into
// BENCH_simulator_hotpath.json.

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/baseline"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// seedCache is a faithful copy of the seed's cache representation: tags,
// stamps and dirty bits in separate parallel arrays and general modulo set
// indexing. The interleaved way array, the mask/fastmod reduction and the
// fused probe all postdate the seed, so the baseline must not have them.
type seedCache struct {
	node     *topology.Node
	sets     int
	assoc    int
	lineBits uint
	lines    []int64
	stamp    []uint64
	dirty    []bool
	tick     uint64

	hits, misses, writebacks uint64
}

// seedSim mirrors the Simulator's topology wiring (paths, cache list
// order) onto seedCache instances; the geometry is borrowed from New so
// the two engines simulate the identical hierarchy.
type seedSim struct {
	machine   *topology.Machine
	paths     [][]*seedCache
	list      []*seedCache
	nodes     []*topology.Node
	memFreeAt uint64

	snapHits, snapMiss, snapWb []uint64
	heapBuf                    []coreEvent
	remBuf                     []int
	curBuf                     []trace.Cursor
}

func newSeedSim(m *topology.Machine) *seedSim {
	real := New(m)
	mirror := make(map[*cache]*seedCache, len(real.cacheList))
	ss := &seedSim{machine: m, nodes: real.cacheNodes}
	for _, c := range real.cacheList {
		k := &seedCache{node: c.node, sets: c.sets, assoc: c.assoc, lineBits: c.lineBits,
			lines: make([]int64, c.sets*c.assoc),
			stamp: make([]uint64, c.sets*c.assoc),
			dirty: make([]bool, c.sets*c.assoc)}
		for i := range k.lines {
			k.lines[i] = -1
		}
		mirror[c] = k
		ss.list = append(ss.list, k)
	}
	ss.paths = make([][]*seedCache, len(real.paths))
	for c, p := range real.paths {
		for _, ch := range p {
			ss.paths[c] = append(ss.paths[c], mirror[ch])
		}
	}
	ss.snapHits = make([]uint64, len(ss.list))
	ss.snapMiss = make([]uint64, len(ss.list))
	ss.snapWb = make([]uint64, len(ss.list))
	return ss
}

// seedAccess is the seed cache.access: modulo set indexing, hit scan only.
func (c *seedCache) seedAccess(addr int64, write bool) bool {
	tag := addr >> c.lineBits
	set := int(tag % int64(c.sets))
	base := set * c.assoc
	c.tick++
	for w := 0; w < c.assoc; w++ {
		if c.lines[base+w] == tag {
			c.stamp[base+w] = c.tick
			if write {
				c.dirty[base+w] = true
			}
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// seedFill is the seed cache.fill: a second scan of the same set selects
// the LRU victim the fused probe now finds during the hit scan.
func (c *seedCache) seedFill(addr int64, write bool) (victimAddr int64, evictedDirty bool) {
	tag := addr >> c.lineBits
	set := int(tag % int64(c.sets))
	base := set * c.assoc
	victim := base
	for w := 0; w < c.assoc; w++ {
		if c.lines[base+w] == -1 {
			victim = base + w
			break
		}
		if c.stamp[base+w] < c.stamp[victim] {
			victim = base + w
		}
	}
	victimAddr = -1
	if c.lines[victim] != -1 {
		victimAddr = c.lines[victim] << c.lineBits
		if c.dirty[victim] {
			c.writebacks++
			evictedDirty = true
		}
	}
	c.tick++
	c.lines[victim] = tag
	c.stamp[victim] = c.tick
	c.dirty[victim] = write
	return victimAddr, evictedDirty
}

// seedSetDirty is the seed cache.setDirty.
func (c *seedCache) seedSetDirty(addr int64) bool {
	tag := addr >> c.lineBits
	set := int(tag % int64(c.sets))
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.lines[base+w] == tag {
			c.dirty[base+w] = true
			return true
		}
	}
	return false
}

// seedAccessFrom is the seed Simulator.accessFrom without the
// self-checking tail (the benchmark runs check-off, where the seed loop
// skipped VerifySet behind the same chk branch the copy keeps upstream).
func (ss *seedSim) seedAccessFrom(c int, addr int64, write bool, now uint64, res *Result) (cost int, memAccess bool) {
	path := ss.paths[c]
	hitAt := -1
	for i, ch := range path {
		cost += ch.node.Latency
		if ch.seedAccess(addr, write) {
			hitAt = i
			break
		}
	}
	if hitAt == -1 {
		memAccess = true
		hitAt = len(path)
		cost += ss.machine.MemLatency
		if occ := uint64(ss.machine.MemOccupancy); occ > 0 {
			arrive := now + uint64(cost) - uint64(ss.machine.MemLatency)
			if ss.memFreeAt > arrive {
				cost += int(ss.memFreeAt - arrive)
				ss.memFreeAt += occ
			} else {
				ss.memFreeAt = arrive + occ
			}
		}
	}
	for i := 0; i < hitAt && i < len(path); i++ {
		victimAddr, dirtyOut := path[i].seedFill(addr, write && i == 0)
		if !dirtyOut {
			continue
		}
		if i+1 < len(path) {
			path[i+1].seedSetDirty(victimAddr)
			continue
		}
		res.Writebacks++
		if occ := uint64(ss.machine.MemOccupancy); occ > 0 {
			ss.memFreeAt += occ
		}
	}
	return cost, memAccess
}

// seedFinish replicates finishRun's aggregation (conservation checking is
// Check-gated and off in both loops being compared).
func (ss *seedSim) seedFinish(res *Result) *Result {
	res.PerCache = make([]CacheStats, 0, len(ss.list))
	for i, c := range ss.list {
		n := ss.nodes[i]
		ls, ok := res.Levels[c.node.Level]
		if !ok {
			ls = &LevelStats{Level: c.node.Level}
			res.Levels[c.node.Level] = ls
		}
		hits := c.hits - ss.snapHits[i]
		misses := c.misses - ss.snapMiss[i]
		ls.Hits += hits
		ls.Misses += misses
		ls.Accesses += hits + misses
		cs := CacheStats{Label: n.Label(), Level: n.Level, Hits: hits, Misses: misses, Writebacks: c.writebacks - ss.snapWb[i]}
		for _, cn := range n.Cores() {
			cs.Cores = append(cs.Cores, cn.CoreID)
		}
		res.PerCache = append(res.PerCache, cs)
	}
	for _, cy := range res.CyclesPerCore {
		if cy > res.TotalCycles {
			res.TotalCycles = cy
		}
	}
	return res
}

// seedRun replicates the seed RunContext event loop: one cursor.Next per
// access, pop+push heap re-arm, per-access check branch (off here, exactly
// as a production check-off run took it).
func seedRun(ss *seedSim, prog trace.Source) (*Result, error) {
	ctx := context.Background()
	ncores := prog.CoreCount()
	res := &Result{
		Machine:            ss.machine.Name,
		CyclesPerCore:      make([]uint64, ss.machine.NumCores()),
		MemAccessesPerCore: make([]uint64, ss.machine.NumCores()),
		AccessesPerCore:    make([]uint64, ss.machine.NumCores()),
		Levels:             make(map[int]*LevelStats),
	}
	for i, c := range ss.list {
		ss.snapHits[i] = c.hits
		ss.snapMiss[i] = c.misses
		ss.snapWb[i] = c.writebacks
	}
	synchronized := prog.Sync()
	sinceCheck := 0
	for r, rounds := 0, prog.RoundCount(); r < rounds; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		h := ss.heapBuf[:0]
		rem := ss.remBuf[:0]
		curs := ss.curBuf[:0]
		for c := 0; c < ncores; c++ {
			cur := prog.Cursor(r, c)
			curs = append(curs, cur)
			n := cur.Len()
			rem = append(rem, n)
			if n > 0 {
				h = eventPush(h, coreEvent{core: c, cycles: res.CyclesPerCore[c]})
			}
		}
		for len(h) > 0 {
			if sinceCheck++; sinceCheck >= cancelCheckEvents {
				sinceCheck = 0
				if err := ctx.Err(); err != nil {
					ss.heapBuf, ss.remBuf, ss.curBuf = h, rem, curs
					return nil, err
				}
			}
			var ev coreEvent
			ev, h = eventPop(h)
			c := ev.core
			a, _ := curs[c].Next()
			rem[c]--
			cost, memHit := ss.seedAccessFrom(c, a.Addr, a.Write, res.CyclesPerCore[c], res)
			res.Accesses++
			res.AccessesPerCore[c]++
			if memHit {
				res.MemAccesses++
				res.MemAccessesPerCore[c]++
			}
			res.CyclesPerCore[c] += uint64(cost)
			if rem[c] > 0 {
				h = eventPush(h, coreEvent{core: c, cycles: res.CyclesPerCore[c]})
			}
		}
		ss.heapBuf, ss.remBuf, ss.curBuf = h, rem, curs
		if synchronized {
			alignBarrier(res)
		}
	}
	for i := range ss.curBuf {
		ss.curBuf[i] = nil
	}
	return ss.seedFinish(res), nil
}

// headlineCell builds the Fig 17-weak headline trace: galgel scaled x8 on
// the 24-core scaled Dunnington under the Base iteration order.
func headlineCell(tb testing.TB) (trace.Source, *topology.Machine) {
	tb.Helper()
	k, err := workloads.Scaled("galgel", 8)
	if err != nil {
		tb.Fatal(err)
	}
	m, err := topology.ScaleDunnington(24)
	if err != nil {
		tb.Fatal(err)
	}
	perCore := baseline.Base(k, m.NumCores())
	layout := k.Layout(2048)
	return trace.StreamOrder(perCore, k.Refs, layout), m
}

// TestSeedLoopMatchesFused pins the benchmark's validity: the copied seed
// implementation and the fused loop produce identical Results on the
// headline cell, so their ns/op compare the same computation.
func TestSeedLoopMatchesFused(t *testing.T) {
	src, m := headlineCell(t)
	want, err := New(m).Run(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := seedRun(newSeedSim(m), src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("seed copy diverges from the fused loop\nseed:  %+v\nfused: %+v", got, want)
	}
}

// BenchmarkSimulatorHotPath: ns/op of one full headline-cell simulation.
// "seed" is the pre-fusion implementation; "fused" the rewritten
// sequential loop; "workers=N" the set-partitioned engine. On a single-CPU
// host the worker variants measure overhead, not scaling — read
// multi-worker numbers from a multicore host (see
// BENCH_simulator_hotpath.json notes).
func BenchmarkSimulatorHotPath(b *testing.B) {
	src, m := headlineCell(b)
	run := func(b *testing.B, lim Limits) {
		s := New(m)
		b.ReportAllocs()
		b.ResetTimer()
		var accesses uint64
		for i := 0; i < b.N; i++ {
			res, err := s.RunContext(context.Background(), src, lim)
			if err != nil {
				b.Fatal(err)
			}
			accesses = res.Accesses
		}
		b.ReportMetric(float64(accesses), "accesses/cell")
	}
	b.Run("seed", func(b *testing.B) {
		ss := newSeedSim(m)
		b.ReportAllocs()
		b.ResetTimer()
		var accesses uint64
		for i := 0; i < b.N; i++ {
			res, err := seedRun(ss, src)
			if err != nil {
				b.Fatal(err)
			}
			accesses = res.Accesses
		}
		b.ReportMetric(float64(accesses), "accesses/cell")
	})
	b.Run("fused", func(b *testing.B) { run(b, Limits{}) })
	for _, w := range []int{2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var st PhaseStats
			run(b, Limits{SimWorkers: w, Stats: &st})
			if !st.Partitioned {
				b.Fatal("set-partitioned engine did not engage on the headline cell")
			}
		})
	}
}
