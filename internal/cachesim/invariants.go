package cachesim

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/topology"
)

// checkConservation verifies the end-of-run flow identities of one
// simulation, using the per-run counter deltas (warm-cache reruns only
// account for this run's traffic):
//
//   - the per-core access counts sum to the total access count;
//   - every cache's hits+misses equal the traffic flowing into it from its
//     children (core children issue their accesses, cache children forward
//     their misses) — the inclusion/probe-order identity;
//   - the traffic flowing out of the last on-chip level equals the recorded
//     off-chip access count;
//   - TotalCycles is exactly the maximum per-core clock.
//
// Any mismatch means some access was dropped, double-counted, or routed to
// the wrong cache instance, so the run is rejected with a *check.InvariantError
// rather than reported.
func (s *Simulator) checkConservation(res *Result) *check.InvariantError {
	conserr := func(format string, args ...any) *check.InvariantError {
		return &check.InvariantError{Name: "conservation", Core: -1, Round: -1,
			AccessIndex: int64(res.Accesses), Detail: fmt.Sprintf(format, args...)}
	}

	var perCore uint64
	for _, a := range res.AccessesPerCore {
		perCore += a
	}
	if perCore != res.Accesses {
		return conserr("per-core accesses sum to %d, total is %d", perCore, res.Accesses)
	}

	idx := make(map[*topology.Node]int, len(s.cacheNodes))
	for i, n := range s.cacheNodes {
		idx[n] = i
	}
	// inflow computes the traffic a parent node receives from one child:
	// cores issue all their accesses, caches forward their misses.
	inflow := func(ch *topology.Node) uint64 {
		if ch.Kind == topology.Core {
			return res.AccessesPerCore[ch.CoreID]
		}
		if j, ok := idx[ch]; ok {
			return s.cacheList[j].misses - s.snapMiss[j]
		}
		return 0
	}

	for i, n := range s.cacheNodes {
		c := s.cacheList[i]
		hits := c.hits - s.snapHits[i]
		misses := c.misses - s.snapMiss[i]
		var in uint64
		for _, ch := range n.Children {
			in += inflow(ch)
		}
		if hits+misses != in {
			return conserr("%s saw %d accesses (hits %d + misses %d) but children sent %d",
				n.Label(), hits+misses, hits, misses, in)
		}
	}

	// Whatever leaves the machine root's children is off-chip traffic.
	var offChip uint64
	for _, ch := range s.machine.Root.Children {
		offChip += inflow(ch)
	}
	if offChip != res.MemAccesses {
		return conserr("last-level misses sum to %d, recorded off-chip accesses %d", offChip, res.MemAccesses)
	}

	var maxC uint64
	for _, cy := range res.CyclesPerCore {
		if cy > maxC {
			maxC = cy
		}
	}
	if res.TotalCycles != maxC {
		return conserr("TotalCycles %d != max per-core clock %d", res.TotalCycles, maxC)
	}
	return nil
}
