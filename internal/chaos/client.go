package chaos

import "fmt"

// ClientFault is one injectable client-level misbehavior class, exercised
// by the topomapd chaos/soak harness (internal/serve/chaostest): where
// process faults attack the worker carrying a cell, client faults attack
// the server's front door — the request arrives broken, hostile, or the
// client vanishes. The serving layer must answer every one of them with a
// well-formed envelope (or a clean connection close for the vanished
// client) while healthy traffic keeps flowing.
type ClientFault int

const (
	// ClientNone marks a well-behaved request.
	ClientNone ClientFault = iota
	// ClientSlowLoris trickles the request body byte by byte, slower than
	// the server's body deadline. The slow-loris guard must cut it off
	// with a 408 instead of letting it pin a connection.
	ClientSlowLoris
	// ClientMalformed sends a body that is not a valid request — truncated
	// JSON, wrong types, an uncompilable kernel. The decoder must answer a
	// structured 400, never a panic or a hang.
	ClientMalformed
	// ClientOversized sends a body (an enormous machine description) over
	// the server's body limit; the bounded reader must answer 413.
	ClientOversized
	// ClientDisconnect abandons the request mid-flight — after the body,
	// before the response. The server must notice (canceling the
	// evaluation once no client remains) and leak nothing.
	ClientDisconnect
)

// String names the client fault class as logs and tests spell it.
func (f ClientFault) String() string {
	switch f {
	case ClientNone:
		return "none"
	case ClientSlowLoris:
		return "slow-loris"
	case ClientMalformed:
		return "malformed"
	case ClientOversized:
		return "oversized"
	case ClientDisconnect:
		return "disconnect"
	default:
		return fmt.Sprintf("ClientFault(%d)", int(f))
	}
}

// InjectableClient lists the fault classes PickClient assigns to poisoned
// requests.
func InjectableClient() []ClientFault {
	return []ClientFault{ClientSlowLoris, ClientMalformed, ClientOversized, ClientDisconnect}
}

// clientDivisor is the poisoning rate: roughly one request in
// clientDivisor misbehaves, so a soak run interleaves hostile and healthy
// traffic the way a real overload does.
const clientDivisor = 3

// PickClient decides deterministically whether request id (any stable
// per-request token) misbehaves under the given seed, and how. Reruns of
// a seeded soak poison exactly the same requests.
func PickClient(seed int64, id string) (ClientFault, bool) {
	h := cellHash(seed, id)
	if h%clientDivisor != 0 {
		return ClientNone, false
	}
	inj := InjectableClient()
	return inj[(h/clientDivisor)%uint64(len(inj))], true
}
