package chaos

import (
	"bytes"
	"fmt"
	"testing"
)

// TestPickProcessDeterministic: the same (seed, worker, batch) triple
// always resolves to the same decision — a rerun of a chaos sweep faults at
// exactly the same points.
func TestPickProcessDeterministic(t *testing.T) {
	for i := 0; i < 50; i++ {
		worker := fmt.Sprintf("w%d", i%3+1)
		batch := fmt.Sprintf("grid:%d:1", i)
		f1, ok1 := PickProcess(7, worker, batch)
		f2, ok2 := PickProcess(7, worker, batch)
		if f1 != f2 || ok1 != ok2 {
			t.Fatalf("PickProcess(7, %s, %s) unstable: (%v,%v) then (%v,%v)", worker, batch, f1, ok1, f2, ok2)
		}
	}
}

// TestPickProcessRateAndClasses: the poisoning rate is roughly one pair in
// procDivisor, every injectable class occurs, and unpoisoned pairs report
// ProcNone.
func TestPickProcessRateAndClasses(t *testing.T) {
	const n = 4000
	hits := 0
	classes := make(map[ProcessFault]int)
	for i := 0; i < n; i++ {
		f, ok := PickProcess(42, fmt.Sprintf("w%d", i%5), fmt.Sprintf("g:%d:%d", i/5, i%3+1))
		if !ok {
			if f != ProcNone {
				t.Fatalf("unpoisoned pair reports fault %v", f)
			}
			continue
		}
		hits++
		classes[f]++
	}
	rate := float64(hits) / n
	if rate < 0.15 || rate > 0.35 {
		t.Errorf("poisoning rate %.3f, want about 1/%d", rate, procDivisor)
	}
	for _, f := range InjectableProcess() {
		if classes[f] == 0 {
			t.Errorf("fault class %v never assigned over %d pairs", f, n)
		}
	}
}

// TestPickProcessAttemptIndependence: the same worker and batch index fault
// independently across attempts — a reassigned batch is a fresh chaos
// decision, so a killed worker's replacement is not doomed to repeat it.
func TestPickProcessAttemptIndependence(t *testing.T) {
	same := true
	for i := 0; i < 64 && same; i++ {
		_, a1 := PickProcess(9, "w1", fmt.Sprintf("g:%d:1", i))
		_, a2 := PickProcess(9, "w1", fmt.Sprintf("g:%d:2", i))
		same = a1 == a2
	}
	if same {
		t.Error("attempt number never changed the chaos decision over 64 batches")
	}
}

// TestCorruptRecordFlipsOnePayloadByte: exactly one byte changes, inside
// the JSON payload — never byte 0 (the '{') and never the trailing newline
// — and the choice is deterministic.
func TestCorruptRecordFlipsOnePayloadByte(t *testing.T) {
	line := []byte(`{"key":"cell","sim":{"total_cycles":12345},"sum":"abcdef0123456789"}` + "\n")
	out := CorruptRecord(3, "w1", "g:0:1", line)
	if bytes.Equal(out, line) {
		t.Fatal("CorruptRecord changed nothing")
	}
	if !bytes.Equal(out, CorruptRecord(3, "w1", "g:0:1", line)) {
		t.Fatal("CorruptRecord is not deterministic")
	}
	diffs := 0
	idx := -1
	for i := range line {
		if out[i] != line[i] {
			diffs++
			idx = i
		}
	}
	if diffs != 1 {
		t.Fatalf("CorruptRecord changed %d bytes, want 1", diffs)
	}
	if idx == 0 || idx >= len(line)-1 {
		t.Errorf("corruption landed at byte %d (line length %d): must be inside the payload", idx, len(line))
	}
	// Never an ASCII letter: the flip is the 0x20 case bit, and Go's JSON
	// decoder matches object keys case-insensitively — a case-flipped field
	// name would decode identically and the corruption would merge cleanly.
	if c := line[idx]; (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
		t.Errorf("corruption flipped letter %q at byte %d: case flips can be neutralized by case-insensitive JSON key matching", c, idx)
	}
	// Too-short lines pass through unchanged rather than panicking.
	if short := CorruptRecord(3, "w1", "g:0:1", []byte("{\n")); !bytes.Equal(short, []byte("{\n")) {
		t.Error("too-short line was corrupted")
	}
}
