package chaos

import (
	"fmt"

	"repro/internal/trace"
)

// Fault is one injectable corruption class.
type Fault int

const (
	// None marks an unpoisoned cell.
	None Fault = iota
	// BitFlip flips an address bit of one access in the simulator's input
	// stream. Structural invariants still hold, so only the differential
	// oracle (fed the clean stream) can catch it.
	BitFlip
	// Truncate ends one core's stream early: the cursor reports its full
	// Len() but drains before delivering that many accesses.
	Truncate
	// Duplicate yields one access beyond the cursor's declared Len(), as a
	// drifted generator would.
	Duplicate
	// BadIndex replaces one access's address with a negative value — what
	// an out-of-range group index turns into after address synthesis.
	BadIndex
	// Replacement perturbs the simulator's victim selection through the
	// cachesim.Limits.Replace hook. The cache stays structurally valid
	// (occupancy, uniqueness and recency invariants all hold), so only the
	// oracle can catch it.
	Replacement
)

// String names the fault class as replay bundles spell it.
func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case BitFlip:
		return "bitflip"
	case Truncate:
		return "truncate"
	case Duplicate:
		return "duplicate"
	case BadIndex:
		return "badindex"
	case Replacement:
		return "replacement"
	default:
		return fmt.Sprintf("Fault(%d)", int(f))
	}
}

// ParseFault inverts Fault.String, for replay bundles.
func ParseFault(s string) (Fault, error) {
	for _, f := range []Fault{None, BitFlip, Truncate, Duplicate, BadIndex, Replacement} {
		if f.String() == s {
			return f, nil
		}
	}
	return None, fmt.Errorf("chaos: unknown fault %q", s)
}

// Injectable lists the fault classes Pick assigns to poisoned cells.
func Injectable() []Fault {
	return []Fault{BitFlip, Truncate, Duplicate, BadIndex, Replacement}
}

// splitmix64 is the mixing function behind every chaos decision: cheap,
// stateless and deterministic, so a (seed, cell) pair always resolves to
// the same faults without any global randomness.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// cellHash mixes the sweep seed with the cell identity.
func cellHash(seed int64, id string) uint64 {
	return splitmix64(uint64(seed) ^ fnv64(id))
}

// poisonDivisor is the poisoning rate: roughly one cell in poisonDivisor is
// corrupted under a chaos sweep.
const poisonDivisor = 3

// Pick decides deterministically whether the cell with the given identity is
// poisoned under seed, and with which fault class. Roughly one cell in three
// is poisoned; the class rotates through Injectable() by hash.
func Pick(seed int64, id string) (Fault, bool) {
	h := cellHash(seed, id)
	if h%poisonDivisor != 0 {
		return None, false
	}
	inj := Injectable()
	return inj[(h/poisonDivisor)%uint64(len(inj))], true
}

// Source wraps src so that fault f is injected at one deterministically
// chosen (round, core, access) target. Replacement and None are simulator-
// side faults, not stream faults: src is returned unchanged for them (use
// Hook for Replacement).
func Source(src trace.Source, f Fault, seed int64, id string) trace.Source {
	if f == None || f == Replacement {
		return src
	}
	h := cellHash(seed+1, id)
	// Enumerate the non-empty (round, core) streams and pick the target by
	// hash; the access offset hashes independently so reruns corrupt the
	// same access of the same stream.
	type cand struct{ r, c, n int }
	var cands []cand
	for r := 0; r < src.RoundCount(); r++ {
		for c := 0; c < src.CoreCount(); c++ {
			if n := src.Cursor(r, c).Len(); n > 0 {
				cands = append(cands, cand{r, c, n})
			}
		}
	}
	if len(cands) == 0 {
		return src
	}
	t := cands[h%uint64(len(cands))]
	off := int(splitmix64(h) % uint64(t.n))
	return &faultSource{src: src, f: f, r: t.r, c: t.c, off: off}
}

// faultSource passes every cursor through except the target's, which it
// wraps with the fault.
type faultSource struct {
	src  trace.Source
	f    Fault
	r, c int
	off  int
}

func (s *faultSource) CoreCount() int   { return s.src.CoreCount() }
func (s *faultSource) RoundCount() int  { return s.src.RoundCount() }
func (s *faultSource) Sync() bool       { return s.src.Sync() }
func (s *faultSource) NumAccesses() int { return s.src.NumAccesses() }

func (s *faultSource) Cursor(r, c int) trace.Cursor {
	cur := s.src.Cursor(r, c)
	if r != s.r || c != s.c {
		return cur
	}
	return &faultCursor{cur: cur, f: s.f, off: s.off}
}

// faultCursor applies one fault at (or after) the chosen offset.
type faultCursor struct {
	cur  trace.Cursor
	f    Fault
	off  int
	pos  int
	last trace.Access
	dup  bool // Duplicate: extra access already delivered
}

func (c *faultCursor) Len() int { return c.cur.Len() }

func (c *faultCursor) Reset() {
	c.cur.Reset()
	c.pos = 0
	c.dup = false
}

func (c *faultCursor) Next() (trace.Access, bool) {
	switch c.f {
	case Truncate:
		// Stop early: everything from the offset on is dropped while Len()
		// still promises the full count.
		if c.pos >= c.off {
			return trace.Access{}, false
		}
		a, ok := c.cur.Next()
		if ok {
			c.pos++
		}
		return a, ok
	case Duplicate:
		a, ok := c.cur.Next()
		if ok {
			c.last = a
			return a, true
		}
		if !c.dup {
			c.dup = true
			return c.last, true
		}
		return trace.Access{}, false
	case BitFlip:
		a, ok := c.cur.Next()
		if ok && c.pos == c.off {
			a.Addr ^= 1 << 13 // changes the tag at every cache geometry in use
		}
		c.pos++
		return a, ok
	case BadIndex:
		a, ok := c.cur.Next()
		if ok && c.pos == c.off {
			a.Addr = -a.Addr - 1 // address an out-of-range index synthesizes
		}
		c.pos++
		return a, ok
	default:
		return c.cur.Next()
	}
}

// Hook returns a deterministic replacement-perturbation hook for
// cachesim.Limits.Replace: roughly every seventh fill evicts a hash-chosen
// way instead of the LRU choice. The perturbed cache stays structurally
// valid, so detection must come from the oracle.
func Hook(seed int64, id string) func(level, set, victim, assoc int) int {
	state := cellHash(seed+2, id)
	n := 0
	return func(level, set, victim, assoc int) int {
		n++
		if n%7 != 0 {
			return -1 // keep the policy's choice
		}
		state = splitmix64(state)
		return int(state % uint64(assoc))
	}
}
