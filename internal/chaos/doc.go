// Package chaos is the fault injector that proves the self-checking layers
// actually fire. It deterministically corrupts a cell's simulation input —
// a bit-flipped address, a truncated or duplicated access stream, an
// out-of-range index surfacing as a negative address — or perturbs the
// simulator's replacement decisions through the cachesim.Limits.Replace
// hook, all keyed by (seed, cell id) so the same cells are poisoned with
// the same faults on every run at any worker count.
//
// Each fault class maps to the layer that must catch it:
//
//	BitFlip     → oracle divergence (the oracle reads the clean source)
//	Truncate    → "cursor-short" invariant (hits+misses would undercount Len)
//	Duplicate   → "cursor-overrun" invariant (stream yields beyond Len)
//	BadIndex    → "negative-address" invariant (corrupted synthesis)
//	Replacement → oracle divergence (set invariants deliberately still hold)
//
// The chaos test suite in internal/experiments runs a poisoned grid and
// asserts that every poisoned cell fails with the right detector, that every
// healthy cell renders byte-identically to a clean run, and that each
// detection writes a replay bundle benchtool -replay reproduces.
package chaos
