package chaos

import (
	"testing"

	"repro/internal/trace"
)

// sliceSource is a minimal materialized trace.Source for cursor tests.
type sliceSource struct {
	rounds [][][]trace.Access // [round][core][access]
	sync   bool
}

func (s *sliceSource) CoreCount() int  { return len(s.rounds[0]) }
func (s *sliceSource) RoundCount() int { return len(s.rounds) }
func (s *sliceSource) Sync() bool      { return s.sync }
func (s *sliceSource) NumAccesses() int {
	n := 0
	for _, r := range s.rounds {
		for _, c := range r {
			n += len(c)
		}
	}
	return n
}
func (s *sliceSource) Cursor(r, c int) trace.Cursor {
	return &sliceCursor{acc: s.rounds[r][c]}
}

type sliceCursor struct {
	acc []trace.Access
	pos int
}

func (c *sliceCursor) Len() int { return len(c.acc) }
func (c *sliceCursor) Reset()   { c.pos = 0 }
func (c *sliceCursor) Next() (trace.Access, bool) {
	if c.pos >= len(c.acc) {
		return trace.Access{}, false
	}
	a := c.acc[c.pos]
	c.pos++
	return a, true
}

func testSource() *sliceSource {
	mk := func(base int64, n int) []trace.Access {
		out := make([]trace.Access, n)
		for i := range out {
			out[i] = trace.Access{Addr: base + int64(i)*64}
		}
		return out
	}
	return &sliceSource{rounds: [][][]trace.Access{
		{mk(0, 8), mk(1<<20, 6)},
		{mk(2<<20, 4), mk(3<<20, 8)},
	}, sync: true}
}

func drain(cur trace.Cursor) []trace.Access {
	var out []trace.Access
	for {
		a, ok := cur.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

// TestPickDeterministic: the same (seed, id) always resolves to the same
// poisoning decision, and different seeds poison different cell subsets.
func TestPickDeterministic(t *testing.T) {
	ids := []string{"a|M|Base", "b|M|Base", "c|N|Combined", "d|N|Local", "e|M|Base+"}
	for _, id := range ids {
		f1, ok1 := Pick(7, id)
		f2, ok2 := Pick(7, id)
		if f1 != f2 || ok1 != ok2 {
			t.Errorf("Pick(7, %q) is not deterministic: (%v,%v) then (%v,%v)", id, f1, ok1, f2, ok2)
		}
	}
	if _, ok := Pick(0, ids[0]); ok {
		// Seed 0 still decides by hash; just ensure it does not panic. No
		// assertion on the outcome — 0 is "disarmed" at the config layer,
		// not here.
		_ = ok
	}
}

// TestParseFaultRoundTrip: every injectable class (plus None) survives
// String → ParseFault, the replay-bundle encoding.
func TestParseFaultRoundTrip(t *testing.T) {
	for _, f := range append([]Fault{None}, Injectable()...) {
		got, err := ParseFault(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFault(%q) = %v, %v; want %v", f.String(), got, err, f)
		}
	}
	if _, err := ParseFault("gremlin"); err == nil {
		t.Error("ParseFault accepted an unknown class")
	}
}

// TestSourceFaultShapes verifies each stream fault does exactly what its
// detector expects: Truncate under-delivers against Len, Duplicate
// over-delivers, BitFlip and BadIndex perturb exactly one address.
func TestSourceFaultShapes(t *testing.T) {
	const seed, id = 11, "kernel|machine|Combined"
	for _, f := range []Fault{BitFlip, Truncate, Duplicate, BadIndex} {
		src := Source(testSource(), f, seed, id)
		clean := testSource()
		perturbed := 0
		for r := 0; r < src.RoundCount(); r++ {
			for c := 0; c < src.CoreCount(); c++ {
				got := drain(src.Cursor(r, c))
				want := drain(clean.Cursor(r, c))
				n := src.Cursor(r, c).Len()
				switch {
				case len(got) < len(want):
					if f != Truncate {
						t.Errorf("%v: stream (%d,%d) under-delivers", f, r, c)
					}
					if n != len(want) {
						t.Errorf("%v: Len() = %d, want the advertised %d", f, n, len(want))
					}
					perturbed++
				case len(got) > len(want):
					if f != Duplicate {
						t.Errorf("%v: stream (%d,%d) over-delivers", f, r, c)
					}
					perturbed++
				default:
					diff := 0
					for i := range got {
						if got[i] != want[i] {
							diff++
						}
					}
					if diff > 0 {
						if f != BitFlip && f != BadIndex {
							t.Errorf("%v: stream (%d,%d) has %d mutated accesses", f, r, c, diff)
						}
						if diff != 1 {
							t.Errorf("%v: %d accesses mutated in one stream, want 1", f, diff)
						}
						perturbed++
					}
				}
			}
		}
		if perturbed != 1 {
			t.Errorf("%v perturbed %d streams, want exactly 1", f, perturbed)
		}
	}
}

// TestSourceBadIndexNegative: the injected address is negative, the exact
// shape the simulator's negative-address invariant rejects.
func TestSourceBadIndexNegative(t *testing.T) {
	src := Source(testSource(), BadIndex, 3, "x|y|Base")
	neg := 0
	for r := 0; r < src.RoundCount(); r++ {
		for c := 0; c < src.CoreCount(); c++ {
			for _, a := range drain(src.Cursor(r, c)) {
				if a.Addr < 0 {
					neg++
				}
			}
		}
	}
	if neg != 1 {
		t.Errorf("BadIndex produced %d negative addresses, want 1", neg)
	}
}

// TestSourcePassthrough: None and Replacement leave the stream untouched —
// Replacement is a simulator-side fault delivered via Hook.
func TestSourcePassthrough(t *testing.T) {
	base := testSource()
	for _, f := range []Fault{None, Replacement} {
		if got := Source(base, f, 5, "id"); got != trace.Source(base) {
			t.Errorf("Source(%v) wrapped the stream; want passthrough", f)
		}
	}
}

// TestHookShape: the replacement hook defers to the policy on most fills
// and returns an in-range way on the perturbed ones, deterministically.
func TestHookShape(t *testing.T) {
	h1 := Hook(9, "cell")
	h2 := Hook(9, "cell")
	const assoc = 8
	perturbed := 0
	for i := 0; i < 70; i++ {
		w1 := h1(1, 3, 5, assoc)
		w2 := h2(1, 3, 5, assoc)
		if w1 != w2 {
			t.Fatalf("hook call %d not deterministic: %d vs %d", i, w1, w2)
		}
		if w1 >= assoc {
			t.Fatalf("hook returned way %d, assoc is %d", w1, assoc)
		}
		if w1 >= 0 {
			perturbed++
		}
	}
	if perturbed != 10 {
		t.Errorf("hook perturbed %d of 70 fills, want 10 (every 7th)", perturbed)
	}
}
