package chaos

import "fmt"

// ProcessFault is one injectable process-level failure class, exercised by
// the distributed sweep fabric (internal/fabric): where the cell-level
// faults above corrupt a simulation's input or policy, process faults kill,
// stall or corrupt the worker process carrying the cell. The fabric's
// lease/reassignment machinery must recover from every one of them without
// producing a silently wrong number.
type ProcessFault int

const (
	// ProcNone marks an unpoisoned batch.
	ProcNone ProcessFault = iota
	// ProcKill makes the worker SIGKILL itself mid-batch, after computing
	// but before uploading — the hard-crash case. The coordinator must
	// notice the missed heartbeats, revoke the lease and reassign.
	ProcKill
	// ProcStall makes the worker sleep well past its lease TTL before
	// resuming, so its lease expires while it still believes it holds the
	// batch. When it finally uploads, the coordinator must reject the
	// stale lease — the batch has already been reassigned.
	ProcStall
	// ProcCorrupt makes the worker flip one byte of a result record before
	// uploading. The per-record checksum must catch it; the coordinator
	// revokes the lease and reassigns rather than merging the damage.
	ProcCorrupt
)

// String names the process fault class as logs and tests spell it.
func (f ProcessFault) String() string {
	switch f {
	case ProcNone:
		return "none"
	case ProcKill:
		return "kill"
	case ProcStall:
		return "stall"
	case ProcCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("ProcessFault(%d)", int(f))
	}
}

// InjectableProcess lists the fault classes PickProcess assigns to poisoned
// (worker, batch) pairs.
func InjectableProcess() []ProcessFault {
	return []ProcessFault{ProcKill, ProcStall, ProcCorrupt}
}

// procDivisor is the poisoning rate for process faults: roughly one
// (worker, batch) pair in procDivisor suffers a process fault. It is lower
// than the cell-level rate because each fault costs a lease TTL or a full
// reassignment round-trip to recover from.
const procDivisor = 4

// PickProcess decides deterministically whether the given worker suffers a
// process fault while holding the given batch, and which class. The
// decision hashes (seed, worker, batch token) so every rerun of a chaos
// sweep kills, stalls and corrupts at exactly the same points, and two
// workers racing for the same batch fault independently.
func PickProcess(seed int64, worker, batch string) (ProcessFault, bool) {
	h := splitmix64(uint64(seed) ^ fnv64(worker) ^ splitmix64(fnv64(batch)))
	if h%procDivisor != 0 {
		return ProcNone, false
	}
	inj := InjectableProcess()
	return inj[(h/procDivisor)%uint64(len(inj))], true
}

// CorruptRecord flips one deterministically chosen byte of a serialized
// checkpoint record, modelling a worker whose result is damaged in flight.
// The flip lands inside the JSON payload (never the trailing newline), so
// the record either fails to parse or fails its checksum — both paths the
// coordinator must treat as a lost batch, not a mergeable result. Returns
// line unchanged when it is too short to corrupt meaningfully.
//
// The flipped byte is never an ASCII letter: the flip is an XOR of the
// 0x20 case bit, and Go's JSON decoder matches object keys
// case-insensitively, so a case-flipped field name would decode to the
// identical record and the "corruption" would merge cleanly. Non-letter
// bytes (quotes, colons, digits, braces) cannot be neutralized that way —
// the flip provably breaks the decode or changes decoded content.
func CorruptRecord(seed int64, worker, batch string, line []byte) []byte {
	n := len(line)
	for n > 0 && (line[n-1] == '\n' || line[n-1] == '\r') {
		n--
	}
	if n < 2 {
		return line
	}
	// Candidate positions: inside the payload (byte 0 stays '{' so the line
	// still looks like JSON and the failure is a checksum or content error,
	// not a trivially malformed line — the harder case), non-letter bytes.
	var candidates []int
	for i := 1; i < n; i++ {
		c := line[i]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			continue
		}
		candidates = append(candidates, i)
	}
	if len(candidates) == 0 {
		return line
	}
	h := splitmix64(uint64(seed) ^ fnv64(worker) ^ fnv64(batch) ^ 0xc0ffee)
	out := make([]byte, len(line))
	copy(out, line)
	out[candidates[h%uint64(len(candidates))]] ^= 0x20
	return out
}
